module goptm

go 1.22
