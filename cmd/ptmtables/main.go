// Command ptmtables regenerates the paper's tables:
//
//	ptmtables -table 1    # commits/abort, TPCC (Hash), redo (Table I)
//	ptmtables -table 2    # commits/abort, TPCC (Hash), undo (Table II)
//	ptmtables -table 3    # speedup from removing fences   (Table III)
//	ptmtables -logsize    # redo-log footprint study        (§IV-B)
//	ptmtables -all
//
// Tables 1-3 run through the parallel sweep engine: -jobs N simulates
// cells concurrently (identical output), -cache reuses results across
// runs, -shard i/n splits the points for CI. The logsize, energy, and
// recovery studies are seconds-scale single measurements and stay
// serial.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/energy"
	"goptm/internal/harness"
	"goptm/internal/memdev"
	"goptm/internal/runner"
	"goptm/internal/workload"
	"goptm/internal/workload/tpcc"
	"goptm/internal/workload/vacation"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate: 1, 2, or 3")
	counters := flag.Bool("counters", false, "append hardware-counter tables to tables 1 and 2 (attaches the counter registry; measured numbers are unchanged)")
	logsize := flag.Bool("logsize", false, "measure redo-log footprints (§IV-B)")
	energyFlag := flag.Bool("energy", false, "estimate reserve-power needs per domain (§V open question)")
	recoveryFlag := flag.Bool("recovery", false, "measure post-crash recovery time vs outstanding log size")
	all := flag.Bool("all", false, "regenerate every table")
	full := flag.Bool("full", false, "full paper scale instead of quick scale")
	verbose := flag.Bool("v", false, "stream per-point progress")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulations (1 = serial; output is identical either way)")
	useCache := flag.Bool("cache", false, "serve previously simulated points from -cachedir and store fresh ones")
	cacheDir := flag.String("cachedir", "results/cache", "content-addressed result cache directory")
	cacheInvalidate := flag.Bool("cache-invalidate", false, "drop every cached result first (implies -cache)")
	shardSpec := flag.String("shard", "", "run only shard i of n (\"i/n\", 1-based) for CI splitting")
	flag.Parse()

	p := harness.QuickParams()
	if *full {
		p = harness.FullParams()
	}
	p.Counters = *counters

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ptmtables: %v\n", err)
		os.Exit(1)
	}

	opts := harness.SweepOptions{Jobs: *jobs}
	if *useCache || *cacheInvalidate {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		if *cacheInvalidate {
			if err := cache.Invalidate(); err != nil {
				fail(err)
			}
		}
		opts.Cache = cache
	}
	shard, err := runner.ParseShard(*shardSpec)
	if err != nil {
		fail(err)
	}
	opts.Shard = shard
	var w io.Writer
	if *verbose {
		w = os.Stderr
	}
	opts.Progress = runner.NewProgress(w, nil)
	sweepRan := false

	if *all || *table == 1 {
		fig, err := harness.RunTable12Opts(core.OrecLazy, p, opts)
		if err != nil {
			fail(err)
		}
		fig.PrintRatios(os.Stdout)
		if p.Counters {
			fig.PrintCounters(os.Stdout)
		}
		sweepRan = true
	}
	if *all || *table == 2 {
		fig, err := harness.RunTable12Opts(core.OrecEager, p, opts)
		if err != nil {
			fail(err)
		}
		fig.PrintRatios(os.Stdout)
		if p.Counters {
			fig.PrintCounters(os.Stdout)
		}
		sweepRan = true
	}
	if *all || *table == 3 {
		rows, err := harness.RunTable3Opts(p, opts)
		if err != nil {
			fail(err)
		}
		fmt.Println("\nTable III — speedup from removing memory fences (ADR, Optane, 2 threads)")
		fmt.Printf("%-16s %-6s %14s %14s %9s\n", "workload", "log", "fenced ops/s", "no-fence", "speedup")
		for _, r := range rows {
			if r.Workload == "" { // sharded away
				continue
			}
			fmt.Printf("%-16s %-6s %14.0f %14.0f %8.1f%%\n",
				r.Workload, r.Algo, r.Base, r.NoFence, r.Speedup)
		}
		sweepRan = true
	}
	if sweepRan {
		fmt.Fprintf(os.Stderr, "ptmtables: %s\n", opts.Progress.Summary())
	}
	if *all || *logsize {
		if err := runLogFootprint(p); err != nil {
			fail(err)
		}
	}
	if *all || *energyFlag {
		if err := runEnergy(p); err != nil {
			fail(err)
		}
	}
	if *all || *recoveryFlag {
		if err := runRecoveryTime(); err != nil {
			fail(err)
		}
	}
	if !*all && *table == 0 && !*logsize && !*energyFlag && !*recoveryFlag {
		fmt.Fprintln(os.Stderr, "usage: ptmtables -table {1|2|3} | -logsize | -energy | -recovery | -all [-full] [-v]")
		os.Exit(2)
	}
}

// runRecoveryTime measures how long post-crash recovery takes as the
// committed-but-unwritten redo log grows — the availability cost of
// the crash-consistency machinery.
func runRecoveryTime() error {
	fmt.Println("\nRecovery time vs outstanding redo log (crash at the commit marker)")
	fmt.Printf("%-14s %10s %12s %12s\n", "log entries", "replayed", "heap blocks", "recovery")
	for _, entries := range []int{8, 64, 256, 1000} {
		tm, err := core.New(core.Config{
			Algo: core.OrecLazy, Medium: core.MediumNVM, Domain: durability.ADR,
			Threads: 1, HeapWords: 1 << 18, MaxLogEntries: 1024, OrecSize: 1 << 12,
		})
		if err != nil {
			return err
		}
		th := tm.Thread(0)
		var base memdev.Addr
		th.Atomic(func(tx *core.Tx) { base = tx.Alloc(2048) })
		for c := 0; c < 2048; c += 512 {
			c := c
			th.Atomic(func(tx *core.Tx) {
				for i := c; i < c+512; i++ {
					tx.Store(base+memdev.Addr(i), 1)
				}
			})
		}
		tm.SetRoot(th, 0, base)
		tm.SetCrashHook(func(point string, _ *core.Thread) {
			if point == "lazy:post-marker" {
				panic(core.PowerFailure{Point: point})
			}
		})
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(core.PowerFailure); !ok {
						panic(r)
					}
				}
			}()
			entries := entries
			th.Atomic(func(tx *core.Tx) {
				for i := 0; i < entries; i++ {
					tx.Store(base+memdev.Addr(i*2%2048), 2)
				}
			})
		}()
		vt := th.Now()
		th.Detach()
		tm.Crash(vt)
		_, rep, err := core.Reopen(tm.Bus(), tm.Config())
		if err != nil {
			return err
		}
		fmt.Printf("%-14d %10d %12d %9.1fµs\n",
			entries, rep.EntriesApplied, rep.BlocksSwept, float64(rep.DurationNS)/1000)
	}
	return nil
}

// runEnergy addresses the paper's §V open question: how much reserve
// power does each durability domain need? It runs TPCC (Hash Table)
// under each domain, then estimates the energy required to flush the
// machine's outstanding state at a power failure arriving at the end
// of the run.
func runEnergy(p harness.Params) error {
	fmt.Println("\nReserve-power estimate per durability domain (TPCC Hash, 8 threads; §V open question)")
	platform := energy.DefaultPlatform()
	for _, dom := range []durability.Domain{
		durability.ADR, durability.EADR, durability.PDRAM, durability.PDRAMLite,
	} {
		w := tpcc.New(tpcc.Config{Kind: tpcc.HashIndex})
		cell := harness.Cell{Medium: core.MediumNVM, Domain: dom, Algo: core.OrecLazy}
		rc := harness.RunConfig{Threads: 8, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS}
		tm, err := harness.BuildTM(cell, rc, w)
		if err != nil {
			return err
		}
		res := harness.RunOn(tm, cell, rc, w)
		fmt.Printf("measured:   %s\n", energy.Estimate(tm.Bus(), res.EndVT, platform))
		fmt.Printf("worst case: %s\n", energy.WorstCase(tm.Bus(), platform))
	}
	fmt.Println("(flush window = time to push WPQ + dirty lines + dirty pages to the media at its write bandwidth)")
	return nil
}

// runLogFootprint reproduces the §IV-B measurement: the maximum
// number of redo-log cache lines any transaction needs (the paper
// reports 37 lines for Vacation and 36 for TPCC Hash — small enough
// that PDRAM-Lite needs only a handful of DRAM pages per thread).
func runLogFootprint(p harness.Params) error {
	rel := 16384
	if p.Small {
		rel = 4096
	}
	cases := []struct {
		name string
		mk   func() workload.Workload
	}{
		{"TPCC (Hash Table)", func() workload.Workload {
			return tpcc.New(tpcc.Config{Kind: tpcc.HashIndex})
		}},
		{"Vacation (low)", func() workload.Workload {
			return vacation.New(vacation.Config{Contention: vacation.Low, Relations: rel})
		}},
		{"Vacation (high)", func() workload.Workload {
			return vacation.New(vacation.Config{Contention: vacation.High})
		}},
	}
	fmt.Println("\nRedo-log footprint (max log lines per transaction, §IV-B)")
	for _, c := range cases {
		cell := harness.Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}
		rc := harness.RunConfig{Threads: 8, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS}
		res, err := harness.Run(cell, rc, c.mk())
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %3d lines (%d bytes)\n", c.name, res.MaxLogLines, res.MaxLogLines*64)
	}
	return nil
}
