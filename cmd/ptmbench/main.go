// Command ptmbench regenerates the paper's figures on the simulated
// Optane machine: throughput-vs-threads panels for Figures 3, 4, 6,
// and 7, and the memcached working-set sweep of Figure 8.
//
// Usage:
//
//	ptmbench -fig 3            # six panels, 8 curves each (quick scale)
//	ptmbench -fig 4 -full      # TATP at the paper's full thread axis
//	ptmbench -fig 8            # working-set sweep
//	ptmbench -all              # everything
//
// Output is an aligned text table per panel; -v streams per-point
// progress. Quick mode (default) completes in minutes; -full runs the
// paper's {1,2,4,8,16,32} thread axis with longer windows.
//
// Observability:
//
//	ptmbench -fig 4 -breakdown     # append per-phase overhead tables
//	ptmbench -fig 3 -trace out.json # trace ONE tiny point of the figure
//	                                # and write Perfetto JSON (no sweep)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/harness"
	"goptm/internal/obs"
	"goptm/internal/workload"
	"goptm/internal/workload/kvstore"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 3, 4, 6, 7, or 8")
	all := flag.Bool("all", false, "regenerate every figure")
	full := flag.Bool("full", false, "full paper scale (slower) instead of quick scale")
	verbose := flag.Bool("v", false, "stream per-point progress")
	csvPath := flag.String("csv", "", "also append machine-readable CSV rows to this file")
	breakdown := flag.Bool("breakdown", false, "print per-phase overhead decomposition tables (attaches the breakdown recorder)")
	tracePath := flag.String("trace", "", "run one small traced measurement of the figure and write Perfetto/Chrome trace-event JSON to this file (skips the full sweep)")
	flag.Parse()

	if *tracePath != "" {
		n := *fig
		if n == 0 {
			n = 4
		}
		if err := runTraced(n, *tracePath, *breakdown); err != nil {
			fmt.Fprintf(os.Stderr, "ptmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if !*all && (*fig < 3 || *fig > 8 || *fig == 5) {
		fmt.Fprintln(os.Stderr, "usage: ptmbench -fig {3|4|6|7|8} [-full] [-v] [-breakdown] [-trace out.json], or -all")
		os.Exit(2)
	}

	p := harness.QuickParams()
	if *full {
		p = harness.FullParams()
	}
	p.Observe = *breakdown
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	var csvOut io.Writer
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptmbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	run := func(n int) {
		if err := runFigure(n, p, progress, csvOut, *breakdown); err != nil {
			fmt.Fprintf(os.Stderr, "ptmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *all {
		for _, n := range []int{3, 4, 6, 7, 8} {
			run(n)
		}
		return
	}
	run(*fig)
}

func runFigure(n int, p harness.Params, progress, csvOut io.Writer, breakdown bool) error {
	emit := func(fig harness.Figure) error {
		fig.Print(os.Stdout)
		if breakdown {
			fig.PrintBreakdown(os.Stdout)
		}
		if csvOut != nil {
			return fig.WriteCSV(csvOut)
		}
		return nil
	}
	switch n {
	case 3, 6:
		cells := harness.Fig34Cells()
		name := "Figure 3"
		if n == 6 {
			cells = harness.Fig67Cells()
			name = "Figure 6"
		}
		for _, mk := range harness.PanelWorkloads() {
			fig, err := harness.RunPanel(name, mk, cells, p, progress)
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
	case 4, 7:
		cells := harness.Fig34Cells()
		name := "Figure 4"
		if n == 7 {
			cells = harness.Fig67Cells()
			name = "Figure 7"
		}
		fig, err := harness.RunPanel(name, harness.TATPWorkload(), cells, p, progress)
		if err != nil {
			return err
		}
		if err := emit(fig); err != nil {
			return err
		}
	case 8:
		points, err := harness.RunFig8(p, progress)
		if err != nil {
			return err
		}
		harness.PrintFig8(points, os.Stdout)
		if csvOut != nil {
			if err := harness.WriteFig8CSV(points, csvOut); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}

// runTraced measures one small representative point of figure n with
// full event tracing and writes the Perfetto JSON to path. One traced
// point keeps traces loadable and the CI smoke step fast; sweeps stay
// untraced.
func runTraced(n int, path string, breakdown bool) error {
	wl, cell, err := tracePoint(n)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	p := harness.QuickParams()
	rc := harness.RunConfig{Threads: 4, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS}
	res, err := harness.RunTraced(cell, rc, wl.Make(p), f)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("traced %s on %s: %d commits, %d aborts, %.0f ops/s -> %s\n",
		wl.Name, cell.Label(), res.Commits, res.Aborts, res.ThroughputOps, path)
	if breakdown {
		obs.WriteTable(os.Stdout, []string{cell.Label()}, []*obs.Breakdown{&res.Breakdown})
	}
	return nil
}

// tracePoint picks the workload and cell the traced point of figure n
// runs: the figure's first panel on a representative Optane cell.
func tracePoint(n int) (harness.WorkloadMaker, harness.Cell, error) {
	adrRedo := harness.Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}
	switch n {
	case 3:
		return harness.PanelWorkloads()[0], adrRedo, nil
	case 4:
		return harness.TATPWorkload(), adrRedo, nil
	case 6:
		return harness.PanelWorkloads()[0],
			harness.Cell{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecLazy}, nil
	case 7:
		return harness.TATPWorkload(),
			harness.Cell{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecLazy}, nil
	case 8:
		return harness.WorkloadMaker{Name: "kvstore", Make: func(p harness.Params) workload.Workload {
			return kvstore.New(kvstore.Config{Items: 1024})
		}}, adrRedo, nil
	default:
		return harness.WorkloadMaker{}, harness.Cell{}, fmt.Errorf("no traceable point for figure %d", n)
	}
}
