// Command ptmbench regenerates the paper's figures on the simulated
// Optane machine: throughput-vs-threads panels for Figures 3, 4, 6,
// and 7, and the memcached working-set sweep of Figure 8.
//
// Usage:
//
//	ptmbench -fig 3            # six panels, 8 curves each (quick scale)
//	ptmbench -fig 4 -full      # TATP at the paper's full thread axis
//	ptmbench -fig 8            # working-set sweep
//	ptmbench -all              # everything
//
// Output is an aligned text table per panel; -v streams per-point
// progress. Quick mode (default) completes in minutes; -full runs the
// paper's {1,2,4,8,16,32} thread axis with longer windows.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"goptm/internal/harness"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 3, 4, 6, 7, or 8")
	all := flag.Bool("all", false, "regenerate every figure")
	full := flag.Bool("full", false, "full paper scale (slower) instead of quick scale")
	verbose := flag.Bool("v", false, "stream per-point progress")
	csvPath := flag.String("csv", "", "also append machine-readable CSV rows to this file")
	flag.Parse()

	if !*all && (*fig < 3 || *fig > 8 || *fig == 5) {
		fmt.Fprintln(os.Stderr, "usage: ptmbench -fig {3|4|6|7|8} [-full] [-v], or -all")
		os.Exit(2)
	}

	p := harness.QuickParams()
	if *full {
		p = harness.FullParams()
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	var csvOut io.Writer
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptmbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	run := func(n int) {
		if err := runFigure(n, p, progress, csvOut); err != nil {
			fmt.Fprintf(os.Stderr, "ptmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *all {
		for _, n := range []int{3, 4, 6, 7, 8} {
			run(n)
		}
		return
	}
	run(*fig)
}

func runFigure(n int, p harness.Params, progress, csvOut io.Writer) error {
	emit := func(fig harness.Figure) error {
		fig.Print(os.Stdout)
		if csvOut != nil {
			return fig.WriteCSV(csvOut)
		}
		return nil
	}
	switch n {
	case 3, 6:
		cells := harness.Fig34Cells()
		name := "Figure 3"
		if n == 6 {
			cells = harness.Fig67Cells()
			name = "Figure 6"
		}
		for _, mk := range harness.PanelWorkloads() {
			fig, err := harness.RunPanel(name, mk, cells, p, progress)
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
	case 4, 7:
		cells := harness.Fig34Cells()
		name := "Figure 4"
		if n == 7 {
			cells = harness.Fig67Cells()
			name = "Figure 7"
		}
		fig, err := harness.RunPanel(name, harness.TATPWorkload(), cells, p, progress)
		if err != nil {
			return err
		}
		if err := emit(fig); err != nil {
			return err
		}
	case 8:
		points, err := harness.RunFig8(p, progress)
		if err != nil {
			return err
		}
		harness.PrintFig8(points, os.Stdout)
		if csvOut != nil {
			if err := harness.WriteFig8CSV(points, csvOut); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}
