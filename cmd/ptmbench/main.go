// Command ptmbench regenerates the paper's figures on the simulated
// Optane machine: throughput-vs-threads panels for Figures 3, 4, 6,
// and 7, and the memcached working-set sweep of Figure 8.
//
// Usage:
//
//	ptmbench -fig 3            # six panels, 8 curves each (quick scale)
//	ptmbench -fig 4 -full      # TATP at the paper's full thread axis
//	ptmbench -fig 8            # working-set sweep
//	ptmbench -all              # everything
//
// Output is an aligned text table per panel; -v streams per-point
// progress with an ETA. Quick mode (default) completes in minutes;
// -full runs the paper's {1,2,4,8,16,32} thread axis with longer
// windows; -smoke is a seconds-scale panel for CI.
//
// Execution (see docs/RUNNING.md):
//
//	ptmbench -fig 3 -jobs 8           # 8 cells simulate concurrently
//	ptmbench -all -cache              # reuse results/cache across runs
//	ptmbench -all -cache-invalidate   # drop stale entries first
//	ptmbench -fig 3 -shard 1/4        # CI split: this machine's quarter
//
// Every sweep runs under the lockstep virtual-time scheduler, so the
// rendered tables and CSV are byte-identical at any -jobs value and a
// cached result substitutes exactly for a fresh simulation.
//
// Observability:
//
//	ptmbench -fig 4 -breakdown     # append per-phase overhead tables
//	ptmbench -fig 4 -counters      # append hardware-counter tables
//	                               # (write/read amplification, XPBuffer
//	                               # hit rate, commit-latency attribution)
//	ptmbench -fig 4 -counters -metricsjson m.json # diffable metrics
//	                               # report artifact (see cmd/ptmstat)
//	ptmbench -fig 3 -trace out.json # trace ONE tiny point of the figure
//	                                # and write Perfetto JSON (no sweep)
//	ptmbench -fig 4 -sweeptrace sweep.json # record the sweep's own pace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/harness"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/perfbench"
	"goptm/internal/runner"
	"goptm/internal/workload"
	"goptm/internal/workload/kvstore"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 3, 4, 6, 7, or 8")
	all := flag.Bool("all", false, "regenerate every figure")
	full := flag.Bool("full", false, "full paper scale (slower) instead of quick scale")
	smoke := flag.Bool("smoke", false, "tiny seconds-scale panel (CI smoke)")
	verbose := flag.Bool("v", false, "stream per-point progress")
	csvPath := flag.String("csv", "", "also append machine-readable CSV rows to this file")
	breakdown := flag.Bool("breakdown", false, "print per-phase overhead decomposition tables (attaches the breakdown recorder)")
	counters := flag.Bool("counters", false, "print hardware-counter tables per panel (attaches the counter registry; measured numbers are unchanged)")
	metricsJSON := flag.String("metricsjson", "", "write the sweep's diffable metrics report JSON to this file (implies -counters)")
	tracePath := flag.String("trace", "", "run one small traced measurement of the figure and write Perfetto/Chrome trace-event JSON to this file (skips the full sweep)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulations (1 = serial; output is identical either way)")
	useCache := flag.Bool("cache", false, "serve previously simulated points from -cachedir and store fresh ones")
	cacheDir := flag.String("cachedir", "results/cache", "content-addressed result cache directory")
	cacheInvalidate := flag.Bool("cache-invalidate", false, "drop every cached result first (implies -cache)")
	shardSpec := flag.String("shard", "", "run only shard i of n (\"i/n\", 1-based) for CI splitting")
	sweepTrace := flag.String("sweeptrace", "", "write a Perfetto trace of the sweep's own progress to this file")
	perfJSON := flag.String("perfjson", "", "run the simulator hot-path perf suite and write the BENCH report JSON to this file (skips figure sweeps)")
	perfBaseline := flag.String("perfbaseline", "", "previously written perf report to attach as the baseline of -perfjson (computes the sweep speedup)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ptmbench: %v\n", err)
		os.Exit(1)
	}

	if *perfJSON != "" {
		if err := runPerfSuite(*perfJSON, *perfBaseline); err != nil {
			fail(err)
		}
		return
	}

	if *tracePath != "" {
		n := *fig
		if n == 0 {
			n = 4
		}
		if err := runTraced(n, *tracePath, *breakdown); err != nil {
			fail(err)
		}
		return
	}

	if !*all && (*fig < 3 || *fig > 8 || *fig == 5) {
		fmt.Fprintln(os.Stderr, "usage: ptmbench -fig {3|4|6|7|8} [-full|-smoke] [-jobs N] [-cache] [-shard i/n] [-v] [-breakdown] [-trace out.json], or -all")
		os.Exit(2)
	}

	p := harness.QuickParams()
	switch {
	case *full:
		p = harness.FullParams()
	case *smoke:
		p = harness.Params{Threads: []int{1, 2}, WarmupNS: 100_000, MeasureNS: 500_000, Small: true}
	}
	p.Observe = *breakdown
	p.Counters = *counters || *metricsJSON != ""

	opts, cleanup, err := sweepOptions(*jobs, *useCache || *cacheInvalidate, *cacheDir, *cacheInvalidate, *shardSpec, *verbose, *sweepTrace)
	if err != nil {
		fail(err)
	}

	var report *metrics.Report
	if *metricsJSON != "" {
		report = harness.NewReport()
	}

	var csvOut io.Writer
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		csvOut = f
	}

	run := func(n int) {
		if err := runFigure(n, p, opts, csvOut, *breakdown, report); err != nil {
			fail(err)
		}
	}
	if *all {
		for _, n := range []int{3, 4, 6, 7, 8} {
			run(n)
		}
	} else {
		run(*fig)
	}
	if report != nil {
		if err := metrics.WriteReportFile(*metricsJSON, report); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "ptmbench: metrics report (%d cells) -> %s\n", len(report.Cells), *metricsJSON)
	}
	if err := cleanup(); err != nil {
		fail(err)
	}
}

// sweepOptions assembles the execution options shared by every panel
// of the invocation: one worker pool size, one cache, one shard, and
// one Progress whose totals accumulate across figures. The returned
// cleanup prints the sweep summary (and writes the sweep trace).
func sweepOptions(jobs int, useCache bool, cacheDir string, invalidate bool, shardSpec string, verbose bool, sweepTrace string) (harness.SweepOptions, func() error, error) {
	opts := harness.SweepOptions{Jobs: jobs}
	if useCache {
		cache, err := runner.OpenCache(cacheDir)
		if err != nil {
			return opts, nil, err
		}
		if invalidate {
			if err := cache.Invalidate(); err != nil {
				return opts, nil, err
			}
		}
		opts.Cache = cache
	}
	shard, err := runner.ParseShard(shardSpec)
	if err != nil {
		return opts, nil, err
	}
	opts.Shard = shard

	var rec *obs.Recorder
	if sweepTrace != "" {
		rec = obs.New(1, true)
	}
	var w io.Writer
	if verbose {
		w = os.Stderr
	}
	opts.Progress = runner.NewProgress(w, rec)

	cleanup := func() error {
		fmt.Fprintf(os.Stderr, "ptmbench: %s\n", opts.Progress.Summary())
		if rec != nil {
			f, err := os.Create(sweepTrace)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.WriteTrace(f); err != nil {
				return err
			}
			return f.Close()
		}
		return nil
	}
	return opts, cleanup, nil
}

func runFigure(n int, p harness.Params, opts harness.SweepOptions, csvOut io.Writer, breakdown bool, report *metrics.Report) error {
	emit := func(fig harness.Figure) error {
		fig.Print(os.Stdout)
		if breakdown {
			fig.PrintBreakdown(os.Stdout)
		}
		if p.Counters {
			fig.PrintCounters(os.Stdout)
		}
		if report != nil {
			harness.AppendMetrics(report, fig)
		}
		if csvOut != nil {
			return fig.WriteCSV(csvOut)
		}
		return nil
	}
	switch n {
	case 3, 6:
		cells := harness.Fig34Cells()
		name := "Figure 3"
		if n == 6 {
			cells = harness.Fig67Cells()
			name = "Figure 6"
		}
		for _, mk := range harness.PanelWorkloads() {
			fig, err := harness.RunPanelOpts(name, mk, cells, p, opts)
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
	case 4, 7:
		cells := harness.Fig34Cells()
		name := "Figure 4"
		if n == 7 {
			cells = harness.Fig67Cells()
			name = "Figure 7"
		}
		fig, err := harness.RunPanelOpts(name, harness.TATPWorkload(), cells, p, opts)
		if err != nil {
			return err
		}
		if err := emit(fig); err != nil {
			return err
		}
	case 8:
		points, err := harness.RunFig8Opts(p, opts)
		if err != nil {
			return err
		}
		harness.PrintFig8(points, os.Stdout)
		if csvOut != nil {
			if err := harness.WriteFig8CSV(points, csvOut); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}

// runPerfSuite measures the simulator's own hot-path speed (see
// internal/perfbench) and writes the tracked BENCH report. When a
// baseline report is given, its metrics are embedded and the sweep
// speedup computed, which is how BENCH_4.json documents the scheduler
// overhaul's wall-clock win.
func runPerfSuite(path, baselinePath string) error {
	rep, err := perfbench.Collect()
	if err != nil {
		return err
	}
	if baselinePath != "" {
		base, err := perfbench.Load(baselinePath)
		if err != nil {
			return err
		}
		rep.AttachBaseline(base)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.Write(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptmbench: perf suite -> %s", path)
	if rep.SweepSpeedup > 0 {
		fmt.Fprintf(os.Stderr, " (sweep speedup %.2fx)", rep.SweepSpeedup)
	}
	fmt.Fprintln(os.Stderr)
	return f.Close()
}

// runTraced measures one small representative point of figure n with
// full event tracing and writes the Perfetto JSON to path. One traced
// point keeps traces loadable and the CI smoke step fast; sweeps stay
// untraced.
func runTraced(n int, path string, breakdown bool) error {
	wl, cell, err := tracePoint(n)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	p := harness.QuickParams()
	rc := harness.RunConfig{Threads: 4, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS}
	// Sample the counter model at 64 points across the window so the
	// trace carries the WPQ-occupancy/media/commit counter tracks.
	rc.Metrics = metrics.New(metrics.Config{SampleIntervalNS: (p.WarmupNS + p.MeasureNS) / 64})
	res, err := harness.RunTraced(cell, rc, wl.Make(p), f)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("traced %s on %s: %d commits, %d aborts, %.0f ops/s -> %s\n",
		wl.Name, cell.Label(), res.Commits, res.Aborts, res.ThroughputOps, path)
	if breakdown {
		obs.WriteTable(os.Stdout, []string{cell.Label()}, []*obs.Breakdown{&res.Breakdown})
	}
	return nil
}

// tracePoint picks the workload and cell the traced point of figure n
// runs: the figure's first panel on a representative Optane cell.
func tracePoint(n int) (harness.WorkloadMaker, harness.Cell, error) {
	adrRedo := harness.Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}
	switch n {
	case 3:
		return harness.PanelWorkloads()[0], adrRedo, nil
	case 4:
		return harness.TATPWorkload(), adrRedo, nil
	case 6:
		return harness.PanelWorkloads()[0],
			harness.Cell{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecLazy}, nil
	case 7:
		return harness.TATPWorkload(),
			harness.Cell{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecLazy}, nil
	case 8:
		return harness.WorkloadMaker{Name: "kvstore", Make: func(p harness.Params) workload.Workload {
			return kvstore.New(kvstore.Config{Items: 1024})
		}}, adrRedo, nil
	default:
		return harness.WorkloadMaker{}, harness.Cell{}, fmt.Errorf("no traceable point for figure %d", n)
	}
}
