// Command ptmstat inspects and diffs the metrics-report JSON artifacts
// that `ptmbench -counters -metricsjson` writes.
//
// Usage:
//
//	ptmstat -validate report.json
//	    Schema-validate one artifact. Exit 0 if valid, 1 if not.
//
//	ptmstat [-threshold 0.05] base.json current.json
//	    Diff two artifacts cell-by-cell (matched on figure, workload,
//	    cell, and thread count) over the guarded metrics: commits,
//	    aborts, media XPLine traffic, WPQ stall time, log bytes, and
//	    the derived write/read amplification and stall-share ratios.
//	    Metrics whose relative change exceeds -threshold are listed,
//	    and the exit status is non-zero — wire it into CI against a
//	    checked-in baseline to catch silent simulator drift. Under the
//	    lockstep scheduler a sweep is bit-reproducible, so the natural
//	    threshold is 0: any delta means the model changed.
//
//	    -v lists every guarded metric, not just the exceeding ones.
package main

import (
	"flag"
	"fmt"
	"os"

	"goptm/internal/metrics"
)

func main() {
	validate := flag.String("validate", "", "schema-validate this metrics report and exit")
	threshold := flag.Float64("threshold", 0, "relative change above which a metric fails the diff (0 = any change fails)")
	verbose := flag.Bool("v", false, "list every compared metric, not only regressions")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ptmstat: %v\n", err)
		os.Exit(1)
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fail(err)
		}
		if err := metrics.ValidateReportJSON(data); err != nil {
			fail(err)
		}
		rep, err := metrics.LoadReportFile(*validate)
		if err != nil {
			fail(err)
		}
		fmt.Printf("ptmstat: %s: valid metrics report (schema %d, %d cells)\n",
			*validate, rep.Schema, len(rep.Cells))
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ptmstat -validate report.json | ptmstat [-threshold 0.05] [-v] base.json current.json")
		os.Exit(2)
	}
	base, err := metrics.LoadReportFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	cur, err := metrics.LoadReportFile(flag.Arg(1))
	if err != nil {
		fail(err)
	}

	entries := metrics.Diff(base, cur, *threshold)
	exceeded := 0
	lastCell := ""
	for _, e := range entries {
		if !e.Exceeds && !*verbose {
			continue
		}
		if e.Cell != lastCell {
			fmt.Printf("%s\n", e.Cell)
			lastCell = e.Cell
		}
		mark := " "
		if e.Exceeds {
			mark = "!"
			exceeded++
		}
		fmt.Printf("  %s %-22s base %14.4f  cur %14.4f  rel %+6.2f%%\n",
			mark, e.Metric, e.Base, e.Cur, 100*rel(e))
	}
	if exceeded > 0 {
		fmt.Fprintf(os.Stderr, "ptmstat: %d metric(s) beyond threshold %.4f\n", exceeded, *threshold)
		os.Exit(1)
	}
	fmt.Printf("ptmstat: %d cells compared, no metric beyond threshold %.4f\n", len(cur.Cells), *threshold)
}

// rel recovers the signed relative delta for display (DiffEntry.Rel is
// the absolute value used for thresholding).
func rel(e metrics.DiffEntry) float64 {
	den := e.Base
	if den < 0 {
		den = -den
	}
	if den < 1 {
		den = 1
	}
	return (e.Cur - e.Base) / den
}
