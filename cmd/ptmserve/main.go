// Command ptmserve runs the persistent KV service over the simulated
// PTM machine — the paper's memcached-style capstone (§V) as a real
// network server.
//
// Server mode (default):
//
//	ptmserve -listen :11211 -image /var/tmp/kv.img
//	    Serve a memcached text-protocol subset (get/set/delete/incr/
//	    stats/quit) over TCP. If -image exists it is reopened: the
//	    saved NVM media image is restored and crash recovery (redo
//	    replay or undo rollback plus allocator GC) runs before the
//	    first connection is accepted. On SIGTERM/SIGINT the server
//	    drains in-flight requests, simulates a power failure (the
//	    durability domain's policy resolves caches and the WPQ into
//	    the final image), saves -image, and exits — so a kill/restart
//	    cycle exercises the same recovery path a power loss would.
//	    With -durable (the default), acked writes are additionally
//	    journaled to <image>.wal before each acknowledgment, so even
//	    SIGKILL — which never reaches the image-save path — loses
//	    nothing the server confirmed. -durable=false drops that
//	    guarantee (the soak harness's self-test runs it on purpose).
//
// Load-simulator mode:
//
//	ptmserve -loadsim -rate 4000000 -requests 20000 -batches 1,4,16
//	    No sockets: a deterministic open-loop arrival process drives
//	    the same sharded batching executor in virtual time under the
//	    lockstep scheduler, printing a p50/p90/p99 latency table per
//	    batch size. Identical flags produce byte-identical output on
//	    any machine — CI pins the bytes.
//
// Rate-sweep mode:
//
//	ptmserve -ratesweep 250000,1000000,6000000 -static 1:2000,32:16384
//	    Race the adaptive group-commit controller against static
//	    (batch, window) operating points across a ladder of offered
//	    rates, printing the latency-knee table; -sweepjson writes the
//	    BENCH_9 artifact CI compares byte-for-byte. -jobs runs sweep
//	    cells concurrently with identical output at any level.
//
// Shared knobs: -algo redo|undo|htm, -domain ADR|eADR|..., -shards,
// -maxbatch, -window (batch window ns), -deadline (shed deadline ns),
// -queue (per-shard depth), -adaptive plus -adapt-* controller bounds
// and gains. See docs/SERVING.md for the protocol subset, the
// pipelined connection design, and the controller.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/server"
	"goptm/internal/server/loadsim"
)

// writeTraceFile exports the recorder's Perfetto JSON to path.
func writeTraceFile(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	listen := flag.String("listen", ":11211", "TCP listen address (server mode)")
	image := flag.String("image", "", "NVM media image file: reopened on start if present, saved on shutdown")
	algoName := flag.String("algo", "redo", "PTM algorithm: redo, undo, or htm")
	domainName := flag.String("domain", "ADR", "durability domain (ADR, eADR, PDRAM, PDRAM-Lite)")
	shards := flag.Int("shards", 4, "executor shards (keyspace partitions)")
	maxBatch := flag.Int("maxbatch", 8, "max ops coalesced into one transaction; 1 disables batching")
	windowNS := flag.Int64("window", 2000, "group-commit batch window, virtual ns; -1 disables")
	deadlineNS := flag.Int64("deadline", 1_000_000, "shed requests older than this, virtual ns; -1 disables")
	queueDepth := flag.Int("queue", 256, "per-shard request queue depth")
	heapWords := flag.Uint64("heap", 0, "persistent heap words (0 = default 1<<21); smaller heaps make smaller images")
	durable := flag.Bool("durable", true, "with -image: journal acked writes to <image>.wal and fsync-barrier every ack, so a process kill loses nothing acknowledged")

	adaptive := flag.Bool("adaptive", false, "drive each shard's (batch cap, window) with the AIMD group-commit controller; -maxbatch/-window become the starting point")
	adaptMaxBatch := flag.Int("adapt-maxbatch", 32, "adaptive: controller upper batch-cap bound (clamped to the store's log sizing)")
	adaptMinBatch := flag.Int("adapt-minbatch", 1, "adaptive: controller lower batch-cap bound")
	adaptMaxWindow := flag.Int64("adapt-maxwindow", 16384, "adaptive: controller upper group-commit window bound, virtual ns")
	adaptMinWindow := flag.Int64("adapt-minwindow", 0, "adaptive: controller lower group-commit window bound, virtual ns")
	adaptInterval := flag.Int64("adapt-interval", 8192, "adaptive: controller evaluation interval, virtual ns")
	adaptBatchStep := flag.Int("adapt-batchstep", 4, "adaptive: additive batch-cap increase per pressured step")
	adaptWindowStep := flag.Int64("adapt-windowstep", 1024, "adaptive: additive window increase per pressured step, virtual ns")

	loadsimMode := flag.Bool("loadsim", false, "run the deterministic open-loop load simulator instead of serving TCP")
	rate := flag.Float64("rate", 2e6, "loadsim: arrivals per virtual second")
	requests := flag.Int("requests", 20000, "loadsim: arrivals to generate")
	keys := flag.Int("keys", 4096, "loadsim: prepopulated keyspace size")
	valueBytes := flag.Int("value", 64, "loadsim: value size in bytes")
	setPct := flag.Int("sets", 50, "loadsim: percentage of sets in the mix")
	seed := flag.Uint64("seed", 1, "loadsim: arrival-process seed")
	warmup := flag.Int("warmup", 0, "loadsim: initial arrivals excluded from latency percentiles")
	batches := flag.String("batches", "1,8", "loadsim: comma-separated batch sizes to sweep")

	rateSweep := flag.String("ratesweep", "", "loadsim: comma-separated offered rates; sweep adaptive vs -static points across them and print the latency-knee table")
	statics := flag.String("static", "1:2000,8:2000,32:16384", "ratesweep: static batch:windowNS operating points to race the controller against")
	sweepJSON := flag.String("sweepjson", "", "ratesweep: also write the BENCH_9-style JSON artifact to this path")
	jobs := flag.Int("jobs", 1, "ratesweep: concurrent sweep cells (each cell is an independent lockstep machine; output is identical at any -jobs)")

	telemetry := flag.String("telemetry", "", "server mode: serve /metrics (Prometheus text), /snapshot (JSON), and /healthz on this loopback address; empty (the default) disables")
	flightSize := flag.Int("flight", 4096, "server mode with -image: flight-recorder ring size, mirrored to <image>.flight for post-SIGKILL harvest; 0 disables")
	flightInterval := flag.Duration("flight-interval", 200*time.Millisecond, "flight-recorder sidecar mirror interval (host time)")
	tracePath := flag.String("trace", "", "write a Perfetto-JSON trace here on exit: sampled request-lifecycle chains (server mode on wall time, loadsim on virtual time)")
	traceSample := flag.Int("tracesample", 64, "with -trace: sample ~1 in N requests through the lifecycle span chain (1 = every request)")
	traceSeed := flag.Uint64("traceseed", 1, "with -trace: deterministic request-sampling seed")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ptmserve: %v\n", err)
		os.Exit(1)
	}

	var algo core.Algo
	switch *algoName {
	case "redo":
		algo = core.OrecLazy
	case "undo":
		algo = core.OrecEager
	case "htm":
		algo = core.AlgoHTM
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	domain, err := durability.Parse(*domainName)
	if err != nil {
		fail(err)
	}

	ctrl := server.CtrlConfig{
		MinBatch:       *adaptMinBatch,
		MaxBatch:       *adaptMaxBatch,
		MinWindowNS:    *adaptMinWindow,
		MaxWindowNS:    *adaptMaxWindow,
		EvalIntervalNS: *adaptInterval,
		BatchStep:      *adaptBatchStep,
		WindowStepNS:   *adaptWindowStep,
	}

	if *rateSweep != "" {
		rates, err := loadsim.ParseRates(*rateSweep)
		if err != nil {
			fail(err)
		}
		pts, err := loadsim.ParseStatics(*statics)
		if err != nil {
			fail(err)
		}
		window := *windowNS
		if window < 0 {
			window = 0
		}
		sw, err := loadsim.RunSweep(loadsim.SweepConfig{
			Base: loadsim.Config{
				Algo: algo, Domain: domain, Shards: *shards,
				Keys: *keys, ValueBytes: *valueBytes, SetPercent: *setPct,
				Requests: *requests, Seed: *seed, Warmup: *warmup,
				DeadlineNS: *deadlineNS, QueueDepth: *queueDepth,
				Ctrl: ctrl,
			},
			Rates:   rates,
			Statics: pts,
			Start:   loadsim.StaticPoint{MaxBatch: *maxBatch, WindowNS: window},
			Jobs:    *jobs,
		})
		if err != nil {
			fail(err)
		}
		fmt.Print(loadsim.SweepReport(sw))
		if *sweepJSON != "" {
			if err := os.WriteFile(*sweepJSON, loadsim.BenchJSON(sw), 0o644); err != nil {
				fail(err)
			}
		}
		return
	}

	if *loadsimMode {
		var sizes []int
		for _, f := range strings.Split(*batches, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fail(fmt.Errorf("bad -batches entry %q", f))
			}
			sizes = append(sizes, n)
		}
		// One recorder across the whole batch sweep: runs are
		// sequential, so the exported trace carries every sweep's
		// sampled chains on the shared virtual timeline.
		var rec *obs.Recorder
		if *tracePath != "" {
			rec = obs.New(*shards+1, true)
		}
		results, err := loadsim.Curve(loadsim.Config{
			Algo: algo, Domain: domain, Shards: *shards,
			Keys: *keys, ValueBytes: *valueBytes, SetPercent: *setPct,
			Rate: *rate, Requests: *requests, Seed: *seed, Warmup: *warmup,
			BatchWindowNS: *windowNS, DeadlineNS: *deadlineNS, QueueDepth: *queueDepth,
			Adaptive: *adaptive, Ctrl: ctrl,
			Recorder: rec, TraceSample: *traceSample, TraceSeed: *traceSeed,
		}, sizes)
		if err != nil {
			fail(err)
		}
		fmt.Print(loadsim.Report(results))
		if rec != nil {
			if err := writeTraceFile(*tracePath, rec); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "ptmserve: trace written to %s (%d request chains)\n", *tracePath, len(rec.Requests()))
		}
		return
	}

	scfg := server.StoreConfig{
		Algo: algo, Domain: domain, Shards: *shards, MaxBatch: *maxBatch, Heap: *heapWords,
	}
	journaled := *durable && *image != ""
	var st *server.Store
	if journaled {
		st, err = server.OpenDurable(*image, scfg)
	} else {
		st, err = server.OpenOrRecover(*image, scfg)
	}
	if err != nil {
		fail(err)
	}
	if st.Recovered {
		rep := st.Recovery
		fmt.Printf("ptmserve: recovered image %s: %d redo replayed, %d undo rolled back, %d blocks swept (%d virtual ns)\n",
			*image, rep.RedoReplayed, rep.UndoRolledBack, rep.BlocksSwept, rep.DurationNS)
		if journaled {
			fmt.Printf("ptmserve: replayed %d journal batches from %s\n", st.WALBatches, server.WALPath(*image))
		}
	}

	// Request-lifecycle tracing rides a standalone recorder (machine
	// spans stay off); stamps are wall-clock because TCP requests live
	// on host time.
	var rec *obs.Recorder
	if *tracePath != "" {
		rec = obs.New(1, true)
	}
	// The flight recorder mirrors a sidecar next to the image so a
	// SIGKILLed process still leaves its last pre-kill window behind.
	var fr *server.FlightRecorder
	if *image != "" {
		fr = server.NewFlightRecorder(*flightSize)
	}
	defer func() {
		// A panicking server still dumps the ring: the sidecar is the
		// only testimony a crashed process leaves.
		if r := recover(); r != nil {
			fr.Dump()
			panic(r)
		}
	}()

	exec := server.NewExecutor(st, server.ExecConfig{
		Shards: *shards, QueueDepth: *queueDepth, MaxBatch: *maxBatch,
		BatchWindowNS: *windowNS, DeadlineNS: *deadlineNS,
		IdleSleep:  50 * time.Microsecond,
		DurableAck: journaled,
		Adaptive:   *adaptive, Ctrl: ctrl,
		TraceSample: *traceSample, TraceSeed: *traceSeed,
		WallClock: true, TraceRecorder: rec,
		Flight: fr,
	})
	if fr != nil {
		fr.StartMirror(server.FlightPath(*image), *flightInterval, func() server.FlightSample {
			m := st.TM().Metrics()
			ctrs := make(map[string]int64, metrics.NumCounters)
			for c := metrics.Counter(0); c < metrics.NumCounters; c++ {
				if v := m.Get(c); v != 0 {
					ctrs[c.String()] = v
				}
			}
			return server.FlightSample{
				WallNS:     time.Now().UnixNano(),
				QueueDepth: exec.QueueDepth(),
				Counters:   ctrs,
			}
		})
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	srv := server.Serve(st, exec, ln)
	mode := "static"
	if *adaptive {
		mode = "adaptive"
	}
	fmt.Printf("ptmserve: serving on %s (%s/%s, %d shards, batch<=%d, %s)\n",
		ln.Addr(), *algoName, domain, *shards, exec.Config().MaxBatch, mode)
	var tel *server.Telemetry
	if *telemetry != "" {
		tel, err = server.StartTelemetry(*telemetry, st, exec, fr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("ptmserve: telemetry on http://%s (/metrics, /snapshot, /healthz)\n", tel.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	<-sigCh
	fmt.Println("ptmserve: draining...")
	srv.Shutdown()
	// Shutdown ordering: the executor is drained, so the trace is
	// complete; the flight recorder's final dump captures the drained
	// state; only then does the telemetry listener close — a scraper
	// polling through the drain never sees a half-stopped plane.
	if rec != nil {
		if err := writeTraceFile(*tracePath, rec); err != nil {
			fmt.Fprintf(os.Stderr, "ptmserve: trace export: %v\n", err)
		} else {
			fmt.Printf("ptmserve: trace written to %s (%d request chains)\n", *tracePath, len(rec.Requests()))
		}
	}
	fr.Stop()
	if tel != nil {
		tel.Close()
	}
	if *image != "" {
		// Power-failure semantics on purpose: the domain policy decides
		// what survives, and the next start runs true crash recovery.
		var vt int64
		for i := 0; i < *shards; i++ {
			if t := exec.ShardVT(i); t > vt {
				vt = t
			}
		}
		st.Crash(vt)
		if err := st.SaveImage(*image); err != nil {
			fail(err)
		}
		if journaled {
			// Only after the image is durably renamed: the save bumped
			// the generation, so the journal it replaced is now stale.
			st.FinishJournal()
		}
		fmt.Printf("ptmserve: image saved to %s\n", *image)
	}
}
