// Command ptmserve runs the persistent KV service over the simulated
// PTM machine — the paper's memcached-style capstone (§V) as a real
// network server.
//
// Server mode (default):
//
//	ptmserve -listen :11211 -image /var/tmp/kv.img
//	    Serve a memcached text-protocol subset (get/set/delete/incr/
//	    stats/quit) over TCP. If -image exists it is reopened: the
//	    saved NVM media image is restored and crash recovery (redo
//	    replay or undo rollback plus allocator GC) runs before the
//	    first connection is accepted. On SIGTERM/SIGINT the server
//	    drains in-flight requests, simulates a power failure (the
//	    durability domain's policy resolves caches and the WPQ into
//	    the final image), saves -image, and exits — so a kill/restart
//	    cycle exercises the same recovery path a power loss would.
//	    With -durable (the default), acked writes are additionally
//	    journaled to <image>.wal before each acknowledgment, so even
//	    SIGKILL — which never reaches the image-save path — loses
//	    nothing the server confirmed. -durable=false drops that
//	    guarantee (the soak harness's self-test runs it on purpose).
//
// Load-simulator mode:
//
//	ptmserve -loadsim -rate 4000000 -requests 20000 -batches 1,4,16
//	    No sockets: a deterministic open-loop arrival process drives
//	    the same sharded batching executor in virtual time under the
//	    lockstep scheduler, printing a p50/p90/p99 latency table per
//	    batch size. Identical flags produce byte-identical output on
//	    any machine — CI pins the bytes.
//
// Shared knobs: -algo redo|undo|htm, -domain ADR|eADR|..., -shards,
// -maxbatch, -window (batch window ns), -deadline (shed deadline ns),
// -queue (per-shard depth). See docs/SERVING.md for the protocol
// subset and the batching design.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/server"
	"goptm/internal/server/loadsim"
)

func main() {
	listen := flag.String("listen", ":11211", "TCP listen address (server mode)")
	image := flag.String("image", "", "NVM media image file: reopened on start if present, saved on shutdown")
	algoName := flag.String("algo", "redo", "PTM algorithm: redo, undo, or htm")
	domainName := flag.String("domain", "ADR", "durability domain (ADR, eADR, PDRAM, PDRAM-Lite)")
	shards := flag.Int("shards", 4, "executor shards (keyspace partitions)")
	maxBatch := flag.Int("maxbatch", 8, "max ops coalesced into one transaction; 1 disables batching")
	windowNS := flag.Int64("window", 2000, "group-commit batch window, virtual ns; -1 disables")
	deadlineNS := flag.Int64("deadline", 1_000_000, "shed requests older than this, virtual ns; -1 disables")
	queueDepth := flag.Int("queue", 256, "per-shard request queue depth")
	heapWords := flag.Uint64("heap", 0, "persistent heap words (0 = default 1<<21); smaller heaps make smaller images")
	durable := flag.Bool("durable", true, "with -image: journal acked writes to <image>.wal and fsync-barrier every ack, so a process kill loses nothing acknowledged")

	loadsimMode := flag.Bool("loadsim", false, "run the deterministic open-loop load simulator instead of serving TCP")
	rate := flag.Float64("rate", 2e6, "loadsim: arrivals per virtual second")
	requests := flag.Int("requests", 20000, "loadsim: arrivals to generate")
	keys := flag.Int("keys", 4096, "loadsim: prepopulated keyspace size")
	valueBytes := flag.Int("value", 64, "loadsim: value size in bytes")
	setPct := flag.Int("sets", 50, "loadsim: percentage of sets in the mix")
	seed := flag.Uint64("seed", 1, "loadsim: arrival-process seed")
	batches := flag.String("batches", "1,8", "loadsim: comma-separated batch sizes to sweep")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ptmserve: %v\n", err)
		os.Exit(1)
	}

	var algo core.Algo
	switch *algoName {
	case "redo":
		algo = core.OrecLazy
	case "undo":
		algo = core.OrecEager
	case "htm":
		algo = core.AlgoHTM
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	domain, err := durability.Parse(*domainName)
	if err != nil {
		fail(err)
	}

	if *loadsimMode {
		var sizes []int
		for _, f := range strings.Split(*batches, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fail(fmt.Errorf("bad -batches entry %q", f))
			}
			sizes = append(sizes, n)
		}
		results, err := loadsim.Curve(loadsim.Config{
			Algo: algo, Domain: domain, Shards: *shards,
			Keys: *keys, ValueBytes: *valueBytes, SetPercent: *setPct,
			Rate: *rate, Requests: *requests, Seed: *seed,
			BatchWindowNS: *windowNS, DeadlineNS: *deadlineNS, QueueDepth: *queueDepth,
		}, sizes)
		if err != nil {
			fail(err)
		}
		fmt.Print(loadsim.Report(results))
		return
	}

	scfg := server.StoreConfig{
		Algo: algo, Domain: domain, Shards: *shards, MaxBatch: *maxBatch, Heap: *heapWords,
	}
	journaled := *durable && *image != ""
	var st *server.Store
	if journaled {
		st, err = server.OpenDurable(*image, scfg)
	} else {
		st, err = server.OpenOrRecover(*image, scfg)
	}
	if err != nil {
		fail(err)
	}
	if st.Recovered {
		rep := st.Recovery
		fmt.Printf("ptmserve: recovered image %s: %d redo replayed, %d undo rolled back, %d blocks swept (%d virtual ns)\n",
			*image, rep.RedoReplayed, rep.UndoRolledBack, rep.BlocksSwept, rep.DurationNS)
		if journaled {
			fmt.Printf("ptmserve: replayed %d journal batches from %s\n", st.WALBatches, server.WALPath(*image))
		}
	}

	exec := server.NewExecutor(st, server.ExecConfig{
		Shards: *shards, QueueDepth: *queueDepth, MaxBatch: *maxBatch,
		BatchWindowNS: *windowNS, DeadlineNS: *deadlineNS,
		IdleSleep:  50 * time.Microsecond,
		DurableAck: journaled,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	srv := server.Serve(st, exec, ln)
	fmt.Printf("ptmserve: serving on %s (%s/%s, %d shards, batch<=%d)\n",
		ln.Addr(), *algoName, domain, *shards, *maxBatch)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	<-sigCh
	fmt.Println("ptmserve: draining...")
	srv.Shutdown()
	if *image != "" {
		// Power-failure semantics on purpose: the domain policy decides
		// what survives, and the next start runs true crash recovery.
		var vt int64
		for i := 0; i < *shards; i++ {
			if t := exec.ShardVT(i); t > vt {
				vt = t
			}
		}
		st.Crash(vt)
		if err := st.SaveImage(*image); err != nil {
			fail(err)
		}
		if journaled {
			// Only after the image is durably renamed: the save bumped
			// the generation, so the journal it replaced is now stale.
			st.FinishJournal()
		}
		fmt.Printf("ptmserve: image saved to %s\n", *image)
	}
}
