// Command ptmsoak is the crash-injecting soak harness: it drives the
// persistent KV service through repeated kill/restart cycles under
// concurrent load and checks every acknowledged response against a
// durable-linearizability oracle that spans the restarts.
//
// Process mode (default) soaks a real ptmserve binary — real TCP,
// real SIGKILL/SIGTERM, real image and journal files:
//
//	ptmsoak -bin ./ptmserve -duration 30s -killmode mix
//
// In-process mode soaks a Store inside this process with simulated
// power failures (no sockets; this is what the unit tests run):
//
//	ptmsoak -mode inproc -duration 10s
//
// The verdict is one line of JSON on stdout. Exit status: 0 when the
// soak found no violations, 1 when the oracle flagged at least one
// (a repro file is written if -repro is set), 2 on operational
// errors. A failed run's repro replays exactly:
//
//	ptmsoak -replay soak-repro.json -bin ./ptmserve
//
// The self-test that proves the gate can fail: -unsafe-nodurable
// weakens the target (ptmserve -durable=false in process mode) so
// kills lose acked writes — the run must then exit 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"goptm/internal/server/soak"
)

func main() {
	mode := flag.String("mode", "process", "target: process (real ptmserve + signals) or inproc (simulated power failures)")
	bin := flag.String("bin", "", "process mode: path to the ptmserve binary")
	image := flag.String("image", "", "image file path (default: a fresh temp dir)")
	duration := flag.Duration("duration", 30*time.Second, "total soak budget")
	clients := flag.Int("clients", 4, "concurrent load workers")
	keys := flag.Int("keys", 16, "keys per worker (each worker owns its keys)")
	killmode := flag.String("killmode", "mix", "fault per cycle: kill, term, term-race, save-race, or mix")
	killmin := flag.Duration("killmin", 2*time.Second, "earliest fault injection after a cycle starts")
	killmax := flag.Duration("killmax", 3500*time.Millisecond, "latest fault injection")
	seed := flag.Uint64("seed", 1, "workload and kill-timing seed")
	algo := flag.String("algo", "redo", "PTM algorithm: redo, undo, or htm")
	domain := flag.String("domain", "ADR", "durability domain")
	shards := flag.Int("shards", 4, "executor shards")
	heap := flag.Uint64("heap", 1<<18, "persistent heap words (small default keeps cycles fast)")
	unsafe := flag.Bool("unsafe-nodurable", false, "self-test: weaken the target so kills lose acked writes; the run must fail")
	flightTail := flag.Int("flight-tail", 32, "flight-recorder records harvested into the verdict after each kill (process mode)")
	repro := flag.String("repro", "", "on violation, write a replayable repro JSON here")
	replay := flag.String("replay", "", "replay a repro JSON instead of reading the workload flags")
	verbose := flag.Bool("v", false, "log cycle progress to stderr")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ptmsoak: %v\n", err)
		os.Exit(2)
	}

	var cfg soak.Config
	if *replay != "" {
		data, err := os.ReadFile(*replay)
		if err != nil {
			fail(err)
		}
		var r soak.Repro
		if err := json.Unmarshal(data, &r); err != nil {
			fail(fmt.Errorf("bad repro %s: %w", *replay, err))
		}
		cfg = soak.ConfigOf(r, *bin, *image)
	} else {
		cfg = soak.Config{
			Mode: *mode, Bin: *bin, Image: *image,
			Duration: *duration, Clients: *clients, KeysPerClient: *keys,
			KillMode: *killmode, KillMin: *killmin, KillMax: *killmax,
			Seed: *seed, Algo: *algo, Domain: *domain,
			Shards: *shards, Heap: *heap, NoDurable: *unsafe,
		}
	}
	cfg.FlightTail = *flightTail
	if cfg.Image == "" {
		dir, err := os.MkdirTemp("", "ptmsoak-")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(dir)
		cfg.Image = filepath.Join(dir, "kv.img")
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ptmsoak: "+format+"\n", args...)
		}
	}

	v, err := soak.Run(cfg)
	if err != nil {
		fail(err)
	}
	line, err := json.Marshal(v)
	if err != nil {
		fail(err)
	}
	fmt.Println(string(line))
	if v.OK {
		return
	}
	if *repro != "" {
		blob, err := json.MarshalIndent(soak.ReproOf(cfg, v), "", "  ")
		if err == nil {
			err = os.WriteFile(*repro, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptmsoak: writing repro: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "ptmsoak: repro written to %s (replay with -replay)\n", *repro)
		}
	}
	os.Exit(1)
}
