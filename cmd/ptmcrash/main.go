// Command ptmcrash is the crash-consistency test tool. It has four
// modes:
//
//	(default)    — legacy torture: random crash points at named
//	               protocol hooks, conservation check (kept as a fast
//	               sanity loop).
//	-exhaustive  — model checking: enumerate a crash at every persist
//	               boundary the workload emits, layer adversarial
//	               WPQ-drop / early-eviction / torn-write variants at
//	               each, recover, and validate against the
//	               durable-linearizability oracle.
//	-fuzz        — sample random persist boundaries (full variant sweep
//	               at each) until -seconds expires.
//	-replay      — re-execute a saved repro file.
//
// Exhaustive and fuzz modes print a one-line JSON summary on stdout
// and exit non-zero if any violation was found; -shrink reduces the
// first violation to a minimal repro and writes it to -repro.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"goptm/internal/core"
	"goptm/internal/crashcheck"
	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/runner"
	"goptm/internal/simtime"
)

const (
	accounts       = 64
	initialBalance = 1_000
)

// summary is the machine-readable result line.
type summary struct {
	Mode       string `json:"mode"`
	Configs    int    `json:"configs"`
	Events     int    `json:"events"`
	Points     int    `json:"points"`
	Variants   int    `json:"variants"`
	Faults     int    `json:"faults_injected"`
	Violations int    `json:"violations"`
	Repro      string `json:"repro,omitempty"`
}

func main() {
	iters := flag.Int("iters", 50, "legacy torture: crash/recover rounds per configuration")
	seed := flag.Uint64("seed", 1, "workload determinism seed (and legacy torture RNG seed)")
	exhaustive := flag.Bool("exhaustive", false, "check every persist boundary of every selected configuration")
	fuzz := flag.Bool("fuzz", false, "sample random persist boundaries until -seconds expires")
	seconds := flag.Int("seconds", 30, "fuzz: total wall-clock budget across configurations")
	ops := flag.Int("ops", 4, "checker: workload operations per run")
	workloads := flag.String("workload", "counter", "checker workload: counter, transfer, or all")
	algos := flag.String("algo", "all", "algorithm: redo, undo, or all")
	domains := flag.String("domain", "all", "durability domain (by name) or all")
	mutate := flag.String("mutate-drop-fence", "", "elide one named fence site (mutation self-test; the checker should object)")
	replayPath := flag.String("replay", "", "re-execute the repro file at this path and report")
	doShrink := flag.Bool("shrink", false, "shrink the first violation to a minimal repro")
	reproPath := flag.String("repro", "ptmcrash-repro.json", "where -shrink writes the minimal repro")
	jobs := flag.Int("jobs", 0, "checker worker goroutines (0 = GOMAXPROCS)")
	shardSpec := flag.String("shard", "", "check only shard i/n of the crash points (1-based, e.g. 2/4)")
	flag.Parse()

	switch {
	case *replayPath != "":
		os.Exit(replayMode(*replayPath))
	case *exhaustive || *fuzz:
		os.Exit(checkMode(*exhaustive, *workloads, *algos, *domains, *ops, *seed, *mutate,
			*seconds, *doShrink, *reproPath, *jobs, *shardSpec))
	default:
		os.Exit(tortureMode(*iters, *seed))
	}
}

// fail prints an operational error and returns the usage exit code.
func fail(err error) int {
	fmt.Fprintf(os.Stderr, "ptmcrash: %v\n", err)
	return 2
}

// selectAlgos resolves the -algo flag.
func selectAlgos(name string) ([]core.Algo, error) {
	switch name {
	case "all":
		return []core.Algo{core.OrecLazy, core.OrecEager}, nil
	case "redo", "lazy":
		return []core.Algo{core.OrecLazy}, nil
	case "undo", "eager":
		return []core.Algo{core.OrecEager}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want redo, undo, or all)", name)
	}
}

// selectDomains resolves the -domain flag.
func selectDomains(name string) ([]durability.Domain, error) {
	if name == "all" {
		return durability.All(), nil
	}
	d, err := durability.Parse(name)
	if err != nil {
		return nil, err
	}
	return []durability.Domain{d}, nil
}

// selectWorkloads resolves the -workload flag.
func selectWorkloads(name string, seed uint64) ([]crashcheck.Workload, error) {
	if name == "all" {
		name = "counter,transfer"
	}
	var out []crashcheck.Workload
	for _, n := range strings.Split(name, ",") {
		wl, err := crashcheck.Lookup(strings.TrimSpace(n), seed)
		if err != nil {
			return nil, err
		}
		out = append(out, wl)
	}
	return out, nil
}

// checkMode runs the exhaustive or fuzz checker over the selected
// configuration matrix and prints the JSON summary line.
func checkMode(exhaustive bool, workloads, algos, domains string, ops int, seed uint64,
	mutate string, seconds int, doShrink bool, reproPath string, jobs int, shardSpec string) int {
	wls, err := selectWorkloads(workloads, seed)
	if err != nil {
		return fail(err)
	}
	as, err := selectAlgos(algos)
	if err != nil {
		return fail(err)
	}
	ds, err := selectDomains(domains)
	if err != nil {
		return fail(err)
	}
	shard, err := runner.ParseShard(shardSpec)
	if err != nil {
		return fail(err)
	}

	sum := summary{Mode: "exhaustive"}
	if !exhaustive {
		sum.Mode = "fuzz"
	}
	nConfigs := len(wls) * len(as) * len(ds)
	budget := time.Duration(seconds) * time.Second / time.Duration(nConfigs)
	fuzzSeed := seed ^ 0x5EED
	if !exhaustive {
		fmt.Fprintf(os.Stderr, "ptmcrash: fuzz seed=%d fuzzseed=%#x budget=%v/config\n", seed, fuzzSeed, budget)
	}

	var firstOpts crashcheck.Options
	var first *crashcheck.Violation
	for _, wl := range wls {
		for _, algo := range as {
			for _, dom := range ds {
				o := crashcheck.Options{
					Workload: wl, Algo: algo, Domain: dom, Ops: ops,
					MutateDropFence: mutate, Jobs: jobs, Shard: shard,
				}
				var rep *crashcheck.Report
				var err error
				if exhaustive {
					rep, err = crashcheck.Run(o)
				} else {
					rep, err = crashcheck.Fuzz(o, budget, fuzzSeed)
				}
				if err != nil {
					return fail(err)
				}
				sum.Configs++
				sum.Events += rep.Events
				sum.Points += rep.Points
				sum.Variants += rep.Variants
				sum.Faults += rep.FaultsInjected
				sum.Violations += len(rep.Violations)
				for i := range rep.Violations {
					fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", rep.Violations[i].String())
					if first == nil {
						v := rep.Violations[i]
						first, firstOpts = &v, o
					}
				}
			}
		}
	}

	if first != nil && doShrink {
		repro, err := crashcheck.Shrink(firstOpts, first)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptmcrash: shrink: %v\n", err)
		} else if err := repro.WriteFile(reproPath); err != nil {
			fmt.Fprintf(os.Stderr, "ptmcrash: %v\n", err)
		} else {
			sum.Repro = reproPath
			fmt.Fprintf(os.Stderr, "ptmcrash: minimal repro (ops=%d, %d faults) written to %s\n",
				repro.Ops, len(repro.Faults), reproPath)
		}
	}

	out, _ := json.Marshal(sum)
	fmt.Println(string(out))
	if sum.Violations > 0 {
		return 1
	}
	return 0
}

// replayMode re-executes a saved repro and reports whether it still
// violates (exit 1) or has been fixed (exit 0).
func replayMode(path string) int {
	repro, err := crashcheck.LoadRepro(path)
	if err != nil {
		return fail(err)
	}
	v, err := crashcheck.Replay(repro)
	if err != nil {
		return fail(err)
	}
	if v == nil {
		fmt.Printf("repro %s no longer violates\n", path)
		return 0
	}
	fmt.Printf("reproduced: %s\n", v.String())
	return 1
}

// tortureMode is the legacy random-point crash loop.
func tortureMode(iters int, seed uint64) int {
	domains := []durability.Domain{durability.ADR, durability.EADR, durability.PDRAM, durability.PDRAMLite}
	algos := []core.Algo{core.OrecLazy, core.OrecEager}

	total := 0
	for _, dom := range domains {
		for _, algo := range algos {
			n, err := torture(algo, dom, iters, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ptmcrash: %v/%v: %v\n", algo, dom, err)
				return 1
			}
			total += n
			fmt.Printf("%-6v %-11v %4d crash points survived\n", algo, dom, n)
		}
	}
	fmt.Printf("OK: %d crash/recover rounds, all invariants held\n", total)
	return 0
}

// torture runs iters rounds for one configuration and returns the
// number of crash points exercised.
func torture(algo core.Algo, dom durability.Domain, iters int, seed uint64) (int, error) {
	points := []string{"lazy:pre-marker", "lazy:post-marker", "lazy:mid-writeback", "lazy:post-writeback"}
	if algo == core.OrecEager {
		points = []string{"eager:post-log", "eager:pre-clear"}
	}
	r := simtime.NewRand(seed)
	survived := 0
	for i := 0; i < iters; i++ {
		tm, err := core.New(core.Config{
			Algo: algo, Medium: core.MediumNVM, Domain: dom,
			Threads: 1, HeapWords: 1 << 16, MaxLogEntries: 256, OrecSize: 1 << 12,
		})
		if err != nil {
			return survived, err
		}

		// Build the bank.
		th := tm.Thread(0)
		var base memdev.Addr
		th.Atomic(func(tx *core.Tx) {
			base = tx.Alloc(accounts)
			for a := 0; a < accounts; a++ {
				tx.Store(base+memdev.Addr(a), initialBalance)
			}
		})
		tm.SetRoot(th, 0, base)

		// Commit a few transfers, then crash one mid-protocol.
		committed := 5 + r.Intn(20)
		for t := 0; t < committed; t++ {
			transfer(th, base, r)
		}
		point := points[r.Intn(len(points))]
		fired := false
		tm.SetCrashHook(func(p string, _ *core.Thread) {
			if p == point && !fired {
				fired = true
				panic(core.PowerFailure{Point: p})
			}
		})
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(core.PowerFailure); !ok {
						panic(rec)
					}
				}
			}()
			transfer(th, base, r)
		}()
		vt := th.Now()
		th.Detach()
		tm.Crash(vt)

		tm2, _, err := core.Reopen(tm.Bus(), tm.Config())
		if err != nil {
			return survived, fmt.Errorf("round %d (%s): reopen: %w", i, point, err)
		}
		if err := verify(tm2); err != nil {
			return survived, fmt.Errorf("round %d (crash at %s): %w", i, point, err)
		}
		survived++
	}
	return survived, nil
}

// transfer moves a random amount between two random accounts.
func transfer(th *core.Thread, base memdev.Addr, r *simtime.Rand) {
	from := memdev.Addr(r.Intn(accounts))
	to := memdev.Addr(r.Intn(accounts))
	amt := uint64(r.Intn(100))
	th.Atomic(func(tx *core.Tx) {
		f := tx.Load(base + from)
		tx.Store(base+from, f-amt)
		t := tx.Load(base + to)
		tx.Store(base+to, t+amt)
	})
}

// verify checks conservation of the total balance on the recovered
// heap.
func verify(tm *core.TM) error {
	th := tm.Thread(0)
	defer th.Detach()
	base := tm.Root(th, 0)
	var sum uint64
	th.Atomic(func(tx *core.Tx) {
		sum = 0
		for a := 0; a < accounts; a++ {
			sum += tx.Load(base + memdev.Addr(a))
		}
	})
	if want := uint64(accounts * initialBalance); sum != want {
		return fmt.Errorf("total balance %d, want %d — atomicity violated", sum, want)
	}
	return nil
}
