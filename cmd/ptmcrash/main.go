// Command ptmcrash is a crash-recovery torture tool: it runs a
// transfer workload, injects a simulated power failure at a random
// commit-protocol point, recovers, and verifies that the recovered
// heap is transactionally consistent (total balance conserved, every
// committed transaction durable). It repeats this for -iters rounds
// across both algorithms and all durability domains.
package main

import (
	"flag"
	"fmt"
	"os"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/simtime"
)

const (
	accounts       = 64
	initialBalance = 1_000
)

func main() {
	iters := flag.Int("iters", 50, "crash/recover rounds per configuration")
	seed := flag.Uint64("seed", 1, "torture RNG seed")
	flag.Parse()

	domains := []durability.Domain{durability.ADR, durability.EADR, durability.PDRAM, durability.PDRAMLite}
	algos := []core.Algo{core.OrecLazy, core.OrecEager}

	total := 0
	for _, dom := range domains {
		for _, algo := range algos {
			n, err := torture(algo, dom, *iters, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ptmcrash: %v/%v: %v\n", algo, dom, err)
				os.Exit(1)
			}
			total += n
			fmt.Printf("%-6v %-11v %4d crash points survived\n", algo, dom, n)
		}
	}
	fmt.Printf("OK: %d crash/recover rounds, all invariants held\n", total)
}

// torture runs iters rounds for one configuration and returns the
// number of crash points exercised.
func torture(algo core.Algo, dom durability.Domain, iters int, seed uint64) (int, error) {
	points := []string{"lazy:pre-marker", "lazy:post-marker", "lazy:mid-writeback", "lazy:post-writeback"}
	if algo == core.OrecEager {
		points = []string{"eager:post-log", "eager:pre-clear"}
	}
	r := simtime.NewRand(seed)
	survived := 0
	for i := 0; i < iters; i++ {
		tm, err := core.New(core.Config{
			Algo: algo, Medium: core.MediumNVM, Domain: dom,
			Threads: 1, HeapWords: 1 << 16, MaxLogEntries: 256, OrecSize: 1 << 12,
		})
		if err != nil {
			return survived, err
		}

		// Build the bank.
		th := tm.Thread(0)
		var base memdev.Addr
		th.Atomic(func(tx *core.Tx) {
			base = tx.Alloc(accounts)
			for a := 0; a < accounts; a++ {
				tx.Store(base+memdev.Addr(a), initialBalance)
			}
		})
		tm.SetRoot(th, 0, base)

		// Commit a few transfers, then crash one mid-protocol.
		committed := 5 + r.Intn(20)
		for t := 0; t < committed; t++ {
			transfer(th, base, r)
		}
		point := points[r.Intn(len(points))]
		fired := false
		tm.SetCrashHook(func(p string, _ *core.Thread) {
			if p == point && !fired {
				fired = true
				panic(core.PowerFailure{Point: p})
			}
		})
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(core.PowerFailure); !ok {
						panic(rec)
					}
				}
			}()
			transfer(th, base, r)
		}()
		vt := th.Now()
		th.Detach()
		tm.Crash(vt)

		tm2, _, err := core.Reopen(tm.Bus(), tm.Config())
		if err != nil {
			return survived, fmt.Errorf("round %d (%s): reopen: %w", i, point, err)
		}
		if err := verify(tm2); err != nil {
			return survived, fmt.Errorf("round %d (crash at %s): %w", i, point, err)
		}
		survived++
	}
	return survived, nil
}

// transfer moves a random amount between two random accounts.
func transfer(th *core.Thread, base memdev.Addr, r *simtime.Rand) {
	from := memdev.Addr(r.Intn(accounts))
	to := memdev.Addr(r.Intn(accounts))
	amt := uint64(r.Intn(100))
	th.Atomic(func(tx *core.Tx) {
		f := tx.Load(base + from)
		tx.Store(base+from, f-amt)
		t := tx.Load(base + to)
		tx.Store(base+to, t+amt)
	})
}

// verify checks conservation of the total balance on the recovered
// heap.
func verify(tm *core.TM) error {
	th := tm.Thread(0)
	defer th.Detach()
	base := tm.Root(th, 0)
	var sum uint64
	th.Atomic(func(tx *core.Tx) {
		sum = 0
		for a := 0; a < accounts; a++ {
			sum += tx.Load(base + memdev.Addr(a))
		}
	})
	if want := uint64(accounts * initialBalance); sum != want {
		return fmt.Errorf("total balance %d, want %d — atomicity violated", sum, want)
	}
	return nil
}
