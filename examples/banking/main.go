// Banking: a concurrent persistent bank. Four tellers transfer money
// between accounts under the PTM while an auditor repeatedly checks,
// inside read-only transactions, that the total balance is conserved
// — demonstrating atomicity and isolation under real concurrency,
// plus the throughput cost of the durability domain.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
)

const (
	tellers        = 4
	accounts       = 128
	initialBalance = 1_000
	transfersEach  = 2_000
)

func main() {
	for _, dom := range []durability.Domain{durability.ADR, durability.EADR, durability.PDRAM} {
		runBank(dom)
	}
}

func runBank(dom durability.Domain) {
	tm, err := core.New(core.Config{
		Algo:      core.OrecLazy,
		Medium:    core.MediumNVM,
		Domain:    dom,
		Threads:   tellers + 1, // +1 auditor
		HeapWords: 1 << 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Open the bank.
	setup := tm.Thread(0)
	var ledger memdev.Addr
	setup.Atomic(func(tx *core.Tx) {
		ledger = tx.Alloc(accounts)
		for a := 0; a < accounts; a++ {
			tx.Store(ledger+memdev.Addr(a), initialBalance)
		}
	})
	tm.SetRoot(setup, 0, ledger)
	setup.Detach()

	// Attach everyone to the virtual-time barrier before anyone runs.
	threads := make([]*core.Thread, tellers+1)
	for i := range threads {
		threads[i] = tm.Thread(i)
	}

	var wg sync.WaitGroup
	var audits, violations int
	for tid := 0; tid < tellers; tid++ {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			defer th.Detach()
			r := th.Rand()
			for i := 0; i < transfersEach; i++ {
				from := memdev.Addr(r.Intn(accounts))
				to := memdev.Addr(r.Intn(accounts))
				amt := uint64(r.Intn(50))
				th.Atomic(func(tx *core.Tx) {
					tx.Store(ledger+from, tx.Load(ledger+from)-amt)
					tx.Store(ledger+to, tx.Load(ledger+to)+amt)
				})
			}
		}(threads[tid])
	}
	wg.Add(1)
	go func(th *core.Thread) {
		defer wg.Done()
		defer th.Detach()
		for i := 0; i < 200; i++ {
			var sum uint64
			th.Atomic(func(tx *core.Tx) {
				sum = 0
				for a := 0; a < accounts; a++ {
					sum += tx.Load(ledger + memdev.Addr(a))
				}
			})
			audits++
			if sum != accounts*initialBalance {
				violations++
			}
			th.Compute(10_000) // audit every 10 µs of virtual time
		}
	}(threads[tellers])
	wg.Wait()

	var final uint64
	check := tm.Thread(0)
	check.Atomic(func(tx *core.Tx) {
		final = 0
		for a := 0; a < accounts; a++ {
			final += tx.Load(ledger + memdev.Addr(a))
		}
	})
	elapsed := check.Now()
	check.Detach()

	fmt.Printf("%-10s %5d transfers, %3d mid-flight audits (%d violations), total=%d, virtual time %.2f ms, commits/abort %.1f\n",
		dom, tellers*transfersEach, audits, violations, final,
		float64(elapsed)/1e6,
		float64(tm.Commits())/float64(max64(tm.Aborts(), 1)))
	if violations > 0 || final != accounts*initialBalance {
		log.Fatal("invariant violated — the PTM failed isolation/atomicity")
	}
	if dom == durability.ADR {
		fmt.Printf("machine snapshot under %s:\n%s\n", dom, indent(tm.MachineStats().String()))
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
