// KV store: build a small persistent key/value service with the
// public API — a hash index over record blocks — run a mixed
// workload, crash mid-flight, recover, and verify every committed
// write is still there while the in-flight one is not.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/pstruct/phash"
)

func main() {
	tm, err := core.New(core.Config{
		Algo:      core.OrecLazy,
		Medium:    core.MediumNVM,
		Domain:    durability.ADR,
		Threads:   1,
		HeapWords: 1 << 18,
	})
	if err != nil {
		log.Fatal(err)
	}
	th := tm.Thread(0)

	// A persistent map of string-ish keys (hashed to uint64) to
	// 4-word value records.
	var kv phash.Map
	th.Atomic(func(tx *core.Tx) { kv = phash.Create(tx, 256) })
	tm.SetRoot(th, 0, kv.Table())

	put := func(key uint64, vals [4]uint64) {
		th.Atomic(func(tx *core.Tx) {
			rec, ok := kv.Get(tx, key)
			if !ok {
				r := tx.Alloc(4)
				kv.Put(tx, key, uint64(r))
				rec = uint64(r)
			}
			for i, v := range vals {
				tx.Store(memdev.Addr(rec)+memdev.Addr(i), v)
			}
		})
	}

	for k := uint64(0); k < 100; k++ {
		put(k, [4]uint64{k, k * 2, k * 3, k * 4})
	}
	fmt.Println("committed 100 records")

	// Start a write of key 7 but crash before it commits: install a
	// crash hook at the pre-marker protocol point.
	tm.SetCrashHook(func(point string, _ *core.Thread) {
		if point == "lazy:pre-marker" {
			panic(core.PowerFailure{Point: point})
		}
	})
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(core.PowerFailure); !ok {
					panic(r)
				}
				fmt.Println("power failed while updating key 7 (before its commit point)")
			}
		}()
		put(7, [4]uint64{999, 999, 999, 999})
	}()

	vt := th.Now()
	th.Detach()
	tm.Crash(vt)

	tm2, rep, err := core.Reopen(tm.Bus(), tm.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d redo replays, %d undo rollbacks, %d heap blocks swept\n",
		rep.RedoReplayed, rep.UndoRolledBack, rep.BlocksSwept)

	th2 := tm2.Thread(0)
	defer th2.Detach()
	kv2 := phash.Open(tm2.Root(th2, 0))
	bad := 0
	th2.Atomic(func(tx *core.Tx) {
		for k := uint64(0); k < 100; k++ {
			recW, ok := kv2.Get(tx, k)
			if !ok {
				bad++
				continue
			}
			rec := memdev.Addr(recW)
			for i := uint64(0); i < 4; i++ {
				if tx.Load(rec+memdev.Addr(i)) != k*(i+1) {
					bad++
				}
			}
		}
	})
	if bad != 0 {
		log.Fatalf("%d corrupted records after recovery", bad)
	}
	fmt.Println("all 100 committed records intact; the torn update of key 7 was discarded")
}
