// HTM and reserve energy: the two future-work directions of the
// paper's §V, demonstrated on the simulated machine.
//
// Part 1 runs the same counter workload under eADR with the software
// redo PTM and with TSX-style hardware transactions: HTM commits with
// no log at all (stores are durable at retirement under eADR), so it
// finishes the same work in less virtual time. Under ADR the HTM
// configuration is rejected outright — a clwb inside a hardware
// transaction aborts it.
//
// Part 2 estimates how much reserve power each durability domain
// would need to honor its crash promise for the machine state this
// workload leaves behind.
//
//	go run ./examples/htmenergy
package main

import (
	"fmt"
	"log"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/energy"
	"goptm/internal/memdev"
)

func main() {
	// Part 1: HTM vs software redo under eADR.
	fmt.Println("HTM vs software redo (eADR, 2000 transactions of 16 writes):")
	for _, algo := range []core.Algo{core.OrecLazy, core.AlgoHTM} {
		vt, fallbacks := runCounter(algo)
		fmt.Printf("  %-5s finished in %6.2f ms virtual (%d fallbacks)\n",
			algo, float64(vt)/1e6, fallbacks)
	}

	// HTM under ADR is a configuration error, not a silent hazard.
	if _, err := core.New(core.Config{
		Algo: core.AlgoHTM, Medium: core.MediumNVM, Domain: durability.ADR, Threads: 1,
	}); err != nil {
		fmt.Printf("\nHTM under ADR is rejected: %v\n", err)
	}

	// Part 2: reserve-power estimates.
	fmt.Println("\nReserve power to honor each domain's crash promise (same workload):")
	platform := energy.DefaultPlatform()
	for _, dom := range []durability.Domain{
		durability.ADR, durability.EADR, durability.PDRAM, durability.PDRAMLite,
	} {
		algo := core.OrecLazy
		tm, err := core.New(core.Config{
			Algo: algo, Medium: core.MediumNVM, Domain: dom,
			Threads: 1, HeapWords: 1 << 18,
		})
		if err != nil {
			log.Fatal(err)
		}
		th := tm.Thread(0)
		var a memdev.Addr
		th.Atomic(func(tx *core.Tx) { a = tx.Alloc(1 << 12) })
		for i := 0; i < 500; i++ {
			i := i
			th.Atomic(func(tx *core.Tx) {
				for w := 0; w < 8; w++ {
					tx.Store(a+memdev.Addr((i*8+w)%(1<<12)), uint64(i))
				}
			})
		}
		vt := th.Now()
		th.Detach()
		fmt.Printf("  %s\n", energy.Estimate(tm.Bus(), vt, platform))
	}
}

// runCounter performs the fixed workload and returns the virtual time
// it took plus HTM fallback count.
func runCounter(algo core.Algo) (int64, int64) {
	tm, err := core.New(core.Config{
		Algo: algo, Medium: core.MediumNVM, Domain: durability.EADR,
		Threads: 1, HeapWords: 1 << 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	th := tm.Thread(0)
	defer th.Detach()
	var a memdev.Addr
	th.Atomic(func(tx *core.Tx) { a = tx.Alloc(16) })
	start := th.Now()
	for i := 0; i < 2000; i++ {
		i := i
		th.Atomic(func(tx *core.Tx) {
			for w := 0; w < 16; w++ {
				tx.Store(a+memdev.Addr(w), uint64(i+w))
			}
		})
	}
	return th.Now() - start, th.Stats().HTMFallbacks
}
