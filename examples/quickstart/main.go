// Quickstart: create a persistent TM on the simulated Optane machine,
// run a transaction, crash the machine, recover, and observe that
// committed data survived.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func main() {
	// A small machine: 1 thread, ADR durability (explicit clwb+sfence,
	// like today's Optane deployments), redo logging.
	tm, err := core.New(core.Config{
		Algo:      core.OrecLazy,
		Medium:    core.MediumNVM,
		Domain:    durability.ADR,
		Threads:   1,
		HeapWords: 1 << 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	th := tm.Thread(0)

	// Allocate a persistent record and publish it via a root slot —
	// everything inside Atomic is failure-atomic.
	var rec memdev.Addr
	th.Atomic(func(tx *core.Tx) {
		rec = tx.Alloc(2)
		tx.Store(rec, 42)
		tx.Store(rec+1, 2026)
	})
	tm.SetRoot(th, 0, rec)
	fmt.Println("committed a record {42, 2026} to persistent memory")

	// Power failure.
	vt := th.Now()
	th.Detach()
	tm.Crash(vt)
	fmt.Println("simulated power failure")

	// Reboot: reattach, run recovery (log replay/rollback + heap GC),
	// and read the data back.
	tm2, report, err := core.Reopen(tm.Bus(), tm.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %+v\n", report)

	th2 := tm2.Thread(0)
	defer th2.Detach()
	root := tm2.Root(th2, 0)
	th2.Atomic(func(tx *core.Tx) {
		fmt.Printf("after recovery the record reads {%d, %d}\n",
			tx.Load(root), tx.Load(root+1))
	})
}
