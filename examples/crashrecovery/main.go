// Crash recovery across durability domains: the same unfenced store
// sequence survives or dies depending on the durability domain — the
// central subject of the paper. The demo writes three records with
// three levels of persistence care and crashes the machine under each
// domain's power-failure policy.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"

	"goptm/internal/durability"
	"goptm/internal/membus"
	"goptm/internal/memdev"
)

func main() {
	fmt.Println("What survives a power failure? (value 0 = lost)")
	fmt.Println("\ncrash immediately after the last store:")
	fmt.Printf("%-12s %14s %14s %14s\n", "domain", "store only", "store+clwb", "clwb+sfence")
	for _, dom := range []durability.Domain{
		durability.NoReserve, durability.ADR, durability.EADR,
	} {
		demo(dom, 0)
	}
	fmt.Println("\ncrash after the machine idles 100 µs (WPQ fully drained):")
	fmt.Printf("%-12s %14s %14s %14s\n", "domain", "store only", "store+clwb", "clwb+sfence")
	for _, dom := range []durability.Domain{
		durability.NoReserve, durability.ADR, durability.EADR,
	} {
		demo(dom, 100_000)
	}
	fmt.Println()
	fmt.Println("NoReserve: even fenced data is unsafe until the media drains — deprecated for a reason.")
	fmt.Println("ADR:       a clwb'ed line is durable once the WPQ accepts it; bare stores are lost.")
	fmt.Println("eADR:      reserve power flushes the caches — every completed store is durable,")
	fmt.Println("           so the PTM can elide clwb and sfence entirely (the paper's headline).")
}

func demo(dom durability.Domain, idleNS int64) {
	bus := membus.MustNew(membus.Config{
		Threads: 1,
		Domain:  dom,
		Dev:     memdev.Config{NVMWords: 1 << 12, DRAMWords: 1 << 10},
	})
	ctx := bus.NewContext(0)

	const (
		plain  = memdev.Addr(0)   // store, no flush
		flushd = memdev.Addr(64)  // store + clwb, no fence
		fenced = memdev.Addr(128) // store + clwb + sfence
	)
	ctx.Store(plain, 1)

	ctx.Store(flushd, 2)
	if dom.RequiresFlush() {
		ctx.CLWB(flushd)
	}

	ctx.Store(fenced, 3)
	if dom.RequiresFlush() {
		ctx.CLWB(fenced)
		ctx.SFence()
	}

	ctx.Compute(idleNS)
	vt := ctx.Now()
	ctx.Detach()
	bus.Crash(vt)

	dev := bus.Device()
	fmt.Printf("%-12s %14d %14d %14d\n",
		dom, dev.Load(plain), dev.Load(flushd), dev.Load(fenced))
}
