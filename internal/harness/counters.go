package harness

// counters.go turns counters-enabled sweep results into the two
// user-facing forms of the hardware-counter model: the aligned
// per-cell counter/attribution tables (`ptmbench -counters`,
// `ptmtables -counters`) and the diffable metrics-report JSON artifact
// (`-metricsjson`, consumed by cmd/ptmstat).

import (
	"fmt"
	"io"

	"goptm/internal/metrics"
)

// CellMetrics flattens the figure's counters-enabled points into
// report cells, in sweep order. Points measured without a metrics
// registry (or sharded away) are skipped.
func (f Figure) CellMetrics() []metrics.CellMetrics {
	var out []metrics.CellMetrics
	for _, s := range f.Series {
		for i, r := range s.Results {
			if r.Metrics == nil {
				continue
			}
			c := metrics.CellMetrics{
				Figure:   f.Name,
				Workload: f.Workload,
				Cell:     s.Cell.Label(),
				Threads:  f.Threads[i],
				Counters: *r.Metrics,
			}
			b := r.Breakdown
			c.Attribution = metrics.AttributionFromBreakdown(&b)
			metrics.DeriveCell(&c)
			out = append(out, c)
		}
	}
	return out
}

// AppendMetrics appends the figure's counters-enabled points to a
// metrics report.
func AppendMetrics(rep *metrics.Report, f Figure) {
	rep.Cells = append(rep.Cells, f.CellMetrics()...)
}

// NewReport returns an empty metrics report with the current schema
// stamp.
func NewReport() *metrics.Report {
	return &metrics.Report{Schema: metrics.ReportSchema}
}

// PrintCounters renders the figure's hardware-counter report: one row
// per (cell, threads) point with the media-amplification ratios, the
// XPBuffer coalescing rate, durable log volume per commit, and the
// commit-latency attribution (shares of whole-transaction time; bus
// shares overlap protocol phases). "dominant" names the largest
// bus-side wait — what commit latency is actually limited by. Empty
// unless the sweep ran with counters enabled.
func (f Figure) PrintCounters(w io.Writer) {
	cells := f.CellMetrics()
	if len(cells) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s — %s (hardware counters)\n", f.Name, f.Workload)
	fmt.Fprintf(w, "%-26s %3s %9s %6s %6s %7s %8s %7s %7s %7s %6s %s\n",
		"curve", "thr", "commits", "w-amp", "r-amp", "xpbuf%", "logB/c",
		"stall%", "fence%", "media%", "abrt%", "dominant")
	for i := range cells {
		c := &cells[i]
		logPerCommit := float64(0)
		if c.Counters.Commits > 0 {
			logPerCommit = float64(c.Counters.LogBytes) / float64(c.Counters.Commits)
		}
		dom, _ := c.Attribution.Dominant()
		fmt.Fprintf(w, "%-26s %3d %9d %6.2f %6.3f %7.1f %8.1f %7.1f %7.1f %7.1f %6.1f %s\n",
			c.Cell, c.Threads, c.Counters.Commits,
			c.Derived.WriteAmp, c.Derived.ReadAmp, c.Derived.XPBufWriteHitPct,
			logPerCommit,
			100*c.Attribution.WPQStallShare, 100*c.Attribution.FenceWaitShare,
			100*c.Attribution.MediaWaitShare, 100*c.Attribution.AbortShare,
			dom)
	}
}
