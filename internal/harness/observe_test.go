package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/obs"
	"goptm/internal/workload/tatp"
)

func observedRun(t *testing.T, dom durability.Domain, trace bool) Result {
	t.Helper()
	const threads = 4
	rc := RunConfig{
		Threads:   threads,
		WarmupNS:  200_000,
		MeasureNS: 1_000_000,
		Recorder:  obs.New(threads, trace),
	}
	cell := Cell{Medium: core.MediumNVM, Domain: dom, Algo: core.OrecLazy}
	res, err := Run(cell, rc, tatp.New(tatp.Config{Subscribers: 2048}))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBreakdownADRFenceWaitExceedsEADR is the paper's core observation
// made visible by the breakdown: ADR transactions spend real time in
// fence waits, eADR transactions spend none (flushes and fences are
// elided).
func TestBreakdownADRFenceWaitExceedsEADR(t *testing.T) {
	adr := observedRun(t, durability.ADR, false).Breakdown
	eadr := observedRun(t, durability.EADR, false).Breakdown

	if adr.NS[obs.PhaseTxn] == 0 || eadr.NS[obs.PhaseTxn] == 0 {
		t.Fatal("no transaction time recorded")
	}
	if adr.NS[obs.PhaseFenceWait] == 0 {
		t.Fatal("ADR run recorded no fence-wait time")
	}
	if eadr.NS[obs.PhaseFenceWait] != 0 {
		t.Fatalf("eADR run recorded %d ns of fence-wait; the domain elides fences",
			eadr.NS[obs.PhaseFenceWait])
	}
	if adr.Share(obs.PhaseFenceWait) <= eadr.Share(obs.PhaseFenceWait) {
		t.Fatalf("fence-wait share: ADR %.3f <= eADR %.3f",
			adr.Share(obs.PhaseFenceWait), eadr.Share(obs.PhaseFenceWait))
	}
}

// TestRunTracedEmitsLoadableTrace checks the CLI-facing trace path:
// valid JSON, one named lane per worker, and at least one counter
// track.
func TestRunTracedEmitsLoadableTrace(t *testing.T) {
	const threads = 2
	rc := RunConfig{Threads: threads, WarmupNS: 100_000, MeasureNS: 400_000}
	cell := Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}
	var buf bytes.Buffer
	res, err := RunTraced(cell, rc, tatp.New(tatp.Config{Subscribers: 1024}), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("traced run committed nothing")
	}
	if res.Breakdown.Empty() {
		t.Fatal("traced run has an empty breakdown")
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	lanes := map[int]bool{}
	counters := map[string]bool{}
	spans := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				lanes[e.TID] = true
			}
		case "C":
			counters[e.Name] = true
		case "X":
			spans++
		}
	}
	if len(lanes) != threads {
		t.Fatalf("trace has %d named lanes, want %d", len(lanes), threads)
	}
	if len(counters) == 0 {
		t.Fatal("trace has no counter tracks")
	}
	if spans == 0 {
		t.Fatal("trace has no spans")
	}
}

// TestFigureBreakdownTable checks the ptmbench rendering path end to
// end: an observed panel prints one breakdown row per curve.
func TestFigureBreakdownTable(t *testing.T) {
	p := Params{Threads: []int{2}, WarmupNS: 100_000, MeasureNS: 400_000, Small: true, Observe: true}
	cells := []Cell{
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy},
	}
	fig, err := RunPanel("test", TATPWorkload(), cells, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.PrintBreakdown(&buf)
	out := buf.String()
	for _, want := range []string{"fence-wait", "Optane_ADR_R", "Optane_eADR_R"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown table missing %q:\n%s", want, out)
		}
	}
	// Without Observe the table must be silent (no recorder attached).
	p.Observe = false
	fig2, err := RunPanel("test", TATPWorkload(), cells[:1], p, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	fig2.PrintBreakdown(&buf)
	if buf.Len() != 0 {
		t.Fatalf("unobserved panel printed a breakdown:\n%s", buf.String())
	}
}
