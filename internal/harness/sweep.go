package harness

// sweep.go bridges the experiment definitions (experiments.go) to the
// parallel engine (internal/runner): every figure and table is
// decomposed into independent jobs — each owning its whole simulated
// machine — and reassembled in definition order, so the rendered
// output is byte-identical at any worker count. All sweep jobs run
// under the lockstep scheduler, which is what makes a cell's result a
// pure function of its configuration and therefore cacheable.

import (
	"fmt"
	"io"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/runner"
	"goptm/internal/workload/kvstore"
)

// SimVersion stamps every cache key. Bump it whenever a simulator
// change can alter any measurement — timing model, scheduler,
// workload generation — so stale cached results can never be mistaken
// for current ones.
const SimVersion = 1

// SweepOptions configures how a sweep executes (not what it
// measures — that stays in Params). The zero value is the serial,
// uncached, unsharded path.
type SweepOptions struct {
	// Jobs bounds the worker pool; <= 0 selects GOMAXPROCS, 1 is serial.
	Jobs int
	// Cache, when non-nil, serves previously simulated points and
	// stores fresh ones.
	Cache *runner.Cache
	// Shard restricts execution to this slice of the job list (CI
	// splitting); skipped points render as "-".
	Shard runner.Shard
	// Progress receives per-cell completion lines and ETA (nil =
	// silent).
	Progress *runner.Progress
}

// seriesSamples is how many fixed-interval samples a counters-enabled
// sweep cell records across its warmup + measurement window.
const seriesSamples = 64

// pointKey is the canonical cache identity of one measurement. Field
// order is the canonical JSON order — changing it orphans every
// existing cache entry (bump SimVersion if you must).
type pointKey struct {
	Sim        int    `json:"sim"`
	Workload   string `json:"workload"`
	Cell       string `json:"cell"`
	Threads    int    `json:"threads"`
	WarmupNS   int64  `json:"warmup_ns"`
	MeasureNS  int64  `json:"measure_ns"`
	Small      bool   `json:"small"`
	Observe    bool   `json:"observe"`
	Counters   bool   `json:"counters,omitempty"`
	L3Lines    int    `json:"l3_lines,omitempty"`
	PageFrames int    `json:"page_frames,omitempty"`
	Items      int    `json:"items,omitempty"`
}

// panelJob builds the runner job for one (cell, thread-count) point.
func panelJob(mk WorkloadMaker, cell Cell, n int, p Params) runner.Job[Result] {
	return runner.Job[Result]{
		Label: fmt.Sprintf("%s %s @%d", mk.Name, cell.Label(), n),
		Key: runner.KeyJSON(pointKey{
			Sim: SimVersion, Workload: mk.Name, Cell: cell.Label(),
			Threads: n, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS,
			Small: p.Small, Observe: p.Observe, Counters: p.Counters,
		}),
		CostNS: p.WarmupNS + p.MeasureNS,
		Run: func() (Result, error) {
			rc := RunConfig{Threads: n, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS, Lockstep: true}
			if p.Observe || p.Counters {
				rc.Recorder = obs.New(n, false) // breakdown accounting, no event retention
			}
			if p.Counters {
				rc.Metrics = metrics.New(metrics.Config{
					SampleIntervalNS: (p.WarmupNS + p.MeasureNS) / seriesSamples,
					Serial:           true, // sweep jobs always run lockstep
				})
			}
			return Run(cell, rc, mk.Make(p))
		},
		Detail: func(r Result) string {
			return fmt.Sprintf("%s %-24s %2d threads: %10.0f ops/s (cache hit %.1f%%, p99 %d ns)",
				mk.Name, cell.Label(), n, r.ThroughputOps,
				100*r.Machine.HitRate(), r.Latency.Percentile(99))
		},
	}
}

// RunPanelOpts measures every (cell, thread-count) point of one panel
// through the parallel engine. Skipped (sharded-away) points stay
// zero Results and render as "-".
func RunPanelOpts(name string, mk WorkloadMaker, cells []Cell, p Params, opts SweepOptions) (Figure, error) {
	fig := Figure{Name: name, Workload: mk.Name, Threads: p.Threads}
	var jobs []runner.Job[Result]
	for _, cell := range cells {
		for _, n := range p.Threads {
			jobs = append(jobs, panelJob(mk, cell, n, p))
		}
	}
	outs, err := runner.Run(runnerOptions(opts), jobs)
	if err != nil {
		return fig, fmt.Errorf("%s: %w", name, err)
	}
	i := 0
	for _, cell := range cells {
		s := Series{Cell: cell}
		for range p.Threads {
			s.Results = append(s.Results, outs[i].Value)
			i++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// RunTable12Opts is RunTable12 through the parallel engine.
func RunTable12Opts(algo core.Algo, p Params, opts SweepOptions) (Figure, error) {
	mk := table12Maker()
	name := "Table I"
	if algo == core.OrecEager {
		name = "Table II"
	}
	return RunPanelOpts(name, mk, TableIOrIICells(algo), p, opts)
}

// RunTable3Opts is RunTable3 through the parallel engine. One job is
// one table row (the base + no-fence measurement pair): the two runs
// share a row, so splitting them would only reorder progress lines.
func RunTable3Opts(p Params, opts SweepOptions) ([]Table3Row, error) {
	const threads = 2
	var jobs []runner.Job[Table3Row]
	for _, mk := range table3Makers() {
		for _, algo := range []core.Algo{core.OrecEager, core.OrecLazy} {
			mk, algo := mk, algo
			cell := Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: algo}
			jobs = append(jobs, runner.Job[Table3Row]{
				Label: fmt.Sprintf("table3 %s %v", mk.Name, algo),
				Key: runner.KeyJSON(pointKey{
					Sim: SimVersion, Workload: "table3/" + mk.Name, Cell: cell.Label(),
					Threads: threads, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS,
					Small: p.Small,
				}),
				CostNS: 2 * (p.WarmupNS + p.MeasureNS),
				Run: func() (Table3Row, error) {
					rc := RunConfig{Threads: threads, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS, Lockstep: true}
					base, err := Run(cell, rc, mk.Make(p))
					if err != nil {
						return Table3Row{}, err
					}
					nfCell := cell
					nfCell.NoFence = true
					nf, err := Run(nfCell, rc, mk.Make(p))
					if err != nil {
						return Table3Row{}, err
					}
					return Table3Row{
						Workload: mk.Name,
						Algo:     algo,
						Base:     base.ThroughputOps,
						NoFence:  nf.ThroughputOps,
						Speedup:  (nf.ThroughputOps/base.ThroughputOps - 1) * 100,
					}, nil
				},
				Detail: func(row Table3Row) string {
					return fmt.Sprintf("table3 %-14s %-5v: base %10.0f nofence %10.0f speedup %5.1f%%",
						row.Workload, row.Algo, row.Base, row.NoFence, row.Speedup)
				},
			})
		}
	}
	outs, err := runner.Run(runnerOptions(opts), jobs)
	if err != nil {
		return nil, fmt.Errorf("Table III: %w", err)
	}
	rows := make([]Table3Row, len(outs))
	for i, o := range outs {
		rows[i] = o.Value
	}
	return rows, nil
}

// RunFig8Opts is RunFig8 through the parallel engine: one job per
// (working-set size, cell) point. Skipped points are absent from a
// point's Results map and render as "-".
func RunFig8Opts(p Params, opts SweepOptions) ([]Fig8Point, error) {
	cells := fig8Cells
	items := Fig8ItemCounts(p.Small)
	var jobs []runner.Job[Result]
	for _, n := range items {
		for _, cell := range cells {
			n, cell := n, cell
			jobs = append(jobs, runner.Job[Result]{
				Label: fmt.Sprintf("fig8 items=%d %s", n, cell.Label()),
				Key: runner.KeyJSON(pointKey{
					Sim: SimVersion, Workload: "fig8/kvstore", Cell: cell.Label(),
					Threads: 1, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS,
					Small: p.Small, L3Lines: fig8L3Lines, PageFrames: fig8PageFrames,
					Items: n,
				}),
				CostNS: p.WarmupNS + p.MeasureNS,
				Run: func() (Result, error) {
					rc := RunConfig{
						Threads:    1,
						WarmupNS:   p.WarmupNS,
						MeasureNS:  p.MeasureNS,
						L3Lines:    fig8L3Lines,
						PageFrames: fig8PageFrames,
						Lockstep:   true,
					}
					return Run(cell, rc, kvstore.New(kvstore.Config{Items: n}))
				},
				Detail: func(r Result) string {
					return fmt.Sprintf("fig8 items=%-6d %-24s %10.0f req/s", n, cell.Label(), r.ThroughputOps)
				},
			})
		}
	}
	outs, err := runner.Run(runnerOptions(opts), jobs)
	if err != nil {
		return nil, fmt.Errorf("Figure 8: %w", err)
	}
	var points []Fig8Point
	i := 0
	for _, n := range items {
		pt := Fig8Point{
			Items:   n,
			WSBytes: kvstore.WorkingSetWords(n) * 8,
			Results: map[string]float64{},
		}
		for _, cell := range cells {
			if outs[i].Source != runner.Skipped {
				pt.Results[cell.Label()] = outs[i].Value.ThroughputOps
			}
			i++
		}
		points = append(points, pt)
	}
	return points, nil
}

// runnerOptions translates SweepOptions to the runner's form.
func runnerOptions(o SweepOptions) runner.Options {
	return runner.Options{Jobs: o.Jobs, Shard: o.Shard, Cache: o.Cache, Progress: o.Progress}
}

// serialOptions wraps a legacy verbose writer in a Progress so the
// io.Writer entry points keep printing per-point lines.
func serialOptions(w io.Writer) SweepOptions {
	return SweepOptions{Jobs: 1, Progress: runner.NewProgress(w, nil)}
}
