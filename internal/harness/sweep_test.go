package harness

import (
	"bytes"
	"path/filepath"
	"testing"

	"goptm/internal/core"
	"goptm/internal/runner"
)

// sweepTestParams is a tiny panel that still exercises contention and
// the latency histogram: two thread counts, short windows, small data.
func sweepTestParams() Params {
	return Params{Threads: []int{1, 2}, WarmupNS: 100_000, MeasureNS: 400_000, Small: true}
}

func renderFigure(t *testing.T, f Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	f.Print(&buf)
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepDeterminism is the regression test for the engine's core
// guarantee: a parallel sweep renders byte-identical output to the
// serial one.
func TestSweepDeterminism(t *testing.T) {
	p := sweepTestParams()
	mk := table12Maker()
	cells := TableIOrIICells(core.OrecLazy)

	serial, err := RunPanelOpts("Table I", mk, cells, p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPanelOpts("Table I", mk, cells, p, SweepOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, want := renderFigure(t, par), renderFigure(t, serial)
	if !bytes.Equal(got, want) {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- jobs=4 ---\n%s", want, got)
	}
}

// TestSweepCache runs the same panel twice against one cache: the warm
// run must simulate nothing and still render byte-identical output —
// the round trip through the content-addressed store is exact.
func TestSweepCache(t *testing.T) {
	cache, err := runner.OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	p := sweepTestParams()
	mk := table12Maker()
	cells := TableIOrIICells(core.OrecEager)

	coldProg := runner.NewProgress(nil, nil)
	cold, err := RunPanelOpts("Table II", mk, cells, p, SweepOptions{Jobs: 2, Cache: cache, Progress: coldProg})
	if err != nil {
		t.Fatal(err)
	}
	if _, sim, hits, _ := coldProg.Counts(); sim != len(cells)*len(p.Threads) || hits != 0 {
		t.Fatalf("cold run: %d simulated, %d hits", sim, hits)
	}

	warmProg := runner.NewProgress(nil, nil)
	warm, err := RunPanelOpts("Table II", mk, cells, p, SweepOptions{Jobs: 2, Cache: cache, Progress: warmProg})
	if err != nil {
		t.Fatal(err)
	}
	if _, sim, hits, _ := warmProg.Counts(); sim != 0 || hits != len(cells)*len(p.Threads) {
		t.Fatalf("warm run: %d simulated, %d hits", sim, hits)
	}
	got, want := renderFigure(t, warm), renderFigure(t, cold)
	if !bytes.Equal(got, want) {
		t.Errorf("cached output differs from simulated:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
	}

	// Invalidate drops every entry: the next run simulates again.
	if err := cache.Invalidate(); err != nil {
		t.Fatal(err)
	}
	postProg := runner.NewProgress(nil, nil)
	if _, err := RunPanelOpts("Table II", mk, cells, p, SweepOptions{Jobs: 2, Cache: cache, Progress: postProg}); err != nil {
		t.Fatal(err)
	}
	if _, sim, hits, _ := postProg.Counts(); sim != len(cells)*len(p.Threads) || hits != 0 {
		t.Fatalf("post-invalidate run: %d simulated, %d hits", sim, hits)
	}
}

// TestSweepShardsPartitionFigure checks that shards cover disjoint
// point sets and the unsharded run is their union.
func TestSweepShardsPartitionFigure(t *testing.T) {
	p := sweepTestParams()
	mk := table12Maker()
	cells := TableIOrIICells(core.OrecLazy)

	full, err := RunPanelOpts("Table I", mk, cells, p, SweepOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	merged := Figure{Name: full.Name, Workload: full.Workload, Threads: full.Threads}
	for _, cell := range cells {
		merged.Series = append(merged.Series, Series{Cell: cell, Results: make([]Result, len(p.Threads))})
	}
	for shard := 0; shard < 2; shard++ {
		fig, err := RunPanelOpts("Table I", mk, cells, p, SweepOptions{
			Jobs: 2, Shard: runner.Shard{Index: shard, Count: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		for si, s := range fig.Series {
			for ri, r := range s.Results {
				if r.Workload == "" {
					continue // not this shard's point
				}
				if merged.Series[si].Results[ri].Workload != "" {
					t.Fatalf("point (%d,%d) owned by two shards", si, ri)
				}
				merged.Series[si].Results[ri] = r
			}
		}
	}
	got, want := renderFigure(t, merged), renderFigure(t, full)
	if !bytes.Equal(got, want) {
		t.Errorf("merged shards differ from full run:\n--- full ---\n%s\n--- merged ---\n%s", want, got)
	}
}

// TestFig8Determinism covers the map-carrying Fig8 path (one job per
// (items, cell) point) at a reduced working-set sweep.
func TestFig8Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 sweep in -short mode")
	}
	p := Params{Threads: []int{1}, WarmupNS: 50_000, MeasureNS: 200_000, Small: true}
	serial, err := RunFig8Opts(p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFig8Opts(p, SweepOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	PrintFig8(serial, &a)
	if err := WriteFig8CSV(serial, &a); err != nil {
		t.Fatal(err)
	}
	PrintFig8(par, &b)
	if err := WriteFig8CSV(par, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("fig8 parallel output differs from serial:\n--- serial ---\n%s\n--- jobs=4 ---\n%s", a.String(), b.String())
	}
}
