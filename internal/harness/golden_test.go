package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
)

// goldenHash pins the rendered output of a fixed lockstep mini-sweep.
// Lockstep simulations are pure functions of their configuration, so
// this hash must not move unless the timing model or the workloads
// change (in which case re-derive it with `go test -run TestGoldenSweep
// -v` and bump harness.SimVersion so cached results are dropped too).
// It is the regression guard for scheduler rewrites: any change to the
// lockstep engine that alters grant order shows up here as a byte
// difference before it can silently invalidate archived figures.
const goldenHash = "310c39031a59079928dd34fc06c6f9fc5e69d9d0a8ed5f908f54a63817f59cdc"

// TestGoldenSweepByteIdentical runs a small fixed sweep and asserts
// the rendered figure is byte-for-byte what the scheduler produced
// when the hash was pinned.
func TestGoldenSweepByteIdentical(t *testing.T) {
	p := Params{Threads: []int{1, 2}, WarmupNS: 100_000, MeasureNS: 500_000, Small: true}
	cells := []Cell{
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecEager},
	}
	fig, err := RunPanelOpts("Golden", TATPWorkload(), cells, p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	sum := sha256.Sum256(buf.Bytes())
	got := hex.EncodeToString(sum[:])
	if got != goldenHash {
		t.Fatalf("golden sweep output changed:\n got %s\nwant %s\noutput:\n%s", got, goldenHash, buf.String())
	}
}
