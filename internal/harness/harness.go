// Package harness runs the paper's experiments: it assembles a TM for
// a (medium, durability domain, algorithm) cell, drives a workload
// with N worker threads for a virtual-time measurement window, and
// reports throughput and commit/abort statistics. The experiment
// definitions that regenerate each figure and table live in
// experiments.go; sweep.go decomposes them into independent jobs for
// the parallel engine (internal/runner), which adds worker pooling,
// content-addressed result caching, and CI sharding on top.
package harness

import (
	"fmt"
	"io"
	"sync"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/stats"
	"goptm/internal/workload"
	"goptm/internal/wpq"
)

// Cell names one experimental configuration of the PTM.
type Cell struct {
	Medium  core.Medium
	Domain  durability.Domain
	Algo    core.Algo
	NoFence bool
}

// Label renders the cell the way the paper labels its curves, e.g.
// "Optane_ADR_R" or "DRAM_eADR_U" ("H" for the HTM extension).
func (c Cell) Label() string {
	algo := "R"
	switch c.Algo {
	case core.OrecEager:
		algo = "U"
	case core.AlgoHTM:
		algo = "H"
	}
	l := fmt.Sprintf("%s_%s_%s", c.Medium, c.Domain, algo)
	if c.NoFence {
		l += "_nofence"
	}
	return l
}

// RunConfig controls one measurement.
type RunConfig struct {
	Threads    int
	WarmupNS   int64 // virtual warmup excluded from measurement
	MeasureNS  int64 // virtual measurement window
	PageFrames int   // page-cache frames (PDRAM); 0 = cover the heap
	L3Lines    int   // 0 = membus default
	HeapWords  uint64
	MaxLog     int
	WPQDepth   int // 0 = default (64)
	// Lockstep selects the deterministic virtual-time scheduler, making
	// the measurement bit-reproducible across runs and hosts. The sweep
	// engine (sweep.go) always sets it; direct Run callers opt in.
	Lockstep bool
	// Recorder attaches observability to the run (phase breakdown, and
	// trace events when the recorder traces). nil leaves it off; the
	// instrumented paths then cost nothing.
	Recorder *obs.Recorder
	// Metrics attaches the hardware-counter registry (media/WPQ
	// telemetry and the virtual-time series). nil leaves the counter
	// model off the device paths; Result.Metrics stays nil. Counting is
	// pure accounting — it never moves virtual time, so attaching a
	// registry cannot change any measured number.
	Metrics *metrics.Registry
}

// DefaultRun returns the standard measurement parameters used by the
// figure sweeps.
func DefaultRun(threads int) RunConfig {
	return RunConfig{
		Threads:   threads,
		WarmupNS:  2_000_000,  // 2 ms virtual
		MeasureNS: 10_000_000, // 10 ms virtual
	}
}

// Result is one measured cell.
type Result struct {
	Workload string
	Cell     Cell
	Threads  int
	Commits  int64
	Aborts   int64
	// ThroughputOps is committed transactions per virtual second.
	ThroughputOps   float64
	CommitsPerAbort float64
	MaxLogLines     int
	WPQStallNS      int64
	EndVT           int64 // virtual time at the end of the measurement
	// Latency aggregates committed-transaction latency across workers
	// (virtual ns; includes warmup transactions).
	Latency stats.Histogram
	// Machine is the cross-layer machine snapshot at the end of the
	// run (cumulative counters including setup and warmup).
	Machine core.MachineStats
	// Breakdown is the merged phase accounting (zero unless the run
	// config attached a Recorder; cumulative including warmup).
	Breakdown obs.Breakdown
	// Metrics is the full counter snapshot (nil unless the run config
	// attached a metrics registry; cumulative including warmup).
	Metrics *metrics.Snapshot `json:",omitempty"`
}

// BuildTM assembles a TM for one cell and run configuration, sized
// for the workload.
func BuildTM(c Cell, rc RunConfig, w workload.Workload) (*core.TM, error) {
	heap := rc.HeapWords
	if heap == 0 {
		if hs, ok := w.(workload.HeapSizer); ok {
			heap = hs.HeapWords()
		} else {
			heap = 1 << 20
		}
	}
	maxLog := rc.MaxLog
	if maxLog == 0 {
		maxLog = 1024
	}
	frames := rc.PageFrames
	if frames == 0 {
		// PDRAM's DRAM covers the working set by default (the paper's
		// sub-96 GB regime); Fig 8 overrides this to model capacity.
		frames = int(heap/512) + 64
	}
	cfg := core.Config{
		Algo:          c.Algo,
		Medium:        c.Medium,
		Domain:        c.Domain,
		Threads:       rc.Threads,
		HeapWords:     heap,
		MaxLogEntries: maxLog,
		L3Lines:       rc.L3Lines,
		PageFrames:    frames,
		NoFence:       c.NoFence,
		Lockstep:      rc.Lockstep,
		Recorder:      rc.Recorder,
		Metrics:       rc.Metrics,
	}
	if rc.WPQDepth > 0 {
		cfg.Ctl = wpq.DefaultConfig(rc.Threads)
		cfg.Ctl.Depth = rc.WPQDepth
	}
	return core.New(cfg)
}

// Run measures one cell: build, setup, warmup, measure.
func Run(c Cell, rc RunConfig, w workload.Workload) (Result, error) {
	tm, err := BuildTM(c, rc, w)
	if err != nil {
		return Result{}, err
	}
	return RunOn(tm, c, rc, w), nil
}

// RunTraced measures one cell with full event tracing attached and
// writes the run's Chrome trace-event JSON to w (open it in
// ui.perfetto.dev). Tracing retains every span and counter sample, so
// keep the measurement window small; the returned Result carries the
// phase breakdown like any observed run. When the run config also
// attaches a metrics registry, its sampled time series is exported as
// counter tracks in the same trace.
func RunTraced(c Cell, rc RunConfig, wl workload.Workload, w io.Writer) (Result, error) {
	rc.Recorder = obs.New(rc.Threads, true)
	res, err := Run(c, rc, wl)
	if err != nil {
		return res, err
	}
	rc.Metrics.ExportTracks(rc.Recorder)
	return res, rc.Recorder.WriteTrace(w)
}

// RunOn measures a workload on an already-built TM (used by Fig 8 and
// the ablations that need custom TM configs).
func RunOn(tm *core.TM, c Cell, rc RunConfig, w workload.Workload) Result {
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setupEnd := setup.Now()
	setup.Detach()

	warmupEnd := setupEnd + rc.WarmupNS
	end := warmupEnd + rc.MeasureNS

	type counts struct {
		commits, aborts int64
		maxLogLines     int
		latency         *stats.Histogram
	}
	results := make([]counts, rc.Threads)
	// Attach every worker to the virtual-time barrier before any of
	// them runs: a worker that starts alone would cross windows freely
	// and burn the measurement interval unsynchronized.
	threads := make([]*core.Thread, rc.Threads)
	for tid := range threads {
		threads[tid] = tm.Thread(tid)
	}
	var wg sync.WaitGroup
	for tid := 0; tid < rc.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := threads[tid]
			defer th.Detach()
			for th.Now() < warmupEnd {
				w.Step(th)
			}
			s0 := th.Stats()
			for th.Now() < end {
				w.Step(th)
			}
			s1 := th.Stats()
			results[tid] = counts{
				commits:     s1.Commits - s0.Commits,
				aborts:      s1.Aborts - s0.Aborts,
				maxLogLines: s1.MaxLogLines,
				latency:     th.Latency(),
			}
		}(tid)
	}
	wg.Wait()

	var res Result
	res.Workload = w.Name()
	res.Cell = c
	res.Threads = rc.Threads
	for _, r := range results {
		res.Commits += r.commits
		res.Aborts += r.aborts
		if r.maxLogLines > res.MaxLogLines {
			res.MaxLogLines = r.maxLogLines
		}
		if r.latency != nil {
			res.Latency.Merge(r.latency)
		}
	}
	res.ThroughputOps = float64(res.Commits) / (float64(rc.MeasureNS) / 1e9)
	if res.Aborts > 0 {
		res.CommitsPerAbort = float64(res.Commits) / float64(res.Aborts)
	}
	res.WPQStallNS = tm.Bus().Controller().Counters().StallNS
	res.EndVT = end
	res.Machine = tm.MachineStats()
	res.Breakdown = tm.Recorder().Breakdown()
	if rc.Metrics != nil {
		snap := tm.MetricsSnapshot()
		res.Metrics = &snap
	}
	return res
}
