package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"path/filepath"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/metrics"
)

func goldenParams() Params {
	return Params{Threads: []int{1, 2}, WarmupNS: 100_000, MeasureNS: 500_000, Small: true}
}

func goldenCells() []Cell {
	return []Cell{
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecEager},
	}
}

// TestGoldenSweepCountersByteIdentical is the acceptance pin for the
// counter model: running the golden sweep WITH the counter registry
// attached must render byte-for-byte the same figure (same goldenHash)
// as running without it. Counting is pure accounting — if it ever
// moves virtual time, this hash moves.
func TestGoldenSweepCountersByteIdentical(t *testing.T) {
	p := goldenParams()
	p.Counters = true
	fig, err := RunPanelOpts("Golden", TATPWorkload(), goldenCells(), p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenHash {
		t.Fatalf("counters-enabled sweep output diverged from golden hash:\n got %s\nwant %s\noutput:\n%s",
			got, goldenHash, buf.String())
	}
}

// TestCountersOnOffEquality checks every measured number of every
// point is identical with and without the registry — not just the
// rendered figure.
func TestCountersOnOffEquality(t *testing.T) {
	off, err := RunPanelOpts("Golden", TATPWorkload(), goldenCells(), goldenParams(), SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := goldenParams()
	p.Counters = true
	on, err := RunPanelOpts("Golden", TATPWorkload(), goldenCells(), p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range off.Series {
		for j := range off.Series[i].Results {
			a, b := off.Series[i].Results[j], on.Series[i].Results[j]
			if a.Commits != b.Commits || a.Aborts != b.Aborts ||
				a.ThroughputOps != b.ThroughputOps || a.WPQStallNS != b.WPQStallNS {
				t.Fatalf("point %s/t%d differs counters on vs off:\noff %+v\non  %+v",
					off.Series[i].Cell.Label(), off.Threads[j], a, b)
			}
			if b.Metrics == nil {
				t.Fatalf("counters-enabled point %s/t%d has no snapshot",
					on.Series[i].Cell.Label(), on.Threads[j])
			}
			// Registry commits are cumulative (setup + warmup + window),
			// so they bound the measured window count from above.
			if b.Metrics.Commits < b.Commits {
				t.Fatalf("registry commits %d below measured %d", b.Metrics.Commits, b.Commits)
			}
		}
	}
}

// TestCounterSnapshotSanity checks the assembled snapshot of a
// counters-enabled sweep point holds together: device traffic present,
// media traffic consistent with the XPBuffer accounting, amplification
// derived, time series sampled across the window.
func TestCounterSnapshotSanity(t *testing.T) {
	p := goldenParams()
	p.Counters = true
	fig, err := RunPanelOpts("Golden", TATPWorkload(), goldenCells()[:1], p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0].Results[0].Metrics
	if s == nil {
		t.Fatal("no snapshot")
	}
	if s.Commits == 0 || s.NVMStores == 0 || s.NVMLoads == 0 {
		t.Fatalf("core traffic missing: %+v", s)
	}
	if s.MediaWriteXPLines == 0 || s.WriteAmp <= 0 {
		t.Fatalf("media write model silent: xplines=%d amp=%v", s.MediaWriteXPLines, s.WriteAmp)
	}
	if s.WPQAccepts == 0 {
		t.Fatal("no WPQ accepts recorded")
	}
	if s.WPQMaxOccupancy == 0 {
		t.Fatal("max occupancy not tracked despite registry attached")
	}
	if s.CacheHitL1 == 0 {
		t.Fatal("cache hit counters silent")
	}
	if s.LogBytes == 0 {
		t.Fatal("log volume counter silent")
	}
	if len(s.Samples) == 0 {
		t.Fatal("virtual-time series empty")
	}
	last := s.Samples[len(s.Samples)-1]
	if last.VT <= s.Samples[0].VT && len(s.Samples) > 1 {
		t.Fatalf("series not monotone: %+v", s.Samples)
	}
	if last.Commits == 0 {
		t.Fatalf("final sample has no commits: %+v", last)
	}
}

// TestADR32WriteAmpAndStall is the paper-facing acceptance check: on
// the 32-thread Optane ADR cell the counters must show write
// amplification above 1 (stores are scattered 8 B words against a
// 256 B media granularity) and the WPQ stall as the dominant bus-side
// wait — the counter-level view of why ADR collapses at high thread
// counts (§III-B).
func TestADR32WriteAmpAndStall(t *testing.T) {
	p := goldenParams()
	p.Counters = true
	p.Threads = []int{32}
	cells := []Cell{{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}}
	fig, err := RunPanelOpts("ADR32", TATPWorkload(), cells, p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	cm := fig.CellMetrics()
	if len(cm) != 1 {
		t.Fatalf("cells = %d, want 1", len(cm))
	}
	c := cm[0]
	if c.Derived.WriteAmp <= 1 {
		t.Fatalf("ADR@32 write amplification = %v, want > 1", c.Derived.WriteAmp)
	}
	dom, share := c.Attribution.Dominant()
	if dom != "wpq-stall" {
		t.Fatalf("ADR@32 dominant wait = %s (%.1f%%), want wpq-stall\nattribution: %+v",
			dom, 100*share, c.Attribution)
	}
	if share == 0 {
		t.Fatal("dominant share is zero")
	}
}

// TestFigureReportArtifact exercises the full artifact path: figure ->
// report -> file -> validator -> self-diff.
func TestFigureReportArtifact(t *testing.T) {
	p := goldenParams()
	p.Counters = true
	fig, err := RunPanelOpts("Golden", TATPWorkload(), goldenCells(), p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport()
	AppendMetrics(rep, fig)
	if want := len(fig.Series) * len(fig.Threads); len(rep.Cells) != want {
		t.Fatalf("report cells = %d, want %d", len(rep.Cells), want)
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := metrics.WriteReportFile(path, rep); err != nil {
		t.Fatal(err)
	}
	loaded, err := metrics.LoadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range metrics.Diff(rep, loaded, 0) {
		if e.Exceeds {
			t.Fatalf("report does not self-diff clean: %+v", e)
		}
	}

	// The snapshot inside must round-trip exactly (cache contract).
	var out bytes.Buffer
	enc := json.NewEncoder(&out)
	if err := enc.Encode(rep.Cells[0].Counters); err != nil {
		t.Fatal(err)
	}
	var back metrics.Snapshot
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Commits != rep.Cells[0].Counters.Commits || back.WriteAmp != rep.Cells[0].Counters.WriteAmp {
		t.Fatal("snapshot JSON round trip lost fields")
	}
}

// TestPrintCounters smoke-checks the rendered counter table.
func TestPrintCounters(t *testing.T) {
	p := goldenParams()
	p.Counters = true
	fig, err := RunPanelOpts("Golden", TATPWorkload(), goldenCells()[:1], p, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.PrintCounters(&buf)
	out := buf.String()
	for _, want := range []string{"hardware counters", "w-amp", "dominant", "Optane_ADR_R"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("counter table missing %q:\n%s", want, out)
		}
	}
	// Without counters the table renders nothing.
	off, err := RunPanelOpts("Golden", TATPWorkload(), goldenCells()[:1], goldenParams(), SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var empty bytes.Buffer
	off.PrintCounters(&empty)
	if empty.Len() != 0 {
		t.Fatalf("counters-off figure rendered a table:\n%s", empty.String())
	}
}
