package harness

import (
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/workload/tatp"
)

func quickRun(t *testing.T, c Cell, threads int) Result {
	t.Helper()
	rc := RunConfig{Threads: threads, WarmupNS: 200_000, MeasureNS: 1_000_000}
	w := tatp.New(tatp.Config{Subscribers: 2048})
	res, err := Run(c, rc, w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesThroughput(t *testing.T) {
	res := quickRun(t, Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}, 2)
	if res.Commits <= 0 {
		t.Fatalf("no commits: %+v", res)
	}
	if res.ThroughputOps <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.Workload != "TATP" || res.Threads != 2 {
		t.Fatalf("metadata wrong: %+v", res)
	}
}

func TestCellLabels(t *testing.T) {
	c := Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}
	if c.Label() != "Optane_ADR_R" {
		t.Fatalf("label = %q", c.Label())
	}
	c = Cell{Medium: core.MediumDRAM, Domain: durability.EADR, Algo: core.OrecEager}
	if c.Label() != "DRAM_eADR_U" {
		t.Fatalf("label = %q", c.Label())
	}
	c.NoFence = true
	if c.Label() != "DRAM_eADR_U_nofence" {
		t.Fatalf("label = %q", c.Label())
	}
}

func TestEADRFasterThanADR(t *testing.T) {
	// The paper's headline: eliding flush/fence speeds up every
	// workload. Even a quick run must show eADR ahead of ADR.
	adr := quickRun(t, Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}, 2)
	eadr := quickRun(t, Cell{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy}, 2)
	if eadr.ThroughputOps <= adr.ThroughputOps {
		t.Fatalf("eADR (%.0f ops/s) not faster than ADR (%.0f ops/s)",
			eadr.ThroughputOps, adr.ThroughputOps)
	}
}

func TestDRAMFasterThanOptane(t *testing.T) {
	nvm := quickRun(t, Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}, 2)
	dram := quickRun(t, Cell{Medium: core.MediumDRAM, Domain: durability.ADR, Algo: core.OrecLazy}, 2)
	if dram.ThroughputOps <= nvm.ThroughputOps {
		t.Fatalf("DRAM (%.0f) not faster than Optane (%.0f)",
			dram.ThroughputOps, nvm.ThroughputOps)
	}
}

func TestMoreThreadsMoreThroughputLow(t *testing.T) {
	// At low thread counts (1 -> 4) throughput should scale for the
	// lightly-contended TATP workload.
	one := quickRun(t, Cell{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy}, 1)
	four := quickRun(t, Cell{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy}, 4)
	if four.ThroughputOps <= one.ThroughputOps {
		t.Fatalf("4 threads (%.0f) not faster than 1 (%.0f)",
			four.ThroughputOps, one.ThroughputOps)
	}
}
