package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/obs"
	"goptm/internal/workload"
	"goptm/internal/workload/btreebench"
	"goptm/internal/workload/kvstore"
	"goptm/internal/workload/tatp"
	"goptm/internal/workload/tpcc"
	"goptm/internal/workload/vacation"
)

// Params scales an experiment between a quick smoke run and the full
// paper-shaped sweep.
type Params struct {
	Threads   []int
	WarmupNS  int64
	MeasureNS int64
	Small     bool // shrink workload datasets for smoke runs
	// Observe attaches a breakdown recorder to every measurement so
	// figures can print the per-phase overhead decomposition. It adds a
	// few integer ops per recorded span — leave it off for
	// throughput-comparison runs.
	Observe bool
}

// QuickParams runs in seconds per panel; FullParams reproduces the
// paper's thread axis.
func QuickParams() Params {
	return Params{Threads: []int{1, 4, 16, 32}, WarmupNS: 300_000, MeasureNS: 1_500_000, Small: true}
}

// FullParams matches the paper's thread counts {1..32} with longer
// virtual measurement windows.
func FullParams() Params {
	return Params{Threads: []int{1, 2, 4, 8, 16, 32}, WarmupNS: 2_000_000, MeasureNS: 8_000_000}
}

// WorkloadMaker builds a fresh workload instance per measurement (a
// workload cannot be reused across TMs).
type WorkloadMaker struct {
	Name string
	Make func(p Params) workload.Workload
}

// PanelWorkloads returns the six panels of Figures 3 and 6, in the
// paper's order.
func PanelWorkloads() []WorkloadMaker {
	return []WorkloadMaker{
		{"btree-insert", func(p Params) workload.Workload {
			return btreebench.New(btreebench.Config{Mode: btreebench.InsertOnly})
		}},
		{"btree-mixed", func(p Params) workload.Workload {
			// The paper uses a 2^21 key range against a 32 MB L3; our
			// L3 is scaled ~32x down, so the key range scales with it
			// (working set ~2x the L3, as in the paper). An unscaled
			// range would make tree-traversal reads dominate and
			// dilute the flush/fence effects under study.
			kr := uint64(1 << 16)
			if p.Small {
				kr = 1 << 15
			}
			return btreebench.New(btreebench.Config{Mode: btreebench.Mixed, KeyRange: kr})
		}},
		{"tpcc-btree", func(p Params) workload.Workload {
			return tpcc.New(tpcc.Config{Kind: tpcc.BTreeIndex})
		}},
		{"tpcc-hash", func(p Params) workload.Workload {
			return tpcc.New(tpcc.Config{Kind: tpcc.HashIndex})
		}},
		{"vacation-low", func(p Params) workload.Workload {
			rel := 16384
			if p.Small {
				rel = 4096
			}
			return vacation.New(vacation.Config{Contention: vacation.Low, Relations: rel})
		}},
		{"vacation-high", func(p Params) workload.Workload {
			return vacation.New(vacation.Config{Contention: vacation.High})
		}},
	}
}

// TATPWorkload returns the Figure 4/7 workload.
func TATPWorkload() WorkloadMaker {
	return WorkloadMaker{"tatp", func(p Params) workload.Workload {
		subs := 16384
		if p.Small {
			subs = 8192
		}
		return tatp.New(tatp.Config{Subscribers: subs})
	}}
}

// Fig34Cells returns the eight curves of Figures 3 and 4:
// {DRAM, Optane} x {ADR, eADR} x {undo, redo}.
func Fig34Cells() []Cell {
	var cells []Cell
	for _, medium := range []core.Medium{core.MediumDRAM, core.MediumNVM} {
		for _, dom := range []durability.Domain{durability.ADR, durability.EADR} {
			for _, algo := range []core.Algo{core.OrecEager, core.OrecLazy} {
				cells = append(cells, Cell{Medium: medium, Domain: dom, Algo: algo})
			}
		}
	}
	return cells
}

// Fig67Cells returns the six curves of Figures 6 and 7: the DRAM
// reference, eADR with both algorithms, PDRAM with both algorithms,
// and redo-based PDRAM-Lite.
func Fig67Cells() []Cell {
	return []Cell{
		{Medium: core.MediumDRAM, Domain: durability.EADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecEager},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecEager},
		{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.PDRAMLite, Algo: core.OrecLazy},
	}
}

// Series is one curve of a figure.
type Series struct {
	Cell    Cell
	Results []Result // one per thread count
}

// Figure is one rendered panel.
type Figure struct {
	Name     string
	Workload string
	Threads  []int
	Series   []Series
}

// RunPanel measures every (cell, thread-count) point of one panel.
// Progress lines go to w (nil silences them).
func RunPanel(name string, mk WorkloadMaker, cells []Cell, p Params, w io.Writer) (Figure, error) {
	fig := Figure{Name: name, Workload: mk.Name, Threads: p.Threads}
	for _, cell := range cells {
		s := Series{Cell: cell}
		for _, n := range p.Threads {
			rc := RunConfig{Threads: n, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS}
			if p.Observe {
				rc.Recorder = obs.New(n, false) // breakdown accounting, no event retention
			}
			res, err := Run(cell, rc, mk.Make(p))
			if err != nil {
				return fig, fmt.Errorf("%s %s @%d threads: %w", name, cell.Label(), n, err)
			}
			s.Results = append(s.Results, res)
			if w != nil {
				fmt.Fprintf(w, "  %s %-24s %2d threads: %10.0f ops/s (cache hit %.1f%%, p99 %d ns)\n",
					mk.Name, cell.Label(), n, res.ThroughputOps,
					100*res.Machine.HitRate(), res.Latency.Percentile(99))
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Print renders the figure as an aligned text table (threads across,
// throughput in kops/s), the form the repository's EXPERIMENTS.md
// records.
func (f Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s (throughput, kilo-commits per virtual second)\n", f.Name, f.Workload)
	fmt.Fprintf(w, "%-26s", "curve")
	for _, t := range f.Threads {
		fmt.Fprintf(w, "%10d", t)
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-26s", s.Cell.Label())
		for _, r := range s.Results {
			fmt.Fprintf(w, "%10.0f", r.ThroughputOps/1000)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV emits the figure as machine-readable CSV: one row per
// (curve, thread-count) point with throughput, ratio, latency
// percentiles, and the full latency histogram as embedded JSON.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "workload", "curve", "threads",
		"throughput_ops", "commits", "aborts", "commits_per_abort",
		"latency_p50_ns", "latency_p99_ns", "latency_hist"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i, r := range s.Results {
			hist, err := json.Marshal(&r.Latency)
			if err != nil {
				return err
			}
			rec := []string{
				f.Name, f.Workload, s.Cell.Label(), strconv.Itoa(f.Threads[i]),
				strconv.FormatFloat(r.ThroughputOps, 'f', 0, 64),
				strconv.FormatInt(r.Commits, 10),
				strconv.FormatInt(r.Aborts, 10),
				strconv.FormatFloat(r.CommitsPerAbort, 'f', 2, 64),
				strconv.FormatInt(r.Latency.Percentile(50), 10),
				strconv.FormatInt(r.Latency.Percentile(99), 10),
				string(hist),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// PrintBreakdown renders the figure's phase-overhead decomposition at
// its highest thread count: one row per curve, each phase as a share
// of total transaction time (the paper's §III-B style "where does the
// time go" view). Empty unless the panel ran with Params.Observe.
func (f Figure) PrintBreakdown(w io.Writer) {
	var labels []string
	var rows []*obs.Breakdown
	for i := range f.Series {
		s := &f.Series[i]
		if len(s.Results) == 0 {
			continue
		}
		b := s.Results[len(s.Results)-1].Breakdown
		if b.Empty() {
			continue
		}
		labels = append(labels, s.Cell.Label())
		rows = append(rows, &b)
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s — %s (phase breakdown at %d threads)\n",
		f.Name, f.Workload, f.Threads[len(f.Threads)-1])
	obs.WriteTable(w, labels, rows)
}

// PrintRatios renders the commits-per-abort view of the figure (the
// form of Tables I and II).
func (f Figure) PrintRatios(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s (commits per abort)\n", f.Name, f.Workload)
	fmt.Fprintf(w, "%-26s", "curve")
	for _, t := range f.Threads {
		fmt.Fprintf(w, "%10d", t)
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-26s", s.Cell.Label())
		for _, r := range s.Results {
			fmt.Fprintf(w, "%10.2f", r.CommitsPerAbort)
		}
		fmt.Fprintln(w)
	}
}

// TableIOrIICells returns the four rows of Tables I and II.
func TableIOrIICells(algo core.Algo) []Cell {
	return []Cell{
		{Medium: core.MediumDRAM, Domain: durability.ADR, Algo: algo},
		{Medium: core.MediumDRAM, Domain: durability.EADR, Algo: algo},
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: algo},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: algo},
	}
}

// RunTable12 reproduces Table I (redo) or Table II (undo):
// commits-per-abort for TPCC (Hash Table).
func RunTable12(algo core.Algo, p Params, w io.Writer) (Figure, error) {
	mk := WorkloadMaker{"tpcc-hash", func(p Params) workload.Workload {
		return tpcc.New(tpcc.Config{Kind: tpcc.HashIndex})
	}}
	name := "Table I"
	if algo == core.OrecEager {
		name = "Table II"
	}
	return RunPanel(name, mk, TableIOrIICells(algo), p, w)
}

// Table3Row is one cell of Table III: the throughput gain from
// (incorrectly) removing fences from the ADR write instrumentation.
type Table3Row struct {
	Workload string
	Algo     core.Algo
	Base     float64
	NoFence  float64
	Speedup  float64 // percent
}

// RunTable3 measures the fence-elision ablation at a low thread count
// (the paper reports a latency snapshot; at saturation the WPQ-accept
// wait would dominate and overstate the fence share).
func RunTable3(p Params, w io.Writer) ([]Table3Row, error) {
	makers := []WorkloadMaker{
		{"tpcc-hash", func(p Params) workload.Workload {
			return tpcc.New(tpcc.Config{Kind: tpcc.HashIndex})
		}},
		TATPWorkload(),
		{"vacation-low", func(p Params) workload.Workload {
			rel := 16384
			if p.Small {
				rel = 4096
			}
			return vacation.New(vacation.Config{Contention: vacation.Low, Relations: rel})
		}},
		{"vacation-high", func(p Params) workload.Workload {
			return vacation.New(vacation.Config{Contention: vacation.High})
		}},
	}
	const threads = 2
	var rows []Table3Row
	for _, mk := range makers {
		for _, algo := range []core.Algo{core.OrecEager, core.OrecLazy} {
			rc := RunConfig{Threads: threads, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS}
			base, err := Run(Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: algo}, rc, mk.Make(p))
			if err != nil {
				return nil, err
			}
			nf, err := Run(Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: algo, NoFence: true}, rc, mk.Make(p))
			if err != nil {
				return nil, err
			}
			row := Table3Row{
				Workload: mk.Name,
				Algo:     algo,
				Base:     base.ThroughputOps,
				NoFence:  nf.ThroughputOps,
				Speedup:  (nf.ThroughputOps/base.ThroughputOps - 1) * 100,
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "  table3 %-14s %-5v: base %10.0f nofence %10.0f speedup %5.1f%%\n",
					row.Workload, row.Algo, row.Base, row.NoFence, row.Speedup)
			}
		}
	}
	return rows, nil
}

// Fig8Point is one working-set measurement of Figure 8.
type Fig8Point struct {
	Items   int
	WSBytes uint64
	Results map[string]float64 // cell label -> requests per second
}

// Fig8Cells returns the Figure 8 curves.
func Fig8Cells() []Cell {
	return []Cell{
		{Medium: core.MediumDRAM, Domain: durability.EADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecEager},
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecEager},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.PDRAMLite, Algo: core.OrecLazy},
	}
}

// Fig8 capacity model (scaled ~1000x down from the paper's machine;
// see EXPERIMENTS.md): a 256 KB L3 and a 4 MB DRAM page cache. The
// item counts sweep the working set across both capacities, mirroring
// the paper's 32 MB / 32..320 GB X axis.
const (
	fig8L3Lines    = 4096 // 256 KB
	fig8PageFrames = 1024 // 4 MB of DRAM cache
)

// Fig8ItemCounts returns the working-set sweep (items of ~1.2 KB).
func Fig8ItemCounts(small bool) []int {
	if small {
		return []int{128, 1024, 4096, 8192}
	}
	return []int{128, 1024, 2048, 3072, 4096, 6144, 8192}
}

// RunFig8 reproduces the memcached working-set study: one worker
// thread, 50/50 get/set, throughput vs resident items.
func RunFig8(p Params, w io.Writer) ([]Fig8Point, error) {
	var points []Fig8Point
	for _, items := range Fig8ItemCounts(p.Small) {
		pt := Fig8Point{
			Items:   items,
			WSBytes: kvstore.WorkingSetWords(items) * 8,
			Results: map[string]float64{},
		}
		for _, cell := range Fig8Cells() {
			kv := kvstore.New(kvstore.Config{Items: items})
			rc := RunConfig{
				Threads:    1,
				WarmupNS:   p.WarmupNS,
				MeasureNS:  p.MeasureNS,
				L3Lines:    fig8L3Lines,
				PageFrames: fig8PageFrames,
			}
			res, err := Run(cell, rc, kv)
			if err != nil {
				return nil, err
			}
			pt.Results[cell.Label()] = res.ThroughputOps
			if w != nil {
				fmt.Fprintf(w, "  fig8 items=%-6d %-24s %10.0f req/s\n", items, cell.Label(), res.ThroughputOps)
			}
		}
		points = append(points, pt)
	}
	return points, nil
}

// WriteFig8CSV emits the working-set sweep as CSV.
func WriteFig8CSV(points []Fig8Point, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "items", "working_set_bytes", "curve", "requests_per_s"}); err != nil {
		return err
	}
	for _, p := range points {
		for _, cell := range Fig8Cells() {
			rec := []string{
				"Figure 8", strconv.Itoa(p.Items), strconv.FormatUint(p.WSBytes, 10),
				cell.Label(), strconv.FormatFloat(p.Results[cell.Label()], 'f', 0, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// PrintFig8 renders the working-set sweep.
func PrintFig8(points []Fig8Point, w io.Writer) {
	fmt.Fprintf(w, "\nFigure 8 — memcached, single worker (requests per virtual second)\n")
	fmt.Fprintf(w, "%-26s", "curve \\ working set")
	for _, p := range points {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("%dKB", p.WSBytes/1024))
	}
	fmt.Fprintln(w)
	for _, cell := range Fig8Cells() {
		fmt.Fprintf(w, "%-26s", cell.Label())
		for _, p := range points {
			fmt.Fprintf(w, "%10.0f", p.Results[cell.Label()]/1000)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(values in kilo-requests/s; L3 = 256 KB, DRAM page cache = 4 MB)")
}
