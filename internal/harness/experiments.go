package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/obs"
	"goptm/internal/workload"
	"goptm/internal/workload/btreebench"
	"goptm/internal/workload/tatp"
	"goptm/internal/workload/tpcc"
	"goptm/internal/workload/vacation"
)

// Params scales an experiment between a quick smoke run and the full
// paper-shaped sweep.
type Params struct {
	Threads   []int
	WarmupNS  int64
	MeasureNS int64
	Small     bool // shrink workload datasets for smoke runs
	// Observe attaches a breakdown recorder to every measurement so
	// figures can print the per-phase overhead decomposition. It adds a
	// few integer ops per recorded span — leave it off for
	// throughput-comparison runs.
	Observe bool
	// Counters attaches the hardware-counter model to every measurement
	// (PMWatch-style media/WPQ telemetry, virtual-time series, and the
	// per-cell attribution report). Implies the breakdown recorder,
	// which the attribution shares come from. Counting never advances
	// virtual time: all measured numbers are identical with it on or
	// off.
	Counters bool
}

// QuickParams runs in seconds per panel; FullParams reproduces the
// paper's thread axis.
func QuickParams() Params {
	return Params{Threads: []int{1, 4, 16, 32}, WarmupNS: 300_000, MeasureNS: 1_500_000, Small: true}
}

// FullParams matches the paper's thread counts {1..32} with longer
// virtual measurement windows.
func FullParams() Params {
	return Params{Threads: []int{1, 2, 4, 8, 16, 32}, WarmupNS: 2_000_000, MeasureNS: 8_000_000}
}

// WorkloadMaker builds a fresh workload instance per measurement (a
// workload cannot be reused across TMs).
type WorkloadMaker struct {
	Name string
	Make func(p Params) workload.Workload
}

// PanelWorkloads returns the six panels of Figures 3 and 6, in the
// paper's order.
func PanelWorkloads() []WorkloadMaker {
	return []WorkloadMaker{
		{"btree-insert", func(p Params) workload.Workload {
			return btreebench.New(btreebench.Config{Mode: btreebench.InsertOnly})
		}},
		{"btree-mixed", func(p Params) workload.Workload {
			// The paper uses a 2^21 key range against a 32 MB L3; our
			// L3 is scaled ~32x down, so the key range scales with it
			// (working set ~2x the L3, as in the paper). An unscaled
			// range would make tree-traversal reads dominate and
			// dilute the flush/fence effects under study.
			kr := uint64(1 << 16)
			if p.Small {
				kr = 1 << 15
			}
			return btreebench.New(btreebench.Config{Mode: btreebench.Mixed, KeyRange: kr})
		}},
		{"tpcc-btree", func(p Params) workload.Workload {
			return tpcc.New(tpcc.Config{Kind: tpcc.BTreeIndex})
		}},
		{"tpcc-hash", func(p Params) workload.Workload {
			return tpcc.New(tpcc.Config{Kind: tpcc.HashIndex})
		}},
		{"vacation-low", func(p Params) workload.Workload {
			rel := 16384
			if p.Small {
				rel = 4096
			}
			return vacation.New(vacation.Config{Contention: vacation.Low, Relations: rel})
		}},
		{"vacation-high", func(p Params) workload.Workload {
			return vacation.New(vacation.Config{Contention: vacation.High})
		}},
	}
}

// TATPWorkload returns the Figure 4/7 workload.
func TATPWorkload() WorkloadMaker {
	return WorkloadMaker{"tatp", func(p Params) workload.Workload {
		subs := 16384
		if p.Small {
			subs = 8192
		}
		return tatp.New(tatp.Config{Subscribers: subs})
	}}
}

// Fig34Cells returns the eight curves of Figures 3 and 4:
// {DRAM, Optane} x {ADR, eADR} x {undo, redo}.
func Fig34Cells() []Cell {
	var cells []Cell
	for _, medium := range []core.Medium{core.MediumDRAM, core.MediumNVM} {
		for _, dom := range []durability.Domain{durability.ADR, durability.EADR} {
			for _, algo := range []core.Algo{core.OrecEager, core.OrecLazy} {
				cells = append(cells, Cell{Medium: medium, Domain: dom, Algo: algo})
			}
		}
	}
	return cells
}

// Fig67Cells returns the six curves of Figures 6 and 7: the DRAM
// reference, eADR with both algorithms, PDRAM with both algorithms,
// and redo-based PDRAM-Lite.
func Fig67Cells() []Cell {
	return []Cell{
		{Medium: core.MediumDRAM, Domain: durability.EADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecEager},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecEager},
		{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.PDRAMLite, Algo: core.OrecLazy},
	}
}

// Series is one curve of a figure.
type Series struct {
	Cell    Cell
	Results []Result // one per thread count
}

// Figure is one rendered panel.
type Figure struct {
	Name     string
	Workload string
	Threads  []int
	Series   []Series
}

// RunPanel measures every (cell, thread-count) point of one panel
// serially. Progress lines go to w (nil silences them). It is the
// single-worker form of RunPanelOpts (sweep.go), which also takes a
// result cache, a shard, and a worker count.
func RunPanel(name string, mk WorkloadMaker, cells []Cell, p Params, w io.Writer) (Figure, error) {
	return RunPanelOpts(name, mk, cells, p, serialOptions(w))
}

// Print renders the figure as an aligned text table (threads across,
// throughput in kops/s), the form the repository's EXPERIMENTS.md
// records.
func (f Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s (throughput, kilo-commits per virtual second)\n", f.Name, f.Workload)
	fmt.Fprintf(w, "%-26s", "curve")
	for _, t := range f.Threads {
		fmt.Fprintf(w, "%10d", t)
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-26s", s.Cell.Label())
		for _, r := range s.Results {
			if r.Workload == "" { // sharded away
				fmt.Fprintf(w, "%10s", "-")
				continue
			}
			fmt.Fprintf(w, "%10.0f", r.ThroughputOps/1000)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV emits the figure as machine-readable CSV: one row per
// (curve, thread-count) point with throughput, ratio, latency
// percentiles, and the full latency histogram as embedded JSON.
// Points sharded away to another machine are omitted.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "workload", "curve", "threads",
		"throughput_ops", "commits", "aborts", "commits_per_abort",
		"latency_p50_ns", "latency_p99_ns", "latency_hist"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i, r := range s.Results {
			if r.Workload == "" { // sharded away
				continue
			}
			hist, err := json.Marshal(&r.Latency)
			if err != nil {
				return err
			}
			rec := []string{
				f.Name, f.Workload, s.Cell.Label(), strconv.Itoa(f.Threads[i]),
				strconv.FormatFloat(r.ThroughputOps, 'f', 0, 64),
				strconv.FormatInt(r.Commits, 10),
				strconv.FormatInt(r.Aborts, 10),
				strconv.FormatFloat(r.CommitsPerAbort, 'f', 2, 64),
				strconv.FormatInt(r.Latency.P50(), 10),
				strconv.FormatInt(r.Latency.P99(), 10),
				string(hist),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// PrintBreakdown renders the figure's phase-overhead decomposition at
// its highest thread count: one row per curve, each phase as a share
// of total transaction time (the paper's §III-B style "where does the
// time go" view). Empty unless the panel ran with Params.Observe.
func (f Figure) PrintBreakdown(w io.Writer) {
	var labels []string
	var rows []*obs.Breakdown
	for i := range f.Series {
		s := &f.Series[i]
		if len(s.Results) == 0 {
			continue
		}
		b := s.Results[len(s.Results)-1].Breakdown
		if b.Empty() {
			continue
		}
		labels = append(labels, s.Cell.Label())
		rows = append(rows, &b)
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s — %s (phase breakdown at %d threads)\n",
		f.Name, f.Workload, f.Threads[len(f.Threads)-1])
	obs.WriteTable(w, labels, rows)
	f.printLatencyQuantiles(w)
}

// printLatencyQuantiles renders per-curve committed-transaction latency
// quantiles at the figure's highest thread count (log2-bucket derived:
// each value is an upper bound within 2x of the true quantile, clamped
// to the observed maximum).
func (f Figure) printLatencyQuantiles(w io.Writer) {
	var printed bool
	for i := range f.Series {
		s := &f.Series[i]
		if len(s.Results) == 0 {
			continue
		}
		r := &s.Results[len(s.Results)-1]
		if r.Latency.Count() == 0 {
			continue
		}
		if !printed {
			fmt.Fprintf(w, "\ntxn latency quantiles at %d threads (virtual µs; log2-bucket upper bounds)\n",
				f.Threads[len(f.Threads)-1])
			fmt.Fprintf(w, "%-26s %9s %9s %9s %9s %9s\n", "curve", "mean", "p50", "p90", "p99", "max")
			printed = true
		}
		us := func(ns int64) float64 { return float64(ns) / 1000 }
		fmt.Fprintf(w, "%-26s %9.1f %9.1f %9.1f %9.1f %9.1f\n",
			s.Cell.Label(), r.Latency.Mean()/1000,
			us(r.Latency.P50()), us(r.Latency.P90()), us(r.Latency.P99()), us(r.Latency.Max()))
	}
}

// PrintRatios renders the commits-per-abort view of the figure (the
// form of Tables I and II).
func (f Figure) PrintRatios(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s (commits per abort)\n", f.Name, f.Workload)
	fmt.Fprintf(w, "%-26s", "curve")
	for _, t := range f.Threads {
		fmt.Fprintf(w, "%10d", t)
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-26s", s.Cell.Label())
		for _, r := range s.Results {
			if r.Workload == "" { // sharded away
				fmt.Fprintf(w, "%10s", "-")
				continue
			}
			fmt.Fprintf(w, "%10.2f", r.CommitsPerAbort)
		}
		fmt.Fprintln(w)
	}
}

// TableIOrIICells returns the four rows of Tables I and II.
func TableIOrIICells(algo core.Algo) []Cell {
	return []Cell{
		{Medium: core.MediumDRAM, Domain: durability.ADR, Algo: algo},
		{Medium: core.MediumDRAM, Domain: durability.EADR, Algo: algo},
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: algo},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: algo},
	}
}

// table12Maker builds the Table I/II workload.
func table12Maker() WorkloadMaker {
	return WorkloadMaker{"tpcc-hash", func(p Params) workload.Workload {
		return tpcc.New(tpcc.Config{Kind: tpcc.HashIndex})
	}}
}

// RunTable12 reproduces Table I (redo) or Table II (undo):
// commits-per-abort for TPCC (Hash Table), serially.
func RunTable12(algo core.Algo, p Params, w io.Writer) (Figure, error) {
	return RunTable12Opts(algo, p, serialOptions(w))
}

// Table3Row is one cell of Table III: the throughput gain from
// (incorrectly) removing fences from the ADR write instrumentation.
type Table3Row struct {
	Workload string
	Algo     core.Algo
	Base     float64
	NoFence  float64
	Speedup  float64 // percent
}

// table3Makers builds the four Table III workloads.
func table3Makers() []WorkloadMaker {
	return []WorkloadMaker{
		{"tpcc-hash", func(p Params) workload.Workload {
			return tpcc.New(tpcc.Config{Kind: tpcc.HashIndex})
		}},
		TATPWorkload(),
		{"vacation-low", func(p Params) workload.Workload {
			rel := 16384
			if p.Small {
				rel = 4096
			}
			return vacation.New(vacation.Config{Contention: vacation.Low, Relations: rel})
		}},
		{"vacation-high", func(p Params) workload.Workload {
			return vacation.New(vacation.Config{Contention: vacation.High})
		}},
	}
}

// RunTable3 measures the fence-elision ablation at a low thread count
// (the paper reports a latency snapshot; at saturation the WPQ-accept
// wait would dominate and overstate the fence share), serially.
func RunTable3(p Params, w io.Writer) ([]Table3Row, error) {
	return RunTable3Opts(p, serialOptions(w))
}

// Fig8Point is one working-set measurement of Figure 8.
type Fig8Point struct {
	Items   int
	WSBytes uint64
	Results map[string]float64 // cell label -> requests per second
}

// fig8Cells is the Figure 8 curve list, hoisted so the sweep, the CSV
// writer, and the renderer all iterate the same slice.
var fig8Cells = []Cell{
	{Medium: core.MediumDRAM, Domain: durability.EADR, Algo: core.OrecLazy},
	{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecEager},
	{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
	{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecEager},
	{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy},
	{Medium: core.MediumNVM, Domain: durability.PDRAM, Algo: core.OrecLazy},
	{Medium: core.MediumNVM, Domain: durability.PDRAMLite, Algo: core.OrecLazy},
}

// Fig8Cells returns the Figure 8 curves.
func Fig8Cells() []Cell {
	return fig8Cells
}

// Fig8 capacity model (scaled ~1000x down from the paper's machine;
// see EXPERIMENTS.md): a 256 KB L3 and a 4 MB DRAM page cache. The
// item counts sweep the working set across both capacities, mirroring
// the paper's 32 MB / 32..320 GB X axis.
const (
	fig8L3Lines    = 4096 // 256 KB
	fig8PageFrames = 1024 // 4 MB of DRAM cache
)

// Fig8ItemCounts returns the working-set sweep (items of ~1.2 KB).
func Fig8ItemCounts(small bool) []int {
	if small {
		return []int{128, 1024, 4096, 8192}
	}
	return []int{128, 1024, 2048, 3072, 4096, 6144, 8192}
}

// RunFig8 reproduces the memcached working-set study serially: one
// worker thread, 50/50 get/set, throughput vs resident items.
func RunFig8(p Params, w io.Writer) ([]Fig8Point, error) {
	return RunFig8Opts(p, serialOptions(w))
}

// WriteFig8CSV emits the working-set sweep as CSV. Points sharded
// away to another machine are omitted.
func WriteFig8CSV(points []Fig8Point, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "items", "working_set_bytes", "curve", "requests_per_s"}); err != nil {
		return err
	}
	for _, p := range points {
		for _, cell := range fig8Cells {
			rps, ok := p.Results[cell.Label()]
			if !ok { // sharded away
				continue
			}
			rec := []string{
				"Figure 8", strconv.Itoa(p.Items), strconv.FormatUint(p.WSBytes, 10),
				cell.Label(), strconv.FormatFloat(rps, 'f', 0, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// PrintFig8 renders the working-set sweep.
func PrintFig8(points []Fig8Point, w io.Writer) {
	fmt.Fprintf(w, "\nFigure 8 — memcached, single worker (requests per virtual second)\n")
	fmt.Fprintf(w, "%-26s", "curve \\ working set")
	for _, p := range points {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("%dKB", p.WSBytes/1024))
	}
	fmt.Fprintln(w)
	for _, cell := range fig8Cells {
		fmt.Fprintf(w, "%-26s", cell.Label())
		for _, p := range points {
			rps, ok := p.Results[cell.Label()]
			if !ok { // sharded away
				fmt.Fprintf(w, "%10s", "-")
				continue
			}
			fmt.Fprintf(w, "%10.0f", rps/1000)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(values in kilo-requests/s; L3 = 256 KB, DRAM page cache = 4 MB)")
}
