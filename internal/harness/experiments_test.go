package harness

import (
	"bytes"
	"strings"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
)

// tinyParams keeps experiment-plumbing tests fast.
func tinyParams() Params {
	return Params{Threads: []int{1, 2}, WarmupNS: 100_000, MeasureNS: 300_000, Small: true}
}

func TestCellSets(t *testing.T) {
	cells := Fig34Cells()
	if len(cells) != 8 {
		t.Fatalf("Fig34Cells = %d, want 8", len(cells))
	}
	labels := map[string]bool{}
	for _, c := range cells {
		labels[c.Label()] = true
	}
	for _, want := range []string{"DRAM_ADR_U", "DRAM_eADR_R", "Optane_ADR_R", "Optane_eADR_U"} {
		if !labels[want] {
			t.Errorf("Fig34Cells missing %s", want)
		}
	}
	if len(Fig67Cells()) != 6 {
		t.Fatalf("Fig67Cells = %d, want 6", len(Fig67Cells()))
	}
	if len(Fig8Cells()) != 7 {
		t.Fatalf("Fig8Cells = %d, want 7", len(Fig8Cells()))
	}
	if len(TableIOrIICells(core.OrecLazy)) != 4 {
		t.Fatal("TableIOrIICells != 4 rows")
	}
}

func TestPanelWorkloadsMatchPaper(t *testing.T) {
	names := []string{}
	for _, mk := range PanelWorkloads() {
		names = append(names, mk.Name)
	}
	want := []string{"btree-insert", "btree-mixed", "tpcc-btree", "tpcc-hash", "vacation-low", "vacation-high"}
	if len(names) != len(want) {
		t.Fatalf("panels = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("panel %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestRunPanelProducesFigure(t *testing.T) {
	p := tinyParams()
	fig, err := RunPanel("test", TATPWorkload(), []Cell{
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
		{Medium: core.MediumNVM, Domain: durability.EADR, Algo: core.OrecLazy},
	}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Results) != 2 {
		t.Fatalf("figure shape wrong: %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, r := range s.Results {
			if r.Commits <= 0 {
				t.Fatalf("no commits for %s", s.Cell.Label())
			}
		}
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "Optane_ADR_R") || !strings.Contains(out, "tatp") {
		t.Fatalf("Print output malformed:\n%s", out)
	}
	buf.Reset()
	fig.PrintRatios(&buf)
	if !strings.Contains(buf.String(), "commits per abort") {
		t.Fatal("PrintRatios output malformed")
	}
}

func TestRunTable3ProducesRows(t *testing.T) {
	p := tinyParams()
	rows, err := RunTable3(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 workloads x 2 algorithms
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Base <= 0 || r.NoFence <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
	}
}

func TestRunFig8SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 sweep in -short mode")
	}
	p := Params{WarmupNS: 100_000, MeasureNS: 300_000, Small: true}
	points, err := RunFig8(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig8ItemCounts(true)) {
		t.Fatalf("points = %d", len(points))
	}
	// The L3 cliff: the smallest working set must beat the largest for
	// the eADR redo curve.
	small := points[0].Results["Optane_eADR_R"]
	big := points[len(points)-1].Results["Optane_eADR_R"]
	if small <= big {
		t.Fatalf("no working-set cliff: %f <= %f", small, big)
	}
	var buf bytes.Buffer
	PrintFig8(points, &buf)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Fatal("PrintFig8 malformed")
	}
}

func TestQuickAndFullParams(t *testing.T) {
	q, f := QuickParams(), FullParams()
	if !q.Small || f.Small {
		t.Fatal("Small flags wrong")
	}
	if len(f.Threads) != 6 || f.Threads[5] != 32 {
		t.Fatalf("full thread axis = %v, want the paper's {1..32}", f.Threads)
	}
	if q.MeasureNS >= f.MeasureNS {
		t.Fatal("quick mode not quicker")
	}
}

func TestBuildTMAppliesOverrides(t *testing.T) {
	w := TATPWorkload().Make(tinyParams())
	tm, err := BuildTM(Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
		RunConfig{Threads: 2, WPQDepth: 16, L3Lines: 2048, MaxLog: 256}, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.Bus().Controller().Config().Depth; got != 16 {
		t.Fatalf("WPQ depth = %d, want 16", got)
	}
	if got := tm.Config().MaxLogEntries; got != 256 {
		t.Fatalf("max log = %d, want 256", got)
	}
}

func TestLatencyHistogramPopulated(t *testing.T) {
	p := tinyParams()
	res, err := Run(Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
		RunConfig{Threads: 2, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS},
		TATPWorkload().Make(p))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples recorded")
	}
	p50 := res.Latency.Percentile(50)
	if p50 <= 0 || p50 > 1_000_000 {
		t.Fatalf("p50 latency = %d ns, implausible", p50)
	}
	if res.Latency.Percentile(99) < p50 {
		t.Fatal("p99 < p50")
	}
}

func TestWindowSizeInsensitivity(t *testing.T) {
	// The virtual-time methodology must not depend on the barrier
	// window: throughput at 0.5x and 2x the default window should be
	// within a modest band of the default. This validates that results
	// come from the model, not the scheduler.
	p := tinyParams()
	run := func(window int64) float64 {
		w := TATPWorkload().Make(p)
		tm, err := core.New(core.Config{
			Algo: core.OrecLazy, Medium: core.MediumNVM, Domain: durability.ADR,
			Threads: 4, HeapWords: 1 << 21, WindowNS: window, OrecSize: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		cell := Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}
		rc := RunConfig{Threads: 4, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS}
		return RunOn(tm, cell, rc, w).ThroughputOps
	}
	base := run(1000)
	for _, win := range []int64{500, 2000} {
		got := run(win)
		ratio := got / base
		if ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("window %d ns shifted throughput by %0.2fx (base %.0f, got %.0f)",
				win, ratio, base, got)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	p := tinyParams()
	fig, err := RunPanel("Figure X", TATPWorkload(), []Cell{
		{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy},
	}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(p.Threads) {
		t.Fatalf("CSV rows = %d, want header + %d points:\n%s", len(lines), len(p.Threads), buf.String())
	}
	if !strings.HasPrefix(lines[0], "figure,workload,curve,threads") {
		t.Fatalf("CSV header malformed: %s", lines[0])
	}
	if !strings.Contains(lines[1], "Optane_ADR_R") {
		t.Fatalf("CSV row malformed: %s", lines[1])
	}
}

func TestRunTable12Smoke(t *testing.T) {
	p := Params{Threads: []int{2}, WarmupNS: 100_000, MeasureNS: 300_000, Small: true}
	fig, err := RunTable12(core.OrecLazy, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Name != "Table I" || len(fig.Series) != 4 {
		t.Fatalf("table shape: %s with %d series", fig.Name, len(fig.Series))
	}
	fig2, err := RunTable12(core.OrecEager, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fig2.Name != "Table II" {
		t.Fatalf("undo table name = %s", fig2.Name)
	}
}

func TestPanelWorkloadsConstructAtBothScales(t *testing.T) {
	for _, small := range []bool{true, false} {
		p := Params{Small: small}
		for _, mk := range PanelWorkloads() {
			if w := mk.Make(p); w == nil || w.Name() == "" {
				t.Fatalf("panel %s failed to construct (small=%v)", mk.Name, small)
			}
		}
	}
	if len(Fig8ItemCounts(false)) <= len(Fig8ItemCounts(true)) {
		t.Fatal("full Fig8 sweep not larger than quick sweep")
	}
	rc := DefaultRun(8)
	if rc.Threads != 8 || rc.MeasureNS <= rc.WarmupNS {
		t.Fatalf("DefaultRun = %+v", rc)
	}
}
