package loadsim

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// smallCfg keeps unit runs fast; the CI determinism job runs the
// full-size config through cmd/ptmserve -loadsim.
func smallCfg() Config {
	return Config{
		Shards:   2,
		Keys:     512,
		Requests: 4000,
		Rate:     4e6,
		Seed:     7,
	}
}

func TestRunCompletes(t *testing.T) {
	res, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed+res.Shed+res.Rejected != int64(res.Cfg.Requests) {
		t.Fatalf("accounting leak: executed %d + shed %d + rejected %d != %d requests",
			res.Executed, res.Shed, res.Rejected, res.Cfg.Requests)
	}
	if res.Executed == 0 {
		t.Fatal("no requests executed")
	}
	if res.P99 <= 0 {
		t.Fatalf("p99 = %d, want > 0", res.P99)
	}
}

// TestDeterminism: two identical runs must agree bit-for-bit — the
// property the golden hash and the CI byte-compare rest on.
func TestDeterminism(t *testing.T) {
	a, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := Report([]Result{a}), Report([]Result{b})
	if ra != rb {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", ra, rb)
	}
}

// TestGoldenHash pins the report bytes of a fixed config. A mismatch
// means the simulated schedule changed — intended changes update the
// constant, everything else is a regression in determinism.
func TestGoldenHash(t *testing.T) {
	results, err := Curve(smallCfg(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(Report(results)))
	got := hex.EncodeToString(sum[:])
	const want = "d25a47a0ae4cf4ec75df8c2b9b35d19403df7ab1908edb057d247f8ea393a500"
	if got != want {
		t.Fatalf("golden report hash changed:\n got %s\nwant %s\nreport:\n%s", got, want, Report(results))
	}
}

// TestBatchingReducesTailLatency is the harness's reason to exist: at
// an arrival rate that saturates unbatched commit, coalescing must cut
// p99 service latency.
func TestBatchingReducesTailLatency(t *testing.T) {
	cfg := smallCfg()
	cfg.Rate = 8e6 // well past per-op commit throughput
	results, err := Curve(cfg, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	unbatched, batched := results[0], results[1]
	if batched.MeanBatch < 2 {
		t.Fatalf("high load never filled batches: mean %v", batched.MeanBatch)
	}
	if batched.P99 >= unbatched.P99 {
		t.Fatalf("batching did not cut p99: batch=16 p99 %d >= batch=1 p99 %d",
			batched.P99, unbatched.P99)
	}
}
