// Package loadsim is the deterministic open-loop companion to the
// ptmserve TCP frontend: it drives the server's sharded batching
// executor entirely in virtual time, with a seeded arrival process on
// a lockstep-scheduled machine, so a service-latency curve is exactly
// reproducible — two runs with the same config produce byte-identical
// reports, pinnable by hash in CI.
//
// Open-loop matters here the way it matters in real load testing: a
// closed-loop client waits for each response before sending the next
// request, so a slow server self-throttles its own load and hides
// queueing delay. The open-loop generator emits requests on its own
// seeded schedule regardless of completions, which is what exposes
// the batching trade-off this harness exists to measure: at high
// arrival rates, commit coalescing cuts p99 latency (one durable
// commit tail amortized over a full batch) while batch size 1 drowns
// in per-op fence cost and sheds load.
package loadsim

import (
	"fmt"
	"strings"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/obs"
	"goptm/internal/server"
	"goptm/internal/simtime"
	"goptm/internal/stats"
)

// Config parameterizes one run. The zero value is completed by
// withDefaults; Rate and Requests are the knobs sweeps usually turn.
type Config struct {
	Algo   core.Algo
	Domain durability.Domain
	Shards int // executor shards; 0 selects 4

	Keys       int // prepopulated keyspace; 0 selects 4096
	ValueBytes int // value size; 0 selects 64
	SetPercent int // percentage of sets in the mix; 0 selects 50

	Rate     float64 // arrivals per virtual second; 0 selects 2e6
	Requests int     // arrivals to generate; 0 selects 20000
	Seed     uint64  // arrival-process seed; 0 selects 1

	MaxBatch      int   // commit coalescing bound; 0 selects 8, 1 disables
	BatchWindowNS int64 // group-commit window; 0 selects 2000
	DeadlineNS    int64 // shedding deadline; 0 selects 1ms
	QueueDepth    int   // per-shard queue; 0 selects 256

	// Adaptive hands each shard's (cap, window) to the AIMD controller,
	// with MaxBatch/BatchWindowNS as the starting operating point and
	// Ctrl supplying bounds and gains. The controller trace is always
	// retained so the run's CtrlTraceFNV fingerprint can be pinned.
	Adaptive bool
	Ctrl     server.CtrlConfig

	// Warmup marks the first N arrivals warmup: they execute and count
	// as executed, but stay out of the latency percentiles, so an
	// adaptive run's convergence ramp does not pollute its steady-state
	// p99. Applied identically to static runs for a fair comparison.
	Warmup int

	// Recorder, when tracing, receives the machine's spans and counter
	// tracks plus the sampled request-lifecycle records; export it with
	// WriteTrace after the run. Nil (the default) records nothing and
	// leaves every golden-pinned report byte-identical.
	Recorder *obs.Recorder
	// TraceSample keeps ~1 in N arrivals for lifecycle tracing (1 keeps
	// all, 0 disables); TraceSeed fixes which arrivals are kept. All
	// stamps ride the virtual clock, so sampling never shifts a latency
	// curve.
	TraceSample int
	TraceSeed   uint64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 64
	}
	if c.SetPercent <= 0 {
		c.SetPercent = 50
	}
	if c.Rate <= 0 {
		c.Rate = 2e6
	}
	if c.Requests <= 0 {
		c.Requests = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	return c
}

// Result is one run's outcome.
type Result struct {
	Cfg      Config
	Executed int64 // requests served through transactions
	Shed     int64 // deadline-shed after queueing
	Rejected int64 // refused at admission (queue full)

	P50, P90, P99, P999 int64   // enqueue→completion latency, virtual ns (post-warmup)
	MeanBatch           float64 // average coalesced batch size
	Batches             int64
	ElapsedNS           int64   // virtual time from first arrival to drain
	Throughput          float64 // executed requests per virtual second

	CtrlSteps    int64  // controller evaluations across shards (0 when static)
	CtrlTraceFNV uint64 // determinism fingerprint of the controller traces

	Latency stats.Histogram
}

// Run executes one deterministic open-loop experiment.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	logBound := maxInt(cfg.MaxBatch, 8) // size the log for the largest sweep point
	if cfg.Adaptive && cfg.Ctrl.MaxBatch > logBound {
		logBound = cfg.Ctrl.MaxBatch // the controller may grow batches to its bound
	}
	st, err := server.Open(server.StoreConfig{
		Algo:     cfg.Algo,
		Domain:   cfg.Domain,
		Shards:   cfg.Shards,
		MaxBatch: logBound,
		Lockstep: true,
		Recorder: cfg.Recorder,
	})
	if err != nil {
		return Result{}, err
	}

	// Prepopulate the keyspace from thread 0 before the shard workers
	// attach, in batched transactions sized like the executor's.
	kv := st.KV()
	th0 := st.TM().Thread(0)
	val := make([]byte, cfg.ValueBytes)
	chunk := st.Config().MaxBatch
	for base := 0; base < cfg.Keys; base += chunk {
		end := minInt(base+chunk, cfg.Keys)
		th0.Atomic(func(tx *core.Tx) {
			for k := base; k < end; k++ {
				fillValue(val, uint64(k))
				if err := kv.Set(tx, keyBytes(k), val, 0); err != nil {
					panic(err)
				}
			}
		})
	}

	ctrl := cfg.Ctrl
	ctrl.Trace = true
	exec := server.NewExecutor(st, server.ExecConfig{
		Shards:        cfg.Shards,
		QueueDepth:    cfg.QueueDepth,
		MaxBatch:      cfg.MaxBatch,
		BatchWindowNS: cfg.BatchWindowNS,
		DeadlineNS:    cfg.DeadlineNS,
		Adaptive:      cfg.Adaptive,
		Ctrl:          ctrl,
		TraceSample:   cfg.TraceSample,
		TraceSeed:     cfg.TraceSeed,
	})

	// The open-loop generator: arrivals with seeded integer gaps,
	// uniform in [0, 2*mean) so the mean matches 1/Rate without
	// floating-point math in the deterministic path.
	rng := simtime.NewRand(cfg.Seed)
	meanGap := int64(1e9 / cfg.Rate)
	if meanGap < 1 {
		meanGap = 1
	}
	start := th0.Now()
	var rejected int64
	reqs := make([]server.Request, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		th0.Compute(int64(rng.Uint64n(uint64(2*meanGap))) + 1)
		req := &reqs[i]
		req.Warmup = i < cfg.Warmup
		k := int(rng.Uint64n(uint64(cfg.Keys)))
		req.Key = keyBytes(k)
		if int(rng.Uint64n(100)) < cfg.SetPercent {
			req.Op = server.OpSet
			v := make([]byte, cfg.ValueBytes)
			fillValue(v, uint64(i))
			req.Value = v
		} else {
			req.Op = server.OpGet
		}
		req.EnqVT = th0.Now()
		// Parse and enqueue coincide in the open-loop model: the sampled
		// chain's TS[0] and TS[1] land on the arrival instant, so the
		// seven phase durations telescope to exactly the recorded latency.
		req.Trace = exec.TraceStart(req.EnqVT)
		if !exec.Submit(req) {
			rejected++
		}
	}
	exec.InputsDone()
	th0.Detach()
	exec.Drain()

	es := exec.Stats()
	res := Result{
		Cfg:       cfg,
		Executed:  es.Executed,
		Shed:      es.Shed,
		Rejected:  rejected,
		P50:       es.Latency.P50(),
		P90:       es.Latency.P90(),
		P99:       es.Latency.P99(),
		P999:      es.Latency.P999(),
		Batches:   es.BatchSizes.Count(),
		CtrlSteps: es.CtrlSteps,
		Latency:   es.Latency,
	}
	if cfg.Adaptive {
		res.CtrlTraceFNV = exec.CtrlTraceFNV()
	}
	if res.Batches > 0 {
		res.MeanBatch = float64(es.Executed) / float64(res.Batches)
	}
	// Elapsed runs to the last shard's final virtual timestamp.
	res.ElapsedNS = lastVT(exec) - start
	if res.ElapsedNS > 0 {
		res.Throughput = float64(res.Executed) / (float64(res.ElapsedNS) / 1e9)
	}
	return res, nil
}

// lastVT returns the latest per-shard clock — the drain completion
// time of the slowest shard.
func lastVT(exec *server.Executor) int64 {
	var max int64
	for i := 0; i < exec.Config().Shards; i++ {
		if vt := exec.ShardVT(i); vt > max {
			max = vt
		}
	}
	return max
}

// Curve runs the same workload at each batch size and returns the
// results in order — the batching trade-off at one arrival rate.
func Curve(cfg Config, batchSizes []int) ([]Result, error) {
	out := make([]Result, 0, len(batchSizes))
	for _, b := range batchSizes {
		c := cfg
		c.MaxBatch = b
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Report renders results as the fixed-width table the CI determinism
// check hashes. Only integers and fixed-precision floats appear, so
// the bytes are platform-independent.
func Report(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-9s %-6s %-6s %-9s %-9s %-9s %-9s %-9s %-10s\n",
		"batch", "rate", "executed", "shed", "rej", "p50ns", "p90ns", "p99ns", "p999ns", "meanbatch", "req/s")
	for _, r := range results {
		fmt.Fprintf(&b, "%-6d %-10.0f %-9d %-6d %-6d %-9d %-9d %-9d %-9d %-9.2f %-10.0f\n",
			r.Cfg.MaxBatch, r.Cfg.Rate, r.Executed, r.Shed, r.Rejected,
			r.P50, r.P90, r.P99, r.P999, r.MeanBatch, r.Throughput)
	}
	return b.String()
}

// keyBytes renders the canonical key for index k.
func keyBytes(k int) []byte { return fmt.Appendf(nil, "key-%d", k) }

// fillValue writes a deterministic pattern derived from seed into v.
func fillValue(v []byte, seed uint64) {
	for i := range v {
		v[i] = byte(seed + uint64(i)*131)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
