package loadsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"goptm/internal/obs"
)

// traceDoc is the slice of the Chrome trace-event schema the tests
// inspect.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

func runTraced(t *testing.T, cfg Config) (Result, *obs.Recorder, traceDoc) {
	t.Helper()
	rec := obs.New(cfg.Shards+1, true)
	cfg.Recorder = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	return res, rec, doc
}

// TestTraceRequestChains is the tentpole acceptance check: a sampled
// run exports request span chains where every record covers all seven
// phases with monotone boundaries, and the phase durations sum exactly
// to the end-to-end latency (parse and enqueue coincide in the open
// loop, so the tolerance is zero virtual ticks).
func TestTraceRequestChains(t *testing.T) {
	cfg := Config{
		Shards: 2, Requests: 2000, Rate: 2e6, Seed: 3,
		TraceSample: 16, TraceSeed: 11,
	}
	res, rec, doc := runTraced(t, cfg)
	if res.Executed == 0 {
		t.Fatal("run executed nothing")
	}
	recs := rec.Requests()
	if len(recs) == 0 {
		t.Fatal("sampling retained no request records")
	}
	// Roughly 1/16 of 2000 arrivals; the hash-based sampler has binomial
	// spread, so just require a sensible band.
	if len(recs) < 2000/16/4 || len(recs) > 2000/16*4 {
		t.Fatalf("sampled %d of 2000 at 1/16 — sampler off the rails", len(recs))
	}
	for _, q := range recs {
		for p := 0; p < int(obs.NumReqPhases); p++ {
			if q.TS[p+1] < q.TS[p] {
				t.Fatalf("req %d: boundary %d goes backwards: %v", q.ID, p, q.TS)
			}
		}
		var sum int64
		for p := 0; p < int(obs.NumReqPhases); p++ {
			sum += q.TS[p+1] - q.TS[p]
		}
		if e2e := q.TS[obs.NumReqPhases] - q.TS[0]; sum != e2e {
			t.Fatalf("req %d: phases sum to %d, end-to-end is %d", q.ID, sum, e2e)
		}
	}

	// The exported chains: pick any non-shed request id and assert the
	// full phase taxonomy appears with the right total.
	var want *obs.ReqRecord
	for i := range recs {
		if !recs[i].Shed {
			want = &recs[i]
			break
		}
	}
	if want == nil {
		t.Fatal("every sampled request was shed")
	}
	phases := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 2 {
			continue
		}
		if id, ok := ev.Args["req"].(float64); ok && uint64(id) == want.ID {
			phases[ev.Name] += ev.Dur
		}
	}
	var sum float64
	for p := obs.ReqPhase(0); p < obs.NumReqPhases; p++ {
		d, ok := phases[p.String()]
		if !ok {
			t.Fatalf("req %d chain missing phase %q: %v", want.ID, p, phases)
		}
		sum += d
	}
	if e2e := float64(want.TS[obs.NumReqPhases]-want.TS[0]) / 1000.0; sum != e2e {
		t.Fatalf("rendered chain sums to %fµs, end-to-end is %fµs", sum, e2e)
	}
}

// TestTraceSamplingDeterminism: the same (seed, sample) keeps the same
// arrivals.
func TestTraceSamplingDeterminism(t *testing.T) {
	cfg := Config{Shards: 1, Requests: 800, Seed: 5, TraceSample: 8, TraceSeed: 42}
	_, rec1, _ := runTraced(t, cfg)
	_, rec2, _ := runTraced(t, cfg)
	a, b := rec1.Requests(), rec2.Requests()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("sampled %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestTraceServerCounterTracks covers the serving-layer counter tracks
// (queue depth, controller cap and window): they must appear in an
// exported adaptive-run trace, and on a single shard — where one
// worker emits every sample — each track's timestamps must be
// monotone.
func TestTraceServerCounterTracks(t *testing.T) {
	cfg := Config{
		Shards: 1, Requests: 3000, Rate: 6e6, Seed: 9, Adaptive: true,
	}
	_, _, doc := runTraced(t, cfg)
	tracks := map[string][]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" {
			tracks[ev.Name] = append(tracks[ev.Name], ev.Ts)
		}
	}
	for _, name := range []string{"server_queue_depth", "server_batch_cap", "server_window_ns"} {
		ts := tracks[name]
		if len(ts) == 0 {
			t.Errorf("counter track %q missing from the trace (have %d tracks)", name, len(tracks))
			continue
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Errorf("track %q timestamps regress at %d: %f < %f", name, i, ts[i], ts[i-1])
				break
			}
		}
	}
}
