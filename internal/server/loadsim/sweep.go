package loadsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The offered-rate sweep is the experiment that justifies the adaptive
// controller: run the same workload at a ladder of arrival rates, once
// with the controller on and once per static (batch, window) operating
// point, and tabulate the latency knee. A static point is only right
// at one spot on the ladder — a big window wastes latency at low rate,
// a small batch drowns in commit tails at high rate — while the
// controller is supposed to track the knee across the whole ladder.
// The sweep emits that claim as a deterministic table and a JSON
// artifact (BENCH_9.json) whose verdict fields CI asserts.

// StaticPoint is one fixed (batch cap, group-commit window) operating
// point swept alongside the controller.
type StaticPoint struct {
	MaxBatch int
	WindowNS int64
}

func (p StaticPoint) String() string {
	return fmt.Sprintf("static-b%d-w%d", p.MaxBatch, p.WindowNS)
}

// SweepConfig parameterizes one rate sweep. Base supplies the
// workload (keys, mix, seed, deadline, warmup); Rate and the batching
// knobs are overridden per cell.
type SweepConfig struct {
	Base    Config
	Rates   []float64     // offered arrival rates, one sweep row each
	Statics []StaticPoint // fixed operating points to race against

	// Adaptive cells start at Start and let the controller move inside
	// Base.Ctrl's bounds.
	Start StaticPoint

	// Jobs bounds concurrent cells; each cell is an independent
	// lockstep machine, so parallel execution cannot perturb results.
	// 0 selects 1.
	Jobs int
}

// CellResult is one sweep cell: a (rate, operating point) pair's run.
type CellResult struct {
	Label string // "adaptive" or StaticPoint.String()
	Res   Result
}

// SweepRow is one offered rate's cells, adaptive first.
type SweepRow struct {
	Rate     float64
	Adaptive CellResult
	Statics  []CellResult

	// Verdict fields, filled by RunSweep:
	BestStaticP99 int64 // min static p99 at this rate
	// RatioX100 is adaptive p99 as a percentage of the best static p99
	// (110 means 10% worse). The acceptance bar is <= 110 everywhere.
	RatioX100 int64
}

// Sweep is a full rate sweep plus its verdicts.
type Sweep struct {
	Cfg  SweepConfig
	Rows []SweepRow

	// MaxRatioX100 is the worst per-rate RatioX100 — the headline
	// "adaptive is within X% of the best static everywhere" number.
	MaxRatioX100 int64

	// StaticWorstX100[i] is static i's worst p99 across the ladder as a
	// percentage of adaptive's p99 at the same rate. The acceptance bar
	// is >= 200 for every static: each fixed point is at least 2x worse
	// than the controller somewhere on the ladder.
	StaticWorstX100 []int64
}

func ratioX100(num, den int64) int64 {
	if den <= 0 {
		if num <= 0 {
			return 100
		}
		return 1 << 30
	}
	return num * 100 / den
}

// RunSweep executes the full rate × operating-point grid. Cells run
// concurrently up to cfg.Jobs wide; assembly is by index, so the
// result (and everything derived from it) is independent of execution
// order — `-jobs 1` and `-jobs N` produce byte-identical artifacts.
func RunSweep(cfg SweepConfig) (*Sweep, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	type cell struct {
		row, col int // col 0 = adaptive, col i+1 = static i
		cfg      Config
		label    string
	}
	var cells []cell
	for ri, rate := range cfg.Rates {
		base := cfg.Base
		base.Rate = rate
		ad := base
		ad.Adaptive = true
		ad.MaxBatch = cfg.Start.MaxBatch
		ad.BatchWindowNS = cfg.Start.WindowNS
		cells = append(cells, cell{row: ri, col: 0, cfg: ad, label: "adaptive"})
		for si, sp := range cfg.Statics {
			st := base
			st.Adaptive = false
			st.MaxBatch = sp.MaxBatch
			st.BatchWindowNS = sp.WindowNS
			cells = append(cells, cell{row: ri, col: si + 1, cfg: st, label: sp.String()})
		}
	}

	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Jobs)
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := Run(c.cfg)
			results[i] = CellResult{Label: c.label, Res: res}
			errs[i] = err
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sw := &Sweep{Cfg: cfg, Rows: make([]SweepRow, len(cfg.Rates))}
	for ri, rate := range cfg.Rates {
		sw.Rows[ri].Rate = rate
		sw.Rows[ri].Statics = make([]CellResult, len(cfg.Statics))
	}
	for i, c := range cells {
		if c.col == 0 {
			sw.Rows[c.row].Adaptive = results[i]
		} else {
			sw.Rows[c.row].Statics[c.col-1] = results[i]
		}
	}

	sw.StaticWorstX100 = make([]int64, len(cfg.Statics))
	for ri := range sw.Rows {
		row := &sw.Rows[ri]
		best := int64(-1)
		for si, sc := range row.Statics {
			if best < 0 || sc.Res.P99 < best {
				best = sc.Res.P99
			}
			r := ratioX100(sc.Res.P99, row.Adaptive.Res.P99)
			if r > sw.StaticWorstX100[si] {
				sw.StaticWorstX100[si] = r
			}
		}
		row.BestStaticP99 = best
		row.RatioX100 = ratioX100(row.Adaptive.Res.P99, best)
		if row.RatioX100 > sw.MaxRatioX100 {
			sw.MaxRatioX100 = row.RatioX100
		}
	}
	return sw, nil
}

// SweepReport renders the knee table: one block per rate with every
// operating point's latency line, then the verdict summary. Fixed
// formatting, integers and fixed-precision floats only — the bytes
// are the determinism artifact CI compares across -jobs levels.
func SweepReport(sw *Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-18s %-9s %-6s %-6s %-9s %-9s %-9s %-9s %-9s\n",
		"rate", "config", "executed", "shed", "rej", "p50ns", "p90ns", "p99ns", "meanbatch", "ctrlsteps")
	for _, row := range sw.Rows {
		line := func(c CellResult) {
			fmt.Fprintf(&b, "%-10.0f %-18s %-9d %-6d %-6d %-9d %-9d %-9d %-9.2f %-9d\n",
				row.Rate, c.Label, c.Res.Executed, c.Res.Shed, c.Res.Rejected,
				c.Res.P50, c.Res.P90, c.Res.P99, c.Res.MeanBatch, c.Res.CtrlSteps)
		}
		line(row.Adaptive)
		for _, sc := range row.Statics {
			line(sc)
		}
	}
	fmt.Fprintf(&b, "\nknee summary (p99, adaptive vs best static per rate):\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-10s\n", "rate", "adaptive", "best_static", "pct")
	for _, row := range sw.Rows {
		fmt.Fprintf(&b, "%-10.0f %-12d %-12d %-10d\n",
			row.Rate, row.Adaptive.Res.P99, row.BestStaticP99, row.RatioX100)
	}
	fmt.Fprintf(&b, "max adaptive/best_static pct: %d\n", sw.MaxRatioX100)
	for si, sp := range sw.Cfg.Statics {
		fmt.Fprintf(&b, "%s worst pct vs adaptive: %d\n", sp.String(), sw.StaticWorstX100[si])
	}
	return b.String()
}

// BenchJSON renders the sweep as the BENCH_9.json artifact. The bytes
// are fully determined by simulated history — integers only, no host
// info, no timestamps — so CI diffs the file against the checked-in
// baseline with cmp and asserts the verdict fields. Keys are emitted
// in a fixed order by construction.
func BenchJSON(sw *Sweep) []byte {
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  \"schema\": 1,\n")
	fmt.Fprintf(&b, "  \"bench\": \"serving_rate_sweep\",\n")
	base := sw.Cfg.Base.withDefaults()
	fmt.Fprintf(&b, "  \"config\": {\"shards\": %d, \"keys\": %d, \"value_bytes\": %d, \"set_percent\": %d, \"requests\": %d, \"warmup\": %d, \"seed\": %d, \"deadline_ns\": %d, \"queue_depth\": %d},\n",
		base.Shards, base.Keys, base.ValueBytes, base.SetPercent, base.Requests, base.Warmup, base.Seed, base.DeadlineNS, base.QueueDepth)
	fmt.Fprintf(&b, "  \"adaptive_start\": {\"max_batch\": %d, \"window_ns\": %d},\n",
		sw.Cfg.Start.MaxBatch, sw.Cfg.Start.WindowNS)
	b.WriteString("  \"rows\": [\n")
	for ri, row := range sw.Rows {
		cellJSON := func(c CellResult) string {
			return fmt.Sprintf("{\"label\": %q, \"executed\": %d, \"shed\": %d, \"rejected\": %d, \"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d, \"p999_ns\": %d, \"mean_batch_x100\": %d, \"ctrl_steps\": %d, \"ctrl_trace_fnv\": \"%016x\"}",
				c.Label, c.Res.Executed, c.Res.Shed, c.Res.Rejected,
				c.Res.P50, c.Res.P90, c.Res.P99, c.Res.P999, int64(c.Res.MeanBatch*100+0.5),
				c.Res.CtrlSteps, c.Res.CtrlTraceFNV)
		}
		fmt.Fprintf(&b, "    {\"rate\": %d,\n", int64(row.Rate))
		fmt.Fprintf(&b, "     \"adaptive\": %s,\n", cellJSON(row.Adaptive))
		b.WriteString("     \"statics\": [\n")
		for si, sc := range row.Statics {
			comma := ","
			if si == len(row.Statics)-1 {
				comma = ""
			}
			fmt.Fprintf(&b, "       %s%s\n", cellJSON(sc), comma)
		}
		b.WriteString("     ],\n")
		fmt.Fprintf(&b, "     \"best_static_p99_ns\": %d,\n", row.BestStaticP99)
		fmt.Fprintf(&b, "     \"adaptive_vs_best_pct\": %d}", row.RatioX100)
		if ri != len(sw.Rows)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  ],\n")
	fmt.Fprintf(&b, "  \"max_adaptive_vs_best_pct\": %d,\n", sw.MaxRatioX100)
	b.WriteString("  \"static_worst_vs_adaptive_pct\": {")
	for si, sp := range sw.Cfg.Statics {
		if si > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: %d", sp.String(), sw.StaticWorstX100[si])
	}
	b.WriteString("},\n")
	pass := sw.MaxRatioX100 <= 110
	for _, w := range sw.StaticWorstX100 {
		if w < 200 {
			pass = false
		}
	}
	fmt.Fprintf(&b, "  \"verdict_pass\": %v\n", pass)
	b.WriteString("}\n")
	return []byte(b.String())
}

// ParseStatics parses a "-static" flag value of the form
// "b:w,b:w,..." (batch cap : window ns) into operating points.
func ParseStatics(s string) ([]StaticPoint, error) {
	var out []StaticPoint
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var p StaticPoint
		if _, err := fmt.Sscanf(part, "%d:%d", &p.MaxBatch, &p.WindowNS); err != nil {
			return nil, fmt.Errorf("loadsim: bad static point %q (want batch:windowNS)", part)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadsim: no static points in %q", s)
	}
	return out, nil
}

// ParseRates parses a "-ratesweep" flag value "r1,r2,..." into an
// ascending rate ladder.
func ParseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var r float64
		if _, err := fmt.Sscanf(part, "%g", &r); err != nil || r <= 0 {
			return nil, fmt.Errorf("loadsim: bad rate %q", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadsim: no rates in %q", s)
	}
	sort.Float64s(out)
	return out, nil
}
