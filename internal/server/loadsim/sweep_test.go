package loadsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"goptm/internal/server"
)

func adaptiveCfg() Config {
	c := smallCfg()
	c.Adaptive = true
	c.MaxBatch = 8
	c.BatchWindowNS = 2000
	c.Warmup = 500
	c.Ctrl = server.CtrlConfig{MaxBatch: 32}
	return c
}

// TestAdaptiveRunDeterministic: the controller's whole decision
// history must be a pure function of simulated history — two
// identical adaptive runs agree on every step, pinned by the trace
// fingerprint and the report bytes.
func TestAdaptiveRunDeterministic(t *testing.T) {
	a, err := Run(adaptiveCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(adaptiveCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.CtrlSteps == 0 {
		t.Fatal("adaptive run recorded no controller steps")
	}
	if a.CtrlTraceFNV != b.CtrlTraceFNV {
		t.Fatalf("controller traces diverged: %016x vs %016x", a.CtrlTraceFNV, b.CtrlTraceFNV)
	}
	if Report([]Result{a}) != Report([]Result{b}) {
		t.Fatal("adaptive reports diverged across identical runs")
	}
}

// TestAdaptiveGoldenTrace pins the controller trace fingerprint of a
// fixed adaptive config. A mismatch means the controller consumed
// something outside simulated history (or the rule changed on
// purpose — then update the constant).
func TestAdaptiveGoldenTrace(t *testing.T) {
	res, err := Run(adaptiveCfg())
	if err != nil {
		t.Fatal(err)
	}
	const wantFNV = uint64(0x190ebd36fc9f4164)
	if res.CtrlTraceFNV != wantFNV {
		t.Fatalf("golden controller trace changed: got %016x want %016x (steps %d)",
			res.CtrlTraceFNV, wantFNV, res.CtrlSteps)
	}
}

// TestSweepDeterministicAcrossJobs: cell assembly is by index, so the
// report and JSON artifact are identical at any concurrency level.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	scfg := SweepConfig{
		Base:    adaptiveCfg(),
		Rates:   []float64{1e6, 6e6},
		Statics: []StaticPoint{{MaxBatch: 1, WindowNS: 2000}, {MaxBatch: 32, WindowNS: 16384}},
		Start:   StaticPoint{MaxBatch: 8, WindowNS: 2000},
		Jobs:    1,
	}
	a, err := RunSweep(scfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Jobs = 6
	b, err := RunSweep(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if SweepReport(a) != SweepReport(b) {
		t.Fatalf("sweep reports diverged across -jobs levels:\n%s\nvs\n%s",
			SweepReport(a), SweepReport(b))
	}
	if !bytes.Equal(BenchJSON(a), BenchJSON(b)) {
		t.Fatal("sweep JSON artifacts diverged across -jobs levels")
	}
}

// TestBenchJSONWellFormed: the hand-rendered artifact must stay valid
// JSON with the fields CI asserts.
func TestBenchJSONWellFormed(t *testing.T) {
	sw, err := RunSweep(SweepConfig{
		Base:    adaptiveCfg(),
		Rates:   []float64{4e6},
		Statics: []StaticPoint{{MaxBatch: 1, WindowNS: 2000}},
		Start:   StaticPoint{MaxBatch: 8, WindowNS: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  int    `json:"schema"`
		Bench   string `json:"bench"`
		Rows    []json.RawMessage
		MaxPct  *int64           `json:"max_adaptive_vs_best_pct"`
		Verdict *bool            `json:"verdict_pass"`
		Worst   map[string]int64 `json:"static_worst_vs_adaptive_pct"`
	}
	if err := json.Unmarshal(BenchJSON(sw), &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, BenchJSON(sw))
	}
	if doc.Schema != 1 || doc.Bench != "serving_rate_sweep" {
		t.Fatalf("schema header wrong: %+v", doc)
	}
	if doc.MaxPct == nil || doc.Verdict == nil || len(doc.Worst) != 1 {
		t.Fatalf("verdict fields missing: %s", BenchJSON(sw))
	}
}

// TestParseHelpers covers the flag parsers.
func TestParseHelpers(t *testing.T) {
	pts, err := ParseStatics("1:2000, 8:0,32:16384")
	if err != nil || len(pts) != 3 || pts[2] != (StaticPoint{MaxBatch: 32, WindowNS: 16384}) {
		t.Fatalf("ParseStatics: %v %v", pts, err)
	}
	if _, err := ParseStatics("nope"); err == nil {
		t.Fatal("ParseStatics accepted garbage")
	}
	rates, err := ParseRates("4e6, 250000")
	if err != nil || len(rates) != 2 || rates[0] != 250000 {
		t.Fatalf("ParseRates: %v %v", rates, err)
	}
	if _, err := ParseRates("-3"); err == nil {
		t.Fatal("ParseRates accepted a negative rate")
	}
}
