// Package server is the serving layer over the PTM core: a persistent
// key/value service in the shape of the paper's capstone experiment
// (§V, memcached under memaslap load), but run as a real service
// rather than a closed-loop microbenchmark.
//
// The package has three parts:
//
//   - Store (this file) — the persistent state: a byte-string KV table
//     (kvstore.KV over the transactional hash index) on a PTM heap,
//     with a media-image file so the simulated NVM survives process
//     restarts. Opening an existing image rebuilds the memory system
//     around the saved media bytes and runs core.Reopen recovery,
//     exactly what a persistent-memory service does after a crash.
//   - Executor (executor.go) — sharded transaction execution with
//     commit coalescing: per-shard bounded request queues feed worker
//     threads that group adjacent writes into one transaction, bounded
//     by batch size and a virtual-time window, with per-request
//     deadlines and load shedding for graceful degradation.
//   - Server (tcp.go) — a TCP frontend speaking a memcached text
//     protocol subset (get/set/delete/incr/stats/quit) with graceful
//     drain on shutdown.
//
// The deterministic open-loop companion lives in server/loadsim: it
// drives the same Executor entirely in virtual time and emits
// reproducible p50/p90/p99 service-latency curves.
//
// See docs/SERVING.md for the protocol subset, the batching and
// recovery design, and a latency-curve walkthrough.
package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/membus"
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/workload/kvstore"
)

// kvRootSlot is the heap root slot holding the KV index table.
const kvRootSlot = 0

// StoreConfig parameterizes a Store. The zero value selects a
// redo-logged ADR machine with 4 shards — the configuration the
// paper's serving experiment uses.
type StoreConfig struct {
	Algo    core.Algo
	Domain  durability.Domain
	Shards  int    // executor shards; the machine gets Shards+1 threads
	Heap    uint64 // persistent heap words; 0 selects 1<<21 (16 MiB)
	Buckets int    // hash index buckets (power of two); 0 selects 1<<14
	// MaxLogEntries bounds one transaction's log; 0 derives a bound
	// from MaxValueBytes and the largest batch the executor may form.
	MaxLogEntries int
	// MaxValueBytes caps one value; 0 selects 8 KiB. The protocol layer
	// rejects larger sets so a batch can never overflow the redo log.
	MaxValueBytes int
	// MaxBatch is the largest write batch the executor will coalesce
	// into one transaction (used to size the log); 0 selects 8.
	MaxBatch int
	// Lockstep runs the machine under the deterministic scheduler
	// (loadsim sets it; the TCP server leaves it off so executor
	// shards run concurrently on host cores).
	Lockstep bool

	Recorder *obs.Recorder
	Metrics  *metrics.Registry
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Domain == durability.NoReserve {
		// A serving store needs a durable commit point; under NoReserve
		// the WPQ — and any commit marker waiting in it — evaporates at
		// power failure. The zero value therefore means ADR, the
		// weakest domain the paper treats as a persistence platform.
		c.Domain = durability.ADR
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Heap == 0 {
		c.Heap = 1 << 21
	}
	if c.Buckets == 0 {
		c.Buckets = 1 << 14
	}
	if c.MaxValueBytes == 0 {
		c.MaxValueBytes = 8 << 10
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxLogEntries == 0 {
		// One set writes the item header, key, and value words plus a
		// handful of index words; a batch multiplies that. Headroom
		// doubles the bound so incr reallocation and index chains fit.
		perSet := 4 + 32 + c.MaxValueBytes/8 + 16
		c.MaxLogEntries = 2 * c.MaxBatch * perSet
	}
	return c
}

// coreConfig maps a StoreConfig onto the machine configuration.
func (c StoreConfig) coreConfig() core.Config {
	return core.Config{
		Algo:          c.Algo,
		Medium:        core.MediumNVM,
		Domain:        c.Domain,
		Threads:       c.Shards + 1, // +1: setup/generator/admin thread 0
		HeapWords:     c.Heap,
		MaxLogEntries: c.MaxLogEntries,
		Lockstep:      c.Lockstep,
		Recorder:      c.Recorder,
		Metrics:       c.Metrics,
	}
}

// Store is the persistent state of the service: a PTM machine whose
// heap holds one byte-string KV table, plus the bookkeeping to save
// and reopen the simulated NVM's media image across process restarts.
type Store struct {
	cfg StoreConfig
	tm  *core.TM
	kv  kvstore.KV

	// Recovered reports whether this store was reopened from an image
	// (true) or freshly formatted (false); Recovery holds the
	// post-crash recovery report in the former case.
	Recovered bool
	Recovery  core.RecoveryReport
}

// Open formats a fresh store: a new machine, an empty KV table
// published in the heap root.
func Open(cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	tm, err := core.New(cfg.coreConfig())
	if err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg, tm: tm}
	th := tm.Thread(0)
	th.Atomic(func(tx *core.Tx) {
		st.kv = kvstore.CreateKV(tx, cfg.Buckets)
	})
	tm.SetRoot(th, kvRootSlot, st.kv.Table())
	th.Detach()
	return st, nil
}

// TM exposes the machine.
func (st *Store) TM() *core.TM { return st.tm }

// KV exposes the persistent table.
func (st *Store) KV() kvstore.KV { return st.kv }

// Config returns the store's configuration (after defaulting).
func (st *Store) Config() StoreConfig { return st.cfg }

// Crash simulates a power failure at the machine's current virtual
// time: the durability domain's policy resolves the WPQ and caches
// into the final media image. All threads must be detached. The store
// is unusable afterwards except for SaveImage; reopen via OpenImage.
func (st *Store) Crash(vt int64) {
	st.tm.Crash(vt)
}

// The image file is: magic, a JSON header with the store geometry
// (so a restart needs no flag agreement), then the raw NVM media
// image, one little-endian uint64 per word.
var imageMagic = [8]byte{'P', 'T', 'M', 'K', 'V', 'I', 'M', '1'}

// imageHeader is the persisted store geometry.
type imageHeader struct {
	Algo          int    `json:"algo"`
	Domain        int    `json:"domain"`
	Shards        int    `json:"shards"`
	Heap          uint64 `json:"heap_words"`
	Buckets       int    `json:"buckets"`
	MaxLogEntries int    `json:"max_log_entries"`
	MaxValueBytes int    `json:"max_value_bytes"`
	MaxBatch      int    `json:"max_batch"`
	NVMWords      uint64 `json:"nvm_words"`
}

// SaveImage writes the NVM media image and the store geometry to
// path. Call it only on a quiescent machine whose media image is
// final — after Crash (power-failure semantics; recovery will run on
// reopen) or after Quiesce on the bus (clean shutdown).
func (st *Store) SaveImage(path string) error {
	dev := st.tm.Bus().Device()
	nvm := dev.NVMWords()
	hdr, err := json.Marshal(imageHeader{
		Algo:          int(st.cfg.Algo),
		Domain:        int(st.cfg.Domain),
		Shards:        st.cfg.Shards,
		Heap:          st.cfg.Heap,
		Buckets:       st.cfg.Buckets,
		MaxLogEntries: st.cfg.MaxLogEntries,
		MaxValueBytes: st.cfg.MaxValueBytes,
		MaxBatch:      st.cfg.MaxBatch,
		NVMWords:      nvm,
	})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var scratch [8]byte
	w.Write(imageMagic[:])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(hdr)))
	w.Write(scratch[:4])
	w.Write(hdr)
	for a := memdev.Addr(0); a < memdev.Addr(nvm); a++ {
		binary.LittleEndian.PutUint64(scratch[:], dev.MediaLoad(a))
		w.Write(scratch[:])
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// The rename makes image replacement atomic: a crash mid-save
	// leaves the previous image intact.
	return os.Rename(tmp, path)
}

// OpenImage rebuilds a store from an image file: a fresh memory
// system with the saved media bytes installed, then core.Reopen runs
// crash recovery (redo replay / undo rollback / allocator GC) before
// the KV root is re-attached.
func OpenImage(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 12 || [8]byte(data[:8]) != imageMagic {
		return nil, fmt.Errorf("server: %s is not a ptmserve image", path)
	}
	hlen := int(binary.LittleEndian.Uint32(data[8:12]))
	if len(data) < 12+hlen {
		return nil, fmt.Errorf("server: truncated image header in %s", path)
	}
	var hdr imageHeader
	if err := json.Unmarshal(data[12:12+hlen], &hdr); err != nil {
		return nil, fmt.Errorf("server: bad image header in %s: %w", path, err)
	}
	cfg := StoreConfig{
		Algo:          core.Algo(hdr.Algo),
		Domain:        durability.Domain(hdr.Domain),
		Shards:        hdr.Shards,
		Heap:          hdr.Heap,
		Buckets:       hdr.Buckets,
		MaxLogEntries: hdr.MaxLogEntries,
		MaxValueBytes: hdr.MaxValueBytes,
		MaxBatch:      hdr.MaxBatch,
	}.withDefaults()
	body := data[12+hlen:]
	if uint64(len(body)) != hdr.NVMWords*8 {
		return nil, fmt.Errorf("server: image body is %d bytes, want %d", len(body), hdr.NVMWords*8)
	}

	ccfg := cfg.coreConfig()
	bus, err := core.NewBus(ccfg)
	if err != nil {
		return nil, err
	}
	dev := bus.Device()
	if dev.NVMWords() != hdr.NVMWords {
		return nil, fmt.Errorf("server: image NVM geometry %d words does not match config-derived %d", hdr.NVMWords, dev.NVMWords())
	}
	var payload [memdev.WordsPerLine]uint64
	for ln := uint64(0); ln < hdr.NVMWords/memdev.WordsPerLine; ln++ {
		base := ln * memdev.WordsPerLine * 8
		for w := range payload {
			payload[w] = binary.LittleEndian.Uint64(body[base+uint64(w)*8:])
		}
		dev.MediaWriteLine(ln, payload)
	}

	tm, rep, err := core.Reopen(bus, ccfg)
	if err != nil {
		return nil, fmt.Errorf("server: recovery failed: %w", err)
	}
	st := &Store{cfg: cfg, tm: tm, Recovered: true, Recovery: rep}
	th := tm.Thread(0)
	root := tm.Root(th, kvRootSlot)
	th.Detach()
	if root == 0 {
		return nil, fmt.Errorf("server: image has no KV root")
	}
	st.kv = kvstore.OpenKV(root)
	return st, nil
}

// OpenOrRecover opens path if it exists, else formats a fresh store
// with cfg — the single entry point ptmserve uses at startup.
func OpenOrRecover(path string, cfg StoreConfig) (*Store, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			return OpenImage(path)
		}
	}
	return Open(cfg)
}

// Bus exposes the memory system (tests, quiesce on clean shutdown).
func (st *Store) Bus() *membus.Bus { return st.tm.Bus() }
