// Package server is the serving layer over the PTM core: a persistent
// key/value service in the shape of the paper's capstone experiment
// (§V, memcached under memaslap load), but run as a real service
// rather than a closed-loop microbenchmark.
//
// The package has three parts:
//
//   - Store (this file) — the persistent state: a byte-string KV table
//     (kvstore.KV over the transactional hash index) on a PTM heap,
//     with a media-image file so the simulated NVM survives process
//     restarts. Opening an existing image rebuilds the memory system
//     around the saved media bytes and runs core.Reopen recovery,
//     exactly what a persistent-memory service does after a crash.
//   - Executor (executor.go) — sharded transaction execution with
//     commit coalescing: per-shard bounded request queues feed worker
//     threads that group adjacent writes into one transaction, bounded
//     by batch size and a virtual-time window, with per-request
//     deadlines and load shedding for graceful degradation.
//   - Server (tcp.go) — a TCP frontend speaking a memcached text
//     protocol subset (get/set/delete/incr/stats/quit) with graceful
//     drain on shutdown.
//
// The deterministic open-loop companion lives in server/loadsim: it
// drives the same Executor entirely in virtual time and emits
// reproducible p50/p90/p99 service-latency curves.
//
// See docs/SERVING.md for the protocol subset, the batching and
// recovery design, and a latency-curve walkthrough.
package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/membus"
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/stats"
	"goptm/internal/workload/kvstore"
)

// kvRootSlot is the heap root slot holding the KV index table.
const kvRootSlot = 0

// StoreConfig parameterizes a Store. The zero value selects a
// redo-logged ADR machine with 4 shards — the configuration the
// paper's serving experiment uses.
type StoreConfig struct {
	Algo    core.Algo
	Domain  durability.Domain
	Shards  int    // executor shards; the machine gets Shards+1 threads
	Heap    uint64 // persistent heap words; 0 selects 1<<21 (16 MiB)
	Buckets int    // hash index buckets (power of two); 0 selects 1<<14
	// MaxLogEntries bounds one transaction's log; 0 derives a bound
	// from MaxValueBytes and the largest batch the executor may form.
	MaxLogEntries int
	// MaxValueBytes caps one value; 0 selects 8 KiB. The protocol layer
	// rejects larger sets so a batch can never overflow the redo log.
	MaxValueBytes int
	// MaxBatch is the largest write batch the executor will coalesce
	// into one transaction (used to size the log); 0 selects 8.
	MaxBatch int
	// Lockstep runs the machine under the deterministic scheduler
	// (loadsim sets it; the TCP server leaves it off so executor
	// shards run concurrently on host cores).
	Lockstep bool
	// UnsafeDomain suppresses the NoReserve→ADR promotion below, so a
	// store can run on a domain with no durable commit point. Only the
	// soak harness's gate self-test sets it: the point is to prove the
	// durable-linearizability oracle catches the resulting acked-write
	// loss.
	UnsafeDomain bool

	Recorder *obs.Recorder
	Metrics  *metrics.Registry
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Domain == durability.NoReserve && !c.UnsafeDomain {
		// A serving store needs a durable commit point; under NoReserve
		// the WPQ — and any commit marker waiting in it — evaporates at
		// power failure. The zero value therefore means ADR, the
		// weakest domain the paper treats as a persistence platform.
		c.Domain = durability.ADR
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Heap == 0 {
		c.Heap = 1 << 21
	}
	if c.Buckets == 0 {
		c.Buckets = 1 << 14
	}
	if c.MaxValueBytes == 0 {
		c.MaxValueBytes = 8 << 10
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxLogEntries == 0 {
		// One set writes the item header, key, and value words plus a
		// handful of index words; a batch multiplies that. Headroom
		// doubles the bound so incr reallocation and index chains fit.
		perSet := 4 + 32 + c.MaxValueBytes/8 + 16
		c.MaxLogEntries = 2 * c.MaxBatch * perSet
	}
	return c
}

// coreConfig maps a StoreConfig onto the machine configuration.
func (c StoreConfig) coreConfig() core.Config {
	return core.Config{
		Algo:          c.Algo,
		Medium:        core.MediumNVM,
		Domain:        c.Domain,
		Threads:       c.Shards + 1, // +1: setup/generator/admin thread 0
		HeapWords:     c.Heap,
		MaxLogEntries: c.MaxLogEntries,
		Lockstep:      c.Lockstep,
		Recorder:      c.Recorder,
		Metrics:       c.Metrics,
	}
}

// Store is the persistent state of the service: a PTM machine whose
// heap holds one byte-string KV table, plus the bookkeeping to save
// and reopen the simulated NVM's media image across process restarts.
type Store struct {
	cfg StoreConfig
	tm  *core.TM
	kv  kvstore.KV

	// gen is the image generation this store's media extends; SaveImage
	// stamps gen+1 into the file and bumps it on success. The write-
	// ahead journal is bound to a generation so a stale journal can
	// never be replayed over the wrong base image.
	gen     uint64
	wal     *journal
	walPath string

	// Recovered reports whether this store was reopened from an image
	// (true) or freshly formatted (false); Recovery holds the
	// post-crash recovery report in the former case. WALBatches counts
	// journal batches replayed on top of the image during open.
	Recovered  bool
	Recovery   core.RecoveryReport
	WALBatches int

	// flushLat records the host-time cost of each journal flush; the
	// telemetry endpoint exposes it as the journal-flush summary.
	flushMu  sync.Mutex
	flushLat stats.Histogram
}

// Open formats a fresh store: a new machine, an empty KV table
// published in the heap root.
func Open(cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	tm, err := core.New(cfg.coreConfig())
	if err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg, tm: tm}
	th := tm.Thread(0)
	th.Atomic(func(tx *core.Tx) {
		st.kv = kvstore.CreateKV(tx, cfg.Buckets)
	})
	tm.SetRoot(th, kvRootSlot, st.kv.Table())
	th.Detach()
	return st, nil
}

// TM exposes the machine.
func (st *Store) TM() *core.TM { return st.tm }

// KV exposes the persistent table.
func (st *Store) KV() kvstore.KV { return st.kv }

// Config returns the store's configuration (after defaulting).
func (st *Store) Config() StoreConfig { return st.cfg }

// Crash simulates a power failure at the machine's current virtual
// time: the durability domain's policy resolves the WPQ and caches
// into the final media image. All threads must be detached. The store
// is unusable afterwards except for SaveImage; reopen via OpenImage.
func (st *Store) Crash(vt int64) {
	st.tm.Crash(vt)
}

// The image file is: magic, a JSON header with the store geometry
// (so a restart needs no flag agreement), then the raw NVM media
// image, one little-endian uint64 per word. Version 2 added the body
// checksum and the generation; version-1 images are rejected as
// corrupt rather than loaded without verification.
var imageMagic = [8]byte{'P', 'T', 'M', 'K', 'V', 'I', 'M', '2'}

// ErrCorruptImage tags image files that fail structural or checksum
// validation — a torn save, a truncated copy, bit rot. OpenOrRecover
// refuses to load such a file (and refuses to silently reformat over
// it); test with errors.Is.
var ErrCorruptImage = errors.New("server: corrupt image")

// imageHeader is the persisted store geometry.
type imageHeader struct {
	Algo          int    `json:"algo"`
	Domain        int    `json:"domain"`
	Shards        int    `json:"shards"`
	Heap          uint64 `json:"heap_words"`
	Buckets       int    `json:"buckets"`
	MaxLogEntries int    `json:"max_log_entries"`
	MaxValueBytes int    `json:"max_value_bytes"`
	MaxBatch      int    `json:"max_batch"`
	NVMWords      uint64 `json:"nvm_words"`
	// Generation counts image saves; the write-ahead journal names the
	// generation it extends.
	Generation uint64 `json:"generation"`
	// BodyFNV is the FNV-1a checksum of the raw media bytes that
	// follow the header, so a torn or bit-rotted body is detected
	// before recovery runs over garbage.
	BodyFNV uint64 `json:"body_fnv"`
}

// SaveImage writes the NVM media image and the store geometry to
// path. Call it only on a quiescent machine whose media image is
// final — after Crash (power-failure semantics; recovery will run on
// reopen) or after Quiesce on the bus (clean shutdown).
func (st *Store) SaveImage(path string) error {
	dev := st.tm.Bus().Device()
	nvm := dev.NVMWords()
	// First pass: checksum the media body (the header carries it, and
	// the header is written first).
	var scratch [8]byte
	sum := uint64(fnvOffset64)
	for a := memdev.Addr(0); a < memdev.Addr(nvm); a++ {
		binary.LittleEndian.PutUint64(scratch[:], dev.MediaLoad(a))
		sum = fnv64(sum, scratch[:])
	}
	hdr, err := json.Marshal(imageHeader{
		Algo:          int(st.cfg.Algo),
		Domain:        int(st.cfg.Domain),
		Shards:        st.cfg.Shards,
		Heap:          st.cfg.Heap,
		Buckets:       st.cfg.Buckets,
		MaxLogEntries: st.cfg.MaxLogEntries,
		MaxValueBytes: st.cfg.MaxValueBytes,
		MaxBatch:      st.cfg.MaxBatch,
		NVMWords:      nvm,
		Generation:    st.gen + 1,
		BodyFNV:       sum,
	})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	w.Write(imageMagic[:])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(hdr)))
	w.Write(scratch[:4])
	w.Write(hdr)
	for a := memdev.Addr(0); a < memdev.Addr(nvm); a++ {
		binary.LittleEndian.PutUint64(scratch[:], dev.MediaLoad(a))
		w.Write(scratch[:])
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	// Flush file contents to stable storage before the rename: renaming
	// a still-dirty file can expose a new name pointing at unwritten
	// blocks after a power loss.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// The rename makes image replacement atomic: a crash mid-save
	// leaves the previous image intact.
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// The rename itself is a directory-entry update, and on a real
	// filesystem it is not durable until the *directory* is synced: a
	// crash in the window after rename() returns but before the
	// directory's metadata reaches the journal can roll the entry back
	// to the old image — or, for a first save, to no image at all.
	// POSIX guarantees nothing here without an explicit fsync of the
	// directory fd.
	if dir, derr := os.Open(filepath.Dir(path)); derr == nil {
		if serr := dir.Sync(); serr != nil {
			dir.Close()
			return serr
		}
		dir.Close()
	}
	st.gen++
	return nil
}

// OpenImage rebuilds a store from an image file: a fresh memory
// system with the saved media bytes installed, then core.Reopen runs
// crash recovery (redo replay / undo rollback / allocator GC) before
// the KV root is re-attached.
func OpenImage(path string) (*Store, error) {
	return openImage(path, "")
}

// openImage is OpenImage plus optional write-ahead-journal replay:
// with a non-empty walPath, valid journal batches bound to the image's
// generation are applied on top of the media bytes before recovery
// runs — the restart path after a host process kill.
func openImage(path, walPath string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 12 || [8]byte(data[:8]) != imageMagic {
		return nil, fmt.Errorf("%w: %s is not a ptmserve v2 image", ErrCorruptImage, path)
	}
	hlen := int(binary.LittleEndian.Uint32(data[8:12]))
	if hlen < 0 || len(data) < 12+hlen {
		return nil, fmt.Errorf("%w: truncated header in %s", ErrCorruptImage, path)
	}
	var hdr imageHeader
	if err := json.Unmarshal(data[12:12+hlen], &hdr); err != nil {
		return nil, fmt.Errorf("%w: bad header in %s: %v", ErrCorruptImage, path, err)
	}
	cfg := StoreConfig{
		Algo:          core.Algo(hdr.Algo),
		Domain:        durability.Domain(hdr.Domain),
		Shards:        hdr.Shards,
		Heap:          hdr.Heap,
		Buckets:       hdr.Buckets,
		MaxLogEntries: hdr.MaxLogEntries,
		MaxValueBytes: hdr.MaxValueBytes,
		MaxBatch:      hdr.MaxBatch,
	}.withDefaults()
	body := data[12+hlen:]
	if uint64(len(body)) != hdr.NVMWords*8 {
		return nil, fmt.Errorf("%w: body is %d bytes, want %d", ErrCorruptImage, len(body), hdr.NVMWords*8)
	}
	if sum := fnv64(fnvOffset64, body); sum != hdr.BodyFNV {
		return nil, fmt.Errorf("%w: body checksum %#x, header says %#x", ErrCorruptImage, sum, hdr.BodyFNV)
	}

	ccfg := cfg.coreConfig()
	bus, err := core.NewBus(ccfg)
	if err != nil {
		return nil, err
	}
	dev := bus.Device()
	if dev.NVMWords() != hdr.NVMWords {
		return nil, fmt.Errorf("%w: NVM geometry %d words does not match config-derived %d", ErrCorruptImage, hdr.NVMWords, dev.NVMWords())
	}
	var payload [memdev.WordsPerLine]uint64
	for ln := uint64(0); ln < hdr.NVMWords/memdev.WordsPerLine; ln++ {
		base := ln * memdev.WordsPerLine * 8
		for w := range payload {
			payload[w] = binary.LittleEndian.Uint64(body[base+uint64(w)*8:])
		}
		dev.MediaWriteLine(ln, payload)
	}
	walBatches := 0
	if walPath != "" {
		walBatches, err = replayJournal(walPath, hdr.Generation, func(ln uint64, payload [memdev.WordsPerLine]uint64) {
			dev.MediaWriteLine(ln, payload)
		})
		if err != nil {
			return nil, err
		}
	}

	tm, rep, err := core.Reopen(bus, ccfg)
	if err != nil {
		return nil, fmt.Errorf("server: recovery failed: %w", err)
	}
	st := &Store{cfg: cfg, tm: tm, gen: hdr.Generation, Recovered: true, Recovery: rep, WALBatches: walBatches}
	th := tm.Thread(0)
	root := tm.Root(th, kvRootSlot)
	th.Detach()
	if root == 0 {
		return nil, fmt.Errorf("server: image has no KV root")
	}
	st.kv = kvstore.OpenKV(root)
	return st, nil
}

// OpenOrRecover opens path if it exists, else formats a fresh store
// with cfg — the single entry point ptmserve uses at startup. A file
// that exists but fails validation is an error, never silently
// reformatted (errors.Is(err, ErrCorruptImage) distinguishes it).
func OpenOrRecover(path string, cfg StoreConfig) (*Store, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			return OpenImage(path)
		}
	}
	return Open(cfg)
}

// WALPath names the write-ahead journal that extends the image at
// path.
func WALPath(path string) string { return path + ".wal" }

// OpenDurable opens the store whose acknowledged writes survive a kill
// of the *host process*, not just a simulated power failure: the image
// (plus any journal bound to its generation) is loaded if present,
// else a fresh store is formatted and a base image saved immediately
// — a journal needs a base to extend. The media write-ahead journal is
// then attached; pair with ExecConfig.DurableAck so every response is
// backed by journaled media before it is sent.
func OpenDurable(path string, cfg StoreConfig) (*Store, error) {
	if path == "" {
		return nil, fmt.Errorf("server: a durable store needs an image path")
	}
	var st *Store
	if _, err := os.Stat(path); err == nil {
		st, err = openImage(path, WALPath(path))
		if err != nil {
			return nil, err
		}
	} else {
		st, err = Open(cfg)
		if err != nil {
			return nil, err
		}
		// Quiesce materializes the formatting transaction's pending WPQ
		// entries so the base image is complete (equivalent to the media
		// state an ADR crash would leave, without killing the machine).
		st.Bus().Quiesce()
		if err := st.SaveImage(path); err != nil {
			return nil, err
		}
	}
	if err := st.StartJournal(WALPath(path)); err != nil {
		return nil, err
	}
	return st, nil
}

// StartJournal attaches a media write-ahead journal at path (creating
// it, or truncating a torn tail if it already extends this store's
// generation) and wires it to the device's media observer. Call before
// serving traffic.
func (st *Store) StartJournal(path string) error {
	j, err := openJournal(path, st.gen)
	if err != nil {
		return err
	}
	st.wal, st.walPath = j, path
	st.tm.Bus().Device().SetMediaObserver(j.record)
	return nil
}

// FinishJournal detaches, closes, and removes the journal. Call only
// after a successful SaveImage: the save bumped the generation, so
// even a journal file that survives a failed remove would be ignored
// as stale on the next open.
func (st *Store) FinishJournal() {
	if st.wal == nil {
		return
	}
	st.tm.Bus().Device().SetMediaObserver(nil)
	st.wal.close()
	os.Remove(st.walPath)
	st.wal = nil
}

// DrainPersist is the durable-ack barrier: force every pending WPQ
// entry onto simulated media, advance the calling shard's clock to the
// last drain completion (the honest virtual-time cost of waiting), and
// flush the journal batch to the host file. Only after this may the
// batch's responses be acknowledged — an acked write is then
// reconstructible from image + journal even if the process is killed
// the next instant.
func (st *Store) DrainPersist(th *core.Thread) error {
	st.DrainMedia(th)
	return st.FlushJournal()
}

// DrainMedia is the barrier's first half: force every pending WPQ
// entry onto simulated media and charge the calling shard the virtual
// time the drain took.
func (st *Store) DrainMedia(th *core.Thread) {
	n, maxVT := st.tm.Bus().Device().DrainAll()
	if n > 0 {
		if now := th.Now(); maxVT > now {
			th.Compute(maxVT - now)
		}
	}
}

// FlushJournal is the barrier's second half: push the journal batch to
// the host file. The flush's host-time cost lands in the journal-flush
// histogram the telemetry endpoint exposes.
func (st *Store) FlushJournal() error {
	if st.wal == nil {
		return nil
	}
	start := time.Now()
	err := st.wal.flush()
	st.flushMu.Lock()
	st.flushLat.Record(time.Since(start).Nanoseconds())
	st.flushMu.Unlock()
	return err
}

// JournalFlushStats snapshots the journal-flush latency histogram.
func (st *Store) JournalFlushStats() stats.Histogram {
	var out stats.Histogram
	st.flushMu.Lock()
	out.Merge(&st.flushLat)
	st.flushMu.Unlock()
	return out
}

// Bus exposes the memory system (tests, quiesce on clean shutdown).
func (st *Store) Bus() *membus.Bus { return st.tm.Bus() }
