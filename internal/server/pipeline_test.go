package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
)

// The pipelining tests pin the property the TCP rewrite exists for: a
// single connection that writes a burst of commands has all of them in
// flight at once (so one client can fill group-commit batches), while
// the responses still come back strictly in command order.

func pipeServer(t *testing.T, scfg StoreConfig, ecfg ExecConfig) (*Server, *Executor, net.Conn, *bufio.Reader) {
	t.Helper()
	st := testStore(t, scfg)
	exec := NewExecutor(st, ecfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(st, exec, ln)
	t.Cleanup(srv.Shutdown)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, exec, conn, bufio.NewReader(conn)
}

func expectLine(t *testing.T, r *bufio.Reader, want string) {
	t.Helper()
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading (want %q): %v", want, err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestPipelinedBurstFillsBatches writes a burst of noreply sets in one
// TCP segment: the parse-ahead reader must queue them concurrently, so
// the shard worker sees a deep queue and coalesces multi-op batches.
// The blocking-per-command frontend this replaced could never produce
// a batch bigger than one from a single connection.
func TestPipelinedBurstFillsBatches(t *testing.T) {
	_, exec, conn, r := pipeServer(t,
		StoreConfig{Shards: 1, MaxBatch: 8},
		ExecConfig{Shards: 1, DeadlineNS: -1, QueueDepth: 1024})

	var burst bytes.Buffer
	const n = 400
	for i := 0; i < n; i++ {
		fmt.Fprintf(&burst, "set key-%d 0 0 8 noreply\r\nvalue-%02d\r\n", i%32, i%100)
	}
	// A final replied get syncs the test with the burst: FIFO per shard
	// means its response proves every earlier set on the shard executed.
	burst.WriteString("get key-0\r\n")
	if _, err := conn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	expectLine(t, r, "VALUE key-0 0 8")
	expectLine(t, r, "value-84") // i=352 is the last write of key-0: 352%100
	expectLine(t, r, "END")

	es := exec.Stats()
	if es.Executed < n {
		t.Fatalf("executed %d, want >= %d", es.Executed, n)
	}
	mean := float64(es.Executed) / float64(es.BatchSizes.Count())
	if mean < 1.5 {
		t.Fatalf("mean batch %.2f over %d batches: pipelined burst did not coalesce", mean, es.BatchSizes.Count())
	}
	t.Logf("burst of %d pipelined sets: %d batches, mean %.2f", n, es.BatchSizes.Count(), mean)
}

// TestPipelineFIFO interleaves commands with distinguishable replies
// in one write and requires the responses byte-for-byte in command
// order.
func TestPipelineFIFO(t *testing.T) {
	_, _, conn, r := pipeServer(t,
		StoreConfig{Shards: 2},
		ExecConfig{DeadlineNS: -1})

	var burst bytes.Buffer
	burst.WriteString("set a 0 0 1\r\nA\r\n")
	burst.WriteString("set n 0 0 1\r\n7\r\n")
	burst.WriteString("get a\r\n")
	burst.WriteString("incr n 1\r\n")
	burst.WriteString("get missing\r\n")
	burst.WriteString("incr n 10\r\n")
	burst.WriteString("delete a\r\n")
	burst.WriteString("get a\r\n")
	if _, err := conn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"STORED", "STORED",
		"VALUE a 0 1", "A", "END",
		"8",
		"END",
		"18",
		"DELETED",
		"END",
	} {
		expectLine(t, r, want)
	}
}

// TestPipelineMultiGetOrder spreads keys across shards and requires a
// multi-key get to return values in request order — the executor
// serves them concurrently, the writer reassembles the order.
func TestPipelineMultiGetOrder(t *testing.T) {
	_, exec, conn, r := pipeServer(t,
		StoreConfig{Shards: 4},
		ExecConfig{Shards: 4, DeadlineNS: -1})

	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	var burst bytes.Buffer
	for i, k := range keys {
		fmt.Fprintf(&burst, "set %s 0 0 2 noreply\r\nv%d\r\n", k, i)
	}
	// Sanity: the keys really do land on more than one shard, or this
	// test is not exercising the cross-shard gather.
	shards := map[int]bool{}
	for _, k := range keys {
		shards[exec.ShardOf([]byte(k))] = true
	}
	if len(shards) < 2 {
		t.Fatalf("test keys all hash to one shard; pick different keys")
	}
	fmt.Fprintf(&burst, "get %s missing %s\r\n", strings.Join(keys[:3], " "), strings.Join(keys[3:], " "))
	if _, err := conn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		expectLine(t, r, fmt.Sprintf("VALUE %s 0 2", k))
		expectLine(t, r, fmt.Sprintf("v%d", i))
		_ = i
	}
	expectLine(t, r, "END")
}

// TestPipelineMalformedMidStream pipelines a garbage command between
// valid ones: the bad command answers ERROR in order and the stream
// stays parseable for everything queued behind it.
func TestPipelineMalformedMidStream(t *testing.T) {
	_, _, conn, r := pipeServer(t,
		StoreConfig{Shards: 2},
		ExecConfig{DeadlineNS: -1})

	var burst bytes.Buffer
	burst.WriteString("set k 0 0 2\r\nok\r\n")
	burst.WriteString("frobnicate the server\r\n")
	burst.WriteString("incr k zzz\r\n") // parses as incr, bad delta
	burst.WriteString("get k\r\n")
	burst.WriteString("quit\r\n")
	if _, err := conn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"STORED",
		"ERROR",
		"CLIENT_ERROR invalid numeric delta argument",
		"VALUE k 0 2", "ok", "END",
	} {
		expectLine(t, r, want)
	}
	// quit: the server closes after flushing everything before it.
	if _, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("after quit: err = %v, want EOF", err)
	}
}

// TestPopTimeShedding pins the satellite: an expired request is shed
// when popped — before it consumes a batch slot — and lands in the
// per-shard shed count, not in the latency histogram.
func TestPopTimeShedding(t *testing.T) {
	st := testStore(t, StoreConfig{Shards: 1})
	exec := NewExecutor(st, ExecConfig{Shards: 1, DeadlineNS: 1000})
	// Warm the shard clock past the deadline with a real request.
	submit(t, exec, &Request{Op: OpSet, Key: []byte("warm"), Value: []byte("x")})
	for exec.ShardVT(0) <= 2000 {
		submit(t, exec, &Request{Op: OpSet, Key: []byte("warm"), Value: []byte("x")})
	}
	// The warm requests themselves may age out under the tight
	// deadline; only the delta from here on is the assertion.
	preShed := exec.ShardShed(0)
	// EnqVT=1 is ancient relative to the shard clock: must shed.
	stale := &Request{Op: OpGet, Key: []byte("warm"), EnqVT: 1, Done: make(chan struct{})}
	if !exec.Submit(stale) {
		t.Fatal("submit rejected")
	}
	<-stale.Done
	if !stale.Shed {
		t.Fatal("stale request executed; want pop-time shed")
	}
	exec.Drain()
	es := exec.Stats()
	if got := exec.ShardShed(0) - preShed; got != 1 {
		t.Fatalf("shard shed delta = %d, want 1", got)
	}
	if es.Shed != exec.ShardShed(0) {
		t.Fatalf("stats shed = %d, shard shed = %d: roll-up disagrees", es.Shed, exec.ShardShed(0))
	}
	if es.Latency.Count() != es.Executed {
		t.Fatalf("latency count %d != executed %d: shed request polluted the histogram",
			es.Latency.Count(), es.Executed)
	}
}

// TestWarmupExcludedFromLatency pins the Warmup flag: the request
// executes and counts, but stays out of the percentiles.
func TestWarmupExcludedFromLatency(t *testing.T) {
	st := testStore(t, StoreConfig{Shards: 1})
	exec := NewExecutor(st, ExecConfig{Shards: 1, DeadlineNS: -1})
	submit(t, exec, &Request{Op: OpSet, Key: []byte("w"), Value: []byte("x"), Warmup: true})
	submit(t, exec, &Request{Op: OpGet, Key: []byte("w")})
	exec.Drain()
	es := exec.Stats()
	if es.Executed != 2 || es.Latency.Count() != 1 {
		t.Fatalf("executed %d latency-count %d, want 2 and 1", es.Executed, es.Latency.Count())
	}
}
