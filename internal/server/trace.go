package server

import (
	"sync/atomic"
	"time"

	"goptm/internal/obs"
)

// reqTracer makes the request-lifecycle sampling decision and owns
// the clock the lifecycle stamps run on: virtual nanoseconds under
// loadsim/lockstep, host nanoseconds since the tracer's epoch for the
// real TCP server (so wall-time traces still start near zero and load
// into ui.perfetto.dev without µs-precision loss).
//
// A nil tracer is the disabled configuration: every Submit/pop/batch
// site costs exactly one nil check on the Request's Trace pointer, so
// the op path stays allocation-free and the virtual timeline — and
// with it every golden-pinned loadsim hash — is untouched.
type reqTracer struct {
	rec   *obs.Recorder
	every uint64
	seed  uint64
	wall  bool
	epoch int64 // wall mode: UnixNano of tracer creation
	n     atomic.Uint64
}

// newReqTracer returns nil unless rec retains trace events and sample
// is positive (sample = N keeps ~1 in N requests).
func newReqTracer(rec *obs.Recorder, sample int, seed uint64, wall bool) *reqTracer {
	if !rec.Tracing() || sample <= 0 {
		return nil
	}
	t := &reqTracer{rec: rec, every: uint64(sample), seed: seed, wall: wall}
	if wall {
		t.epoch = time.Now().UnixNano()
	}
	return t
}

// splitmix64 is the sampler's mixing function — the same generator
// the soak harness seeds with, chosen here because one multiply-xor
// chain turns (seed, arrival index) into an unbiased keep/drop coin.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// now is the tracer's clock: vt as given, or host ns since the epoch.
func (t *reqTracer) now(vt int64) int64 {
	if t.wall {
		return time.Now().UnixNano() - t.epoch
	}
	return vt
}

// start decides whether the next arriving request is sampled. The
// decision hashes the arrival index with the seed, so a fixed (seed,
// sample) picks the same arrivals on every run of a deterministic
// workload — and the parse boundary TS[0] is stamped at vt (or wall
// now). Nil-safe: a nil tracer samples nothing.
func (t *reqTracer) start(vt int64) *obs.ReqRecord {
	if t == nil {
		return nil
	}
	id := t.n.Add(1) - 1
	if t.every > 1 && splitmix64(t.seed^id)%t.every != 0 {
		return nil
	}
	rec := &obs.ReqRecord{ID: id}
	rec.TS[0] = t.now(vt)
	return rec
}

// finish hands a completed record to the recorder.
func (t *reqTracer) finish(rec *obs.ReqRecord) {
	if t == nil || rec == nil {
		return
	}
	t.rec.Request(*rec)
}
