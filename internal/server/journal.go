package server

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"goptm/internal/memdev"
)

// The media write-ahead journal closes the gap between the simulated
// and the host failure model. Inside the simulation, an acked write is
// durable once its commit marker sits in the WPQ (ADR) — but the whole
// simulated NVM lives in this process's address space, and the image
// file is only rewritten on clean shutdown. A SIGKILL of the host
// process would therefore lose every write acked since the last image
// save, even though the *simulated* machine never failed. The journal
// fixes that: every line payload that reaches simulated media is also
// appended to a host file, and the executor's durable-ack barrier
// (Store.DrainPersist) forces pending WPQ entries onto media — and the
// journal onto the file — before a response is acknowledged. Recovery
// is then image + journal replay.
//
// Records are framed in batches, one per barrier flush:
//
//	file   := header batch*
//	header := magic[8] generation[8]
//	batch  := count[8] fnv64[8] record[count]
//	record := line[8] payload[64]
//
// All integers little-endian. The checksum covers the generation, the
// count, and the record bytes. Replay applies only complete, valid
// batches and stops at the first torn or corrupt one — a process kill
// mid-append drops the whole (unacknowledged) trailing batch
// atomically, so within-batch write ordering never matters.
//
// The journal is bound to the image it extends by generation:
// SaveImage stamps the image with generation+1 and deletes the
// journal, so a stale journal left behind by a kill between those two
// steps is recognized and discarded on the next open.
//
// Appends are deliberately not fsynced: the host failure this guards
// against is process death (the soak harness's SIGKILL), which leaves
// the page cache intact. Host power loss is the *simulated* failure
// domain, covered by the Crash/SaveImage path.

var walMagic = [8]byte{'P', 'T', 'M', 'K', 'V', 'W', 'L', '1'}

const (
	walHeaderSize   = 16
	walRecordSize   = 8 + memdev.WordsPerLine*8
	walBatchHdrSize = 16
)

const fnvOffset64 = 14695981039346656037

func fnv64(h uint64, b []byte) uint64 {
	const prime = 1099511628211
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// journal is an open WAL positioned for appending.
type journal struct {
	mu  sync.Mutex
	f   *os.File
	gen uint64
	buf []byte // records accumulated since the last flush
	n   uint64 // record count in buf
	err error  // first write error; subsequent flushes keep failing
}

// walScan walks the batches of a WAL byte image and returns the length
// of the valid prefix (including the header) and the batch frames in
// it. A missing or mismatched header yields prefix 0.
func walScan(data []byte, gen uint64) (prefix int, batches [][]byte) {
	if len(data) < walHeaderSize || [8]byte(data[:8]) != walMagic {
		return 0, nil
	}
	if binary.LittleEndian.Uint64(data[8:16]) != gen {
		return 0, nil
	}
	off := walHeaderSize
	for {
		if len(data)-off < walBatchHdrSize {
			return off, batches
		}
		n := binary.LittleEndian.Uint64(data[off : off+8])
		want := binary.LittleEndian.Uint64(data[off+8 : off+16])
		size := int(n) * walRecordSize
		if n == 0 || n > uint64(len(data)) || len(data)-off-walBatchHdrSize < size {
			return off, batches
		}
		body := data[off+walBatchHdrSize : off+walBatchHdrSize+size]
		var scratch [16]byte
		binary.LittleEndian.PutUint64(scratch[:8], gen)
		binary.LittleEndian.PutUint64(scratch[8:], n)
		if fnv64(fnv64(fnvOffset64, scratch[:]), body) != want {
			return off, batches
		}
		batches = append(batches, body)
		off += walBatchHdrSize + size
	}
}

// openJournal opens (or creates) the WAL at path for generation gen,
// truncating any torn tail — or the whole file, if it extends a
// different generation — and positioning at the end of the valid
// prefix.
func openJournal(path string, gen uint64) (*journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	prefix, _ := walScan(data, gen)
	if prefix == 0 {
		// Fresh file, or a stale journal from another generation.
		var hdr [walHeaderSize]byte
		copy(hdr[:8], walMagic[:])
		binary.LittleEndian.PutUint64(hdr[8:], gen)
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		prefix = walHeaderSize
	} else if err := f.Truncate(int64(prefix)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(prefix), 0); err != nil {
		f.Close()
		return nil, err
	}
	return &journal{f: f, gen: gen}, nil
}

// replayJournal applies every record of every valid batch in the WAL
// at path, in file order, provided the file extends generation gen. A
// missing file or a stale generation replays nothing; a torn tail is
// silently dropped (that is the crash semantic, not an error).
func replayJournal(path string, gen uint64, apply func(ln uint64, payload [memdev.WordsPerLine]uint64)) (batches int, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	_, frames := walScan(data, gen)
	var payload [memdev.WordsPerLine]uint64
	for _, body := range frames {
		for off := 0; off < len(body); off += walRecordSize {
			ln := binary.LittleEndian.Uint64(body[off : off+8])
			for w := range payload {
				payload[w] = binary.LittleEndian.Uint64(body[off+8+w*8:])
			}
			apply(ln, payload)
		}
	}
	return len(frames), nil
}

// record buffers one media line write. Called from the device's media
// observer, under the device's serialization.
func (j *journal) record(ln uint64, payload [memdev.WordsPerLine]uint64) {
	var rec [walRecordSize]byte
	binary.LittleEndian.PutUint64(rec[:8], ln)
	for w, v := range payload {
		binary.LittleEndian.PutUint64(rec[8+w*8:], v)
	}
	j.mu.Lock()
	j.buf = append(j.buf, rec[:]...)
	j.n++
	j.mu.Unlock()
}

// flush appends the buffered records as one framed batch. A kill
// mid-append leaves a torn tail that replay drops whole.
func (j *journal) flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.n == 0 {
		return nil
	}
	frame := make([]byte, walBatchHdrSize+len(j.buf))
	binary.LittleEndian.PutUint64(frame[:8], j.n)
	var scratch [16]byte
	binary.LittleEndian.PutUint64(scratch[:8], j.gen)
	binary.LittleEndian.PutUint64(scratch[8:], j.n)
	binary.LittleEndian.PutUint64(frame[8:16], fnv64(fnv64(fnvOffset64, scratch[:]), j.buf))
	copy(frame[walBatchHdrSize:], j.buf)
	if _, err := j.f.Write(frame); err != nil {
		j.err = fmt.Errorf("server: journal append: %w", err)
		return j.err
	}
	j.buf = j.buf[:0]
	j.n = 0
	return nil
}

// close closes the file; buffered unflushed records are dropped (they
// back no acknowledged response).
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
