package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"goptm/internal/metrics"
	"goptm/internal/stats"
)

// The telemetry plane is an opt-in localhost HTTP listener that makes
// a running ptmserve observable without stopping it: the machine's
// counter registry plus the serving layer's live gauges and latency
// summaries, in two formats from one snapshot path —
//
//   GET /metrics  — Prometheus text exposition (scrapable);
//   GET /snapshot — the same state as one JSON document;
//   GET /healthz  — liveness.
//
// It is deliberately not a management surface: read-only, loopback
// only, off by default. StartTelemetry refuses any non-loopback bind
// address so a stray flag can never expose counters to the network.

// Telemetry is a running telemetry listener.
type Telemetry struct {
	srv  *http.Server
	ln   net.Listener
	wg   sync.WaitGroup
	addr string
}

// TelemetrySnapshot is the /snapshot document.
type TelemetrySnapshot struct {
	WallNS     int64            `json:"wall_ns"`
	Counters   map[string]int64 `json:"counters"`
	QueueDepth int64            `json:"queue_depth"`
	Shards     []ShardSnapshot  `json:"shards"`

	Latency      *stats.Histogram `json:"latency_ns"`
	BatchSizes   *stats.Histogram `json:"batch_sizes"`
	AckBarrier   *stats.Histogram `json:"ack_barrier_ns"`
	JournalFlush *stats.Histogram `json:"journal_flush_ns"`

	FlightSeq uint64 `json:"flight_seq"` // 0 when no flight recorder
}

// ShardSnapshot is one shard's live operating point.
type ShardSnapshot struct {
	Shard      int   `json:"shard"`
	QueueDepth int   `json:"queue_depth"`
	Shed       int64 `json:"shed"`
	BatchCap   int   `json:"batch_cap"`
	WindowNS   int64 `json:"window_ns"`
	CtrlSteps  int64 `json:"ctrl_steps"` // 0 when static
}

// snapshot assembles the document all endpoints serve from.
func telemetrySnapshot(st *Store, exec *Executor, flight *FlightRecorder) TelemetrySnapshot {
	es := exec.Stats()
	flush := st.JournalFlushStats()
	snap := TelemetrySnapshot{
		WallNS:       time.Now().UnixNano(),
		Counters:     map[string]int64{},
		QueueDepth:   exec.QueueDepth(),
		Latency:      &es.Latency,
		BatchSizes:   &es.BatchSizes,
		AckBarrier:   &es.AckBarrier,
		JournalFlush: &flush,
		FlightSeq:    flight.Seq(),
	}
	met := st.tm.Metrics()
	for c := metrics.Counter(0); c < metrics.NumCounters; c++ {
		snap.Counters[c.String()] = met.Get(c)
	}
	for i := 0; i < exec.NumShards(); i++ {
		cap, win := exec.ShardParams(i)
		var steps int64
		if _, _, s, ok := exec.ShardCtrl(i); ok {
			steps = s
		}
		snap.Shards = append(snap.Shards, ShardSnapshot{
			Shard:      i,
			QueueDepth: exec.ShardQueueDepth(i),
			Shed:       exec.ShardShed(i),
			BatchCap:   cap,
			WindowNS:   win,
			CtrlSteps:  steps,
		})
	}
	return snap
}

// writeProm renders the snapshot in the Prometheus text exposition
// format, metric families in sorted name order (the CI smoke parses
// every line).
func writeProm(w *strings.Builder, snap TelemetrySnapshot) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := "goptm_" + name + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", fam, fam, snap.Counters[name])
	}
	fmt.Fprintf(w, "# TYPE goptm_srv_queue_depth gauge\ngoptm_srv_queue_depth %d\n", snap.QueueDepth)
	promShardGauge(w, "goptm_srv_shard_batch_cap", snap.Shards, func(s ShardSnapshot) int64 { return int64(s.BatchCap) })
	promShardGauge(w, "goptm_srv_shard_ctrl_steps", snap.Shards, func(s ShardSnapshot) int64 { return s.CtrlSteps })
	promShardGauge(w, "goptm_srv_shard_queue_depth", snap.Shards, func(s ShardSnapshot) int64 { return int64(s.QueueDepth) })
	promShardGauge(w, "goptm_srv_shard_shed", snap.Shards, func(s ShardSnapshot) int64 { return s.Shed })
	promShardGauge(w, "goptm_srv_shard_window_ns", snap.Shards, func(s ShardSnapshot) int64 { return s.WindowNS })
	promSummary(w, "goptm_srv_ack_barrier_ns", snap.AckBarrier)
	promSummary(w, "goptm_srv_batch_size", snap.BatchSizes)
	promSummary(w, "goptm_srv_journal_flush_ns", snap.JournalFlush)
	promSummary(w, "goptm_srv_request_latency_ns", snap.Latency)
}

func promShardGauge(w *strings.Builder, fam string, shards []ShardSnapshot, get func(ShardSnapshot) int64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
	for _, s := range shards {
		fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", fam, s.Shard, get(s))
	}
}

var promQuantiles = []struct {
	label string
	p     float64
}{{"0.5", 50}, {"0.9", 90}, {"0.99", 99}, {"0.999", 99.9}}

func promSummary(w *strings.Builder, fam string, h *stats.Histogram) {
	fmt.Fprintf(w, "# TYPE %s summary\n", fam)
	for _, q := range promQuantiles {
		fmt.Fprintf(w, "%s{quantile=\"%s\"} %d\n", fam, q.label, h.Percentile(q.p))
	}
	fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", fam, h.Sum(), fam, h.Count())
}

// StartTelemetry binds the telemetry listener at addr (host defaults
// to 127.0.0.1; the host must resolve to a loopback address) and
// serves until Close.
func StartTelemetry(addr string, st *Store, exec *Executor, flight *FlightRecorder) (*Telemetry, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: bad address %q: %w", addr, err)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	if !isLoopbackHost(host) {
		return nil, fmt.Errorf("telemetry: refusing non-loopback bind %q (the endpoint is localhost-only)", addr)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
	if err != nil {
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder
		writeProm(&b, telemetrySnapshot(st, exec, flight))
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(telemetrySnapshot(st, exec, flight))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})

	t := &Telemetry{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		addr: ln.Addr().String(),
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.srv.Serve(ln)
	}()
	return t, nil
}

// isLoopbackHost accepts "localhost" and literal loopback IPs.
func isLoopbackHost(host string) bool {
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// Addr reports the bound address (useful with port 0).
func (t *Telemetry) Addr() string {
	if t == nil {
		return ""
	}
	return t.addr
}

// Close shuts the listener down and waits for the serve goroutine —
// the SIGTERM path runs it after the final flight-recorder dump, and
// the shutdown test asserts no goroutine survives it.
func (t *Telemetry) Close() {
	if t == nil {
		return
	}
	t.srv.Close()
	t.wg.Wait()
}
