package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"
)

// httpGet fetches one path over a raw HTTP/1.0 connection (no chunked
// framing, no keep-alive goroutines left behind) and returns the body.
func httpGet(t *testing.T, addr, path string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET %s HTTP/1.0\r\nHost: telemetry\r\n\r\n", path)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("GET %s: %s", path, strings.TrimSpace(status))
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
	}
	body, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// promLine matches the two legal exposition shapes: a metric sample
// (name, optional {labels}, value) or a # TYPE comment.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

func startTelemetryStore(t *testing.T) (*Store, *Executor, *Telemetry) {
	t.Helper()
	st := testStore(t, StoreConfig{Shards: 2})
	exec := NewExecutor(st, ExecConfig{DeadlineNS: -1, IdleSleep: 50 * time.Microsecond})
	tel, err := StartTelemetry("127.0.0.1:0", st, exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tel.Close(); exec.Drain() })
	return st, exec, tel
}

// TestTelemetryMetrics validates the Prometheus text endpoint: every
// line parses, and the counter, gauge, and summary families the CI
// smoke greps for are all present.
func TestTelemetryMetrics(t *testing.T) {
	_, exec, tel := startTelemetryStore(t)
	for i := 0; i < 10; i++ {
		submit(t, exec, &Request{Op: OpSet, Key: fmt.Appendf(nil, "k%d", i), Value: []byte("v")})
	}

	body := httpGet(t, tel.Addr(), "/metrics")
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparsable exposition line: %q", line)
		}
		seen[m[1]+m[2]] = true
	}
	for _, want := range []string{
		"goptm_commits_total",
		"goptm_srv_requests_total",
		"goptm_srv_ctrl_steps_total",
		"goptm_srv_queue_depth",
		`goptm_srv_shard_queue_depth{shard="0"}`,
		`goptm_srv_shard_queue_depth{shard="1"}`,
		`goptm_srv_shard_shed{shard="0"}`,
		`goptm_srv_shard_batch_cap{shard="1"}`,
		`goptm_srv_shard_window_ns{shard="0"}`,
		`goptm_srv_request_latency_ns{quantile="0.5"}`,
		`goptm_srv_request_latency_ns{quantile="0.999"}`,
		"goptm_srv_request_latency_ns_sum",
		"goptm_srv_request_latency_ns_count",
		`goptm_srv_batch_size{quantile="0.9"}`,
		`goptm_srv_journal_flush_ns{quantile="0.99"}`,
		`goptm_srv_ack_barrier_ns{quantile="0.5"}`,
	} {
		if !seen[want] {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestTelemetrySnapshot validates the JSON document: full counter set,
// per-shard operating points, histogram payloads.
func TestTelemetrySnapshot(t *testing.T) {
	_, exec, tel := startTelemetryStore(t)
	for i := 0; i < 10; i++ {
		submit(t, exec, &Request{Op: OpSet, Key: fmt.Appendf(nil, "k%d", i), Value: []byte("v")})
	}

	var snap TelemetrySnapshot
	if err := json.Unmarshal([]byte(httpGet(t, tel.Addr(), "/snapshot")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.WallNS == 0 {
		t.Fatal("snapshot missing wall stamp")
	}
	if snap.Counters["srv_requests"] != 10 {
		t.Fatalf("srv_requests = %d, want 10", snap.Counters["srv_requests"])
	}
	if _, ok := snap.Counters["commits"]; !ok {
		t.Fatal("snapshot missing commits counter")
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(snap.Shards))
	}
	for i, s := range snap.Shards {
		if s.Shard != i || s.BatchCap <= 0 {
			t.Fatalf("shard %d snapshot malformed: %+v", i, s)
		}
	}
	if snap.Latency == nil || snap.Latency.Count() != 10 {
		t.Fatalf("latency histogram lost samples: %+v", snap.Latency)
	}
	if body := httpGet(t, tel.Addr(), "/healthz"); body != "ok\n" {
		t.Fatalf("healthz = %q", body)
	}
}

// TestTelemetryLoopbackOnly: non-loopback binds are refused; an empty
// host defaults to 127.0.0.1.
func TestTelemetryLoopbackOnly(t *testing.T) {
	st := testStore(t, StoreConfig{Shards: 1})
	exec := NewExecutor(st, ExecConfig{DeadlineNS: -1, IdleSleep: 50 * time.Microsecond})
	defer exec.Drain()
	for _, addr := range []string{"0.0.0.0:0", "8.8.8.8:0", "example.com:0"} {
		if tel, err := StartTelemetry(addr, st, exec, nil); err == nil {
			tel.Close()
			t.Fatalf("StartTelemetry(%q) accepted a non-loopback bind", addr)
		}
	}
	if _, err := StartTelemetry("nonsense", st, exec, nil); err == nil {
		t.Fatal("bad address accepted")
	}
	for _, addr := range []string{":0", "localhost:0", "127.0.0.1:0"} {
		tel, err := StartTelemetry(addr, st, exec, nil)
		if err != nil {
			t.Fatalf("StartTelemetry(%q): %v", addr, err)
		}
		tel.Close()
	}
}

// TestTelemetryShutdownNoLeak: Close must tear down the serve
// goroutine — the SIGTERM drain depends on it.
func TestTelemetryShutdownNoLeak(t *testing.T) {
	st := testStore(t, StoreConfig{Shards: 1})
	exec := NewExecutor(st, ExecConfig{DeadlineNS: -1, IdleSleep: 50 * time.Microsecond})
	defer exec.Drain()

	before := runtime.NumGoroutine()
	tel, err := StartTelemetry("127.0.0.1:0", st, exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	httpGet(t, tel.Addr(), "/healthz")
	tel.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := net.Dial("tcp", tel.Addr()); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}
