package server

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder answers the question the soak harness's SIGKILL
// leaves open: what was the server doing in the seconds before it
// died? A killed process can't be asked, so the recorder keeps a
// fixed-size lock-free ring of recent completed-request records plus
// a short series of counter samples, and a mirror goroutine
// periodically rewrites a JSON sidecar next to the image (tmp+rename,
// so the sidecar is never torn). After the kill, ptmsoak harvests the
// sidecar and attaches the tail to its verdict — an oracle violation
// then carries the last pre-kill window of telemetry instead of just
// a key name.
//
// The write path is a seqlock per slot: the writer bumps the slot's
// version to odd, stores the record, and publishes the version even.
// Readers (the mirror goroutine, the telemetry snapshot) copy the
// slot and keep it only if the version was even and unchanged across
// the copy. Writers never block on readers and never allocate; a nil
// *FlightRecorder disables everything at the cost of one nil check.

// FlightRecord is one completed request as the ring retains it.
type FlightRecord struct {
	Seq    uint64 `json:"seq"`     // global completion sequence number
	WallNS int64  `json:"wall_ns"` // host completion time, unix nanoseconds
	Op     uint8  `json:"op"`      // server.Op
	Shard  uint16 `json:"shard"`
	Shed   bool   `json:"shed,omitempty"` // deadline-shed, never executed
	Err    bool   `json:"err,omitempty"`  // completed with a kv or durability error
	EnqVT  int64  `json:"enq_vt"`         // virtual enqueue stamp
	DoneVT int64  `json:"done_vt"`        // virtual completion stamp
	LatNS  int64  `json:"lat_ns"`         // enqueue→completion, virtual ns
}

// FlightSample is one periodic counter observation the mirror loop
// appends: absolute counter values, so consecutive samples diff into
// the per-window deltas.
type FlightSample struct {
	WallNS     int64            `json:"wall_ns"`
	QueueDepth int64            `json:"queue_depth"`
	Counters   map[string]int64 `json:"counters"`
}

// FlightDump is the sidecar file's schema.
type FlightDump struct {
	Schema  int            `json:"schema"`
	WallNS  int64          `json:"wall_ns"` // when this dump was written
	Seq     uint64         `json:"seq"`     // records ever written
	Dropped uint64         `json:"dropped"` // overwritten by ring wrap
	Records []FlightRecord `json:"records"` // oldest→newest
	Samples []FlightSample `json:"samples"` // oldest→newest
}

// flightSchema versions the sidecar format.
const flightSchema = 1

// maxFlightSamples bounds the counter-sample series the dump carries.
const maxFlightSamples = 64

// FlightPath names the sidecar mirrored next to the image at path.
func FlightPath(imagePath string) string { return imagePath + ".flight" }

type flightSlot struct {
	ver atomic.Uint64 // seq<<1 | 1 while being written; seq<<1 once published
	rec FlightRecord
}

// FlightRecorder is the ring plus its mirror goroutine. A nil
// receiver is the disabled configuration.
type FlightRecorder struct {
	slots []flightSlot
	mask  uint64
	seq   atomic.Uint64

	mu      sync.Mutex // serializes dumps and guards samples
	path    string
	samples []FlightSample

	stop chan struct{}
	done chan struct{}
}

// NewFlightRecorder builds a ring of at least size slots (rounded up
// to a power of two; size <= 0 returns nil, the disabled recorder).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		return nil
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]flightSlot, n), mask: uint64(n - 1)}
}

// Record publishes one completed request into the ring. Lock-free,
// allocation-free, and safe from concurrent shard workers; nil-safe.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1)
	rec.Seq = seq
	rec.WallNS = time.Now().UnixNano()
	slot := &f.slots[seq&f.mask]
	slot.ver.Store(seq<<1 | 1)
	slot.rec = rec
	slot.ver.Store(seq << 1)
}

// Seq reports how many records have ever been written.
func (f *FlightRecorder) Seq() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Size reports the ring capacity.
func (f *FlightRecorder) Size() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Snapshot copies every consistently-readable record, oldest first.
// Slots caught mid-write (seqlock version odd or changed during the
// copy) are skipped — the writer always wins.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(f.slots))
	for i := range f.slots {
		slot := &f.slots[i]
		v1 := slot.ver.Load()
		if v1 == 0 || v1&1 == 1 {
			continue
		}
		rec := slot.rec
		if slot.ver.Load() != v1 {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// AddSample appends one counter observation, keeping the last
// maxFlightSamples.
func (f *FlightRecorder) AddSample(s FlightSample) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.samples = append(f.samples, s)
	if len(f.samples) > maxFlightSamples {
		f.samples = f.samples[len(f.samples)-maxFlightSamples:]
	}
	f.mu.Unlock()
}

// Dump writes the sidecar file atomically (tmp + rename). Safe to
// call at any time — on the mirror tick, on SIGTERM, from a panic
// handler; nil-safe and a no-op before StartMirror names the path.
func (f *FlightRecorder) Dump() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumpLocked()
}

func (f *FlightRecorder) dumpLocked() error {
	if f.path == "" {
		return nil
	}
	records := f.Snapshot()
	seq := f.seq.Load()
	d := FlightDump{
		Schema:  flightSchema,
		WallNS:  time.Now().UnixNano(),
		Seq:     seq,
		Dropped: seq - uint64(len(records)),
		Records: records,
		Samples: f.samples,
	}
	blob, err := json.Marshal(d)
	if err != nil {
		return err
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.path)
}

// StartMirror begins periodically mirroring the ring to the sidecar
// at path. Each tick calls sample (if non-nil) for a counter
// observation, then rewrites the sidecar. Stop ends the loop with a
// final dump.
func (f *FlightRecorder) StartMirror(path string, interval time.Duration, sample func() FlightSample) {
	if f == nil {
		return
	}
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	f.mu.Lock()
	f.path = path
	f.mu.Unlock()
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go func() {
		defer close(f.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				if sample != nil {
					f.AddSample(sample())
				}
				f.Dump()
			}
		}
	}()
}

// Stop ends the mirror goroutine and writes the final dump — the
// SIGTERM path runs this before the telemetry listener closes, so the
// sidecar always reflects the drained state.
func (f *FlightRecorder) Stop() {
	if f == nil {
		return
	}
	if f.stop != nil {
		close(f.stop)
		<-f.done
		f.stop, f.done = nil, nil
	}
	f.Dump()
}

// ReadFlightDump parses a sidecar file (the soak harvester and tests).
func ReadFlightDump(path string) (*FlightDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}
