package client

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"goptm/internal/server"
)

// fastCfg keeps retries snappy for tests.
func fastCfg(addr string) Config {
	return Config{
		Addr:           addr,
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 300 * time.Millisecond,
		MaxTries:       3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		Seed:           42,
	}
}

// startServer brings up a real Store+Executor+TCP frontend.
func startServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	st, err := server.Open(server.StoreConfig{Shards: 2, Heap: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	exec := server.NewExecutor(st, server.ExecConfig{DeadlineNS: -1, IdleSleep: 20 * time.Microsecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(st, exec, ln)
	return srv.Addr().String(), srv.Shutdown
}

func TestBasicOps(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	c := New(fastCfg(addr))
	defer c.Close()

	res, err := c.Set("alpha", []byte("hello"), 7)
	if err != nil || !res.Acked || res.Tries != 1 || res.MaybeApplied != 0 {
		t.Fatalf("set: res=%+v err=%v", res, err)
	}
	res, err = c.Get("alpha")
	if err != nil || !res.Acked || !res.Found || string(res.Value) != "hello" || res.Flags != 7 {
		t.Fatalf("get: res=%+v err=%v", res, err)
	}
	res, err = c.Get("missing")
	if err != nil || !res.Acked || res.Found {
		t.Fatalf("get miss: res=%+v err=%v", res, err)
	}
	if _, err := c.Set("ctr", []byte("10"), 0); err != nil {
		t.Fatal(err)
	}
	res, err = c.Incr("ctr", 5)
	if err != nil || !res.Acked || !res.Found || res.NewVal != 15 {
		t.Fatalf("incr: res=%+v err=%v", res, err)
	}
	res, err = c.Incr("absent", 1)
	if err != nil || !res.Acked || res.Found {
		t.Fatalf("incr absent: res=%+v err=%v", res, err)
	}
	res, err = c.Delete("alpha")
	if err != nil || !res.Acked || !res.Found {
		t.Fatalf("delete: res=%+v err=%v", res, err)
	}
	res, err = c.Delete("alpha")
	if err != nil || !res.Acked || res.Found {
		t.Fatalf("re-delete: res=%+v err=%v", res, err)
	}
}

// fakeServer runs handler once per accepted connection, in accept
// order, then keeps the listener open so further dials don't fail.
func fakeServer(t *testing.T, handlers ...func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if i < len(handlers) {
				handlers[i](conn)
			}
		}
	}()
	return ln.Addr().String()
}

// readLine consumes up to and including one LF (plus a set payload if
// the command carries one).
func readRequest(conn net.Conn) string {
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return ""
	}
	if strings.HasPrefix(line, "set ") {
		io.CopyN(io.Discard, r, int64(r.Buffered())) // payload already buffered in tests
	}
	return line
}

// TestRedialAfterDrop: the first connection dies after the request is
// sent; the client must re-dial and succeed on the second, and the
// aborted mutating attempt must be counted as maybe-applied.
func TestRedialAfterDrop(t *testing.T) {
	addr := fakeServer(t,
		func(conn net.Conn) { readRequest(conn); conn.Close() },
		func(conn net.Conn) {
			readRequest(conn)
			conn.Write([]byte("STORED\r\n"))
			conn.Close()
		},
	)
	c := New(fastCfg(addr))
	defer c.Close()
	res, err := c.Set("k", []byte("v"), 0)
	if err != nil {
		t.Fatalf("set after drop: %v", err)
	}
	if !res.Acked || res.Tries != 2 || res.MaybeApplied != 1 {
		t.Fatalf("want acked on try 2 with 1 maybe-applied, got %+v", res)
	}
}

// TestDialFailureIsDefiniteNo: when no listener answers, no bytes
// were ever sent, so the failed call must report zero maybe-applied.
func TestDialFailureIsDefiniteNo(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // dead port
	c := New(fastCfg(addr))
	defer c.Close()
	res, err := c.Set("k", []byte("v"), 0)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if res.Acked || res.MaybeApplied != 0 || res.Tries != 3 {
		t.Fatalf("dial failure must be a definite no: %+v", res)
	}
}

// TestBusyIsRetriedWithoutMaybe: SERVER_ERROR busy is the executor's
// admission reject — never enqueued, so retried without widening the
// uncertainty.
func TestBusyIsRetriedWithoutMaybe(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		r := bufio.NewReader(conn)
		r.ReadString('\n') // request line
		r.ReadString('\n') // payload
		conn.Write([]byte("SERVER_ERROR busy\r\n"))
		r.ReadString('\n')
		r.ReadString('\n')
		conn.Write([]byte("STORED\r\n"))
		conn.Close()
	})
	c := New(fastCfg(addr))
	defer c.Close()
	res, err := c.Set("k", []byte("v"), 0)
	if err != nil {
		t.Fatalf("set through busy: %v", err)
	}
	if !res.Acked || res.Tries != 2 || res.MaybeApplied != 0 {
		t.Fatalf("busy must retry without maybe-applied: %+v", res)
	}
}

// TestTimeoutCountsMaybeApplied: a server that swallows requests
// leaves every attempt in the unknown state.
func TestTimeoutCountsMaybeApplied(t *testing.T) {
	swallow := func(conn net.Conn) { io.Copy(io.Discard, conn) }
	addr := fakeServer(t, swallow, swallow, swallow)
	cfg := fastCfg(addr)
	cfg.RequestTimeout = 50 * time.Millisecond
	c := New(cfg)
	defer c.Close()
	res, err := c.Incr("ctr", 1)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if res.Acked || res.MaybeApplied != 3 || res.Tries != 3 {
		t.Fatalf("every timed-out attempt is maybe-applied: %+v", res)
	}
}

// TestClientErrorIsTerminal: an in-band parse rejection is a definite
// outcome — no retries, typed error.
func TestClientErrorIsTerminal(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		readRequest(conn)
		conn.Write([]byte("CLIENT_ERROR bad data chunk\r\n"))
		conn.Close()
	})
	c := New(fastCfg(addr))
	defer c.Close()
	res, err := c.Incr("ctr", 1)
	var ce *ClientError
	if !errors.As(err, &ce) {
		t.Fatalf("want ClientError, got %v", err)
	}
	if res.Tries != 1 || res.MaybeApplied != 0 {
		t.Fatalf("terminal rejection must not retry: %+v", res)
	}
}

// TestJitterDeterministic: the same seed yields the same jitter
// stream, so soak schedules replay exactly.
func TestJitterDeterministic(t *testing.T) {
	a, b := New(Config{Addr: "x", Seed: 9}), New(Config{Addr: "x", Seed: 9})
	for i := 0; i < 16; i++ {
		if av, bv := a.splitmix64(), b.splitmix64(); av != bv {
			t.Fatalf("jitter diverged at step %d: %d != %d", i, av, bv)
		}
	}
	c := New(Config{Addr: "x", Seed: 10})
	if a.splitmix64() == c.splitmix64() {
		t.Fatal("different seeds produced identical first step")
	}
}

// TestGetPayloadRoundTrip exercises the multi-line VALUE parse,
// including binary payloads containing CRLF.
func TestGetPayloadRoundTrip(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	c := New(fastCfg(addr))
	defer c.Close()
	val := []byte("bin\r\nary\x00data")
	if _, err := c.Set("bin", val, 3); err != nil {
		t.Fatal(err)
	}
	res, err := c.Get("bin")
	if err != nil || !res.Found || !bytes.Equal(res.Value, val) || res.Flags != 3 {
		t.Fatalf("binary round trip: res=%+v err=%v", res, err)
	}
}
