// Package client is a minimal memcached-text-protocol client built
// for crash testing: every call reports not just success or failure
// but whether the server *might* have applied the operation. That
// third state is what a durable-linearizability checker needs — when
// a connection dies after the request bytes may have left the socket,
// the write is neither confirmed nor refuted, and the oracle must
// account for both worlds until a later read pins one.
//
// Retries are bounded, exponentially backed off with deterministic
// jitter (the soak harness needs reproducible schedules from a seed),
// and honest about idempotency: a retried set is idempotent, but each
// wire attempt of an incr that ends in an unknown outcome widens the
// set of states the key can be in, so Result counts attempts whose
// effect is unknown rather than collapsing them.
package client

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"
)

// Config parameterizes a Client. Zero values select the defaults
// noted on each field.
type Config struct {
	Addr           string
	DialTimeout    time.Duration // 0: 500ms
	RequestTimeout time.Duration // per wire attempt; 0: 1s
	MaxTries       int           // wire attempts per call; 0: 3
	BackoffBase    time.Duration // 0: 10ms
	BackoffMax     time.Duration // 0: 250ms
	Seed           uint64        // jitter stream seed; 0: 1
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Second
	}
	if c.MaxTries <= 0 {
		c.MaxTries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is the outcome of one client call, with the bookkeeping a
// linearizability oracle needs.
type Result struct {
	// Acked is true when the server positively confirmed the
	// operation (STORED, DELETED/NOT_FOUND, a value, END).
	Acked bool
	// MaybeApplied counts wire attempts whose request bytes may have
	// reached the server but whose response never arrived. Each such
	// attempt may or may not have mutated state. Zero with Acked
	// false means the operation definitely did not happen.
	MaybeApplied int
	// Tries is the number of wire attempts made.
	Tries int

	// Operation results, valid when Acked.
	Found  bool   // get/delete/incr: the key existed
	Value  []byte // get
	Flags  uint32 // get
	NewVal uint64 // incr: the post-increment value
}

// ErrExhausted is returned when every wire attempt failed.
var ErrExhausted = errors.New("client: retries exhausted")

// ServerError is an in-band SERVER_ERROR reply.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "client: SERVER_ERROR " + e.Msg }

// ClientError is an in-band CLIENT_ERROR or ERROR reply. These are
// not retried: the server parsed and rejected the request, so the
// outcome is definite.
type ClientError struct{ Msg string }

func (e *ClientError) Error() string { return "client: " + e.Msg }

// Client is a single-connection retrying client. Not safe for
// concurrent use; the soak harness runs one Client per worker.
type Client struct {
	cfg  Config
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	rng  uint64
}

// New returns a client for cfg; no connection is made until the
// first call.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, rng: cfg.Seed}
}

// Close drops the connection, if any.
func (c *Client) Close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// splitmix64 steps the jitter stream.
func (c *Client) splitmix64() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff sleeps before retry attempt (1-based), exponentially
// growing and jittered to a uniform [0.5,1.0) fraction so a fleet of
// clients doesn't reconnect in lockstep after a kill.
func (c *Client) backoff(attempt int) {
	d := c.cfg.BackoffBase << uint(attempt-1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	frac := 0.5 + float64(c.splitmix64()>>11)/float64(1<<53)/2
	time.Sleep(time.Duration(float64(d) * frac))
}

// ensureConn dials if the connection is down. A dial failure is a
// definite no-op: no request bytes existed yet.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	return nil
}

// drop closes the connection so the next attempt re-dials. Required
// after any timeout: a late response left in flight would desync the
// request/response pairing on this connection.
func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// roundTrip performs one wire attempt: write req, read one line.
// sent reports whether any request bytes may have reached the
// server — the caller's maybe-applied accounting hinges on it.
func (c *Client) roundTrip(req []byte) (line []byte, sent bool, err error) {
	if err := c.ensureConn(); err != nil {
		return nil, false, err
	}
	c.conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	if _, err := c.w.Write(req); err != nil {
		c.drop()
		return nil, true, err
	}
	if err := c.w.Flush(); err != nil {
		c.drop()
		return nil, true, err
	}
	line, err = c.r.ReadBytes('\n')
	if err != nil {
		c.drop()
		return nil, true, err
	}
	return bytes.TrimRight(line, "\r\n"), true, nil
}

// classify turns an in-band reply line into a terminal error, or nil
// for lines the per-op handlers interpret.
func classify(line []byte) error {
	switch {
	case bytes.HasPrefix(line, []byte("SERVER_ERROR ")):
		return &ServerError{Msg: string(line[len("SERVER_ERROR "):])}
	case bytes.HasPrefix(line, []byte("CLIENT_ERROR ")):
		return &ClientError{Msg: string(line)}
	case bytes.Equal(line, []byte("ERROR")):
		return &ClientError{Msg: "ERROR"}
	}
	return nil
}

// retriableServerError reports whether an in-band SERVER_ERROR is a
// definite rejection that is safe to retry. "busy" is the executor's
// admission-control reject: the request was never enqueued, so the
// attempt definitely did not apply.
func retriableServerError(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Msg == "busy"
}

// do runs the retry loop. parse consumes the first response line
// (and, via c.r, any further payload) and reports whether the call
// is complete; returning an error makes the outcome definite (no
// retry). mutating controls whether an attempt that dies mid-flight
// counts toward MaybeApplied.
func (c *Client) do(req []byte, mutating bool, parse func(line []byte, res *Result) error) (Result, error) {
	var res Result
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxTries; attempt++ {
		if attempt > 1 {
			c.backoff(attempt - 1)
		}
		res.Tries = attempt
		line, sent, err := c.roundTrip(req)
		if err != nil {
			if sent && mutating {
				// The request may be executing server-side right now;
				// the outcome of this attempt is permanently unknown.
				res.MaybeApplied++
			}
			lastErr = err
			continue
		}
		if err := classify(line); err != nil {
			if retriableServerError(err) {
				lastErr = err
				continue
			}
			if mutating {
				var se *ServerError
				if errors.As(err, &se) {
					// A non-busy SERVER_ERROR (e.g. "persistence
					// failure") means the transaction may have executed
					// even though the server refused to promise
					// durability.
					res.MaybeApplied++
				}
			}
			return res, err
		}
		if err := parse(line, &res); err != nil {
			return res, err
		}
		res.Acked = true
		return res, nil
	}
	return res, fmt.Errorf("%w: %v", ErrExhausted, lastErr)
}

// Set stores value under key.
func (c *Client) Set(key string, value []byte, flags uint32) (Result, error) {
	req := fmt.Appendf(nil, "set %s %d 0 %d\r\n", key, flags, len(value))
	req = append(req, value...)
	req = append(req, '\r', '\n')
	return c.do(req, true, func(line []byte, res *Result) error {
		if !bytes.Equal(line, []byte("STORED")) {
			return fmt.Errorf("client: unexpected set reply %q", line)
		}
		return nil
	})
}

// Get fetches key. Found is false when the key is absent.
func (c *Client) Get(key string) (Result, error) {
	req := fmt.Appendf(nil, "get %s\r\n", key)
	return c.do(req, false, func(line []byte, res *Result) error {
		if bytes.Equal(line, []byte("END")) {
			return nil // miss
		}
		fields := bytes.Fields(line)
		if len(fields) != 4 || !bytes.Equal(fields[0], []byte("VALUE")) {
			return fmt.Errorf("client: unexpected get reply %q", line)
		}
		flags, err := strconv.ParseUint(string(fields[2]), 10, 32)
		if err != nil {
			return fmt.Errorf("client: bad get flags %q", line)
		}
		n, err := strconv.Atoi(string(fields[3]))
		if err != nil || n < 0 {
			return fmt.Errorf("client: bad get length %q", line)
		}
		payload := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, payload); err != nil {
			c.drop()
			return fmt.Errorf("client: truncated get payload: %w", err)
		}
		end, err := c.r.ReadBytes('\n')
		if err != nil || !bytes.Equal(bytes.TrimRight(end, "\r\n"), []byte("END")) {
			c.drop()
			return fmt.Errorf("client: missing END after value")
		}
		res.Found = true
		res.Value = payload[:n]
		res.Flags = uint32(flags)
		return nil
	})
}

// Delete removes key. Found reports whether it existed.
func (c *Client) Delete(key string) (Result, error) {
	req := fmt.Appendf(nil, "delete %s\r\n", key)
	return c.do(req, true, func(line []byte, res *Result) error {
		switch {
		case bytes.Equal(line, []byte("DELETED")):
			res.Found = true
		case bytes.Equal(line, []byte("NOT_FOUND")):
		default:
			return fmt.Errorf("client: unexpected delete reply %q", line)
		}
		return nil
	})
}

// Incr adds delta to the numeric value at key. Found reports whether
// the key existed; NewVal is the post-increment value when it did.
func (c *Client) Incr(key string, delta uint64) (Result, error) {
	req := fmt.Appendf(nil, "incr %s %d\r\n", key, delta)
	return c.do(req, true, func(line []byte, res *Result) error {
		if bytes.Equal(line, []byte("NOT_FOUND")) {
			return nil
		}
		v, err := strconv.ParseUint(string(line), 10, 64)
		if err != nil {
			return fmt.Errorf("client: unexpected incr reply %q", line)
		}
		res.Found = true
		res.NewVal = v
		return nil
	})
}
