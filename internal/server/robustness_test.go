package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"goptm/internal/core"
)

// populateDurable opens a durable store at path, writes n keys through
// a DurableAck executor (every response backed by the journal), and
// returns without saving an image — the moral equivalent of a SIGKILL:
// whatever the next open reconstructs must include every acked write.
func populateDurable(t *testing.T, path string, n int) {
	t.Helper()
	st, err := OpenDurable(path, StoreConfig{Shards: 2, Heap: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(st, ExecConfig{DeadlineNS: -1, DurableAck: true})
	for i := 0; i < n; i++ {
		r := submit(t, exec, &Request{
			Op:    OpSet,
			Key:   fmt.Appendf(nil, "wal-key-%d", i),
			Value: fmt.Appendf(nil, "wal-value-%d", i),
		})
		if r.Err != nil {
			t.Fatalf("set %d: %v", i, r.Err)
		}
	}
	// Stop the shard workers (so the test doesn't leak goroutines) but
	// deliberately skip Crash/SaveImage: the image on disk is still the
	// empty base, and durability must come from the journal alone.
	exec.Drain()
}

func TestDurableAckSurvivesProcessKill(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.img")
	const n = 50
	populateDurable(t, path, n)

	if _, err := os.Stat(WALPath(path)); err != nil {
		t.Fatalf("no journal after durable writes: %v", err)
	}
	st2, err := OpenDurable(path, StoreConfig{})
	if err != nil {
		t.Fatalf("reopen after simulated kill: %v", err)
	}
	if st2.WALBatches == 0 {
		t.Fatal("reopen replayed no journal batches")
	}
	th := st2.TM().Thread(0)
	kv := st2.KV()
	th.Atomic(func(tx *core.Tx) {
		for i := 0; i < n; i++ {
			v, _, ok := kv.Get(tx, fmt.Appendf(nil, "wal-key-%d", i))
			if !ok || !bytes.Equal(v, fmt.Appendf(nil, "wal-value-%d", i)) {
				t.Fatalf("acked wal-key-%d lost across process kill: %q, %v", i, v, ok)
			}
		}
	})
	th.Detach()

	// Clean shutdown: crash, save, finish. The journal is consumed into
	// the image and removed; what remains reopens without it.
	st2.Crash(0)
	if err := st2.SaveImage(path); err != nil {
		t.Fatal(err)
	}
	st2.FinishJournal()
	if _, err := os.Stat(WALPath(path)); !os.IsNotExist(err) {
		t.Fatalf("journal still present after FinishJournal: %v", err)
	}
	st3, err := OpenImage(path)
	if err != nil {
		t.Fatal(err)
	}
	th = st3.TM().Thread(0)
	defer th.Detach()
	kv = st3.KV()
	th.Atomic(func(tx *core.Tx) {
		if _, _, ok := kv.Get(tx, []byte("wal-key-0")); !ok {
			t.Fatal("key lost across clean save")
		}
	})
}

func TestTornJournalTailDroppedWhole(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.img")
	populateDurable(t, path, 10)

	// Simulate a kill mid-append: chop the journal mid-batch and tack
	// garbage on. Replay must apply the valid prefix and drop the tail
	// atomically — reopen still succeeds and recovery still runs.
	wal := WALPath(path)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, append(data[:len(data)-13], 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenDurable(path, StoreConfig{})
	if err != nil {
		t.Fatalf("reopen with torn journal tail: %v", err)
	}
	th := st.TM().Thread(0)
	defer th.Detach()
	kv := st.KV()
	th.Atomic(func(tx *core.Tx) {
		// The last batch was torn; earlier acked keys must still be there.
		if _, _, ok := kv.Get(tx, []byte("wal-key-0")); !ok {
			t.Fatal("prefix of torn journal not replayed")
		}
	})
}

func TestStaleJournalIgnoredAfterSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.img")
	populateDurable(t, path, 5)

	// Reopen (journal replayed), save a new image — but "fail" to
	// remove the journal, as a kill between SaveImage and FinishJournal
	// would. The save bumped the generation, so the next open must
	// recognize the file as stale and replay nothing from it.
	st, err := OpenDurable(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st.Crash(0)
	if err := st.SaveImage(path); err != nil {
		t.Fatal(err)
	}
	// Journal deliberately left behind.
	st2, err := OpenDurable(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.WALBatches != 0 {
		t.Fatalf("stale journal replayed %d batches over a newer image", st2.WALBatches)
	}
	th := st2.TM().Thread(0)
	defer th.Detach()
	kv := st2.KV()
	th.Atomic(func(tx *core.Tx) {
		if _, _, ok := kv.Get(tx, []byte("wal-key-4")); !ok {
			t.Fatal("key lost: it was consumed into the image before the journal went stale")
		}
	})
}

func TestCorruptImageRejectedTyped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.img")
	st := testStore(t, StoreConfig{Shards: 1})
	st.Bus().Quiesce()
	if err := st.SaveImage(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bit flip in body", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x01
			return c
		}},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-4096] }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"wrong magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "NOTIMAGE")
			return c
		}},
		{"garbage header json", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[12] = '!' // clobber the JSON opening brace
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(dir, "bad.img")
			if err := os.WriteFile(bad, tc.mut(good), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenImage(bad)
			if !errors.Is(err, ErrCorruptImage) {
				t.Fatalf("OpenImage(%s) = %v, want ErrCorruptImage", tc.name, err)
			}
			// OpenOrRecover must refuse too — never silently reformat
			// over a corrupt image.
			if _, err := OpenOrRecover(bad, StoreConfig{}); !errors.Is(err, ErrCorruptImage) {
				t.Fatalf("OpenOrRecover(%s) = %v, want ErrCorruptImage", tc.name, err)
			}
		})
	}

	// The untouched image still opens.
	if _, err := OpenImage(path); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
}

// startTestServer spins a full TCP server and returns its address and
// a shutdown func.
func startTestServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	st := testStore(t, StoreConfig{Shards: 2})
	exec := NewExecutor(st, ExecConfig{DeadlineNS: -1, IdleSleep: 20 * time.Microsecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(st, exec, ln)
	return srv.Addr().String(), srv.Shutdown
}

// probe performs a full healthy round trip on a fresh connection —
// the "server did not crash and still parses its stream" check.
func probe(t *testing.T, addr string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("probe dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "set probe 0 0 2\r\nok\r\nget probe\r\n"); err != nil {
		t.Fatalf("probe write: %v", err)
	}
	r := bufio.NewReader(conn)
	for _, want := range []string{"STORED", "VALUE probe 0 2", "ok", "END"} {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("probe read (want %q): %v", want, err)
		}
		if got := strings.TrimRight(line, "\r\n"); got != want {
			t.Fatalf("probe got %q, want %q", got, want)
		}
	}
}

// TestHalfWrittenSetBody is the satellite regression: a client that
// dies mid-payload must not leave anything submitted — the key stays
// absent and the server keeps serving.
func TestHalfWrittenSetBody(t *testing.T) {
	addr, shutdown := startTestServer(t)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Declare 10 bytes, send 3, hang up.
	if _, err := fmt.Fprintf(conn, "set half 0 0 10\r\nabc"); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Also die exactly at the payload boundary with the CRLF missing.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(conn2, "set half2 0 0 4\r\nwxyz"); err != nil {
		t.Fatal(err)
	}
	conn2.Close()

	// Give the server a moment to process the disconnects, then verify
	// neither key exists and the server is healthy.
	time.Sleep(50 * time.Millisecond)
	probe(t, addr)
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	conn3.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn3, "get half half2\r\n")
	r := bufio.NewReader(conn3)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != "END" {
		t.Fatalf("half-written set left data behind: %q", got)
	}
}

// TestMalformedProtocolInput feeds truncated commands, hostile
// lengths, bad UTF-8, and pipelined garbage at the TCP front end. The
// server must answer in-band (ERROR / CLIENT_ERROR / SERVER_ERROR) or
// drop the connection cleanly — and must never die: every case is
// followed by a healthy probe on a fresh connection.
func TestMalformedProtocolInput(t *testing.T) {
	addr, shutdown := startTestServer(t)
	defer shutdown()

	cases := []struct {
		name  string
		send  string
		want  []string // response lines expected in order; nil = none
		fatal bool     // connection is expected to drop
	}{
		{name: "whitespace only line", send: "   \r\n", want: []string{"ERROR"}},
		{name: "empty command", send: "\r\n", want: nil},
		{name: "bare lf", send: "\n", want: nil},
		{name: "truncated set", send: "set\r\n", want: []string{"ERROR"}},
		{name: "set missing length", send: "set k 0 0\r\n", want: []string{"ERROR"}},
		{name: "set non-numeric flags", send: "set k x 0 3\r\n", want: []string{"CLIENT_ERROR bad command line format"}},
		{name: "set negative length", send: "set k 0 0 -5\r\n", want: []string{"CLIENT_ERROR bad command line format"}},
		{name: "set overflowing length", send: "set k 0 0 99999999999999999999\r\n", want: []string{"CLIENT_ERROR bad command line format"}},
		{
			// A hostile declared length must be answered (and never
			// allocated); the client hangs up instead of streaming 1 TiB.
			name:  "set hostile huge length",
			send:  "set k 0 0 1099511627776\r\n",
			want:  []string{"SERVER_ERROR object too large for cache"},
			fatal: true,
		},
		{name: "set payload missing crlf", send: "set k 0 0 3\r\nabcde\r\n", want: []string{"CLIENT_ERROR bad data chunk"}},
		{name: "get no key", send: "get\r\n", want: []string{"ERROR"}},
		{name: "incr no delta", send: "incr k\r\n", want: []string{"ERROR"}},
		{name: "incr bad delta", send: "incr k abc\r\n", want: []string{"CLIENT_ERROR invalid numeric delta argument"}},
		{name: "delete no key", send: "delete\r\n", want: []string{"ERROR"}},
		{name: "binary garbage", send: "\x00\x01\x02\x03\r\n", want: []string{"ERROR"}},
		{name: "bad utf8 command", send: "\xff\xfe\xfd\r\n", want: []string{"ERROR"}},
		{
			// Bad UTF-8 in a *key* is legal — keys are byte strings.
			name: "bad utf8 key stores fine",
			send: "set \xff\x80key 0 0 3\r\nabc\r\n",
			want: []string{"STORED"},
		},
		{name: "oversized key", send: "set " + strings.Repeat("K", 300) + " 0 0 1\r\nz\r\n", want: []string{"CLIENT_ERROR kvstore: key length 300 out of range [1,250]"}},
		{
			name: "pipelined garbage between commands",
			send: "set p1 0 0 1\r\na\r\n\x00garbage\r\nget p1\r\n",
			want: []string{"STORED", "ERROR", "VALUE p1 0 1", "a", "END"},
		},
		{name: "quit with extra args", send: "quit now\r\n", want: nil, fatal: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := fmt.Fprintf(conn, "%s", tc.send); err != nil {
				t.Fatalf("send: %v", err)
			}
			r := bufio.NewReader(conn)
			for _, want := range tc.want {
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatalf("read (want %q): %v", want, err)
				}
				if got := strings.TrimRight(line, "\r\n"); got != want {
					t.Fatalf("got %q, want %q", got, want)
				}
			}
			if !tc.fatal {
				// The connection must still parse further commands.
				fmt.Fprintf(conn, "get zz-never-set\r\n")
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatalf("post-case read: %v", err)
				}
				if got := strings.TrimRight(line, "\r\n"); got != "END" {
					t.Fatalf("post-case got %q, want END", got)
				}
			}
			// Whatever happened on this connection, the server survives.
			probe(t, addr)
		})
	}
}
