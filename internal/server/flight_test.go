package server

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestFlightNilSafety: a nil recorder is the disabled configuration —
// every method no-ops.
func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightRecord{Op: 1})
	f.AddSample(FlightSample{})
	f.StartMirror("/nonexistent/x", time.Millisecond, nil)
	if err := f.Dump(); err != nil {
		t.Fatalf("nil dump: %v", err)
	}
	f.Stop()
	if f.Seq() != 0 || f.Size() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder retained state")
	}
	if NewFlightRecorder(0) != nil {
		t.Fatal("size 0 should disable the recorder")
	}
}

// TestFlightRingWrap: the ring keeps the newest Size() records; older
// ones count as dropped.
func TestFlightRingWrap(t *testing.T) {
	f := NewFlightRecorder(5) // rounds up to 8
	if f.Size() != 8 {
		t.Fatalf("size = %d, want 8", f.Size())
	}
	for i := 0; i < 20; i++ {
		f.Record(FlightRecord{Op: uint8(i), LatNS: int64(i)})
	}
	recs := f.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("snapshot kept %d records, want 8", len(recs))
	}
	for i, r := range recs {
		if want := uint64(13 + i); r.Seq != want {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, want)
		}
		if r.WallNS == 0 {
			t.Fatalf("record %d missing wall stamp", i)
		}
	}
	if f.Seq() != 20 {
		t.Fatalf("seq = %d, want 20", f.Seq())
	}
}

// TestFlightConcurrentRecord: concurrent writers against a snapshotting
// reader — the seqlock must never yield a torn record (a record whose
// Seq doesn't match its payload).
func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.Record(FlightRecord{EnqVT: 7, DoneVT: 7})
				}
			}
		}()
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, r := range f.Snapshot() {
			if r.EnqVT != 7 || r.DoneVT != 7 {
				t.Errorf("torn record: %+v", r)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestFlightDumpRoundTrip: the mirror loop writes a sidecar that
// ReadFlightDump parses back, records oldest-first, samples bounded.
func TestFlightDumpRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.img.flight")
	f := NewFlightRecorder(16)
	n := 0
	f.StartMirror(path, time.Millisecond, func() FlightSample {
		n++
		return FlightSample{QueueDepth: int64(n), Counters: map[string]int64{"commits": int64(n)}}
	})
	for i := 0; i < 24; i++ {
		f.Record(FlightRecord{Op: 2, Shard: uint16(i % 3), LatNS: 100})
	}
	time.Sleep(10 * time.Millisecond)
	f.Stop()

	d, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != flightSchema {
		t.Fatalf("schema = %d, want %d", d.Schema, flightSchema)
	}
	if d.Seq != 24 || len(d.Records) != 16 {
		t.Fatalf("seq=%d records=%d, want 24/16", d.Seq, len(d.Records))
	}
	if d.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", d.Dropped)
	}
	for i := 1; i < len(d.Records); i++ {
		if d.Records[i].Seq <= d.Records[i-1].Seq {
			t.Fatalf("records not in sequence order at %d", i)
		}
	}
	if len(d.Samples) == 0 || len(d.Samples) > maxFlightSamples {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	if d.Samples[0].Counters["commits"] == 0 {
		t.Fatal("sample lost its counters")
	}

	// A second Stop (the SIGTERM path can race the panic path) is safe.
	f.Stop()
}

// TestDisabledPathZeroAlloc pins the acceptance requirement: with
// sampling and the flight ring disabled, the per-request hooks cost
// nil checks only — zero allocations.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var f *FlightRecorder
	var tr *reqTracer
	req := &Request{}
	allocs := testing.AllocsPerRun(200, func() {
		f.Record(FlightRecord{})
		if rec := tr.start(0); rec != nil {
			req.Trace = rec
		}
		tr.finish(req.Trace)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
	// The enabled ring write must not allocate either — shard workers
	// call it on every completion.
	fr := NewFlightRecorder(32)
	allocs = testing.AllocsPerRun(200, func() {
		fr.Record(FlightRecord{Op: 1})
	})
	if allocs != 0 {
		t.Fatalf("enabled ring write allocates %.1f per op, want 0", allocs)
	}
}
