package server

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"goptm/internal/core"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/stats"
	"goptm/internal/workload/kvstore"
)

// The executor is where the paper's batching argument becomes service
// design. Each durable commit pays a fixed tail — log flush, sfence,
// commit-marker flush — that on Optane is dominated by WPQ drain
// latency, so N separate set transactions pay that tail N times.
// Coalescing adjacent writes into one transaction pays it once per
// batch, trading a bounded queueing delay (the batch window) for a
// large cut in per-op durable-commit cost. At high load the queue
// keeps batches full and p99 latency drops; at low load the window
// expires with a batch of one and latency is unchanged. Shards
// partition the keyspace by key hash so batches never conflict and
// commit in parallel. With Adaptive set, each shard's (cap, window)
// pair is driven by the AIMD controller in controller.go instead of
// staying pinned at the configured values.

// Op identifies one KV operation.
type Op uint8

const (
	OpGet Op = iota
	OpSet
	OpDelete
	OpIncr
)

// Request is one queued KV command plus its completion state. The
// submitter owns it until Submit succeeds; after completion (done
// closed, or Submit returned false) the submitter owns it again.
type Request struct {
	Op    Op
	Key   []byte
	Value []byte // set payload
	Flags uint32 // set: opaque memcached flags
	Delta uint64 // incr amount

	// EnqVT is the virtual-time enqueue stamp. Submit fills it from
	// the target shard's clock when zero; loadsim pre-stamps it from
	// the generator thread's clock.
	EnqVT int64

	// Warmup excludes this request from the latency histograms (it
	// still executes, counts as executed, and can shed). Loadsim sets
	// it on ramp-up arrivals so percentile comparisons measure steady
	// state, the same warmup exclusion the harness applies.
	Warmup bool

	// Done is closed when the request completes (execution, shed, or
	// drain sweep). Submitters that need the result must set it; a nil
	// Done makes the request fire-and-forget.
	Done chan struct{}

	// Trace carries the request-lifecycle stamps when this request was
	// sampled (Executor.TraceStart); the executor fills the queue, pop,
	// execute, drain, journal, and ack boundaries and hands the
	// completed record to the obs recorder. Nil — the common case —
	// costs one pointer check per stamping site.
	Trace *obs.ReqRecord

	// Results, valid once Done is closed.
	Found    bool   // get/delete/incr: key existed
	Val      []byte // get result
	ValFlags uint32 // get result flags
	NewVal   uint64 // incr result
	Shed     bool   // dropped by deadline shedding, not executed
	Err      error  // kv-layer error (bad key, non-numeric incr, drain)
}

// ErrDraining completes requests still queued when the executor shuts
// down.
var ErrDraining = errors.New("server: executor draining")

// ErrDurable marks a write whose transaction committed in simulated
// memory but whose durable-ack barrier (journal flush) failed: the
// server cannot promise the write survives a process kill, so it
// answers SERVER_ERROR instead of acking.
var ErrDurable = errors.New("server: durable acknowledgment failed")

// ExecConfig parameterizes the executor.
type ExecConfig struct {
	Shards     int // worker shards; thread i+1 of the machine drives shard i
	QueueDepth int // per-shard bounded queue; 0 selects 256
	// MaxBatch caps ops coalesced into one transaction; 0 selects the
	// store's MaxBatch. 1 disables coalescing (the baseline). Under
	// Adaptive it is the starting batch cap, and is raised to the
	// controller's upper bound for slice sizing.
	MaxBatch int
	// BatchWindowNS is how long a shard waits, in virtual ns, to fill
	// a batch after its first request; 0 selects 2000 (2 µs).
	// Negative disables the wait (batch = whatever is queued now).
	// Under Adaptive it is the starting window.
	BatchWindowNS int64
	// DeadlineNS sheds requests older than this at pop time — before
	// they consume a batch slot; 0 selects 1_000_000 (1 ms). Negative
	// disables shedding.
	DeadlineNS int64
	PollNS     int64 // idle poll quantum in virtual ns; 0 selects 200
	// IdleSleep, when positive, adds a host-time sleep to idle polls so
	// the TCP server doesn't spin a core per shard. Must stay 0 under
	// lockstep: a sleeping thread holds the scheduler floor.
	IdleSleep time.Duration
	// DurableAck runs Store.DrainPersist after every batch that
	// contains a write, before any request in the batch completes: the
	// batch's persistence traffic reaches simulated media — and the
	// attached write-ahead journal, if any — before the response goes
	// out, so an acked write survives a kill of the host process.
	// Off by default: the barrier adds drain waits to the virtual
	// timeline, which would shift loadsim's pinned latency curves.
	DurableAck bool
	// Adaptive hands each shard's (batch cap, window) pair to the
	// per-shard AIMD controller (controller.go), bounded and paced by
	// Ctrl. MaxBatch/BatchWindowNS become the starting operating
	// point.
	Adaptive bool
	Ctrl     CtrlConfig

	// TraceSample enables request-lifecycle tracing: ~1 in TraceSample
	// submitted requests is stamped through the parse→queue→batch→
	// execute→drain→journal→ack chain and retained by the obs recorder
	// (1 samples everything; 0, the default, disables sampling — the
	// zero-overhead path). Sampling requires a tracing recorder:
	// TraceRecorder if set, else the store machine's.
	TraceSample int
	// TraceSeed seeds the deterministic sampling hash; a fixed (seed,
	// sample) pair picks the same arrivals on every run.
	TraceSeed uint64
	// WallClock stamps lifecycle records with host time instead of the
	// shard's virtual clock — the TCP server sets it (its requests live
	// on wall time); loadsim leaves it off.
	WallClock bool
	// TraceRecorder overrides the machine's recorder for request
	// records only — the TCP server uses a standalone recorder so
	// request tracing doesn't force machine-wide span retention.
	TraceRecorder *obs.Recorder
	// Flight, when non-nil, receives a FlightRecord for every request
	// completion (executed, shed, or swept at drain).
	Flight *FlightRecorder

	// The static operating point before Adaptive raised MaxBatch to
	// the controller bound — the controller's start values.
	startCap    int
	startWindow int64
}

func (c ExecConfig) withDefaults(st *Store) ExecConfig {
	if c.Shards <= 0 {
		c.Shards = st.cfg.Shards
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = st.cfg.MaxBatch
	}
	if c.MaxBatch > st.cfg.MaxBatch {
		c.MaxBatch = st.cfg.MaxBatch // the log is sized for this bound
	}
	if c.BatchWindowNS == 0 {
		c.BatchWindowNS = 2000
	}
	if c.DeadlineNS == 0 {
		c.DeadlineNS = 1_000_000
	}
	if c.PollNS <= 0 {
		c.PollNS = 200
	}
	if c.Adaptive {
		c.startCap = c.MaxBatch
		c.startWindow = c.BatchWindowNS
		if c.startWindow < 0 {
			c.startWindow = 0
		}
		c.Ctrl = c.Ctrl.withDefaults(c.MaxBatch)
		if c.Ctrl.MaxBatch > st.cfg.MaxBatch {
			c.Ctrl.MaxBatch = st.cfg.MaxBatch // log sizing bounds the cap too
		}
		if c.MaxBatch < c.Ctrl.MaxBatch {
			c.MaxBatch = c.Ctrl.MaxBatch // slice capacity for the largest batch
		}
	}
	return c
}

// shard is one keyspace partition: a bounded FIFO and the simulated
// thread that drains it.
type shard struct {
	mu    sync.Mutex
	queue []*Request
	head  int

	lastVT atomic.Int64 // the shard thread's clock, for Submit stamping

	ctrl *ctrl // adaptive (cap, window) controller; nil when static

	// statsMu guards the histograms and executed: the worker takes it
	// once per batch, so the telemetry endpoint can merge live stats
	// from host goroutines without racing the shard thread.
	statsMu    sync.Mutex
	latency    stats.Histogram // enqueue→completion, virtual ns
	batchSizes stats.Histogram
	ackLat     stats.Histogram // durable-ack barrier (drain+journal), host ns
	executed   int64
	shed       atomic.Int64 // per-shard deadline sheds (stats reads it live)
}

// Executor shards the store's keyspace and drains each shard's queue
// on its own simulated thread, coalescing writes into batched
// transactions.
type Executor struct {
	st  *Store
	cfg ExecConfig
	met *metrics.Registry
	rec *obs.Recorder

	shards []*shard
	queued atomic.Int64 // across all shards, for the queue-depth track

	tracer *reqTracer      // request-lifecycle sampling; nil when disabled
	flight *FlightRecorder // completed-request ring; nil when disabled

	inputsDone atomic.Bool
	draining   atomic.Bool
	wg         sync.WaitGroup
}

// NewExecutor starts the shard workers on st's threads 1..Shards.
// Thread 0 stays free for the owner (setup, load generation, admin).
func NewExecutor(st *Store, cfg ExecConfig) *Executor {
	cfg = cfg.withDefaults(st)
	e := &Executor{
		st:     st,
		cfg:    cfg,
		met:    st.tm.Metrics(),
		rec:    st.tm.Recorder(),
		shards: make([]*shard, cfg.Shards),
		flight: cfg.Flight,
	}
	traceRec := cfg.TraceRecorder
	if traceRec == nil {
		traceRec = st.tm.Recorder()
	}
	e.tracer = newReqTracer(traceRec, cfg.TraceSample, cfg.TraceSeed, cfg.WallClock)
	for i := range e.shards {
		e.shards[i] = &shard{}
		if cfg.Adaptive {
			e.shards[i].ctrl = newCtrl(cfg.Ctrl, cfg.startCap, cfg.startWindow, cfg.DeadlineNS)
		}
	}
	e.wg.Add(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		// Attach here, in shard order, not in the worker goroutines:
		// under lockstep the engine's turn order follows attachment
		// order, and a deterministic schedule needs a deterministic
		// attach sequence.
		th := st.tm.Thread(i + 1)
		go e.runShard(i, th)
	}
	return e
}

// Config returns the executor's configuration (after defaulting).
func (e *Executor) Config() ExecConfig { return e.cfg }

// ShardOf returns the shard index serving key.
func (e *Executor) ShardOf(key []byte) int {
	return int(kvstore.HashKey(key) % uint64(len(e.shards)))
}

// Submit enqueues req on its key's shard. It reports false — without
// completing req — when the shard queue is full or the executor is
// draining; the caller answers "SERVER_ERROR busy". On true, req
// completes asynchronously (Done closes if set).
func (e *Executor) Submit(req *Request) bool {
	if e.draining.Load() {
		return false
	}
	si := e.ShardOf(req.Key)
	s := e.shards[si]
	if req.EnqVT == 0 {
		req.EnqVT = s.lastVT.Load()
	}
	if req.Trace != nil {
		req.Trace.Shard = int32(si)
		req.Trace.Op = uint8(req.Op)
		req.Trace.Stamp(1, e.tracer.now(req.EnqVT))
	}
	s.mu.Lock()
	if len(s.queue)-s.head >= e.cfg.QueueDepth {
		s.mu.Unlock()
		e.met.Add(metrics.CtrSrvShed, 1)
		return false
	}
	s.queue = append(s.queue, req)
	s.mu.Unlock()
	e.queued.Add(1)
	e.met.Add(metrics.CtrSrvRequests, 1)
	return true
}

// TraceStart makes the request-lifecycle sampling decision for one
// arriving request: nil (not sampled, or tracing off — the common,
// allocation-free case) or a record with the parse boundary stamped.
// Frontends call it where the request enters the system — the TCP
// parser at command parse, loadsim at arrival generation — assign the
// result to Request.Trace, and Submit plus the shard worker fill the
// remaining boundaries. vt is the caller's virtual clock; ignored
// under WallClock.
func (e *Executor) TraceStart(vt int64) *obs.ReqRecord { return e.tracer.start(vt) }

// popLive removes queued requests from shard s until it has gathered
// up to max live ones, shedding any that aged past deadline *at pop
// time* — an expired request completes as shed right here and never
// consumes a batch slot. It appends the live requests to *out and
// reports the backlog observed before popping (the controller's
// queue-depth signal) plus the sheds performed.
func (s *shard) popLive(e *Executor, max int, now, deadline int64, out *[]*Request) (backlog, sheds int) {
	s.mu.Lock()
	backlog = len(s.queue) - s.head
	taken, live := 0, 0
	for s.head < len(s.queue) && live < max {
		req := s.queue[s.head]
		s.head++
		taken++
		if deadline > 0 && now-req.EnqVT > deadline {
			req.Shed = true
			sheds++
			if req.Trace != nil {
				// The lifecycle ends at the pop: collapse every remaining
				// boundary to the shed instant so the chain still telescopes.
				tnow := e.tracer.now(now)
				for k := 2; k < len(req.Trace.TS); k++ {
					req.Trace.Stamp(k, tnow)
				}
				req.Trace.Shed = true
				e.tracer.finish(req.Trace)
			}
			e.recordFlight(req, now)
			finish(req)
			continue
		}
		if req.Trace != nil {
			req.Trace.Stamp(2, e.tracer.now(now))
		}
		*out = append(*out, req)
		live++
	}
	if s.head == len(s.queue) {
		// Reuse the backing array once drained; keeps steady state
		// allocation-free.
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.mu.Unlock()
	if taken > 0 {
		e.queued.Add(int64(-taken))
	}
	if sheds > 0 {
		s.shed.Add(int64(sheds))
		e.met.Add(metrics.CtrSrvShed, int64(sheds))
	}
	return backlog, sheds
}

// finish completes req.
func finish(req *Request) {
	if req.Done != nil {
		close(req.Done)
	}
}

// runShard is one shard worker: poll, assemble a batch (shedding the
// overdue at pop time), execute the live requests in one transaction,
// and let the controller re-evaluate the operating point. It must
// keep moving virtual time (Compute) whenever idle so the other
// threads of the windowed engine never wait on it.
func (e *Executor) runShard(i int, th *core.Thread) {
	defer e.wg.Done()
	defer th.Detach()
	s := e.shards[i]
	// A simulated power failure (crash-injection hook) unwinds the
	// in-flight transaction without rollback; the worker dies with the
	// machine, exactly as a real one would. Requests in the cut batch
	// never complete — their durability is decided by recovery. The
	// clock stamp matters: Crash(vt) replays the device's pending
	// queue only up to vt, so the failure instant must be recorded.
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(core.PowerFailure); !ok {
				panic(r)
			}
			s.lastVT.Store(th.Now())
		}
	}()
	batch := make([]*Request, 0, e.cfg.MaxBatch)
	for {
		s.lastVT.Store(th.Now())
		cap, window := e.cfg.MaxBatch, e.cfg.BatchWindowNS
		if s.ctrl != nil {
			cap, window = s.ctrl.params()
		}
		batch = batch[:0]
		backlog, sheds := s.popLive(e, cap, th.Now(), e.cfg.DeadlineNS, &batch)
		if s.ctrl != nil {
			s.ctrl.observePop(backlog, sheds)
		}
		if len(batch) == 0 {
			if e.inputsDone.Load() {
				// A Submit that landed between the pop above and this load
				// would be stranded for Drain's ErrDraining sweep even
				// though it was accepted before shutdown began. The load
				// happens-after any Submit that preceded InputsDone, so one
				// final pop is guaranteed to see such a request; only an
				// empty queue here is safe to abandon.
				s.popLive(e, cap, th.Now(), e.cfg.DeadlineNS, &batch)
				if len(batch) == 0 {
					return
				}
				e.execBatch(s, th, batch)
				e.ctrlStep(s, th)
				continue
			}
			e.ctrlStep(s, th)
			th.Compute(e.cfg.PollNS)
			if e.cfg.IdleSleep > 0 {
				time.Sleep(e.cfg.IdleSleep)
			}
			continue
		}
		// Group commit: wait out the batch window for stragglers.
		if window > 0 && len(batch) < cap {
			deadline := th.Now() + window
			for len(batch) < cap && th.Now() < deadline {
				before := len(batch)
				_, sheds := s.popLive(e, cap-len(batch), th.Now(), e.cfg.DeadlineNS, &batch)
				if s.ctrl != nil && sheds > 0 {
					s.ctrl.observeSheds(sheds)
				}
				if len(batch) == before {
					th.Compute(e.cfg.PollNS)
					continue
				}
			}
		}
		e.execBatch(s, th, batch)
		e.ctrlStep(s, th)
	}
}

// ctrlStep lets the shard's controller evaluate, and mirrors the step
// into the metrics registry and the obs counter tracks. Pure
// accounting: no virtual time moves here.
func (e *Executor) ctrlStep(s *shard, th *core.Thread) {
	if s.ctrl == nil {
		return
	}
	stepped, dir := s.ctrl.maybeStep(th.Now())
	if !stepped {
		return
	}
	e.met.Add(metrics.CtrSrvCtrlSteps, 1)
	switch {
	case dir > 0:
		e.met.Add(metrics.CtrSrvCtrlUp, 1)
	case dir < 0:
		e.met.Add(metrics.CtrSrvCtrlDown, 1)
	}
	if e.rec.Tracing() {
		cap, window := s.ctrl.params()
		now := th.Now()
		e.rec.CountShared(obs.TrackServerBatchCap, now, float64(cap))
		e.rec.CountShared(obs.TrackServerWindow, now, float64(window))
	}
}

// execBatch runs the live requests in one transaction and completes
// everything. Deadline shedding already happened at pop time.
func (e *Executor) execBatch(s *shard, th *core.Thread, live []*Request) {
	if len(live) > 0 {
		if e.tracer != nil {
			// The batch closes here: every member's batch-formation phase
			// ends at the same transaction start.
			tnow := e.tracer.now(th.Now())
			for _, req := range live {
				if req.Trace != nil {
					req.Trace.Stamp(3, tnow)
				}
			}
		}
		kv := e.st.kv
		th.Atomic(func(tx *core.Tx) {
			// The body re-runs on abort: every result field is plainly
			// overwritten so retries stay idempotent.
			for _, req := range live {
				switch req.Op {
				case OpGet:
					req.Val, req.ValFlags, req.Found = kv.Get(tx, req.Key)
				case OpSet:
					req.Err = kv.Set(tx, req.Key, req.Value, req.Flags)
				case OpDelete:
					req.Found = kv.Delete(tx, req.Key)
				case OpIncr:
					req.NewVal, req.Found, req.Err = kv.Incr(tx, req.Key, req.Delta)
				}
			}
		})
		// Stamp the execute boundary at the actual moment: under
		// WallClock the tracer's clock is "now", so deferring the stamp
		// past the barrier would order it after the drain boundary.
		var tExec int64
		if e.tracer != nil {
			tExec = e.tracer.now(th.Now())
		}
		// Without a barrier the drain and journal boundaries collapse onto
		// the execute end (zero-width phases keep the chain telescoping).
		tDrain, tJournal := tExec, tExec
		var ackHostNS int64
		if e.cfg.DurableAck {
			hasWrite := false
			for _, req := range live {
				if req.Op != OpGet {
					hasWrite = true
					break
				}
			}
			if hasWrite {
				// The durable-ack barrier, split so the drain and journal
				// halves stamp separately: WPQ entries onto simulated
				// media first, then the journal batch onto the host file.
				barrier := time.Now()
				e.st.DrainMedia(th)
				drainEnd := th.Now()
				ferr := e.st.FlushJournal()
				ackHostNS = time.Since(barrier).Nanoseconds()
				if e.tracer != nil {
					tDrain, tJournal = e.tracer.now(drainEnd), e.tracer.now(th.Now())
				}
				if ferr != nil {
					for _, req := range live {
						if req.Op != OpGet && req.Err == nil {
							req.Err = ErrDurable
						}
					}
				}
			}
		}
		end := th.Now()
		s.lastVT.Store(end)
		var maxLat int64
		s.statsMu.Lock()
		for _, req := range live {
			lat := end - req.EnqVT
			if lat > maxLat {
				maxLat = lat
			}
			if !req.Warmup {
				s.latency.Record(lat)
			}
		}
		s.executed += int64(len(live))
		s.batchSizes.Record(int64(len(live)))
		if ackHostNS > 0 {
			s.ackLat.Record(ackHostNS)
		}
		s.statsMu.Unlock()
		if e.tracer != nil {
			tEnd := e.tracer.now(end)
			for _, req := range live {
				if req.Trace == nil {
					continue
				}
				req.Trace.Stamp(4, tExec)
				req.Trace.Stamp(5, tDrain)
				req.Trace.Stamp(6, tJournal)
				req.Trace.Stamp(7, tEnd)
				e.tracer.finish(req.Trace)
			}
		}
		for _, req := range live {
			e.recordFlight(req, end)
			finish(req)
		}
		if s.ctrl != nil {
			s.ctrl.observeBatch(len(live), maxLat)
		}
		e.met.Add(metrics.CtrSrvBatches, 1)
		e.met.Add(metrics.CtrSrvBatchedOps, int64(len(live)))
	}
	if e.rec.Tracing() {
		e.rec.CountShared(obs.TrackServerQueue, th.Now(), float64(e.queued.Load()))
	}
}

// recordFlight publishes one completed request into the flight ring
// (nil flight: one branch and out).
func (e *Executor) recordFlight(req *Request, doneVT int64) {
	if e.flight == nil {
		return
	}
	e.flight.Record(FlightRecord{
		Op:     uint8(req.Op),
		Shard:  uint16(e.ShardOf(req.Key)),
		Shed:   req.Shed,
		Err:    req.Err != nil,
		EnqVT:  req.EnqVT,
		DoneVT: doneVT,
		LatNS:  doneVT - req.EnqVT,
	})
}

// ShardVT returns shard i's last observed virtual timestamp — after a
// drain, the slowest shard's clock bounds the run's virtual elapsed
// time.
func (e *Executor) ShardVT(i int) int64 { return e.shards[i].lastVT.Load() }

// ShardCtrl reports shard i's live adaptive operating point and step
// count. ok is false for a static executor.
func (e *Executor) ShardCtrl(i int) (cap int, windowNS int64, steps int64, ok bool) {
	c := e.shards[i].ctrl
	if c == nil {
		return 0, 0, 0, false
	}
	cap, windowNS = c.params()
	return cap, windowNS, c.steps.Load(), true
}

// ShardShed reports shard i's deadline-shed count so far.
func (e *Executor) ShardShed(i int) int64 { return e.shards[i].shed.Load() }

// NumShards reports the executor's shard count.
func (e *Executor) NumShards() int { return len(e.shards) }

// ShardParams reports shard i's live (batch cap, window): the
// controller's operating point under Adaptive, the static
// configuration otherwise.
func (e *Executor) ShardParams(i int) (int, int64) {
	if cap, win, _, ok := e.ShardCtrl(i); ok {
		return cap, win
	}
	return e.cfg.MaxBatch, e.cfg.BatchWindowNS
}

// CtrlTrace returns shard i's controller trace (empty unless
// Ctrl.Trace was set). Call only when the workers are quiescent.
func (e *Executor) CtrlTrace(i int) []CtrlStep {
	if c := e.shards[i].ctrl; c != nil {
		return c.trace
	}
	return nil
}

// CtrlTraceFNV folds every shard's controller trace, in shard order,
// into one hash — the determinism fingerprint loadsim pins. Call only
// when the workers are quiescent.
func (e *Executor) CtrlTraceFNV() uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range e.shards {
		sum := TraceFNV(e.CtrlTrace(i))
		for j := range b {
			b[j] = byte(sum >> (8 * j))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// InputsDone tells the workers no further Submit will arrive; each
// exits once its queue is empty. Used by loadsim, where the run ends
// when the generated arrivals are all served.
func (e *Executor) InputsDone() { e.inputsDone.Store(true) }

// Drain stops admission, waits for the workers to finish what is
// queued, and completes any leftover requests with ErrDraining. After
// Drain the machine's worker threads are detached; the store can be
// crashed and saved.
func (e *Executor) Drain() {
	e.draining.Store(true)
	e.inputsDone.Store(true)
	e.wg.Wait()
	// The workers exit when they see an empty queue, but a Submit
	// racing with shutdown can land an entry after that look; sweep it.
	for _, s := range e.shards {
		var leftover []*Request
		s.popLive(e, 1<<31-1, 0, -1, &leftover)
		for _, req := range leftover {
			req.Err = ErrDraining
			e.recordFlight(req, req.EnqVT)
			finish(req)
		}
	}
}

// ExecStats is a point-in-time roll-up across shards.
type ExecStats struct {
	Executed   int64
	Shed       int64
	Queued     int64
	ShardShed  []int64         // per-shard deadline sheds
	CtrlSteps  int64           // controller evaluations (0 when static)
	Latency    stats.Histogram // merged enqueue→completion latency
	BatchSizes stats.Histogram
	AckBarrier stats.Histogram // durable-ack barrier host-time latency
}

// Stats merges the per-shard accounting. Safe to call while the
// workers run — the histograms are read under each shard's stats
// mutex, so the live telemetry endpoint gets a consistent roll-up —
// though a mid-run snapshot is of course a moving target.
func (e *Executor) Stats() ExecStats {
	var out ExecStats
	out.Queued = e.queued.Load()
	out.ShardShed = make([]int64, len(e.shards))
	for i, s := range e.shards {
		out.ShardShed[i] = s.shed.Load()
		out.Shed += out.ShardShed[i]
		if s.ctrl != nil {
			out.CtrlSteps += s.ctrl.steps.Load()
		}
		s.statsMu.Lock()
		out.Executed += s.executed
		out.Latency.Merge(&s.latency)
		out.BatchSizes.Merge(&s.batchSizes)
		out.AckBarrier.Merge(&s.ackLat)
		s.statsMu.Unlock()
	}
	return out
}

// QueueDepth reports the live queued-request count across all shards.
func (e *Executor) QueueDepth() int64 { return e.queued.Load() }

// ShardQueueDepth reports shard i's live queue depth.
func (e *Executor) ShardQueueDepth(i int) int {
	s := e.shards[i]
	s.mu.Lock()
	d := len(s.queue) - s.head
	s.mu.Unlock()
	return d
}
