package server

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// expectedStatKeys is the full stats schema for a server with shards
// shards — the machine-checkable contract: every key always present,
// controller gauges included (0 / static values when no controller
// runs).
func expectedStatKeys(shards int) []string {
	keys := []string{
		"batched_ops_total", "batches_total", "cmd_total",
		"ctrl_steps", "ctrl_steps_down", "ctrl_steps_up",
		"queue_depth", "shed_total", "txn_aborts", "txn_commits",
	}
	for i := 0; i < shards; i++ {
		keys = append(keys,
			fmt.Sprintf("shard%d_batch_cap", i),
			fmt.Sprintf("shard%d_ctrl_steps", i),
			fmt.Sprintf("shard%d_queue_depth", i),
			fmt.Sprintf("shard%d_shed", i),
			fmt.Sprintf("shard%d_window_ns", i),
		)
	}
	sort.Strings(keys)
	return keys
}

// readStats sends the stats command and parses every response line.
func readStats(t *testing.T, conn net.Conn, r *bufio.Reader) map[string]int64 {
	t.Helper()
	fmt.Fprintf(conn, "stats\r\n")
	got := map[string]int64{}
	var order []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			break
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "STAT" {
			t.Fatalf("malformed stats line: %q", line)
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			t.Fatalf("stats value for %s is not an integer: %q", fields[1], fields[2])
		}
		got[fields[1]] = v
		order = append(order, fields[1])
	}
	if !sort.StringsAreSorted(order) {
		t.Fatalf("stats keys not in sorted order: %v", order)
	}
	return got
}

func assertStatKeys(t *testing.T, got map[string]int64, shards int) {
	t.Helper()
	want := expectedStatKeys(shards)
	if len(got) != len(want) {
		t.Errorf("stats has %d keys, want %d", len(got), len(want))
	}
	for _, k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("stats missing key %s", k)
		}
	}
	for k := range got {
		i := sort.SearchStrings(want, k)
		if i >= len(want) || want[i] != k {
			t.Errorf("stats has unexpected key %s", k)
		}
	}
}

// TestStatsSchemaStatic: a static server's stats response carries the
// complete sorted key set, with the controller gauges at zero and the
// per-shard operating points reporting the static configuration.
func TestStatsSchemaStatic(t *testing.T) {
	srv, _, conn, r := pipeServer(t, StoreConfig{Shards: 2},
		ExecConfig{DeadlineNS: -1, MaxBatch: 4, BatchWindowNS: 1500, IdleSleep: 20 * time.Microsecond})
	_ = srv

	fmt.Fprintf(conn, "set a 0 0 1\r\nx\r\n")
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "STORED" {
		t.Fatalf("set: %q", line)
	}

	got := readStats(t, conn, r)
	assertStatKeys(t, got, 2)
	if got["cmd_total"] != 1 {
		t.Errorf("cmd_total = %d, want 1", got["cmd_total"])
	}
	for i := 0; i < 2; i++ {
		if v := got[fmt.Sprintf("shard%d_batch_cap", i)]; v != 4 {
			t.Errorf("shard%d_batch_cap = %d, want static 4", i, v)
		}
		if v := got[fmt.Sprintf("shard%d_window_ns", i)]; v != 1500 {
			t.Errorf("shard%d_window_ns = %d, want static 1500", i, v)
		}
		if v := got[fmt.Sprintf("shard%d_ctrl_steps", i)]; v != 0 {
			t.Errorf("shard%d_ctrl_steps = %d, want 0 on a static server", i, v)
		}
	}
	for _, k := range []string{"ctrl_steps", "ctrl_steps_up", "ctrl_steps_down"} {
		if got[k] != 0 {
			t.Errorf("%s = %d, want 0 on a static server", k, got[k])
		}
	}
}

// TestStatsSchemaAdaptive: same schema under the adaptive controller,
// with live operating points.
func TestStatsSchemaAdaptive(t *testing.T) {
	srv, _, conn, r := pipeServer(t, StoreConfig{Shards: 1},
		ExecConfig{DeadlineNS: -1, Adaptive: true, IdleSleep: 20 * time.Microsecond})
	_ = srv

	got := readStats(t, conn, r)
	assertStatKeys(t, got, 1)
	if got["shard0_batch_cap"] <= 0 {
		t.Errorf("shard0_batch_cap = %d, want positive", got["shard0_batch_cap"])
	}
	if got["shard0_window_ns"] < 0 {
		t.Errorf("shard0_window_ns = %d, want >= 0", got["shard0_window_ns"])
	}
}
