package server

import "testing"

// The controller unit tests drive ctrl directly with synthetic
// interval signals — no machine, no executor — so each rule of the
// step function is pinned in isolation. Virtual time is just an
// integer here; the executor integration is covered by the loadsim
// determinism tests.

func testCtrl(t *testing.T, startCap int, startWindow int64) *ctrl {
	t.Helper()
	cfg := CtrlConfig{MaxBatch: 32}.withDefaults(8)
	return newCtrl(cfg, startCap, startWindow, 1_000_000)
}

// step advances the controller one full evaluation interval with the
// given per-interval signals applied, returning the direction moved.
func step(c *ctrl, now *int64, backlog, sheds, ops int, maxLat int64) int {
	c.observePop(backlog, sheds)
	if ops > 0 {
		c.observeBatch(ops, maxLat)
	}
	*now += c.cfg.EvalIntervalNS
	_, dir := c.maybeStep(*now)
	return dir
}

func TestCtrlPressureConvergesToMaxBatch(t *testing.T) {
	c := testCtrl(t, 1, 0)
	now := int64(0)
	c.maybeStep(now) // arm the first interval
	// Persistent backlog ≥ cap is the early pressure signal; the cap
	// must walk to its bound within (MaxBatch-1)/BatchStep + 1 steps.
	steps := 0
	for cap, _ := c.params(); cap < c.cfg.MaxBatch; cap, _ = c.params() {
		if dir := step(c, &now, 64, 0, 1, 100); dir != +1 {
			t.Fatalf("step %d: dir = %d, want +1 under backlog pressure", steps, dir)
		}
		if steps++; steps > (c.cfg.MaxBatch-1)/c.cfg.BatchStep+1 {
			t.Fatalf("cap did not converge to %d in %d steps", c.cfg.MaxBatch, steps)
		}
	}
	// Backlog pressure alone must not have grown the window: batches
	// fill from the queue, a straggler wait would be pure latency.
	if _, w := c.params(); w != 0 {
		t.Fatalf("window grew to %d under shed-free backlog pressure", w)
	}
}

func TestCtrlShedPressureGrowsWindow(t *testing.T) {
	c := testCtrl(t, 8, 0)
	now := int64(0)
	c.maybeStep(now)
	if dir := step(c, &now, 0, 3, 1, 100); dir != +1 {
		t.Fatalf("dir = %d, want +1 when requests shed", dir)
	}
	if _, w := c.params(); w != c.cfg.WindowStepNS {
		t.Fatalf("window = %d after one shed step, want %d", w, c.cfg.WindowStepNS)
	}
}

func TestCtrlIdleDecaysToFloor(t *testing.T) {
	c := testCtrl(t, 32, 16384)
	now := int64(0)
	c.maybeStep(now)
	// Empty intervals (no pops at all) are idle; multiplicative decay
	// must reach the floor in O(log) steps (the 16384 ns window halves
	// to zero in 15).
	for i := 0; i < 16; i++ {
		if dir := step(c, &now, 0, 0, 0, 0); dir != -1 {
			t.Fatalf("step %d: dir = %d, want -1 when idle", i, dir)
		}
	}
	cap, w := c.params()
	if cap != c.cfg.MinBatch || w != c.cfg.MinWindowNS {
		t.Fatalf("after idle decay: (cap, window) = (%d, %d), want (%d, %d)",
			cap, w, c.cfg.MinBatch, c.cfg.MinWindowNS)
	}
}

func TestCtrlHoldsInTheMiddle(t *testing.T) {
	c := testCtrl(t, 8, 2000)
	now := int64(0)
	c.maybeStep(now)
	// Backlog of half a batch: not pressure (< cap), not idle (> cap/4).
	if dir := step(c, &now, 4, 0, 4, 100); dir != 0 {
		t.Fatalf("dir = %d, want 0 (hold) at moderate backlog", dir)
	}
	cap, w := c.params()
	if cap != 8 || w != 2000 {
		t.Fatalf("hold moved the operating point to (%d, %d)", cap, w)
	}
}

func TestCtrlBoundsClamp(t *testing.T) {
	c := testCtrl(t, 8, 2000)
	now := int64(0)
	c.maybeStep(now)
	for i := 0; i < 100; i++ {
		step(c, &now, 1024, 5, 1, 900_000)
	}
	if cap, w := c.params(); cap != c.cfg.MaxBatch || w != c.cfg.MaxWindowNS {
		t.Fatalf("after 100 pressured steps: (%d, %d), want clamped to (%d, %d)",
			cap, w, c.cfg.MaxBatch, c.cfg.MaxWindowNS)
	}
	for i := 0; i < 100; i++ {
		step(c, &now, 0, 0, 0, 0)
	}
	if cap, w := c.params(); cap != c.cfg.MinBatch || w != c.cfg.MinWindowNS {
		t.Fatalf("after 100 idle steps: (%d, %d), want clamped to (%d, %d)",
			cap, w, c.cfg.MinBatch, c.cfg.MinWindowNS)
	}
}

func TestCtrlLatencyPressure(t *testing.T) {
	c := testCtrl(t, 8, 0)
	now := int64(0)
	c.maybeStep(now)
	// Interval max latency past half the shed deadline counts as
	// pressure even with an empty queue — requests are about to die.
	if dir := step(c, &now, 0, 0, 1, 600_000); dir != +1 {
		t.Fatalf("dir = %d, want +1 when max latency nears the deadline", dir)
	}
}

func TestCtrlStartClampedIntoBounds(t *testing.T) {
	cfg := CtrlConfig{MinBatch: 2, MaxBatch: 16, MaxWindowNS: 4096}.withDefaults(8)
	c := newCtrl(cfg, 64, 1<<20, -1)
	if cap, w := c.params(); cap != 16 || w != 4096 {
		t.Fatalf("start point (64, 1M) clamped to (%d, %d), want (16, 4096)", cap, w)
	}
	c = newCtrl(cfg, 1, -5, -1)
	if cap, w := c.params(); cap != 2 || w != 0 {
		t.Fatalf("start point (1, -5) clamped to (%d, %d), want (2, 0)", cap, w)
	}
}

func TestCtrlTraceDeterministic(t *testing.T) {
	run := func() []CtrlStep {
		cfg := CtrlConfig{MaxBatch: 32, Trace: true}.withDefaults(8)
		c := newCtrl(cfg, 1, 0, 1_000_000)
		now := int64(0)
		c.maybeStep(now)
		for i := 0; i < 50; i++ {
			// A deterministic mix of pressure, idle, and hold intervals.
			switch i % 3 {
			case 0:
				step(c, &now, 64, 1, 8, 500_000)
			case 1:
				step(c, &now, 0, 0, 0, 0)
			default:
				step(c, &now, 2, 0, 2, 1000)
			}
		}
		return c.trace
	}
	a, b := run(), run()
	if len(a) != 50 || TraceFNV(a) != TraceFNV(b) {
		t.Fatalf("controller trace not reproducible: %d steps, fnv %x vs %x",
			len(a), TraceFNV(a), TraceFNV(b))
	}
}
