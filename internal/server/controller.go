package server

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// The adaptive group-commit controller closes the loop the static
// -maxbatch/-window knobs leave open: the right batch cap and window
// are load-dependent (Izraelevitz et al.'s buffered-write behaviour
// means the amortization sweet spot moves with the offered rate), so
// each shard drives its own (cap, window) pair from the signals its
// worker already produces — queue backlog observed at pop time, the
// batch latency seen this interval, and shed counts — with an
// AIMD-style step rule evaluated on *virtual* time. Every input is a
// pure function of simulated history (no host clocks, no floats), so
// lockstep runs remain bit-reproducible and the controller trace can
// be golden-hash pinned like any other deterministic artifact.
//
// The rule, evaluated once per EvalIntervalNS of shard virtual time:
//
//   pressure — sheds this interval, backlog at pop averaging a full
//       batch or more, or interval max latency within 2x of the shed
//       deadline: additively raise the batch cap (more amortization
//       per commit tail). The window is raised only on the shed
//       signal: under backlog pressure the queue fills batches by
//       itself and a straggler wait is pure added latency, but once
//       requests are dying at the deadline the shard is past
//       saturation and a longer window only deepens amortization
//       (batches already fill before the window matters).
//   idle — no sheds, average backlog under a quarter batch: multipli-
//       catively decay the window (a lone arrival should not wait out
//       a group-commit window sized for a rush hour) and the cap.
//   otherwise — hold.
//
// Additive increase / multiplicative decrease mirrors congestion
// control for the same reason it works there: probe up gently into
// the knee, back off fast when the load evaporates.

// CtrlConfig bounds and paces the per-shard adaptive controller.
// The zero value selects the defaults noted on each field.
type CtrlConfig struct {
	MinBatch int // lower cap bound; 0 selects 1
	// MaxBatch is the upper cap bound; 0 selects the executor's
	// MaxBatch (itself bounded by the store's log sizing).
	MaxBatch    int
	MinWindowNS int64 // lower window bound; 0 is a real value (no wait)
	// MaxWindowNS is the upper window bound; 0 selects 16384 (16 µs).
	MaxWindowNS int64
	// EvalIntervalNS is the controller's step period in virtual ns;
	// 0 selects 8192.
	EvalIntervalNS int64
	// BatchStep is the additive cap increase per pressured step;
	// 0 selects 4.
	BatchStep int
	// WindowStepNS is the additive window increase per pressured step;
	// 0 selects 1024.
	WindowStepNS int64
	// Trace retains one CtrlStep per evaluation (loadsim sets it; the
	// TCP server leaves it off so a long-lived shard never grows an
	// unbounded trace).
	Trace bool
}

func (c CtrlConfig) withDefaults(execMaxBatch int) CtrlConfig {
	if c.MinBatch <= 0 {
		c.MinBatch = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = execMaxBatch
	}
	if c.MaxBatch < c.MinBatch {
		c.MaxBatch = c.MinBatch
	}
	if c.MinWindowNS < 0 {
		c.MinWindowNS = 0
	}
	if c.MaxWindowNS <= 0 {
		c.MaxWindowNS = 16384
	}
	if c.MaxWindowNS < c.MinWindowNS {
		c.MaxWindowNS = c.MinWindowNS
	}
	if c.EvalIntervalNS <= 0 {
		c.EvalIntervalNS = 8192
	}
	if c.BatchStep <= 0 {
		c.BatchStep = 4
	}
	if c.WindowStepNS <= 0 {
		c.WindowStepNS = 1024
	}
	return c
}

// CtrlStep is one controller evaluation: the interval's observed
// signals and the (cap, window) pair chosen from them. VT is the
// virtual time of the evaluation; Dir is +1 (pressure), -1 (idle
// decay), or 0 (hold).
type CtrlStep struct {
	VT       int64
	Pops     int64 // pop observations this interval
	Backlog  int64 // summed queue depth observed at those pops
	Sheds    int64 // deadline sheds this interval
	Batches  int64 // batches executed this interval
	Ops      int64 // requests executed this interval
	MaxLatNS int64 // worst enqueue→completion latency this interval
	Dir      int
	Cap      int   // batch cap after the step
	WindowNS int64 // group-commit window after the step
}

// ctrl is one shard's controller. The shard worker is the only
// writer and the only stepper; Cap/Window are mirrored through
// atomics so the stats path can read them from host goroutines
// without racing the worker.
type ctrl struct {
	cfg      CtrlConfig
	deadline int64 // executor shed deadline (latency pressure reference)

	cap    atomic.Int64
	window atomic.Int64
	steps  atomic.Int64

	nextEval int64

	// Interval accumulators, reset at each step.
	pops    int64
	backlog int64
	sheds   int64
	batches int64
	ops     int64
	maxLat  int64

	trace []CtrlStep
}

// newCtrl seeds the controller at the executor's static operating
// point (clamped into bounds) so an adaptive run starts from the same
// place a static one does and walks away only as the signals demand.
func newCtrl(cfg CtrlConfig, startCap int, startWindow, deadline int64) *ctrl {
	c := &ctrl{cfg: cfg, deadline: deadline}
	c.cap.Store(int64(clampInt(startCap, cfg.MinBatch, cfg.MaxBatch)))
	c.window.Store(clamp64(startWindow, cfg.MinWindowNS, cfg.MaxWindowNS))
	return c
}

// params returns the shard's current (cap, window) operating point.
func (c *ctrl) params() (int, int64) {
	return int(c.cap.Load()), c.window.Load()
}

// observePop records one pop's observed backlog (queue depth before
// the pop) and the sheds it performed.
func (c *ctrl) observePop(backlog int, sheds int) {
	c.pops++
	c.backlog += int64(backlog)
	c.sheds += int64(sheds)
}

// observeSheds records sheds from the window-wait refill pops, which
// are not backlog observations (the depth was already sampled by the
// cycle's first pop).
func (c *ctrl) observeSheds(sheds int) {
	c.sheds += int64(sheds)
}

// observeBatch records one executed batch and its worst request
// latency.
func (c *ctrl) observeBatch(ops int, maxLat int64) {
	c.batches++
	c.ops += int64(ops)
	if maxLat > c.maxLat {
		c.maxLat = maxLat
	}
}

// maybeStep evaluates the AIMD rule if an interval boundary has
// passed, reporting whether it evaluated and which direction it moved
// (+1 pressure, -1 idle decay, 0 hold). It never advances virtual
// time — the controller is pure accounting, like the metrics registry
// — and it is deterministic: every input derives from
// lockstep-scheduled history.
func (c *ctrl) maybeStep(now int64) (stepped bool, dir int) {
	if c.nextEval == 0 {
		c.nextEval = now + c.cfg.EvalIntervalNS
		return false, 0
	}
	if now < c.nextEval {
		return false, 0
	}
	cap64, window := c.cap.Load(), c.window.Load()
	capN := int(cap64)

	// Pressure: load is outrunning the current operating point. Sheds
	// are the late signal; backlog averaging a full batch per pop and
	// interval max latency within 2x of the shed deadline are the
	// early ones.
	pressure := c.sheds > 0 ||
		(c.pops > 0 && c.backlog >= c.pops*cap64) ||
		(c.deadline > 0 && c.maxLat*2 > c.deadline)
	// Idle: nothing shed and the queue is nearly empty at pop time
	// (an interval with no pops at all counts: 0 backlog is idle).
	idle := !pressure && c.backlog*4 <= c.pops*cap64

	switch {
	case pressure:
		dir = +1
		capN = clampInt(capN+c.cfg.BatchStep, c.cfg.MinBatch, c.cfg.MaxBatch)
		if c.sheds > 0 {
			window = clamp64(window+c.cfg.WindowStepNS, c.cfg.MinWindowNS, c.cfg.MaxWindowNS)
		}
	case idle:
		dir = -1
		capN = clampInt(capN-maxInt(1, capN/2), c.cfg.MinBatch, c.cfg.MaxBatch)
		window = clamp64(window/2, c.cfg.MinWindowNS, c.cfg.MaxWindowNS)
	}
	c.cap.Store(int64(capN))
	c.window.Store(window)
	c.steps.Add(1)

	if c.cfg.Trace {
		c.trace = append(c.trace, CtrlStep{
			VT: now, Pops: c.pops, Backlog: c.backlog, Sheds: c.sheds,
			Batches: c.batches, Ops: c.ops, MaxLatNS: c.maxLat,
			Dir: dir, Cap: capN, WindowNS: window,
		})
	}

	c.pops, c.backlog, c.sheds, c.batches, c.ops, c.maxLat = 0, 0, 0, 0, 0, 0
	for c.nextEval <= now {
		c.nextEval += c.cfg.EvalIntervalNS
	}
	return true, dir
}

// TraceFNV folds a controller trace into one FNV-1a hash — the
// fingerprint the determinism tests and the sweep artifact pin. Two
// runs of the same config must produce the same hash; any divergence
// means the controller consumed non-simulated state.
func TraceFNV(steps []CtrlStep) uint64 {
	h := fnv.New64a()
	for _, s := range steps {
		fmt.Fprintf(h, "%d %d %d %d %d %d %d %d %d %d\n",
			s.VT, s.Pops, s.Backlog, s.Sheds, s.Batches, s.Ops, s.MaxLatNS, s.Dir, s.Cap, s.WindowNS)
	}
	return h.Sum64()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
