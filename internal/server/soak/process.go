package soak

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"goptm/internal/server/client"
)

// procTarget soaks a real ptmserve process: real sockets, real
// signals, real files. This is the mode where the durable-ack
// journal earns its keep — SIGKILL destroys the simulated NVM (it
// lives in the process's memory) and only what reached the image and
// WAL files survives.
type procTarget struct {
	cfg  Config
	addr string

	mu     sync.Mutex
	cmd    *exec.Cmd
	waitCh chan error
	drain  chan struct{} // closed when the process logs the drain start

	killed  bool           // a fault was injected since the last awaitDead
	harvest *FlightHarvest // sidecar tail from the last faulted cycle
}

func newProcTarget(cfg Config) (*procTarget, error) {
	if cfg.Bin == "" {
		return nil, fmt.Errorf("soak: process mode needs -bin (path to ptmserve)")
	}
	if _, err := os.Stat(cfg.Bin); err != nil {
		return nil, fmt.Errorf("soak: ptmserve binary: %w", err)
	}
	if cfg.Image == "" {
		return nil, fmt.Errorf("soak: process mode needs -image")
	}
	// Reserve a port once and reuse it every cycle, so clients and
	// the verifier always know where the service lives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	ln.Close()
	return &procTarget{cfg: cfg, addr: addr}, nil
}

func (p *procTarget) start() error {
	args := []string{
		"-listen", p.addr,
		"-image", p.cfg.Image,
		"-algo", p.cfg.Algo,
		"-domain", p.cfg.Domain,
		"-shards", strconv.Itoa(p.cfg.Shards),
		"-heap", strconv.FormatUint(p.cfg.Heap, 10),
		"-deadline", "-1", // soak wants every accepted op executed, not shed
	}
	if p.cfg.NoDurable {
		args = append(args, "-durable=false")
	}
	cmd := exec.Command(p.cfg.Bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	drain := make(chan struct{})
	go watchStdout(stdout, drain, p.cfg.Logf)
	if err := cmd.Start(); err != nil {
		return err
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()

	p.mu.Lock()
	p.cmd, p.waitCh, p.drain = cmd, waitCh, drain
	p.mu.Unlock()

	// Ready when the port answers. Recovery (image + WAL replay) runs
	// before the listener opens, so a successful dial means recovery
	// succeeded; an exit before that means it was refused.
	deadlineAt := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", p.addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return nil
		}
		select {
		case werr := <-waitCh:
			return fmt.Errorf("ptmserve exited during startup (recovery refused?): %v", werr)
		default:
		}
		if time.Now().After(deadlineAt) {
			cmd.Process.Kill()
			return fmt.Errorf("ptmserve not ready after 10s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// watchStdout forwards the child's log and closes drainCh when the
// shutdown drain begins — the save-race fault times its SIGKILL off
// that line to land inside the Crash/SaveImage window.
func watchStdout(r io.Reader, drainCh chan struct{}, logf func(string, ...any)) {
	sc := bufio.NewScanner(r)
	closed := false
	for sc.Scan() {
		line := sc.Text()
		logf("  [ptmserve] %s", line)
		if !closed && strings.Contains(line, "draining") {
			close(drainCh)
			closed = true
		}
	}
}

func (p *procTarget) verifyGet(key string) (bool, uint64, error) {
	c := client.New(client.Config{Addr: p.addr, Seed: 7, MaxTries: 5})
	defer c.Close()
	res, err := c.Get(key)
	if err != nil {
		return false, 0, err
	}
	if !res.Found {
		return false, 0, nil
	}
	v, err := strconv.ParseUint(string(res.Value), 10, 64)
	if err != nil {
		return false, 0, fmt.Errorf("non-numeric payload %q", res.Value)
	}
	return true, v, nil
}

// procTransport adapts the retrying client to the engine's outcome
// vocabulary.
type procTransport struct{ c *client.Client }

func (p *procTarget) transport(i int, seed uint64) transport {
	return &procTransport{c: client.New(client.Config{
		Addr: p.addr, Seed: seed,
		// Tight budgets: during a kill the server is simply gone, and
		// a worker must fail fast to notice the stop signal.
		DialTimeout:    300 * time.Millisecond,
		RequestTimeout: time.Second,
		MaxTries:       3,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     100 * time.Millisecond,
	})}
}

func (t *procTransport) close() { t.c.Close() }

// toOutcome folds a client result: acked, definitely-not-applied, or
// unknown (res.MaybeApplied attempts in flight when the line died).
func toOutcome(res client.Result, err error) outcome {
	if err == nil && res.Acked {
		return outcome{acked: true}
	}
	return outcome{maybe: res.MaybeApplied}
}

func (t *procTransport) set(key string, val uint64) outcome {
	res, err := t.c.Set(key, strconv.AppendUint(nil, val, 10), 0)
	return toOutcome(res, err)
}

func (t *procTransport) get(key string) (outcome, bool, uint64) {
	res, err := t.c.Get(key)
	o := toOutcome(res, err)
	if !o.acked || !res.Found {
		return o, false, 0
	}
	v, perr := strconv.ParseUint(string(res.Value), 10, 64)
	if perr != nil {
		// A non-numeric payload can only mean a torn value — surface
		// it as an impossible observation.
		return o, true, ^uint64(0)
	}
	return o, true, v
}

func (t *procTransport) incr(key string, delta uint64) (outcome, bool, uint64) {
	res, err := t.c.Incr(key, delta)
	return toOutcome(res, err), res.Found, res.NewVal
}

func (t *procTransport) del(key string) (outcome, bool) {
	res, err := t.c.Delete(key)
	return toOutcome(res, err), res.Found
}

func (p *procTarget) kill(mode string, rng *prand) error {
	p.mu.Lock()
	cmd, drain := p.cmd, p.drain
	p.killed = true
	p.mu.Unlock()
	switch mode {
	case "kill":
		return cmd.Process.Kill()
	case "term":
		return cmd.Process.Signal(syscall.SIGTERM)
	case "term-race":
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		time.Sleep(rng.durBetween(0, 250*time.Millisecond))
		cmd.Process.Kill() // may race a clean exit; that's the point
		return nil
	case "save-race":
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		select {
		case <-drain: // the drain has begun; the image save is imminent
		case <-time.After(2 * time.Second):
		}
		time.Sleep(rng.durBetween(0, 20*time.Millisecond))
		cmd.Process.Kill()
		return nil
	}
	return fmt.Errorf("unknown kill mode %q", mode)
}

func (p *procTarget) awaitDead() error {
	p.mu.Lock()
	cmd, waitCh := p.cmd, p.waitCh
	p.mu.Unlock()
	var err error
	select {
	case <-waitCh:
		// Killed processes exit non-zero by design.
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		<-waitCh
		err = fmt.Errorf("ptmserve ignored its signal for 15s")
	}
	// Harvest the flight sidecar the dead process left behind — but
	// only after an injected fault, so the final clean shutdown cannot
	// overwrite the last pre-kill window with its drained state.
	p.mu.Lock()
	if p.killed {
		p.killed = false
		if h := harvestFlight(p.cfg.Image, p.cfg.FlightTail); h != nil {
			p.harvest = h
		}
	}
	p.mu.Unlock()
	return err
}

// flight reports the sidecar tail harvested after the last fault.
func (p *procTarget) flight() *FlightHarvest {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.harvest
}

func (p *procTarget) shutdown() error {
	p.mu.Lock()
	cmd := p.cmd
	p.mu.Unlock()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	return p.awaitDead()
}
