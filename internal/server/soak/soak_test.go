package soak

import (
	"path/filepath"
	"testing"
	"time"
)

// --- oracle unit tests ---

func TestOracleAckedSetMustSurvive(t *testing.T) {
	m := newKeyModel()
	m.ackedSet(7)
	if d := m.observe(true, 7); d != "" {
		t.Fatalf("correct read flagged: %s", d)
	}
	if d := m.observe(false, 0); d == "" {
		t.Fatal("lost acked write not flagged")
	}
}

func TestOracleUncertainSetEitherWorld(t *testing.T) {
	m := newKeyModel()
	m.ackedSet(1)
	m.uncertainSet(2)
	if d := m.observe(true, 1); d != "" {
		t.Fatalf("old world flagged: %s", d)
	}
	// After pinning at 1, the unacked 2 must not resurrect.
	if d := m.observe(true, 2); d == "" {
		t.Fatal("refuted uncertain write resurrected unflagged")
	}
}

func TestOracleUncertainSetNewWorld(t *testing.T) {
	m := newKeyModel()
	m.ackedSet(1)
	m.uncertainSet(2)
	if d := m.observe(true, 2); d != "" {
		t.Fatalf("new world flagged: %s", d)
	}
	if d := m.observe(true, 2); d != "" {
		t.Fatalf("pinned state flagged: %s", d)
	}
}

func TestOracleTornValueFlagged(t *testing.T) {
	m := newKeyModel()
	m.ackedSet(10)
	m.uncertainSet(20)
	if d := m.observe(true, 15); d == "" {
		t.Fatal("torn value (neither old nor new) not flagged")
	}
}

func TestOracleUncertainIncrFanout(t *testing.T) {
	m := newKeyModel()
	m.ackedSet(10)
	m.uncertainIncr(3, 2) // 0, 1, or 2 applications
	for _, ok := range []uint64{10, 13, 16} {
		mm := newKeyModel()
		mm.ackedSet(10)
		mm.uncertainIncr(3, 2)
		if d := mm.observe(true, ok); d != "" {
			t.Fatalf("legal incr outcome %d flagged: %s", ok, d)
		}
	}
	if d := m.observe(true, 19); d == "" {
		t.Fatal("three applications of a twice-attempted incr not flagged")
	}
}

func TestOracleIncrAckConsistency(t *testing.T) {
	m := newKeyModel()
	m.ackedSet(10)
	if d := m.ackedIncr(true, 12, 2); d != "" {
		t.Fatalf("consistent incr flagged: %s", d)
	}
	if d := m.ackedIncr(true, 99, 2); d == "" {
		t.Fatal("inexplicable incr result not flagged")
	}
	m2 := newKeyModel()
	m2.ackedSet(5)
	if d := m2.ackedIncr(false, 0, 1); d == "" {
		t.Fatal("NOT_FOUND incr on a definitely-present key not flagged")
	}
}

func TestOracleDeleteConsistency(t *testing.T) {
	m := newKeyModel()
	if d := m.ackedDelete(true); d == "" {
		t.Fatal("DELETED on a definitely-absent key not flagged")
	}
	m2 := newKeyModel()
	m2.ackedSet(1)
	if d := m2.ackedDelete(false); d == "" {
		t.Fatal("NOT_FOUND delete on a definitely-present key not flagged")
	}
	m3 := newKeyModel()
	m3.ackedSet(1)
	if d := m3.ackedDelete(true); d != "" {
		t.Fatalf("legal delete flagged: %s", d)
	}
	if d := m3.observe(false, 0); d != "" {
		t.Fatalf("read after delete flagged: %s", d)
	}
}

func TestOracleWildSuspendsChecking(t *testing.T) {
	m := newKeyModel()
	m.ackedSet(1)
	for i := 0; i < 10; i++ {
		m.uncertainIncr(1, 5) // blow past maxStates
	}
	if !m.wild {
		t.Fatal("fanout did not go wild")
	}
	if d := m.observe(true, 123456); d != "" {
		t.Fatalf("wild model must accept any observation, flagged: %s", d)
	}
	if m.wild {
		t.Fatal("observation did not re-pin a wild model")
	}
	if d := m.observe(true, 999); d == "" {
		t.Fatal("checking did not resume after re-pinning")
	}
}

// --- engine tests (in-process mode) ---

// fastCfg is a short but real soak: several kill/restart cycles with
// concurrent load in a few seconds.
func fastCfg(t *testing.T) Config {
	return Config{
		Mode:          "inproc",
		Image:         filepath.Join(t.TempDir(), "soak.img"),
		Duration:      4 * time.Second,
		Clients:       3,
		KeysPerClient: 6,
		KillMode:      "mix",
		KillMin:       300 * time.Millisecond,
		KillMax:       600 * time.Millisecond,
		Seed:          42,
		Shards:        2,
		Logf:          t.Logf,
	}
}

func TestInprocSoakZeroViolations(t *testing.T) {
	v, err := Run(fastCfg(t))
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	if !v.OK {
		t.Fatalf("violations on a durable store: %+v", v.Violations)
	}
	if v.Cycles < 2 || v.Kills < 2 {
		t.Fatalf("soak barely ran: cycles=%d kills=%d", v.Cycles, v.Kills)
	}
	if v.Acked == 0 {
		t.Fatal("soak acked nothing; the oracle never checked a durable write")
	}
	t.Logf("verdict: cycles=%d kills=%d ops=%d acked=%d unknown=%d", v.Cycles, v.Kills, v.Ops, v.Acked, v.Unknown)
}

// TestInprocSoakSelfTest proves the gate can fail: on the NoReserve
// domain the WPQ (commit markers included) evaporates at every
// injected power failure, so acked writes are lost and the oracle
// must say so.
func TestInprocSoakSelfTest(t *testing.T) {
	cfg := fastCfg(t)
	cfg.NoDurable = true
	cfg.KillMode = "kill"
	v, err := Run(cfg)
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	if v.OK || len(v.Violations) == 0 {
		t.Fatalf("weakened store soaked clean — the oracle is blind: %+v", v)
	}
	t.Logf("self-test caught %d violations (first: %+v)", len(v.Violations), v.Violations[0])
}

func TestReproRoundTrip(t *testing.T) {
	cfg := fastCfg(t)
	cfg.NoDurable = true
	r := ReproOf(cfg, Verdict{Violations: []Violation{{Cycle: 2, Phase: "recover", Key: "k", Op: "verify", Detail: "x"}}})
	back := ConfigOf(r, "bin", "img")
	if back.Seed != cfg.Seed || back.KillMode != cfg.KillMode || !back.NoDurable ||
		back.Clients != cfg.Clients || back.Duration != cfg.Duration {
		t.Fatalf("repro did not round-trip: %+v", back)
	}
}
