package soak

import (
	"goptm/internal/server"
)

// FlightHarvest is the target's flight-recorder sidecar as the soak
// harness attaches it to a verdict: the tail of the completed-request
// ring plus the counter-sample series from the final pre-kill mirror
// window. A SIGKILLed process cannot be asked what it was doing; the
// harvest is the answer its mirror file left behind.
type FlightHarvest struct {
	Path    string                `json:"path"`
	WallNS  int64                 `json:"wall_ns"` // when the dump was written
	Seq     uint64                `json:"seq"`     // records ever recorded
	Dropped uint64                `json:"dropped"` // lost to ring wrap before the dump
	Records []server.FlightRecord `json:"records"` // newest tail, oldest→newest
	Samples []server.FlightSample `json:"samples"`
}

// defaultFlightTail bounds the records a harvest carries; the full
// ring can be thousands of entries, and the verdict wants the final
// window, not a bulk dump.
const defaultFlightTail = 32

// harvestFlight reads the sidecar mirrored next to image and trims it
// to the newest tail records. Returns nil when no sidecar exists (old
// binary, flight disabled, or the kill landed before the first mirror
// tick) — a missing harvest is not a violation.
func harvestFlight(image string, tail int) *FlightHarvest {
	if image == "" {
		return nil
	}
	if tail <= 0 {
		tail = defaultFlightTail
	}
	path := server.FlightPath(image)
	d, err := server.ReadFlightDump(path)
	if err != nil {
		return nil
	}
	h := &FlightHarvest{
		Path:    path,
		WallNS:  d.WallNS,
		Seq:     d.Seq,
		Dropped: d.Dropped,
		Records: d.Records,
		Samples: d.Samples,
	}
	if len(h.Records) > tail {
		h.Records = h.Records[len(h.Records)-tail:]
	}
	return h
}
