// Package soak drives a live KV service — a real ptmserve process or
// an in-process Store — through kill/restart cycles under concurrent
// load, and checks every acknowledged response against a
// durable-linearizability oracle that spans the restarts.
//
// The oracle is adapted from internal/crashcheck's possible-state
// reasoning: instead of enumerating crash states of a heap image, it
// tracks, per key, the set of durable states the key may legally be
// in given the acknowledgments the client actually observed. An acked
// write collapses the set to one state; an operation whose outcome
// the client could not learn (connection died after the request may
// have been sent) widens it — the write may or may not have landed,
// and both worlds stay live until a later read or acked write pins
// one. A read, including the verification sweep after a recovery,
// must return a member of the set; anything else is a
// durable-linearizability violation: either an acked write was lost
// across the crash, an unacked write tore (applied partially or
// resurrected after being refuted), or recovery invented state.
//
// Keys are partitioned per client worker, so each key has a single
// mutator and its model evolves sequentially — the oracle checks
// durability across crashes, not concurrent interleavings (the
// executor serializes a key's operations on its shard anyway).
package soak

import (
	"fmt"
	"sort"
	"strings"
)

// state is one durable state a key may be in: absent, or present
// with a numeric value (the workload writes only decimal payloads so
// every key supports get/set/incr/delete uniformly).
type state struct {
	present bool
	val     uint64
}

func (s state) String() string {
	if !s.present {
		return "absent"
	}
	return fmt.Sprintf("%d", s.val)
}

// maxStates bounds the possible-set. A pile-up of unknown-outcome
// incrs can grow the set combinatorially; past the bound the model
// goes wild — checking is suspended (never a false positive) until
// the next acked write or observation pins the key again.
const maxStates = 24

// keyModel is the oracle's per-key possible-state set.
type keyModel struct {
	possible []state
	wild     bool
}

func newKeyModel() *keyModel {
	return &keyModel{possible: []state{{}}} // a fresh key is durably absent
}

func (m *keyModel) describe() string {
	if m.wild {
		return "wild"
	}
	parts := make([]string, len(m.possible))
	for i, s := range m.possible {
		parts[i] = s.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// add unions st into the possible set.
func (m *keyModel) add(st state) {
	for _, s := range m.possible {
		if s == st {
			return
		}
	}
	m.possible = append(m.possible, st)
	if len(m.possible) > maxStates {
		m.wild = true
		m.possible = m.possible[:0]
	}
}

// pin collapses the set to exactly st.
func (m *keyModel) pin(st state) {
	m.wild = false
	m.possible = append(m.possible[:0], st)
}

func (m *keyModel) anyPresent() bool {
	for _, s := range m.possible {
		if s.present {
			return true
		}
	}
	return false
}

func (m *keyModel) anyAbsent() bool {
	for _, s := range m.possible {
		if !s.present {
			return true
		}
	}
	return false
}

// ackedSet records a set whose STORED reply the client received: the
// key is now durably that value, whatever it was before.
func (m *keyModel) ackedSet(v uint64) {
	m.pin(state{present: true, val: v})
}

// uncertainSet records a set whose outcome is unknown. The write is
// idempotent, so any number of unknown attempts adds exactly one new
// possible state.
func (m *keyModel) uncertainSet(v uint64) {
	if m.wild {
		return
	}
	m.add(state{present: true, val: v})
}

// ackedDelete records a DELETED/NOT_FOUND reply. The reply's Found
// bit is itself an observation that must be consistent with the set.
func (m *keyModel) ackedDelete(found bool) string {
	if !m.wild {
		if found && !m.anyPresent() {
			return fmt.Sprintf("delete acked DELETED but no possible state is present (possible %s)", m.describe())
		}
		if !found && !m.anyAbsent() {
			return fmt.Sprintf("delete acked NOT_FOUND but every possible state is present (possible %s)", m.describe())
		}
	}
	m.pin(state{})
	return ""
}

// uncertainDelete records a delete whose outcome is unknown: the key
// may now additionally be absent.
func (m *keyModel) uncertainDelete() {
	if m.wild {
		return
	}
	m.add(state{})
}

// ackedIncr records an incr reply. A returned value is a
// simultaneous observation and mutation: some possible state must
// explain it, and the key is then pinned at the result.
func (m *keyModel) ackedIncr(found bool, newVal, delta uint64) string {
	if !found {
		if !m.wild && !m.anyAbsent() {
			return fmt.Sprintf("incr acked NOT_FOUND but every possible state is present (possible %s)", m.describe())
		}
		m.pin(state{})
		return ""
	}
	if !m.wild {
		ok := false
		for _, s := range m.possible {
			if s.present && s.val+delta == newVal {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Sprintf("incr +%d acked %d but no possible state explains it (possible %s)", delta, newVal, m.describe())
		}
	}
	m.pin(state{present: true, val: newVal})
	return ""
}

// uncertainIncr records n wire attempts of incr +delta whose
// outcomes are unknown. Unlike set, incr is not idempotent: each
// attempt independently may have applied, so every present state
// fans out into up to n additional successors.
func (m *keyModel) uncertainIncr(delta uint64, n int) {
	if m.wild {
		return
	}
	base := append([]state(nil), m.possible...)
	for _, s := range base {
		if !s.present {
			continue
		}
		v := s.val
		for k := 0; k < n; k++ {
			v += delta
			m.add(state{present: true, val: v})
			if m.wild {
				return
			}
		}
	}
}

// observe checks a read (a get, or the post-recovery verification
// sweep) against the possible set and pins the observed state. The
// returned string is empty when consistent, else a human-readable
// violation.
func (m *keyModel) observe(found bool, val uint64) string {
	got := state{present: found, val: val}
	if !found {
		got.val = 0
	}
	if !m.wild {
		member := false
		for _, s := range m.possible {
			if s == got {
				member = true
				break
			}
		}
		if !member {
			return fmt.Sprintf("read observed %s, not a possible durable state (possible %s)", got, m.describe())
		}
	}
	m.pin(got)
	return ""
}
