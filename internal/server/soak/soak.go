package soak

import (
	"fmt"
	"sync"
	"time"
)

// Config parameterizes one soak run. Zero values select the defaults
// noted per field.
type Config struct {
	// Mode selects the target: "process" drives a real ptmserve
	// binary over TCP with real signals; "inproc" drives a Store in
	// this process with simulated power failures (deterministic
	// scheduling, no sockets).
	Mode string

	Bin   string // process: path to the ptmserve binary
	Image string // image file path (the WAL rides next to it)

	Duration      time.Duration // total run budget; 0: 30s
	Clients       int           // concurrent workers; 0: 4
	KeysPerClient int           // keys each worker owns; 0: 16

	// KillMode picks the injected fault per cycle: "kill" (SIGKILL
	// mid-load), "term" (clean SIGTERM drain), "term-race" (SIGTERM
	// then SIGKILL during the drain), "save-race" (SIGKILL timed into
	// the image save), or "mix" (rotate through all of them).
	KillMode string
	KillMin  time.Duration // earliest kill after a cycle starts; 0: 2s
	KillMax  time.Duration // latest; 0: 3.5s

	Seed uint64 // workload + kill-timing seed; 0: 1

	// Store shape, forwarded to the target.
	Algo   string // 0: "redo"
	Domain string // 0: "ADR"
	Shards int    // 0: 4
	Heap   uint64 // persistent heap words; 0: 1<<18 (small, fast cycles)

	// FlightTail bounds the flight-recorder records harvested into the
	// verdict after each kill (process mode); 0 selects 32.
	FlightTail int

	// NoDurable weakens the target on purpose — process mode starts
	// ptmserve with -durable=false (no journal, no durable-ack
	// barrier), inproc mode runs the store on the NoReserve domain —
	// so the gate's self-test can prove the oracle actually catches
	// acked-write loss.
	NoDurable bool

	Logf func(format string, args ...any) // progress log; nil: silent
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = "process"
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.KeysPerClient <= 0 {
		c.KeysPerClient = 16
	}
	if c.KillMode == "" {
		c.KillMode = "mix"
	}
	if c.KillMin <= 0 {
		c.KillMin = 2 * time.Second
	}
	if c.KillMax < c.KillMin {
		c.KillMax = c.KillMin + 1500*time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Algo == "" {
		c.Algo = "redo"
	}
	if c.Domain == "" {
		c.Domain = "ADR"
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Heap == 0 {
		c.Heap = 1 << 18
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// mixRotation is the fault sequence "mix" cycles through.
var mixRotation = []string{"kill", "term-race", "save-race", "kill", "term"}

// killModeFor resolves the fault for a 1-based cycle number.
func (c Config) killModeFor(cycle int) string {
	if c.KillMode == "mix" {
		return mixRotation[(cycle-1)%len(mixRotation)]
	}
	return c.KillMode
}

// Violation is one durable-linearizability failure.
type Violation struct {
	Cycle  int    `json:"cycle"`
	Phase  string `json:"phase"` // "run", "recover", or "final"
	Key    string `json:"key"`
	Op     string `json:"op"`
	Detail string `json:"detail"`
}

// Verdict is the run's outcome, JSON-encodable as the one-line
// machine-readable result ptmsoak prints.
type Verdict struct {
	Mode       string      `json:"mode"`
	OK         bool        `json:"ok"`
	Cycles     int         `json:"cycles"` // completed kill/restart cycles
	Kills      int         `json:"kills"`
	Ops        int64       `json:"ops"`      // operations attempted
	Acked      int64       `json:"acked"`    // positively confirmed
	Unknown    int64       `json:"unknown"`  // outcome never learned
	Rejected   int64       `json:"rejected"` // definite rejects (busy, dead server)
	Seed       uint64      `json:"seed"`
	KillMode   string      `json:"killmode"`
	Violations []Violation `json:"violations"`

	// Flight is the last harvested flight-recorder tail — the target's
	// final pre-kill telemetry window. Nil when the target keeps no
	// flight sidecar (inproc mode, flight disabled).
	Flight *FlightHarvest `json:"flight,omitempty"`
}

// Repro is the replayable description of a failed run: the exact
// configuration plus the violations it produced. ptmsoak -repro
// writes it; ptmsoak -replay re-runs it.
type Repro struct {
	Mode          string        `json:"mode"`
	Duration      time.Duration `json:"duration_ns"`
	Clients       int           `json:"clients"`
	KeysPerClient int           `json:"keys_per_client"`
	KillMode      string        `json:"killmode"`
	KillMin       time.Duration `json:"killmin_ns"`
	KillMax       time.Duration `json:"killmax_ns"`
	Seed          uint64        `json:"seed"`
	Algo          string        `json:"algo"`
	Domain        string        `json:"domain"`
	Shards        int           `json:"shards"`
	Heap          uint64        `json:"heap"`
	NoDurable     bool          `json:"no_durable"`
	Violations    []Violation   `json:"violations"`

	// Flight carries the failing run's harvested telemetry tail so a
	// repro file documents what the server was doing when it died.
	Flight *FlightHarvest `json:"flight,omitempty"`
}

// ReproOf captures cfg and the verdict's violations for replay.
func ReproOf(cfg Config, v Verdict) Repro {
	cfg = cfg.withDefaults()
	return Repro{
		Mode: cfg.Mode, Duration: cfg.Duration,
		Clients: cfg.Clients, KeysPerClient: cfg.KeysPerClient,
		KillMode: cfg.KillMode, KillMin: cfg.KillMin, KillMax: cfg.KillMax,
		Seed: cfg.Seed, Algo: cfg.Algo, Domain: cfg.Domain,
		Shards: cfg.Shards, Heap: cfg.Heap, NoDurable: cfg.NoDurable,
		Violations: v.Violations,
		Flight:     v.Flight,
	}
}

// ConfigOf rebuilds the runnable Config from a repro (bin and image
// are environment-specific and supplied fresh).
func ConfigOf(r Repro, bin, image string) Config {
	return Config{
		Mode: r.Mode, Bin: bin, Image: image, Duration: r.Duration,
		Clients: r.Clients, KeysPerClient: r.KeysPerClient,
		KillMode: r.KillMode, KillMin: r.KillMin, KillMax: r.KillMax,
		Seed: r.Seed, Algo: r.Algo, Domain: r.Domain,
		Shards: r.Shards, Heap: r.Heap, NoDurable: r.NoDurable,
	}
}

// prand is a splitmix64 stream — the same generator everywhere in
// the harness so a seed fully determines workload and kill timing.
type prand struct{ s uint64 }

func (r *prand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *prand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *prand) durBetween(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.next()%uint64(hi-lo))
}

// outcome classifies one wire operation for the oracle.
type outcome struct {
	acked bool
	maybe int // attempts whose effect is unknown
}

// transport is a worker's operation channel to the target. Values
// travel as uint64 (the workload writes decimal payloads).
type transport interface {
	set(key string, val uint64) outcome
	get(key string) (o outcome, found bool, val uint64)
	incr(key string, delta uint64) (o outcome, found bool, newVal uint64)
	del(key string) (o outcome, found bool)
	close()
}

// target abstracts the thing being soaked: process or in-process.
type target interface {
	// start boots (or reboots) the service and completes recovery;
	// the error distinguishes operational failures (bad binary) from
	// recovery refusals, which the engine records as violations.
	start() error
	// verifyGet reads key outside the load workers, for the
	// post-recovery sweep.
	verifyGet(key string) (found bool, val uint64, err error)
	// transport returns worker i's operation channel for this cycle.
	transport(i int, seed uint64) transport
	// kill injects the fault for mode; rng times the races.
	kill(mode string, rng *prand) error
	// awaitDead blocks until the service is fully down.
	awaitDead() error
	// flight returns the latest flight-recorder harvest (nil when the
	// target keeps no sidecar).
	flight() *FlightHarvest
	// shutdown stops the service cleanly (final cycle).
	shutdown() error
}

// worker is one load generator: a private transport, a private key
// range, and the oracle models for those keys.
type worker struct {
	id     int
	keys   []string
	models map[string]*keyModel
	rng    prand

	ops, acked, unknown, rejected int64
	violations                    []Violation
}

func newWorker(id, keysPer int, seed uint64) *worker {
	w := &worker{id: id, models: make(map[string]*keyModel), rng: prand{s: seed}}
	for k := 0; k < keysPer; k++ {
		key := fmt.Sprintf("soak-c%d-k%d", id, k)
		w.keys = append(w.keys, key)
		w.models[key] = newKeyModel()
	}
	return w
}

// runCycle generates load until stop closes. Each op's outcome feeds
// the oracle; inconsistencies are recorded, not fatal — the run
// finishes and reports them all.
func (w *worker) runCycle(tr transport, cycle int, stop <-chan struct{}) {
	defer tr.close()
	for {
		select {
		case <-stop:
			return
		default:
		}
		key := w.keys[w.rng.intn(len(w.keys))]
		m := w.models[key]
		w.ops++
		switch p := w.rng.intn(100); {
		case p < 50: // set
			v := w.rng.next() % 1_000_000
			o := tr.set(key, v)
			switch {
			case o.acked:
				w.acked++
				m.ackedSet(v)
			case o.maybe > 0:
				w.unknown++
				m.uncertainSet(v)
			default:
				w.rejected++
			}
		case p < 75: // get
			o, found, val := tr.get(key)
			if !o.acked {
				w.rejected++
				continue
			}
			w.acked++
			if d := m.observe(found, val); d != "" {
				w.violate(cycle, "run", key, "get", d)
			}
		case p < 90: // incr
			delta := uint64(1 + w.rng.intn(3))
			o, found, nv := tr.incr(key, delta)
			switch {
			case o.acked:
				w.acked++
				if d := m.ackedIncr(found, nv, delta); d != "" {
					w.violate(cycle, "run", key, "incr", d)
				}
			case o.maybe > 0:
				w.unknown++
				m.uncertainIncr(delta, o.maybe)
			default:
				w.rejected++
			}
		default: // delete
			o, found := tr.del(key)
			switch {
			case o.acked:
				w.acked++
				if d := m.ackedDelete(found); d != "" {
					w.violate(cycle, "run", key, "delete", d)
				}
			case o.maybe > 0:
				w.unknown++
				m.uncertainDelete()
			default:
				w.rejected++
			}
		}
	}
}

func (w *worker) violate(cycle int, phase, key, op, detail string) {
	w.violations = append(w.violations, Violation{
		Cycle: cycle, Phase: phase, Key: key, Op: op, Detail: detail,
	})
}

// maxViolations caps the report; a broken target would otherwise
// drown the verdict in thousands of identical failures.
const maxViolations = 32

// Run executes the soak and returns the verdict. A non-nil error is
// operational (missing binary, unwritable image path) — oracle
// failures are reported in the verdict, not the error.
func Run(cfg Config) (Verdict, error) {
	cfg = cfg.withDefaults()
	v := Verdict{Mode: cfg.Mode, Seed: cfg.Seed, KillMode: cfg.KillMode}

	var tgt target
	var err error
	switch cfg.Mode {
	case "process":
		tgt, err = newProcTarget(cfg)
	case "inproc":
		tgt, err = newInprocTarget(cfg)
	default:
		err = fmt.Errorf("soak: unknown mode %q", cfg.Mode)
	}
	if err != nil {
		return v, err
	}

	workers := make([]*worker, cfg.Clients)
	seedRng := prand{s: cfg.Seed}
	for i := range workers {
		workers[i] = newWorker(i, cfg.KeysPerClient, seedRng.next())
	}
	killRng := prand{s: seedRng.next()}

	deadline := time.Now().Add(cfg.Duration)
	collect := func() {
		for _, w := range workers {
			v.Ops += w.ops
			v.Acked += w.acked
			v.Unknown += w.unknown
			v.Rejected += w.rejected
			v.Violations = append(v.Violations, w.violations...)
			w.ops, w.acked, w.unknown, w.rejected, w.violations = 0, 0, 0, 0, nil
		}
		if len(v.Violations) > maxViolations {
			v.Violations = v.Violations[:maxViolations]
		}
	}

	verifyAll := func(cycle int, phase string) {
		for _, w := range workers {
			for _, key := range w.keys {
				found, val, err := tgt.verifyGet(key)
				if err != nil {
					w.violate(cycle, phase, key, "verify", fmt.Sprintf("verification read failed: %v", err))
					continue
				}
				if d := w.models[key].observe(found, val); d != "" {
					w.violate(cycle, phase, key, "verify", d)
				}
			}
		}
	}

	cycle := 0
	for time.Now().Before(deadline) {
		cycle++
		if err := tgt.start(); err != nil {
			if cycle == 1 {
				return v, fmt.Errorf("soak: first start: %w", err)
			}
			// A service that cannot come back after an injected fault
			// has lost the whole image — the worst durability failure.
			workers[0].violate(cycle, "recover", "", "start", err.Error())
			collect()
			v.Cycles = cycle - 1
			v.Flight = tgt.flight()
			return v, nil
		}
		verifyAll(cycle, "recover")
		cfg.Logf("cycle %d: recovered and verified %d keys", cycle, cfg.Clients*cfg.KeysPerClient)

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i, w := range workers {
			wg.Add(1)
			go func(i int, w *worker) {
				defer wg.Done()
				w.runCycle(tgt.transport(i, cfg.Seed+uint64(i)*0x9e37), cycle, stop)
			}(i, w)
		}

		wait := killRng.durBetween(cfg.KillMin, cfg.KillMax)
		if rem := time.Until(deadline); rem < wait {
			wait = rem
		}
		time.Sleep(wait)

		mode := cfg.killModeFor(cycle)
		if err := tgt.kill(mode, &killRng); err != nil {
			close(stop)
			wg.Wait()
			collect()
			return v, fmt.Errorf("soak: inject %s: %w", mode, err)
		}
		v.Kills++
		close(stop)
		wg.Wait()
		if err := tgt.awaitDead(); err != nil {
			collect()
			return v, fmt.Errorf("soak: await exit: %w", err)
		}
		collect()
		v.Cycles = cycle
		cfg.Logf("cycle %d: injected %s (%d ops so far, %d acked, %d unknown)", cycle, mode, v.Ops, v.Acked, v.Unknown)
	}

	// Final cycle: recover once more, verify everything, stop clean.
	if err := tgt.start(); err != nil {
		workers[0].violate(cycle+1, "final", "", "start", err.Error())
	} else {
		verifyAll(cycle+1, "final")
		if err := tgt.shutdown(); err != nil {
			collect()
			return v, fmt.Errorf("soak: final shutdown: %w", err)
		}
	}
	collect()
	v.OK = len(v.Violations) == 0
	v.Flight = tgt.flight()
	return v, nil
}
