package soak

import (
	"fmt"
	"sync/atomic"
	"time"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/server"
)

// inprocTarget soaks a Store inside this process. No sockets and no
// real signals: the "kill" is an armed crash hook that detonates a
// simulated power failure inside the next transaction commit, and
// restart is Crash + SaveImage + reopen — the exact sequence the
// crash-recovery unit tests use, but driven continuously under
// concurrent load. Deterministic enough to run in CI's unit-test
// budget, and the natural home for the NoReserve self-test.
type inprocTarget struct {
	cfg   Config
	algo  core.Algo
	dom   durability.Domain
	armed atomic.Bool
	dirty bool // this cycle ends in a kill, not a clean stop

	st   *server.Store
	exec *server.Executor
}

func newInprocTarget(cfg Config) (*inprocTarget, error) {
	if cfg.Image == "" {
		return nil, fmt.Errorf("soak: inproc mode needs -image")
	}
	t := &inprocTarget{cfg: cfg}
	switch cfg.Algo {
	case "redo":
		t.algo = core.OrecLazy
	case "undo":
		t.algo = core.OrecEager
	case "htm":
		t.algo = core.AlgoHTM
	default:
		return nil, fmt.Errorf("soak: unknown algo %q", cfg.Algo)
	}
	var err error
	if t.dom, err = durability.Parse(cfg.Domain); err != nil {
		return nil, err
	}
	if cfg.NoDurable {
		// The deliberately broken configuration: no durable commit
		// point, so the WPQ — commit markers included — evaporates at
		// every injected power failure and the oracle must catch the
		// acked writes that vanish with it.
		t.dom = durability.NoReserve
	}
	return t, nil
}

func (t *inprocTarget) start() (err error) {
	// Recovery of a deliberately weakened store can fail arbitrarily
	// (the heap image may be torn mid-structure); a panic here is a
	// recovery refusal, not a harness bug.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovery panicked: %v", r)
		}
	}()
	st, err := server.OpenOrRecover(t.cfg.Image, server.StoreConfig{
		Algo: t.algo, Domain: t.dom, Shards: t.cfg.Shards,
		Heap: t.cfg.Heap, UnsafeDomain: t.cfg.NoDurable,
	})
	if err != nil {
		return err
	}
	t.armed.Store(false)
	st.TM().SetCrashHook(func(p string, th *core.Thread) {
		if t.armed.Load() {
			panic(core.PowerFailure{Point: p})
		}
	})
	t.st = st
	t.exec = server.NewExecutor(st, server.ExecConfig{
		Shards: t.cfg.Shards, DeadlineNS: -1, IdleSleep: 20 * time.Microsecond,
	})
	return nil
}

// submit pushes one request through the executor with a host-time
// bound. A request stuck on a dead shard (its worker died at the
// injected power failure) times out as maybe-applied — its commit
// marker may or may not have made the durability domain.
func (t *inprocTarget) submit(req *server.Request, timeout time.Duration) outcome {
	req.Done = make(chan struct{})
	if !t.exec.Submit(req) {
		return outcome{} // full queue or draining: never enqueued
	}
	select {
	case <-req.Done:
		if req.Shed || req.Err == server.ErrDraining {
			return outcome{} // dropped without executing
		}
		return outcome{acked: true}
	case <-time.After(timeout):
		return outcome{maybe: 1}
	}
}

func (t *inprocTarget) verifyGet(key string) (bool, uint64, error) {
	req := &server.Request{Op: server.OpGet, Key: []byte(key)}
	o := t.submit(req, 5*time.Second)
	if !o.acked {
		return false, 0, fmt.Errorf("verification get did not complete")
	}
	if !req.Found {
		return false, 0, nil
	}
	var v uint64
	if _, err := fmt.Sscanf(string(req.Val), "%d", &v); err != nil {
		return false, 0, fmt.Errorf("non-numeric payload %q", req.Val)
	}
	return true, v, nil
}

type inprocTransport struct{ t *inprocTarget }

func (t *inprocTarget) transport(i int, seed uint64) transport {
	return &inprocTransport{t: t}
}

func (tr *inprocTransport) close() {}

const opTimeout = 500 * time.Millisecond

func (tr *inprocTransport) set(key string, val uint64) outcome {
	req := &server.Request{Op: server.OpSet, Key: []byte(key), Value: fmt.Appendf(nil, "%d", val)}
	o := tr.t.submit(req, opTimeout)
	if o.acked && req.Err != nil {
		return outcome{maybe: 1} // executed but refused; treat as unknown
	}
	return o
}

func (tr *inprocTransport) get(key string) (outcome, bool, uint64) {
	req := &server.Request{Op: server.OpGet, Key: []byte(key)}
	o := tr.t.submit(req, opTimeout)
	if !o.acked || !req.Found {
		return o, false, 0
	}
	var v uint64
	if _, err := fmt.Sscanf(string(req.Val), "%d", &v); err != nil {
		return o, true, ^uint64(0) // torn payload: impossible observation
	}
	return o, true, v
}

func (tr *inprocTransport) incr(key string, delta uint64) (outcome, bool, uint64) {
	req := &server.Request{Op: server.OpIncr, Key: []byte(key), Delta: delta}
	o := tr.t.submit(req, opTimeout)
	if o.acked && req.Err != nil {
		return outcome{maybe: 1}, false, 0
	}
	return o, req.Found, req.NewVal
}

func (tr *inprocTransport) del(key string) (outcome, bool) {
	req := &server.Request{Op: server.OpDelete, Key: []byte(key)}
	o := tr.t.submit(req, opTimeout)
	if o.acked && req.Err != nil {
		return outcome{maybe: 1}, false
	}
	return o, req.Found
}

// kill arms the crash hook: the next protocol point any shard thread
// reaches detonates a power failure there. "term" alone stops clean;
// every other mode is the same in-process fault (there is no signal
// delivery or image-save race without a real process).
func (t *inprocTarget) kill(mode string, rng *prand) error {
	if mode == "term" {
		return nil
	}
	time.Sleep(rng.durBetween(0, 5*time.Millisecond)) // vary the cut point
	t.dirty = true
	t.armed.Store(true)
	return nil
}

// awaitDead completes the cycle's power-failure semantics: drain the
// executor (dead shards are already gone), cut the device at the
// latest shard timestamp, and persist the post-failure image the next
// start recovers from.
func (t *inprocTarget) awaitDead() error {
	t.exec.Drain()
	var vt int64
	for i := 0; i < t.exec.Config().Shards; i++ {
		if v := t.exec.ShardVT(i); v > vt {
			vt = v
		}
	}
	t.armed.Store(false)
	dirty := t.dirty
	t.dirty = false
	if t.cfg.NoDurable && dirty {
		// The weakened target's injected fault: a kill bypasses image
		// persistence entirely, exactly like SIGKILLing a ptmserve
		// running with -durable=false. Every write acked since the
		// last clean stop evaporates, and the restart resurrects the
		// previous image (or a fresh store) — the self-test expects
		// the oracle to flag every one of those lost acks.
		return nil
	}
	t.st.Crash(vt)
	return t.st.SaveImage(t.cfg.Image)
}

func (t *inprocTarget) shutdown() error { return t.awaitDead() }

// flight: the in-process target dies by simulated power failure, not
// SIGKILL, and keeps no sidecar — there is nothing to harvest.
func (t *inprocTarget) flight() *FlightHarvest { return nil }
