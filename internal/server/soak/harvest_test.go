package soak

import (
	"path/filepath"
	"testing"
	"time"

	"goptm/internal/server"
)

// TestHarvestFlight: a sidecar written by the server-side recorder
// round-trips into a trimmed harvest; absence is nil, not an error.
func TestHarvestFlight(t *testing.T) {
	dir := t.TempDir()
	image := filepath.Join(dir, "kv.img")

	if h := harvestFlight(image, 0); h != nil {
		t.Fatalf("harvest without a sidecar: %+v", h)
	}
	if h := harvestFlight("", 0); h != nil {
		t.Fatal("harvest with no image path should be nil")
	}

	f := server.NewFlightRecorder(64)
	f.StartMirror(server.FlightPath(image), time.Hour, nil) // no ticks; Stop dumps
	for i := 0; i < 50; i++ {
		f.Record(server.FlightRecord{Op: 1, Shard: uint16(i % 4), LatNS: int64(i)})
	}
	f.AddSample(server.FlightSample{QueueDepth: 3, Counters: map[string]int64{"commits": 9}})
	f.Stop()

	h := harvestFlight(image, 8)
	if h == nil {
		t.Fatal("harvest came back nil despite a sidecar")
	}
	if h.Seq != 50 {
		t.Fatalf("seq = %d, want 50", h.Seq)
	}
	if len(h.Records) != 8 {
		t.Fatalf("tail kept %d records, want 8", len(h.Records))
	}
	if got := h.Records[len(h.Records)-1].Seq; got != 50 {
		t.Fatalf("tail ends at seq %d, want the newest (50)", got)
	}
	if len(h.Samples) != 1 || h.Samples[0].Counters["commits"] != 9 {
		t.Fatalf("samples lost: %+v", h.Samples)
	}

	// Default tail applies when unset.
	if h := harvestFlight(image, 0); len(h.Records) != defaultFlightTail {
		t.Fatalf("default tail kept %d, want %d", len(h.Records), defaultFlightTail)
	}
}
