package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"goptm/internal/core"
)

func testStore(t *testing.T, cfg StoreConfig) *Store {
	t.Helper()
	if cfg.Heap == 0 {
		cfg.Heap = 1 << 18 // keep unit-test images small
	}
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// submit sends one request synchronously through the executor.
func submit(t *testing.T, exec *Executor, req *Request) *Request {
	t.Helper()
	req.Done = make(chan struct{})
	if !exec.Submit(req) {
		t.Fatalf("submit rejected: %+v", req)
	}
	<-req.Done
	return req
}

func TestExecutorOps(t *testing.T) {
	st := testStore(t, StoreConfig{Shards: 2})
	exec := NewExecutor(st, ExecConfig{DeadlineNS: -1})

	if r := submit(t, exec, &Request{Op: OpSet, Key: []byte("k1"), Value: []byte("v1"), Flags: 5}); r.Err != nil {
		t.Fatalf("set: %v", r.Err)
	}
	r := submit(t, exec, &Request{Op: OpGet, Key: []byte("k1")})
	if !r.Found || !bytes.Equal(r.Val, []byte("v1")) || r.ValFlags != 5 {
		t.Fatalf("get k1 = %q, %d, found=%v", r.Val, r.ValFlags, r.Found)
	}
	if r := submit(t, exec, &Request{Op: OpGet, Key: []byte("missing")}); r.Found {
		t.Fatal("phantom key")
	}
	submit(t, exec, &Request{Op: OpSet, Key: []byte("n"), Value: []byte("9")})
	r = submit(t, exec, &Request{Op: OpIncr, Key: []byte("n"), Delta: 33})
	if !r.Found || r.Err != nil || r.NewVal != 42 {
		t.Fatalf("incr = %d, found=%v, err=%v", r.NewVal, r.Found, r.Err)
	}
	if r := submit(t, exec, &Request{Op: OpDelete, Key: []byte("k1")}); !r.Found {
		t.Fatal("delete k1: not found")
	}
	if r := submit(t, exec, &Request{Op: OpGet, Key: []byte("k1")}); r.Found {
		t.Fatal("k1 survived delete")
	}

	exec.Drain()
	es := exec.Stats()
	if es.Executed != 7 {
		t.Fatalf("executed = %d, want 7", es.Executed)
	}
	if es.Latency.Count() != 7 {
		t.Fatalf("latency samples = %d, want 7", es.Latency.Count())
	}
	if exec.Submit(&Request{Op: OpGet, Key: []byte("k1")}) {
		t.Fatal("submit accepted after drain")
	}
}

// TestImageRoundTrip is clean persistence: populate through the
// executor, drain, power-fail, save, reopen, verify every key.
func TestImageRoundTrip(t *testing.T) {
	st := testStore(t, StoreConfig{Shards: 2})
	exec := NewExecutor(st, ExecConfig{DeadlineNS: -1})
	const n = 100
	for i := 0; i < n; i++ {
		r := submit(t, exec, &Request{
			Op:    OpSet,
			Key:   fmt.Appendf(nil, "key-%d", i),
			Value: fmt.Appendf(nil, "value-%d", i),
			Flags: uint32(i),
		})
		if r.Err != nil {
			t.Fatalf("set %d: %v", i, r.Err)
		}
	}
	exec.Drain()

	var vt int64
	for i := 0; i < exec.Config().Shards; i++ {
		if v := exec.ShardVT(i); v > vt {
			vt = v
		}
	}
	st.Crash(vt)
	path := filepath.Join(t.TempDir(), "kv.img")
	if err := st.SaveImage(path); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Recovered {
		t.Fatal("reopened store not marked recovered")
	}
	th := st2.TM().Thread(0)
	defer th.Detach()
	kv := st2.KV()
	th.Atomic(func(tx *core.Tx) {
		if got := kv.Len(tx); got != n {
			t.Fatalf("len after reopen = %d, want %d", got, n)
		}
		for i := 0; i < n; i++ {
			v, flags, ok := kv.Get(tx, fmt.Appendf(nil, "key-%d", i))
			want := fmt.Appendf(nil, "value-%d", i)
			if !ok || !bytes.Equal(v, want) || flags != uint32(i) {
				t.Fatalf("key-%d after reopen = %q, %d, %v", i, v, flags, ok)
			}
		}
	})
}

// TestRecoveryMidBatch cuts the power inside an executor batch commit
// and asserts durable linearizability across the image round trip:
// everything acknowledged before the crash survives, and the cut
// batch either committed atomically (marker durable, redo replayed)
// or vanished atomically — never partially.
func TestRecoveryMidBatch(t *testing.T) {
	for _, tc := range []struct {
		point       string
		wantSurvive bool // must the cut batch's first transaction survive?
	}{
		{"lazy:post-marker", true}, // commit marker durable: redo replay must finish it
		{"lazy:pre-marker", false}, // no marker: recovery must discard the log
	} {
		t.Run(tc.point, func(t *testing.T) {
			st := testStore(t, StoreConfig{Shards: 1}) // one shard: FIFO commit order
			exec := NewExecutor(st, ExecConfig{DeadlineNS: -1})

			// Phase 1: acknowledged writes — these must survive anything.
			const acked = 40
			for i := 0; i < acked; i++ {
				r := submit(t, exec, &Request{
					Op:    OpSet,
					Key:   fmt.Appendf(nil, "acked-%d", i),
					Value: fmt.Appendf(nil, "val-%d", i),
				})
				if r.Err != nil {
					t.Fatal(r.Err)
				}
			}

			// Phase 2: arm the crash hook, then feed unacknowledged
			// writes; the hook fires inside the next batch's commit.
			st.TM().SetCrashHook(func(p string, th *core.Thread) {
				if p == tc.point {
					panic(core.PowerFailure{Point: p})
				}
			})
			const cut = 8
			for i := 0; i < cut; i++ {
				exec.Submit(&Request{
					Op:    OpSet,
					Key:   fmt.Appendf(nil, "cut-%d", i),
					Value: fmt.Appendf(nil, "cutval-%d", i),
				})
			}
			exec.Drain() // the worker dies at the injected power failure

			var vt int64
			for i := 0; i < exec.Config().Shards; i++ {
				if v := exec.ShardVT(i); v > vt {
					vt = v
				}
			}
			st.Crash(vt)
			path := filepath.Join(t.TempDir(), "crash.img")
			if err := st.SaveImage(path); err != nil {
				t.Fatal(err)
			}
			st2, err := OpenImage(path)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantSurvive && st2.Recovery.RedoReplayed == 0 {
				t.Fatalf("post-marker crash recovered without redo replay: %+v", st2.Recovery)
			}

			th := st2.TM().Thread(0)
			defer th.Detach()
			kv := st2.KV()
			th.Atomic(func(tx *core.Tx) {
				for i := 0; i < acked; i++ {
					v, _, ok := kv.Get(tx, fmt.Appendf(nil, "acked-%d", i))
					if !ok || !bytes.Equal(v, fmt.Appendf(nil, "val-%d", i)) {
						t.Fatalf("acknowledged key acked-%d lost or corrupt after crash: %q, %v", i, v, ok)
					}
				}
				// The single shard commits batches in FIFO order, so the
				// surviving cut keys must be a prefix of submission order.
				present := make([]bool, cut)
				for i := 0; i < cut; i++ {
					v, _, ok := kv.Get(tx, fmt.Appendf(nil, "cut-%d", i))
					if ok && !bytes.Equal(v, fmt.Appendf(nil, "cutval-%d", i)) {
						t.Fatalf("cut-%d present but corrupt: %q", i, v)
					}
					present[i] = ok
				}
				for i := 1; i < cut; i++ {
					if present[i] && !present[i-1] {
						t.Fatalf("torn batch order: cut-%d survived but cut-%d did not (%v)", i, i-1, present)
					}
				}
				if tc.wantSurvive && !present[0] {
					t.Fatalf("crash after durable marker, but cut-0 did not survive recovery (%v)", present)
				}
				if !tc.wantSurvive && present[0] {
					t.Fatalf("crash before marker, but cut batch survived (%v)", present)
				}
			})
		})
	}
}

// TestServerTCP runs the whole stack in-process: real sockets, the
// memcached text protocol, graceful shutdown with an image save, and
// a verified reopen.
func TestServerTCP(t *testing.T) {
	st := testStore(t, StoreConfig{Shards: 2})
	exec := NewExecutor(st, ExecConfig{DeadlineNS: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(st, exec, ln)

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	send := func(format string, args ...any) {
		t.Helper()
		if _, err := fmt.Fprintf(conn, format, args...); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(want string) {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading (want %q): %v", want, err)
		}
		if got := string(bytes.TrimRight([]byte(line), "\r\n")); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}

	send("set greeting 7 0 5\r\nhello\r\n")
	expect("STORED")
	send("get greeting\r\n")
	expect("VALUE greeting 7 5")
	expect("hello")
	expect("END")
	send("set n 0 0 2\r\n41\r\n")
	expect("STORED")
	send("incr n 1\r\n")
	expect("42")
	send("incr missing 1\r\n")
	expect("NOT_FOUND")
	send("delete greeting\r\n")
	expect("DELETED")
	send("delete greeting\r\n")
	expect("NOT_FOUND")
	send("get greeting\r\n")
	expect("END")
	send("bogus\r\n")
	expect("ERROR")
	send("set big 0 0 1048576\r\n") // over MaxValueBytes: rejected, payload consumed
	send("%s\r\n", bytes.Repeat([]byte("x"), 1048576))
	expect("SERVER_ERROR object too large for cache")
	send("get n\r\n") // the stream is still parseable after the rejection
	expect("VALUE n 0 2")
	expect("42")
	expect("END")
	conn.Close()

	srv.Shutdown()
	var vt int64
	for i := 0; i < exec.Config().Shards; i++ {
		if v := exec.ShardVT(i); v > vt {
			vt = v
		}
	}
	st.Crash(vt)
	path := filepath.Join(t.TempDir(), "tcp.img")
	if err := st.SaveImage(path); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenImage(path)
	if err != nil {
		t.Fatal(err)
	}
	th := st2.TM().Thread(0)
	defer th.Detach()
	kv := st2.KV()
	th.Atomic(func(tx *core.Tx) {
		v, _, ok := kv.Get(tx, []byte("n"))
		if !ok || !bytes.Equal(v, []byte("42")) {
			t.Fatalf("n after shutdown/reopen = %q, %v", v, ok)
		}
		if _, _, ok := kv.Get(tx, []byte("greeting")); ok {
			t.Fatal("deleted key resurrected by recovery")
		}
	})
}
