package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"

	"goptm/internal/metrics"
)

// The TCP frontend speaks the memcached text protocol subset the
// paper's serving experiment exercises: get, set, delete, incr, stats,
// quit. Connection goroutines are ordinary host goroutines — they
// never touch the simulated machine directly.
//
// Each connection is *pipelined*: a reader goroutine parses ahead,
// submitting every parsed command to the executor immediately, while a
// writer goroutine renders responses strictly in command order (FIFO
// per connection, as the memcached protocol requires). A single
// client that writes a burst of commands therefore has many requests
// in flight at once — which is what lets one connection fill
// group-commit batches; the old parse→submit→block-per-command loop
// could never present more than one request to a shard at a time.
// Multi-key gets fan out the same way: every key's request is
// submitted to its shard before the first response is awaited, so
// cross-shard reads proceed concurrently and the replies are gathered
// back in key order.

// maxPipeline bounds parsed-ahead commands per connection; the reader
// blocks once the writer falls this far behind, so one hostile
// connection cannot queue unbounded parsed state.
const maxPipeline = 128

// pending is one parsed command waiting its turn on the response
// stream: the submitted requests to await (in submit order) and the
// render closure that writes the response once they complete. A nil
// render writes nothing (noreply). quit closes the connection after
// rendering.
type pending struct {
	wait   []*Request
	render func(w *bufio.Writer)
	quit   bool
}

// Server is the TCP frontend over a Store and its Executor.
type Server struct {
	st   *Store
	exec *Executor
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Serve starts accepting on ln. It owns ln and the executor: Shutdown
// closes both.
func Serve(st *Store, exec *Executor, ln net.Listener) *Server {
	srv := &Server{st: st, exec: exec, ln: ln, conns: make(map[net.Conn]struct{})}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv
}

// Addr returns the listener address (tests bind to port 0).
func (srv *Server) Addr() net.Addr { return srv.ln.Addr() }

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		srv.mu.Lock()
		if srv.closed {
			srv.mu.Unlock()
			conn.Close()
			return
		}
		srv.conns[conn] = struct{}{}
		srv.mu.Unlock()
		srv.wg.Add(1)
		go srv.serveConn(conn)
	}
}

// Shutdown drains gracefully: stop accepting, close the connections,
// wait for in-flight commands, drain the executor. The store is then
// quiescent and can be crashed and imaged.
func (srv *Server) Shutdown() {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return
	}
	srv.closed = true
	conns := make([]net.Conn, 0, len(srv.conns))
	for c := range srv.conns {
		conns = append(conns, c)
	}
	srv.mu.Unlock()
	srv.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	srv.wg.Wait()
	srv.exec.Drain()
}

var crlf = []byte("\r\n")

// serveConn is the reader half of a connection: parse commands ahead,
// submit their requests, and hand each parsed command to the writer
// in order. Responses are the writer's job.
func (srv *Server) serveConn(conn net.Conn) {
	defer srv.wg.Done()
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, conn)
		srv.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	pend := make(chan *pending, maxPipeline)
	done := make(chan struct{})
	srv.wg.Add(1)
	go srv.writeLoop(conn, pend, done)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			break
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(line) == 0 {
			continue
		}
		// Fields of a whitespace-only line is empty even though the line
		// is not; dispatching would index fields[0].
		fields := bytes.Fields(line)
		if len(fields) == 0 {
			pend <- respond("ERROR\r\n")
			continue
		}
		p, fatal := srv.parse(fields, r, pend)
		if p != nil {
			pend <- p
		}
		if fatal != nil || (p != nil && p.quit) {
			break // connection can no longer be parsed, or quit
		}
	}
	close(pend)
	// Let the writer finish rendering what was pipelined before the
	// deferred close tears the connection down under it.
	<-done
}

// writeLoop is the writer half: render responses strictly in parse
// order, waiting for each command's requests to complete first.
// Responses for a pipelined burst are flushed together once the
// pipeline momentarily empties. After a write error the loop keeps
// draining the channel (never stranding the reader on a full
// pipeline) without rendering.
func (srv *Server) writeLoop(conn net.Conn, pend chan *pending, done chan struct{}) {
	defer srv.wg.Done()
	defer close(done)
	w := bufio.NewWriter(conn)
	broken := false
	for p := range pend {
		if !broken {
			for _, req := range p.wait {
				<-req.Done
			}
			if p.render != nil {
				p.render(w)
			}
			if len(pend) == 0 || p.quit {
				if err := w.Flush(); err != nil {
					broken = true
				}
			}
		}
		if p.quit && !broken {
			// Unblock the reader (it stopped at quit already) and refuse
			// anything a misbehaving client pipelined after quit.
			broken = true
			conn.Close()
		}
	}
	if !broken {
		w.Flush()
	}
}

// respond builds a pending that waits on nothing and writes a fixed
// protocol reply.
func respond(s string) *pending {
	return &pending{render: func(w *bufio.Writer) { io.WriteString(w, s) }}
}

// parse consumes one command (and any payload) from the stream and
// returns the pending response. A non-nil fatal means the connection
// can no longer be parsed and must drop; protocol-level problems are
// reported in-band (ERROR / CLIENT_ERROR ...) via the pending.
func (srv *Server) parse(fields [][]byte, r *bufio.Reader, pend chan *pending) (p *pending, fatal error) {
	cmd := string(fields[0])
	switch cmd {
	case "quit":
		return &pending{quit: true}, nil

	case "get", "gets":
		if len(fields) < 2 {
			return respond("ERROR\r\n"), nil
		}
		// Fan every key out to its shard before awaiting any reply:
		// cross-shard keys execute concurrently, and the writer gathers
		// responses back in request order.
		keys := fields[1:]
		reqs := make([]*Request, len(keys))
		p := &pending{}
		allSubmitted := true
		for i, key := range keys {
			req := &Request{Op: OpGet, Key: key, Done: make(chan struct{})}
			req.Trace = srv.exec.TraceStart(0) // wall clock; parse boundary
			if !srv.exec.Submit(req) {
				allSubmitted = false
				break
			}
			reqs[i] = req
			p.wait = append(p.wait, req)
		}
		p.render = func(w *bufio.Writer) {
			if !allSubmitted {
				fmt.Fprintf(w, "SERVER_ERROR busy\r\n")
				return
			}
			for i, req := range reqs {
				if req.Shed || req.Err == ErrDraining {
					fmt.Fprintf(w, "SERVER_ERROR busy\r\n")
					return
				}
				if req.Found {
					fmt.Fprintf(w, "VALUE %s %d %d\r\n", keys[i], req.ValFlags, len(req.Val))
					w.Write(req.Val)
					w.Write(crlf)
				}
			}
			fmt.Fprintf(w, "END\r\n")
		}
		return p, nil

	case "set":
		// set <key> <flags> <exptime> <bytes> [noreply]
		if len(fields) < 5 {
			return respond("ERROR\r\n"), nil
		}
		flags, ferr := strconv.ParseUint(string(fields[2]), 10, 32)
		nbytes, berr := strconv.Atoi(string(fields[4]))
		if ferr != nil || berr != nil || nbytes < 0 {
			return respond("CLIENT_ERROR bad command line format\r\n"), nil
		}
		noreply := len(fields) >= 6 && string(fields[5]) == "noreply"
		if nbytes > srv.st.cfg.MaxValueBytes {
			// The declared length is attacker-controlled: consume the
			// payload to keep the stream parseable, but never allocate
			// for it (a hostile "set k 0 0 1099511627776" must not OOM
			// the server). The rejection goes to the writer *before* the
			// discard, so a client that never streams the payload (or
			// streams it slowly) still learns it was rejected.
			if !noreply {
				pend <- respond("SERVER_ERROR object too large for cache\r\n")
			}
			if _, err := io.CopyN(io.Discard, r, int64(nbytes)+2); err != nil {
				return nil, err
			}
			return nil, nil
		}
		// The payload follows regardless of validity; it must be
		// consumed to keep the stream parseable. A disconnect before the
		// full payload+CRLF arrives returns fatal and drops the
		// connection *without submitting* — a half-written body can
		// never reach a shard queue, so nothing is ever
		// acked-but-unsubmitted.
		payload := make([]byte, nbytes+2)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		if !bytes.HasSuffix(payload, crlf) {
			return respond("CLIENT_ERROR bad data chunk\r\n"), nil
		}
		val := payload[:nbytes]
		req := &Request{Op: OpSet, Key: fields[1], Value: val, Flags: uint32(flags)}
		return srv.submitCmd(req, noreply, func(w *bufio.Writer) {
			switch {
			case errors.Is(req.Err, ErrDurable):
				fmt.Fprintf(w, "SERVER_ERROR persistence failure\r\n")
			case req.Err != nil:
				fmt.Fprintf(w, "CLIENT_ERROR %v\r\n", req.Err)
			default:
				fmt.Fprintf(w, "STORED\r\n")
			}
		}), nil

	case "delete":
		if len(fields) < 2 {
			return respond("ERROR\r\n"), nil
		}
		noreply := len(fields) >= 3 && string(fields[2]) == "noreply"
		req := &Request{Op: OpDelete, Key: fields[1]}
		return srv.submitCmd(req, noreply, func(w *bufio.Writer) {
			switch {
			case errors.Is(req.Err, ErrDurable):
				fmt.Fprintf(w, "SERVER_ERROR persistence failure\r\n")
			case req.Found:
				fmt.Fprintf(w, "DELETED\r\n")
			default:
				fmt.Fprintf(w, "NOT_FOUND\r\n")
			}
		}), nil

	case "incr":
		if len(fields) < 3 {
			return respond("ERROR\r\n"), nil
		}
		delta, derr := strconv.ParseUint(string(fields[2]), 10, 64)
		if derr != nil {
			return respond("CLIENT_ERROR invalid numeric delta argument\r\n"), nil
		}
		req := &Request{Op: OpIncr, Key: fields[1], Delta: delta}
		return srv.submitCmd(req, false, func(w *bufio.Writer) {
			switch {
			case errors.Is(req.Err, ErrDurable):
				fmt.Fprintf(w, "SERVER_ERROR persistence failure\r\n")
			case req.Err != nil:
				fmt.Fprintf(w, "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n")
			case !req.Found:
				fmt.Fprintf(w, "NOT_FOUND\r\n")
			default:
				fmt.Fprintf(w, "%d\r\n", req.NewVal)
			}
		}), nil

	case "stats":
		return &pending{render: srv.writeStats}, nil

	default:
		return respond("ERROR\r\n"), nil
	}
}

// submitCmd submits one mutation request and builds its pending: a
// rejected or shed request renders SERVER_ERROR busy; noreply renders
// nothing (and, with no response to order, does not hold the response
// stream — the request is fire-and-forget).
func (srv *Server) submitCmd(req *Request, noreply bool, render func(w *bufio.Writer)) *pending {
	if !noreply {
		req.Done = make(chan struct{})
	}
	req.Trace = srv.exec.TraceStart(0) // wall clock; parse boundary
	if !srv.exec.Submit(req) {
		if noreply {
			return nil
		}
		return respond("SERVER_ERROR busy\r\n")
	}
	if noreply {
		return nil
	}
	return &pending{wait: []*Request{req}, render: func(w *bufio.Writer) {
		if req.Shed || req.Err == ErrDraining {
			fmt.Fprintf(w, "SERVER_ERROR busy\r\n")
			return
		}
		render(w)
	}}
}

// statLines assembles the full stats key set in sorted order. Every
// key is always present — the controller gauges read 0 and the
// per-shard operating points read the static configuration when no
// controller runs — so a monitoring client can parse the response
// against a fixed schema (the stats test pins exactly this key set).
func (srv *Server) statLines() []string {
	met := srv.st.tm.Metrics()
	lines := []string{
		fmt.Sprintf("batched_ops_total %d", met.Get(metrics.CtrSrvBatchedOps)),
		fmt.Sprintf("batches_total %d", met.Get(metrics.CtrSrvBatches)),
		fmt.Sprintf("cmd_total %d", met.Get(metrics.CtrSrvRequests)),
		fmt.Sprintf("ctrl_steps %d", met.Get(metrics.CtrSrvCtrlSteps)),
		fmt.Sprintf("ctrl_steps_down %d", met.Get(metrics.CtrSrvCtrlDown)),
		fmt.Sprintf("ctrl_steps_up %d", met.Get(metrics.CtrSrvCtrlUp)),
		fmt.Sprintf("queue_depth %d", srv.exec.QueueDepth()),
		fmt.Sprintf("shed_total %d", met.Get(metrics.CtrSrvShed)),
		fmt.Sprintf("txn_aborts %d", met.Get(metrics.CtrAborts)),
		fmt.Sprintf("txn_commits %d", met.Get(metrics.CtrCommits)),
	}
	for i := 0; i < srv.exec.NumShards(); i++ {
		cap, window := srv.exec.ShardParams(i)
		var steps int64
		if _, _, s, ok := srv.exec.ShardCtrl(i); ok {
			steps = s
		}
		lines = append(lines,
			fmt.Sprintf("shard%d_batch_cap %d", i, cap),
			fmt.Sprintf("shard%d_ctrl_steps %d", i, steps),
			fmt.Sprintf("shard%d_queue_depth %d", i, srv.exec.ShardQueueDepth(i)),
			fmt.Sprintf("shard%d_shed %d", i, srv.exec.ShardShed(i)),
			fmt.Sprintf("shard%d_window_ns %d", i, window),
		)
	}
	sort.Strings(lines)
	return lines
}

// writeStats emits the service counters in "STAT name value" form,
// keys in sorted order.
func (srv *Server) writeStats(w *bufio.Writer) {
	for _, line := range srv.statLines() {
		fmt.Fprintf(w, "STAT %s\r\n", line)
	}
	fmt.Fprintf(w, "END\r\n")
}
