package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"

	"goptm/internal/metrics"
)

// The TCP frontend speaks the memcached text protocol subset the
// paper's serving experiment exercises: get, set, delete, incr, stats,
// quit. Connection goroutines are ordinary host goroutines — they
// never touch the simulated machine directly. Each parsed command
// becomes a Request submitted to the executor, and the goroutine
// blocks on the request's Done channel while the simulated shard
// thread executes it in virtual time.

// Server is the TCP frontend over a Store and its Executor.
type Server struct {
	st   *Store
	exec *Executor
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Serve starts accepting on ln. It owns ln and the executor: Shutdown
// closes both.
func Serve(st *Store, exec *Executor, ln net.Listener) *Server {
	srv := &Server{st: st, exec: exec, ln: ln, conns: make(map[net.Conn]struct{})}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv
}

// Addr returns the listener address (tests bind to port 0).
func (srv *Server) Addr() net.Addr { return srv.ln.Addr() }

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		srv.mu.Lock()
		if srv.closed {
			srv.mu.Unlock()
			conn.Close()
			return
		}
		srv.conns[conn] = struct{}{}
		srv.mu.Unlock()
		srv.wg.Add(1)
		go srv.serveConn(conn)
	}
}

// Shutdown drains gracefully: stop accepting, close the connections,
// wait for in-flight commands, drain the executor. The store is then
// quiescent and can be crashed and imaged.
func (srv *Server) Shutdown() {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return
	}
	srv.closed = true
	conns := make([]net.Conn, 0, len(srv.conns))
	for c := range srv.conns {
		conns = append(conns, c)
	}
	srv.mu.Unlock()
	srv.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	srv.wg.Wait()
	srv.exec.Drain()
}

var crlf = []byte("\r\n")

func (srv *Server) serveConn(conn net.Conn) {
	defer srv.wg.Done()
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, conn)
		srv.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(line) == 0 {
			continue
		}
		// Fields of a whitespace-only line is empty even though the line
		// is not; dispatching would index fields[0].
		fields := bytes.Fields(line)
		if len(fields) == 0 {
			fmt.Fprintf(w, "ERROR\r\n")
			if err := w.Flush(); err != nil {
				return
			}
			continue
		}
		quit, err := srv.dispatch(fields, r, w)
		if err != nil {
			return // connection-fatal: malformed payload framing
		}
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

// dispatch executes one command. The returned error means the
// connection can no longer be parsed and must drop; protocol-level
// problems are reported in-band (ERROR / CLIENT_ERROR ...).
func (srv *Server) dispatch(fields [][]byte, r *bufio.Reader, w *bufio.Writer) (quit bool, err error) {
	cmd := string(fields[0])
	switch cmd {
	case "quit":
		return true, nil

	case "get", "gets":
		if len(fields) < 2 {
			fmt.Fprintf(w, "ERROR\r\n")
			return false, nil
		}
		for _, key := range fields[1:] {
			req := &Request{Op: OpGet, Key: key, Done: make(chan struct{})}
			if !srv.submitWait(req) {
				fmt.Fprintf(w, "SERVER_ERROR busy\r\n")
				return false, nil
			}
			if req.Found {
				fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, req.ValFlags, len(req.Val))
				w.Write(req.Val)
				w.Write(crlf)
			}
		}
		fmt.Fprintf(w, "END\r\n")

	case "set":
		// set <key> <flags> <exptime> <bytes> [noreply]
		if len(fields) < 5 {
			fmt.Fprintf(w, "ERROR\r\n")
			return false, nil
		}
		flags, ferr := strconv.ParseUint(string(fields[2]), 10, 32)
		nbytes, berr := strconv.Atoi(string(fields[4]))
		if ferr != nil || berr != nil || nbytes < 0 {
			fmt.Fprintf(w, "CLIENT_ERROR bad command line format\r\n")
			return false, nil
		}
		noreply := len(fields) >= 6 && string(fields[5]) == "noreply"
		if nbytes > srv.st.cfg.MaxValueBytes {
			// The declared length is attacker-controlled: consume the
			// payload to keep the stream parseable, but never allocate
			// for it (a hostile "set k 0 0 1099511627776" must not OOM
			// the server). The response goes out first so a client that
			// streams slowly still learns the rejection.
			if !noreply {
				fmt.Fprintf(w, "SERVER_ERROR object too large for cache\r\n")
			}
			w.Flush()
			if _, err := io.CopyN(io.Discard, r, int64(nbytes)+2); err != nil {
				return false, err
			}
			return false, nil
		}
		// The payload follows regardless of validity; it must be
		// consumed to keep the stream parseable. A disconnect before the
		// full payload+CRLF arrives returns err and drops the connection
		// *without submitting* — a half-written body can never reach a
		// shard queue, so nothing is ever acked-but-unsubmitted.
		payload := make([]byte, nbytes+2)
		if _, err := io.ReadFull(r, payload); err != nil {
			return false, err
		}
		if !bytes.HasSuffix(payload, crlf) {
			fmt.Fprintf(w, "CLIENT_ERROR bad data chunk\r\n")
			return false, nil
		}
		val := payload[:nbytes]
		req := &Request{Op: OpSet, Key: fields[1], Value: val, Flags: uint32(flags), Done: make(chan struct{})}
		if !srv.submitWait(req) {
			if !noreply {
				fmt.Fprintf(w, "SERVER_ERROR busy\r\n")
			}
			return false, nil
		}
		if noreply {
			return false, nil
		}
		switch {
		case errors.Is(req.Err, ErrDurable):
			fmt.Fprintf(w, "SERVER_ERROR persistence failure\r\n")
		case req.Err != nil:
			fmt.Fprintf(w, "CLIENT_ERROR %v\r\n", req.Err)
		default:
			fmt.Fprintf(w, "STORED\r\n")
		}

	case "delete":
		if len(fields) < 2 {
			fmt.Fprintf(w, "ERROR\r\n")
			return false, nil
		}
		noreply := len(fields) >= 3 && string(fields[2]) == "noreply"
		req := &Request{Op: OpDelete, Key: fields[1], Done: make(chan struct{})}
		if !srv.submitWait(req) {
			if !noreply {
				fmt.Fprintf(w, "SERVER_ERROR busy\r\n")
			}
			return false, nil
		}
		if noreply {
			return false, nil
		}
		switch {
		case errors.Is(req.Err, ErrDurable):
			fmt.Fprintf(w, "SERVER_ERROR persistence failure\r\n")
		case req.Found:
			fmt.Fprintf(w, "DELETED\r\n")
		default:
			fmt.Fprintf(w, "NOT_FOUND\r\n")
		}

	case "incr":
		if len(fields) < 3 {
			fmt.Fprintf(w, "ERROR\r\n")
			return false, nil
		}
		delta, derr := strconv.ParseUint(string(fields[2]), 10, 64)
		if derr != nil {
			fmt.Fprintf(w, "CLIENT_ERROR invalid numeric delta argument\r\n")
			return false, nil
		}
		req := &Request{Op: OpIncr, Key: fields[1], Delta: delta, Done: make(chan struct{})}
		if !srv.submitWait(req) {
			fmt.Fprintf(w, "SERVER_ERROR busy\r\n")
			return false, nil
		}
		switch {
		case errors.Is(req.Err, ErrDurable):
			fmt.Fprintf(w, "SERVER_ERROR persistence failure\r\n")
		case req.Err != nil:
			fmt.Fprintf(w, "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n")
		case !req.Found:
			fmt.Fprintf(w, "NOT_FOUND\r\n")
		default:
			fmt.Fprintf(w, "%d\r\n", req.NewVal)
		}

	case "stats":
		srv.writeStats(w)

	default:
		fmt.Fprintf(w, "ERROR\r\n")
	}
	return false, nil
}

// submitWait submits req and blocks until it completes. It reports
// false when the request was rejected (queue full, draining) or shed.
func (srv *Server) submitWait(req *Request) bool {
	if !srv.exec.Submit(req) {
		return false
	}
	<-req.Done
	return !req.Shed && req.Err != ErrDraining
}

// writeStats emits the service counters in "STAT name value" form.
func (srv *Server) writeStats(w *bufio.Writer) {
	met := srv.st.tm.Metrics()
	stat := func(name string, v int64) { fmt.Fprintf(w, "STAT %s %d\r\n", name, v) }
	stat("cmd_total", met.Get(metrics.CtrSrvRequests))
	stat("shed_total", met.Get(metrics.CtrSrvShed))
	stat("batches_total", met.Get(metrics.CtrSrvBatches))
	stat("batched_ops_total", met.Get(metrics.CtrSrvBatchedOps))
	stat("txn_commits", met.Get(metrics.CtrCommits))
	stat("txn_aborts", met.Get(metrics.CtrAborts))
	stat("queue_depth", srv.exec.queued.Load())
	fmt.Fprintf(w, "END\r\n")
}
