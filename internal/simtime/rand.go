package simtime

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64) used by workloads so that experiment results are
// reproducible and independent of math/rand seeding behaviour.
// Each simulated thread owns its own Rand; it is not safe for
// concurrent use.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with
// the same seed produce identical sequences.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). n must be positive.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simtime: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
