package simtime

import (
	"fmt"
	"sync"
)

// Server models a shared hardware resource with a fixed number of
// ports, each of which can serve one request at a time. Acquiring a
// port at virtual time now for hold nanoseconds returns the completion
// time; if every port is busy the request queues behind the earliest-
// free port, which is how bandwidth saturation appears as latency.
//
// Server is safe for concurrent use. A server created with
// NewSerialServer elides its internal locking: under the lockstep
// scheduler exactly one simulated thread executes at any instant, so
// the mutex would be pure overhead on the hottest path in the
// simulator. The floor handoff provides the happens-before edges
// between successive owners; callers must guarantee that external
// serialization (the engine's floor invariant does).
type Server struct {
	mu     sync.Mutex
	serial bool    // external serialization promised; skip the mutex
	ports  []int64 // next-free virtual time per port
	busy   int64   // total busy nanoseconds, for utilization stats
}

// NewServer returns a server with n ports. n must be positive.
func NewServer(n int) *Server {
	if n <= 0 {
		panic(fmt.Sprintf("simtime: server needs at least one port, got %d", n))
	}
	return &Server{ports: make([]int64, n)}
}

// NewSerialServer returns a server whose callers promise external
// serialization (the lockstep floor), eliding the internal mutex.
func NewSerialServer(n int) *Server {
	s := NewServer(n)
	s.serial = true
	return s
}

// Ports reports the number of ports.
func (s *Server) Ports() int {
	return len(s.ports)
}

// Acquire reserves the earliest-available port starting no earlier
// than now, holding it for hold nanoseconds, and returns the virtual
// time at which the request completes.
func (s *Server) Acquire(now, hold int64) int64 {
	if !s.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	best := 0
	for i := 1; i < len(s.ports); i++ {
		if s.ports[i] < s.ports[best] {
			best = i
		}
	}
	start := now
	if s.ports[best] > start {
		start = s.ports[best]
	}
	done := start + hold
	s.ports[best] = done
	s.busy += hold
	return done
}

// TryAcquire reserves a port only if one is free at time now; it
// returns the completion time and true, or 0 and false if all ports
// are busy at now.
func (s *Server) TryAcquire(now, hold int64) (int64, bool) {
	if !s.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	for i := range s.ports {
		if s.ports[i] <= now {
			done := now + hold
			s.ports[i] = done
			s.busy += hold
			return done, true
		}
	}
	return 0, false
}

// NextFree reports the earliest virtual time at which any port is
// free. Useful for backpressure decisions.
func (s *Server) NextFree() int64 {
	if !s.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	best := s.ports[0]
	for _, f := range s.ports[1:] {
		if f < best {
			best = f
		}
	}
	return best
}

// BusyTime reports the cumulative busy nanoseconds across all ports,
// for utilization accounting.
func (s *Server) BusyTime() int64 {
	if !s.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.busy
}

// Reset clears all port reservations and accumulated busy time.
func (s *Server) Reset() {
	if !s.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	for i := range s.ports {
		s.ports[i] = 0
	}
	s.busy = 0
}
