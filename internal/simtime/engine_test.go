package simtime

import (
	"sync"
	"testing"
)

func TestThreadAdvance(t *testing.T) {
	e := NewEngine(0)
	th := e.NewThread(0)
	defer th.Detach()
	if th.Now() != 0 {
		t.Fatalf("new thread clock = %d, want 0", th.Now())
	}
	th.Advance(100)
	if th.Now() != 100 {
		t.Fatalf("clock = %d, want 100", th.Now())
	}
	th.AdvanceTo(50) // past: no-op
	if th.Now() != 100 {
		t.Fatalf("AdvanceTo past moved clock to %d", th.Now())
	}
	th.AdvanceTo(250)
	if th.Now() != 250 {
		t.Fatalf("clock = %d, want 250", th.Now())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	e := NewEngine(0)
	th := e.NewThread(0)
	defer th.Detach()
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	th.Advance(-1)
}

func TestSingleThreadCrossesWindowsFreely(t *testing.T) {
	e := NewEngine(10)
	th := e.NewThread(0)
	defer th.Detach()
	// With a single attached thread, window crossings must not block.
	th.Advance(1_000_000)
	if th.Now() != 1_000_000 {
		t.Fatalf("clock = %d", th.Now())
	}
}

func TestWindowBarrierBoundsSkew(t *testing.T) {
	const win = 100
	const n = 4
	const end = 10_000
	e := NewEngine(win)
	threads := make([]*Thread, n)
	for i := range threads {
		threads[i] = e.NewThread(i)
	}
	var mu sync.Mutex
	maxSkew := int64(0)
	clocks := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := threads[i]
			step := int64(i + 1) // heterogeneous speeds
			for th.Now() < end {
				th.Advance(step)
				mu.Lock()
				clocks[i] = th.Now()
				lo, hi := clocks[0], clocks[0]
				for _, c := range clocks {
					if c < lo {
						lo = c
					}
					if c > hi {
						hi = c
					}
				}
				if s := hi - lo; s > maxSkew {
					maxSkew = s
				}
				mu.Unlock()
			}
			th.Detach()
		}(i)
	}
	wg.Wait()
	// Threads may differ by up to roughly two windows plus one step:
	// one thread can sit at the start of window k while another has
	// just been released into window k+1 and taken a step.
	limit := int64(2*win + n + 1)
	if maxSkew > limit {
		t.Fatalf("virtual-clock skew %d exceeds limit %d", maxSkew, limit)
	}
}

func TestDetachReleasesWaiters(t *testing.T) {
	e := NewEngine(100)
	a := e.NewThread(0)
	b := e.NewThread(1)
	done := make(chan struct{})
	go func() {
		b.Advance(1000) // blocks at window until a catches up or detaches
		b.Detach()
		close(done)
	}()
	a.Advance(10)
	a.Detach() // must release b
	<-done
	if b.Now() != 1000 {
		t.Fatalf("b clock = %d, want 1000", b.Now())
	}
}

func TestDetachIdempotent(t *testing.T) {
	e := NewEngine(0)
	th := e.NewThread(0)
	th.Detach()
	th.Detach() // must not panic or corrupt active count
	th2 := e.NewThread(1)
	th2.Advance(5000)
	th2.Detach()
}

func TestManyThreadsTerminate(t *testing.T) {
	// Regression test for barrier deadlocks: many threads with random
	// step sizes all run to completion.
	e := NewEngine(50)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		th := e.NewThread(i)
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			r := NewRand(uint64(th.ID()))
			for th.Now() < 20_000 {
				th.Advance(int64(1 + r.Intn(300)))
			}
			th.Detach()
		}(th)
	}
	wg.Wait()
}

func TestNewThreadJoinsCurrentWindow(t *testing.T) {
	e := NewEngine(100)
	a := e.NewThread(0)
	a.Advance(5000) // single thread: advances freely, window follows
	b := e.NewThread(1)
	if b.Now() < a.Now()-2*100 {
		t.Fatalf("late-joining thread started at %d, far behind %d", b.Now(), a.Now())
	}
	a.Detach()
	b.Detach()
}
