// Package simtime provides the virtual-time engine that underpins the
// simulated memory hierarchy.
//
// Every simulated hardware thread owns a Thread with a virtual clock
// measured in integer nanoseconds. Threads advance their own clocks as
// they execute simulated operations. A windowed barrier keeps all
// attached threads within one window (default 1 µs) of each other, so
// that intervals during which a thread holds a lock or occupies a
// resource overlap realistically with the activity of other threads.
// Shared hardware resources (cache ports, write-pending-queue drains,
// media read/write ports) are modeled as multi-port queueing servers:
// acquiring a busy server pushes the caller's completion time into the
// future, which is how bandwidth saturation emerges.
//
// Two scheduling modes share the window discipline. NewEngine runs
// attached threads concurrently on host cores inside each window.
// NewLockstepEngine grants the floor to exactly one thread at a time,
// in thread-id order per window, via direct per-thread handoff — the
// same interleaving every run, which makes a simulation a pure
// function of its configuration; the experiment engine's result cache
// and byte-identical parallelism are built on that property, and the
// memory-system packages elide their locks when told a lockstep engine
// is driving them.
//
// Rand is the deterministic splitmix64 generator workloads draw from;
// seeding it per thread keeps randomness reproducible and
// host-independent.
//
// Virtual time makes experiment results independent of the host's core
// count and speed: throughput is computed as committed operations per
// *virtual* second.
package simtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultWindow is the default barrier window in virtual nanoseconds.
// It should be a fraction of a typical transaction's critical-section
// length so that lock-hold intervals are visible to concurrent threads.
const DefaultWindow = 1000

// Engine coordinates the virtual clocks of a set of threads.
//
// Two scheduling modes exist. The default (concurrent) mode lets all
// attached threads run on host cores simultaneously and only
// synchronizes at window boundaries; intra-window interleaving is
// whatever the host scheduler produces, so results are reproducible
// only "up to barrier-window interleaving". Lockstep mode
// (NewLockstepEngine) instead runs exactly one thread at a time —
// within each window, threads execute one after another in ascending
// id order, each until its clock crosses the window boundary. That
// makes a simulation a pure function of its configuration and seeds:
// bit-identical across runs, hosts, and host load, which is what the
// experiment runner's result cache and serial/parallel equivalence
// rely on. The synchronization frequency is the same in both modes
// (one handoff per thread per window); lockstep merely forfeits
// intra-cell host parallelism, which the experiment runner wins back
// by running independent cells on different cores.
//
// The lockstep handoff is a direct grant: each Thread carries its own
// one-slot grant channel, and the scheduler wakes exactly the chosen
// successor (no broadcast, no spurious wakeups — the previous design
// woke every parked goroutine per grant, O(threads) scheduler work per
// thread per window). Parked threads whose clock is inside the current
// window sit in a ready queue ordered by id; threads that have already
// crossed the boundary wait in an unordered overflow set and are
// promoted when the window advances. The grant order — lowest id among
// parked threads inside the window, window advanced only when none
// qualifies — is exactly the documented schedule, so archived lockstep
// results stay bit-identical across the scheduler implementations.
//
// The zero value is not usable; call NewEngine or NewLockstepEngine.
type Engine struct {
	winSize int64
	window  atomic.Int64 // current window end (exclusive)

	mu      sync.Mutex
	cond    *sync.Cond // concurrent-mode barrier
	active  int        // attached, running threads
	waiting int        // threads blocked at the window boundary (concurrent mode)

	// Lockstep-mode state: at most one thread (the "floor" holder)
	// executes at any instant; the rest are parked. A thread is granted
	// the floor only when every attached thread is parked, so the grant
	// order — ascending id among threads whose clock is inside the
	// current window — cannot depend on goroutine start-up races.
	lockstep bool
	floor    *Thread
	ready    []*Thread // parked, clock inside window; sorted by descending id
	future   []*Thread // parked, clock at/past the window end; unordered
}

// NewEngine returns a concurrent-mode engine whose barrier window is
// winSize virtual nanoseconds. winSize <= 0 selects DefaultWindow.
func NewEngine(winSize int64) *Engine {
	if winSize <= 0 {
		winSize = DefaultWindow
	}
	e := &Engine{winSize: winSize}
	e.cond = sync.NewCond(&e.mu)
	e.window.Store(winSize)
	return e
}

// NewLockstepEngine returns a deterministic engine: threads take
// turns in ascending id order within each window instead of racing on
// host cores, so repeated simulations are bit-identical. See the
// Engine doc for the trade-off.
func NewLockstepEngine(winSize int64) *Engine {
	e := NewEngine(winSize)
	e.lockstep = true
	return e
}

// Lockstep reports whether the engine schedules deterministically.
func (e *Engine) Lockstep() bool { return e.lockstep }

// WindowSize reports the barrier window in virtual nanoseconds.
func (e *Engine) WindowSize() int64 { return e.winSize }

// NewThread attaches a new simulated thread to the engine. The thread
// starts at the beginning of the current window, so threads created
// after others have run (e.g. workers attaching after a setup phase)
// join the present rather than replaying the past unsynchronized. The
// returned Thread must be used by a single goroutine and must be
// Detached when that goroutine finishes, or the remaining threads
// will block forever at the next window boundary.
func (e *Engine) NewThread(id int) *Thread {
	e.mu.Lock()
	e.active++
	w := e.window.Load()
	start := w - e.winSize
	if start < 0 {
		start = 0
	}
	t := &Thread{engine: e, id: id, clock: start}
	if e.lockstep {
		// The first engine call parks and takes a turn; until then the
		// thread holds no floor and must not fast-path past a boundary.
		t.grant = make(chan struct{}, 1)
	} else {
		// Concurrent mode: the window only grows, so a cached end that
		// lags the real one merely sends the thread down the slow path.
		t.winEnd = w
	}
	e.mu.Unlock()
	return t
}

// waitUntil blocks the calling thread until the global window has
// advanced past vt. It implements a generation-style barrier: the last
// thread to arrive advances the window and wakes everyone.
// Concurrent mode only.
func (e *Engine) waitUntil(vt int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for vt >= e.window.Load() {
		e.waiting++
		if e.waiting >= e.active {
			e.advanceWindowLocked()
		} else {
			w := e.window.Load()
			for e.window.Load() == w {
				e.cond.Wait()
			}
			// The window advanced; our waiting increment was
			// consumed by the reset in advanceWindowLocked.
		}
	}
}

// advanceWindowLocked moves the window forward one step and releases
// all waiters. Caller holds e.mu. Concurrent mode only.
func (e *Engine) advanceWindowLocked() {
	e.waiting = 0
	e.window.Store(e.window.Load() + e.winSize)
	e.cond.Broadcast()
}

// detach removes a thread from the barrier set. If the detaching
// thread was the only one the rest were waiting for, the window is
// advanced (concurrent mode) or the floor is handed on (lockstep) so
// they can proceed.
func (e *Engine) detach(t *Thread) {
	e.mu.Lock()
	e.active--
	if e.lockstep {
		if e.floor == t {
			e.floor = nil
		} else {
			// Defensive: the owning goroutine cannot be parked while it
			// calls Detach, but tolerate it anyway.
			e.removeParkedLocked(t)
		}
		e.scheduleLocked()
	} else if e.active > 0 && e.waiting >= e.active {
		e.advanceWindowLocked()
	}
	e.mu.Unlock()
}

// removeParkedLocked drops t from whichever parked set holds it.
// Caller holds e.mu.
func (e *Engine) removeParkedLocked(t *Thread) {
	for i, th := range e.ready {
		if th == t {
			e.ready = append(e.ready[:i], e.ready[i+1:]...)
			return
		}
	}
	for i, th := range e.future {
		if th == t {
			e.future = append(e.future[:i], e.future[i+1:]...)
			return
		}
	}
}

// park blocks t until the lockstep scheduler grants it the floor.
// On return t is the engine's only executing thread.
func (e *Engine) park(t *Thread) {
	e.mu.Lock()
	if e.floor == t {
		e.floor = nil
	}
	if t.clock < e.window.Load() {
		e.pushReadyLocked(t)
	} else {
		e.future = append(e.future, t)
	}
	e.scheduleLocked()
	e.mu.Unlock()
	<-t.grant
}

// pushReadyLocked inserts t into the ready queue, which is kept sorted
// by descending id so that the next grant — the lowest id — pops off
// the tail in O(1). Insertion position is found by binary search;
// thread counts are small enough that the splice memmove is noise.
// Caller holds e.mu.
func (e *Engine) pushReadyLocked(t *Thread) {
	i := sort.Search(len(e.ready), func(i int) bool { return e.ready[i].id < t.id })
	e.ready = append(e.ready, nil)
	copy(e.ready[i+1:], e.ready[i:])
	e.ready[i] = t
}

// scheduleLocked grants the floor to the next runnable thread: the
// lowest-id parked thread whose clock is inside the current window,
// advancing the window (and promoting future arrivals) when no parked
// thread qualifies. Grants happen only when every attached thread is
// parked — a thread that is attached but still running toward its
// first engine call (or toward its park) pauses scheduling until it
// arrives, which keeps the turn order independent of goroutine
// start-up timing. Exactly one goroutine is woken per grant. Caller
// holds e.mu.
func (e *Engine) scheduleLocked() {
	if !e.lockstep || e.floor != nil || e.active == 0 || len(e.ready)+len(e.future) < e.active {
		return
	}
	for {
		if n := len(e.ready); n > 0 {
			t := e.ready[n-1]
			e.ready[n-1] = nil
			e.ready = e.ready[:n-1]
			e.floor = t
			t.winEnd = e.window.Load()
			t.grant <- struct{}{}
			return
		}
		// Nobody inside the window: open the next one and promote the
		// future threads it now covers.
		w := e.window.Load() + e.winSize
		e.window.Store(w)
		kept := e.future[:0]
		for _, th := range e.future {
			if th.clock < w {
				e.pushReadyLocked(th)
			} else {
				kept = append(kept, th)
			}
		}
		for i := len(kept); i < len(e.future); i++ {
			e.future[i] = nil
		}
		e.future = kept
	}
}

// Thread is one simulated hardware thread's virtual clock. All methods
// must be called from the single goroutine that owns the thread.
type Thread struct {
	engine *Engine
	id     int
	clock  int64
	// winEnd caches the end of the window the thread may run in without
	// re-synchronizing: the clock may advance freely below it. In
	// lockstep mode the scheduler stamps it at grant time; in concurrent
	// mode it trails the shared window (which only grows), so a stale
	// value is conservative.
	winEnd int64
	done   bool
	// hasFloor tracks lockstep-mode floor ownership. It is read and
	// written only by the owning goroutine (the engine's grant is
	// observed through the grant channel before the flag is set).
	hasFloor bool
	// grant is the thread's private wakeup slot: the scheduler hands the
	// floor over by sending one token. Lockstep mode only.
	grant chan struct{}
}

// ID reports the thread's identifier as passed to NewThread.
func (t *Thread) ID() int { return t.id }

// ensureFloor blocks until the thread holds the lockstep floor (the
// right to be the engine's only executing thread). It is a no-op in
// concurrent mode, when the floor is already held, or after Detach.
func (t *Thread) ensureFloor() {
	if !t.engine.lockstep || t.done || t.hasFloor {
		return
	}
	t.engine.park(t)
	t.hasFloor = true
}

// Now reports the thread's current virtual time in nanoseconds. In
// lockstep mode this is also the point where a freshly attached
// thread first takes its turn, so worker loops serialize before they
// touch any shared simulated state.
func (t *Thread) Now() int64 {
	t.ensureFloor()
	return t.clock
}

// Advance moves the thread's clock forward by d nanoseconds, blocking
// at window boundaries until other threads catch up. d < 0 panics.
func (t *Thread) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %d", d))
	}
	t.AdvanceTo(t.clock + d)
}

// AdvanceTo moves the thread's clock forward to vt if vt is in the
// future; a vt in the past is a no-op (the thread has already passed
// it). Blocks at window boundaries; in lockstep mode crossing a
// boundary also yields the floor so the next thread can take its turn.
func (t *Thread) AdvanceTo(vt int64) {
	t.ensureFloor()
	if vt <= t.clock {
		return
	}
	t.clock = vt
	if vt < t.winEnd {
		return
	}
	if t.engine.lockstep {
		t.hasFloor = false
		t.engine.park(t)
		t.hasFloor = true
	} else {
		t.engine.waitUntil(vt)
		t.winEnd = t.engine.window.Load()
	}
}

// Detach removes the thread from the engine's barrier. The thread's
// clock remains readable but Advance must not be called afterwards.
// Detach is idempotent.
func (t *Thread) Detach() {
	if t.done {
		return
	}
	t.done = true
	t.hasFloor = false
	t.engine.detach(t)
}
