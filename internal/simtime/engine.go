// Package simtime provides the virtual-time engine that underpins the
// simulated memory hierarchy.
//
// Every simulated hardware thread owns a Thread with a virtual clock
// measured in integer nanoseconds. Threads advance their own clocks as
// they execute simulated operations. A windowed barrier keeps all
// attached threads within one window (default 1 µs) of each other, so
// that intervals during which a thread holds a lock or occupies a
// resource overlap realistically with the activity of other threads.
// Shared hardware resources (cache ports, write-pending-queue drains,
// media read/write ports) are modeled as multi-port queueing servers:
// acquiring a busy server pushes the caller's completion time into the
// future, which is how bandwidth saturation emerges.
//
// Virtual time makes experiment results independent of the host's core
// count and speed: throughput is computed as committed operations per
// *virtual* second.
package simtime

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultWindow is the default barrier window in virtual nanoseconds.
// It should be a fraction of a typical transaction's critical-section
// length so that lock-hold intervals are visible to concurrent threads.
const DefaultWindow = 1000

// Engine coordinates the virtual clocks of a set of threads.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	winSize int64
	window  atomic.Int64 // current window end (exclusive)

	mu      sync.Mutex
	cond    *sync.Cond
	active  int // attached, running threads
	waiting int // threads blocked at the window boundary
}

// NewEngine returns an engine whose barrier window is winSize virtual
// nanoseconds. winSize <= 0 selects DefaultWindow.
func NewEngine(winSize int64) *Engine {
	if winSize <= 0 {
		winSize = DefaultWindow
	}
	e := &Engine{winSize: winSize}
	e.cond = sync.NewCond(&e.mu)
	e.window.Store(winSize)
	return e
}

// WindowSize reports the barrier window in virtual nanoseconds.
func (e *Engine) WindowSize() int64 { return e.winSize }

// NewThread attaches a new simulated thread to the engine. The thread
// starts at the beginning of the current window, so threads created
// after others have run (e.g. workers attaching after a setup phase)
// join the present rather than replaying the past unsynchronized. The
// returned Thread must be used by a single goroutine and must be
// Detached when that goroutine finishes, or the remaining threads
// will block forever at the next window boundary.
func (e *Engine) NewThread(id int) *Thread {
	e.mu.Lock()
	e.active++
	start := e.window.Load() - e.winSize
	if start < 0 {
		start = 0
	}
	e.mu.Unlock()
	return &Thread{engine: e, id: id, clock: start}
}

// waitUntil blocks the calling thread until the global window has
// advanced past vt. It implements a generation-style barrier: the last
// thread to arrive advances the window and wakes everyone.
func (e *Engine) waitUntil(vt int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for vt >= e.window.Load() {
		e.waiting++
		if e.waiting >= e.active {
			e.advanceWindowLocked()
		} else {
			w := e.window.Load()
			for e.window.Load() == w {
				e.cond.Wait()
			}
			// The window advanced; our waiting increment was
			// consumed by the reset in advanceWindowLocked.
		}
	}
}

// advanceWindowLocked moves the window forward one step and releases
// all waiters. Caller holds e.mu.
func (e *Engine) advanceWindowLocked() {
	e.waiting = 0
	e.window.Store(e.window.Load() + e.winSize)
	e.cond.Broadcast()
}

// detach removes a thread from the barrier set. If the detaching
// thread was the only one the rest were waiting for, the window is
// advanced so they can proceed.
func (e *Engine) detach() {
	e.mu.Lock()
	e.active--
	if e.active > 0 && e.waiting >= e.active {
		e.advanceWindowLocked()
	}
	e.mu.Unlock()
}

// Thread is one simulated hardware thread's virtual clock. All methods
// must be called from the single goroutine that owns the thread.
type Thread struct {
	engine *Engine
	id     int
	clock  int64
	done   bool
}

// ID reports the thread's identifier as passed to NewThread.
func (t *Thread) ID() int { return t.id }

// Now reports the thread's current virtual time in nanoseconds.
func (t *Thread) Now() int64 { return t.clock }

// Advance moves the thread's clock forward by d nanoseconds, blocking
// at window boundaries until other threads catch up. d < 0 panics.
func (t *Thread) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %d", d))
	}
	t.AdvanceTo(t.clock + d)
}

// AdvanceTo moves the thread's clock forward to vt if vt is in the
// future; a vt in the past is a no-op (the thread has already passed
// it). Blocks at window boundaries.
func (t *Thread) AdvanceTo(vt int64) {
	if vt <= t.clock {
		return
	}
	t.clock = vt
	if vt >= t.engine.window.Load() {
		t.engine.waitUntil(vt)
	}
}

// Detach removes the thread from the engine's barrier. The thread's
// clock remains readable but Advance must not be called afterwards.
// Detach is idempotent.
func (t *Thread) Detach() {
	if t.done {
		return
	}
	t.done = true
	t.engine.detach()
}
