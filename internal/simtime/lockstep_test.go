package simtime

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestLockstepMutualExclusion checks the floor invariant: in lockstep
// mode at most one thread executes between engine calls, regardless of
// host scheduling.
func TestLockstepMutualExclusion(t *testing.T) {
	e := NewLockstepEngine(1000)
	const threads = 8
	var running atomic.Int32
	var wg sync.WaitGroup
	ths := make([]*Thread, threads)
	for i := range ths {
		ths[i] = e.NewThread(i)
	}
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(th *Thread, seed uint64) {
			defer wg.Done()
			defer th.Detach()
			r := NewRand(seed)
			for th.Now() < 50_000 {
				if n := running.Add(1); n != 1 {
					t.Errorf("%d threads running concurrently", n)
				}
				running.Add(-1)
				th.Advance(int64(1 + r.Intn(700)))
			}
		}(ths[i], uint64(i))
	}
	wg.Wait()
}

// TestLockstepDeterministicOrder checks that the execution order —
// which thread advances at which virtual time — is identical across
// repeated runs, which is the property the experiment runner's result
// cache depends on.
func TestLockstepDeterministicOrder(t *testing.T) {
	type step struct {
		id int
		vt int64
	}
	run := func() []step {
		e := NewLockstepEngine(1000)
		const threads = 6
		var mu sync.Mutex
		var trace []step
		var wg sync.WaitGroup
		ths := make([]*Thread, threads)
		for i := range ths {
			ths[i] = e.NewThread(i)
		}
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(th *Thread, seed uint64) {
				defer wg.Done()
				defer th.Detach()
				r := NewRand(seed)
				for th.Now() < 30_000 {
					// The floor serializes execution, so the
					// unsynchronized-looking append is actually ordered.
					mu.Lock()
					trace = append(trace, step{th.ID(), th.Now()})
					mu.Unlock()
					th.Advance(int64(1 + r.Intn(1500)))
				}
			}(ths[i], uint64(i)*13+1)
		}
		wg.Wait()
		return trace
	}
	first := run()
	for rep := 0; rep < 3; rep++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("rep %d: %d steps, want %d", rep, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("rep %d: step %d = %+v, want %+v", rep, i, got[i], first[i])
			}
		}
	}
}

// TestLockstepWindowOrder checks the documented schedule: within one
// window threads take turns in ascending id order.
func TestLockstepWindowOrder(t *testing.T) {
	e := NewLockstepEngine(1000)
	const threads = 4
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	ths := make([]*Thread, threads)
	for i := range ths {
		ths[i] = e.NewThread(i)
	}
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			defer th.Detach()
			for th.Now() < 3_000 {
				mu.Lock()
				order = append(order, th.ID())
				mu.Unlock()
				th.Advance(1000) // exactly one turn per window
			}
		}(ths[i])
	}
	wg.Wait()
	// Expect 0,1,2,3 repeated for each window.
	for i, id := range order {
		if id != i%threads {
			t.Fatalf("order[%d] = %d, want %d (full order %v)", i, id, i%threads, order)
		}
	}
}

// TestLockstepDetachHandsOn checks that a detaching floor holder does
// not strand parked threads.
func TestLockstepDetachHandsOn(t *testing.T) {
	e := NewLockstepEngine(1000)
	a, b := e.NewThread(0), e.NewThread(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Advance(500)
		a.Detach() // holds the floor here; b must still finish
	}()
	go func() {
		defer wg.Done()
		defer b.Detach()
		b.Advance(10_000)
	}()
	wg.Wait()
	if b.Now() < 10_000 {
		t.Fatalf("b stopped at %d", b.Now())
	}
}
