package simtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestServerSinglePortSerializes(t *testing.T) {
	s := NewServer(1)
	d1 := s.Acquire(0, 10)
	if d1 != 10 {
		t.Fatalf("first acquire done = %d, want 10", d1)
	}
	d2 := s.Acquire(0, 10) // queues behind the first
	if d2 != 20 {
		t.Fatalf("second acquire done = %d, want 20", d2)
	}
	d3 := s.Acquire(100, 10) // idle gap: starts at its own time
	if d3 != 110 {
		t.Fatalf("third acquire done = %d, want 110", d3)
	}
}

func TestServerMultiPortParallel(t *testing.T) {
	s := NewServer(4)
	for i := 0; i < 4; i++ {
		if d := s.Acquire(0, 10); d != 10 {
			t.Fatalf("acquire %d done = %d, want 10 (parallel ports)", i, d)
		}
	}
	// Fifth request must queue.
	if d := s.Acquire(0, 10); d != 20 {
		t.Fatalf("fifth acquire done = %d, want 20", d)
	}
}

func TestServerSaturationThroughput(t *testing.T) {
	// With 4 ports and hold 100, peak throughput is 4 ops per 100 ns
	// regardless of offered load. 100 back-to-back requests at t=0
	// must finish at 100*100/4 = 2500.
	s := NewServer(4)
	var last int64
	for i := 0; i < 100; i++ {
		last = s.Acquire(0, 100)
	}
	if last != 2500 {
		t.Fatalf("last completion = %d, want 2500", last)
	}
	if got := s.BusyTime(); got != 100*100 {
		t.Fatalf("busy time = %d, want 10000", got)
	}
}

func TestServerTryAcquire(t *testing.T) {
	s := NewServer(2)
	if _, ok := s.TryAcquire(0, 50); !ok {
		t.Fatal("TryAcquire on idle server failed")
	}
	if _, ok := s.TryAcquire(0, 50); !ok {
		t.Fatal("TryAcquire on second idle port failed")
	}
	if _, ok := s.TryAcquire(10, 50); ok {
		t.Fatal("TryAcquire succeeded on saturated server")
	}
	if _, ok := s.TryAcquire(50, 50); !ok {
		t.Fatal("TryAcquire failed after ports freed")
	}
}

func TestServerNextFreeAndReset(t *testing.T) {
	s := NewServer(2)
	s.Acquire(0, 30)
	s.Acquire(0, 70)
	if nf := s.NextFree(); nf != 30 {
		t.Fatalf("NextFree = %d, want 30", nf)
	}
	s.Reset()
	if nf := s.NextFree(); nf != 0 {
		t.Fatalf("NextFree after reset = %d, want 0", nf)
	}
	if bt := s.BusyTime(); bt != 0 {
		t.Fatalf("BusyTime after reset = %d, want 0", bt)
	}
}

func TestServerZeroPortsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer(0) did not panic")
		}
	}()
	NewServer(0)
}

func TestServerConcurrentAcquireInvariants(t *testing.T) {
	// Property: under concurrent use, total busy time equals the sum
	// of holds, and every completion is >= its request time + hold.
	s := NewServer(3)
	const goroutines = 8
	const per = 200
	const hold = 7
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				now := i * 3
				done := s.Acquire(now, hold)
				if done < now+hold {
					errs <- "completion earlier than request+hold"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got, want := s.BusyTime(), int64(goroutines*per*hold); got != want {
		t.Fatalf("busy time = %d, want %d", got, want)
	}
}

func TestServerMonotonePerPortProperty(t *testing.T) {
	// Property: for a single-port server driven with non-decreasing
	// request times, completions are strictly increasing when hold>0.
	f := func(holds []uint8) bool {
		s := NewServer(1)
		var now, prev int64
		for _, h := range holds {
			hold := int64(h%50) + 1
			done := s.Acquire(now, hold)
			if done <= prev {
				return false
			}
			prev = done
			now += int64(h % 13)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical prefix")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(99)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandUniformityRough(t *testing.T) {
	// Coarse uniformity check: each of 8 buckets gets 12.5% +- 2%.
	r := NewRand(1234)
	const n = 80000
	var buckets [8]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.105 || frac > 0.145 {
			t.Fatalf("bucket %d frac %.3f outside tolerance", i, frac)
		}
	}
}
