package energy

import (
	"strings"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/membus"
	"goptm/internal/memdev"
)

func busWith(t *testing.T, dom durability.Domain) *membus.Bus {
	t.Helper()
	b, err := membus.New(membus.Config{
		Threads: 1,
		Domain:  dom,
		Dev:     memdev.Config{NVMWords: 1 << 14, DRAMWords: 1 << 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClassifyTiers(t *testing.T) {
	cases := []struct {
		j    float64
		want string
	}{
		{0.001, "PSU capacitance (ADR-class)"},
		{1, "on-board capacitors (eADR-class)"},
		{100, "supercapacitor bank"},
		{10_000, "lithium-ion battery (PDRAM-class)"},
	}
	for _, c := range cases {
		if got := Classify(c.j); got != c.want {
			t.Errorf("Classify(%g) = %q, want %q", c.j, got, c.want)
		}
	}
}

func TestEstimateCleanMachine(t *testing.T) {
	b := busWith(t, durability.ADR)
	r := Estimate(b, 0, DefaultPlatform())
	if r.WPQLines != 0 || r.DirtyLines != 0 || r.DirtyPages != 0 {
		t.Fatalf("clean machine has outstanding state: %+v", r)
	}
	// Only the fixed shutdown window remains.
	if r.FlushNS != DefaultPlatform().ShutdownFixNS {
		t.Fatalf("flush = %f, want fixed cost only", r.FlushNS)
	}
}

func TestADRCountsOnlyWPQ(t *testing.T) {
	b := busWith(t, durability.ADR)
	ctx := b.NewContext(0)
	defer ctx.Detach()
	// Two dirty lines; one flushed into the WPQ.
	ctx.Store(0, 1)
	ctx.Store(64, 2)
	ctx.CLWB(0)
	r := Estimate(b, 0, DefaultPlatform())
	if r.WPQLines != 1 {
		t.Fatalf("WPQ lines = %d, want 1", r.WPQLines)
	}
	if r.DirtyLines != 0 {
		t.Fatalf("ADR must not count dirty cache lines, got %d", r.DirtyLines)
	}
}

func TestEADRCountsDirtyCache(t *testing.T) {
	b := busWith(t, durability.EADR)
	ctx := b.NewContext(0)
	defer ctx.Detach()
	for i := 0; i < 10; i++ {
		ctx.Store(memdev.Addr(i*memdev.WordsPerLine), uint64(i))
	}
	r := Estimate(b, 0, DefaultPlatform())
	if r.DirtyLines != 10 {
		t.Fatalf("dirty lines = %d, want 10", r.DirtyLines)
	}
	if r.Joules <= 0 {
		t.Fatal("no reserve energy computed")
	}
}

func TestPDRAMCountsDirtyPagesAndDRAMPower(t *testing.T) {
	b := busWith(t, durability.PDRAM)
	ctx := b.NewContext(0)
	defer ctx.Detach()
	// Touch several pages with stores: routed through the page cache.
	for pg := 0; pg < 5; pg++ {
		ctx.Store(memdev.Addr(pg*512), 1)
	}
	r := Estimate(b, 0, DefaultPlatform())
	if r.DirtyPages != 5 {
		t.Fatalf("dirty pages = %d, want 5", r.DirtyPages)
	}
	// The same state without pages must cost less (DRAM refresh power).
	b2 := busWith(t, durability.EADR)
	ctx2 := b2.NewContext(0)
	defer ctx2.Detach()
	for pg := 0; pg < 5; pg++ {
		ctx2.Store(memdev.Addr(pg*512), 1)
	}
	r2 := Estimate(b2, 0, DefaultPlatform())
	if r.Joules <= r2.Joules {
		t.Fatalf("PDRAM reserve (%g J) not above eADR reserve (%g J)", r.Joules, r2.Joules)
	}
}

func TestOrderingAcrossDomains(t *testing.T) {
	// With identical traffic, reserve energy must be monotone:
	// ADR <= eADR <= PDRAM.
	var joules []float64
	for _, dom := range []durability.Domain{durability.ADR, durability.EADR, durability.PDRAM} {
		b := busWith(t, dom)
		ctx := b.NewContext(0)
		for i := 0; i < 64; i++ {
			a := memdev.Addr(i * memdev.WordsPerLine)
			ctx.Store(a, uint64(i))
			ctx.CLWB(a) // no-op beyond ADR
		}
		ctx.Detach()
		joules = append(joules, Estimate(b, 0, DefaultPlatform()).Joules)
	}
	if !(joules[0] <= joules[1] && joules[1] <= joules[2]) {
		t.Fatalf("reserve energy not monotone across domains: %v", joules)
	}
}

func TestReportString(t *testing.T) {
	b := busWith(t, durability.EADR)
	r := Estimate(b, 0, DefaultPlatform())
	s := r.String()
	if !strings.Contains(s, "eADR") || !strings.Contains(s, "reserve=") {
		t.Fatalf("report string malformed: %q", s)
	}
}

func TestDirtyCacheLinesCounter(t *testing.T) {
	b := busWith(t, durability.EADR)
	dev := b.Device()
	dev.Store(0, 1)
	dev.Store(3, 1) // same line
	dev.Store(64, 1)
	if n := DirtyCacheLines(dev); n != 2 {
		t.Fatalf("dirty lines = %d, want 2", n)
	}
}

func TestWorstCaseBounds(t *testing.T) {
	for _, dom := range []durability.Domain{durability.ADR, durability.EADR, durability.PDRAM} {
		b := busWith(t, dom)
		m := Estimate(b, 0, DefaultPlatform())
		w := WorstCase(b, DefaultPlatform())
		if w.Joules < m.Joules {
			t.Fatalf("%v: worst case (%g J) below measured (%g J)", dom, w.Joules, m.Joules)
		}
		if w.WPQLines != b.Controller().Config().Depth {
			t.Fatalf("%v: worst-case WPQ = %d, want full depth", dom, w.WPQLines)
		}
	}
	// Worst cases are monotone across domains too.
	var prev float64
	for _, dom := range []durability.Domain{durability.ADR, durability.EADR, durability.PDRAM} {
		w := WorstCase(busWith(t, dom), DefaultPlatform())
		if w.Joules < prev {
			t.Fatalf("worst case not monotone at %v", dom)
		}
		prev = w.Joules
	}
}

func TestWorstCasePDRAMLiteBoundedByRoutedPages(t *testing.T) {
	b := busWith(t, durability.PDRAMLite)
	b.RoutePages(0, 512*3) // 3 log pages
	w := WorstCase(b, DefaultPlatform())
	if w.DirtyPages != 3 {
		t.Fatalf("PDRAM-Lite worst-case pages = %d, want the 3 routed pages", w.DirtyPages)
	}
	full := WorstCase(busWith(t, durability.PDRAM), DefaultPlatform())
	if w.Joules >= full.Joules {
		t.Fatal("PDRAM-Lite worst case not below full PDRAM")
	}
}
