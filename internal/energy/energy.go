// Package energy models the reserve-power requirement of each
// durability domain — the open question the paper's conclusion calls
// out ("we do not have an estimate of the energy overhead to support
// PDRAM, nor ... a formula or model for estimating reserve power
// requirements for a workload").
//
// The model is deliberately first-order: on a power failure the
// platform must keep running long enough to flush everything the
// domain promises to persist. The flush time is computed from the
// simulated machine's actual state (WPQ occupancy, dirty cache lines,
// dirty DRAM pages) and the media's write bandwidth; the reserve
// energy is that time multiplied by the platform's flush-time power
// draw. Domains then classify into the technology the paper
// anticipates: ADR's window fits in-PSU capacitance, eADR needs
// on-board capacitors (the "1s of reserve" in §IV-B), and PDRAM's
// multi-second window needs a battery.
package energy

import (
	"fmt"

	"goptm/internal/durability"
	"goptm/internal/membus"
	"goptm/internal/memdev"
)

// Platform holds the electrical parameters of the model. Defaults are
// order-of-magnitude figures for a two-socket Optane server (the
// paper's §IV-B discussion: RAM ~50% of system power; eADR needs ~1 s
// of reserve; PDRAM ">10s", likely a lithium battery).
type Platform struct {
	FlushPowerW   float64 // platform draw while flushing (CPU+MC+DIMMs)
	DRAMPowerW    float64 // additional draw to keep DRAM refreshed (PDRAM)
	LineFlushNS   float64 // ns to write one 64 B line to the media
	PageFlushNS   float64 // ns to write one 4 KB page (sequential)
	WritePorts    float64 // concurrent media writes
	ShutdownFixNS float64 // fixed cost to quiesce cores and signal the MC
}

// DefaultPlatform matches the simulator's media calibration (wpq
// defaults: 170 ns/line, 4 ports, 4x sequential discount).
func DefaultPlatform() Platform {
	return Platform{
		FlushPowerW:   150,
		DRAMPowerW:    50,
		LineFlushNS:   170,
		PageFlushNS:   64 * 170 / 4, // page writeback uses the stream discount
		WritePorts:    4,
		ShutdownFixNS: 50_000, // 50 µs to fence cores and raise the power-fail signal
	}
}

// Report is the reserve-power estimate for one machine state.
type Report struct {
	Domain     durability.Domain
	WPQLines   int     // lines pending in the write queue
	DirtyLines int     // dirty lines in the CPU caches (eADR and up)
	DirtyPages int     // dirty DRAM pages caching NVM (PDRAM variants)
	FlushNS    float64 // time the reserve must sustain
	Joules     float64 // energy the reserve must hold
	Technology string  // feasible reserve technology class
}

// Classify names the reserve technology for a given energy budget,
// following the paper's qualitative tiers.
func Classify(j float64) string {
	switch {
	case j < 0.05:
		return "PSU capacitance (ADR-class)"
	case j < 5:
		return "on-board capacitors (eADR-class)"
	case j < 500:
		return "supercapacitor bank"
	default:
		return "lithium-ion battery (PDRAM-class)"
	}
}

// Estimate computes the reserve requirement for bus's state at
// virtual time vt under its configured durability domain: the WPQ
// entries still undrained, the dirty lines resident in the caches,
// and (PDRAM variants) the dirty DRAM pages.
func Estimate(bus *membus.Bus, vt int64, p Platform) Report {
	dom := bus.Domain()
	r := Report{Domain: dom}

	r.WPQLines = bus.Controller().OccupancyAt(vt)
	if dom.CachePersists() {
		r.DirtyLines = bus.Cache().DirtyLineCount()
	}
	if pc := bus.PageCache(); pc != nil && dom.DRAMLogPersists() {
		r.DirtyPages = len(pc.DirtyPages())
	}

	// Flush phases are sequential: caches drain into the WPQ, the WPQ
	// drains into the media, then (PDRAM) dirty pages stream out.
	lineNS := (float64(r.WPQLines) + float64(r.DirtyLines)) * p.LineFlushNS / p.WritePorts
	pageNS := float64(r.DirtyPages) * p.PageFlushNS / p.WritePorts
	r.FlushNS = p.ShutdownFixNS + lineNS + pageNS

	watts := p.FlushPowerW
	if r.DirtyPages > 0 {
		watts += p.DRAMPowerW // DRAM must stay refreshed while pages stream
	}
	r.Joules = watts * r.FlushNS / 1e9
	r.Technology = Classify(r.Joules)
	return r
}

// WorstCase computes the provisioning bound for bus's configuration:
// a full WPQ, an entirely dirty L3, and (PDRAM variants) an entirely
// dirty page cache. This is the reserve a system designer must
// actually install, independent of workload.
func WorstCase(bus *membus.Bus, p Platform) Report {
	dom := bus.Domain()
	r := Report{Domain: dom}
	r.WPQLines = bus.Controller().Config().Depth
	if dom.CachePersists() {
		r.DirtyLines = bus.Cache().Lines()
	}
	if pc := bus.PageCache(); pc != nil && dom.DRAMLogPersists() {
		r.DirtyPages = pc.Frames()
		// PDRAM-Lite's directory only admits the registered log
		// pages — the whole point of the design is a small, bounded
		// flush obligation.
		if routed := bus.RoutedPageCount(); routed > 0 && routed < r.DirtyPages {
			r.DirtyPages = routed
		}
	}
	lineNS := (float64(r.WPQLines) + float64(r.DirtyLines)) * p.LineFlushNS / p.WritePorts
	pageNS := float64(r.DirtyPages) * p.PageFlushNS / p.WritePorts
	r.FlushNS = p.ShutdownFixNS + lineNS + pageNS
	watts := p.FlushPowerW
	if r.DirtyPages > 0 {
		watts += p.DRAMPowerW
	}
	r.Joules = watts * r.FlushNS / 1e9
	r.Technology = Classify(r.Joules)
	return r
}

// DirtyCacheLines counts NVM lines in the DirtyCache state of the
// device's bookkeeping — every store not yet flushed or evicted. This
// over-approximates cache residency and is retained for tests; the
// Estimate path uses the cache simulator's exact dirty count.
func DirtyCacheLines(dev *memdev.Device) int {
	n := 0
	lines := dev.NVMWords() / memdev.WordsPerLine
	for ln := uint64(0); ln < lines; ln++ {
		if dev.LineState(ln) == memdev.LineDirtyCache {
			n++
		}
	}
	return n
}

// String renders the report as one table row.
func (r Report) String() string {
	return fmt.Sprintf("%-11s wpq=%-4d dirty-lines=%-6d dirty-pages=%-5d flush=%8.1fµs reserve=%8.4gJ  (%s)",
		r.Domain, r.WPQLines, r.DirtyLines, r.DirtyPages, r.FlushNS/1000, r.Joules, r.Technology)
}
