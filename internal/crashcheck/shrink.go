// Shrinking and replay: a Violation found by the campaign is reduced
// to a minimal, self-contained Repro — the fewest ops and the fewest
// injected faults that still trip the oracle — which serializes to
// JSON and replays bit-identically on any machine.
//
// Shrinking leans on the determinism argument from workload.go: ops
// are pure functions of (seed, index), so running fewer ops emits a
// strict prefix of the original persist-event stream. A crash at event
// k therefore lands on the identical machine state as long as k still
// falls inside the shortened run, letting the shrinker cut the op
// count without searching for a new crash coordinate.
package crashcheck

import (
	"encoding/json"
	"fmt"
	"os"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
)

// Repro is a self-contained, replayable description of one
// crash-consistency violation.
type Repro struct {
	Workload string             `json:"workload"`
	Algo     string             `json:"algo"`
	Domain   string             `json:"domain"`
	Seed     uint64             `json:"seed"`
	Ops      int                `json:"ops"`
	Event    int                `json:"event"`
	Faults   []memdev.LineFault `json:"faults,omitempty"`
	Mutate   string             `json:"mutate_drop_fence,omitempty"`
	Detail   string             `json:"detail"`
}

// parseAlgo maps the serialized algorithm name back (counterpart of
// core.Algo.String()).
func parseAlgo(name string) (core.Algo, error) {
	for _, a := range []core.Algo{core.OrecLazy, core.OrecEager, core.AlgoHTM} {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("crashcheck: unknown algorithm %q", name)
}

// optionsFor rebuilds checker Options from a repro's serialized
// identity.
func optionsFor(r *Repro) (Options, error) {
	wl, err := Lookup(r.Workload, r.Seed)
	if err != nil {
		return Options{}, err
	}
	algo, err := parseAlgo(r.Algo)
	if err != nil {
		return Options{}, err
	}
	dom, err := durability.Parse(r.Domain)
	if err != nil {
		return Options{}, err
	}
	return Options{Workload: wl, Algo: algo, Domain: dom, Ops: r.Ops, MutateDropFence: r.Mutate}, nil
}

// Shrink minimizes a violation to a Repro:
//
//  1. Op count: ops after the in-flight one never execute before the
//     crash, so cut the run to committed+1 ops (prefix determinism
//     keeps event k valid — the crash fired inside op committed+1 or
//     earlier). Verified, not assumed: if the shortened run no longer
//     violates, fall back to the original count.
//  2. Faults: try each single fault from the plan alone; the first
//     one that still violates replaces the full plan.
//
// The result is re-verified end to end before being returned.
func Shrink(o Options, v *Violation) (*Repro, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	ops, faults := v.Ops, v.Faults

	// Phase 1: drop the never-executed tail of the op schedule.
	if min := v.Committed + 1; min < ops {
		small := o
		small.Ops = min
		if sv, err := small.CheckVariant(v.Event, faults); err == nil && sv != nil {
			o, ops = small, min
		}
	}

	// Phase 2: minimize the fault plan to a single injected fault.
	if len(faults) > 1 {
		for _, f := range faults {
			one := []memdev.LineFault{f}
			if sv, err := o.CheckVariant(v.Event, one); err == nil && sv != nil {
				faults = one
				break
			}
		}
	}

	final, err := o.CheckVariant(v.Event, faults)
	if err != nil {
		return nil, err
	}
	if final == nil {
		return nil, fmt.Errorf("crashcheck: shrunk schedule no longer violates (non-deterministic workload?)")
	}
	return &Repro{
		Workload: v.Workload, Algo: v.Algo, Domain: v.Domain, Seed: v.Seed,
		Ops: ops, Event: v.Event, Faults: faults, Mutate: o.MutateDropFence,
		Detail: final.Detail,
	}, nil
}

// Replay re-executes a repro and returns the violation it reproduces,
// or nil if the underlying bug has been fixed.
func Replay(r *Repro) (*Violation, error) {
	o, err := optionsFor(r)
	if err != nil {
		return nil, err
	}
	return o.CheckVariant(r.Event, r.Faults)
}

// WriteFile serializes the repro as indented JSON.
func (r *Repro) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro back from disk.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("crashcheck: %s: %w", path, err)
	}
	return &r, nil
}
