package crashcheck

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"goptm/internal/core"
	"goptm/internal/durability"
)

// TestExhaustiveMatrix runs the full checker over every domain × both
// logging algorithms on both built-in workloads: every persist
// boundary, every fault variant, zero violations expected. This is the
// core soundness claim of the persistence protocols — and of the
// checker's oracle (no false positives).
func TestExhaustiveMatrix(t *testing.T) {
	for _, wl := range []Workload{NewCounter(defaultCells, 42), NewTransfer(defaultCells, 43)} {
		for _, algo := range []core.Algo{core.OrecLazy, core.OrecEager} {
			for _, dom := range durability.All() {
				o := Options{Workload: wl, Algo: algo, Domain: dom, Ops: 3}
				rep, err := Run(o)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", wl.Name(), algo, dom, err)
				}
				if rep.Events == 0 || rep.Points != rep.Events {
					t.Fatalf("%s/%v/%v: visited %d of %d boundaries", wl.Name(), algo, dom, rep.Points, rep.Events)
				}
				if len(rep.Violations) != 0 {
					t.Fatalf("%s/%v/%v: %d violations, first: %s",
						wl.Name(), algo, dom, len(rep.Violations), rep.Violations[0].String())
				}
				if dom.CachePersists() && rep.Variants != rep.Points {
					t.Fatalf("%s/%v/%v: cache-persistent domain grew %d variants for %d points",
						wl.Name(), algo, dom, rep.Variants, rep.Points)
				}
				if !dom.CachePersists() && rep.Variants <= rep.Points {
					t.Fatalf("%s/%v/%v: no adversarial variants generated", wl.Name(), algo, dom)
				}
			}
		}
	}
}

// mutationCase drops one fence site and demands the checker notice:
// the elided ordering must open a window where a committed write can
// be lost, and the violation must shrink to a replayable minimal
// repro. This is the checker checking itself — a checker that passes a
// broken protocol is worse than none.
func mutationCase(t *testing.T, algo core.Algo, site string) {
	t.Helper()
	o := Options{
		Workload: NewCounter(defaultCells, 7), Algo: algo,
		Domain: durability.ADR, Ops: 5, MutateDropFence: site,
	}
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("dropping %s went undetected across %d points / %d variants", site, rep.Points, rep.Variants)
	}
	v := rep.Violations[0]

	repro, err := Shrink(o, &v)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if repro.Ops > v.Committed+1 {
		t.Fatalf("shrink kept %d ops; %d suffice", repro.Ops, v.Committed+1)
	}
	if len(repro.Faults) > 1 {
		t.Fatalf("shrink kept %d faults: %v", len(repro.Faults), repro.Faults)
	}

	// The repro must survive a JSON round trip and still reproduce.
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := repro.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := Replay(back)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rv == nil {
		t.Fatalf("replayed repro %+v no longer violates", back)
	}
	t.Logf("%s: shrunk to %s", site, rv.String())
}

func TestMutationLazyWritebackFenceDetected(t *testing.T) {
	// lazy:F3 orders the committed writeback before the log is
	// reclaimed; without it the idle marker can persist while a
	// writeback line is still in flight — a lost committed write.
	mutationCase(t, core.OrecLazy, "lazy:F3")
}

func TestMutationEagerCommitFenceDetected(t *testing.T) {
	// eager:Fc2 makes the idle marker durable at commit; without it
	// the in-flight lines of the commit epilogue lose their ordering
	// against the next transaction's log writes.
	mutationCase(t, core.OrecEager, "eager:Fc2")
}

// TestFuzzSmoke exercises the sampling mode end to end: points are
// drawn from the recorded boundary set and each gets the identical
// full variant sweep, so a clean protocol stays clean.
func TestFuzzSmoke(t *testing.T) {
	o := Options{Workload: NewTransfer(defaultCells, 99), Algo: core.OrecLazy, Domain: durability.ADR, Ops: 4}
	rep, err := Fuzz(o, 200*time.Millisecond, 0xF00D)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points == 0 {
		t.Fatal("fuzz visited no points")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("fuzz found violations on a sound protocol: %s", rep.Violations[0].String())
	}
}

// TestCheckerRejectsHTM: an HTM commit is hardware-atomic, so the
// enumeration is meaningless and must be refused loudly rather than
// silently vacuous.
func TestCheckerRejectsHTM(t *testing.T) {
	o := Options{Workload: NewCounter(defaultCells, 1), Algo: core.AlgoHTM, Domain: durability.EADR, Ops: 2}
	if _, err := Run(o); err == nil {
		t.Fatal("HTM accepted")
	}
}

// TestPointResultRoundTrip guards the runner-cache contract: chunk
// results must survive JSON.
func TestPointResultRoundTrip(t *testing.T) {
	in := PointResult{Points: 3, Variants: 40, FaultsInjected: 37,
		Violations: []Violation{{Workload: "counter", Algo: "orec-lazy", Domain: "ADR",
			Seed: 7, Ops: 5, Event: 12, EventKind: "clwb", Committed: 2, Detail: "x"}}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out PointResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Points != in.Points || len(out.Violations) != 1 || out.Violations[0].Event != 12 {
		t.Fatalf("round trip mangled result: %+v", out)
	}
}
