package crashcheck

import (
	"fmt"

	"goptm/internal/core"
	"goptm/internal/memdev"
)

// A Workload is a deterministic transactional program the checker can
// re-run any number of times. Determinism is load-bearing: every op is
// a pure function of (seed, op index), so re-running ops 0..k produces
// a bit-identical persist-event stream — which is what lets the
// checker cut execution at event k discovered in a recording pass, and
// lets a shrunk repro (fewer ops, same event index) hit the same
// machine state.
type Workload interface {
	// Name identifies the workload in reports and repro files; Lookup
	// resolves it back.
	Name() string
	// Seed reports the determinism seed the workload was built with.
	Seed() uint64
	// Cells reports how many observable heap words the workload owns.
	Cells() int
	// Setup formats the initial heap state (allocate cells, publish the
	// root) and must leave it durable under every domain — the checker
	// quiesces the device afterward and starts enumerating crashes only
	// from the first op.
	Setup(tm *core.TM, th *core.Thread)
	// Op runs operation i as one transaction.
	Op(tm *core.TM, th *core.Thread, i int)
	// Model returns the expected cell values after ops 0..n-1 have
	// committed (the shadow model the oracle compares against).
	Model(n int) []uint64
	// ReadCells reads the cells back from a recovered heap.
	ReadCells(tm *core.TM, th *core.Thread) []uint64
}

// splitmix64 is the standard SplitMix64 finalizer; op parameters are
// derived from it so they depend only on (seed, index).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// opRand derives the deterministic random word for op i.
func opRand(seed uint64, i int) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(i)+1))
}

// rootSlot is the heap root slot the workloads publish their cell
// array in.
const rootSlot = 0

// setupCells allocates and zero-fills an n-cell array, durably, and
// publishes it in the root slot. Shared by the workloads.
func setupCells(tm *core.TM, th *core.Thread, n int, init uint64) {
	ctx := th.Ctx()
	a := tm.Heap().Alloc(ctx, uint64(n))
	for c := 0; c < n; c++ {
		ctx.Store(a+memdev.Addr(c), init)
	}
	// Flush every cell: the array base is not line-aligned (allocator
	// header), so striding by WordsPerLine from a would miss the tail
	// line. Redundant clwbs of a line are harmless.
	for c := 0; c < n; c++ {
		ctx.CLWB(a + memdev.Addr(c))
	}
	ctx.SFence()
	tm.SetRoot(th, rootSlot, a)
}

// readCells loads the cell array back through the root slot.
func readCells(tm *core.TM, th *core.Thread, n int) []uint64 {
	a := tm.Root(th, rootSlot)
	out := make([]uint64, n)
	for c := 0; c < n; c++ {
		out[c] = th.Ctx().Load(a + memdev.Addr(c))
	}
	return out
}

// Counter is the seed workload: op i increments one of the cells,
// chosen deterministically. Single-word transactions make it the
// smallest program that exercises the full persistence protocol, and
// its model is trivially checkable.
type Counter struct {
	seed  uint64
	cells int
}

// NewCounter builds the counter workload.
func NewCounter(cells int, seed uint64) *Counter {
	return &Counter{seed: seed, cells: cells}
}

// Name implements Workload.
func (w *Counter) Name() string { return "counter" }

// Seed implements Workload.
func (w *Counter) Seed() uint64 { return w.seed }

// Cells implements Workload.
func (w *Counter) Cells() int { return w.cells }

// Setup implements Workload.
func (w *Counter) Setup(tm *core.TM, th *core.Thread) {
	setupCells(tm, th, w.cells, 0)
}

// cell picks op i's target cell.
func (w *Counter) cell(i int) int {
	return int(opRand(w.seed, i) % uint64(w.cells))
}

// Op implements Workload.
func (w *Counter) Op(tm *core.TM, th *core.Thread, i int) {
	c := memdev.Addr(w.cell(i))
	th.Atomic(func(tx *core.Tx) {
		a := tm.Root(th, rootSlot)
		tx.Store(a+c, tx.Load(a+c)+1)
	})
}

// Model implements Workload.
func (w *Counter) Model(n int) []uint64 {
	out := make([]uint64, w.cells)
	for i := 0; i < n; i++ {
		out[w.cell(i)]++
	}
	return out
}

// ReadCells implements Workload.
func (w *Counter) ReadCells(tm *core.TM, th *core.Thread) []uint64 {
	return readCells(tm, th, w.cells)
}

// Transfer moves value between cells: op i moves a deterministic
// amount from one cell to another in a single transaction. Unlike
// Counter, every op writes two cells (on different cache lines once
// cells > 8), so a crash that persists half a transaction breaks
// conservation — the classic atomicity probe.
type Transfer struct {
	seed  uint64
	cells int
}

// transferInit is each cell's starting balance.
const transferInit = 1000

// NewTransfer builds the transfer workload.
func NewTransfer(cells int, seed uint64) *Transfer {
	return &Transfer{seed: seed, cells: cells}
}

// Name implements Workload.
func (w *Transfer) Name() string { return "transfer" }

// Seed implements Workload.
func (w *Transfer) Seed() uint64 { return w.seed }

// Cells implements Workload.
func (w *Transfer) Cells() int { return w.cells }

// Setup implements Workload.
func (w *Transfer) Setup(tm *core.TM, th *core.Thread) {
	setupCells(tm, th, w.cells, transferInit)
}

// params derives op i's (from, to, amount).
func (w *Transfer) params(i int) (from, to int, amt uint64) {
	r := opRand(w.seed, i)
	from = int(r % uint64(w.cells))
	to = int((r >> 16) % uint64(w.cells))
	if to == from {
		to = (to + 1) % w.cells
	}
	amt = r>>32%3 + 1
	return from, to, amt
}

// Op implements Workload.
func (w *Transfer) Op(tm *core.TM, th *core.Thread, i int) {
	from, to, amt := w.params(i)
	th.Atomic(func(tx *core.Tx) {
		a := tm.Root(th, rootSlot)
		tx.Store(a+memdev.Addr(from), tx.Load(a+memdev.Addr(from))-amt)
		tx.Store(a+memdev.Addr(to), tx.Load(a+memdev.Addr(to))+amt)
	})
}

// Model implements Workload.
func (w *Transfer) Model(n int) []uint64 {
	out := make([]uint64, w.cells)
	for c := range out {
		out[c] = transferInit
	}
	for i := 0; i < n; i++ {
		from, to, amt := w.params(i)
		out[from] -= amt
		out[to] += amt
	}
	return out
}

// ReadCells implements Workload.
func (w *Transfer) ReadCells(tm *core.TM, th *core.Thread) []uint64 {
	return readCells(tm, th, w.cells)
}

// defaultCells sizes the built-in workloads: two cache lines of cells,
// so transactions cross line boundaries without bloating the
// enumeration.
const defaultCells = 16

// Lookup rebuilds a built-in workload from its Name and seed — the
// resolution step of repro replay.
func Lookup(name string, seed uint64) (Workload, error) {
	switch name {
	case "counter":
		return NewCounter(defaultCells, seed), nil
	case "transfer":
		return NewTransfer(defaultCells, seed), nil
	default:
		return nil, fmt.Errorf("crashcheck: unknown workload %q", name)
	}
}
