// Package crashcheck is the exhaustive crash-consistency model
// checker: it enumerates a power failure at every persist-relevant
// event a workload emits, layers adversarial fault variants on top of
// the durability domain's baseline policy at each point, recovers the
// image with core.Reopen, and validates the result against a
// durable-linearizability oracle.
//
// The pipeline per (workload, algorithm, domain, seed):
//
//	record  — one clean run with a membus persist tap counts the
//	          persist events (stores, clwbs, sfences, NT stores, WC
//	          drains) the workload emits. Determinism (single thread,
//	          lockstep engine, seed-derived ops) makes the event index
//	          a stable coordinate.
//	crash   — for each event k: re-run to event k, where the tap stops
//	          the machine dead (core.PowerFailure), snapshot the
//	          device, and enumerate fault plans: the baseline policy,
//	          single-line WPQ drops, early evictions (applies), torn
//	          lines at 8-byte granularity, and the all-drop/all-apply
//	          extremes (see faultPlans for the per-domain eligibility).
//	verify  — restore the snapshot, apply the crash with the plan,
//	          core.Reopen, and compare the recovered cells against the
//	          workload's shadow model: every committed op's writes must
//	          be visible, and at most the single in-flight op may
//	          additionally have committed. NoReserve cannot make that
//	          promise (an sfence waits only for WPQ accept, not the
//	          media drain), so it gets a relaxed oracle — recovery must
//	          succeed and every cell must hold some value from the
//	          committed history (no torn garbage) — which is precisely
//	          why the paper deprecates it.
//
// Crash points are independent, so the campaign fans out over the
// runner worker pool and inherits its shard/cache machinery. Failures
// shrink to a minimal replayable repro (see shrink.go).
package crashcheck

import (
	"fmt"
	"time"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/membus"
	"goptm/internal/memdev"
	"goptm/internal/runner"
)

// CheckerVersion stamps cache keys; bump it whenever a change to the
// checker, fault model, or protocols invalidates cached verdicts.
const CheckerVersion = 1

// Options configures one checking campaign.
type Options struct {
	Workload Workload
	Algo     core.Algo
	Domain   durability.Domain
	// Ops is how many workload operations the run executes.
	Ops int
	// MutateDropFence elides one named fence site (mutation self-test;
	// see core.Config.MutateDropFence).
	MutateDropFence string

	// Jobs/Shard/Cache/Progress pass through to the runner pool for
	// the exhaustive campaign.
	Jobs     int
	Shard    runner.Shard
	Cache    *runner.Cache
	Progress *runner.Progress
}

// Violation is one oracle failure, carrying everything needed to
// reproduce it.
type Violation struct {
	Workload  string             `json:"workload"`
	Algo      string             `json:"algo"`
	Domain    string             `json:"domain"`
	Seed      uint64             `json:"seed"`
	Ops       int                `json:"ops"`
	Event     int                `json:"event"`
	EventKind string             `json:"event_kind"`
	Faults    []memdev.LineFault `json:"faults,omitempty"`
	Mutate    string             `json:"mutate_drop_fence,omitempty"`
	Committed int                `json:"committed"`
	Detail    string             `json:"detail"`
}

// String renders the violation for logs.
func (v *Violation) String() string {
	return fmt.Sprintf("%s/%s/%s seed=%d ops=%d event=%d(%s) faults=%v: %s",
		v.Workload, v.Algo, v.Domain, v.Seed, v.Ops, v.Event, v.EventKind, v.Faults, v.Detail)
}

// PointResult aggregates the outcome of checking one or more crash
// points (JSON-marshalable so campaign chunks are cacheable).
type PointResult struct {
	Points         int         `json:"points"`
	Variants       int         `json:"variants"`
	FaultsInjected int         `json:"faults_injected"`
	Violations     []Violation `json:"violations,omitempty"`
}

func (r *PointResult) merge(o PointResult) {
	r.Points += o.Points
	r.Variants += o.Variants
	r.FaultsInjected += o.FaultsInjected
	r.Violations = append(r.Violations, o.Violations...)
}

// Report is a campaign's outcome.
type Report struct {
	Workload string `json:"workload"`
	Algo     string `json:"algo"`
	Domain   string `json:"domain"`
	Seed     uint64 `json:"seed"`
	Ops      int    `json:"ops"`
	// Events is the total number of persist boundaries the workload
	// emits; Points counts those this shard actually visited.
	Events int `json:"events"`
	PointResult
}

// tmConfig builds the (small, deterministic) machine the checker runs
// workloads on.
func (o *Options) tmConfig() core.Config {
	return core.Config{
		Algo:            o.Algo,
		Medium:          core.MediumNVM,
		Domain:          o.Domain,
		Threads:         1,
		HeapWords:       1 << 12,
		MaxLogEntries:   128,
		OrecSize:        1 << 10,
		Lockstep:        true,
		Backoff:         core.BackoffNone,
		MutateDropFence: o.MutateDropFence,
	}
}

// validate rejects configurations the checker cannot enumerate.
func (o *Options) validate() error {
	if o.Workload == nil || o.Ops <= 0 {
		return fmt.Errorf("crashcheck: need a workload and positive ops")
	}
	if o.Algo == core.AlgoHTM {
		// An HTM commit is hardware-atomic: there is no observable
		// intermediate persist state to cut at (see the htm:pre-publish
		// hook rationale), so enumeration is meaningless.
		return fmt.Errorf("crashcheck: HTM commits are hardware-atomic; check lazy or eager")
	}
	return nil
}

// Record runs the workload once, uninterrupted, and returns the kind
// of every persist event it emits — the crash-point coordinate system.
func (o *Options) Record() ([]membus.PersistEventKind, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	tm, err := core.New(o.tmConfig())
	if err != nil {
		return nil, err
	}
	th := tm.Thread(0)
	o.Workload.Setup(tm, th)
	tm.Bus().Quiesce()
	var events []membus.PersistEventKind
	tm.Bus().SetPersistTap(func(e membus.PersistEvent) { events = append(events, e.Kind) })
	for i := 0; i < o.Ops; i++ {
		o.Workload.Op(tm, th, i)
	}
	tm.Bus().SetPersistTap(nil)
	th.Detach()
	return events, nil
}

// crashState is the machine stopped dead at a crash point.
type crashState struct {
	bus       *membus.Bus
	cfg       core.Config
	committed int // ops whose Atomic returned before the crash
	vt        int64
	kind      membus.PersistEventKind
}

// runToEvent re-runs the workload and stops the machine at persist
// event k by panicking core.PowerFailure out of the tap.
func (o *Options) runToEvent(k int) (*crashState, error) {
	cfg := o.tmConfig()
	tm, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	th := tm.Thread(0)
	o.Workload.Setup(tm, th)
	tm.Bus().Quiesce()

	st := &crashState{bus: tm.Bus(), cfg: cfg}
	n := 0
	tm.Bus().SetPersistTap(func(e membus.PersistEvent) {
		if n == k {
			n++
			st.kind = e.Kind
			panic(core.PowerFailure{Point: fmt.Sprintf("crashcheck:event-%d", k)})
		}
		n++
	})
	crashed := false
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(core.PowerFailure); ok {
				crashed = true
				return
			}
			panic(r)
		}()
		for i := 0; i < o.Ops; i++ {
			o.Workload.Op(tm, th, i)
			st.committed = i + 1
		}
	}()
	tm.Bus().SetPersistTap(nil)
	st.vt = th.Now()
	th.Detach()
	if !crashed {
		return nil, fmt.Errorf("crashcheck: event %d never fired (run emits fewer events)", k)
	}
	return st, nil
}

// tearMasks is the canonical set of 8-byte-granularity tear patterns
// applied to a fault-eligible line: half-line splits, alternating
// words, and single-word extremes. Word-level atomicity means these
// cover the qualitatively distinct tears without enumerating all 2^8
// masks.
var tearMasks = [...]uint8{0x0F, 0xF0, 0x55, 0x01, 0x80}

// faultPlans enumerates the adversarial crash variants for one crash
// instant, given the device's pending (WPQ) and dirty-cache line sets.
// The first plan is always nil — the domain's baseline policy.
//
// Eligibility per domain:
//
//	eADR/PDRAM/PDRAM-Lite — reserve power flushes the caches, so there
//	    is no nondeterministic window: baseline only.
//	ADR — a WPQ entry not yet ordered by an sfence may still be in the
//	    core's store path: it can be dropped, or torn mid-write. A
//	    dirty cache line can have been evicted at any earlier moment:
//	    it can apply (early eviction) or tear. Ordered entries are
//	    guaranteed (that is what the fence bought) and stay untouched.
//	NoReserve — nothing above the media is guaranteed: every pending
//	    entry races the failure (apply, drop, or tear, regardless of
//	    fences — an sfence waits only for WPQ accept), and dirty lines
//	    behave as under ADR.
func faultPlans(dom durability.Domain, pend []memdev.PendingInfo, dirty []uint64) [][]memdev.LineFault {
	plans := [][]memdev.LineFault{nil}
	if dom.CachePersists() {
		return plans
	}
	type eligible struct {
		line  uint64
		kinds []memdev.FaultKind
	}
	var lines []eligible
	for _, p := range pend {
		switch {
		case !dom.WPQPersists():
			lines = append(lines, eligible{p.Line, []memdev.FaultKind{memdev.FaultApply, memdev.FaultDrop, memdev.FaultTear}})
		case !p.Ordered:
			lines = append(lines, eligible{p.Line, []memdev.FaultKind{memdev.FaultDrop, memdev.FaultTear}})
		}
	}
	for _, ln := range dirty {
		lines = append(lines, eligible{ln, []memdev.FaultKind{memdev.FaultApply, memdev.FaultTear}})
	}

	var allDrop, allApply []memdev.LineFault
	for _, e := range lines {
		for _, k := range e.kinds {
			switch k {
			case memdev.FaultTear:
				for _, m := range tearMasks {
					plans = append(plans, []memdev.LineFault{{Line: e.line, Kind: k, Mask: m}})
				}
			default:
				plans = append(plans, []memdev.LineFault{{Line: e.line, Kind: k}})
				if k == memdev.FaultDrop {
					allDrop = append(allDrop, memdev.LineFault{Line: e.line, Kind: k})
				} else {
					allApply = append(allApply, memdev.LineFault{Line: e.line, Kind: k})
				}
			}
		}
	}
	if len(allDrop) > 1 {
		plans = append(plans, allDrop)
	}
	if len(allApply) > 1 {
		plans = append(plans, allApply)
	}
	return plans
}

// verify crashes the stopped machine with the given fault plan,
// recovers it, and runs the oracle. It returns nil when consistent.
func (o *Options) verify(st *crashState, event int, plan []memdev.LineFault) *Violation {
	st.bus.CrashWith(st.vt, plan)
	mkViolation := func(detail string) *Violation {
		return &Violation{
			Workload: o.Workload.Name(), Algo: o.Algo.String(), Domain: o.Domain.String(),
			Seed: o.Workload.Seed(), Ops: o.Ops, Event: event, EventKind: st.kind.String(),
			Faults: plan, Mutate: o.MutateDropFence, Committed: st.committed, Detail: detail,
		}
	}
	tm2, _, err := core.Reopen(st.bus, st.cfg)
	if err != nil {
		return mkViolation("recovery failed: " + err.Error())
	}
	th2 := tm2.Thread(0)
	got := o.Workload.ReadCells(tm2, th2)
	th2.Detach()

	if o.Domain == durability.NoReserve {
		// Relaxed oracle: committed durability is unattainable (the
		// fence does not wait for the media drain), so only demand
		// recoverability and the absence of invented values.
		limit := st.committed + 1
		if limit > o.Ops {
			limit = o.Ops
		}
		for c, v := range got {
			found := false
			for m := 0; m <= limit && !found; m++ {
				found = o.Workload.Model(m)[c] == v
			}
			if !found {
				return mkViolation(fmt.Sprintf("cell %d holds %d, a value it never held in the committed history", c, v))
			}
		}
		return nil
	}

	// Strict durable linearizability: the recovered state is the model
	// after exactly the committed ops, or after one more (the op that
	// was in flight at the crash may have reached its durable commit
	// point without returning).
	if cellsEqual(got, o.Workload.Model(st.committed)) {
		return nil
	}
	if st.committed < o.Ops && cellsEqual(got, o.Workload.Model(st.committed+1)) {
		return nil
	}
	return mkViolation(fmt.Sprintf("recovered cells %v match neither Model(%d)=%v nor Model(%d)",
		got, st.committed, o.Workload.Model(st.committed), st.committed+1))
}

func cellsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckPoint exhaustively checks every fault variant of a crash at
// persist event k. The device snapshot lets each variant restart from
// the identical pre-crash instant without re-running the simulation.
func (o *Options) CheckPoint(k int) (PointResult, error) {
	st, err := o.runToEvent(k)
	if err != nil {
		return PointResult{}, err
	}
	dev := st.bus.Device()
	img := dev.Snapshot()
	plans := faultPlans(o.Domain, dev.PendingSnapshot(), dev.DirtyLineList())

	res := PointResult{Points: 1}
	for _, plan := range plans {
		dev.Restore(img)
		res.Variants++
		res.FaultsInjected += len(plan)
		if v := o.verify(st, k, plan); v != nil {
			res.Violations = append(res.Violations, *v)
		}
	}
	return res, nil
}

// CheckVariant re-runs to event k and applies exactly one fault plan —
// the replay and shrink primitive.
func (o *Options) CheckVariant(k int, plan []memdev.LineFault) (*Violation, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	st, err := o.runToEvent(k)
	if err != nil {
		return nil, err
	}
	return o.verify(st, k, plan), nil
}

// chunkKey is the canonical cache key of one campaign chunk.
type chunkKey struct {
	Checker  int    `json:"checker"`
	Workload string `json:"workload"`
	Algo     string `json:"algo"`
	Domain   string `json:"domain"`
	Seed     uint64 `json:"seed"`
	Ops      int    `json:"ops"`
	Mutate   string `json:"mutate,omitempty"`
	Lo, Hi   int
}

// Run executes the exhaustive campaign: every crash point × every
// fault variant, fanned out over the runner pool in chunks of points.
func Run(o Options) (*Report, error) {
	events, err := o.Record()
	if err != nil {
		return nil, err
	}
	n := len(events)
	rep := &Report{
		Workload: o.Workload.Name(), Algo: o.Algo.String(), Domain: o.Domain.String(),
		Seed: o.Workload.Seed(), Ops: o.Ops, Events: n,
	}

	// Chunks are the unit of scheduling, caching, and sharding; small
	// enough that even a short campaign splits across CI shards.
	const chunk = 8
	var jobs []runner.Job[PointResult]
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		jobs = append(jobs, runner.Job[PointResult]{
			Label: fmt.Sprintf("%s/%s/%s points %d..%d", rep.Workload, rep.Algo, rep.Domain, lo, hi-1),
			Key: runner.KeyJSON(chunkKey{
				Checker: CheckerVersion, Workload: rep.Workload, Algo: rep.Algo,
				Domain: rep.Domain, Seed: rep.Seed, Ops: o.Ops, Mutate: o.MutateDropFence,
				Lo: lo, Hi: hi,
			}),
			CostNS: int64(hi-lo) * 1e6,
			Run: func() (PointResult, error) {
				var acc PointResult
				for k := lo; k < hi; k++ {
					r, err := o.CheckPoint(k)
					if err != nil {
						return acc, err
					}
					acc.merge(r)
				}
				return acc, nil
			},
			Detail: func(r PointResult) string {
				return fmt.Sprintf("%d variants, %d violations", r.Variants, len(r.Violations))
			},
		})
	}
	outs, err := runner.Run(runner.Options{Jobs: o.Jobs, Shard: o.Shard, Cache: o.Cache, Progress: o.Progress}, jobs)
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		if out.Source == runner.Skipped {
			continue
		}
		rep.merge(out.Value)
	}
	return rep, nil
}

// Fuzz samples random crash points (full variant sweep at each) until
// the wall-clock budget expires. fuzzSeed makes the point sequence
// reproducible; the per-point work is identical to the exhaustive
// campaign, so any violation it finds shrinks and replays the same
// way.
func Fuzz(o Options, budget time.Duration, fuzzSeed uint64) (*Report, error) {
	events, err := o.Record()
	if err != nil {
		return nil, err
	}
	n := len(events)
	rep := &Report{
		Workload: o.Workload.Name(), Algo: o.Algo.String(), Domain: o.Domain.String(),
		Seed: o.Workload.Seed(), Ops: o.Ops, Events: n,
	}
	if n == 0 {
		return rep, nil
	}
	deadline := time.Now().Add(budget)
	for round := 0; ; round++ {
		if round > 0 && !time.Now().Before(deadline) {
			break
		}
		k := int(opRand(fuzzSeed, round) % uint64(n))
		r, err := o.CheckPoint(k)
		if err != nil {
			return rep, err
		}
		rep.merge(r)
	}
	return rep, nil
}
