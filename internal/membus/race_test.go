package membus

import (
	"sync"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

// These tests exist to be run under the race detector: the lockstep
// fast paths elide every mutex and atomic in memdev, wpq, cachesim,
// pagecache, and the bus's routing table, so the concurrent-mode
// (non-lockstep) configurations must demonstrably still take the
// locked paths. A bus built WITHOUT Lockstep is hammered from many
// goroutines — shared lines, flushes, fences, stats readers — and any
// accidental leak of an unsynchronized path shows up as a detected
// race. See .github/workflows/ci.yml, which runs this package with
// -race.

// TestConcurrentBusRace drives a concurrent-mode ADR bus from several
// threads with overlapping traffic while a reader polls every stats
// surface the sweep harness consumes.
func TestConcurrentBusRace(t *testing.T) {
	const threads = 4
	bus := MustNew(Config{
		Threads:  threads,
		Domain:   durability.ADR,
		Dev:      memdev.Config{NVMWords: 1 << 14, DRAMWords: 1 << 12},
		WindowNS: 1000,
	})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			ctx := bus.NewContext(tid)
			defer ctx.Detach()
			for i := uint64(0); i < 400; i++ {
				private := memdev.Addr(uint64(tid)<<10 | i%1024)
				shared := memdev.Addr(i % 64) // deliberately contended lines
				ctx.Store(private, i)
				ctx.Store(shared, i)
				ctx.Load(shared)
				ctx.CLWB(private)
				if i%8 == 0 {
					ctx.SFence()
				}
				if i%32 == 0 {
					// The stats surfaces the harness and recorder poll
					// while workers run.
					bus.Device().Counters()
					bus.Device().PendingLines()
					bus.Cache().HitRate()
					bus.Controller().Stats()
					bus.RoutedPageCount()
				}
			}
			ctx.SFence()
		}(tid)
	}
	wg.Wait()
	bus.Quiesce()
}

// TestConcurrentRoutedBusRace exercises the page-cache route in
// concurrent mode: a PDRAM-Lite bus routes registered pages through
// the DRAM page cache, so routedNVM's table lookup, the page cache's
// access/dirty tracking, and RoutePages registration all run under
// their locks while traffic is in flight.
func TestConcurrentRoutedBusRace(t *testing.T) {
	const threads = 4
	bus := MustNew(Config{
		Threads:    threads,
		Domain:     durability.PDRAMLite,
		Dev:        memdev.Config{NVMWords: 1 << 14, DRAMWords: 1 << 12},
		PageFrames: 64,
		WindowNS:   1000,
	})
	bus.RoutePages(0, 1<<12)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			ctx := bus.NewContext(tid)
			defer ctx.Detach()
			for i := uint64(0); i < 300; i++ {
				routed := memdev.Addr(i % (1 << 12))
				direct := memdev.Addr(1<<13 | (uint64(tid)<<8 + i%256))
				ctx.Store(routed, i)
				ctx.Load(routed)
				ctx.Store(direct, i)
				ctx.CLWB(direct)
				if i%16 == 0 {
					ctx.SFence()
					bus.RoutedPageCount()
				}
			}
			ctx.SFence()
		}(tid)
	}
	wg.Wait()
	bus.Quiesce()
}
