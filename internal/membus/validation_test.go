package membus

import (
	"sync"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

// These tests validate the simulator against the microbenchmark
// characteristics the calibration is built on (Izraelevitz et al.
// [46], cited throughout the paper): NVM read bandwidth keeps scaling
// to ~17 concurrent readers, NVM write bandwidth saturates with ~4
// writers, and sequential (regular) write patterns run far closer to
// DRAM speed than random ones.

// aggregateOps drives `threads` contexts with op for a fixed virtual
// window and returns total completed operations.
func aggregateOps(t *testing.T, dom durability.Domain, threads int, nvmWords uint64,
	op func(c *Context, tid, i int)) int64 {
	t.Helper()
	bus, err := New(Config{
		Threads: threads,
		Domain:  dom,
		Dev:     memdev.Config{NVMWords: nvmWords, DRAMWords: 1 << 12},
		L3Lines: 1024, // tiny L3 so accesses reach the media
	})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]*Context, threads)
	for i := range ctxs {
		ctxs[i] = bus.NewContext(i)
	}
	const window = 400_000 // 0.4 ms virtual
	counts := make([]int64, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := ctxs[tid]
			defer c.Detach()
			for i := 0; c.Now() < window; i++ {
				op(c, tid, i)
				counts[tid]++
			}
		}(tid)
	}
	wg.Wait()
	var total int64
	for _, n := range counts {
		total += n
	}
	return total
}

func TestNVMReadBandwidthScalesPastWrites(t *testing.T) {
	// Random reads over a large range: every access misses to the
	// media. Read throughput at 16 threads should be much more than
	// 2x the 4-thread value (reads have 17 ports).
	read := func(c *Context, tid, i int) {
		// Pseudo-random stride, distinct per thread.
		a := memdev.Addr((uint64(tid*7919+i)*2654435761 + 7) % (1 << 18))
		c.Load(a &^ 7)
	}
	r4 := aggregateOps(t, durability.EADR, 4, 1<<18, read)
	r16 := aggregateOps(t, durability.EADR, 16, 1<<18, read)
	if float64(r16) < 2.4*float64(r4) {
		t.Fatalf("read bandwidth knee too early: 4T=%d 16T=%d", r4, r16)
	}
}

func TestNVMWriteBandwidthSaturatesEarly(t *testing.T) {
	// Random flushed writes saturate the 4-port media: going from 8 to
	// 32 threads must gain far less than the 4x more offered load
	// (while reads at the same step keep scaling — previous test).
	write := func(c *Context, tid, i int) {
		a := memdev.Addr((uint64(tid*104729+i)*2654435761 + 3) % (1 << 18))
		a &^= 7
		c.Store(a, uint64(i))
		c.CLWB(a)
		c.SFence()
	}
	w8 := aggregateOps(t, durability.ADR, 8, 1<<18, write)
	w32 := aggregateOps(t, durability.ADR, 32, 1<<18, write)
	if float64(w32) > 1.8*float64(w8) {
		t.Fatalf("write bandwidth did not saturate: 8T=%d 32T=%d", w8, w32)
	}
}

func TestSequentialWritesFasterThanRandom(t *testing.T) {
	// Regular access patterns run near DRAM speed on Optane ([46],
	// §IV-D) thanks to write combining. Under saturation (32 writers,
	// stores L1-resident so the drain rate is the limiter), flushing
	// sequential lines must clearly outpace flushing the same lines in
	// scattered order.
	const lines = 64
	seqOp := func(c *Context, tid, i int) {
		ln := uint64(i % lines)
		a := memdev.Addr((uint64(tid)<<12 + ln*memdev.WordsPerLine))
		c.Store(a, uint64(i))
		c.CLWB(a)
		c.SFence()
	}
	perm := make([]uint64, lines)
	for i := range perm {
		perm[i] = uint64((i * 29) % lines) // fixed scatter, no +1 runs
	}
	rndOp := func(c *Context, tid, i int) {
		ln := perm[i%lines]
		a := memdev.Addr((uint64(tid)<<12 + ln*memdev.WordsPerLine))
		c.Store(a, uint64(i))
		c.CLWB(a)
		c.SFence()
	}
	seq := aggregateOps(t, durability.ADR, 32, 1<<18, seqOp)
	rnd := aggregateOps(t, durability.ADR, 32, 1<<18, rndOp)
	if float64(seq) < 1.5*float64(rnd) {
		t.Fatalf("sequential writes (%d) not clearly faster than random (%d)", seq, rnd)
	}
}

func TestLoadLatencyRatioMatchesCalibration(t *testing.T) {
	// Single-thread cold-miss latency: NVM should be ~3x DRAM (the
	// paper's §III-B: "roughly 3x higher for Optane than DRAM").
	bus := MustNew(Config{
		Threads: 1,
		Domain:  durability.ADR,
		Dev:     memdev.Config{NVMWords: 1 << 16, DRAMWords: 1 << 16},
	})
	c := bus.NewContext(0)
	defer c.Detach()
	const n = 64
	t0 := c.Now()
	for i := 0; i < n; i++ {
		c.Load(memdev.Addr(i * 64 * memdev.WordsPerLine % (1 << 16)))
	}
	nvmNS := float64(c.Now()-t0) / n
	t1 := c.Now()
	for i := 0; i < n; i++ {
		c.Load(memdev.DRAMBase + memdev.Addr(i*64*memdev.WordsPerLine%(1<<16)))
	}
	dramNS := float64(c.Now()-t1) / n
	ratio := nvmNS / dramNS
	if ratio < 2.2 || ratio > 4.5 {
		t.Fatalf("NVM/DRAM cold-load ratio = %.2f (nvm %.0f ns, dram %.0f ns), want ~3x", ratio, nvmNS, dramNS)
	}
}

func TestRoutedPageCount(t *testing.T) {
	bus := MustNew(Config{
		Threads: 1,
		Domain:  durability.PDRAMLite,
		Dev:     memdev.Config{NVMWords: 1 << 14, DRAMWords: 1 << 12},
	})
	if bus.RoutedPageCount() != 0 {
		t.Fatal("fresh bus has routed pages")
	}
	bus.RoutePages(0, 512)    // 1 page
	bus.RoutePages(2048, 600) // spans pages 4..5 -> 2 pages
	if got := bus.RoutedPageCount(); got != 3 {
		t.Fatalf("routed pages = %d, want 3", got)
	}

	adr := MustNew(Config{
		Threads: 1,
		Domain:  durability.ADR,
		Dev:     memdev.Config{NVMWords: 1 << 14, DRAMWords: 1 << 12},
	})
	adr.RoutePages(0, 512)
	if adr.RoutedPageCount() != 0 {
		t.Fatal("ADR bus accepted page routing")
	}
}
