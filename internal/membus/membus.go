// Package membus ties the simulated memory system together: it is the
// interface the PTM runtime programs against, the equivalent of the
// load/store/clwb/sfence instructions on a real machine.
//
// Every operation is charged virtual time on the calling thread's
// clock:
//
//	Load   — probes the cache hierarchy; misses are serviced by the
//	         DRAM channel, the NVM media, or (when the address routes
//	         through the Memory-Mode page cache) a DRAM frame or a
//	         page fault.
//	Store  — write-allocate; dirty L3 evictions generate writebacks
//	         that feed the WPQ (this is how eADR workloads still
//	         pressure the Optane media even without explicit flushes).
//	CLWB   — under ADR/NoReserve, cleans the line and enqueues it into
//	         the WPQ, stalling on queue backpressure; elided (no time,
//	         no effect) under eADR/PDRAM/PDRAM-Lite.
//	SFence — waits until every clwb issued since the previous fence
//	         has been accepted into the durability domain; elided when
//	         the domain does not require fences.
//
// The package also owns the crash entry point: Crash applies the
// durability domain's policy to produce the post-failure image.
package membus

import (
	"fmt"
	"sort"
	"sync"

	"goptm/internal/cachesim"
	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/pagecache"
	"goptm/internal/simtime"
	"goptm/internal/wpq"
)

// Latency gathers the fixed per-operation costs in virtual ns. Media
// port occupancy comes on top from the wpq controller.
type Latency struct {
	L1Hit        int64
	L2Hit        int64
	L3Hit        int64
	DRAMBase     int64 // uncore cost added to a DRAM-serviced miss
	NVMBase      int64 // uncore cost added to an NVM-serviced miss
	StoreHit     int64 // store completing in the store buffer / L1
	CLWBDram     int64 // thread-visible clwb latency, DRAM-backed line
	CLWBNvm      int64 // thread-visible clwb latency, NVM-backed line
	SFenceBase   int64
	MetaOp       int64 // one STM metadata operation (orec CAS, clock read)
	PageDirProbe int64 // Memory-Mode directory lookup
}

// DefaultLatency is calibrated from the paper (§III-A: clwb 86/94 ns;
// load latency 3× DRAM on L3 miss) and Izraelevitz et al. [46].
func DefaultLatency() Latency {
	return Latency{
		L1Hit:        2,
		L2Hit:        8,
		L3Hit:        30,
		DRAMBase:     46,
		NVMBase:      100,
		StoreHit:     2,
		CLWBDram:     86,
		CLWBNvm:      94,
		SFenceBase:   50,
		MetaOp:       8,
		PageDirProbe: 10,
	}
}

// Config assembles a Bus.
type Config struct {
	Threads    int
	Domain     durability.Domain
	Dev        memdev.Config
	Ctl        wpq.Config // zero value: wpq.DefaultConfig(Threads)
	L3Lines    int        // shared L3 size; 0 selects 16K lines (1 MB)
	PageFrames int        // DRAM page-cache frames (PDRAM/PDRAM-Lite); 0 selects 1024
	WindowNS   int64      // barrier window; 0 selects simtime.DefaultWindow
	// Lockstep selects the deterministic virtual-time scheduler:
	// threads take turns in id order within each barrier window, so a
	// simulation is bit-identical across runs and hosts (the experiment
	// runner requires this for its result cache and for serial/parallel
	// equivalence). The default concurrent scheduler exploits host
	// cores within a window but is reproducible only up to
	// barrier-window interleaving.
	Lockstep bool
	Lat      Latency // zero value selects DefaultLatency
	// NoPrefetch / NoAsyncWriteback disable the Memory-Mode controller
	// optimizations (II-A) for ablation.
	NoPrefetch       bool
	NoAsyncWriteback bool
	// Recorder attaches observability: per-thread stall spans
	// (fence-wait, WPQ stall, media wait) and, when tracing, the WPQ
	// occupancy counter track. nil disables it at zero cost.
	Recorder *obs.Recorder
	// Metrics attaches the PMWatch-style counter registry: the memory
	// controller feeds its media model (XPLine write/read traffic) and
	// WPQ pressure gauge. nil disables it at zero cost.
	Metrics *metrics.Registry
}

// Bus is the assembled memory system.
type Bus struct {
	cfg    Config
	lat    Latency
	dev    *memdev.Device
	cache  *cachesim.Hierarchy
	ctl    *wpq.Controller
	pcache *pagecache.Cache
	engine *simtime.Engine
	domain durability.Domain
	rec    *obs.Recorder

	// Domain-dependent dispatch, resolved once at construction so the
	// per-operation path branches on flags instead of re-deriving
	// domain policy (clwb/sfence elision, page-cache routing) on every
	// load, store, and flush.
	lockstep    bool
	flushElided bool      // domain needs no clwb (eADR, PDRAM, PDRAM-Lite)
	fenceElided bool      // domain needs no sfence
	routeMode   routeKind // how NVM addresses route through the page cache

	routeMu sync.RWMutex // guards routed in concurrent mode
	routed  []pageRange  // sorted, disjoint; used by PDRAM-Lite

	// tap observes persist-relevant events (SetPersistTap); nil when
	// disabled, which is the measurement configuration.
	tap func(PersistEvent)
}

// routeKind is the construction-time resolution of routedNVM's
// domain-dependent branch.
type routeKind uint8

const (
	routeNone  routeKind = iota // no page cache on the NVM path
	routeAll                    // PDRAM: every NVM page routes
	routeTable                  // PDRAM-Lite: consult the registered ranges
)

type pageRange struct{ lo, hi uint64 } // [lo, hi) page numbers

// PersistEventKind classifies the persist-relevant memory events a
// crash checker can cut execution at.
type PersistEventKind uint8

// The persist-relevant event kinds. Each marks a boundary where the
// durable state changes: a store dirties a line, a clwb moves it
// toward the WPQ, an sfence orders prior flushes, an NT store lands in
// a write-combining buffer, and a WC drain moves that buffer into the
// WPQ.
const (
	PEStore PersistEventKind = iota
	PECLWB
	PESFence
	PENTStore
	PEWCDrain
)

// String names the kind for reports and repro files.
func (k PersistEventKind) String() string {
	switch k {
	case PEStore:
		return "store"
	case PECLWB:
		return "clwb"
	case PESFence:
		return "sfence"
	case PENTStore:
		return "ntstore"
	case PEWCDrain:
		return "wcdrain"
	default:
		return fmt.Sprintf("PersistEventKind(%d)", int(k))
	}
}

// PersistEvent describes one persist-relevant operation, delivered to
// the tap installed with SetPersistTap immediately after the operation
// takes effect.
type PersistEvent struct {
	Kind PersistEventKind
	Addr memdev.Addr // the accessed word (line base for WC drains)
	Line uint64      // NVM line number
	TID  int
}

// SetPersistTap installs a callback observing every persist-relevant
// NVM event, or removes it with nil. The tap is how the crash checker
// discovers and counts persist boundaries, and how it cuts execution
// at one (by panicking with core.PowerFailure from inside the tap).
// Install or clear only while no simulated threads are running; the
// tap runs on the simulated thread's goroutine.
func (b *Bus) SetPersistTap(fn func(PersistEvent)) { b.tap = fn }

// New assembles the memory system.
func New(cfg Config) (*Bus, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("membus: Threads must be positive, got %d", cfg.Threads)
	}
	if !cfg.Domain.Valid() {
		return nil, fmt.Errorf("membus: invalid durability domain %d", int(cfg.Domain))
	}
	// Lockstep serializes every simulated thread, so the whole memory
	// stack can elide its internal synchronization (see the package
	// docs of memdev, wpq, cachesim, and pagecache).
	cfg.Dev.Lockstep = cfg.Lockstep
	dev, err := memdev.New(cfg.Dev)
	if err != nil {
		return nil, err
	}
	if cfg.Ctl.Depth == 0 {
		cfg.Ctl = wpq.DefaultConfig(cfg.Threads)
	}
	cfg.Ctl.Threads = cfg.Threads
	cfg.Ctl.Lockstep = cfg.Lockstep
	if cfg.L3Lines == 0 {
		cfg.L3Lines = 16 * 1024
	}
	if cfg.PageFrames == 0 {
		cfg.PageFrames = 1024
	}
	if (cfg.Lat == Latency{}) {
		cfg.Lat = DefaultLatency()
	}
	ccfg := cachesim.DefaultConfig(cfg.Threads, cfg.L3Lines)
	ccfg.Lockstep = cfg.Lockstep
	b := &Bus{
		cfg:         cfg,
		lat:         cfg.Lat,
		dev:         dev,
		cache:       cachesim.New(ccfg),
		ctl:         wpq.New(cfg.Ctl),
		engine:      newEngine(cfg),
		domain:      cfg.Domain,
		rec:         cfg.Recorder,
		lockstep:    cfg.Lockstep,
		flushElided: !cfg.Domain.RequiresFlush(),
		fenceElided: !cfg.Domain.RequiresFence(),
	}
	switch {
	case cfg.Domain == durability.PDRAM:
		b.routeMode = routeAll
	case cfg.Domain == durability.PDRAMLite:
		b.routeMode = routeTable
	}
	if cfg.Metrics != nil {
		b.ctl.SetMetrics(cfg.Metrics)
	}
	if cfg.Recorder.Tracing() {
		// WPQ occupancy is a machine-level quantity: feed every accept
		// into the shared counter lane. Tracing-only; the callback cost
		// never touches measurement configurations.
		rec := cfg.Recorder
		b.ctl.SetObserver(func(acceptVT, stallNS int64, occupancy int) {
			rec.CountShared(obs.TrackWPQOccupancy, acceptVT, float64(occupancy))
		})
	}
	if cfg.Domain.DRAMCachesNVM() || cfg.Domain == durability.PDRAMLite {
		b.pcache = pagecache.New(pagecache.Config{
			Frames:           cfg.PageFrames,
			NoPrefetch:       cfg.NoPrefetch,
			NoAsyncWriteback: cfg.NoAsyncWriteback,
			Lockstep:         cfg.Lockstep,
		}, b.ctl)
	}
	return b, nil
}

// newEngine picks the virtual-time scheduler the config asks for.
func newEngine(cfg Config) *simtime.Engine {
	if cfg.Lockstep {
		return simtime.NewLockstepEngine(cfg.WindowNS)
	}
	return simtime.NewEngine(cfg.WindowNS)
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Bus {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Device exposes the underlying device (for recovery and tests).
func (b *Bus) Device() *memdev.Device { return b.dev }

// Controller exposes the memory controller (for stats).
func (b *Bus) Controller() *wpq.Controller { return b.ctl }

// PageCache exposes the Memory-Mode page cache, or nil if the domain
// does not use one.
func (b *Bus) PageCache() *pagecache.Cache { return b.pcache }

// Cache exposes the CPU cache hierarchy (for stats).
func (b *Bus) Cache() *cachesim.Hierarchy { return b.cache }

// Domain reports the configured durability domain.
func (b *Bus) Domain() durability.Domain { return b.domain }

// Engine exposes the virtual-time engine.
func (b *Bus) Engine() *simtime.Engine { return b.engine }

// RoutePages declares that the page range containing words
// [addr, addr+words) routes through the DRAM page cache. Used under
// PDRAM-Lite to place transaction logs in persistent DRAM. No-op for
// other domains (PDRAM routes every NVM page implicitly).
//
// The registered set is kept sorted and disjoint: a new range is
// spliced in at its binary-search position and merged with any
// overlapping or adjacent neighbours, so RoutedPageCount never double
// counts and routedNVM's binary search stays sound no matter how
// callers overlap their registrations.
func (b *Bus) RoutePages(addr memdev.Addr, words uint64) {
	if b.routeMode != routeTable || words == 0 {
		return
	}
	lo := pagecache.PageOf(uint64(addr))
	hi := pagecache.PageOf(uint64(addr)+words-1) + 1
	if !b.lockstep {
		b.routeMu.Lock()
		defer b.routeMu.Unlock()
	}
	// First range that could touch or follow [lo, hi): predecessor
	// ranges with r.hi >= lo are mergeable (adjacency counts).
	i := sort.Search(len(b.routed), func(i int) bool { return b.routed[i].hi >= lo })
	// Swallow every range the new one overlaps or abuts.
	j := i
	for j < len(b.routed) && b.routed[j].lo <= hi {
		if b.routed[j].lo < lo {
			lo = b.routed[j].lo
		}
		if b.routed[j].hi > hi {
			hi = b.routed[j].hi
		}
		j++
	}
	if i == j {
		// Disjoint: splice in at the search position.
		b.routed = append(b.routed, pageRange{})
		copy(b.routed[i+1:], b.routed[i:])
		b.routed[i] = pageRange{lo, hi}
		return
	}
	b.routed[i] = pageRange{lo, hi}
	b.routed = append(b.routed[:i+1], b.routed[j:]...)
}

// RoutedPageCount reports how many NVM pages are registered to route
// through the page cache (PDRAM-Lite's bounded directory; 0 for other
// domains, whose routing is implicit).
func (b *Bus) RoutedPageCount() int {
	if !b.lockstep {
		b.routeMu.RLock()
		defer b.routeMu.RUnlock()
	}
	n := uint64(0)
	for _, r := range b.routed {
		n += r.hi - r.lo
	}
	return int(n)
}

// routedNVM reports whether NVM word address a goes through the page
// cache under the current domain. The common domains (ADR, eADR,
// NoReserve) resolve to a single flag comparison; only PDRAM-Lite
// consults the registered ranges, and only concurrent-mode buses take
// the read lock to do so.
func (b *Bus) routedNVM(a memdev.Addr) bool {
	switch b.routeMode {
	case routeNone:
		return false
	case routeAll:
		return true
	}
	p := pagecache.PageOf(uint64(a))
	if !b.lockstep {
		b.routeMu.RLock()
		defer b.routeMu.RUnlock()
	}
	i := sort.Search(len(b.routed), func(i int) bool { return b.routed[i].hi > p })
	return i < len(b.routed) && b.routed[i].lo <= p
}

// Crash simulates a power failure at the maximum virtual time observed
// so far and applies the domain's persistence policy. The page cache,
// being DRAM, is dropped — but under the PDRAM domains its dirty pages
// are durable by construction (the domain's CachePersists handles the
// volatile image, since the simulated store is write-through; see the
// pagecache package doc).
func (b *Bus) Crash(vt int64) {
	b.CrashWith(vt, nil)
}

// CrashWith is Crash with an adversarial fault plan applied to the
// device policy (see memdev.CrashWith). The WPQ controller's in-flight
// ring is reset afterward: queued drain deadlines are hardware state
// that does not survive the failure.
func (b *Bus) CrashWith(vt int64, faults []memdev.LineFault) {
	if b.pcache != nil {
		b.pcache.Drop()
	}
	b.dev.CrashWith(vt, b.domain, faults)
	b.ctl.Reset()
}

// Quiesce cleanly drains all pending persistence traffic (orderly
// shutdown).
func (b *Bus) Quiesce() { b.dev.Quiesce() }
