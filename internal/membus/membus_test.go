package membus

import (
	"sync"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func busFor(t testing.TB, dom durability.Domain, threads int) *Bus {
	t.Helper()
	b, err := New(Config{
		Threads: threads,
		Domain:  dom,
		Dev:     memdev.Config{NVMWords: 1 << 16, DRAMWords: 1 << 14},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Threads: 0, Domain: durability.ADR,
		Dev: memdev.Config{NVMWords: 8, DRAMWords: 8}}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := New(Config{Threads: 1, Domain: durability.Domain(42),
		Dev: memdev.Config{NVMWords: 8, DRAMWords: 8}}); err == nil {
		t.Error("invalid domain accepted")
	}
	if _, err := New(Config{Threads: 1, Domain: durability.ADR,
		Dev: memdev.Config{NVMWords: 7, DRAMWords: 8}}); err == nil {
		t.Error("invalid device config accepted")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	c.Store(100, 42)
	if v := c.Load(100); v != 42 {
		t.Fatalf("load = %d, want 42", v)
	}
	c.Store(memdev.DRAMBase+5, 9)
	if v := c.Load(memdev.DRAMBase + 5); v != 9 {
		t.Fatalf("DRAM load = %d, want 9", v)
	}
}

func TestTimeAdvancesOnAccess(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	t0 := c.Now()
	c.Load(0) // cold miss: NVM media
	coldNVM := c.Now() - t0
	if coldNVM < b.lat.NVMBase {
		t.Fatalf("NVM cold miss took %d ns, want >= %d", coldNVM, b.lat.NVMBase)
	}
	t1 := c.Now()
	c.Load(0) // L1 hit
	if d := c.Now() - t1; d != b.lat.L1Hit {
		t.Fatalf("L1 hit took %d ns, want %d", d, b.lat.L1Hit)
	}
}

func TestNVMLoadSlowerThanDRAM(t *testing.T) {
	b := busFor(t, durability.ADR, 2)
	cn := b.NewContext(0)
	cd := b.NewContext(1)
	done := make(chan int64, 2)
	go func() {
		t0 := cn.Now()
		cn.Load(0)
		done <- cn.Now() - t0
		cn.Detach()
	}()
	go func() {
		t0 := cd.Now()
		cd.Load(memdev.DRAMBase)
		done <- cd.Now() - t0
		cd.Detach()
	}()
	a, bb := <-done, <-done
	lo, hi := min64t(a, bb), max64(a, bb)
	// NVM cold load should be roughly 3x the DRAM one.
	if hi < 2*lo {
		t.Fatalf("NVM/DRAM cold-miss ratio too small: %d vs %d", hi, lo)
	}
}

func min64t(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestCLWBElidedUnderEADR(t *testing.T) {
	for _, dom := range []durability.Domain{durability.EADR, durability.PDRAM, durability.PDRAMLite} {
		b := busFor(t, dom, 1)
		c := b.NewContext(0)
		c.Store(0, 1)
		t0 := c.Now()
		c.CLWB(0)
		c.SFence()
		if c.Now() != t0 {
			t.Errorf("%v: clwb+sfence advanced time by %d", dom, c.Now()-t0)
		}
		s := c.Stats()
		if s.Flushes != 0 || s.Fences != 0 {
			t.Errorf("%v: elided ops counted: %+v", dom, s)
		}
		c.Detach()
	}
}

func TestCLWBChargedUnderADR(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	c.Store(0, 1)
	t0 := c.Now()
	c.CLWB(0)
	if d := c.Now() - t0; d < b.lat.CLWBNvm {
		t.Fatalf("NVM clwb took %d, want >= %d", d, b.lat.CLWBNvm)
	}
	s := c.Stats()
	if s.Flushes != 1 {
		t.Fatalf("flush count = %d", s.Flushes)
	}
}

func TestSFenceWaitsForAccept(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	// Saturate the WPQ so accepts fall behind, then fence.
	for i := 0; i < 200; i++ {
		a := memdev.Addr(i * memdev.WordsPerLine)
		c.Store(a, 1)
		c.CLWB(a)
	}
	preFence := c.Now()
	c.SFence()
	if c.Now() < preFence+b.lat.SFenceBase {
		t.Fatal("fence cost not charged")
	}
	if s := c.Stats(); s.Fences != 1 {
		t.Fatalf("fence count = %d", s.Fences)
	}
}

func TestCrashADRKeepsFlushedOnly(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	c.Store(0, 11)
	c.CLWB(0)
	c.SFence()
	c.Store(64, 22) // line 8, never flushed
	vt := c.Now()
	c.Detach()
	b.Crash(vt)
	if b.Device().Load(0) != 11 {
		t.Fatal("flushed+fenced store lost under ADR")
	}
	if b.Device().Load(64) != 0 {
		t.Fatal("unflushed store survived ADR crash")
	}
}

func TestCrashEADRKeepsEverything(t *testing.T) {
	b := busFor(t, durability.EADR, 1)
	c := b.NewContext(0)
	c.Store(0, 11)
	c.Store(64, 22)
	vt := c.Now()
	c.Detach()
	b.Crash(vt)
	if b.Device().Load(0) != 11 || b.Device().Load(64) != 22 {
		t.Fatal("stores lost under eADR")
	}
}

func TestPDRAMRoutesNVMThroughPageCache(t *testing.T) {
	b := busFor(t, durability.PDRAM, 1)
	c := b.NewContext(0)
	defer c.Detach()
	c.Load(0)
	st := b.PageCache().Stats()
	if st.Misses != 1 {
		t.Fatalf("page cache misses = %d, want 1 (cold fault)", st.Misses)
	}
	// A far-away word on the same page: CPU cache miss, page hit.
	c.Load(256)
	st = b.PageCache().Stats()
	if st.Hits != 1 {
		t.Fatalf("page cache hits = %d, want 1", st.Hits)
	}
}

func TestPDRAMWarmSpeedApproachesDRAM(t *testing.T) {
	// After warmup, PDRAM NVM accesses should be DRAM-class, far from
	// NVM-class. Compare cold NVM (ADR) vs warm PDRAM miss costs.
	bp := busFor(t, durability.PDRAM, 1)
	cp := bp.NewContext(0)
	defer cp.Detach()
	// Touch enough distinct lines on one page to stay within the page
	// but miss the L1 (stride one line).
	for i := 0; i < 8; i++ {
		cp.Load(memdev.Addr(i * memdev.WordsPerLine))
	}
	t0 := cp.Now()
	cp.Load(memdev.Addr(8 * memdev.WordsPerLine)) // same page, new line
	warm := cp.Now() - t0
	if warm > 200 {
		t.Fatalf("warm PDRAM line miss took %d ns, want DRAM-class (< 200)", warm)
	}
}

func TestPDRAMLiteRoutesOnlyRegisteredRanges(t *testing.T) {
	b := busFor(t, durability.PDRAMLite, 1)
	b.RoutePages(0, 512) // first page only
	c := b.NewContext(0)
	defer c.Detach()
	c.Load(0) // routed: page fault
	if st := b.PageCache().Stats(); st.Misses != 1 {
		t.Fatalf("routed load did not hit directory: %+v", st)
	}
	c.Load(4096) // outside the routed range: direct NVM
	if st := b.PageCache().Stats(); st.Misses != 1 {
		t.Fatalf("unrouted load went through page cache: %+v", st)
	}
}

func TestRoutePagesIgnoredOutsidePDRAMLite(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	b.RoutePages(0, 512)
	c := b.NewContext(0)
	defer c.Detach()
	c.Load(0)
	if b.PageCache() != nil {
		t.Fatal("ADR bus has a page cache")
	}
}

func TestEvictionTraffic(t *testing.T) {
	// Writing far more lines than the hierarchy holds must generate
	// WPQ traffic even without explicit flushes (the eADR writeback
	// path the paper describes in §III-C).
	b, err := New(Config{
		Threads: 1,
		Domain:  durability.EADR,
		Dev:     memdev.Config{NVMWords: 1 << 16, DRAMWords: 1 << 14},
		L3Lines: 1024, // small L3 so the working set overflows it
	})
	if err != nil {
		t.Fatal(err)
	}
	c := b.NewContext(0)
	defer c.Detach()
	for i := 0; i < 8192; i++ {
		c.Store(memdev.Addr(i*memdev.WordsPerLine), uint64(i))
	}
	accepts, _ := b.Controller().Stats()
	if accepts == 0 {
		t.Fatal("no natural writeback traffic reached the WPQ")
	}
}

func TestStatsCounts(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	c.Load(0)
	c.Store(0, 1)
	c.CLWB(0)
	c.SFence()
	s := c.Stats()
	if s.Loads != 1 || s.Stores != 1 || s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestComputeAdvances(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	c.Compute(500)
	if c.Now() != 500 {
		t.Fatalf("Now = %d after Compute(500)", c.Now())
	}
	c.MetaOp()
	if c.Now() != 500+b.lat.MetaOp {
		t.Fatalf("Now = %d after MetaOp", c.Now())
	}
}

func TestTIDOutOfRangePanics(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range tid accepted")
		}
	}()
	b.NewContext(1)
}

func TestConcurrentContexts(t *testing.T) {
	const threads = 8
	b := busFor(t, durability.ADR, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := b.NewContext(tid)
			defer c.Detach()
			base := memdev.Addr(tid * 1024)
			for i := 0; i < 500; i++ {
				a := base + memdev.Addr(i%128)
				c.Store(a, uint64(i))
				if i%8 == 0 {
					c.CLWB(a)
					c.SFence()
				}
				c.Load(a)
			}
		}(tid)
	}
	wg.Wait()
	// Every thread's private region must hold its final values.
	dev := b.Device()
	for tid := 0; tid < threads; tid++ {
		base := memdev.Addr(tid * 1024)
		for i := 0; i < 128; i++ {
			want := uint64(499 - (499-i)%128 + i - i) // last store to slot i
			_ = want
			_ = dev.Load(base + memdev.Addr(i))
		}
	}
}

func TestQuiesceMakesAllDurable(t *testing.T) {
	b := busFor(t, durability.NoReserve, 1)
	c := b.NewContext(0)
	c.Store(0, 77)
	c.CLWB(0)
	c.SFence()
	vt := c.Now()
	c.Detach()
	b.Quiesce()
	b.Crash(vt)
	if b.Device().Load(0) != 77 {
		t.Fatal("quiesced store lost")
	}
}

func TestNTStoreDurableAfterFence(t *testing.T) {
	// A fenced NT store is durable with no clwb at all; an unfenced
	// one sits in the volatile write-combining buffer and dies with
	// the power.
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	c.NTStore(0, 77)
	c.SFence()
	c.NTStore(64, 88) // line 8: unfenced, still write-combining
	vt := c.Now()
	c.Detach()
	b.Crash(vt)
	if b.Device().Load(0) != 77 {
		t.Fatal("fenced non-temporal store lost under ADR")
	}
	if b.Device().Load(64) != 0 {
		t.Fatal("unfenced NT store survived; WC buffers must be volatile")
	}
}

func TestNTStoreCoalescesSameLine(t *testing.T) {
	// Consecutive NT stores to one line must merge into a single WPQ
	// entry (the write-combining buffer), not one per word.
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	for w := 0; w < memdev.WordsPerLine; w++ {
		c.NTStore(memdev.Addr(w), uint64(w+1))
	}
	c.SFence()
	accepts, _ := b.Controller().Stats()
	if accepts != 1 {
		t.Fatalf("8 same-line NT stores produced %d WPQ entries, want 1", accepts)
	}
	// And the flushed payload carries every word.
	vt := c.Now()
	b.Crash(vt)
	for w := 0; w < memdev.WordsPerLine; w++ {
		if got := b.Device().Load(memdev.Addr(w)); got != uint64(w+1) {
			t.Fatalf("word %d = %d after crash, want %d", w, got, w+1)
		}
	}
}

func TestNTStoreBypassesCache(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	c.NTStore(64, 5) // line 8
	// A subsequent load must MISS (the line was never cached).
	t0 := c.Now()
	if got := c.Load(64); got != 5 {
		t.Fatalf("load after ntstore = %d", got)
	}
	if d := c.Now() - t0; d < 100 {
		t.Fatalf("load after ntstore hit a cache (%d ns); NT stores must bypass", d)
	}
}

func TestNTStoreFeedsFence(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	// Saturate the WPQ with NT stores; the next fence must wait.
	for i := 0; i < 200; i++ {
		c.NTStore(memdev.Addr(i*memdev.WordsPerLine), 1)
	}
	t0 := c.Now()
	c.SFence()
	if c.Now()-t0 <= b.lat.SFenceBase {
		t.Fatal("fence after saturating NT stores did not wait for accepts")
	}
}

func TestNTStoreToDRAM(t *testing.T) {
	b := busFor(t, durability.ADR, 1)
	c := b.NewContext(0)
	defer c.Detach()
	c.NTStore(memdev.DRAMBase+3, 9)
	if c.Load(memdev.DRAMBase+3) != 9 {
		t.Fatal("DRAM ntstore lost")
	}
}

func TestPDRAMStoreMissFaultsPage(t *testing.T) {
	b := busFor(t, durability.PDRAM, 1)
	c := b.NewContext(0)
	defer c.Detach()
	c.Store(0, 5) // write miss: page fault with write-allocate
	st := b.PageCache().Stats()
	if st.Misses != 1 {
		t.Fatalf("page-cache misses = %d, want 1", st.Misses)
	}
	dirty := b.PageCache().DirtyPages()
	if len(dirty) != 1 || dirty[0] != 0 {
		t.Fatalf("dirty pages = %v, want [0]", dirty)
	}
}

func TestPDRAMWritebackStaysOffNVMPorts(t *testing.T) {
	// Under PDRAM, dirty L3 victims go to the DRAM frame, not the WPQ:
	// the NVM write ports see only page-granularity traffic.
	b, err := New(Config{
		Threads: 1,
		Domain:  durability.PDRAM,
		Dev:     memdev.Config{NVMWords: 1 << 16, DRAMWords: 1 << 14},
		L3Lines: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := b.NewContext(0)
	defer c.Detach()
	// Stay within one page-cache working set but overflow the L3.
	for i := 0; i < 4096; i++ {
		c.Store(memdev.Addr((i%2048)*memdev.WordsPerLine%(1<<16)), uint64(i))
	}
	accepts, _ := b.Controller().Stats()
	if accepts != 0 {
		t.Fatalf("PDRAM line evictions reached the WPQ: %d accepts", accepts)
	}
}

func TestQuiesceThenNoReserveCrash(t *testing.T) {
	b := busFor(t, durability.NoReserve, 1)
	c := b.NewContext(0)
	c.Store(0, 3)
	c.CLWB(0)
	vt := c.Now()
	c.Detach()
	// Without quiesce the drain may be in flight; with quiesce the
	// strictest domain keeps the data.
	b.Quiesce()
	b.Crash(vt)
	if b.Device().Load(0) != 3 {
		t.Fatal("quiesced store lost under NoReserve")
	}
}
