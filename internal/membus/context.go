package membus

import (
	"goptm/internal/cachesim"
	"goptm/internal/memdev"
	"goptm/internal/obs"
	"goptm/internal/pagecache"
	"goptm/internal/simtime"
	"goptm/internal/wpq"
)

// Stats counts the memory operations a context has performed.
type Stats struct {
	Loads   int64
	Stores  int64
	Flushes int64 // clwb actually issued (0 when the domain elides them)
	Fences  int64 // sfence actually issued
}

// Context is one simulated hardware thread's view of the memory
// system. All methods must be called from the goroutine that owns the
// context.
type Context struct {
	bus *Bus
	th  *simtime.Thread
	tid int

	pendingFence int64 // latest clwb accept time since the last fence
	wcLine       int64 // NT write-combining buffer: current line, -1 if empty
	// unfenced lists NVM lines flushed since the last sfence: their WPQ
	// entries are not yet ordered (see memdev.WPQMarkOrdered) and are
	// fair game for the crash checker's adversarial drops.
	unfenced []uint64
	stats    Stats
	rec      *obs.ThreadRecorder // nil when observability is off
}

// NewContext attaches a thread context. tid must be unique and in
// [0, cfg.Threads).
func (b *Bus) NewContext(tid int) *Context {
	if tid < 0 || tid >= b.cfg.Threads {
		panic("membus: tid out of range")
	}
	return &Context{bus: b, th: b.engine.NewThread(tid), tid: tid, wcLine: -1, rec: b.rec.Thread(tid)}
}

// Now reports the context's virtual time.
func (c *Context) Now() int64 { return c.th.Now() }

// TID reports the context's thread id.
func (c *Context) TID() int { return c.tid }

// Bus returns the owning bus.
func (c *Context) Bus() *Bus { return c.bus }

// Stats returns the operation counters so far.
func (c *Context) Stats() Stats { return c.stats }

// Detach releases the context from the virtual-time barrier. Must be
// called when the owning goroutine finishes.
func (c *Context) Detach() { c.th.Detach() }

// Compute advances the thread's clock by ns of non-memory work.
func (c *Context) Compute(ns int64) { c.th.Advance(ns) }

// MetaOp charges one STM metadata operation (orec CAS, version-clock
// access). Metadata lives in DRAM and is modeled as a fixed cost.
func (c *Context) MetaOp() { c.th.Advance(c.bus.lat.MetaOp) }

// Load reads the word at a, charging the appropriate latency.
func (c *Context) Load(a memdev.Addr) uint64 {
	c.stats.Loads++
	c.access(a, false)
	return c.bus.dev.Load(a)
}

// Store writes the word at a, charging the appropriate latency and
// generating writeback traffic for displaced dirty lines.
func (c *Context) Store(a memdev.Addr, v uint64) {
	c.stats.Stores++
	c.access(a, true)
	c.bus.dev.Store(a, v)
	if c.bus.tap != nil && c.bus.dev.IsNVM(a) {
		c.bus.tap(PersistEvent{Kind: PEStore, Addr: a, Line: uint64(a) >> memdev.LineShift, TID: c.tid})
	}
}

// access runs the cache/pagecache/media timing for one word access.
func (c *Context) access(a memdev.Addr, write bool) {
	b := c.bus
	line := uint64(a) >> memdev.LineShift
	res := b.cache.Access(c.tid, line, write)

	// Dirty L3 victims travel to their backing store.
	if res.HasWriteback {
		c.writeback(res.WritebackLine)
	}

	now := c.th.Now()
	switch res.Level {
	case cachesim.HitL1:
		if write {
			c.th.Advance(b.lat.StoreHit)
		} else {
			c.th.Advance(b.lat.L1Hit)
		}
	case cachesim.HitL2:
		c.th.Advance(b.lat.L2Hit)
	case cachesim.HitL3:
		c.th.Advance(b.lat.L3Hit)
	default: // Miss — serviced by memory
		c.miss(a, now, write)
	}

	// Keep the page-cache dirty set conservative: any store to a
	// routed page marks it dirty even if it hit in a private level.
	// routeMode short-circuits the whole check for the domains with no
	// page cache on the NVM path.
	if write && b.routeMode != routeNone && b.dev.IsNVM(a) && b.routedNVM(a) {
		b.pcache.MarkDirty(pagecache.PageOf(uint64(a)))
	}
}

// miss services a cache miss (or RFO for a store miss) from memory.
func (c *Context) miss(a memdev.Addr, now int64, write bool) {
	b := c.bus
	switch {
	case b.dev.IsDRAM(a):
		done := b.ctl.ReadDRAM(now)
		c.th.AdvanceTo(done + b.lat.DRAMBase)
	case b.routedNVM(a):
		// Memory-Mode path: directory probe, then DRAM frame or page
		// fault.
		c.th.Advance(b.lat.PageDirProbe)
		faultStart := c.th.Now()
		done, hit := b.pcache.Access(faultStart, c.tid, pagecache.PageOf(uint64(a)), write)
		if hit {
			done = b.ctl.ReadDRAM(c.th.Now())
			c.th.AdvanceTo(done + b.lat.DRAMBase)
		} else {
			// Page fault: the wait is media time (fetch, possibly behind
			// a victim writeback).
			c.th.AdvanceTo(done + b.lat.DRAMBase)
			c.rec.Span(obs.PhaseMediaWait, faultStart, c.th.Now())
		}
	default:
		done := b.ctl.ReadNVM(now, uint64(a)>>memdev.LineShift)
		c.th.AdvanceTo(done + b.lat.NVMBase)
		c.rec.Span(obs.PhaseMediaWait, now, c.th.Now())
	}
}

// writeback routes a displaced dirty line toward its backing store.
// NVM lines enter the WPQ (and thereby the ADR durability domain);
// DRAM and page-cache-routed lines go to the DRAM channel.
func (c *Context) writeback(line uint64) {
	b := c.bus
	a := memdev.Addr(line << memdev.LineShift)
	if b.dev.IsNVM(a) && !b.routedNVM(a) {
		_, drain := b.ctl.EnqueueNVM(c.th.Now(), c.tid, line, wpq.CauseEviction)
		b.dev.WPQAccept(line, drain)
		return
	}
	b.ctl.WriteDRAM(c.th.Now())
	if b.routeMode != routeNone && b.dev.IsNVM(a) && b.routedNVM(a) {
		b.pcache.MarkDirty(pagecache.PageOf(uint64(a)))
	}
}

// NTStore performs a non-temporal store: the word bypasses the cache
// hierarchy (no write-allocate RFO) and lands in the thread's
// write-combining buffer. Consecutive stores to the same line merge;
// the buffer drains into the WPQ when the stream moves to another
// line or at the next SFence — mirroring real movnt semantics, where
// a WC buffer is volatile until it is flushed. PTMs use movnt for
// exactly the streaming log writes this models.
func (c *Context) NTStore(a memdev.Addr, v uint64) {
	b := c.bus
	c.stats.Stores++
	if b.dev.IsNVM(a) && !b.routedNVM(a) {
		line := int64(uint64(a) >> memdev.LineShift)
		if line != c.wcLine {
			c.flushWC()
			c.wcLine = line
		}
		b.dev.Store(a, v)
		c.th.Advance(b.lat.StoreHit)
		if b.tap != nil {
			b.tap(PersistEvent{Kind: PENTStore, Addr: a, Line: uint64(line), TID: c.tid})
		}
		return
	}
	b.dev.Store(a, v)
	done := b.ctl.WriteDRAM(c.th.Now())
	if done > c.pendingFence {
		c.pendingFence = done
	}
	c.th.Advance(b.lat.StoreHit)
	if b.tap != nil && b.dev.IsNVM(a) {
		b.tap(PersistEvent{Kind: PENTStore, Addr: a, Line: uint64(a) >> memdev.LineShift, TID: c.tid})
	}
}

// flushWC drains the write-combining buffer into the WPQ. A crash
// before the flush loses the buffered line (WC buffers have no power
// reserve), which is why NT-store protocols still fence.
func (c *Context) flushWC() {
	if c.wcLine < 0 {
		return
	}
	b := c.bus
	line := uint64(c.wcLine)
	c.wcLine = -1
	now := c.th.Now()
	accept, drain := b.ctl.EnqueueNVM(now, c.tid, line, wpq.CauseWCDrain)
	b.dev.WPQAccept(line, drain)
	c.rec.Span(obs.PhaseWPQStall, now, accept)
	if accept > c.pendingFence {
		c.pendingFence = accept
	}
	c.unfenced = append(c.unfenced, line)
	if b.tap != nil {
		b.tap(PersistEvent{Kind: PEWCDrain, Addr: memdev.LineAddr(line), Line: line, TID: c.tid})
	}
}

// CLWB flushes the line containing a toward the durability domain.
// Elided (no cost, no effect) when the domain does not require
// flushes. The instruction is asynchronous: the thread pays only the
// issue latency, while the flush's WPQ-accept time accumulates into
// the pending-fence horizon that the next SFence waits for. Under WPQ
// backpressure accept times fall behind, which is exactly how flush
// pressure turns into fence latency (§III-B). For DRAM lines (the
// paper's non-persistent ramdisk configuration) the flush occupies the
// DRAM channel instead.
func (c *Context) CLWB(a memdev.Addr) {
	b := c.bus
	if b.flushElided {
		return
	}
	c.stats.Flushes++
	line := uint64(a) >> memdev.LineShift
	b.cache.Clean(line)
	now := c.th.Now()
	if b.dev.IsNVM(a) {
		accept, drain := b.ctl.EnqueueNVM(now, c.tid, line, wpq.CauseCLWB)
		b.dev.WPQAccept(line, drain)
		// A clwb is asynchronous, so a queue-full delay is not a stall
		// *here* — it pushes the fence horizon out. Attribute the delay
		// to the WPQ anyway: it is the root cause the fence will pay for.
		c.rec.Span(obs.PhaseWPQStall, now, accept)
		if accept > c.pendingFence {
			c.pendingFence = accept
		}
		c.th.Advance(b.lat.CLWBNvm)
		c.unfenced = append(c.unfenced, line)
		if b.tap != nil {
			b.tap(PersistEvent{Kind: PECLWB, Addr: a, Line: line, TID: c.tid})
		}
		return
	}
	done := b.ctl.WriteDRAM(now)
	if done > c.pendingFence {
		c.pendingFence = done
	}
	c.th.Advance(b.lat.CLWBDram)
}

// SFence orders prior flushes: the thread waits until every clwb since
// the last fence has been accepted into the durability domain. Elided
// when the domain does not require fences.
func (c *Context) SFence() {
	b := c.bus
	if b.fenceElided {
		return
	}
	c.flushWC()
	c.stats.Fences++
	start := c.th.Now()
	target := start + b.lat.SFenceBase
	if c.pendingFence > target {
		target = c.pendingFence
	}
	c.th.AdvanceTo(target)
	c.rec.Span(obs.PhaseFenceWait, start, target)
	c.pendingFence = 0
	if len(c.unfenced) > 0 {
		b.dev.WPQMarkOrdered(c.unfenced)
		c.unfenced = c.unfenced[:0]
	}
	if b.tap != nil {
		b.tap(PersistEvent{Kind: PESFence, TID: c.tid})
	}
}
