package membus

import (
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/metrics"
)

// TestHotPathZeroAlloc pins the recorder-disabled load/store/clwb path
// at zero heap allocations per operation. Every transactional read,
// write, and persist in a sweep bottoms out here, so a single stray
// allocation (a closure, an interface conversion, a map insert)
// multiplies into gigabytes of garbage across a figure run. A warmup
// pass brings all amortized state — cache entries, WPQ ring, pending
// slots, the unfenced-line scratch — to steady-state capacity first,
// so the measurement sees only the per-op cost.
func TestHotPathZeroAlloc(t *testing.T) {
	bus := MustNew(Config{
		Threads:  1,
		Domain:   durability.ADR,
		Dev:      memdev.Config{NVMWords: 1 << 16, DRAMWords: 1 << 14},
		Lockstep: true,
	})
	ctx := bus.NewContext(0)
	defer ctx.Detach()

	const span = 1 << 12 // words
	for i := uint64(0); i < span; i++ {
		a := memdev.Addr(i)
		ctx.Store(a, i)
		ctx.CLWB(a)
		if i%64 == 0 {
			ctx.SFence()
		}
	}
	ctx.SFence()

	var i uint64
	if n := testing.AllocsPerRun(2000, func() {
		a := memdev.Addr(i * 9 % span)
		ctx.Store(a, i)
		ctx.CLWB(a)
		ctx.SFence()
		ctx.Load(a)
		i++
	}); n != 0 {
		t.Errorf("store/clwb/sfence/load allocated %.2f allocs per run; the recorder-disabled hot path must stay allocation-free", n)
	}
}

// TestHotPathZeroAllocWithMetrics repeats the pin with a counter
// registry attached: the media model is fixed arrays and the counters
// atomics, so an *enabled* registry must also cost zero allocations
// per op (the series sampler allocates only on its interval ticks,
// which the commit path drives, not this path).
func TestHotPathZeroAllocWithMetrics(t *testing.T) {
	bus := MustNew(Config{
		Threads:  1,
		Domain:   durability.ADR,
		Dev:      memdev.Config{NVMWords: 1 << 16, DRAMWords: 1 << 14},
		Lockstep: true,
		Metrics:  metrics.New(metrics.Config{Serial: true}),
	})
	ctx := bus.NewContext(0)
	defer ctx.Detach()

	const span = 1 << 12
	for i := uint64(0); i < span; i++ {
		a := memdev.Addr(i)
		ctx.Store(a, i)
		ctx.CLWB(a)
		if i%64 == 0 {
			ctx.SFence()
		}
	}
	ctx.SFence()

	var i uint64
	if n := testing.AllocsPerRun(2000, func() {
		a := memdev.Addr(i * 9 % span)
		ctx.Store(a, i)
		ctx.CLWB(a)
		ctx.SFence()
		ctx.Load(a)
		i++
	}); n != 0 {
		t.Errorf("metrics-enabled hot path allocated %.2f allocs per run; counting must stay allocation-free", n)
	}
}
