package phash

import (
	"sync"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/simtime"
)

func newTM(t testing.TB, algo core.Algo, threads int) *core.TM {
	t.Helper()
	tm, err := core.New(core.Config{
		Algo:          algo,
		Medium:        core.MediumNVM,
		Domain:        durability.ADR,
		Threads:       threads,
		HeapWords:     1 << 20,
		MaxLogEntries: 512,
		OrecSize:      1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

var bothAlgos = []core.Algo{core.OrecLazy, core.OrecEager}

func TestCreateValidation(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two bucket count accepted")
		}
	}()
	th.Atomic(func(tx *core.Tx) { Create(tx, 100) })
}

func TestPutGetDelete(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := newTM(t, algo, 1)
		th := tm.Thread(0)
		var m Map
		th.Atomic(func(tx *core.Tx) { m = Create(tx, 64) })
		for k := uint64(0); k < 200; k++ {
			k := k
			th.Atomic(func(tx *core.Tx) {
				if !m.Put(tx, k, k*3) {
					t.Errorf("%v: fresh put(%d) reported update", algo, k)
				}
			})
		}
		th.Atomic(func(tx *core.Tx) {
			for k := uint64(0); k < 200; k++ {
				v, ok := m.Get(tx, k)
				if !ok || v != k*3 {
					t.Fatalf("%v: get(%d) = (%d,%v)", algo, k, v, ok)
				}
			}
			if _, ok := m.Get(tx, 999); ok {
				t.Errorf("%v: found absent key", algo)
			}
			if m.Len(tx) != 200 {
				t.Errorf("%v: len = %d", algo, m.Len(tx))
			}
		})
		th.Atomic(func(tx *core.Tx) {
			if !m.Delete(tx, 100) {
				t.Errorf("%v: delete missed", algo)
			}
			if m.Delete(tx, 100) {
				t.Errorf("%v: double delete succeeded", algo)
			}
		})
		th.Atomic(func(tx *core.Tx) {
			if _, ok := m.Get(tx, 100); ok {
				t.Errorf("%v: deleted key still present", algo)
			}
			if m.Len(tx) != 199 {
				t.Errorf("%v: len = %d after delete", algo, m.Len(tx))
			}
		})
		th.Detach()
	}
}

func TestPutUpdates(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	th.Atomic(func(tx *core.Tx) {
		m := Create(tx, 16)
		m.Put(tx, 7, 1)
		if m.Put(tx, 7, 2) {
			t.Error("update reported as fresh")
		}
		if v, _ := m.Get(tx, 7); v != 2 {
			t.Errorf("value = %d, want 2", v)
		}
		if m.Len(tx) != 1 {
			t.Error("update grew the map")
		}
	})
}

func TestDeleteHeadMiddleTail(t *testing.T) {
	// Force collisions with a single bucket to exercise chain surgery.
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var m Map
	th.Atomic(func(tx *core.Tx) {
		m = Create(tx, 1)
		for k := uint64(1); k <= 5; k++ {
			m.Put(tx, k, k)
		}
	})
	// Chain order is insertion-dependent; delete middle, tail, head.
	for _, k := range []uint64{3, 1, 5} {
		k := k
		th.Atomic(func(tx *core.Tx) {
			if !m.Delete(tx, k) {
				t.Fatalf("delete(%d) missed", k)
			}
		})
	}
	th.Atomic(func(tx *core.Tx) {
		if m.Len(tx) != 2 {
			t.Fatalf("len = %d, want 2", m.Len(tx))
		}
		for _, k := range []uint64{2, 4} {
			if _, ok := m.Get(tx, k); !ok {
				t.Fatalf("survivor %d missing", k)
			}
		}
	})
}

func TestDeleteFreesNodes(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var m Map
	th.Atomic(func(tx *core.Tx) {
		m = Create(tx, 16)
		m.Put(tx, 1, 1)
	})
	live := tm.Heap().LiveBlocks()
	th.Atomic(func(tx *core.Tx) { m.Delete(tx, 1) })
	if tm.Heap().LiveBlocks() != live-1 {
		t.Fatal("delete did not free the node")
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := newTM(t, algo, 1)
		th := tm.Thread(0)
		var m Map
		th.Atomic(func(tx *core.Tx) { m = Create(tx, 32) })
		model := map[uint64]uint64{}
		r := simtime.NewRand(11)
		for i := 0; i < 3000; i++ {
			k := r.Uint64n(200)
			switch r.Intn(3) {
			case 0:
				v := r.Uint64()
				model[k] = v
				th.Atomic(func(tx *core.Tx) { m.Put(tx, k, v) })
			case 1:
				_, want := model[k]
				delete(model, k)
				var got bool
				th.Atomic(func(tx *core.Tx) { got = m.Delete(tx, k) })
				if got != want {
					t.Fatalf("%v: delete(%d) = %v, want %v", algo, k, got, want)
				}
			default:
				wantV, want := model[k]
				var gotV uint64
				var got bool
				th.Atomic(func(tx *core.Tx) { gotV, got = m.Get(tx, k) })
				if got != want || (want && gotV != wantV) {
					t.Fatalf("%v: get(%d) = (%d,%v), want (%d,%v)", algo, k, gotV, got, wantV, want)
				}
			}
		}
		th.Atomic(func(tx *core.Tx) {
			if m.Len(tx) != len(model) {
				t.Fatalf("%v: len = %d, model = %d", algo, m.Len(tx), len(model))
			}
		})
		th.Detach()
	}
}

func TestConcurrentMixed(t *testing.T) {
	const threads = 4
	for _, algo := range bothAlgos {
		tm := newTM(t, algo, threads)
		setup := tm.Thread(0)
		var m Map
		setup.Atomic(func(tx *core.Tx) { m = Create(tx, 64) })
		setup.Detach()
		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				th := tm.Thread(tid)
				defer th.Detach()
				r := th.Rand()
				for i := 0; i < 250; i++ {
					k := r.Uint64n(128)
					switch r.Intn(3) {
					case 0:
						th.Atomic(func(tx *core.Tx) { m.Put(tx, k, k) })
					case 1:
						th.Atomic(func(tx *core.Tx) { m.Delete(tx, k) })
					default:
						th.Atomic(func(tx *core.Tx) { m.Get(tx, k) })
					}
				}
			}(tid)
		}
		wg.Wait()
		// Integrity: no duplicate keys across chains; stored values
		// equal their keys.
		check := tm.Thread(0)
		check.Atomic(func(tx *core.Tx) {
			seen := map[uint64]bool{}
			for k := uint64(0); k < 128; k++ {
				if v, ok := m.Get(tx, k); ok {
					if v != k {
						t.Fatalf("%v: value mismatch %d->%d", algo, k, v)
					}
					if seen[k] {
						t.Fatalf("%v: duplicate key %d", algo, k)
					}
					seen[k] = true
				}
			}
		})
		check.Detach()
	}
}

func TestCrashRecoveryPreservesMap(t *testing.T) {
	tm := newTM(t, core.OrecEager, 1)
	th := tm.Thread(0)
	var m Map
	th.Atomic(func(tx *core.Tx) { m = Create(tx, 64) })
	for k := uint64(0); k < 150; k++ {
		k := k
		th.Atomic(func(tx *core.Tx) { m.Put(tx, k, k|0xF00) })
	}
	tm.SetRoot(th, 0, m.Table())
	vt := th.Now()
	th.Detach()
	tm.Crash(vt)
	tm2, _, err := core.Reopen(tm.Bus(), tm.Config())
	if err != nil {
		t.Fatal(err)
	}
	th2 := tm2.Thread(0)
	defer th2.Detach()
	m2 := Open(tm2.Root(th2, 0))
	th2.Atomic(func(tx *core.Tx) {
		for k := uint64(0); k < 150; k++ {
			v, ok := m2.Get(tx, k)
			if !ok || v != k|0xF00 {
				t.Fatalf("post-recovery get(%d) = (%d,%v)", k, v, ok)
			}
		}
	})
}

func TestEmptyMapOperations(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	th.Atomic(func(tx *core.Tx) {
		m := Create(tx, 8)
		if _, ok := m.Get(tx, 1); ok {
			t.Fatal("get hit on empty map")
		}
		if m.Delete(tx, 1) {
			t.Fatal("delete hit on empty map")
		}
		if m.Len(tx) != 0 {
			t.Fatal("empty len not zero")
		}
	})
}

func TestOpenRoundTrip(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var table memdev.Addr
	th.Atomic(func(tx *core.Tx) {
		m := Create(tx, 8)
		m.Put(tx, 3, 33)
		table = m.Table()
	})
	m2 := Open(table)
	th.Atomic(func(tx *core.Tx) {
		if v, ok := m2.Get(tx, 3); !ok || v != 33 {
			t.Fatalf("reopened map get = (%d,%v)", v, ok)
		}
	})
}
