// Package phash implements a transactional persistent hash table with
// open chaining over the PTM word heap — the index used by the
// paper's TPCC (Hash Table), TATP, and memcached-style workloads.
//
// The bucket array is one block; each entry chains nodes of
// (key, value, next). The table does not resize: the paper's
// experiments size their tables up front, and resizing under a PTM
// would distort the transaction profile being measured.
package phash

import (
	"goptm/internal/core"
	"goptm/internal/memdev"
)

// Table layout: block of 1+N words: word 0 = bucket count, then heads.
const (
	offBuckets = 0
	offHeads   = 1
)

// Node layout.
const (
	nodeKey   = 0
	nodeVal   = 1
	nodeNext  = 2
	nodeWords = 3
)

// Map is a handle onto a persistent hash table.
type Map struct {
	table memdev.Addr
}

// Create allocates a table with buckets chains inside tx. buckets
// must be a power of two.
func Create(tx *core.Tx, buckets int) Map {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("phash: bucket count must be a positive power of two")
	}
	t := tx.AllocZeroed(uint64(1 + buckets))
	tx.Store(t+offBuckets, uint64(buckets))
	return Map{table: t}
}

// Open re-attaches to a table (e.g. from a heap root slot).
func Open(table memdev.Addr) Map { return Map{table: table} }

// Table returns the table block address for persisting in a root
// slot.
func (m Map) Table() memdev.Addr { return m.table }

func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return key
}

func (m Map) bucket(tx *core.Tx, key uint64) memdev.Addr {
	n := tx.Load(m.table + offBuckets)
	return m.table + offHeads + memdev.Addr(hash(key)&(n-1))
}

// Get returns the value stored under key.
func (m Map) Get(tx *core.Tx, key uint64) (uint64, bool) {
	node := memdev.Addr(tx.Load(m.bucket(tx, key)))
	for node != 0 {
		if tx.Load(node+nodeKey) == key {
			return tx.Load(node + nodeVal), true
		}
		node = memdev.Addr(tx.Load(node + nodeNext))
	}
	return 0, false
}

// Put stores (key, value), replacing any existing binding. It reports
// whether the key was newly inserted.
func (m Map) Put(tx *core.Tx, key, val uint64) bool {
	head := m.bucket(tx, key)
	node := memdev.Addr(tx.Load(head))
	for node != 0 {
		if tx.Load(node+nodeKey) == key {
			tx.Store(node+nodeVal, val)
			return false
		}
		node = memdev.Addr(tx.Load(node + nodeNext))
	}
	n := tx.Alloc(nodeWords)
	tx.Store(n+nodeKey, key)
	tx.Store(n+nodeVal, val)
	tx.Store(n+nodeNext, tx.Load(head))
	tx.Store(head, uint64(n))
	return true
}

// Delete removes key and reports whether it was present. The removed
// node is freed (the free takes effect only if the transaction
// commits).
func (m Map) Delete(tx *core.Tx, key uint64) bool {
	head := m.bucket(tx, key)
	prev := head
	isHead := true
	node := memdev.Addr(tx.Load(head))
	for node != 0 {
		if tx.Load(node+nodeKey) == key {
			next := tx.Load(node + nodeNext)
			if isHead {
				tx.Store(prev, next)
			} else {
				tx.Store(prev+nodeNext, next)
			}
			tx.Free(node)
			return true
		}
		prev, isHead = node, false
		node = memdev.Addr(tx.Load(node + nodeNext))
	}
	return false
}

// Len counts all stored keys (verification helper, walks every chain).
func (m Map) Len(tx *core.Tx) int {
	buckets := int(tx.Load(m.table + offBuckets))
	total := 0
	for b := 0; b < buckets; b++ {
		node := memdev.Addr(tx.Load(m.table + offHeads + memdev.Addr(b)))
		for node != 0 {
			total++
			node = memdev.Addr(tx.Load(node + nodeNext))
		}
	}
	return total
}
