package btree

import (
	"sort"
	"sync"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/simtime"
)

func newTM(t testing.TB, algo core.Algo, threads int) *core.TM {
	t.Helper()
	tm, err := core.New(core.Config{
		Algo:          algo,
		Medium:        core.MediumNVM,
		Domain:        durability.ADR,
		Threads:       threads,
		HeapWords:     1 << 20,
		MaxLogEntries: 512,
		OrecSize:      1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

var bothAlgos = []core.Algo{core.OrecLazy, core.OrecEager}

func TestInsertLookup(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := newTM(t, algo, 1)
		th := tm.Thread(0)
		var tr Tree
		th.Atomic(func(tx *core.Tx) { tr = Create(tx) })
		for k := uint64(0); k < 100; k++ {
			k := k
			th.Atomic(func(tx *core.Tx) {
				if !tr.Insert(tx, k, k*10) {
					t.Errorf("%v: insert of fresh key %d reported update", algo, k)
				}
			})
		}
		th.Atomic(func(tx *core.Tx) {
			for k := uint64(0); k < 100; k++ {
				v, ok := tr.Lookup(tx, k)
				if !ok || v != k*10 {
					t.Fatalf("%v: lookup(%d) = (%d, %v)", algo, k, v, ok)
				}
			}
			if _, ok := tr.Lookup(tx, 1000); ok {
				t.Errorf("%v: found absent key", algo)
			}
		})
		th.Detach()
	}
}

func TestInsertUpdates(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var tr Tree
	th.Atomic(func(tx *core.Tx) {
		tr = Create(tx)
		tr.Insert(tx, 5, 50)
		if tr.Insert(tx, 5, 55) {
			t.Error("update reported as fresh insert")
		}
		if v, _ := tr.Lookup(tx, 5); v != 55 {
			t.Errorf("updated value = %d", v)
		}
	})
}

func TestDelete(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := newTM(t, algo, 1)
		th := tm.Thread(0)
		var tr Tree
		th.Atomic(func(tx *core.Tx) { tr = Create(tx) })
		for k := uint64(0); k < 50; k++ {
			k := k
			th.Atomic(func(tx *core.Tx) { tr.Insert(tx, k, k) })
		}
		th.Atomic(func(tx *core.Tx) {
			for k := uint64(0); k < 50; k += 2 {
				if !tr.Delete(tx, k) {
					t.Errorf("%v: delete(%d) missed", algo, k)
				}
			}
			if tr.Delete(tx, 100) {
				t.Errorf("%v: deleted absent key", algo)
			}
		})
		th.Atomic(func(tx *core.Tx) {
			for k := uint64(0); k < 50; k++ {
				_, ok := tr.Lookup(tx, k)
				if want := k%2 == 1; ok != want {
					t.Fatalf("%v: post-delete lookup(%d) = %v, want %v", algo, k, ok, want)
				}
			}
			if tr.Count(tx) != 25 {
				t.Errorf("%v: count = %d, want 25", algo, tr.Count(tx))
			}
		})
		th.Detach()
	}
}

func TestSortedLeafChain(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var tr Tree
	r := simtime.NewRand(42)
	inserted := map[uint64]bool{}
	th.Atomic(func(tx *core.Tx) { tr = Create(tx) })
	for i := 0; i < 500; i++ {
		k := r.Uint64n(10000)
		inserted[k] = true
		th.Atomic(func(tx *core.Tx) { tr.Insert(tx, k, k) })
	}
	th.Atomic(func(tx *core.Tx) {
		keys := tr.Keys(tx)
		if len(keys) != len(inserted) {
			t.Fatalf("keys = %d, want %d", len(keys), len(inserted))
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Fatal("leaf chain out of order")
		}
		for _, k := range keys {
			if !inserted[k] {
				t.Fatalf("phantom key %d", k)
			}
		}
	})
}

func TestRandomOpsAgainstModel(t *testing.T) {
	// Property test: a random op sequence matches a map model.
	for _, algo := range bothAlgos {
		tm := newTM(t, algo, 1)
		th := tm.Thread(0)
		var tr Tree
		th.Atomic(func(tx *core.Tx) { tr = Create(tx) })
		model := map[uint64]uint64{}
		r := simtime.NewRand(7)
		for i := 0; i < 3000; i++ {
			k := r.Uint64n(300)
			switch r.Intn(3) {
			case 0:
				v := r.Uint64()
				model[k] = v
				th.Atomic(func(tx *core.Tx) { tr.Insert(tx, k, v) })
			case 1:
				_, want := model[k]
				delete(model, k)
				var got bool
				th.Atomic(func(tx *core.Tx) { got = tr.Delete(tx, k) })
				if got != want {
					t.Fatalf("%v: delete(%d) = %v, want %v", algo, k, got, want)
				}
			case 2:
				wantV, want := model[k]
				var got bool
				var gotV uint64
				th.Atomic(func(tx *core.Tx) { gotV, got = tr.Lookup(tx, k) })
				if got != want || (want && gotV != wantV) {
					t.Fatalf("%v: lookup(%d) = (%d,%v), want (%d,%v)", algo, k, gotV, got, wantV, want)
				}
			}
		}
		th.Atomic(func(tx *core.Tx) {
			if c := tr.Count(tx); c != len(model) {
				t.Fatalf("%v: count = %d, model = %d", algo, c, len(model))
			}
		})
		th.Detach()
	}
}

func TestConcurrentInsertDisjoint(t *testing.T) {
	const threads = 4
	const per = 150
	for _, algo := range bothAlgos {
		tm := newTM(t, algo, threads)
		setup := tm.Thread(0)
		var tr Tree
		setup.Atomic(func(tx *core.Tx) { tr = Create(tx) })
		setup.Detach()
		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				th := tm.Thread(tid)
				defer th.Detach()
				for i := 0; i < per; i++ {
					k := uint64(tid*per + i)
					th.Atomic(func(tx *core.Tx) { tr.Insert(tx, k, k) })
				}
			}(tid)
		}
		wg.Wait()
		check := tm.Thread(0)
		check.Atomic(func(tx *core.Tx) {
			if c := tr.Count(tx); c != threads*per {
				t.Fatalf("%v: count = %d, want %d", algo, c, threads*per)
			}
			for k := uint64(0); k < threads*per; k++ {
				if v, ok := tr.Lookup(tx, k); !ok || v != k {
					t.Fatalf("%v: lost key %d", algo, k)
				}
			}
		})
		check.Detach()
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	const threads = 4
	for _, algo := range bothAlgos {
		tm := newTM(t, algo, threads)
		setup := tm.Thread(0)
		var tr Tree
		setup.Atomic(func(tx *core.Tx) { tr = Create(tx) })
		for k := uint64(0); k < 200; k++ {
			k := k
			setup.Atomic(func(tx *core.Tx) { tr.Insert(tx, k, k) })
		}
		setup.Detach()
		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				th := tm.Thread(tid)
				defer th.Detach()
				r := th.Rand()
				for i := 0; i < 200; i++ {
					k := r.Uint64n(400)
					switch r.Intn(3) {
					case 0:
						th.Atomic(func(tx *core.Tx) { tr.Insert(tx, k, k) })
					case 1:
						th.Atomic(func(tx *core.Tx) { tr.Delete(tx, k) })
					default:
						th.Atomic(func(tx *core.Tx) { tr.Lookup(tx, k) })
					}
				}
			}(tid)
		}
		wg.Wait()
		// Structural integrity: leaf chain sorted, no duplicates.
		check := tm.Thread(0)
		check.Atomic(func(tx *core.Tx) {
			keys := tr.Keys(tx)
			for i := 1; i < len(keys); i++ {
				if keys[i] <= keys[i-1] {
					t.Fatalf("%v: leaf chain corrupt at %d: %d <= %d", algo, i, keys[i], keys[i-1])
				}
			}
		})
		check.Detach()
	}
}

func TestCrashRecoveryPreservesTree(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	var tr Tree
	th.Atomic(func(tx *core.Tx) { tr = Create(tx) })
	for k := uint64(0); k < 300; k++ {
		k := k
		th.Atomic(func(tx *core.Tx) { tr.Insert(tx, k, k^0xABCD) })
	}
	tm.SetRoot(th, 0, tr.Holder())
	vt := th.Now()
	th.Detach()
	tm.Crash(vt)
	tm2, _, err := core.Reopen(tm.Bus(), tm.Config())
	if err != nil {
		t.Fatal(err)
	}
	th2 := tm2.Thread(0)
	defer th2.Detach()
	tr2 := Open(tm2.Root(th2, 0))
	th2.Atomic(func(tx *core.Tx) {
		for k := uint64(0); k < 300; k++ {
			v, ok := tr2.Lookup(tx, k)
			if !ok || v != k^0xABCD {
				t.Fatalf("post-recovery lookup(%d) = (%d, %v)", k, v, ok)
			}
		}
	})
}

func TestEmptyTreeOperations(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	th.Atomic(func(tx *core.Tx) {
		tr := Create(tx)
		if _, ok := tr.Lookup(tx, 1); ok {
			t.Fatal("lookup hit on empty tree")
		}
		if tr.Delete(tx, 1) {
			t.Fatal("delete hit on empty tree")
		}
		if tr.Count(tx) != 0 {
			t.Fatal("empty count not zero")
		}
		if len(tr.Keys(tx)) != 0 {
			t.Fatal("empty keys not empty")
		}
	})
}

func TestOpenRoundTrip(t *testing.T) {
	tm := newTM(t, core.OrecLazy, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var holder memdev.Addr
	th.Atomic(func(tx *core.Tx) {
		tr := Create(tx)
		tr.Insert(tx, 9, 90)
		holder = tr.Holder()
	})
	tr2 := Open(holder)
	th.Atomic(func(tx *core.Tx) {
		if v, ok := tr2.Lookup(tx, 9); !ok || v != 90 {
			t.Fatalf("reopened tree lookup = (%d,%v)", v, ok)
		}
	})
}
