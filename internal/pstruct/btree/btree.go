// Package btree implements a transactional persistent B+Tree over the
// PTM word heap — the index used by the DudeTM microbenchmarks and the
// TPCC (B+Tree) configuration in the paper.
//
// Nodes are fixed-fanout blocks in the persistent heap. All reads and
// writes go through the enclosing transaction, so the tree inherits
// the PTM's atomicity, isolation, and durability: a crash mid-insert
// rolls back (undo) or replays (redo) to a consistent shape.
//
// Deletion removes keys from leaves without rebalancing (the usual
// simplification in STM benchmarks, including the paper's); lookups
// and inserts remain correct because underfull leaves stay valid.
package btree

import (
	"goptm/internal/core"
	"goptm/internal/memdev"
)

// Fanout is the max keys per node. Nodes are sized so leaves and
// internal nodes fit a small power-of-two block.
const Fanout = 8

// Node layout (word offsets).
const (
	offHeader = 0 // isLeaf | count<<1
	offKeys   = 1
	// Leaf:    values at offKeys+Fanout, next at offKeys+2*Fanout
	// Internal: children at offKeys+Fanout (Fanout+1 of them)
	offVals     = offKeys + Fanout
	offChildren = offKeys + Fanout
	offNext     = offKeys + 2*Fanout
	nodeWords   = offNext + 1
)

// Tree is a handle onto a persistent B+Tree. The handle itself is
// volatile; the tree is identified by the holder block that stores the
// root pointer (publish it via a heap root slot).
type Tree struct {
	holder memdev.Addr // one-word block: current root node
}

// Create allocates an empty tree inside tx and returns its handle.
func Create(tx *core.Tx) Tree {
	holder := tx.Alloc(1)
	root := newLeaf(tx)
	tx.Store(holder, uint64(root))
	return Tree{holder: holder}
}

// Open re-attaches to the tree whose holder block is at holder (e.g.
// read from a heap root slot after recovery).
func Open(holder memdev.Addr) Tree {
	return Tree{holder: holder}
}

// Holder returns the holder address for persisting in a root slot.
func (t Tree) Holder() memdev.Addr { return t.holder }

func newLeaf(tx *core.Tx) memdev.Addr {
	n := tx.Alloc(nodeWords)
	tx.Store(n+offHeader, header(true, 0))
	tx.Store(n+offNext, 0)
	return n
}

func newInternal(tx *core.Tx) memdev.Addr {
	n := tx.Alloc(nodeWords)
	tx.Store(n+offHeader, header(false, 0))
	return n
}

func header(isLeaf bool, count int) uint64 {
	h := uint64(count) << 1
	if isLeaf {
		h |= 1
	}
	return h
}

func isLeaf(h uint64) bool { return h&1 == 1 }
func count(h uint64) int   { return int(h >> 1) }

// Lookup returns the value stored under key.
func (t Tree) Lookup(tx *core.Tx, key uint64) (uint64, bool) {
	n := memdev.Addr(tx.Load(t.holder))
	for {
		h := tx.Load(n + offHeader)
		c := count(h)
		if isLeaf(h) {
			for i := 0; i < c; i++ {
				if tx.Load(n+offKeys+memdev.Addr(i)) == key {
					return tx.Load(n + offVals + memdev.Addr(i)), true
				}
			}
			return 0, false
		}
		n = t.child(tx, n, c, key)
	}
}

// child selects the subtree for key in internal node n with c keys.
func (t Tree) child(tx *core.Tx, n memdev.Addr, c int, key uint64) memdev.Addr {
	i := 0
	for i < c && key >= tx.Load(n+offKeys+memdev.Addr(i)) {
		i++
	}
	return memdev.Addr(tx.Load(n + offChildren + memdev.Addr(i)))
}

// Insert stores (key, value), replacing any existing value. It
// reports whether the key was newly inserted.
func (t Tree) Insert(tx *core.Tx, key, val uint64) bool {
	root := memdev.Addr(tx.Load(t.holder))
	added, split, sep, right := t.insert(tx, root, key, val)
	if split {
		nr := newInternal(tx)
		tx.Store(nr+offHeader, header(false, 1))
		tx.Store(nr+offKeys, sep)
		tx.Store(nr+offChildren, uint64(root))
		tx.Store(nr+offChildren+1, uint64(right))
		tx.Store(t.holder, uint64(nr))
	}
	return added
}

// insert descends into n; on overflow it splits and returns the
// separator key and new right sibling for the parent to absorb.
func (t Tree) insert(tx *core.Tx, n memdev.Addr, key, val uint64) (added, split bool, sep uint64, right memdev.Addr) {
	h := tx.Load(n + offHeader)
	c := count(h)
	if isLeaf(h) {
		// Update in place if present.
		for i := 0; i < c; i++ {
			if tx.Load(n+offKeys+memdev.Addr(i)) == key {
				tx.Store(n+offVals+memdev.Addr(i), val)
				return false, false, 0, 0
			}
		}
		if c < Fanout {
			t.leafInsertAt(tx, n, c, key, val)
			return true, false, 0, 0
		}
		// Split the leaf: left keeps half, right takes the rest.
		right = newLeaf(tx)
		half := Fanout / 2
		for i := half; i < c; i++ {
			tx.Store(right+offKeys+memdev.Addr(i-half), tx.Load(n+offKeys+memdev.Addr(i)))
			tx.Store(right+offVals+memdev.Addr(i-half), tx.Load(n+offVals+memdev.Addr(i)))
		}
		tx.Store(right+offHeader, header(true, c-half))
		tx.Store(right+offNext, tx.Load(n+offNext))
		tx.Store(n+offHeader, header(true, half))
		tx.Store(n+offNext, uint64(right))
		sep = tx.Load(right + offKeys)
		if key >= sep {
			t.leafInsertAt(tx, right, c-half, key, val)
		} else {
			t.leafInsertAt(tx, n, half, key, val)
		}
		return true, true, sep, right
	}

	childAddr := t.child(tx, n, c, key)
	added, csplit, csep, cright := t.insert(tx, childAddr, key, val)
	if !csplit {
		return added, false, 0, 0
	}
	if c < Fanout {
		t.internalInsertAt(tx, n, c, csep, cright)
		return added, false, 0, 0
	}
	// Split this internal node. Middle key moves up.
	right = newInternal(tx)
	half := Fanout / 2
	sep = tx.Load(n + offKeys + memdev.Addr(half))
	rc := c - half - 1
	for i := 0; i < rc; i++ {
		tx.Store(right+offKeys+memdev.Addr(i), tx.Load(n+offKeys+memdev.Addr(half+1+i)))
	}
	for i := 0; i <= rc; i++ {
		tx.Store(right+offChildren+memdev.Addr(i), tx.Load(n+offChildren+memdev.Addr(half+1+i)))
	}
	tx.Store(right+offHeader, header(false, rc))
	tx.Store(n+offHeader, header(false, half))
	if csep >= sep {
		t.internalInsertAt(tx, right, rc, csep, cright)
	} else {
		t.internalInsertAt(tx, n, half, csep, cright)
	}
	return added, true, sep, right
}

// leafInsertAt inserts (key, val) into a leaf with c < Fanout keys.
func (t Tree) leafInsertAt(tx *core.Tx, n memdev.Addr, c int, key, val uint64) {
	i := c
	for i > 0 && tx.Load(n+offKeys+memdev.Addr(i-1)) > key {
		tx.Store(n+offKeys+memdev.Addr(i), tx.Load(n+offKeys+memdev.Addr(i-1)))
		tx.Store(n+offVals+memdev.Addr(i), tx.Load(n+offVals+memdev.Addr(i-1)))
		i--
	}
	tx.Store(n+offKeys+memdev.Addr(i), key)
	tx.Store(n+offVals+memdev.Addr(i), val)
	tx.Store(n+offHeader, header(true, c+1))
}

// internalInsertAt inserts (sep, child-after-sep) into an internal
// node with c < Fanout keys.
func (t Tree) internalInsertAt(tx *core.Tx, n memdev.Addr, c int, sep uint64, child memdev.Addr) {
	i := c
	for i > 0 && tx.Load(n+offKeys+memdev.Addr(i-1)) > sep {
		tx.Store(n+offKeys+memdev.Addr(i), tx.Load(n+offKeys+memdev.Addr(i-1)))
		tx.Store(n+offChildren+memdev.Addr(i+1), tx.Load(n+offChildren+memdev.Addr(i)))
		i--
	}
	tx.Store(n+offKeys+memdev.Addr(i), sep)
	tx.Store(n+offChildren+memdev.Addr(i+1), uint64(child))
	tx.Store(n+offHeader, header(false, c+1))
}

// Delete removes key from its leaf (no rebalancing) and reports
// whether it was present.
func (t Tree) Delete(tx *core.Tx, key uint64) bool {
	n := memdev.Addr(tx.Load(t.holder))
	for {
		h := tx.Load(n + offHeader)
		c := count(h)
		if !isLeaf(h) {
			n = t.child(tx, n, c, key)
			continue
		}
		for i := 0; i < c; i++ {
			if tx.Load(n+offKeys+memdev.Addr(i)) == key {
				for j := i; j < c-1; j++ {
					tx.Store(n+offKeys+memdev.Addr(j), tx.Load(n+offKeys+memdev.Addr(j+1)))
					tx.Store(n+offVals+memdev.Addr(j), tx.Load(n+offVals+memdev.Addr(j+1)))
				}
				tx.Store(n+offHeader, header(true, c-1))
				return true
			}
		}
		return false
	}
}

// Count walks the leaf chain and returns the number of stored keys.
// Intended for verification, not hot paths.
func (t Tree) Count(tx *core.Tx) int {
	n := memdev.Addr(tx.Load(t.holder))
	for {
		h := tx.Load(n + offHeader)
		if isLeaf(h) {
			break
		}
		n = memdev.Addr(tx.Load(n + offChildren))
	}
	total := 0
	for n != 0 {
		h := tx.Load(n + offHeader)
		total += count(h)
		n = memdev.Addr(tx.Load(n + offNext))
	}
	return total
}

// Keys returns all keys in leaf-chain order (verification helper).
func (t Tree) Keys(tx *core.Tx) []uint64 {
	n := memdev.Addr(tx.Load(t.holder))
	for {
		h := tx.Load(n + offHeader)
		if isLeaf(h) {
			break
		}
		n = memdev.Addr(tx.Load(n + offChildren))
	}
	var out []uint64
	for n != 0 {
		h := tx.Load(n + offHeader)
		for i := 0; i < count(h); i++ {
			out = append(out, tx.Load(n+offKeys+memdev.Addr(i)))
		}
		n = memdev.Addr(tx.Load(n + offNext))
	}
	return out
}
