package obs

import (
	"fmt"
	"io"
	"strings"
)

// Breakdown is the rolled-up phase accounting of one run (or one
// thread): total virtual ns and span count per phase. PhaseTxn holds
// the enclosing whole-transaction time; the protocol and bus phases
// attribute slices of it (bus phases overlap the protocol phases, see
// the Phase doc).
type Breakdown struct {
	NS    [NumPhases]int64
	Count [NumPhases]int64
}

// Merge adds other's accounting into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b.NS {
		b.NS[i] += other.NS[i]
		b.Count[i] += other.Count[i]
	}
}

// Empty reports whether nothing was recorded.
func (b *Breakdown) Empty() bool {
	for _, ns := range b.NS {
		if ns != 0 {
			return false
		}
	}
	return true
}

// Share reports phase p's fraction of the total transaction time, in
// [0, 1]; 0 when no transaction time was recorded.
func (b *Breakdown) Share(p Phase) float64 {
	if b.NS[PhaseTxn] == 0 {
		return 0
	}
	return float64(b.NS[p]) / float64(b.NS[PhaseTxn])
}

// tablePhases is the column order of the breakdown table: protocol
// phases first, then the overlapping bus phases.
var tablePhases = []Phase{
	PhaseBegin, PhaseValidate, PhaseDrain, PhaseCommit, PhaseAbort,
	PhaseFenceWait, PhaseWPQStall, PhaseMediaWait,
}

// TableHeader renders the column headers of the breakdown table,
// prefixed by a first column of the given width for the row label.
func TableHeader(labelWidth int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s%12s", labelWidth, "curve", "txn-ms")
	for _, p := range tablePhases {
		fmt.Fprintf(&sb, "%12s", p.String())
	}
	return sb.String()
}

// TableRow renders one breakdown as a table row: total transaction
// milliseconds followed by each phase's share of transaction time in
// percent.
func (b *Breakdown) TableRow(label string, labelWidth int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s%12.2f", labelWidth, label, float64(b.NS[PhaseTxn])/1e6)
	for _, p := range tablePhases {
		fmt.Fprintf(&sb, "%11.1f%%", 100*b.Share(p))
	}
	return sb.String()
}

// WriteTable renders labeled breakdowns as an aligned table. The bus
// phases (fence-wait, wpq-stall, media-wait) overlap the protocol
// phases, so rows do not sum to 100%.
func WriteTable(w io.Writer, labels []string, rows []*Breakdown) {
	width := len("curve") + 2
	for _, l := range labels {
		if len(l)+2 > width {
			width = len(l) + 2
		}
	}
	fmt.Fprintln(w, TableHeader(width))
	for i, b := range rows {
		fmt.Fprintln(w, b.TableRow(labels[i], width))
	}
	fmt.Fprintln(w, "(per-phase columns are % of total txn virtual time; bus phases overlap protocol phases)")
}
