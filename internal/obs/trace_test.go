package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the trace golden file")

// goldenRecorder builds a small deterministic trace: two worker lanes
// with nested spans, an abort marker, a per-thread counter, and a
// shared counter sample.
func goldenRecorder() *Recorder {
	r := New(2, true)
	w0 := r.Thread(0)
	w0.Span(PhaseTxn, 0, 1500)
	w0.Span(PhaseBegin, 0, 40)
	w0.Span(PhaseValidate, 900, 1000)
	w0.Span(PhaseDrain, 1000, 1200)
	w0.Span(PhaseFenceWait, 1200, 1350)
	w0.Span(PhaseCommit, 1350, 1500)
	w0.Count(TrackCacheHitRate, 1500, 97.5)

	w1 := r.Thread(1)
	w1.Span(PhaseTxn, 100, 2100)
	w1.Span(PhaseAbort, 100, 700)
	w1.Instant(700, "abort:lock-conflict")
	w1.Span(PhaseMediaWait, 1600, 1905)

	r.CountShared(TrackWPQOccupancy, 1350, 12)
	// The metrics sampler's tracks, as ExportTracks replays them: one
	// cumulative sample per series point.
	r.CountShared(TrackMediaWriteXP, 1000, 40)
	r.CountShared(TrackMediaWriteXP, 2000, 95)
	r.CountShared(TrackMediaReadXP, 1000, 12)
	r.CountShared(TrackCommits, 2000, 31)
	return r
}

// TestWriteTraceGolden compares the exporter's byte-exact output with
// testdata/trace_golden.json (regenerate with -update-golden).
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output drifted from golden file\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestWriteTraceShape decodes the export and checks the structural
// guarantees the acceptance criteria name: valid JSON, one named lane
// per worker, spans, an abort marker, and at least one counter track.
func TestWriteTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	lanes := map[int]bool{}
	counters := map[string]bool{}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				lanes[ev.Tid] = true
			}
		case "X":
			spans++
			if ev.Dur <= 0 {
				t.Fatalf("span %q has non-positive dur %f", ev.Name, ev.Dur)
			}
		case "i":
			instants++
		case "C":
			counters[ev.Name] = true
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter %q has no value arg", ev.Name)
			}
		}
	}
	if len(lanes) != 2 {
		t.Fatalf("want 2 worker lanes, got %v", lanes)
	}
	if spans == 0 || instants == 0 {
		t.Fatalf("spans=%d instants=%d", spans, instants)
	}
	if len(counters) < 2 {
		t.Fatalf("want >=2 counter tracks, got %v", counters)
	}
	for _, track := range []Track{TrackMediaWriteXP, TrackMediaReadXP, TrackCommits} {
		if !counters[track.String()] {
			t.Fatalf("metrics sampler track %q missing from export: %v", track, counters)
		}
	}
}
