package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRequestNilSafety: the disabled configurations must retain
// nothing — a nil recorder and a non-tracing recorder both no-op.
func TestRequestNilSafety(t *testing.T) {
	var nilRec *Recorder
	nilRec.Request(ReqRecord{ID: 1})
	if got := nilRec.Requests(); got != nil {
		t.Fatalf("nil recorder returned records: %v", got)
	}
	r := New(1, false)
	r.Request(ReqRecord{ID: 1})
	if n := r.EventCount(); n != 0 {
		t.Fatalf("non-tracing recorder retained %d events", n)
	}
	if got := r.Requests(); len(got) != 0 {
		t.Fatalf("non-tracing recorder returned records: %v", got)
	}
}

// reqChain builds a well-formed record: monotone boundaries whose
// phase durations telescope to the end-to-end latency.
func reqChain(id uint64, shard int32, base int64) ReqRecord {
	q := ReqRecord{ID: id, Shard: shard, Op: 1}
	widths := [NumReqPhases]int64{0, 400, 120, 900, 300, 0, 10}
	q.TS[0] = base
	for p := 0; p < int(NumReqPhases); p++ {
		q.TS[p+1] = q.TS[p] + widths[p]
	}
	return q
}

// TestRequestExport: sampled requests render as a second trace
// process with one lane per shard and the complete seven-phase chain,
// and the rendered durations sum to the end-to-end latency.
func TestRequestExport(t *testing.T) {
	r := New(1, true)
	r.Request(reqChain(3, 0, 1000))
	r.Request(reqChain(9, 2, 5000))
	if got := len(r.Requests()); got != 2 {
		t.Fatalf("retained %d records, want 2", got)
	}

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}

	lanes := map[int]bool{}
	phases := map[string]float64{} // total rendered µs per phase for req 3
	procNamed := false
	for _, ev := range doc.TraceEvents {
		if ev.Pid != reqPID {
			continue
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procNamed = true
			} else {
				lanes[ev.Tid] = true
			}
		case "X":
			if id, ok := ev.Args["req"].(float64); ok && id == 3 {
				phases[ev.Name] += ev.Dur
			}
		}
	}
	if !procNamed {
		t.Fatal("request process has no process_name metadata")
	}
	for _, tid := range []int{0, 1, 2} {
		if !lanes[tid] {
			t.Fatalf("shard lane %d missing: %v", tid, lanes)
		}
	}
	var sum float64
	for p := ReqPhase(0); p < NumReqPhases; p++ {
		d, ok := phases[p.String()]
		if !ok {
			t.Fatalf("phase %q missing from the exported chain: %v", p, phases)
		}
		sum += d
	}
	q := reqChain(3, 0, 1000)
	if e2e := float64(q.TS[NumReqPhases]-q.TS[0]) / 1000.0; sum != e2e {
		t.Fatalf("phase durations sum to %fµs, end-to-end is %fµs", sum, e2e)
	}
}

// TestRequestAbsentKeepsTraceLean: with no request records the export
// must not mention the request process at all — that is what keeps the
// byte-pinned golden trace stable.
func TestRequestAbsentKeepsTraceLean(t *testing.T) {
	var buf bytes.Buffer
	if err := New(1, true).WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"pid":2`)) {
		t.Fatalf("empty recorder emitted request-process events:\n%s", buf.String())
	}
}
