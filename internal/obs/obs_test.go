package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDisabledRecorderEmitsNothing pins the contract the runtime's
// unconditional instrumentation relies on: a nil Recorder (and the nil
// ThreadRecorders it hands out) accepts every recording call and
// retains no events and no accounting.
func TestDisabledRecorderEmitsNothing(t *testing.T) {
	var r *Recorder
	if r.Tracing() {
		t.Fatal("nil recorder claims to trace")
	}
	tr := r.Thread(0)
	if tr != nil {
		t.Fatal("nil recorder handed out a thread recorder")
	}
	tr.Span(PhaseCommit, 10, 20)
	tr.Instant(15, "abort:lock-conflict")
	tr.Count(TrackWPQOccupancy, 15, 3)
	r.CountShared(TrackWPQOccupancy, 15, 3)
	if tr.Tracing() {
		t.Fatal("nil thread recorder claims to trace")
	}
	if got := r.EventCount(); got != 0 {
		t.Fatalf("nil recorder holds %d events", got)
	}
	b := r.Breakdown()
	if !b.Empty() {
		t.Fatalf("nil recorder breakdown not empty: %+v", b)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace on nil recorder: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil-recorder trace is not valid JSON: %s", buf.String())
	}
}

// TestBreakdownAccountingWithoutTracing checks that a non-tracing
// recorder still accumulates the phase breakdown but retains no
// events.
func TestBreakdownAccountingWithoutTracing(t *testing.T) {
	r := New(2, false)
	r.Thread(0).Span(PhaseTxn, 0, 100)
	r.Thread(0).Span(PhaseDrain, 10, 30)
	r.Thread(1).Span(PhaseTxn, 0, 300)
	r.Thread(1).Span(PhaseDrain, 50, 90)
	r.Thread(1).Span(PhaseFenceWait, 60, 80)
	// Event-only calls must be dropped without tracing.
	r.Thread(0).Instant(5, "abort:validation")
	r.Thread(1).Count(TrackCacheHitRate, 5, 99)
	r.CountShared(TrackWPQOccupancy, 5, 1)

	if got := r.EventCount(); got != 0 {
		t.Fatalf("non-tracing recorder retained %d events", got)
	}
	b := r.Breakdown()
	if b.NS[PhaseTxn] != 400 || b.Count[PhaseTxn] != 2 {
		t.Fatalf("txn accounting = %dns/%d spans", b.NS[PhaseTxn], b.Count[PhaseTxn])
	}
	if b.NS[PhaseDrain] != 60 || b.NS[PhaseFenceWait] != 20 {
		t.Fatalf("phase accounting = %+v", b.NS)
	}
	if got := b.Share(PhaseDrain); got != 0.15 {
		t.Fatalf("drain share = %f", got)
	}
	if b.Empty() {
		t.Fatal("breakdown with recorded spans reports empty")
	}
}

// TestSpanIgnoresEmptyAndInvertedIntervals: zero-length and negative
// spans must not pollute the accounting.
func TestSpanIgnoresEmptyAndInvertedIntervals(t *testing.T) {
	r := New(1, true)
	r.Thread(0).Span(PhaseCommit, 50, 50)
	r.Thread(0).Span(PhaseCommit, 50, 40)
	if got := r.EventCount(); got != 0 {
		t.Fatalf("degenerate spans retained: %d", got)
	}
	b := r.Breakdown()
	if b.NS[PhaseCommit] != 0 || b.Count[PhaseCommit] != 0 {
		t.Fatalf("degenerate spans accounted: %+v", b)
	}
}

// TestBreakdownTable exercises the table renderer on two rows with a
// known share.
func TestBreakdownTable(t *testing.T) {
	adr := &Breakdown{}
	adr.NS[PhaseTxn] = 1_000_000
	adr.NS[PhaseFenceWait] = 250_000
	eadr := &Breakdown{}
	eadr.NS[PhaseTxn] = 1_000_000

	var sb strings.Builder
	WriteTable(&sb, []string{"Optane_ADR_R", "Optane_eADR_R"}, []*Breakdown{adr, eadr})
	out := sb.String()
	for _, want := range []string{"curve", "fence-wait", "Optane_ADR_R", "25.0%", "0.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestPhaseAndTrackNames pins the exporter-visible names.
func TestPhaseAndTrackNames(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		if s := p.String(); s == "" || s == "phase?" {
			t.Fatalf("phase %d has no name", p)
		}
	}
	for tr := Track(0); tr < NumTracks; tr++ {
		if s := tr.String(); s == "" || s == "track?" {
			t.Fatalf("track %d has no name", tr)
		}
	}
}
