// Package obs is the observability layer of the simulated machine: a
// per-thread, allocation-light span recorder keyed to *virtual*
// nanoseconds, phase-breakdown accounting that rolls the spans up into
// per-run "time spent in X" tables, and a Chrome trace-event / Perfetto
// JSON exporter (trace.go) so a run can be inspected in ui.perfetto.dev
// with one lane per simulated worker.
//
// The design goal is zero overhead when disabled: every recording
// method is safe on a nil receiver and returns immediately, so the
// runtime can instrument unconditionally and the recorder is simply
// left nil in production measurement paths. When a Recorder is
// attached, phase durations are always accumulated into the breakdown
// counters (a handful of integer adds per span); individual span and
// counter events are retained only when the Recorder was built with
// tracing enabled.
//
// Recording is virtual-time accounting, not host profiling: a span's
// duration is the simulated nanoseconds a thread's clock moved through
// the phase, which is exactly the quantity the paper's overhead
// decompositions (§III–V) attribute.
package obs

import "sync"

// Phase identifies one slice of the transaction lifecycle or of the
// memory system's stall taxonomy.
type Phase uint8

// The span taxonomy. Protocol phases (Begin..Abort) are recorded by
// the PTM runtime around protocol steps; bus phases (FenceWait,
// WPQStall, MediaWait) are recorded by the memory system inside
// whatever protocol phase triggered the traffic, so the two groups
// overlap by construction (a commit fence's wait shows up under both
// FenceWait and the enclosing protocol window's gap). Txn is the
// enclosing whole-transaction span.
const (
	PhaseTxn       Phase = iota // one Atomic call, begin to commit (incl. retries)
	PhaseBegin                  // attempt setup + snapshot timestamp read
	PhaseValidate               // read-set validation + commit-time lock acquisition
	PhaseDrain                  // write-set drain: log writes/flush issue, in-place writeback
	PhaseCommit                 // durable commit point: marker write + log reclaim
	PhaseAbort                  // wasted virtual time of an aborted attempt + rollback
	PhaseFenceWait              // sfence: waiting for outstanding flushes to be accepted
	PhaseWPQStall               // flush accept delayed by a full write pending queue
	PhaseMediaWait              // cache miss serviced by the NVM media (port wait + transfer)
	NumPhases
)

// phaseNames are the stable exporter/table names, index by Phase.
var phaseNames = [NumPhases]string{
	"txn", "begin", "validate", "drain", "commit", "abort",
	"fence-wait", "wpq-stall", "media-wait",
}

// String names the phase as the trace exporter and tables do.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase?"
}

// Track identifies one counter track of the trace.
type Track uint8

// Counter tracks. Cumulative tracks (media busy) grow monotonically;
// the rest are instantaneous samples.
const (
	TrackWPQOccupancy   Track = iota // undrained WPQ entries at an accept
	TrackMediaWriteBusy              // cumulative NVM write-port busy ms
	TrackMediaReadBusy               // cumulative NVM read-port busy ms
	TrackCacheHitRate                // CPU cache hit rate, percent
	TrackPageResidency               // resident Memory-Mode page-cache frames
	TrackPageDirty                   // dirty page-cache frames
	TrackSweepCells                  // experiment-sweep cells completed (runner progress)
	TrackMediaWriteXP                // cumulative 256 B XPLine media writes (metrics sampler)
	TrackMediaReadXP                 // cumulative 256 B XPLine media reads (metrics sampler)
	TrackCommits                     // cumulative committed transactions (metrics sampler)
	TrackServerQueue                 // queued requests across server executor shards
	TrackServerBatchCap              // adaptive controller batch cap after a step (stepping shard's value)
	TrackServerWindow                // adaptive controller group-commit window ns after a step
	NumTracks
)

var trackNames = [NumTracks]string{
	"wpq_occupancy", "media_write_busy_ms", "media_read_busy_ms",
	"cache_hit_pct", "pagecache_resident", "pagecache_dirty",
	"sweep_cells_done",
	"media_write_xplines", "media_read_xplines", "commits_total",
	"server_queue_depth",
	"server_batch_cap", "server_window_ns",
}

// String names the counter track as the trace exporter does.
func (t Track) String() string {
	if int(t) < len(trackNames) {
		return trackNames[t]
	}
	return "track?"
}

// span is one completed trace event on a thread lane.
type span struct {
	phase      Phase
	start, end int64 // virtual ns
}

// instant is one point event on a thread lane (abort markers).
type instant struct {
	ts   int64
	name string // constant strings only; the record path must not allocate
}

// counterSample is one (track, ts, value) counter point.
type counterSample struct {
	track Track
	ts    int64
	value float64
}

// ThreadRecorder collects one simulated worker's spans. It is owned by
// the thread's goroutine; all methods are safe on a nil receiver (and
// then do nothing), which is how the disabled configuration costs
// nothing.
type ThreadRecorder struct {
	tid     int
	tracing bool

	accNS    [NumPhases]int64 // breakdown: total virtual ns per phase
	accCount [NumPhases]int64 // breakdown: spans per phase

	spans    []span
	instants []instant
	counts   []counterSample
}

// Span records a completed [start, end) phase span in virtual ns.
func (r *ThreadRecorder) Span(p Phase, start, end int64) {
	if r == nil || end <= start {
		return
	}
	r.accNS[p] += end - start
	r.accCount[p]++
	if r.tracing {
		r.spans = append(r.spans, span{phase: p, start: start, end: end})
	}
}

// Instant records a point event (e.g. an abort with its reason). name
// must be a constant or otherwise retained string; the recorder stores
// it as-is.
func (r *ThreadRecorder) Instant(ts int64, name string) {
	if r == nil || !r.tracing {
		return
	}
	r.instants = append(r.instants, instant{ts: ts, name: name})
}

// Count records one counter sample on track t.
func (r *ThreadRecorder) Count(t Track, ts int64, v float64) {
	if r == nil || !r.tracing {
		return
	}
	r.counts = append(r.counts, counterSample{track: t, ts: ts, value: v})
}

// Tracing reports whether full event retention is on; callers use it
// to skip building values that only feed trace events.
func (r *ThreadRecorder) Tracing() bool { return r != nil && r.tracing }

// Breakdown returns the thread's phase accounting.
func (r *ThreadRecorder) Breakdown() Breakdown {
	var b Breakdown
	if r == nil {
		return b
	}
	b.NS = r.accNS
	b.Count = r.accCount
	return b
}

// Recorder owns the per-thread recorders of one run plus a shared
// counter lane for components not bound to a thread (the memory
// controller). A nil *Recorder is the disabled configuration: Thread
// returns nil, and every downstream recording call no-ops.
type Recorder struct {
	tracing bool
	threads []*ThreadRecorder

	mu       sync.Mutex
	shared   []counterSample
	requests []ReqRecord
}

// New builds a recorder for threads workers. With trace set, all span,
// instant, and counter events are retained for export; otherwise only
// the O(1)-size breakdown accounting runs.
func New(threads int, trace bool) *Recorder {
	r := &Recorder{tracing: trace, threads: make([]*ThreadRecorder, threads)}
	for i := range r.threads {
		tr := &ThreadRecorder{tid: i, tracing: trace}
		if trace {
			tr.spans = make([]span, 0, 4096)
		}
		r.threads[i] = tr
	}
	return r
}

// Thread returns worker tid's recorder, or nil when r is nil (the
// disabled configuration) or tid is out of range.
func (r *Recorder) Thread(tid int) *ThreadRecorder {
	if r == nil || tid < 0 || tid >= len(r.threads) {
		return nil
	}
	return r.threads[tid]
}

// Tracing reports whether the recorder retains trace events.
func (r *Recorder) Tracing() bool { return r != nil && r.tracing }

// CountShared records a counter sample from a shared component (safe
// for concurrent use; the per-thread Count is the cheap path).
func (r *Recorder) CountShared(t Track, ts int64, v float64) {
	if r == nil || !r.tracing {
		return
	}
	r.mu.Lock()
	r.shared = append(r.shared, counterSample{track: t, ts: ts, value: v})
	r.mu.Unlock()
}

// Breakdown merges every thread's phase accounting.
func (r *Recorder) Breakdown() Breakdown {
	var b Breakdown
	if r == nil {
		return b
	}
	for _, tr := range r.threads {
		tb := tr.Breakdown()
		b.Merge(&tb)
	}
	return b
}

// EventCount reports retained trace events across all threads (tests;
// the disabled recorder must hold zero).
func (r *Recorder) EventCount() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, tr := range r.threads {
		n += len(tr.spans) + len(tr.instants) + len(tr.counts)
	}
	r.mu.Lock()
	n += len(r.shared) + len(r.requests)
	r.mu.Unlock()
	return n
}
