package obs

// Request-lifecycle records: the serving path's per-request span
// chain. Where the Phase taxonomy decomposes one *transaction*, a
// ReqRecord decomposes one *served request* — from wire parse (or
// loadsim arrival) through shard-queue wait, batch formation, the
// batched transaction execute, the durable-ack barrier's WPQ drain
// and journal flush, to the writer's acknowledgment. The executor
// stamps boundary timestamps, not durations: phase i is the interval
// [TS[i], TS[i+1]), so the per-phase durations telescope to exactly
// the end-to-end latency — the attribution property the serving-path
// observability work exists for ("is p99 queue wait or journal
// flush?").
//
// Timestamps are whatever clock the executor's tracer runs on:
// virtual nanoseconds under loadsim/lockstep, host nanoseconds since
// the tracer's epoch for the real TCP server. The trace exporter does
// not care — both render as one timeline.

// ReqPhase identifies one slice of a served request's lifecycle.
type ReqPhase uint8

const (
	ReqParse   ReqPhase = iota // wire parse / loadsim arrival generation
	ReqQueue                   // shard-queue wait: enqueue → pop
	ReqBatch                   // batch formation: pop → transaction start (group-commit window)
	ReqExecute                 // batched transaction: begin → commit returned
	ReqDrain                   // durable-ack barrier: WPQ drain onto media
	ReqJournal                 // durable-ack barrier: journal batch flush to the host file
	ReqAck                     // barrier done → completion delivered to the submitter
	NumReqPhases
)

// reqPhaseNames are the stable exporter names, index by ReqPhase.
var reqPhaseNames = [NumReqPhases]string{
	"req-parse", "req-queue", "req-batch", "req-execute",
	"req-drain", "req-journal", "req-ack",
}

// String names the request phase as the trace exporter does.
func (p ReqPhase) String() string {
	if int(p) < len(reqPhaseNames) {
		return reqPhaseNames[p]
	}
	return "req-phase?"
}

// ReqRecord is one sampled request's lifecycle. TS[0] is the parse
// start and TS[i+1] the end of phase ReqPhase(i): zero-width phases
// are legal (a read batch has an empty drain/journal interval) and
// the phase durations always sum to TS[NumReqPhases]-TS[0], the
// request's end-to-end latency.
type ReqRecord struct {
	ID    uint64 // arrival index from the executor's sampler
	Shard int32
	Op    uint8 // server.Op value; opaque to this package
	Shed  bool  // deadline-shed at pop: TS[2:] collapse to the shed instant
	TS    [NumReqPhases + 1]int64
}

// Stamp sets boundary i to ts, clamped so boundaries never regress.
// The clamp matters under lockstep: a shard thread whose clock trails
// the submitting thread's can pop a request at a virtual time before
// its enqueue stamp, and a negative-width phase would break the
// telescoping-durations property. Clamping charges such a phase zero
// time instead.
func (q *ReqRecord) Stamp(i int, ts int64) {
	if i > 0 && ts < q.TS[i-1] {
		ts = q.TS[i-1]
	}
	q.TS[i] = ts
}

// Request retains one completed request-lifecycle record. Safe on a
// nil receiver and on recorders built without tracing (both no-op),
// and safe for concurrent use — shard workers finish requests
// concurrently on the TCP server.
func (r *Recorder) Request(rec ReqRecord) {
	if r == nil || !r.tracing {
		return
	}
	r.mu.Lock()
	r.requests = append(r.requests, rec)
	r.mu.Unlock()
}

// Requests returns a copy of the retained request records (tests and
// report tooling; the trace exporter reads the slice directly).
func (r *Recorder) Requests() []ReqRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]ReqRecord, len(r.requests))
	copy(out, r.requests)
	r.mu.Unlock()
	return out
}
