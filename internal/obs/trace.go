package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// This file renders a Recorder's retained events in the Chrome
// trace-event JSON format, which ui.perfetto.dev (and chrome://tracing)
// load directly:
//
//   - every simulated worker gets one named thread lane carrying its
//     phase spans ("X" complete events) and abort markers ("i" instant
//     events);
//   - every counter track becomes a "C" counter series on the process.
//
// Timestamps in the format are microseconds; virtual nanoseconds are
// emitted as fractional µs so nothing is rounded away. Events are not
// globally sorted — the trace-event spec permits any order and the
// Perfetto trace processor sorts on import.

// tracePID is the synthetic process id of the simulated machine.
const tracePID = 1

// reqPID is the synthetic process id of the served-request timeline:
// request-lifecycle span chains render as their own process with one
// lane per executor shard, so ui.perfetto.dev shows the machine's
// transaction phases and the service's request phases side by side.
const reqPID = 2

// WriteTrace writes the retained events as Chrome trace-event JSON.
// The output is a complete, valid JSON object regardless of how many
// events were recorded; recording with tracing disabled yields only
// the metadata events.
func (r *Recorder) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	e := traceEncoder{w: bw}
	e.raw(`{"traceEvents":[`)
	e.meta(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"goptm simulated machine"}}`, tracePID)
	if r != nil {
		for _, tr := range r.threads {
			e.meta(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"worker %d"}}`,
				tracePID, tr.tid, tr.tid)
		}
		for _, tr := range r.threads {
			for _, s := range tr.spans {
				e.span(tr.tid, s)
			}
			for _, ev := range tr.instants {
				e.instant(tr.tid, ev)
			}
			for _, c := range tr.counts {
				e.counter(c)
			}
		}
		r.mu.Lock()
		shared := r.shared
		requests := r.requests
		r.mu.Unlock()
		for _, c := range shared {
			e.counter(c)
		}
		// The request-lifecycle process is emitted only when records
		// exist: a recorder with no sampled requests produces exactly the
		// bytes it did before this process existed (the golden file pins
		// them).
		if len(requests) > 0 {
			e.meta(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"goptm served requests"}}`, reqPID)
			maxShard := int32(0)
			for _, q := range requests {
				if q.Shard > maxShard {
					maxShard = q.Shard
				}
			}
			for sh := int32(0); sh <= maxShard; sh++ {
				e.meta(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"shard %d"}}`,
					reqPID, sh, sh)
			}
			for _, q := range requests {
				e.request(q)
			}
		}
	}
	e.raw(`],"displayTimeUnit":"ns"}`)
	e.raw("\n")
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// traceEncoder streams trace-event objects, tracking the separator and
// the first write error.
type traceEncoder struct {
	w     *bufio.Writer
	wrote bool
	err   error
}

func (e *traceEncoder) raw(s string) {
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *traceEncoder) sep() {
	if e.wrote {
		e.raw(",")
	}
	e.wrote = true
}

func (e *traceEncoder) meta(format string, args ...any) {
	e.sep()
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// usec renders virtual ns as the format's microsecond timestamps,
// keeping full ns precision as fractional digits.
func usec(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1000.0, 'f', -1, 64)
}

func (e *traceEncoder) span(tid int, s span) {
	e.sep()
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w,
			`{"name":%q,"cat":"tx","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s}`,
			s.phase.String(), tracePID, tid, usec(s.start), usec(s.end-s.start))
	}
}

func (e *traceEncoder) instant(tid int, ev instant) {
	e.sep()
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w,
			`{"name":%q,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s}`,
			ev.name, tracePID, tid, usec(ev.ts))
	}
}

// request renders one request's full span chain on its shard's lane.
// Every phase is emitted — zero-width ones included — so the chain
// visibly covers parse→queue→batch→execute→drain→journal→ack and the
// rendered durations sum to the request's end-to-end latency.
func (e *traceEncoder) request(q ReqRecord) {
	for p := ReqPhase(0); p < NumReqPhases; p++ {
		start, end := q.TS[p], q.TS[p+1]
		if end < start {
			continue // a malformed stamp must not poison the whole trace
		}
		e.sep()
		if e.err == nil {
			_, e.err = fmt.Fprintf(e.w,
				`{"name":%q,"cat":"req","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"req":%d,"op":%d,"shed":%v}}`,
				p.String(), reqPID, q.Shard, usec(start), usec(end-start), q.ID, q.Op, q.Shed)
		}
	}
}

func (e *traceEncoder) counter(c counterSample) {
	e.sep()
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w,
			`{"name":%q,"ph":"C","pid":%d,"ts":%s,"args":{"value":%s}}`,
			c.track.String(), tracePID, usec(c.ts),
			strconv.FormatFloat(c.value, 'f', -1, 64))
	}
}
