package obs

import "testing"

// BenchmarkDisabledRecorder measures the host-time cost of the
// instrumentation calls when observability is off — the nil-receiver
// fast path the runtime takes on every span boundary. This is the
// "zero overhead when disabled" guarantee: the loop body must compile
// to a couple of nil checks (sub-ns per op, no allocation).
func BenchmarkDisabledRecorder(b *testing.B) {
	var r *Recorder
	tr := r.Thread(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(PhaseDrain, int64(i), int64(i+10))
		tr.Instant(int64(i), "abort:validation")
		tr.Count(TrackWPQOccupancy, int64(i), 1)
	}
}

// BenchmarkBreakdownRecorder measures the non-tracing (breakdown-only)
// record path: a few integer adds per span.
func BenchmarkBreakdownRecorder(b *testing.B) {
	tr := New(1, false).Thread(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(PhaseDrain, int64(i), int64(i+10))
	}
}

// BenchmarkTracingRecorder measures the full event-retention path.
func BenchmarkTracingRecorder(b *testing.B) {
	tr := New(1, true).Thread(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(PhaseDrain, int64(i), int64(i+10))
	}
}
