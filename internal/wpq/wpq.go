// Package wpq models the memory controller: the bounded Write Pending
// Queue (WPQ) in front of the NVM media, the media's read and write
// ports, and the DRAM channel.
//
// Two properties of real Optane DC systems drive the paper's results
// and are modeled explicitly:
//
//   - Asymmetric bandwidth knees: NVM write bandwidth saturates with ~4
//     concurrent writers while read bandwidth scales to ~17 threads
//     (Izraelevitz et al. [46]); the port counts encode exactly that.
//   - WPQ backpressure: the queue holds a bounded number of line
//     flushes. Once the media's write ports fall behind, new flushes
//     (clwb, evictions) stall until a slot drains, which is the
//     mechanism behind the scalability collapse in §III-B.
//
// Sequentially-addressed writes from one thread receive a
// write-combining discount: regular access patterns (such as a redo
// log append stream) run at close to DRAM speed on Optane, which is
// the paper's explanation (§IV-D) for PDRAM-Lite's muted gains.
package wpq

import (
	"sync"

	"goptm/internal/metrics"
	"goptm/internal/simtime"
)

// Cause says why a line flush reached the WPQ; accepts and stalls are
// attributed per cause so a report can distinguish protocol-issued
// flush pressure (clwb) from cache-induced pressure (evictions).
type Cause int

// The flush causes.
const (
	CauseCLWB     Cause = iota // explicit clwb issued by the runtime
	CauseEviction              // dirty L3 line evicted by the cache
	CauseWCDrain               // write-combining buffer drain
	NumCauses
)

var causeNames = [NumCauses]string{"clwb", "eviction", "wc-drain"}

// String names the cause.
func (c Cause) String() string {
	if c >= 0 && int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "cause?"
}

// Config parameterizes the controller. Holds are per 64 B line in
// virtual nanoseconds; latencies for loads are charged by membus on
// top of port occupancy.
type Config struct {
	Depth          int // WPQ entries
	NVMWritePorts  int // concurrent line writes the media sustains
	NVMReadPorts   int // concurrent line reads
	DRAMWritePorts int
	DRAMReadPorts  int
	NVMWriteHold   int64 // media write occupancy per line
	NVMReadHold    int64 // media read occupancy per line
	DRAMWriteHold  int64
	DRAMReadHold   int64
	StreamDiscount int64 // divisor applied to sequential-line NVM writes
	Threads        int   // number of hardware threads (for stream tracking)
	// Lockstep promises that the lockstep scheduler serializes every
	// caller (one simulated thread executes at any instant), letting the
	// controller and its port servers skip their internal locking on the
	// hottest simulator path. Leave false for concurrent-mode engines.
	Lockstep bool
}

// DefaultConfig returns the calibration used throughout the
// reproduction (see DESIGN.md §4 for the sources).
func DefaultConfig(threads int) Config {
	return Config{
		Depth:          64,
		NVMWritePorts:  4,
		NVMReadPorts:   17,
		DRAMWritePorts: 16,
		DRAMReadPorts:  32,
		NVMWriteHold:   170,
		NVMReadHold:    205, // port occupancy; total NVM load latency ~305 ns with the 100 ns base charged by membus
		DRAMWriteHold:  60,
		DRAMReadHold:   55, // total DRAM load latency ~101 ns
		StreamDiscount: 4,
		Threads:        threads,
	}
}

// noLine marks a thread with no write stream in progress; neither it
// nor noLine+1 is a line number any simulated device can contain.
const noLine = uint64(1) << 62

// Controller is the memory controller model. Safe for concurrent use
// unless built with Config.Lockstep, in which case the lockstep floor
// provides the serialization the elided locks would have.
type Controller struct {
	cfg       Config
	serial    bool
	nvmWrite  *simtime.Server
	nvmRead   *simtime.Server
	dramWrite *simtime.Server
	dramRead  *simtime.Server

	mu        sync.Mutex
	ring      []int64 // drain completion times of the last Depth accepts
	ringPos   int
	lastLine  []uint64 // per-thread last NVM line written, for combining
	accepts   int64
	stallTime int64 // cumulative accept delay due to a full WPQ

	stallEvents    int64
	acceptsByCause [NumCauses]int64
	stallByCause   [NumCauses]int64
	combinedHits   int64 // accepts that took the write-combining discount
	maxOccupancy   int   // requires an observer or registry (see Counters)
	bulkReadLines  int64
	bulkWriteLines int64

	// observer, when non-nil, sees every accept: the accept time, the
	// queue-full delay it suffered, and the post-accept occupancy.
	// Observability hook; the measurement path leaves it nil.
	observer func(acceptVT, stallNS int64, occupancy int)

	// met, when non-nil, receives the media-model feed (per-line write
	// traffic for the XPBuffer model) and the WPQ series gauge.
	met *metrics.Registry
}

// New builds a controller. Threads in cfg must cover every tid passed
// to EnqueueNVM.
func New(cfg Config) *Controller {
	if cfg.Depth <= 0 {
		panic("wpq: depth must be positive")
	}
	if cfg.StreamDiscount <= 0 {
		cfg.StreamDiscount = 1
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	mk := simtime.NewServer
	if cfg.Lockstep {
		mk = simtime.NewSerialServer
	}
	c := &Controller{
		cfg:       cfg,
		serial:    cfg.Lockstep,
		nvmWrite:  mk(cfg.NVMWritePorts),
		nvmRead:   mk(cfg.NVMReadPorts),
		dramWrite: mk(cfg.DRAMWritePorts),
		dramRead:  mk(cfg.DRAMReadPorts),
		ring:      make([]int64, cfg.Depth),
		lastLine:  make([]uint64, cfg.Threads),
	}
	for i := range c.lastLine {
		c.lastLine[i] = noLine // no stream yet
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetObserver installs an accept callback (observability; nil to
// clear). The callback runs under the controller lock and must not
// call back into the controller. Install before traffic starts.
func (c *Controller) SetObserver(fn func(acceptVT, stallNS int64, occupancy int)) {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.observer = fn
}

// SetMetrics attaches a counter registry (nil to detach). With a
// registry attached the controller feeds every NVM line write into the
// registry's media model and reports WPQ pressure per accept, and
// tracks the queue's maximum occupancy. Install before traffic starts.
func (c *Controller) SetMetrics(m *metrics.Registry) {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.met = m
}

// Reset clears the queue state after a simulated power failure: the
// ring of in-flight drain times and the per-thread write streams are
// hardware state that does not survive reboot. Port busy-time servers
// are left alone (they only accumulate utilization statistics, and
// virtual time itself keeps advancing across the crash).
func (c *Controller) Reset() {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	for i := range c.ring {
		c.ring[i] = 0
	}
	c.ringPos = 0
	for i := range c.lastLine {
		c.lastLine[i] = noLine
	}
}

// EnqueueNVM accepts a line flush into the WPQ at virtual time now on
// behalf of thread tid, attributed to cause. It returns the accept
// time (when the flush has entered the ADR domain — what a clwb+sfence
// waits for) and the drain time (when the media write completes — what
// full durability under NoReserve waits for). If the WPQ is full,
// accept is delayed until the oldest in-flight drain completes.
func (c *Controller) EnqueueNVM(now int64, tid int, line uint64, cause Cause) (accept, drain int64) {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	accept = now
	stall := int64(0)
	// The entry Depth-back must have drained before a new slot frees.
	if oldest := c.ring[c.ringPos]; oldest > accept {
		stall = oldest - accept
		c.stallTime += stall
		c.stallEvents++
		c.stallByCause[cause] += stall
		accept = oldest
	}
	hold := c.cfg.NVMWriteHold
	if tid < len(c.lastLine) && (c.lastLine[tid]+1 == line || c.lastLine[tid] == line) {
		// Write combining: sequential lines coalesce in the WPQ /
		// XPBuffer, and a re-flush of the line just written merges
		// with it (commit markers and log tails hit this constantly).
		hold /= c.cfg.StreamDiscount
		c.combinedHits++
	}
	if tid < len(c.lastLine) {
		c.lastLine[tid] = line
	}
	drain = c.nvmWrite.Acquire(accept, hold)
	c.ring[c.ringPos] = drain
	c.ringPos = (c.ringPos + 1) % len(c.ring)
	c.accepts++
	c.acceptsByCause[cause]++
	if c.observer != nil || c.met != nil {
		// The occupancy scan is O(Depth); it runs only with an observer
		// or registry attached, so the default measurement path keeps
		// its cost and maxOccupancy stays 0 without one (see Counters).
		occ := 0
		for _, d := range c.ring {
			if d > accept {
				occ++
			}
		}
		if occ > c.maxOccupancy {
			c.maxOccupancy = occ
		}
		if c.observer != nil {
			c.observer(accept, stall, occ)
		}
		if c.met != nil {
			c.met.MediaWriteLine(line)
			c.met.WPQAccept(stall, occ)
		}
	}
	return accept, drain
}

// ReadNVM charges an NVM media read of the given line beginning at now
// and returns its completion time.
func (c *Controller) ReadNVM(now int64, line uint64) int64 {
	if c.met != nil {
		c.met.MediaReadLine(line)
	}
	return c.nvmRead.Acquire(now, c.cfg.NVMReadHold)
}

// WriteDRAM charges a DRAM line write beginning at now.
func (c *Controller) WriteDRAM(now int64) int64 {
	return c.dramWrite.Acquire(now, c.cfg.DRAMWriteHold)
}

// ReadDRAM charges a DRAM line read beginning at now.
func (c *Controller) ReadDRAM(now int64) int64 {
	return c.dramRead.Acquire(now, c.cfg.DRAMReadHold)
}

// ReadNVMBulk charges a sequential multi-line NVM read (a page fetch
// by the Memory-Mode directory). Sequential transfers run at combined
// speed: one port held for lines*hold/StreamDiscount.
func (c *Controller) ReadNVMBulk(now int64, lines int) int64 {
	if !c.serial {
		c.mu.Lock()
	}
	c.bulkReadLines += int64(lines)
	if !c.serial {
		c.mu.Unlock()
	}
	if c.met != nil {
		c.met.MediaBulkRead(lines)
	}
	hold := int64(lines) * c.cfg.NVMReadHold / c.cfg.StreamDiscount
	return c.nvmRead.Acquire(now, hold)
}

// WriteNVMBulk charges a sequential multi-line NVM write (a dirty page
// writeback). Bypasses the WPQ: page writebacks are issued by the
// memory controller itself, not by CPU flushes.
func (c *Controller) WriteNVMBulk(now int64, lines int) int64 {
	if !c.serial {
		c.mu.Lock()
	}
	c.bulkWriteLines += int64(lines)
	if !c.serial {
		c.mu.Unlock()
	}
	if c.met != nil {
		c.met.MediaBulkWrite(lines)
	}
	hold := int64(lines) * c.cfg.NVMWriteHold / c.cfg.StreamDiscount
	return c.nvmWrite.Acquire(now, hold)
}

// OccupancyAt reports how many WPQ entries are still undrained at
// virtual time vt — the state an ADR flush-on-failure must finish
// writing. Bounded by the queue depth by construction.
func (c *Controller) OccupancyAt(vt int64) int {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	n := 0
	for _, drain := range c.ring {
		if drain > vt {
			n++
		}
	}
	return n
}

// Counters is the controller's cumulative accounting: accepts and
// queue-full stalls (total and attributed per flush cause),
// write-combining hits, bulk transfer volume, and the maximum
// post-accept occupancy observed. MaxOccupancy requires an observer or
// metrics registry attached before traffic (the per-accept occupancy
// scan is elided otherwise) and reads 0 without one.
type Counters struct {
	Accepts        int64
	StallNS        int64
	StallEvents    int64
	MaxOccupancy   int
	CombinedHits   int64
	AcceptsByCause [NumCauses]int64
	StallNSByCause [NumCauses]int64
	BulkReadLines  int64
	BulkWriteLines int64
}

// Counters reports the controller's cumulative counters.
func (c *Controller) Counters() Counters {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return Counters{
		Accepts:        c.accepts,
		StallNS:        c.stallTime,
		StallEvents:    c.stallEvents,
		MaxOccupancy:   c.maxOccupancy,
		CombinedHits:   c.combinedHits,
		AcceptsByCause: c.acceptsByCause,
		StallNSByCause: c.stallByCause,
		BulkReadLines:  c.bulkReadLines,
		BulkWriteLines: c.bulkWriteLines,
	}
}

// Stats reports the number of WPQ accepts and the cumulative stall
// time caused by a full queue.
//
// Deprecated: use Counters, which also carries the per-cause stall
// breakdown and maximum occupancy.
func (c *Controller) Stats() (accepts, stallTime int64) {
	k := c.Counters()
	return k.Accepts, k.StallNS
}

// Utilization reports total busy time of the NVM write ports, an
// indicator of media write-bandwidth saturation.
func (c *Controller) Utilization() (nvmWriteBusy, nvmReadBusy int64) {
	return c.nvmWrite.BusyTime(), c.nvmRead.BusyTime()
}
