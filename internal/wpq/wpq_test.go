package wpq

import (
	"sync"
	"testing"
)

func small() Config {
	return Config{
		Depth:          4,
		NVMWritePorts:  2,
		NVMReadPorts:   4,
		DRAMWritePorts: 2,
		DRAMReadPorts:  2,
		NVMWriteHold:   100,
		NVMReadHold:    200,
		DRAMWriteHold:  50,
		DRAMReadHold:   40,
		StreamDiscount: 4,
		Threads:        4,
	}
}

func TestEnqueueImmediateAcceptWhenEmpty(t *testing.T) {
	c := New(small())
	accept, drain := c.EnqueueNVM(10, 0, 5, CauseCLWB)
	if accept != 10 {
		t.Fatalf("accept = %d, want 10 (empty WPQ accepts immediately)", accept)
	}
	if drain != 110 {
		t.Fatalf("drain = %d, want 110", drain)
	}
}

func TestWPQBackpressure(t *testing.T) {
	c := New(small())
	// Depth 4, 2 write ports, hold 100. Flood with random (non-stream)
	// lines at t=0: drains complete in pairs at 100, 200, 300...
	// The 5th enqueue needs the 1st drain (t=100) to have completed.
	lines := []uint64{10, 20, 30, 40, 50}
	var accepts []int64
	for _, ln := range lines {
		a, _ := c.EnqueueNVM(0, 0, ln, CauseCLWB)
		accepts = append(accepts, a)
	}
	for i := 0; i < 4; i++ {
		if accepts[i] != 0 {
			t.Fatalf("accept[%d] = %d, want 0 (queue not yet full)", i, accepts[i])
		}
	}
	if accepts[4] != 100 {
		t.Fatalf("accept[4] = %d, want 100 (stall until first drain)", accepts[4])
	}
	_, stall := c.Stats()
	if stall != 100 {
		t.Fatalf("stall time = %d, want 100", stall)
	}
}

func TestWriteCombiningDiscount(t *testing.T) {
	c := New(small())
	_, d0 := c.EnqueueNVM(0, 0, 100, CauseCLWB)
	if d0 != 100 {
		t.Fatalf("first drain = %d", d0)
	}
	// Sequential next line from the same thread: discounted hold 25,
	// scheduled on the second free port.
	_, d1 := c.EnqueueNVM(0, 0, 101, CauseCLWB)
	if d1 != 25 {
		t.Fatalf("stream drain = %d, want 25 (discounted)", d1)
	}
	// Non-sequential from the same thread: full hold.
	_, d2 := c.EnqueueNVM(0, 0, 500, CauseCLWB)
	if d2 != 125 { // port freed at 25, +100
		t.Fatalf("random drain = %d, want 125", d2)
	}
}

func TestStreamTrackingPerThread(t *testing.T) {
	c := New(small())
	c.EnqueueNVM(0, 0, 100, CauseCLWB)
	// Thread 1 writing line 101 is NOT a continuation of thread 0's stream.
	_, d := c.EnqueueNVM(0, 1, 101, CauseCLWB)
	if d != 100 {
		t.Fatalf("cross-thread write got stream discount: drain = %d", d)
	}
}

func TestWritePortSaturation(t *testing.T) {
	// 2 ports, hold 100: 10 random-line writes from t=0 drain the last
	// at t = 10/2*100 = 500 — bandwidth, not latency, limited.
	c := New(small())
	var last int64
	for i := 0; i < 10; i++ {
		_, d := c.EnqueueNVM(0, 0, uint64(i*7+3), CauseCLWB) // non-sequential
		if d > last {
			last = d
		}
	}
	if last != 500 {
		t.Fatalf("last drain = %d, want 500", last)
	}
}

func TestReadPortsScaleFurther(t *testing.T) {
	c := New(small())
	// 4 read ports, hold 200: 4 concurrent reads all complete at 200.
	for i := 0; i < 4; i++ {
		if done := c.ReadNVM(0, uint64(i)); done != 200 {
			t.Fatalf("read %d done = %d, want 200", i, done)
		}
	}
	if done := c.ReadNVM(0, 99); done != 400 {
		t.Fatalf("5th read done = %d, want 400 (queued)", done)
	}
}

func TestDRAMChannels(t *testing.T) {
	c := New(small())
	if done := c.ReadDRAM(0); done != 40 {
		t.Fatalf("DRAM read done = %d, want 40", done)
	}
	if done := c.WriteDRAM(0); done != 50 {
		t.Fatalf("DRAM write done = %d, want 50", done)
	}
}

func TestStatsAndUtilization(t *testing.T) {
	c := New(small())
	c.EnqueueNVM(0, 0, 1, CauseCLWB)
	c.EnqueueNVM(0, 0, 9, CauseCLWB) // non-sequential
	accepts, _ := c.Stats()
	if accepts != 2 {
		t.Fatalf("accepts = %d, want 2", accepts)
	}
	wbusy, _ := c.Utilization()
	if wbusy != 200 {
		t.Fatalf("write busy = %d, want 200", wbusy)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(32)
	if cfg.NVMWritePorts >= cfg.NVMReadPorts {
		t.Fatal("NVM write bandwidth must knee before read bandwidth")
	}
	if cfg.NVMReadHold <= cfg.DRAMReadHold {
		t.Fatal("NVM reads must be slower than DRAM reads")
	}
	if cfg.Depth != 64 {
		t.Fatalf("default WPQ depth = %d, want 64", cfg.Depth)
	}
	New(cfg) // must not panic
}

func TestInvalidDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero depth accepted")
		}
	}()
	New(Config{Depth: 0})
}

func TestConcurrentEnqueueSafety(t *testing.T) {
	c := New(DefaultConfig(8))
	var wg sync.WaitGroup
	for tid := 0; tid < 8; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a, d := c.EnqueueNVM(int64(i), tid, uint64(tid*100000+i), CauseCLWB)
				if d < a {
					t.Errorf("drain %d before accept %d", d, a)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	accepts, _ := c.Stats()
	if accepts != 8*2000 {
		t.Fatalf("accepts = %d, want %d", accepts, 8*2000)
	}
}

func TestAcceptMonotoneUnderLoad(t *testing.T) {
	// Property: repeated enqueues at the same nominal time get
	// non-decreasing accept times once the queue is saturated.
	c := New(small())
	prev := int64(-1)
	for i := 0; i < 64; i++ {
		a, _ := c.EnqueueNVM(0, 0, uint64(i*3+1), CauseCLWB)
		if a < prev {
			t.Fatalf("accept went backwards: %d after %d", a, prev)
		}
		prev = a
	}
	if prev == 0 {
		t.Fatal("saturated queue never stalled")
	}
}

func TestOccupancyAt(t *testing.T) {
	c := New(small()) // 2 ports, hold 100
	c.EnqueueNVM(0, 0, 10, CauseCLWB)
	c.EnqueueNVM(0, 0, 20, CauseCLWB) // both drain at t=100
	c.EnqueueNVM(0, 0, 30, CauseCLWB) // drains at t=200
	if got := c.OccupancyAt(0); got != 3 {
		t.Fatalf("occupancy(0) = %d, want 3", got)
	}
	if got := c.OccupancyAt(150); got != 1 {
		t.Fatalf("occupancy(150) = %d, want 1", got)
	}
	if got := c.OccupancyAt(500); got != 0 {
		t.Fatalf("occupancy(500) = %d, want 0", got)
	}
}

func TestBulkTransfers(t *testing.T) {
	c := New(small()) // NVMReadHold 200, NVMWriteHold 100, discount 4
	if done := c.ReadNVMBulk(0, 64); done != 64*200/4 {
		t.Fatalf("bulk read done = %d, want %d", done, 64*200/4)
	}
	if done := c.WriteNVMBulk(0, 64); done != 64*100/4 {
		t.Fatalf("bulk write done = %d, want %d", done, 64*100/4)
	}
	// Bulk writes occupy write ports: they compete with line drains.
	c2 := New(small())
	c2.WriteNVMBulk(0, 64) // port 0 busy until 1600
	c2.WriteNVMBulk(0, 64) // port 1 busy until 1600
	_, d := c2.EnqueueNVM(0, 0, 99, CauseCLWB)
	if d != 1700 {
		t.Fatalf("line drain behind bulk writes = %d, want 1700", d)
	}
}
