package wpq

import (
	"testing"

	"goptm/internal/metrics"
)

// TestCountersUnderSaturation floods the small queue (depth 4, 2 ports,
// hold 100) past its drain rate and checks the full counter breakdown:
// per-cause accepts and stalls, stall events, and max occupancy (which
// needs a registry attached to enable the occupancy scan).
func TestCountersUnderSaturation(t *testing.T) {
	c := New(small())
	c.SetMetrics(metrics.New(metrics.Config{}))

	// 4 clwb flushes fill the queue without stalling; 4 eviction
	// flushes then each wait for a drain.
	for i := 0; i < 4; i++ {
		c.EnqueueNVM(0, 0, uint64(10+i*3), CauseCLWB)
	}
	for i := 0; i < 4; i++ {
		c.EnqueueNVM(0, 0, uint64(100+i*3), CauseEviction)
	}
	k := c.Counters()

	if k.Accepts != 8 {
		t.Fatalf("accepts = %d, want 8", k.Accepts)
	}
	if k.AcceptsByCause[CauseCLWB] != 4 || k.AcceptsByCause[CauseEviction] != 4 {
		t.Fatalf("accepts by cause = %v", k.AcceptsByCause)
	}
	if k.AcceptsByCause[CauseWCDrain] != 0 {
		t.Fatalf("wc-drain accepts = %d, want 0", k.AcceptsByCause[CauseWCDrain])
	}
	if k.StallNS == 0 || k.StallEvents == 0 {
		t.Fatalf("saturated queue recorded no stalls: %+v", k)
	}
	if k.StallNSByCause[CauseCLWB] != 0 {
		t.Fatalf("clwb stalls = %d, want 0 (queue was not yet full)", k.StallNSByCause[CauseCLWB])
	}
	if k.StallNSByCause[CauseEviction] != k.StallNS {
		t.Fatalf("eviction stalls = %d, want all of %d", k.StallNSByCause[CauseEviction], k.StallNS)
	}
	var sum int64
	for _, s := range k.StallNSByCause {
		sum += s
	}
	if sum != k.StallNS {
		t.Fatalf("per-cause stalls sum to %d, total %d", sum, k.StallNS)
	}
	if k.MaxOccupancy != 4 {
		t.Fatalf("max occupancy = %d, want 4 (the full queue)", k.MaxOccupancy)
	}
}

// TestMaxOccupancyRequiresObserver pins the documented caveat: without
// an observer or registry the occupancy scan is elided and
// MaxOccupancy reads 0 even under saturation.
func TestMaxOccupancyRequiresObserver(t *testing.T) {
	c := New(small())
	for i := 0; i < 8; i++ {
		c.EnqueueNVM(0, 0, uint64(10+i*3), CauseCLWB)
	}
	if got := c.Counters().MaxOccupancy; got != 0 {
		t.Fatalf("max occupancy without observer = %d, want 0 (scan elided)", got)
	}
}

// TestCombinedHitsCounter checks the write-combining accounting: a
// sequential stream and a same-line re-flush count, a stride does not.
func TestCombinedHitsCounter(t *testing.T) {
	c := New(small())
	c.EnqueueNVM(0, 0, 10, CauseCLWB) // opens the stream
	c.EnqueueNVM(0, 0, 11, CauseCLWB) // sequential: hit
	c.EnqueueNVM(0, 0, 11, CauseCLWB) // same line: hit
	c.EnqueueNVM(0, 0, 40, CauseCLWB) // jump: miss
	if got := c.Counters().CombinedHits; got != 2 {
		t.Fatalf("combined hits = %d, want 2", got)
	}
}

// TestMetricsFeed checks the registry mirror: every accept lands in the
// registry with its stall, and line traffic reaches the media model.
func TestMetricsFeed(t *testing.T) {
	c := New(small())
	m := metrics.New(metrics.Config{})
	c.SetMetrics(m)
	for i := 0; i < 8; i++ {
		c.EnqueueNVM(0, 0, uint64(10+i*3), CauseCLWB)
	}
	c.ReadNVM(0, 500)
	c.ReadNVMBulk(0, 8)
	c.WriteNVMBulk(0, 8)

	if got := m.Get(metrics.CtrWPQAccepts); got != 8 {
		t.Fatalf("registry accepts = %d, want 8", got)
	}
	k := c.Counters()
	if got := m.Get(metrics.CtrWPQStallNS); got != k.StallNS {
		t.Fatalf("registry stall ns = %d, controller %d", got, k.StallNS)
	}
	probes := m.Get(metrics.CtrMediaWriteXPLines) + m.Get(metrics.CtrXPBufWriteHits)
	// 8 line flushes + ceil(8/4)=2 bulk XPLines land on the write side.
	if probes != 8+2 {
		t.Fatalf("media write probes+bulk = %d, want 10", probes)
	}
	if got := m.Get(metrics.CtrMediaBulkReadLines); got != 8 {
		t.Fatalf("bulk read lines = %d, want 8", got)
	}
}

// TestBulkLineCounters checks the controller's own bulk accounting.
func TestBulkLineCounters(t *testing.T) {
	c := New(small())
	c.ReadNVMBulk(0, 64)
	c.WriteNVMBulk(0, 32)
	k := c.Counters()
	if k.BulkReadLines != 64 || k.BulkWriteLines != 32 {
		t.Fatalf("bulk lines = %d/%d, want 64/32", k.BulkReadLines, k.BulkWriteLines)
	}
}

func TestCauseString(t *testing.T) {
	for c := Cause(0); c < NumCauses; c++ {
		if c.String() == "cause?" {
			t.Fatalf("cause %d has no name", c)
		}
	}
	if NumCauses.String() != "cause?" {
		t.Fatal("out-of-range cause should render cause?")
	}
}
