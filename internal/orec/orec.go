// Package orec implements the ownership-record (orec) table and the
// global version clock used by the PTM algorithms, following the
// word-based STM design of TL2 / TinySTM that the paper's orec-lazy
// and orec-eager algorithms build on.
//
// Each orec is a versioned lock packed into one uint64:
//
//	locked:   (owner << 1) | 1    — owner is a non-zero transaction id
//	unlocked:  version << 1       — version is a global-clock value
//
// Addresses hash to orecs at cache-line granularity (64 B stripes), so
// two writers to the same line conflict — mirroring both the hardware
// reality and the reference implementation.
package orec

import (
	"sync/atomic"

	"goptm/internal/memdev"
)

// DefaultSize is the default number of orecs (2^20, as in the paper's
// runtime).
const DefaultSize = 1 << 20

// Table is the orec table plus the global version clock. A table from
// New is safe for concurrent use; a table from NewSerial relies on the
// lockstep scheduler's floor (exactly one simulated thread executes at
// any instant) and replaces every atomic with a plain memory op —
// orec loads and the clock are touched on every transactional read,
// so the LOCK-prefixed CAS and fenced loads are measurable there.
type Table struct {
	orecs       []uint64
	mask        uint64
	serial      bool
	clock       uint64
	casFailures int64 // TryLock attempts lost to a concurrent owner/version
}

// New creates a concurrency-safe table with size orecs. size must be a
// power of two; size <= 0 selects DefaultSize.
func New(size int) *Table {
	if size <= 0 {
		size = DefaultSize
	}
	if size&(size-1) != 0 {
		panic("orec: table size must be a power of two")
	}
	return &Table{orecs: make([]uint64, size), mask: uint64(size - 1)}
}

// NewSerial creates a table whose callers promise external
// serialization (the lockstep floor); all atomics are elided.
func NewSerial(size int) *Table {
	t := New(size)
	t.serial = true
	return t
}

// Index maps a word address to its orec slot.
func (t *Table) Index(a memdev.Addr) int {
	line := uint64(a) >> memdev.LineShift
	return int((line * 0x9E3779B97F4A7C15) >> 40 & t.mask)
}

// Load returns the current orec word for slot i.
func (t *Table) Load(i int) uint64 {
	if t.serial {
		return t.orecs[i]
	}
	return atomic.LoadUint64(&t.orecs[i])
}

// IsLocked reports whether orec word v is locked.
func IsLocked(v uint64) bool { return v&1 == 1 }

// Owner extracts the owner id from a locked orec word.
func Owner(v uint64) uint64 { return v >> 1 }

// Version extracts the version from an unlocked orec word.
func Version(v uint64) uint64 { return v >> 1 }

// Locked builds a locked orec word for owner (owner must be non-zero).
func Locked(owner uint64) uint64 { return owner<<1 | 1 }

// Versioned builds an unlocked orec word carrying version.
func Versioned(version uint64) uint64 { return version << 1 }

// TryLock atomically locks slot i for owner if its current value is
// the unlocked word for expectVersion. It returns true on success;
// failures (the CAS losing to a concurrent owner or a version change)
// are counted, the contention signal the metrics report surfaces.
func (t *Table) TryLock(i int, owner, expectVersion uint64) bool {
	if t.serial {
		if t.orecs[i] != Versioned(expectVersion) {
			t.casFailures++
			return false
		}
		t.orecs[i] = Locked(owner)
		return true
	}
	if atomic.CompareAndSwapUint64(&t.orecs[i], Versioned(expectVersion), Locked(owner)) {
		return true
	}
	atomic.AddInt64(&t.casFailures, 1)
	return false
}

// CASFailures reports the cumulative TryLock failure count.
func (t *Table) CASFailures() int64 {
	if t.serial {
		return t.casFailures
	}
	return atomic.LoadInt64(&t.casFailures)
}

// Release unlocks slot i, publishing newVersion. The caller must hold
// the lock.
func (t *Table) Release(i int, newVersion uint64) {
	if t.serial {
		t.orecs[i] = Versioned(newVersion)
		return
	}
	atomic.StoreUint64(&t.orecs[i], Versioned(newVersion))
}

// ReadClock returns the current global version clock.
func (t *Table) ReadClock() uint64 {
	if t.serial {
		return t.clock
	}
	return atomic.LoadUint64(&t.clock)
}

// IncClock atomically advances the global clock and returns the new
// value (the commit timestamp).
func (t *Table) IncClock() uint64 {
	if t.serial {
		t.clock++
		return t.clock
	}
	return atomic.AddUint64(&t.clock, 1)
}

// Size reports the number of orecs.
func (t *Table) Size() int { return len(t.orecs) }

// Reset clears every orec and the clock. Only for recovery: after a
// crash all volatile STM metadata is reconstructed empty (the device
// is quiescent there, so plain stores suffice in either mode).
func (t *Table) Reset() {
	for i := range t.orecs {
		t.orecs[i] = 0
	}
	t.clock = 0
	t.casFailures = 0
}
