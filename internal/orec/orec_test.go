package orec

import (
	"sync"
	"testing"
	"testing/quick"

	"goptm/internal/memdev"
)

func TestWordEncoding(t *testing.T) {
	if IsLocked(Versioned(5)) {
		t.Error("versioned word reads as locked")
	}
	if !IsLocked(Locked(3)) {
		t.Error("locked word reads as unlocked")
	}
	if Version(Versioned(7)) != 7 {
		t.Error("version round trip failed")
	}
	if Owner(Locked(9)) != 9 {
		t.Error("owner round trip failed")
	}
}

func TestEncodingRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		v >>= 1 // keep in range
		return Version(Versioned(v)) == v && Owner(Locked(v)) == v &&
			!IsLocked(Versioned(v)) && IsLocked(Locked(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size accepted")
		}
	}()
	New(1000)
}

func TestDefaultSize(t *testing.T) {
	tb := New(0)
	if tb.Size() != DefaultSize {
		t.Fatalf("size = %d, want %d", tb.Size(), DefaultSize)
	}
}

func TestIndexStripesByLine(t *testing.T) {
	tb := New(1 << 10)
	// Words within one 64 B line share an orec.
	for w := memdev.Addr(1); w < memdev.WordsPerLine; w++ {
		if tb.Index(0) != tb.Index(w) {
			t.Fatalf("words 0 and %d map to different orecs", w)
		}
	}
	// Distinct lines should usually differ.
	same := 0
	for l := 0; l < 1000; l++ {
		if tb.Index(memdev.Addr(l*8)) == tb.Index(memdev.Addr((l+1)*8)) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("adjacent lines collide %d/1000 times", same)
	}
}

func TestIndexInRange(t *testing.T) {
	tb := New(1 << 8)
	f := func(a uint64) bool {
		i := tb.Index(memdev.Addr(a))
		return i >= 0 && i < tb.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTryLockRelease(t *testing.T) {
	tb := New(1 << 8)
	i := tb.Index(0)
	if !tb.TryLock(i, 1, 0) {
		t.Fatal("lock of fresh orec failed")
	}
	if tb.TryLock(i, 2, 0) {
		t.Fatal("double lock succeeded")
	}
	v := tb.Load(i)
	if !IsLocked(v) || Owner(v) != 1 {
		t.Fatalf("orec word = %#x", v)
	}
	tb.Release(i, 42)
	v = tb.Load(i)
	if IsLocked(v) || Version(v) != 42 {
		t.Fatalf("after release orec word = %#x", v)
	}
	// Re-lock requires the current version.
	if tb.TryLock(i, 1, 0) {
		t.Fatal("lock with stale version succeeded")
	}
	if !tb.TryLock(i, 1, 42) {
		t.Fatal("lock with current version failed")
	}
}

func TestClock(t *testing.T) {
	tb := New(1 << 8)
	if tb.ReadClock() != 0 {
		t.Fatal("fresh clock not zero")
	}
	if tb.IncClock() != 1 || tb.IncClock() != 2 {
		t.Fatal("clock increments wrong")
	}
	if tb.ReadClock() != 2 {
		t.Fatal("clock read wrong")
	}
}

func TestClockConcurrentUnique(t *testing.T) {
	tb := New(1 << 8)
	const goroutines = 8
	const per = 1000
	got := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[g] = append(got[g], tb.IncClock())
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, s := range got {
		for _, v := range s {
			if seen[v] {
				t.Fatalf("duplicate commit timestamp %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != goroutines*per {
		t.Fatalf("got %d timestamps, want %d", len(seen), goroutines*per)
	}
}

func TestMutualExclusion(t *testing.T) {
	tb := New(1 << 4)
	i := tb.Index(0)
	var holders int32
	var maxHolders int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 1; g <= 8; g++ {
		wg.Add(1)
		go func(owner uint64) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				v := tb.Load(i)
				if IsLocked(v) {
					continue
				}
				if tb.TryLock(i, owner, Version(v)) {
					mu.Lock()
					holders++
					if holders > maxHolders {
						maxHolders = holders
					}
					if holders != 1 {
						mu.Unlock()
						t.Errorf("%d holders inside critical section", holders)
						return
					}
					holders--
					mu.Unlock()
					tb.Release(i, Version(v)+1)
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if maxHolders != 1 {
		t.Fatalf("max holders = %d", maxHolders)
	}
}

func TestReset(t *testing.T) {
	tb := New(1 << 4)
	tb.TryLock(0, 1, 0)
	tb.IncClock()
	tb.Reset()
	if tb.Load(0) != 0 || tb.ReadClock() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCASFailures(t *testing.T) {
	tb := New(1 << 8)
	i := tb.Index(0)
	if tb.CASFailures() != 0 {
		t.Fatal("fresh table has CAS failures")
	}
	tb.TryLock(i, 1, 0) // success: no failure
	tb.TryLock(i, 2, 0) // lost to owner 1
	tb.TryLock(i, 3, 0) // lost again
	if got := tb.CASFailures(); got != 2 {
		t.Fatalf("CAS failures = %d, want 2", got)
	}
	tb.Release(i, 7)
	tb.TryLock(i, 2, 0) // stale version: also a failure
	if got := tb.CASFailures(); got != 3 {
		t.Fatalf("CAS failures after stale-version attempt = %d, want 3", got)
	}
}
