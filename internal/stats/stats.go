// Package stats provides a small fixed-footprint latency histogram
// used to report transaction-latency percentiles in virtual
// nanoseconds. Buckets are log2-spaced: bucket i counts samples in
// [2^i, 2^(i+1)) ns, which gives ~±50% resolution over the whole
// nanosecond-to-second range with 64 counters and no allocation on
// the record path.
package stats

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
)

// Buckets is the number of log2 buckets (covers up to 2^63 ns).
const Buckets = 64

// Histogram is a log2 latency histogram. It is not safe for
// concurrent use; each thread owns one and they are merged afterward.
type Histogram struct {
	counts [Buckets]int64
	total  int64
	sum    int64
	max    int64
}

// Record adds one sample (ns >= 0; negative samples are clamped).
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) // 0 -> bucket 0, 1 -> 1, 2..3 -> 2 ...
	if b >= Buckets {
		b = Buckets - 1
	}
	h.counts[b]++
	h.total++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean reports the arithmetic mean sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max reports the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile reports an upper bound for the p-th percentile
// (0 < p <= 100): the top of the bucket containing that rank.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		p = 0.01
	}
	if p > 100 {
		p = 100
	}
	rank := int64(float64(h.total)*p/100 + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i >= 63 {
				return h.max
			}
			hi := int64(1) << uint(i)
			if hi > h.max && h.max > 0 {
				return h.max
			}
			return hi
		}
	}
	return h.max
}

// P50 reports the median. Like all bucket-derived quantiles it is the
// top of the log2 bucket holding the rank, so the reported value is
// exact to within the bucket width: at most 2x the true quantile and
// never below it (~±50% relative error bound), clamped to the true
// maximum.
func (h *Histogram) P50() int64 { return h.Percentile(50) }

// P90 reports the 90th percentile (see P50 for the error bound).
func (h *Histogram) P90() int64 { return h.Percentile(90) }

// P99 reports the 99th percentile (see P50 for the error bound).
func (h *Histogram) P99() int64 { return h.Percentile(99) }

// P999 reports the 99.9th percentile (see P50 for the error bound) —
// the extreme-tail quantile the serving-path reports surface, since a
// group-commit window or journal flush that hurts only one request in
// a thousand is invisible at p99.
func (h *Histogram) P999() int64 { return h.Percentile(99.9) }

// Sum reports the total of all recorded samples in ns (the telemetry
// exposition's summary _sum line).
func (h *Histogram) Sum() int64 { return h.sum }

// Bucket is one non-empty histogram bucket in the JSON encoding:
// Count samples in [LoNS, 2*LoNS) virtual ns.
type Bucket struct {
	LoNS  int64 `json:"lo_ns"`
	Count int64 `json:"count"`
}

// histogramJSON is the wire form of a Histogram: a human-readable
// summary plus the exact state (buckets, sum, max) needed to rebuild
// the distribution losslessly on unmarshal.
type histogramJSON struct {
	Count   int64    `json:"count"`
	MeanNS  float64  `json:"mean_ns"`
	P50NS   int64    `json:"p50_ns"`
	P95NS   int64    `json:"p95_ns"`
	P99NS   int64    `json:"p99_ns"`
	MaxNS   int64    `json:"max_ns"`
	SumNS   int64    `json:"sum_ns"`
	Buckets []Bucket `json:"buckets"`
}

// MarshalJSON encodes the distribution as a summary plus the non-empty
// buckets, the form the CSV export embeds per measurement row and the
// experiment result cache stores. UnmarshalJSON inverts it exactly.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	var buckets []Bucket
	for i, c := range h.counts {
		if c > 0 {
			buckets = append(buckets, Bucket{LoNS: int64(1) << uint(i) >> 1, Count: c})
		}
	}
	return json.Marshal(histogramJSON{
		Count: h.total, MeanNS: h.Mean(),
		P50NS: h.Percentile(50), P95NS: h.Percentile(95), P99NS: h.Percentile(99),
		MaxNS: h.max, SumNS: h.sum, Buckets: buckets,
	})
}

// UnmarshalJSON rebuilds the histogram from its MarshalJSON form. The
// round trip is exact: counts, sum, and max are restored verbatim, so
// every percentile and the re-marshalled bytes come out identical —
// the property the content-addressed result cache relies on.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*h = Histogram{total: w.Count, sum: w.SumNS, max: w.MaxNS}
	for _, b := range w.Buckets {
		if b.LoNS < 0 {
			return fmt.Errorf("stats: negative bucket bound %d", b.LoNS)
		}
		i := bits.Len64(uint64(b.LoNS)) // inverse of LoNS = 1<<i>>1
		if i >= Buckets {
			return fmt.Errorf("stats: bucket bound %d out of range", b.LoNS)
		}
		h.counts[i] = b.Count
	}
	return nil
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0fns p50=%dns p99=%dns max=%dns",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(99), h.max)
}

// Bars renders an ASCII sketch of the non-empty buckets (for the CLI
// tools' verbose output).
func (h *Histogram) Bars(width int) string {
	if h.total == 0 {
		return "(empty)"
	}
	var peak int64
	lo, hi := -1, -1
	for i, c := range h.counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		n := int(float64(h.counts[i]) / float64(peak) * float64(width))
		if n == 0 && h.counts[i] > 0 {
			n = 1 // a populated bucket must be visible, however small
		}
		fmt.Fprintf(&b, "%10dns |%-*s| %d\n", int64(1)<<uint(i), width, strings.Repeat("#", n), h.counts[i])
	}
	return b.String()
}
