package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Bars(10) != "(empty)" {
		t.Fatal("empty bars")
	}
}

func TestRecordBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{100, 200, 300, 400} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 250 {
		t.Fatalf("mean = %f", h.Mean())
	}
	if h.Max() != 400 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative sample not clamped")
	}
}

func TestPercentileBounds(t *testing.T) {
	var h Histogram
	// 99 samples of ~100ns and 1 of ~1,000,000ns.
	for i := 0; i < 99; i++ {
		h.Record(100)
	}
	h.Record(1_000_000)
	p50 := h.Percentile(50)
	if p50 < 100 || p50 > 256 {
		t.Fatalf("p50 = %d, want ~128 (log2 bucket top)", p50)
	}
	p999 := h.Percentile(99.9)
	if p999 < 1_000_000 {
		t.Fatalf("p99.9 = %d, want >= the outlier", p999)
	}
	// Out-of-range p values are clamped, not panics.
	h.Percentile(-1)
	h.Percentile(200)
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		var h Histogram
		for _, s := range samples {
			h.Record(int64(s))
		}
		last := int64(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return h.Count() == 0 || h.Percentile(100) >= h.Max()/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileWithinFactorTwoProperty(t *testing.T) {
	// Log2 buckets promise the reported p100 is within 2x of the max.
	f := func(samples []uint16) bool {
		var h Histogram
		for _, s := range samples {
			h.Record(int64(s) + 1)
		}
		if h.Count() == 0 {
			return true
		}
		p := h.Percentile(100)
		return p >= h.Max()/2 && p <= 2*h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(20)
	b.Record(1000)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 1000 {
		t.Fatalf("merge: count=%d max=%d", a.Count(), a.Max())
	}
	if a.Mean() < 300 || a.Mean() > 350 {
		t.Fatalf("merged mean = %f", a.Mean())
	}
}

func TestStringAndBars(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	s := h.String()
	if !strings.Contains(s, "n=1000") || !strings.Contains(s, "p50=") {
		t.Fatalf("summary malformed: %q", s)
	}
	bars := h.Bars(20)
	if !strings.Contains(bars, "#") {
		t.Fatalf("bars malformed: %q", bars)
	}
}

func TestHugeSampleClamps(t *testing.T) {
	var h Histogram
	h.Record(1 << 62)
	if h.Percentile(100) < 1<<61 {
		t.Fatal("huge sample lost")
	}
}
