package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Bars(10) != "(empty)" {
		t.Fatal("empty bars")
	}
}

func TestRecordBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{100, 200, 300, 400} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 250 {
		t.Fatalf("mean = %f", h.Mean())
	}
	if h.Max() != 400 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative sample not clamped")
	}
}

func TestPercentileBounds(t *testing.T) {
	var h Histogram
	// 99 samples of ~100ns and 1 of ~1,000,000ns.
	for i := 0; i < 99; i++ {
		h.Record(100)
	}
	h.Record(1_000_000)
	p50 := h.Percentile(50)
	if p50 < 100 || p50 > 256 {
		t.Fatalf("p50 = %d, want ~128 (log2 bucket top)", p50)
	}
	p999 := h.Percentile(99.9)
	if p999 < 1_000_000 {
		t.Fatalf("p99.9 = %d, want >= the outlier", p999)
	}
	// Out-of-range p values are clamped, not panics.
	h.Percentile(-1)
	h.Percentile(200)
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		var h Histogram
		for _, s := range samples {
			h.Record(int64(s))
		}
		last := int64(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return h.Count() == 0 || h.Percentile(100) >= h.Max()/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileWithinFactorTwoProperty(t *testing.T) {
	// Log2 buckets promise the reported p100 is within 2x of the max.
	f := func(samples []uint16) bool {
		var h Histogram
		for _, s := range samples {
			h.Record(int64(s) + 1)
		}
		if h.Count() == 0 {
			return true
		}
		p := h.Percentile(100)
		return p >= h.Max()/2 && p <= 2*h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(20)
	b.Record(1000)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 1000 {
		t.Fatalf("merge: count=%d max=%d", a.Count(), a.Max())
	}
	if a.Mean() < 300 || a.Mean() > 350 {
		t.Fatalf("merged mean = %f", a.Mean())
	}
}

func TestStringAndBars(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	s := h.String()
	if !strings.Contains(s, "n=1000") || !strings.Contains(s, "p50=") {
		t.Fatalf("summary malformed: %q", s)
	}
	bars := h.Bars(20)
	if !strings.Contains(bars, "#") {
		t.Fatalf("bars malformed: %q", bars)
	}
}

func TestBarsSmallBucketsVisible(t *testing.T) {
	// A bucket whose proportional width rounds to zero must still show
	// at least one '#': one outlier dwarfing one small sample.
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(1 << 20)
	}
	h.Record(2) // tiny, 1/1000th of the peak bucket
	for _, line := range strings.Split(strings.TrimRight(h.Bars(20), "\n"), "\n") {
		if strings.HasSuffix(line, " 0") {
			continue // empty in-between bucket: no bar expected
		}
		if !strings.Contains(line, "#") {
			t.Fatalf("populated bucket rendered with no bar: %q", line)
		}
	}
}

func TestMarshalJSON(t *testing.T) {
	var h Histogram
	for _, v := range []int64{100, 100, 200, 1 << 20} {
		h.Record(v)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Count   int64    `json:"count"`
		MeanNS  float64  `json:"mean_ns"`
		P50NS   int64    `json:"p50_ns"`
		P95NS   int64    `json:"p95_ns"`
		P99NS   int64    `json:"p99_ns"`
		MaxNS   int64    `json:"max_ns"`
		Buckets []Bucket `json:"buckets"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if got.Count != 4 || got.MaxNS != 1<<20 {
		t.Fatalf("summary wrong: %s", data)
	}
	if got.P50NS <= 0 || got.P95NS < got.P50NS || got.P99NS < got.P95NS {
		t.Fatalf("percentiles wrong: %s", data)
	}
	var n int64
	for _, b := range got.Buckets {
		if b.Count <= 0 {
			t.Fatalf("empty bucket emitted: %s", data)
		}
		n += b.Count
	}
	if n != 4 {
		t.Fatalf("bucket counts sum to %d: %s", n, data)
	}
}

func TestMarshalJSONEmpty(t *testing.T) {
	var h Histogram
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"count":0`) {
		t.Fatalf("empty histogram JSON: %s", data)
	}
}

func TestHugeSampleClamps(t *testing.T) {
	var h Histogram
	h.Record(1 << 62)
	if h.Percentile(100) < 1<<61 {
		t.Fatal("huge sample lost")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{0, 1, 3, 7, 100, 1023, 1024, 99999, 1 << 40} {
		h.Record(ns)
		h.Record(ns)
	}
	b1, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var g Histogram
	if err := json.Unmarshal(b1, &g); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip changed state:\n got %+v\nwant %+v", g, h)
	}
	b2, err := json.Marshal(&g)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("re-marshal differs:\n%s\n%s", b1, b2)
	}
	for _, p := range []float64{50, 95, 99, 100} {
		if g.Percentile(p) != h.Percentile(p) {
			t.Fatalf("p%.0f differs after round trip", p)
		}
	}
}

func TestHistogramJSONRoundTripEmpty(t *testing.T) {
	var h, g Histogram
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("empty round trip changed state")
	}
}

func TestQuantileAccessorsEmpty(t *testing.T) {
	var h Histogram
	if h.P50() != 0 || h.P90() != 0 || h.P99() != 0 {
		t.Fatalf("empty histogram quantiles = %d/%d/%d, want 0",
			h.P50(), h.P90(), h.P99())
	}
}

func TestQuantileAccessorsSingleBucket(t *testing.T) {
	// All samples in one bucket: every quantile is that bucket's top,
	// clamped to the true max.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(70) // bucket [64, 128)
	}
	for _, q := range []int64{h.P50(), h.P90(), h.P99()} {
		if q != 70 {
			t.Fatalf("single-bucket quantile = %d, want 70 (clamped to max)", q)
		}
	}
	h.Record(100) // same bucket, raises max
	if h.P99() != 100 {
		t.Fatalf("P99 = %d, want 100", h.P99())
	}
}

func TestQuantileAccessorsOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(int64(i))
	}
	p50, p90, p99 := h.P50(), h.P90(), h.P99()
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not ordered: %d/%d/%d", p50, p90, p99)
	}
	// Documented bound: at most 2x the true quantile, never below it.
	if p50 < 500 || p50 > 1000 {
		t.Fatalf("P50 = %d outside [500, 1000]", p50)
	}
	if p99 < 990 || p99 > 1000 {
		t.Fatalf("P99 = %d outside [990, 1000] (clamped to max)", p99)
	}
}
