package perfbench

import (
	"testing"

	"goptm/internal/memdev"
	"goptm/internal/simtime"
)

// BenchmarkOpPath measures the canonical persist sequence (store,
// clwb, sfence, load) on an ADR lockstep bus — the simulator's
// hottest path. Four simulated memory ops per iteration.
func BenchmarkOpPath(b *testing.B) {
	bus := opPathBus()
	ctx := bus.NewContext(0)
	defer ctx.Detach()
	const span = 1 << 14
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := memdev.Addr(uint64(i*9) % span)
		ctx.Store(a, uint64(i))
		ctx.CLWB(a)
		ctx.SFence()
		ctx.Load(a)
	}
}

// BenchmarkLoadStore measures the recorder-disabled load/store pair
// alone (no flush traffic), the path every transactional read and
// write bottoms out in.
func BenchmarkLoadStore(b *testing.B) {
	bus := opPathBus()
	ctx := bus.NewContext(0)
	defer ctx.Detach()
	const span = 1 << 14
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := memdev.Addr(uint64(i*17) % span)
		ctx.Store(a, uint64(i))
		ctx.Load(a)
	}
}

// BenchmarkLockstepHandoff measures the direct floor handoff: 32
// threads each advancing exactly one window per turn, so every
// iteration is 32 grants.
func BenchmarkLockstepHandoff(b *testing.B) {
	Handoff(32, b.N) // warm the path; the measured run below dominates
}

// BenchmarkLockstepHandoff2 measures the two-thread ping-pong, the
// minimal handoff latency.
func BenchmarkLockstepHandoff2(b *testing.B) {
	e := simtime.NewLockstepEngine(1000)
	a, c := e.NewThread(0), e.NewThread(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer c.Detach()
		for c.Now() < int64(b.N+2)*1000 {
			c.Advance(1000)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Advance(1000)
	}
	b.StopTimer()
	a.Detach()
	<-done
}

// BenchmarkSweepCell32 is the acceptance benchmark: one full lockstep
// sweep cell (tpcc-hash, Optane ADR redo, 32 threads) at quick-params
// scale. Run with -benchtime=1x; wall seconds are the metric the
// BENCH_*.json artifact tracks.
func BenchmarkSweepCell32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		secs, commits, err := SweepCell(32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(secs, "wall-s/cell")
		b.ReportMetric(float64(commits), "commits")
	}
}
