// Package perfbench measures the simulator's own speed: host
// wall-clock cost per simulated operation, lockstep handoff rate, and
// the wall time of a fixed sweep cell. These are *simulator* metrics
// (how fast the reproduction runs), not paper metrics — the virtual
// throughput numbers live in the harness.
//
// The same probes back three consumers: the Go benchmarks in
// bench_test.go, the `ptmbench -perfjson` mode that emits the tracked
// BENCH_<pr>.json artifact, and ad-hoc before/after comparisons during
// performance work (docs/PERFORMANCE.md).
package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/harness"
	"goptm/internal/membus"
	"goptm/internal/memdev"
	"goptm/internal/simtime"
	"goptm/internal/workload/tpcc"
)

// Schema identifies the BENCH_*.json layout.
const Schema = 1

// Metric is one measured quantity.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Report is the tracked perf artifact (BENCH_<pr>.json). Metrics hold
// the current build's numbers; Baseline, when present, holds the same
// probes measured on the pre-overhaul scheduler of the same host, so
// the speedup is an apples-to-apples wall-clock comparison.
type Report struct {
	Schema     int               `json:"schema"`
	Suite      string            `json:"suite"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Metrics    map[string]Metric `json:"metrics"`
	Baseline   map[string]Metric `json:"baseline,omitempty"`
	// SweepSpeedup is sweep_cell_32 baseline seconds / current seconds
	// (only when a baseline is attached) — the acceptance metric.
	SweepSpeedup float64 `json:"sweep_speedup,omitempty"`
}

// opPathBus builds the standard op-path probe machine: one thread,
// Optane ADR (the domain where clwb/sfence are real work), lockstep.
func opPathBus() *membus.Bus {
	return membus.MustNew(membus.Config{
		Threads:  1,
		Domain:   durability.ADR,
		Dev:      memdev.Config{NVMWords: 1 << 20, DRAMWords: 1 << 14},
		Lockstep: true,
	})
}

// OpPath runs iters rounds of the canonical persist sequence — store,
// clwb, sfence, load — against an ADR lockstep bus and reports the
// host nanoseconds per simulated memory operation (4 ops per round).
func OpPath(iters int) (nsPerOp float64) {
	bus := opPathBus()
	ctx := bus.NewContext(0)
	defer ctx.Detach()
	const span = 1 << 14 // words; larger than L1+L2 so misses occur
	start := time.Now()
	for i := 0; i < iters; i++ {
		a := memdev.Addr(uint64(i*9) % span)
		ctx.Store(a, uint64(i))
		ctx.CLWB(a)
		ctx.SFence()
		ctx.Load(a)
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(iters*4)
}

// OpPathAllocs reports heap allocations per simulated memory op on the
// persist sequence, after a warmup pass that brings caches, WPQ ring,
// and pending slots to steady-state capacity. The recorder-disabled
// hot path is required to be allocation-free (see
// membus.TestHotPathZeroAlloc), so the tracked value is expected to be
// exactly 0.
func OpPathAllocs(iters int) float64 {
	bus := opPathBus()
	ctx := bus.NewContext(0)
	defer ctx.Detach()
	const span = 1 << 14
	run := func(n int) {
		for i := 0; i < n; i++ {
			a := memdev.Addr(uint64(i*9) % span)
			ctx.Store(a, uint64(i))
			ctx.CLWB(a)
			ctx.SFence()
			ctx.Load(a)
		}
	}
	run(span) // warmup: amortized capacity growth happens here
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run(iters)
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters*4)
}

// Handoff runs threads lockstep workers that each advance exactly one
// window per turn for rounds windows, so every Advance is a floor
// handoff, and reports handoffs per host second.
func Handoff(threads, rounds int) (handoffsPerSec float64) {
	e := simtime.NewLockstepEngine(1000)
	ths := make([]*simtime.Thread, threads)
	for i := range ths {
		ths[i] = e.NewThread(i)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(th *simtime.Thread) {
			defer wg.Done()
			defer th.Detach()
			for r := 0; r < rounds; r++ {
				th.Advance(1000)
			}
		}(ths[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(threads*rounds) / elapsed.Seconds()
}

// SweepCell measures the wall-clock seconds of one lockstep sweep cell
// at quick-params scale: tpcc-hash on Optane_ADR_R with the given
// thread count. This is the unit of work the parallel sweep engine
// schedules, so its wall time is what a full `ptmbench -all` run is
// made of.
func SweepCell(threads int) (wallSeconds float64, commits int64, err error) {
	p := harness.QuickParams()
	cell := harness.Cell{Medium: core.MediumNVM, Domain: durability.ADR, Algo: core.OrecLazy}
	rc := harness.RunConfig{Threads: threads, WarmupNS: p.WarmupNS, MeasureNS: p.MeasureNS, Lockstep: true}
	start := time.Now()
	res, err := harness.Run(cell, rc, tpcc.New(tpcc.Config{Kind: tpcc.HashIndex}))
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start).Seconds(), res.Commits, nil
}

// Fixed probe budgets: identical work before and after an optimization
// so wall-clock numbers compare directly.
const (
	opPathIters    = 300_000
	handoffThreads = 32
	handoffRounds  = 6_000
	sweepThreads   = 32
)

// Collect runs the full probe suite and assembles a Report (without a
// baseline; attach one with AttachBaseline).
func Collect() (Report, error) {
	r := Report{
		Schema:     Schema,
		Suite:      "simulator-hot-path",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Metrics:    map[string]Metric{},
	}
	nsPerOp := OpPath(opPathIters)
	r.Metrics["op_path_ns_per_op"] = Metric{Value: round2(nsPerOp), Unit: "host-ns/sim-op"}
	r.Metrics["op_path_ops_per_sec"] = Metric{Value: round2(1e9 / nsPerOp), Unit: "sim-ops/s"}
	r.Metrics["op_path_allocs_per_op"] = Metric{Value: round2(OpPathAllocs(opPathIters / 10)), Unit: "allocs/sim-op"}

	hps := Handoff(handoffThreads, handoffRounds)
	r.Metrics["lockstep_handoffs_per_sec_32t"] = Metric{Value: round2(hps), Unit: "handoffs/s"}

	secs, commits, err := SweepCell(sweepThreads)
	if err != nil {
		return r, err
	}
	r.Metrics["sweep_cell_32t_wall"] = Metric{Value: round2(secs), Unit: "s"}
	r.Metrics["sweep_cell_32t_commits"] = Metric{Value: float64(commits), Unit: "committed-txns"}
	return r, nil
}

// AttachBaseline merges a pre-optimization report's metrics as the
// baseline and computes the sweep speedup.
func (r *Report) AttachBaseline(base Report) {
	r.Baseline = base.Metrics
	if b, ok := base.Metrics["sweep_cell_32t_wall"]; ok {
		if cur, ok2 := r.Metrics["sweep_cell_32t_wall"]; ok2 && cur.Value > 0 {
			r.SweepSpeedup = round2(b.Value / cur.Value)
		}
	}
}

// Write emits the report as indented JSON.
func (r Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load reads a report written by Write.
func Load(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	return r, nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
