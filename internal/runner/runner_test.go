package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func squareJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label:  fmt.Sprintf("job%d", i),
			CostNS: 1000,
			Run:    func() (int, error) { return i * i, nil },
		}
	}
	return jobs
}

func TestRunPreservesJobOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		outs, err := Run(Options{Jobs: workers}, squareJobs(50))
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range outs {
			if o.Value != i*i || o.Source != Simulated {
				t.Fatalf("jobs=%d: outs[%d] = %+v", workers, i, o)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int32
	jobs := make([]Job[int], 32)
	for i := range jobs {
		jobs[i] = Job[int]{Run: func() (int, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			defer cur.Add(-1)
			return 0, nil
		}}
	}
	if _, err := Run(Options{Jobs: 3}, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d > 3", p)
	}
}

func TestRunReturnsFirstErrorInJobOrder(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	jobs := squareJobs(20)
	jobs[7].Run = func() (int, error) { return 0, errB }
	jobs[3].Run = func() (int, error) { return 0, errA }
	_, err := Run(Options{Jobs: 8}, jobs)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want first-in-order %v", err, errA)
	}
}

func TestRunStopsSchedulingAfterError(t *testing.T) {
	var ran atomic.Int32
	jobs := make([]Job[int], 1000)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func() (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, errors.New("boom")
			}
			return 0, nil
		}}
	}
	if _, err := Run(Options{Jobs: 1}, jobs); err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n > 2 {
		t.Fatalf("ran %d jobs after failure", n)
	}
}

func TestShard(t *testing.T) {
	jobs := squareJobs(10)
	outs, err := Run(Options{Jobs: 2, Shard: Shard{Index: 1, Count: 3}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if i%3 == 1 {
			if o.Source != Simulated || o.Value != i*i {
				t.Fatalf("owned job %d: %+v", i, o)
			}
		} else if o.Source != Skipped || o.Value != 0 {
			t.Fatalf("foreign job %d: %+v", i, o)
		}
	}
	// Every job is owned by exactly one shard.
	for i := 0; i < 10; i++ {
		owners := 0
		for s := 0; s < 3; s++ {
			if (Shard{Index: s, Count: 3}).Owns(i) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("job %d has %d owners", i, owners)
		}
	}
}

func TestParseShard(t *testing.T) {
	s, err := ParseShard("2/3")
	if err != nil || s != (Shard{Index: 1, Count: 3}) {
		t.Fatalf("ParseShard(2/3) = %+v, %v", s, err)
	}
	if s.String() != "2/3" {
		t.Fatalf("String() = %q", s.String())
	}
	if s, err := ParseShard(""); err != nil || s != (Shard{}) {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"0/3", "4/3", "x/y", "1", "1/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

type fakeResult struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func TestCacheHitMissInvalidate(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := KeyJSON(struct {
		Sim  int    `json:"sim"`
		Cell string `json:"cell"`
	}{1, "Optane_ADR_R"})

	var out fakeResult
	if c.Get(key, &out) {
		t.Fatal("hit on empty cache")
	}
	want := fakeResult{Name: "x", Score: 1.5}
	if err := c.Put(key, &want); err != nil {
		t.Fatal(err)
	}
	if !c.Get(key, &out) || out != want {
		t.Fatalf("after put: got %+v", out)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	// A different key misses.
	if c.Get(KeyJSON(struct {
		Sim  int    `json:"sim"`
		Cell string `json:"cell"`
	}{2, "Optane_ADR_R"}), &out) {
		t.Fatal("hit on different sim version")
	}
	if err := c.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Get(key, &out) {
		t.Fatal("entry survived Invalidate")
	}
	hits, misses, stores := c.Stats()
	if hits != 1 || misses != 3 || stores != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, stores)
	}
}

func TestCacheRejectsCorruptAndMismatched(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyJSON(map[string]int{"k": 1})
	if err := c.Put(key, &fakeResult{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	path := c.path(key)
	// Truncated file reads as a miss.
	if err := os.WriteFile(path, []byte(`{"config":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out fakeResult
	if c.Get(key, &out) {
		t.Fatal("hit on corrupt entry")
	}
	// An entry whose embedded config doesn't match the key (hash
	// collision or hand-edited file) reads as a miss.
	if err := os.WriteFile(path, []byte(`{"config":{"k":2},"result":{"name":"evil"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Get(key, &out) {
		t.Fatal("hit on mismatched config")
	}
}

func TestRunWithCache(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var sims atomic.Int32
	mk := func() []Job[fakeResult] {
		jobs := make([]Job[fakeResult], 8)
		for i := range jobs {
			i := i
			jobs[i] = Job[fakeResult]{
				Key:    KeyJSON(map[string]int{"cell": i}),
				CostNS: 100,
				Run: func() (fakeResult, error) {
					sims.Add(1)
					return fakeResult{Name: fmt.Sprintf("c%d", i), Score: float64(i)}, nil
				},
			}
		}
		return jobs
	}
	cold, err := Run(Options{Jobs: 4, Cache: c}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if sims.Load() != 8 {
		t.Fatalf("cold run simulated %d", sims.Load())
	}
	p := NewProgress(nil, nil)
	warm, err := Run(Options{Jobs: 4, Cache: c, Progress: p}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if sims.Load() != 8 {
		t.Fatalf("warm run re-simulated: %d total", sims.Load())
	}
	for i := range warm {
		if warm[i].Source != CacheHit || warm[i].Value != cold[i].Value {
			t.Fatalf("warm[%d] = %+v, cold %+v", i, warm[i], cold[i])
		}
	}
	done, simulated, hits, skipped := p.Counts()
	if done != 8 || simulated != 0 || hits != 8 || skipped != 0 {
		t.Fatalf("counts = %d/%d/%d/%d", done, simulated, hits, skipped)
	}
	if !strings.Contains(p.Summary(), "0 simulated") {
		t.Fatalf("summary %q", p.Summary())
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Begin(1, 1, 1)
	p.Skip(1)
	p.Done("x", Simulated, 1, 0, "")
	if p.Summary() != "" {
		t.Fatal("nil summary")
	}
	d, s, h, k := p.Counts()
	if d+s+h+k != 0 {
		t.Fatal("nil counts")
	}
}

func TestProgressLines(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, nil)
	p.Begin(2, 2000, 1)
	p.Done("a", Simulated, 1000, 1, "a: 5 ops")
	p.Done("b", CacheHit, 1000, 0, "")
	out := sb.String()
	if !strings.Contains(out, "[1/2] a: 5 ops") || !strings.Contains(out, "[2/2] b: cached") {
		t.Fatalf("progress output:\n%s", out)
	}
}
