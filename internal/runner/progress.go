package runner

import (
	"fmt"
	"io"
	"sync"
	"time"

	"goptm/internal/obs"
)

// Progress tracks a sweep's per-cell completion for stderr reporting
// and, optionally, an obs counter track (obs.TrackSweepCells) so the
// sweep's pace can be inspected in a Perfetto trace alongside the
// simulation's own lanes.
//
// The ETA estimate uses the completed-cell virtual-to-wall ratio:
// every job declares its virtual cost up front (warmup + measurement
// window), simulated jobs report the wall time they actually took, and
// the remaining wall time is remaining-virtual-ns × (wall-per-virtual)
// ÷ workers. Cache hits and skipped cells retire their virtual cost
// for free, which is exactly how they shorten the estimate.
//
// A nil *Progress is valid and silent, like a nil obs recorder. One
// Progress may span several sweeps (ptmbench -all): Begin accumulates
// totals rather than resetting.
type Progress struct {
	w   io.Writer     // per-cell lines and ETA; nil = silent
	rec *obs.Recorder // optional counter track; nil = off

	mu        sync.Mutex
	start     time.Time
	workers   int
	total     int   // owned cells across all Begin calls
	totalCost int64 // virtual ns across owned cells
	done      int
	doneCost  int64 // virtual ns retired (simulated + cached)
	simulated int
	hits      int
	skipped   int
	simWall   time.Duration // wall time spent simulating
	simCost   int64         // virtual ns of simulated cells only
}

// NewProgress builds a reporter writing per-cell lines to w (nil for
// silent) and counter samples to rec (nil for none).
func NewProgress(w io.Writer, rec *obs.Recorder) *Progress {
	return &Progress{w: w, rec: rec}
}

// Begin announces a sweep of owned cells totalling costNS virtual ns,
// run by workers workers. Repeated calls accumulate.
func (p *Progress) Begin(owned int, costNS int64, workers int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.total += owned
	p.totalCost += costNS
	if workers > p.workers {
		p.workers = workers
	}
}

// Skip records cells excluded by sharding.
func (p *Progress) Skip(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.skipped += n
	p.mu.Unlock()
}

// Done records one completed cell. src tells whether it was simulated
// or served from the cache; costNS is the cell's declared virtual
// cost, wall the host time a simulation took (zero for hits), and
// detail an optional human line (throughput and friends) to print
// after the [done/total] prefix.
func (p *Progress) Done(label string, src Source, costNS int64, wall time.Duration, detail string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.doneCost += costNS
	switch src {
	case CacheHit:
		p.hits++
	default:
		p.simulated++
		p.simWall += wall
		p.simCost += costNS
	}
	line := detail
	if line == "" {
		line = fmt.Sprintf("%s: %s", label, src)
	}
	out := fmt.Sprintf("  [%*d/%d] %s%s\n", digits(p.total), p.done, p.total, line, p.etaLocked())
	done, start, w, rec := p.done, p.start, p.w, p.rec
	p.mu.Unlock()

	if w != nil {
		fmt.Fprint(w, out)
	}
	// The counter lane is wall-clock-based: the sweep is host work, not
	// simulated time.
	rec.CountShared(obs.TrackSweepCells, time.Since(start).Nanoseconds(), float64(done))
}

// etaLocked renders the ETA suffix, or "" before any simulated cell
// has established a virtual-to-wall ratio. Caller holds p.mu.
func (p *Progress) etaLocked() string {
	if p.done >= p.total || p.simCost == 0 || p.workers == 0 {
		return ""
	}
	ratio := float64(p.simWall) / float64(p.simCost) // wall ns per virtual ns
	rem := time.Duration(float64(p.totalCost-p.doneCost) * ratio / float64(p.workers))
	return fmt.Sprintf("   (ETA %s)", rem.Round(time.Second))
}

// Counts reports completed, simulated, cache-hit, and skipped cells.
func (p *Progress) Counts() (done, simulated, hits, skipped int) {
	if p == nil {
		return 0, 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done, p.simulated, p.hits, p.skipped
}

// Summary renders the one-line sweep outcome the CLIs print (and the
// CI cache job greps for its "0 simulated" assertion).
func (p *Progress) Summary() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("%d cells: %d simulated, %d cached, %d skipped in %s",
		p.done, p.simulated, p.hits, p.skipped, time.Since(p.start).Round(10*time.Millisecond))
}

// digits reports the print width of n, for aligned [done/total].
func digits(n int) int {
	w := 1
	for n >= 10 {
		n /= 10
		w++
	}
	return w
}
