package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Cache is a content-addressed store of experiment results. An entry
// lives at <dir>/<sha256-of-canonical-config-JSON>.json and holds both
// the config that produced it and the result, so entries are
// self-describing and a digest collision or a truncated file reads as
// a miss, never as a wrong result.
//
// The config JSON is the cache key: any field that can change the
// measurement — including the simulator-version stamp the harness
// embeds (see harness.SimVersion) — must be part of it. Results must
// round-trip through encoding/json exactly; the harness Result type
// is built to (see stats.Histogram's UnmarshalJSON).
//
// A Cache is safe for concurrent use by the worker pool and, thanks
// to the write-temp-then-rename store path, also tolerant of multiple
// processes sharing one directory (the CI shard jobs do).
type Cache struct {
	dir                  string
	hits, misses, stores atomic.Int64
}

// cacheEntry is the on-disk envelope.
type cacheEntry struct {
	Config json.RawMessage `json:"config"`
	Result json.RawMessage `json:"result"`
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir reports the cache directory.
func (c *Cache) Dir() string { return c.dir }

// KeyJSON renders v as the canonical config JSON used for content
// addressing. encoding/json emits struct fields in declaration order,
// so a fixed key struct yields stable bytes.
func KeyJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Key structs are plain data; a marshal failure is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("runner: unmarshalable cache key: %v", err))
	}
	return b
}

// path maps a config key to its content-addressed file.
func (c *Cache) path(keyJSON []byte) string {
	sum := sha256.Sum256(keyJSON)
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get looks up the result for keyJSON and decodes it into out (a
// pointer). It reports whether a valid entry was found; any unreadable,
// corrupt, or mismatching entry counts as a miss.
func (c *Cache) Get(keyJSON []byte, out any) bool {
	if c == nil {
		return false
	}
	data, err := os.ReadFile(c.path(keyJSON))
	if err != nil {
		c.misses.Add(1)
		return false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || !bytes.Equal(e.Config, keyJSON) {
		c.misses.Add(1)
		return false
	}
	if json.Unmarshal(e.Result, out) != nil {
		c.misses.Add(1)
		return false
	}
	c.hits.Add(1)
	return true
}

// Put stores result (a pointer, so custom marshalers apply) under
// keyJSON. The write goes to a temp file first and is renamed into
// place, so concurrent readers and writers never observe a torn entry.
func (c *Cache) Put(keyJSON []byte, result any) error {
	if c == nil {
		return nil
	}
	res, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	data, err := json.Marshal(cacheEntry{Config: keyJSON, Result: res})
	if err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	dst := c.path(keyJSON)
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache put: %w", err)
	}
	c.stores.Add(1)
	return nil
}

// Invalidate removes every entry (the -cache-invalidate flag).
func (c *Cache) Invalidate() error {
	if c == nil {
		return nil
	}
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := os.Remove(n); err != nil {
			return fmt.Errorf("runner: invalidate: %w", err)
		}
	}
	return nil
}

// Len reports the number of entries on disk.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	names, _ := filepath.Glob(filepath.Join(c.dir, "*.json"))
	return len(names)
}

// Stats reports cumulative lookup hits, misses, and stores.
func (c *Cache) Stats() (hits, misses, stores int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.stores.Load()
}
