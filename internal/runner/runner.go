// Package runner is the parallel experiment engine: it schedules the
// independent cells of a sweep (one cell = one self-contained
// discrete-event simulation in virtual time) across a bounded worker
// pool, optionally serves and stores results through a
// content-addressed cache, splits work across CI machines by shard,
// and reports per-cell progress with an ETA derived from the
// completed cells' virtual-to-wall ratio.
//
// Determinism is the load-bearing property. Because every cell owns
// its whole machine — virtual-time engine, memory system, RNG seeds —
// and the harness runs cells under the lockstep scheduler
// (simtime.NewLockstepEngine), a cell's result is a pure function of
// its configuration. The pool therefore reassembles results in job
// order and produces output byte-identical to a serial run at any
// worker count, and the cache can substitute a stored result for a
// simulation without changing a single output byte.
//
// The package is generic over the result type: the harness runs panel
// cells (harness.Result) and Table III rows through the same engine.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Source says how a job's result was obtained.
type Source int

// Job outcomes: simulated fresh, served from the result cache, or
// skipped because another shard owns it.
const (
	Simulated Source = iota
	CacheHit
	Skipped
)

// String names the source for progress lines.
func (s Source) String() string {
	switch s {
	case CacheHit:
		return "cached"
	case Skipped:
		return "skipped"
	default:
		return "simulated"
	}
}

// Job is one schedulable cell of a sweep.
type Job[T any] struct {
	// Label identifies the cell in progress output.
	Label string
	// Key is the canonical config JSON for content addressing (see
	// Cache). nil marks the job uncacheable.
	Key []byte
	// CostNS is the job's a-priori virtual duration (warmup +
	// measurement window), the unit of the ETA estimate.
	CostNS int64
	// Run performs the simulation. It must be self-contained: the pool
	// calls it from an arbitrary goroutine, concurrently with other
	// jobs.
	Run func() (T, error)
	// Detail, if non-nil, renders the completed result as the progress
	// line body (throughput, hit rate, ...).
	Detail func(T) string
}

// Outcome is one job's result and how it was obtained. For a Skipped
// job, Value is the zero T.
type Outcome[T any] struct {
	Value  T
	Source Source
}

// Options configures one Run call.
type Options struct {
	// Jobs bounds the worker pool; <= 0 selects runtime.GOMAXPROCS(0).
	// 1 is the serial path.
	Jobs int
	// Shard restricts execution to every Count-th job (zero value: run
	// everything).
	Shard Shard
	// Cache, when non-nil, serves jobs with a Key from the store and
	// saves fresh results back.
	Cache *Cache
	// Progress, when non-nil, receives per-cell completion reports.
	Progress *Progress
}

// Run executes the jobs across the pool and returns their outcomes in
// job order — the caller reassembles tables without caring which
// worker finished when. On error it stops scheduling new jobs and
// returns the first error in job order (deterministic, like the
// serial path's fail-fast).
func Run[T any](opts Options, jobs []Job[T]) ([]Outcome[T], error) {
	workers := opts.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	owned, ownedCost := 0, int64(0)
	for i := range jobs {
		if opts.Shard.Owns(i) {
			owned++
			ownedCost += jobs[i].CostNS
		}
	}
	opts.Progress.Begin(owned, ownedCost, workers)
	opts.Progress.Skip(len(jobs) - owned)

	outs := make([]Outcome[T], len(jobs))
	errs := make([]error, len(jobs))
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outs[i], errs[i] = runOne(opts, &jobs[i])
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range jobs {
		if !opts.Shard.Owns(i) {
			outs[i] = Outcome[T]{Source: Skipped}
			continue
		}
		if failed.Load() {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return outs, err
		}
	}
	return outs, nil
}

// runOne resolves one owned job: cache lookup, simulation, store.
func runOne[T any](opts Options, j *Job[T]) (Outcome[T], error) {
	cacheable := opts.Cache != nil && j.Key != nil
	if cacheable {
		var v T
		if opts.Cache.Get(j.Key, &v) {
			opts.Progress.Done(j.Label, CacheHit, j.CostNS, 0, detail(j, v))
			return Outcome[T]{Value: v, Source: CacheHit}, nil
		}
	}
	t0 := time.Now()
	v, err := j.Run()
	if err != nil {
		return Outcome[T]{}, err
	}
	if cacheable {
		if err := opts.Cache.Put(j.Key, &v); err != nil {
			return Outcome[T]{}, err
		}
	}
	opts.Progress.Done(j.Label, Simulated, j.CostNS, time.Since(t0), detail(j, v))
	return Outcome[T]{Value: v, Source: Simulated}, nil
}

func detail[T any](j *Job[T], v T) string {
	if j.Detail == nil {
		return ""
	}
	return j.Detail(v)
}
