package runner

import "fmt"

// Shard names one slice of a sweep for splitting across CI machines:
// shard Index of Count owns every job whose index ≡ Index (mod Count).
// Round-robin assignment balances the shards even when a sweep's
// expensive cells cluster (high thread counts sit at the end of each
// series). The zero value owns everything.
type Shard struct {
	Index int // 0-based
	Count int // total shards; <= 1 disables sharding
}

// Owns reports whether job i belongs to this shard.
func (s Shard) Owns(i int) bool {
	return s.Count <= 1 || i%s.Count == s.Index
}

// ParseShard parses the CLI form "i/n" with 1-based i, e.g. "2/3" for
// the second of three shards. The empty string is the run-everything
// zero value.
func ParseShard(spec string) (Shard, error) {
	if spec == "" {
		return Shard{}, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil {
		return Shard{}, fmt.Errorf("runner: shard %q: want \"i/n\"", spec)
	}
	if n < 1 || i < 1 || i > n {
		return Shard{}, fmt.Errorf("runner: shard %q: need 1 <= i <= n", spec)
	}
	return Shard{Index: i - 1, Count: n}, nil
}

// String renders the shard in CLI form ("" for the zero value).
func (s Shard) String() string {
	if s.Count <= 1 {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index+1, s.Count)
}
