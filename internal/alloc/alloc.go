// Package alloc implements a Makalu-style recoverable allocator for
// the persistent heap (Bhandari et al., OOPSLA'16 — the allocator the
// paper's experiments use).
//
// Design, simplified to the features the reproduction needs:
//
//   - Every block carries a one-word header (size in words, including
//     the header, plus an allocated flag). Headers are written with a
//     clwb so that the post-crash heap can be parsed.
//   - Runtime allocation uses volatile power-of-two free lists plus a
//     persistent bump frontier. The free lists are an optimization
//     only: recovery never trusts them.
//   - A fixed array of persistent root slots anchors the application's
//     data structures.
//   - Recovery performs a conservative mark-and-sweep from the roots
//     (Makalu's offline GC): any payload word that equals the payload
//     address of a parsed block is treated as a pointer. Unreachable
//     blocks — including blocks leaked by transactions that aborted or
//     died mid-flight — are swept back onto the free lists.
package alloc

import (
	"fmt"
	"sync"

	"goptm/internal/membus"
	"goptm/internal/memdev"
)

// Heap header word offsets (from the heap base).
const (
	offMagic    = 0
	offFrontier = 1
	offEnd      = 2
	offRoots    = 8 // root slots start here, one word each
)

const magic = 0x4D414B41 // "MAKA"

// MinBlockWords is the smallest block (header + 7 payload words).
const MinBlockWords = 8

// maxClass is the largest size-class block (2^maxClassLog words).
const maxClassLog = 16

const (
	flagAllocated = 1
	headerShift   = 8
)

// Heap is the allocator state. The persistent part lives in the
// simulated device; free lists are volatile. Safe for concurrent use.
type Heap struct {
	bus   *membus.Bus
	base  memdev.Addr
	words uint64
	slots int

	mu        sync.Mutex
	free      [maxClassLog + 1][]memdev.Addr // per-class free block addresses
	frontier  memdev.Addr                    // volatile mirror of offFrontier
	end       memdev.Addr
	allocated int64 // live block count, for stats
}

func header(size uint64, allocated bool) uint64 {
	h := size << headerShift
	if allocated {
		h |= flagAllocated
	}
	return h
}

func headerSize(h uint64) uint64 { return h >> headerShift }
func headerAlloc(h uint64) bool  { return h&flagAllocated != 0 }
func classFor(words uint64) uint64 {
	c := uint64(MinBlockWords)
	for c < words {
		c <<= 1
	}
	return c
}

func classLog(size uint64) int {
	l := 0
	for s := uint64(1); s < size; s <<= 1 {
		l++
	}
	return l
}

// Format initializes a fresh heap occupying words words at base, with
// rootSlots persistent root slots, and returns the handle. ctx is
// charged for the formatting stores.
func Format(ctx *membus.Context, base memdev.Addr, words uint64, rootSlots int) (*Heap, error) {
	if words < 64 {
		return nil, fmt.Errorf("alloc: heap of %d words is too small", words)
	}
	if rootSlots < 1 || uint64(rootSlots) > words/2 {
		return nil, fmt.Errorf("alloc: invalid root slot count %d", rootSlots)
	}
	h := &Heap{bus: ctx.Bus(), base: base, words: words, slots: rootSlots}
	blocksStart := h.blocksStart()
	ctx.Store(base+offMagic, magic)
	ctx.Store(base+offFrontier, uint64(blocksStart))
	ctx.Store(base+offEnd, uint64(base)+words)
	for s := 0; s < rootSlots; s++ {
		ctx.Store(base+offRoots+memdev.Addr(s), 0)
	}
	ctx.CLWB(base)
	ctx.SFence()
	h.frontier = blocksStart
	h.end = base + memdev.Addr(words)
	return h, nil
}

// Attach opens an existing heap at base (after a crash and recovery of
// the media image). It parses the persistent words and rebuilds the
// volatile free lists with a conservative mark-and-sweep from the
// roots. It returns the heap and the number of blocks swept free.
func Attach(ctx *membus.Context, base memdev.Addr, words uint64, rootSlots int) (*Heap, int, error) {
	if got := ctx.Load(base + offMagic); got != magic {
		return nil, 0, fmt.Errorf("alloc: bad heap magic %#x at %#x", got, uint64(base))
	}
	h := &Heap{bus: ctx.Bus(), base: base, words: words, slots: rootSlots}
	h.frontier = memdev.Addr(ctx.Load(base + offFrontier))
	h.end = memdev.Addr(ctx.Load(base + offEnd))
	if h.end != base+memdev.Addr(words) {
		return nil, 0, fmt.Errorf("alloc: heap end mismatch: stored %#x, expected %#x", uint64(h.end), uint64(base)+words)
	}
	swept := h.recoverLocked(ctx)
	return h, swept, nil
}

// blocksStart returns the first block address: headers + root slots,
// rounded up to a line boundary.
func (h *Heap) blocksStart() memdev.Addr {
	s := uint64(h.base) + offRoots + uint64(h.slots)
	s = (s + memdev.WordsPerLine - 1) &^ uint64(memdev.WordsPerLine-1)
	return memdev.Addr(s)
}

// Alloc returns the payload address of a block with at least words
// payload words. It panics if the heap is exhausted — the simulated
// experiments size their heaps; exhaustion is a configuration bug.
func (h *Heap) Alloc(ctx *membus.Context, words uint64) memdev.Addr {
	if words == 0 {
		words = 1
	}
	size := classFor(words + 1) // +1 header
	cl := classLog(size)
	h.mu.Lock()
	if cl <= maxClassLog && len(h.free[cl]) > 0 {
		a := h.free[cl][len(h.free[cl])-1]
		h.free[cl] = h.free[cl][:len(h.free[cl])-1]
		h.allocated++
		h.mu.Unlock()
		ctx.Store(a, header(size, true))
		ctx.CLWB(a)
		return a + 1
	}
	a := h.frontier
	if uint64(a)+size > uint64(h.end) {
		h.mu.Unlock()
		panic(fmt.Sprintf("alloc: heap exhausted (frontier %#x + %d > end %#x)", uint64(a), size, uint64(h.end)))
	}
	h.frontier = a + memdev.Addr(size)
	h.allocated++
	newFront := uint64(h.frontier)
	h.mu.Unlock()
	ctx.Store(a, header(size, true))
	ctx.CLWB(a)
	// Publish the frontier so a post-crash parse stops at the right
	// place. The header clwb and this store are ordered by the
	// caller's next fence; recovery tolerates a stale frontier by
	// validating headers.
	ctx.Store(h.base+offFrontier, newFront)
	ctx.CLWB(h.base + offFrontier)
	return a + 1
}

// Free returns the block whose payload starts at payload to the free
// lists. The header is marked free persistently so a crash between
// Free and reuse cannot resurrect the block as allocated-but-
// unreachable garbage (recovery would sweep it anyway).
func (h *Heap) Free(ctx *membus.Context, payload memdev.Addr) {
	a := payload - 1
	hw := ctx.Load(a)
	if !headerAlloc(hw) {
		panic(fmt.Sprintf("alloc: double free of block at %#x", uint64(a)))
	}
	size := headerSize(hw)
	ctx.Store(a, header(size, false))
	ctx.CLWB(a)
	cl := classLog(size)
	h.mu.Lock()
	if cl <= maxClassLog {
		h.free[cl] = append(h.free[cl], a)
	}
	h.allocated--
	h.mu.Unlock()
}

// SetRoot durably stores a root pointer in slot.
func (h *Heap) SetRoot(ctx *membus.Context, slot int, a memdev.Addr) {
	if slot < 0 || slot >= h.slots {
		panic(fmt.Sprintf("alloc: root slot %d out of range", slot))
	}
	ctx.Store(h.base+offRoots+memdev.Addr(slot), uint64(a))
	ctx.CLWB(h.base + offRoots + memdev.Addr(slot))
	ctx.SFence()
}

// Root reads the root pointer in slot.
func (h *Heap) Root(ctx *membus.Context, slot int) memdev.Addr {
	if slot < 0 || slot >= h.slots {
		panic(fmt.Sprintf("alloc: root slot %d out of range", slot))
	}
	return memdev.Addr(ctx.Load(h.base + offRoots + memdev.Addr(slot)))
}

// LiveBlocks reports the current number of allocated blocks.
func (h *Heap) LiveBlocks() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocated
}

// Base returns the heap's base address.
func (h *Heap) Base() memdev.Addr { return h.base }

// recoverLocked parses the heap, marks reachable blocks from the
// roots (conservatively), and sweeps the rest onto the free lists.
// Returns the number of blocks swept.
func (h *Heap) recoverLocked(ctx *membus.Context) int {
	type block struct {
		addr memdev.Addr
		size uint64
	}
	// Parse the block area. Stop at the first invalid header: that is
	// the true frontier (the stored frontier may lag by one block if
	// the crash hit between header flush and frontier flush).
	var blocks []block
	payloadToBlock := make(map[memdev.Addr]int)
	a := h.blocksStart()
	for a < h.end {
		hw := ctx.Load(a)
		size := headerSize(hw)
		if size < MinBlockWords || uint64(a)+size > uint64(h.end) || size&(size-1) != 0 {
			break
		}
		payloadToBlock[a+1] = len(blocks)
		blocks = append(blocks, block{addr: a, size: size})
		a += memdev.Addr(size)
	}
	h.frontier = a

	// Conservative mark from the roots.
	marked := make([]bool, len(blocks))
	var stack []int
	for s := 0; s < h.slots; s++ {
		v := memdev.Addr(ctx.Load(h.base + offRoots + memdev.Addr(s)))
		if bi, ok := payloadToBlock[v]; ok {
			if !marked[bi] {
				marked[bi] = true
				stack = append(stack, bi)
			}
		}
	}
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := blocks[bi]
		for w := b.addr + 1; w < b.addr+memdev.Addr(b.size); w++ {
			v := memdev.Addr(ctx.Load(w))
			if ti, ok := payloadToBlock[v]; ok && !marked[ti] {
				marked[ti] = true
				stack = append(stack, ti)
			}
		}
	}

	// Sweep.
	h.mu.Lock()
	for i := range h.free {
		h.free[i] = nil
	}
	swept := 0
	live := int64(0)
	for i, b := range blocks {
		if marked[i] {
			live++
			if !headerAlloc(ctx.Load(b.addr)) {
				// Reachable but marked free (crash between unlink and
				// free-list push): resurrect as allocated.
				ctx.Store(b.addr, header(b.size, true))
				ctx.CLWB(b.addr)
			}
			continue
		}
		swept++
		ctx.Store(b.addr, header(b.size, false))
		ctx.CLWB(b.addr)
		cl := classLog(b.size)
		if cl <= maxClassLog {
			h.free[cl] = append(h.free[cl], b.addr)
		}
	}
	h.allocated = live
	// Re-publish a precise frontier.
	ctx.Store(h.base+offFrontier, uint64(h.frontier))
	ctx.CLWB(h.base + offFrontier)
	ctx.SFence()
	h.mu.Unlock()
	return swept
}
