package alloc

import (
	"testing"
	"testing/quick"

	"goptm/internal/durability"
	"goptm/internal/membus"
	"goptm/internal/memdev"
)

func setup(t testing.TB) (*membus.Bus, *membus.Context, *Heap) {
	t.Helper()
	b := membus.MustNew(membus.Config{
		Threads: 1,
		Domain:  durability.ADR,
		Dev:     memdev.Config{NVMWords: 1 << 16, DRAMWords: 1 << 12},
	})
	ctx := b.NewContext(0)
	h, err := Format(ctx, 0, 1<<16, 8)
	if err != nil {
		t.Fatal(err)
	}
	return b, ctx, h
}

func TestFormatValidation(t *testing.T) {
	b := membus.MustNew(membus.Config{
		Threads: 1, Domain: durability.ADR,
		Dev: memdev.Config{NVMWords: 1 << 12, DRAMWords: 64},
	})
	ctx := b.NewContext(0)
	defer ctx.Detach()
	if _, err := Format(ctx, 0, 32, 4); err == nil {
		t.Error("tiny heap accepted")
	}
	if _, err := Format(ctx, 0, 4096, 0); err == nil {
		t.Error("zero root slots accepted")
	}
}

func TestAllocDistinctAndAligned(t *testing.T) {
	_, ctx, h := setup(t)
	defer ctx.Detach()
	seen := make(map[memdev.Addr]bool)
	for i := 0; i < 100; i++ {
		a := h.Alloc(ctx, 10)
		if seen[a] {
			t.Fatalf("duplicate allocation %#x", uint64(a))
		}
		seen[a] = true
	}
	if h.LiveBlocks() != 100 {
		t.Fatalf("live = %d, want 100", h.LiveBlocks())
	}
}

func TestAllocZeroWords(t *testing.T) {
	_, ctx, h := setup(t)
	defer ctx.Detach()
	a := h.Alloc(ctx, 0)
	ctx.Store(a, 42)
	if ctx.Load(a) != 42 {
		t.Fatal("zero-word alloc unusable")
	}
}

func TestFreeAndReuse(t *testing.T) {
	_, ctx, h := setup(t)
	defer ctx.Detach()
	a := h.Alloc(ctx, 10)
	h.Free(ctx, a)
	if h.LiveBlocks() != 0 {
		t.Fatal("free did not decrement live count")
	}
	b := h.Alloc(ctx, 10)
	if b != a {
		t.Fatalf("same-class alloc did not reuse freed block: %#x vs %#x", uint64(b), uint64(a))
	}
}

func TestDoubleFreePanics(t *testing.T) {
	_, ctx, h := setup(t)
	defer ctx.Detach()
	a := h.Alloc(ctx, 4)
	h.Free(ctx, a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	h.Free(ctx, a)
}

func TestHeapExhaustionPanics(t *testing.T) {
	b := membus.MustNew(membus.Config{
		Threads: 1, Domain: durability.ADR,
		Dev: memdev.Config{NVMWords: 1 << 12, DRAMWords: 64},
	})
	ctx := b.NewContext(0)
	defer ctx.Detach()
	h, err := Format(ctx, 0, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustion did not panic")
		}
	}()
	for i := 0; i < 10000; i++ {
		h.Alloc(ctx, 64)
	}
}

func TestRoots(t *testing.T) {
	_, ctx, h := setup(t)
	defer ctx.Detach()
	a := h.Alloc(ctx, 8)
	h.SetRoot(ctx, 3, a)
	if h.Root(ctx, 3) != a {
		t.Fatal("root round trip failed")
	}
	if h.Root(ctx, 0) != 0 {
		t.Fatal("unset root not zero")
	}
}

func TestRootSlotRangePanics(t *testing.T) {
	_, ctx, h := setup(t)
	defer ctx.Detach()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range root accepted")
		}
	}()
	h.SetRoot(ctx, 8, 0)
}

func TestSizeClasses(t *testing.T) {
	if classFor(7) != 8 || classFor(8) != 8 || classFor(9) != 16 {
		t.Fatal("classFor wrong")
	}
	if classLog(8) != 3 || classLog(1024) != 10 {
		t.Fatal("classLog wrong")
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(size uint32, al bool) bool {
		s := uint64(size)
		h := header(s, al)
		return headerSize(h) == s && headerAlloc(h) == al
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAttachAfterCleanShutdown(t *testing.T) {
	bus, ctx, h := setup(t)
	a := h.Alloc(ctx, 16)
	ctx.Store(a, 1234)
	ctx.CLWB(a)
	ctx.SFence()
	h.SetRoot(ctx, 0, a)
	vt := ctx.Now()
	ctx.Detach()
	bus.Quiesce()
	bus.Crash(vt)

	ctx2 := bus.NewContext(0)
	defer ctx2.Detach()
	h2, swept, err := Attach(ctx2, 0, 1<<16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if swept != 0 {
		t.Fatalf("clean heap swept %d blocks", swept)
	}
	r := h2.Root(ctx2, 0)
	if r != a {
		t.Fatalf("root lost: %#x vs %#x", uint64(r), uint64(a))
	}
	if ctx2.Load(r) != 1234 {
		t.Fatal("payload lost")
	}
	if h2.LiveBlocks() != 1 {
		t.Fatalf("live = %d, want 1", h2.LiveBlocks())
	}
}

func TestRecoverySweepsLeakedBlocks(t *testing.T) {
	// Blocks allocated but never linked to a root are garbage after a
	// crash (e.g. a transaction died before publishing them). The
	// conservative GC must sweep them and allow their reuse.
	bus, ctx, h := setup(t)
	rooted := h.Alloc(ctx, 8)
	h.SetRoot(ctx, 0, rooted)
	for i := 0; i < 5; i++ {
		h.Alloc(ctx, 8) // leaked
	}
	vt := ctx.Now()
	ctx.Detach()
	bus.Quiesce()
	bus.Crash(vt)

	ctx2 := bus.NewContext(0)
	defer ctx2.Detach()
	h2, swept, err := Attach(ctx2, 0, 1<<16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if swept != 5 {
		t.Fatalf("swept = %d, want 5", swept)
	}
	if h2.LiveBlocks() != 1 {
		t.Fatalf("live = %d, want 1", h2.LiveBlocks())
	}
}

func TestRecoveryFollowsPointerChains(t *testing.T) {
	// root -> A -> B -> C; D unreachable.
	bus, ctx, h := setup(t)
	cBlk := h.Alloc(ctx, 8)
	bBlk := h.Alloc(ctx, 8)
	aBlk := h.Alloc(ctx, 8)
	h.Alloc(ctx, 8) // D: unreachable
	ctx.Store(aBlk, uint64(bBlk))
	ctx.Store(bBlk, uint64(cBlk))
	for _, a := range []memdev.Addr{aBlk, bBlk, cBlk} {
		ctx.CLWB(a)
	}
	ctx.SFence()
	h.SetRoot(ctx, 0, aBlk)
	vt := ctx.Now()
	ctx.Detach()
	bus.Quiesce()
	bus.Crash(vt)

	ctx2 := bus.NewContext(0)
	defer ctx2.Detach()
	h2, swept, err := Attach(ctx2, 0, 1<<16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if swept != 1 {
		t.Fatalf("swept = %d, want 1 (only D)", swept)
	}
	if h2.LiveBlocks() != 3 {
		t.Fatalf("live = %d, want 3", h2.LiveBlocks())
	}
	// The chain must still read correctly.
	a := h2.Root(ctx2, 0)
	b := memdev.Addr(ctx2.Load(a))
	c := memdev.Addr(ctx2.Load(b))
	if b != bBlk || c != cBlk {
		t.Fatal("pointer chain corrupted by recovery")
	}
}

func TestAttachRejectsBadMagic(t *testing.T) {
	bus := membus.MustNew(membus.Config{
		Threads: 1, Domain: durability.ADR,
		Dev: memdev.Config{NVMWords: 1 << 12, DRAMWords: 64},
	})
	ctx := bus.NewContext(0)
	defer ctx.Detach()
	if _, _, err := Attach(ctx, 0, 4096, 4); err == nil {
		t.Fatal("attach to unformatted heap succeeded")
	}
}

func TestReuseAfterRecoverySweep(t *testing.T) {
	bus, ctx, h := setup(t)
	for i := 0; i < 10; i++ {
		h.Alloc(ctx, 8) // all leaked
	}
	vt := ctx.Now()
	ctx.Detach()
	bus.Quiesce()
	bus.Crash(vt)

	ctx2 := bus.NewContext(0)
	defer ctx2.Detach()
	h2, _, err := Attach(ctx2, 0, 1<<16, 8)
	if err != nil {
		t.Fatal(err)
	}
	front := h2.frontier
	// New allocations should come from the swept free lists, not
	// advance the frontier.
	for i := 0; i < 10; i++ {
		h2.Alloc(ctx2, 8)
	}
	if h2.frontier != front {
		t.Fatal("recovered free blocks not reused")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	b := membus.MustNew(membus.Config{
		Threads: 4,
		Domain:  durability.ADR,
		Dev:     memdev.Config{NVMWords: 1 << 18, DRAMWords: 1 << 12},
	})
	ctx0 := b.NewContext(0)
	h, err := Format(ctx0, 0, 1<<18, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx0.Detach()
	ctxs := make([]*membus.Context, 4)
	for i := range ctxs {
		ctxs[i] = b.NewContext(i)
	}
	done := make(chan map[memdev.Addr]bool, 4)
	for g := 0; g < 4; g++ {
		go func(ctx *membus.Context) {
			defer ctx.Detach()
			mine := make(map[memdev.Addr]bool)
			var live []memdev.Addr
			for i := 0; i < 500; i++ {
				if len(live) > 0 && i%3 == 0 {
					a := live[len(live)-1]
					live = live[:len(live)-1]
					h.Free(ctx, a)
					delete(mine, a)
				} else {
					a := h.Alloc(ctx, 8)
					if mine[a] {
						// Duplicate within own set: allocator reused a
						// block we still hold.
						done <- nil
						return
					}
					mine[a] = true
					live = append(live, a)
				}
			}
			done <- mine
		}(ctxs[g])
	}
	all := make(map[memdev.Addr]int)
	for g := 0; g < 4; g++ {
		m := <-done
		if m == nil {
			t.Fatal("allocator handed out a block still held by the same goroutine")
		}
		for a := range m {
			all[a]++
		}
	}
	for a, n := range all {
		if n > 1 {
			t.Fatalf("block %#x live in %d goroutines at once", uint64(a), n)
		}
	}
}

func TestLargeAllocationBeyondClasses(t *testing.T) {
	// Blocks larger than the largest size class bypass the free lists
	// but must still allocate, free, and survive recovery parsing.
	b := membus.MustNew(membus.Config{
		Threads: 1, Domain: durability.ADR,
		Dev: memdev.Config{NVMWords: 1 << 20, DRAMWords: 64},
	})
	ctx := b.NewContext(0)
	h, err := Format(ctx, 0, 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	big := h.Alloc(ctx, 1<<17) // 128K words: above maxClassLog
	ctx.Store(big, 42)
	ctx.Store(big+(1<<17)-1, 43)
	ctx.CLWB(big)
	ctx.CLWB(big + (1 << 17) - 1)
	ctx.SFence()
	if ctx.Load(big) != 42 || ctx.Load(big+(1<<17)-1) != 43 {
		t.Fatal("large block unusable")
	}
	h.SetRoot(ctx, 0, big)
	small := h.Alloc(ctx, 8)
	ctx.Store(small, 1)
	ctx.CLWB(small)
	ctx.SFence()
	vt := ctx.Now()
	ctx.Detach()
	b.Quiesce()
	b.Crash(vt)

	ctx2 := b.NewContext(0)
	defer ctx2.Detach()
	h2, swept, err := Attach(ctx2, 0, 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if swept != 1 { // the small leaked block
		t.Fatalf("swept = %d, want 1", swept)
	}
	if h2.Root(ctx2, 0) != big {
		t.Fatal("large rooted block lost")
	}
	if ctx2.Load(big) != 42 {
		t.Fatal("large block payload lost")
	}
	// Free of an oversized block must not panic even though it cannot
	// enter a size-class list.
	h2.Free(ctx2, big)
}

// crashAttach crashes the bus with an adversarial fault plan and
// re-attaches the heap, returning the fresh context, heap, and sweep
// count. ctx is consumed.
func crashAttach(t *testing.T, b *membus.Bus, ctx *membus.Context, faults []memdev.LineFault) (*membus.Context, *Heap, int) {
	t.Helper()
	vt := ctx.Now()
	ctx.Detach()
	b.CrashWith(vt, faults)
	ctx2 := b.NewContext(0)
	h2, swept, err := Attach(ctx2, 0, 1<<16, 8)
	if err != nil {
		t.Fatalf("attach after crash: %v", err)
	}
	return ctx2, h2, swept
}

func TestRecoveryCrashMidAllocHeaderLost(t *testing.T) {
	// Crash in the middle of Alloc: the new block's header clwb was
	// issued but never fenced, and the WPQ loses it. Recovery's parse
	// must stop at the vanished header (treating it as the true
	// frontier, even though the stored frontier points past it) and
	// hand the space out again.
	b, ctx, h := setup(t)
	a1 := h.Alloc(ctx, 10)
	h.SetRoot(ctx, 0, a1) // fences a1's header too
	a2 := h.Alloc(ctx, 10)

	ctx2, h2, swept := crashAttach(t, b, ctx, []memdev.LineFault{
		{Line: memdev.LineOf(a2 - 1), Kind: memdev.FaultDrop},
	})
	defer ctx2.Detach()
	if swept != 0 {
		t.Fatalf("swept = %d, want 0 (a2 should have vanished, not been swept)", swept)
	}
	if h2.LiveBlocks() != 1 {
		t.Fatalf("live = %d, want 1", h2.LiveBlocks())
	}
	if got := h2.Alloc(ctx2, 10); got != a2 {
		t.Fatalf("frontier not rewound: re-alloc gave %#x, want %#x", uint64(got), uint64(a2))
	}
}

func TestRecoveryStaleFrontierSweepsLeak(t *testing.T) {
	// The dual: the header became durable but the frontier publish was
	// lost. The parse must walk past the stored frontier, find the
	// orphaned (unreachable) block, and sweep it back onto the free
	// lists.
	b, ctx, h := setup(t)
	a1 := h.Alloc(ctx, 10)
	h.SetRoot(ctx, 0, a1)
	a2 := h.Alloc(ctx, 10)

	ctx2, h2, swept := crashAttach(t, b, ctx, []memdev.LineFault{
		{Line: memdev.LineOf(0 + offFrontier), Kind: memdev.FaultDrop},
	})
	defer ctx2.Detach()
	if swept != 1 {
		t.Fatalf("swept = %d, want 1 (the orphaned block)", swept)
	}
	if got := h2.Alloc(ctx2, 10); got != a2 {
		t.Fatalf("swept block not reused: got %#x, want %#x", uint64(got), uint64(a2))
	}
}

func TestRecoveryMidFreeResurrectsReachable(t *testing.T) {
	// Crash between Free's persistent header update and the caller
	// unlinking the block: the header says free, the roots still reach
	// it. Recovery must resurrect it as allocated — a reachable block
	// on the free lists would be handed out twice.
	b, ctx, h := setup(t)
	a1 := h.Alloc(ctx, 10)
	h.SetRoot(ctx, 0, a1)
	h.Free(ctx, a1)

	ctx2, h2, swept := crashAttach(t, b, ctx, nil)
	defer ctx2.Detach()
	if swept != 0 {
		t.Fatalf("swept = %d, want 0", swept)
	}
	if h2.LiveBlocks() != 1 {
		t.Fatalf("live = %d, want 1 (reachable block must be resurrected)", h2.LiveBlocks())
	}
	if fresh := h2.Alloc(ctx2, 10); fresh == a1 {
		t.Fatal("resurrected block handed out again")
	}
}

func TestRecoveryMidFreeHeaderLostStillSwept(t *testing.T) {
	// Crash during Free of an unreachable block with the header update
	// lost in the WPQ: media still says allocated, but nothing reaches
	// the block, so the conservative sweep reclaims it and the
	// free-list rebuild makes it allocatable again.
	b, ctx, h := setup(t)
	a1 := h.Alloc(ctx, 10)
	h.SetRoot(ctx, 0, a1)
	h.SetRoot(ctx, 0, 0) // unlink, durably
	h.Free(ctx, a1)

	ctx2, h2, swept := crashAttach(t, b, ctx, []memdev.LineFault{
		{Line: memdev.LineOf(a1 - 1), Kind: memdev.FaultDrop},
	})
	defer ctx2.Detach()
	if swept != 1 {
		t.Fatalf("swept = %d, want 1", swept)
	}
	if h2.LiveBlocks() != 0 {
		t.Fatalf("live = %d, want 0", h2.LiveBlocks())
	}
	if got := h2.Alloc(ctx2, 10); got != a1 {
		t.Fatalf("swept block not reused: got %#x, want %#x", uint64(got), uint64(a1))
	}
}

func TestRecoveryFreeListSplitCrash(t *testing.T) {
	// Carve several same-class blocks out of the frontier, free the
	// middle one, and crash while its space is being recycled into a
	// new allocation (header rewrite in flight, lost by the WPQ). The
	// parse must still see the free block (its old header is durable)
	// and re-offer it; neighbors keep their identity.
	b, ctx, h := setup(t)
	a1 := h.Alloc(ctx, 10)
	a2 := h.Alloc(ctx, 10)
	a3 := h.Alloc(ctx, 10)
	h.SetRoot(ctx, 0, a1)
	h.SetRoot(ctx, 1, a3)
	h.Free(ctx, a2)
	ctx.SFence() // the free marking is durable
	if re := h.Alloc(ctx, 10); re != a2 {
		t.Fatalf("free list did not recycle %#x (got %#x)", uint64(a2), uint64(re))
	}
	// The recycling Alloc's header rewrite is still unfenced: lose it.
	ctx2, h2, swept := crashAttach(t, b, ctx, []memdev.LineFault{
		{Line: memdev.LineOf(a2 - 1), Kind: memdev.FaultDrop},
	})
	defer ctx2.Detach()
	if swept != 1 {
		t.Fatalf("swept = %d, want 1 (the recycled-then-lost block)", swept)
	}
	if h2.LiveBlocks() != 2 {
		t.Fatalf("live = %d, want 2", h2.LiveBlocks())
	}
	if got := h2.Alloc(ctx2, 10); got != a2 {
		t.Fatalf("block not re-offered after crash: got %#x, want %#x", uint64(got), uint64(a2))
	}
	if h2.Root(ctx2, 0) != a1 || h2.Root(ctx2, 1) != a3 {
		t.Fatal("neighbor roots corrupted")
	}
}
