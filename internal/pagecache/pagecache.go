// Package pagecache models the Memory-Mode directory (DIR): a set of
// DRAM frames caching 4 KB pages of NVM, managed by the memory
// controller. It is the enabling mechanism for the paper's proposed
// PDRAM durability domain (all NVM pages cacheable) and PDRAM-Lite
// (only transaction-log pages cacheable).
//
// The cache is a *timing and residency* model: page contents stay in
// the memdev device (the simulated store is write-through), while this
// package decides whether an access runs at DRAM or NVM speed and
// charges page fetch / dirty-writeback transfers against the media's
// ports. Crash durability of dirty cached pages is provided by the
// durability domain (PDRAM variants flush DRAM on failure), so the
// residency model does not need to shuttle bytes.
//
// Two controller optimizations the paper names (§II-A: "the memory
// controller is responsible for implementing optimizations, such as
// prefetching and asynchronous writeback") are modeled and can be
// toggled for ablation:
//
//   - sequential prefetch: a miss on page P also schedules a fetch of
//     P+1 into a free-or-clean frame; the prefetched page becomes
//     usable when its transfer completes, without charging the
//     requesting thread.
//   - asynchronous writeback: when more than half the frames are
//     dirty, misses trigger background cleaning of the oldest dirty
//     frame, so later evictions find clean victims and skip the
//     synchronous writeback stall.
package pagecache

import (
	"container/list"
	"sync"

	"goptm/internal/wpq"
)

// WordsPerPage and LinesPerPage describe the 4 KB page geometry.
const (
	WordsPerPage = 512
	LinesPerPage = 64
	PageShift    = 9 // word address -> page number
)

// PageOf returns the NVM page number containing word address a.
func PageOf(wordAddr uint64) uint64 { return wordAddr >> PageShift }

// Config sizes the cache.
type Config struct {
	Frames int // number of DRAM frames (4 KB each)
	// NoPrefetch disables the sequential next-page prefetch.
	NoPrefetch bool
	// NoAsyncWriteback disables background cleaning of dirty frames.
	NoAsyncWriteback bool
	// Lockstep promises external serialization (the lockstep engine's
	// floor), eliding the directory mutex on every access.
	Lockstep bool
}

// Stats counts cache activity.
type Stats struct {
	Hits        int64
	Misses      int64
	Evictions   int64 // frames reclaimed (demand fills and prefetch claims)
	Writebacks  int64 // synchronous, on eviction of a dirty victim
	Prefetches  int64
	PrefetchHit int64 // hits on pages brought in by the prefetcher
	AsyncCleans int64
}

type frame struct {
	page       uint64
	dirty      bool
	prefetched bool  // brought in by the prefetcher, not yet demanded
	readyVT    int64 // transfer completion; accesses before this wait
	elem       *list.Element
}

// Cache is the directory-managed DRAM page cache. Safe for concurrent
// use unless built with Config.Lockstep, in which case the lockstep
// floor provides the serialization the elided mutex would have.
type Cache struct {
	mu     sync.Mutex
	serial bool
	cfg    Config
	frames int
	dir    map[uint64]*frame
	lru    *list.List // front = most recent; values are *frame
	ctl    *wpq.Controller
	stats  Stats
}

// New builds a cache of cfg.Frames frames backed by controller ctl.
func New(cfg Config, ctl *wpq.Controller) *Cache {
	if cfg.Frames <= 0 {
		panic("pagecache: need at least one frame")
	}
	return &Cache{
		cfg:    cfg,
		serial: cfg.Lockstep,
		frames: cfg.Frames,
		dir:    make(map[uint64]*frame, cfg.Frames),
		lru:    list.New(),
		ctl:    ctl,
	}
}

// Frames reports the cache capacity in frames.
func (c *Cache) Frames() int { return c.frames }

// Access looks up page at virtual time now on behalf of thread tid.
// On a hit it returns (t, true) where t is when the data is usable
// (later than now only for an in-flight prefetch). On a miss it
// evicts the LRU frame (charging a page writeback if dirty), charges
// the page fetch, and returns the fetch completion time and false.
func (c *Cache) Access(now int64, tid int, page uint64, write bool) (done int64, hit bool) {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	if f, ok := c.dir[page]; ok {
		c.lru.MoveToFront(f.elem)
		if write {
			f.dirty = true
		}
		if f.prefetched {
			f.prefetched = false
			c.stats.PrefetchHit++
		}
		c.stats.Hits++
		if f.readyVT > now {
			return f.readyVT, true // in-flight transfer: wait for it
		}
		return now, true
	}
	c.stats.Misses++
	done = c.insertLocked(now, page, write)

	if !c.cfg.NoPrefetch {
		c.prefetchLocked(now, page+1)
	}
	if !c.cfg.NoAsyncWriteback {
		c.asyncCleanLocked(now)
	}
	return done, false
}

// insertLocked makes room for page and charges its fetch; returns the
// fetch completion time.
func (c *Cache) insertLocked(now int64, page uint64, write bool) int64 {
	start := now
	if c.lru.Len() >= c.frames {
		victim := c.lru.Back().Value.(*frame)
		c.lru.Remove(victim.elem)
		delete(c.dir, victim.page)
		c.stats.Evictions++
		if victim.dirty {
			c.stats.Writebacks++
			// The fetch cannot begin until the victim's writeback has
			// freed the frame.
			start = c.ctl.WriteNVMBulk(start, LinesPerPage)
		}
	}
	done := c.ctl.ReadNVMBulk(start, LinesPerPage)
	f := &frame{page: page, dirty: write, readyVT: done}
	f.elem = c.lru.PushFront(f)
	c.dir[page] = f
	return done
}

// prefetchLocked schedules a background fetch of page if it is absent
// and a frame can be claimed without a synchronous writeback (the
// prefetcher never stalls demand traffic behind a dirty victim).
func (c *Cache) prefetchLocked(now int64, page uint64) {
	if _, ok := c.dir[page]; ok {
		return
	}
	if c.lru.Len() >= c.frames {
		victim := c.lru.Back().Value.(*frame)
		if victim.dirty {
			return // would need a writeback; not worth it for a guess
		}
		c.lru.Remove(victim.elem)
		delete(c.dir, victim.page)
		c.stats.Evictions++
	}
	done := c.ctl.ReadNVMBulk(now, LinesPerPage)
	f := &frame{page: page, prefetched: true, readyVT: done}
	// Insert at the back: an unused prefetch is the first candidate to
	// go.
	f.elem = c.lru.PushBack(f)
	c.dir[page] = f
	c.stats.Prefetches++
}

// asyncCleanLocked writes back the oldest dirty frame in the
// background once more than half the frames are dirty.
func (c *Cache) asyncCleanLocked(now int64) {
	dirty := 0
	for _, f := range c.dir {
		if f.dirty {
			dirty++
		}
	}
	if dirty*2 <= c.frames {
		return
	}
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.dirty {
			f.dirty = false
			c.ctl.WriteNVMBulk(now, LinesPerPage)
			c.stats.AsyncCleans++
			return
		}
	}
}

// MarkDirty marks page dirty if it is resident, without charging any
// transfer time. Used for bookkeeping stores that hit in the CPU
// caches above the directory.
func (c *Cache) MarkDirty(page uint64) {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	if f, ok := c.dir[page]; ok {
		f.dirty = true
	}
}

// Contains reports whether page is resident (for tests and recovery).
func (c *Cache) Contains(page uint64) bool {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	_, ok := c.dir[page]
	return ok
}

// DirtyPages returns the set of resident dirty pages; the crash path
// uses it to account for the reserve power a flush would need.
func (c *Cache) DirtyPages() []uint64 {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	var out []uint64
	for p, f := range c.dir {
		if f.dirty {
			out = append(out, p)
		}
	}
	return out
}

// Resident reports the current frame occupancy: resident pages and,
// of those, how many are dirty (observability counter tracks).
func (c *Cache) Resident() (resident, dirty int) {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	resident = len(c.dir)
	for _, f := range c.dir {
		if f.dirty {
			dirty++
		}
	}
	return resident, dirty
}

// Stats returns cumulative counters.
func (c *Cache) Stats() Stats {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.stats
}

// Drop empties the cache (after a crash: DRAM contents are gone).
func (c *Cache) Drop() {
	if !c.serial {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.dir = make(map[uint64]*frame, c.frames)
	c.lru.Init()
}
