package pagecache

import (
	"sync"
	"testing"

	"goptm/internal/wpq"
)

func ctl() *wpq.Controller {
	return wpq.New(wpq.Config{
		Depth:          64,
		NVMWritePorts:  2,
		NVMReadPorts:   4,
		DRAMWritePorts: 2,
		DRAMReadPorts:  2,
		NVMWriteHold:   100,
		NVMReadHold:    200,
		DRAMWriteHold:  50,
		DRAMReadHold:   40,
		StreamDiscount: 4,
		Threads:        8,
	})
}

// plain disables the controller optimizations so the base replacement
// behaviour can be tested in isolation.
func plain(frames int) Config {
	return Config{Frames: frames, NoPrefetch: true, NoAsyncWriteback: true}
}

func TestMissThenHit(t *testing.T) {
	c := New(plain(4), ctl())
	done, hit := c.Access(0, 0, 7, false)
	if hit {
		t.Fatal("cold access hit")
	}
	// Fetch = 64 lines * 200 / 4 = 3200.
	if done != 3200 {
		t.Fatalf("fetch done = %d, want 3200", done)
	}
	done, hit = c.Access(done, 0, 7, false)
	if !hit || done != 3200 {
		t.Fatalf("warm access: done=%d hit=%v", done, hit)
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(511) != 0 || PageOf(512) != 1 {
		t.Fatal("PageOf geometry wrong")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(plain(2), ctl())
	c.Access(0, 0, 1, false)
	c.Access(0, 0, 2, false)
	c.Access(0, 0, 1, false) // refresh 1
	c.Access(0, 0, 3, false) // must evict 2
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestDirtyWritebackCharged(t *testing.T) {
	c := New(plain(1), ctl())
	c.Access(0, 0, 1, true) // dirty
	// Next miss: writeback 64*100/4=1600, then fetch 3200 starting at
	// 1600 -> done 4800.
	done, hit := c.Access(0, 0, 2, false)
	if hit {
		t.Fatal("unexpected hit")
	}
	if done != 4800 {
		t.Fatalf("miss with dirty victim done = %d, want 4800", done)
	}
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", s.Writebacks)
	}
}

func TestCleanVictimNoWriteback(t *testing.T) {
	c := New(plain(1), ctl())
	c.Access(0, 0, 1, false) // clean
	done, _ := c.Access(0, 0, 2, false)
	if done != 3200 {
		t.Fatalf("miss with clean victim done = %d, want 3200", done)
	}
	if s := c.Stats(); s.Writebacks != 0 {
		t.Fatalf("writebacks = %d, want 0", s.Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := New(plain(2), ctl())
	c.Access(0, 0, 5, false) // clean fill
	c.Access(0, 0, 5, true)  // write hit
	dirty := c.DirtyPages()
	if len(dirty) != 1 || dirty[0] != 5 {
		t.Fatalf("dirty pages = %v, want [5]", dirty)
	}
}

func TestDrop(t *testing.T) {
	c := New(plain(2), ctl())
	c.Access(0, 0, 1, true)
	c.Drop()
	if c.Contains(1) {
		t.Fatal("page survived Drop")
	}
	if len(c.DirtyPages()) != 0 {
		t.Fatal("dirty set survived Drop")
	}
}

func TestStatsCount(t *testing.T) {
	c := New(plain(2), ctl())
	c.Access(0, 0, 1, false)
	c.Access(0, 0, 1, false)
	c.Access(0, 0, 2, false)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroFramesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero frames accepted")
		}
	}()
	New(plain(0), ctl())
}

func TestConcurrentAccess(t *testing.T) {
	c := New(plain(32), ctl())
	var wg sync.WaitGroup
	for tid := 0; tid < 8; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Access(int64(i), tid, uint64(i%64), i%2 == 0)
			}
		}(tid)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 8*2000 {
		t.Fatalf("lost accesses: %d", s.Hits+s.Misses)
	}
	// Residency never exceeds capacity.
	resident := 0
	for p := uint64(0); p < 64; p++ {
		if c.Contains(p) {
			resident++
		}
	}
	if resident > 32 {
		t.Fatalf("resident pages %d exceed capacity 32", resident)
	}
}

func TestWorkingSetFitBehaviour(t *testing.T) {
	// The Fig-8 mechanism in miniature: a working set within capacity
	// converges to ~100% hits; beyond capacity it keeps missing.
	fit := New(plain(16), ctl())
	for pass := 0; pass < 4; pass++ {
		for p := uint64(0); p < 16; p++ {
			fit.Access(0, 0, p, true)
		}
	}
	s := fit.Stats()
	if s.Misses != 16 {
		t.Fatalf("fitting working set missed %d times, want 16 cold misses", s.Misses)
	}

	over := New(plain(8), ctl())
	for pass := 0; pass < 4; pass++ {
		for p := uint64(0); p < 16; p++ {
			over.Access(0, 0, p, true)
		}
	}
	so := over.Stats()
	if so.Hits != 0 {
		t.Fatalf("LRU-thrashing working set recorded %d hits, want 0", so.Hits)
	}
}

func TestPrefetchNextPage(t *testing.T) {
	c := New(Config{Frames: 8, NoAsyncWriteback: true}, ctl())
	done, hit := c.Access(0, 0, 10, false)
	if hit {
		t.Fatal("cold miss expected")
	}
	s := c.Stats()
	if s.Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1 (page 11)", s.Prefetches)
	}
	if !c.Contains(11) {
		t.Fatal("page 11 not prefetched")
	}
	// The sequential next access is a hit, possibly waiting for the
	// in-flight transfer, but never a full demand miss.
	d2, hit := c.Access(done, 0, 11, false)
	if !hit {
		t.Fatal("prefetched page missed")
	}
	if d2 > done+3200 {
		t.Fatalf("prefetch hit waited %d, longer than a demand fetch", d2-done)
	}
	if got := c.Stats().PrefetchHit; got != 1 {
		t.Fatalf("prefetch hits = %d, want 1", got)
	}
}

func TestPrefetchNeverEvictsDirty(t *testing.T) {
	c := New(Config{Frames: 2, NoAsyncWriteback: true}, ctl())
	c.Access(0, 0, 1, true) // dirty
	c.Access(0, 0, 5, true) // dirty; miss also tries to prefetch 6
	if c.Contains(6) {
		t.Fatal("prefetcher displaced a dirty frame")
	}
}

func TestSequentialScanFasterWithPrefetch(t *testing.T) {
	scan := func(cfg Config) int64 {
		c := New(cfg, ctl())
		now := int64(0)
		for p := uint64(0); p < 32; p++ {
			done, _ := c.Access(now, 0, p, false)
			now = done
		}
		return now
	}
	with := scan(Config{Frames: 64, NoAsyncWriteback: true})
	without := scan(Config{Frames: 64, NoPrefetch: true, NoAsyncWriteback: true})
	if with >= without {
		t.Fatalf("sequential scan with prefetch (%d ns) not faster than without (%d ns)", with, without)
	}
}

func TestAsyncWritebackCleansDirtyFrames(t *testing.T) {
	c := New(Config{Frames: 4, NoPrefetch: true}, ctl())
	// Dirty three of four frames; the next miss should trigger a
	// background clean.
	c.Access(0, 0, 1, true)
	c.Access(0, 0, 2, true)
	c.Access(0, 0, 3, true)
	c.Access(0, 0, 4, false) // miss: dirty fraction > 1/2 -> clean
	s := c.Stats()
	if s.AsyncCleans == 0 {
		t.Fatal("no background cleaning under dirty pressure")
	}
	if got := len(c.DirtyPages()); got >= 3 {
		t.Fatalf("dirty pages = %d, want fewer after cleaning", got)
	}
}

func TestAsyncWritebackReducesEvictionStalls(t *testing.T) {
	// Thrash a tiny cache with dirty pages: with background cleaning,
	// more evictions find clean victims, so the scan finishes sooner.
	thrash := func(cfg Config) int64 {
		c := New(cfg, ctl())
		now := int64(0)
		for i := 0; i < 64; i++ {
			done, _ := c.Access(now, 0, uint64(i%16)*7, true)
			now = done
		}
		return now
	}
	with := thrash(Config{Frames: 4, NoPrefetch: true})
	without := thrash(Config{Frames: 4, NoPrefetch: true, NoAsyncWriteback: true})
	if with >= without {
		t.Fatalf("thrash with async writeback (%d ns) not faster than without (%d ns)", with, without)
	}
}
