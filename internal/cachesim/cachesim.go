// Package cachesim implements a set-associative cache hierarchy
// simulator: per-thread L1 and L2 caches and a shared, sharded L3.
//
// The simulator answers two questions for every access: at which level
// did the line hit (which determines latency, charged by membus), and
// did the access evict a dirty line from the L3 (which generates
// writeback traffic toward the memory controller, the key pressure
// point for Optane scalability).
//
// Dirtiness is tracked at the shared L3 only; the private levels act
// as latency filters. Cross-core invalidation traffic is not modeled —
// the workloads under study are dominated by memory latency and
// write-pending-queue behaviour, not coherence misses (see DESIGN.md).
package cachesim

import (
	"fmt"
	"sync"
)

// Hit levels returned by Access.
const (
	HitL1  = 1
	HitL2  = 2
	HitL3  = 3
	Miss   = 4 // serviced by memory (DRAM or NVM media)
	shards = 64
)

// Config sizes the hierarchy. Lines counts are total lines per cache
// (capacity / 64 B); Ways is the set associativity. Lines must be a
// multiple of Ways.
type Config struct {
	Threads int
	L1Lines int
	L1Ways  int
	L2Lines int
	L2Ways  int
	L3Lines int
	L3Ways  int
	// Lockstep promises external serialization (the lockstep engine's
	// floor: one simulated thread executes at any instant), so the L3
	// shard locks and the stats lock are elided. Leave false for
	// concurrent-mode engines.
	Lockstep bool
}

// DefaultConfig returns a hierarchy scaled to the simulated machine:
// 32 KB L1 and 256 KB L2 per thread, and an L3 sized by l3Lines
// (experiments vary the L3 to study working-set effects).
func DefaultConfig(threads, l3Lines int) Config {
	return Config{
		Threads: threads,
		L1Lines: 512, L1Ways: 8,
		L2Lines: 4096, L2Ways: 16,
		L3Lines: l3Lines, L3Ways: 16,
	}
}

type entry struct {
	tag   uint64
	stamp uint64
	valid bool
	dirty bool // meaningful in L3 only
}

// bank is one set-associative cache array with LRU replacement.
type bank struct {
	sets  int
	ways  int
	mask  uint64  // sets-1 when sets is a power of two, else 0
	ents  []entry // sets*ways
	clock uint64
}

func newBank(lines, ways int) *bank {
	if lines <= 0 || ways <= 0 || lines%ways != 0 {
		panic(fmt.Sprintf("cachesim: invalid bank geometry lines=%d ways=%d", lines, ways))
	}
	b := &bank{sets: lines / ways, ways: ways, ents: make([]entry, lines)}
	if b.sets&(b.sets-1) == 0 {
		// Every default geometry has power-of-two sets; masking there
		// keeps a 64-bit divide out of the per-access path.
		b.mask = uint64(b.sets - 1)
	}
	return b
}

// set maps a tag to its set index.
func (b *bank) set(tag uint64) int {
	if b.mask != 0 {
		return int(tag & b.mask)
	}
	return int(tag % uint64(b.sets))
}

// lookup probes for tag; on hit it refreshes LRU and returns the slot.
func (b *bank) lookup(tag uint64) (int, bool) {
	base := b.set(tag) * b.ways
	for i := base; i < base+b.ways; i++ {
		if b.ents[i].valid && b.ents[i].tag == tag {
			b.clock++
			b.ents[i].stamp = b.clock
			return i, true
		}
	}
	return -1, false
}

// insert fills tag, evicting the LRU way. It returns the victim entry
// if a valid line was displaced.
func (b *bank) insert(tag uint64) (victim entry, evicted bool) {
	base := b.set(tag) * b.ways
	slot := base
	for i := base; i < base+b.ways; i++ {
		if !b.ents[i].valid {
			slot = i
			break
		}
		if b.ents[i].stamp < b.ents[slot].stamp {
			slot = i
		}
	}
	victim, evicted = b.ents[slot], b.ents[slot].valid
	b.clock++
	b.ents[slot] = entry{tag: tag, stamp: b.clock, valid: true}
	return victim, evicted
}

// Result describes one access.
type Result struct {
	Level         int    // HitL1 .. Miss
	WritebackLine uint64 // dirty L3 victim, if any
	HasWriteback  bool
}

// Hierarchy is the full cache simulator. Access is safe for concurrent
// use provided each tid is driven by a single goroutine; a hierarchy
// built with Config.Lockstep relies on the lockstep floor instead of
// its own locks.
type Hierarchy struct {
	cfg    Config
	serial bool
	l1     []*bank // per thread
	l2     []*bank // per thread
	l3     [shards]struct {
		mu sync.Mutex
		b  *bank
	}

	statMu sync.Mutex
	hits   [5]int64 // indexed by level
	evicts Evictions
}

// Evictions is the hierarchy's cumulative eviction breakdown. Private
// levels are latency filters, so their evictions are silent; L3
// evictions split clean vs dirty, dirty ones being the implicit
// writebacks that reach the memory controller.
type Evictions struct {
	L1      int64
	L2      int64
	L3Clean int64
	L3Dirty int64
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	if cfg.Threads <= 0 {
		panic("cachesim: need at least one thread")
	}
	h := &Hierarchy{cfg: cfg, serial: cfg.Lockstep}
	h.l1 = make([]*bank, cfg.Threads)
	h.l2 = make([]*bank, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		h.l1[i] = newBank(cfg.L1Lines, cfg.L1Ways)
		h.l2[i] = newBank(cfg.L2Lines, cfg.L2Ways)
	}
	per := cfg.L3Lines / shards
	if per < cfg.L3Ways {
		per = cfg.L3Ways
	}
	per = per / cfg.L3Ways * cfg.L3Ways
	for i := range h.l3 {
		h.l3[i].b = newBank(per, cfg.L3Ways)
	}
	return h
}

func (h *Hierarchy) shard(line uint64) int {
	// Multiplicative hash so consecutive lines spread across shards.
	return int((line * 0x9E3779B97F4A7C15) >> 58)
}

// Access simulates a load (write=false) or store (write=true) of line
// by thread tid. Stores use write-allocate: a store miss fetches the
// line first (the RFO read is charged by the caller via Level).
func (h *Hierarchy) Access(tid int, line uint64, write bool) Result {
	var res Result
	var ev Evictions
	l1, l2 := h.l1[tid], h.l2[tid]
	switch {
	case hitIn(l1, line):
		res.Level = HitL1
	case hitIn(l2, line):
		res.Level = HitL2
		if _, e := l1.insert(line); e {
			ev.L1++
		}
	default:
		res, ev = h.accessL3(line, write)
		if _, e := l2.insert(line); e {
			ev.L2++
		}
		if _, e := l1.insert(line); e {
			ev.L1++
		}
	}
	if write && (res.Level == HitL1 || res.Level == HitL2) {
		// Stores that hit a private level must still mark the shared
		// copy dirty so that a later L3 eviction generates a
		// writeback; dirtiness is tracked at L3 only (see package doc).
		h.dirtyL3(line)
	}
	if h.serial {
		h.hits[res.Level]++
		h.addEvictions(ev)
	} else {
		h.statMu.Lock()
		h.hits[res.Level]++
		h.addEvictions(ev)
		h.statMu.Unlock()
	}
	return res
}

// addEvictions folds one access's eviction events into the cumulative
// breakdown. Caller holds statMu in concurrent mode.
func (h *Hierarchy) addEvictions(ev Evictions) {
	h.evicts.L1 += ev.L1
	h.evicts.L2 += ev.L2
	h.evicts.L3Clean += ev.L3Clean
	h.evicts.L3Dirty += ev.L3Dirty
}

func hitIn(b *bank, line uint64) bool {
	_, ok := b.lookup(line)
	return ok
}

// accessL3 probes the shared L3, filling on miss. The returned
// Evictions records the fill's victim, split clean/dirty (evictions
// from dirtyL3's re-insert path are not counted, matching the timing
// model, which generates no writeback traffic there either).
func (h *Hierarchy) accessL3(line uint64, write bool) (Result, Evictions) {
	s := &h.l3[h.shard(line)]
	if !h.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if i, ok := s.b.lookup(line); ok {
		if write {
			s.b.ents[i].dirty = true
		}
		return Result{Level: HitL3}, Evictions{}
	}
	victim, evicted := s.b.insert(line)
	res := Result{Level: Miss}
	var ev Evictions
	if evicted {
		if victim.dirty {
			ev.L3Dirty++
			res.WritebackLine = victim.tag
			res.HasWriteback = true
		} else {
			ev.L3Clean++
		}
	}
	if write {
		i, _ := s.b.lookup(line)
		s.b.ents[i].dirty = true
	}
	return res, ev
}

// dirtyL3 marks line dirty in L3 if present; if the line is absent
// (displaced from L3 while still in a private level) it is re-inserted
// dirty, modeling the writeback path.
func (h *Hierarchy) dirtyL3(line uint64) {
	s := &h.l3[h.shard(line)]
	if !h.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if i, ok := s.b.lookup(line); ok {
		s.b.ents[i].dirty = true
	} else {
		s.b.insert(line)
		if i, ok := s.b.lookup(line); ok {
			s.b.ents[i].dirty = true
		}
	}
}

// Clean clears the dirty bit of line in L3, modeling a clwb (which
// writes the line back without invalidating it). It reports whether
// the line was present and dirty.
func (h *Hierarchy) Clean(line uint64) bool {
	s := &h.l3[h.shard(line)]
	if !h.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if i, ok := s.b.lookup(line); ok && s.b.ents[i].dirty {
		s.b.ents[i].dirty = false
		return true
	}
	return false
}

// DirtyLineCount reports how many lines are currently dirty in the
// shared L3 — the state an eADR flush-on-failure must write back.
func (h *Hierarchy) DirtyLineCount() int {
	n := 0
	for i := range h.l3 {
		s := &h.l3[i]
		if !h.serial {
			s.mu.Lock()
		}
		for _, e := range s.b.ents {
			if e.valid && e.dirty {
				n++
			}
		}
		if !h.serial {
			s.mu.Unlock()
		}
	}
	return n
}

// Lines reports the total L3 capacity in lines (for worst-case
// reserve estimates).
func (h *Hierarchy) Lines() int {
	total := 0
	for i := range h.l3 {
		total += len(h.l3[i].b.ents)
	}
	return total
}

// HitCounts returns cumulative access counts by level (index 1..4).
func (h *Hierarchy) HitCounts() [5]int64 {
	if !h.serial {
		h.statMu.Lock()
		defer h.statMu.Unlock()
	}
	return h.hits
}

// EvictionCounts returns the cumulative eviction breakdown.
func (h *Hierarchy) EvictionCounts() Evictions {
	if !h.serial {
		h.statMu.Lock()
		defer h.statMu.Unlock()
	}
	return h.evicts
}

// HitRate reports the fraction of accesses served by some cache level
// (i.e. not by memory); 0 before any access.
func (h *Hierarchy) HitRate() float64 {
	if !h.serial {
		h.statMu.Lock()
		defer h.statMu.Unlock()
	}
	var total int64
	for _, c := range h.hits {
		total += c
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(h.hits[Miss])/float64(total)
}
