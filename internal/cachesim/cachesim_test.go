package cachesim

import (
	"sync"
	"testing"
)

func tiny(threads int) *Hierarchy {
	return New(Config{
		Threads: threads,
		L1Lines: 8, L1Ways: 2,
		L2Lines: 16, L2Ways: 2,
		L3Lines: 64 * shards, L3Ways: 4,
	})
}

func TestColdMissThenHits(t *testing.T) {
	h := tiny(1)
	if r := h.Access(0, 100, false); r.Level != Miss {
		t.Fatalf("cold access level = %d, want Miss", r.Level)
	}
	if r := h.Access(0, 100, false); r.Level != HitL1 {
		t.Fatalf("second access level = %d, want L1 hit", r.Level)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	h := tiny(1)
	// L1: 8 lines, 2-way, 4 sets. Lines k, k+4, k+8 map to one set;
	// touching three conflicting lines evicts the first from L1,
	// which should then hit in L2.
	h.Access(0, 0, false)
	h.Access(0, 4, false)
	h.Access(0, 8, false)
	if r := h.Access(0, 0, false); r.Level != HitL2 {
		t.Fatalf("level = %d, want L2 hit after L1 conflict eviction", r.Level)
	}
}

func TestSeparateThreadPrivateCaches(t *testing.T) {
	h := tiny(2)
	h.Access(0, 42, false)
	// Thread 1 never touched line 42: it must miss privately but hit
	// in the shared L3.
	if r := h.Access(1, 42, false); r.Level != HitL3 {
		t.Fatalf("level = %d, want L3 hit from sibling thread", r.Level)
	}
}

func TestDirtyEvictionProducesWriteback(t *testing.T) {
	// Use a minimal L3 so evictions are easy to force.
	h := New(Config{
		Threads: 1,
		L1Lines: 2, L1Ways: 1,
		L2Lines: 2, L2Ways: 1,
		L3Lines: shards, L3Ways: 1, // 1 way per shard
	})
	// Find two lines in the same L3 shard+set.
	target := uint64(1)
	conflict := uint64(0)
	found := false
	for c := uint64(2); c < 100000 && !found; c++ {
		if h.shard(c) == h.shard(target) {
			conflict = c
			found = true
		}
	}
	if !found {
		t.Fatal("could not find conflicting line")
	}
	h.Access(0, target, true) // dirty in L3
	r := h.Access(0, conflict, false)
	if !r.HasWriteback || r.WritebackLine != target {
		t.Fatalf("expected writeback of line %d, got %+v", target, r)
	}
}

func TestCleanSuppressesWriteback(t *testing.T) {
	h := New(Config{
		Threads: 1,
		L1Lines: 2, L1Ways: 1,
		L2Lines: 2, L2Ways: 1,
		L3Lines: shards, L3Ways: 1,
	})
	target := uint64(1)
	var conflict uint64
	for c := uint64(2); ; c++ {
		if h.shard(c) == h.shard(target) {
			conflict = c
			break
		}
	}
	h.Access(0, target, true)
	if !h.Clean(target) {
		t.Fatal("Clean did not find dirty line")
	}
	if h.Clean(target) {
		t.Fatal("Clean reported already-clean line as dirty")
	}
	if r := h.Access(0, conflict, false); r.HasWriteback {
		t.Fatalf("clean line still wrote back: %+v", r)
	}
}

func TestWriteHitInPrivateLevelStillDirtiesL3(t *testing.T) {
	h := tiny(1)
	h.Access(0, 7, false) // fill all levels, clean
	h.Access(0, 7, true)  // L1 write hit
	if !h.Clean(7) {
		t.Fatal("store that hit in L1 left L3 copy clean")
	}
}

func TestLRUOrder(t *testing.T) {
	b := newBank(4, 4) // one set, 4 ways
	for i := uint64(0); i < 4; i++ {
		b.insert(i * 4) // same set (tag % 1 == 0 set anyway)
	}
	b.lookup(0) // refresh line 0
	v, ev := b.insert(100)
	if !ev {
		t.Fatal("full set did not evict")
	}
	if v.tag == 0 {
		t.Fatal("LRU evicted the most recently used line")
	}
}

func TestHitCounts(t *testing.T) {
	h := tiny(1)
	h.Access(0, 1, false)
	h.Access(0, 1, false)
	h.Access(0, 1, false)
	c := h.HitCounts()
	if c[Miss] != 1 || c[HitL1] != 2 {
		t.Fatalf("counts = %v", c)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry accepted")
		}
	}()
	newBank(10, 3) // not divisible
}

func TestConcurrentAccessSafety(t *testing.T) {
	h := New(DefaultConfig(8, 4096))
	var wg sync.WaitGroup
	for tid := 0; tid < 8; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Access(tid, uint64(i%1024), i%3 == 0)
			}
		}(tid)
	}
	wg.Wait()
	c := h.HitCounts()
	var total int64
	for _, v := range c {
		total += v
	}
	if total != 8*5000 {
		t.Fatalf("lost accesses: %d of %d recorded", total, 8*5000)
	}
}

func TestCapacityEffect(t *testing.T) {
	// A working set larger than every level must keep missing; one
	// that fits in L3 must converge to L3-or-better hits.
	big := New(DefaultConfig(1, 1<<14)) // 1 MB L3
	small := uint64(256)                // lines: fits in L3, not L1/L2... (L2=4096)
	_ = small
	// Warm a 512-line working set (fits L1=512? exactly; use 2048 so it
	// fits L2+L3 but not L1).
	const ws = 2048
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < ws; i++ {
			big.Access(0, i, false)
		}
	}
	c := big.HitCounts()
	// After warmup the final pass should be nearly all hits.
	if c[Miss] > ws+ws/10 {
		t.Fatalf("warm working set still missing: %v", c)
	}

	huge := New(DefaultConfig(1, 1<<10))
	const wsBig = 1 << 16 // far exceeds L3
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < wsBig; i++ {
			huge.Access(0, i*7, false)
		}
	}
	ch := huge.HitCounts()
	if ch[Miss] < int64(wsBig) {
		t.Fatalf("oversized working set hit too often: %v", ch)
	}
}

func TestDirtyLineCountAndLines(t *testing.T) {
	h := tiny(1)
	if h.DirtyLineCount() != 0 {
		t.Fatal("fresh hierarchy dirty")
	}
	h.Access(0, 1, true)
	h.Access(0, 2, true)
	h.Access(0, 3, false)
	if got := h.DirtyLineCount(); got != 2 {
		t.Fatalf("dirty lines = %d, want 2", got)
	}
	h.Clean(1)
	if got := h.DirtyLineCount(); got != 1 {
		t.Fatalf("dirty lines after clean = %d, want 1", got)
	}
	if h.Lines() <= 0 {
		t.Fatal("Lines() not positive")
	}
}

func TestEvictionCounts(t *testing.T) {
	h := tiny(1)
	if ev := h.EvictionCounts(); ev != (Evictions{}) {
		t.Fatalf("fresh hierarchy evictions = %+v", ev)
	}
	// L1: 8 lines, 2-way, 4 sets. Three same-set lines force one L1
	// eviction (set 0: lines 0, 4, 8).
	h.Access(0, 0, false)
	h.Access(0, 4, false)
	h.Access(0, 8, false)
	if ev := h.EvictionCounts(); ev.L1 != 1 {
		t.Fatalf("L1 evictions = %d, want 1 (%+v)", ev.L1, ev)
	}
	// Flood a 1-way-per-shard L3 with clean then dirty lines: every
	// L3 eviction must land in exactly one of the clean/dirty counts
	// and dirty ones must appear once writes are in the mix.
	h2 := New(Config{
		Threads: 1,
		L1Lines: 2, L1Ways: 1,
		L2Lines: 2, L2Ways: 1,
		L3Lines: shards, L3Ways: 1,
	})
	for i := uint64(0); i < 64; i++ {
		h2.Access(0, i, i%2 == 0)
	}
	ev := h2.EvictionCounts()
	if ev.L3Clean+ev.L3Dirty == 0 {
		t.Fatalf("flooded 1-way L3 recorded no evictions: %+v", ev)
	}
	if ev.L3Dirty == 0 {
		t.Fatalf("write traffic produced no dirty L3 evictions: %+v", ev)
	}
}
