// Package durability defines the durability domains studied in the
// paper: which parts of the memory system survive a power failure, and
// consequently which persistence instructions (clwb / sfence) a PTM
// algorithm must issue.
//
// The domains form a spectrum of reserve power:
//
//	NoReserve  — only the NVM DIMMs are durable (deprecated; a store is
//	             durable only once the media has written it).
//	ADR        — the memory controller's write-pending queues (WPQ) are
//	             flushed on power failure; a clwb that has been accepted
//	             by the WPQ is durable. Programs must issue clwb+sfence.
//	EADR       — caches are flushed on power failure; a store is durable
//	             as soon as it executes. clwb/sfence are unnecessary.
//	PDRAM      — proposed: all of DRAM acts as a persistent, directory-
//	             managed cache of NVM pages (Memory-Mode mechanics plus
//	             battery). Durable like eADR, with DRAM-speed accesses
//	             while the working set fits in DRAM.
//	PDRAMLite  — proposed: a bounded set of DRAM pages (the redo logs)
//	             is persistent; all other NVM data behaves as in eADR.
package durability

import "fmt"

// Domain identifies a durability domain.
type Domain int

// The durability domains, ordered by increasing reserve power.
const (
	NoReserve Domain = iota
	ADR
	EADR
	PDRAM
	PDRAMLite
)

// String returns the conventional name of the domain.
func (d Domain) String() string {
	switch d {
	case NoReserve:
		return "NoReserve"
	case ADR:
		return "ADR"
	case EADR:
		return "eADR"
	case PDRAM:
		return "PDRAM"
	case PDRAMLite:
		return "PDRAM-Lite"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// All lists every supported domain, for table-driven tests and sweeps.
func All() []Domain {
	return []Domain{NoReserve, ADR, EADR, PDRAM, PDRAMLite}
}

// Parse maps a conventional domain name (as produced by String) back
// to the Domain, for CLI flags and replayable repro files.
func Parse(name string) (Domain, error) {
	for _, d := range All() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("durability: unknown domain %q", name)
}

// Valid reports whether d is a defined domain.
func (d Domain) Valid() bool {
	return d >= NoReserve && d <= PDRAMLite
}

// RequiresFlush reports whether software must issue clwb instructions
// for stores to become durable in this domain. In eADR and the PDRAM
// variants the reserve power flushes caches on failure, so explicit
// flushes are elided.
func (d Domain) RequiresFlush() bool {
	return d == NoReserve || d == ADR
}

// RequiresFence reports whether software must issue sfence to order
// durability points. Tracks RequiresFlush: fences order flushes, so
// eliding flushes elides fences.
func (d Domain) RequiresFence() bool {
	return d.RequiresFlush()
}

// CachePersists reports whether dirty lines still in the CPU caches
// survive a power failure.
func (d Domain) CachePersists() bool {
	return d == EADR || d == PDRAM || d == PDRAMLite
}

// WPQPersists reports whether lines accepted into the memory
// controller's write-pending queue survive a power failure.
func (d Domain) WPQPersists() bool {
	return d != NoReserve
}

// DRAMCachesNVM reports whether the domain routes NVM accesses through
// a directory-managed DRAM page cache (Memory-Mode mechanics).
func (d Domain) DRAMCachesNVM() bool {
	return d == PDRAM
}

// DRAMLogPersists reports whether DRAM pages holding transaction redo
// logs survive a power failure (the PDRAM-Lite design point; PDRAM
// trivially includes it because all DRAM-cached NVM pages persist).
func (d Domain) DRAMLogPersists() bool {
	return d == PDRAM || d == PDRAMLite
}
