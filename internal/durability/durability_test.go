package durability

import "testing"

func TestStringNames(t *testing.T) {
	want := map[Domain]string{
		NoReserve: "NoReserve",
		ADR:       "ADR",
		EADR:      "eADR",
		PDRAM:     "PDRAM",
		PDRAMLite: "PDRAM-Lite",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
	if Domain(99).String() != "Domain(99)" {
		t.Errorf("unknown domain String = %q", Domain(99).String())
	}
}

func TestAllCoversEveryDomain(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() has %d entries, want 5", len(all))
	}
	seen := map[Domain]bool{}
	for _, d := range all {
		if !d.Valid() {
			t.Errorf("All() contains invalid domain %v", d)
		}
		if seen[d] {
			t.Errorf("All() contains duplicate %v", d)
		}
		seen[d] = true
	}
}

func TestFlushFenceRules(t *testing.T) {
	// The paper's central software distinction: ADR (and the deprecated
	// NoReserve) need explicit flushes and fences; eADR and the PDRAM
	// variants elide them.
	for _, d := range []Domain{NoReserve, ADR} {
		if !d.RequiresFlush() || !d.RequiresFence() {
			t.Errorf("%v must require flush+fence", d)
		}
	}
	for _, d := range []Domain{EADR, PDRAM, PDRAMLite} {
		if d.RequiresFlush() || d.RequiresFence() {
			t.Errorf("%v must elide flush+fence", d)
		}
	}
}

func TestCrashPersistenceRules(t *testing.T) {
	if NoReserve.WPQPersists() {
		t.Error("NoReserve must lose the WPQ")
	}
	for _, d := range []Domain{ADR, EADR, PDRAM, PDRAMLite} {
		if !d.WPQPersists() {
			t.Errorf("%v must keep the WPQ", d)
		}
	}
	if ADR.CachePersists() || NoReserve.CachePersists() {
		t.Error("ADR/NoReserve must lose dirty cache lines")
	}
	for _, d := range []Domain{EADR, PDRAM, PDRAMLite} {
		if !d.CachePersists() {
			t.Errorf("%v must flush caches on failure", d)
		}
	}
}

func TestDRAMCachingRules(t *testing.T) {
	if !PDRAM.DRAMCachesNVM() {
		t.Error("PDRAM must route NVM through the DRAM page cache")
	}
	for _, d := range []Domain{NoReserve, ADR, EADR, PDRAMLite} {
		if d.DRAMCachesNVM() {
			t.Errorf("%v must not route all NVM through DRAM", d)
		}
	}
	if !PDRAM.DRAMLogPersists() || !PDRAMLite.DRAMLogPersists() {
		t.Error("PDRAM and PDRAM-Lite must persist DRAM-resident logs")
	}
	for _, d := range []Domain{NoReserve, ADR, EADR} {
		if d.DRAMLogPersists() {
			t.Errorf("%v must not persist DRAM-resident logs", d)
		}
	}
}

func TestValid(t *testing.T) {
	for _, d := range All() {
		if !d.Valid() {
			t.Errorf("%v should be valid", d)
		}
	}
	if Domain(-1).Valid() || Domain(5).Valid() {
		t.Error("out-of-range domains must be invalid")
	}
}
