// Package metrics is the PMWatch/ipmctl-analog counter subsystem of
// the simulated machine: a registry of device-event counters, a small
// media model that translates 64 B line traffic into 256 B XPLine
// media accesses through an XPBuffer LRU (the quantity behind read and
// write amplification on Optane DC), and a fixed-interval virtual-time
// sampler that turns a run into a plottable time series.
//
// The registry follows the same nil-safe discipline as obs.Recorder:
// every method is safe on a nil receiver and returns immediately, so
// the runtime instruments unconditionally and measurement paths simply
// leave the registry detached. Counters are a fixed array of atomics
// and the XPBuffers are fixed arrays, so an attached registry adds a
// handful of integer operations per event and never allocates on the
// operation path (the time series appends only on its sampling ticks,
// which fire on the commit path).
//
// Counting is pure accounting: no registry call ever advances virtual
// time, which is what keeps sweep output byte-identical whether
// counters are attached or not (pinned by the harness golden test).
package metrics

import (
	"sync"
	"sync/atomic"

	"goptm/internal/obs"
)

// Counter identifies one registry counter. The registry owns the
// counters that cut across components (transaction outcomes, log
// volume) and the media model's outputs; per-component counters
// (WPQ causes, cache evictions, orec CAS failures) live with their
// components and are assembled into a Snapshot by the machine.
type Counter int

// The registry counter namespace.
const (
	// Transaction outcomes (the single home of the PR-1 abort-reason
	// counters; core.AbortReason indexes the four abort counters as
	// CtrAbortLockConflict + Counter(reason)).
	CtrCommits Counter = iota
	CtrAborts
	CtrAbortLockConflict
	CtrAbortValidation
	CtrAbortCapacity
	CtrAbortExplicit
	CtrReadOnlyTxns

	// Log volume, accumulated at commit/rollback time: entries are the
	// write/undo-set records a transaction logged, bytes their durable
	// footprint (2 words per entry).
	CtrLogEntries
	CtrLogBytes

	// Media model outputs (fed by the memory controller): XPLines are
	// 256 B media accesses; XPBuffer hits are line accesses coalesced
	// into an already-open XPLine. Bulk lines are sequential page
	// transfers (Memory-Mode fills and writebacks) charged at
	// lines/4 XPLines without disturbing the XPBuffer.
	CtrMediaWriteXPLines
	CtrMediaReadXPLines
	CtrXPBufWriteHits
	CtrXPBufReadHits
	CtrMediaBulkWriteLines
	CtrMediaBulkReadLines

	// WPQ pressure as seen by the series sampler (the controller keeps
	// its own authoritative per-cause accounting; these mirror the
	// totals so Tick can snapshot them without reaching into the
	// controller).
	CtrWPQAccepts
	CtrWPQStallNS
	CtrWPQStallEvents

	// Serving layer (internal/server): requests completed, requests
	// shed by backpressure or deadline, transactions used as coalesced
	// commit batches, and the total operations those batches carried
	// (batched ops / batches = the achieved coalescing factor).
	CtrSrvRequests
	CtrSrvShed
	CtrSrvBatches
	CtrSrvBatchedOps

	// Adaptive group-commit controller (internal/server/controller.go):
	// total step evaluations, and how many moved the operating point up
	// (pressure: larger batch cap / longer window) or down (idle decay).
	// Steps minus up minus down = holds.
	CtrSrvCtrlSteps
	CtrSrvCtrlUp
	CtrSrvCtrlDown

	NumCounters
)

// counterNames are stable identifiers for debugging output.
var counterNames = [NumCounters]string{
	"commits", "aborts",
	"abort_lock_conflict", "abort_validation", "abort_capacity", "abort_explicit",
	"read_only_txns",
	"log_entries", "log_bytes",
	"media_write_xplines", "media_read_xplines",
	"xpbuf_write_hits", "xpbuf_read_hits",
	"media_bulk_write_lines", "media_bulk_read_lines",
	"wpq_accepts", "wpq_stall_ns", "wpq_stall_events",
	"srv_requests", "srv_shed", "srv_batches", "srv_batched_ops",
	"srv_ctrl_steps", "srv_ctrl_up", "srv_ctrl_down",
}

// String names the counter.
func (c Counter) String() string {
	if c >= 0 && int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter?"
}

// XPLine geometry: the media's 256 B access granularity is 4 cache
// lines, and the XPBuffer holds 16 open XPLines (Izraelevitz et al.'s
// characterization of the on-DIMM write-combining buffer).
const (
	XPLineBytes  = 256
	LinesPerXP   = 4
	XPBufferWays = 16
	LineBytes    = 64
	WordBytes    = 8
	xpShift      = 2 // line number -> XPLine number
)

// Config parameterizes a Registry.
type Config struct {
	// SampleIntervalNS is the virtual-time distance between time-series
	// samples; 0 disables the series (counters still accumulate).
	SampleIntervalNS int64
	// Serial promises that the lockstep scheduler serializes every
	// caller, letting the media model and sampler skip their locking.
	Serial bool
}

// Sample is one fixed-interval snapshot of the cumulative counters at
// virtual time VT. Consecutive samples differenced give rates (e.g.
// commit throughput, media write bandwidth) over the run.
type Sample struct {
	VT           int64 `json:"vt_ns"`
	Commits      int64 `json:"commits"`
	Aborts       int64 `json:"aborts"`
	MediaWriteXP int64 `json:"media_write_xplines"`
	MediaReadXP  int64 `json:"media_read_xplines"`
	WPQOccupancy int64 `json:"wpq_occupancy"`
	WPQStallNS   int64 `json:"wpq_stall_ns"`
}

// xpBuffer is a tiny LRU of open XPLine numbers, move-to-front in a
// fixed array (no allocation, ~16 word compares per probe worst case).
type xpBuffer struct {
	ents [XPBufferWays]uint64
	n    int
}

// probe reports whether XPLine xp is open, opening it (and evicting
// the least-recently-used entry if full) when it was not.
func (b *xpBuffer) probe(xp uint64) bool {
	for i := 0; i < b.n; i++ {
		if b.ents[i] == xp {
			copy(b.ents[1:i+1], b.ents[:i])
			b.ents[0] = xp
			return true
		}
	}
	if b.n < XPBufferWays {
		b.n++
	}
	copy(b.ents[1:b.n], b.ents[:b.n-1])
	b.ents[0] = xp
	return false
}

// Registry is the counter registry of one simulated machine. A nil
// *Registry is the disabled configuration; every method no-ops. The
// zero Config (New(Config{})) yields a registry that counts but never
// samples — the always-on configuration core.TM uses for its own
// outcome counters.
type Registry struct {
	counters [NumCounters]atomic.Int64

	serial         bool
	sampleInterval int64
	nextSample     atomic.Int64

	mu      sync.Mutex
	wbuf    xpBuffer
	rbuf    xpBuffer
	wpqOcc  int64 // gauge: occupancy observed at the last WPQ accept
	samples []Sample
}

// New builds a registry.
func New(cfg Config) *Registry {
	m := &Registry{serial: cfg.Serial, sampleInterval: cfg.SampleIntervalNS}
	if cfg.SampleIntervalNS > 0 {
		m.nextSample.Store(cfg.SampleIntervalNS)
	}
	return m
}

// Add adds delta to counter c.
func (m *Registry) Add(c Counter, delta int64) {
	if m == nil {
		return
	}
	m.counters[c].Add(delta)
}

// Get reads counter c.
func (m *Registry) Get(c Counter) int64 {
	if m == nil {
		return 0
	}
	return m.counters[c].Load()
}

// ResetTxnCounters zeroes the transaction-outcome and log-volume
// counters (CtrCommits through CtrLogBytes) — the warmup-exclusion
// reset. Device and media counters are left cumulative, matching the
// component counters (WPQ, caches) they are reported alongside.
func (m *Registry) ResetTxnCounters() {
	if m == nil {
		return
	}
	for c := CtrCommits; c <= CtrLogBytes; c++ {
		m.counters[c].Store(0)
	}
}

// MediaWriteLine records one 64 B line flush reaching the controller:
// a hit in the write XPBuffer coalesces into an open XPLine, a miss
// opens the XPLine and costs one 256 B media write.
func (m *Registry) MediaWriteLine(line uint64) {
	if m == nil {
		return
	}
	if !m.serial {
		m.mu.Lock()
	}
	hit := m.wbuf.probe(line >> xpShift)
	if !m.serial {
		m.mu.Unlock()
	}
	if hit {
		m.counters[CtrXPBufWriteHits].Add(1)
	} else {
		m.counters[CtrMediaWriteXPLines].Add(1)
	}
}

// MediaReadLine records one 64 B line read reaching the media (a
// cache-hierarchy miss routed to NVM).
func (m *Registry) MediaReadLine(line uint64) {
	if m == nil {
		return
	}
	if !m.serial {
		m.mu.Lock()
	}
	hit := m.rbuf.probe(line >> xpShift)
	if !m.serial {
		m.mu.Unlock()
	}
	if hit {
		m.counters[CtrXPBufReadHits].Add(1)
	} else {
		m.counters[CtrMediaReadXPLines].Add(1)
	}
}

// MediaBulkWrite records a sequential lines-long media write (a page
// writeback issued by the controller). Sequential transfers touch
// each XPLine exactly once and bypass the XPBuffer.
func (m *Registry) MediaBulkWrite(lines int) {
	if m == nil {
		return
	}
	m.counters[CtrMediaBulkWriteLines].Add(int64(lines))
	m.counters[CtrMediaWriteXPLines].Add(int64((lines + LinesPerXP - 1) / LinesPerXP))
}

// MediaBulkRead records a sequential lines-long media read (a page
// fill).
func (m *Registry) MediaBulkRead(lines int) {
	if m == nil {
		return
	}
	m.counters[CtrMediaBulkReadLines].Add(int64(lines))
	m.counters[CtrMediaReadXPLines].Add(int64((lines + LinesPerXP - 1) / LinesPerXP))
}

// WPQAccept mirrors one WPQ accept into the registry: the queue-full
// stall it suffered and the post-accept occupancy (the series gauge).
func (m *Registry) WPQAccept(stallNS int64, occupancy int) {
	if m == nil {
		return
	}
	m.counters[CtrWPQAccepts].Add(1)
	if stallNS > 0 {
		m.counters[CtrWPQStallNS].Add(stallNS)
		m.counters[CtrWPQStallEvents].Add(1)
	}
	if !m.serial {
		m.mu.Lock()
	}
	m.wpqOcc = int64(occupancy)
	if !m.serial {
		m.mu.Unlock()
	}
}

// Tick advances the time-series sampler to virtual time nowVT,
// appending one sample per elapsed interval boundary. The runtime
// calls it from the commit path; with no series configured the cost is
// two loads.
func (m *Registry) Tick(nowVT int64) {
	if m == nil || m.sampleInterval <= 0 {
		return
	}
	if nowVT < m.nextSample.Load() {
		return
	}
	if !m.serial {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	next := m.nextSample.Load()
	for nowVT >= next {
		m.samples = append(m.samples, Sample{
			VT:           next,
			Commits:      m.counters[CtrCommits].Load(),
			Aborts:       m.counters[CtrAborts].Load(),
			MediaWriteXP: m.counters[CtrMediaWriteXPLines].Load(),
			MediaReadXP:  m.counters[CtrMediaReadXPLines].Load(),
			WPQOccupancy: m.wpqOcc,
			WPQStallNS:   m.counters[CtrWPQStallNS].Load(),
		})
		next += m.sampleInterval
	}
	m.nextSample.Store(next)
}

// Samples returns a copy of the time series recorded so far.
func (m *Registry) Samples() []Sample {
	if m == nil {
		return nil
	}
	if !m.serial {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// ExportTracks replays the time series onto the recorder's counter
// tracks so the Perfetto trace carries the sampled WPQ occupancy,
// media write/read XPLine totals, and commit count alongside the span
// lanes. No-op unless the recorder retains trace events.
func (m *Registry) ExportTracks(rec *obs.Recorder) {
	if m == nil || !rec.Tracing() {
		return
	}
	for _, s := range m.Samples() {
		rec.CountShared(obs.TrackWPQOccupancy, s.VT, float64(s.WPQOccupancy))
		rec.CountShared(obs.TrackMediaWriteXP, s.VT, float64(s.MediaWriteXP))
		rec.CountShared(obs.TrackMediaReadXP, s.VT, float64(s.MediaReadXP))
		rec.CountShared(obs.TrackCommits, s.VT, float64(s.Commits))
	}
}
