package metrics

// Snapshot is the complete counter state of one simulated machine at
// the end of a run, flattened into one JSON-stable struct. The machine
// (core.TM) assembles it: the registry contributes the transaction and
// media counters, each component contributes its own section. Field
// names are the metrics-report schema; Snapshot must round-trip
// through encoding/json exactly (all fields are integers except the
// derived amplification ratios), which the content-addressed result
// cache relies on.
type Snapshot struct {
	// Transaction outcomes.
	Commits           int64 `json:"commits"`
	Aborts            int64 `json:"aborts"`
	AbortLockConflict int64 `json:"abort_lock_conflict"`
	AbortValidation   int64 `json:"abort_validation"`
	AbortCapacity     int64 `json:"abort_capacity"`
	AbortExplicit     int64 `json:"abort_explicit"`
	ReadOnlyTxns      int64 `json:"read_only_txns"`

	// Persistent log volume.
	LogEntries int64 `json:"log_entries"`
	LogBytes   int64 `json:"log_bytes"`

	// Device traffic as requested by the program (memdev).
	NVMLoads  int64 `json:"nvm_loads"`
	NVMStores int64 `json:"nvm_stores"`
	Flushes   int64 `json:"flushes"`

	// Media traffic at XPLine (256 B) granularity and the resulting
	// amplification: media bytes moved per byte requested.
	MediaWriteXPLines   int64   `json:"media_write_xplines"`
	MediaReadXPLines    int64   `json:"media_read_xplines"`
	XPBufWriteHits      int64   `json:"xpbuf_write_hits"`
	XPBufReadHits       int64   `json:"xpbuf_read_hits"`
	MediaBulkWriteLines int64   `json:"media_bulk_write_lines"`
	MediaBulkReadLines  int64   `json:"media_bulk_read_lines"`
	WriteAmp            float64 `json:"write_amp"`
	ReadAmp             float64 `json:"read_amp"`

	// WPQ pressure (wpq.Counters): accepts and stalls split by the
	// flush cause — explicit clwb, dirty L3 eviction, or a
	// write-combining buffer drain.
	WPQAccepts         int64 `json:"wpq_accepts"`
	WPQStallNS         int64 `json:"wpq_stall_ns"`
	WPQStallEvents     int64 `json:"wpq_stall_events"`
	WPQMaxOccupancy    int64 `json:"wpq_max_occupancy"`
	WPQCombinedHits    int64 `json:"wpq_combined_hits"`
	WPQAcceptsCLWB     int64 `json:"wpq_accepts_clwb"`
	WPQAcceptsEviction int64 `json:"wpq_accepts_eviction"`
	WPQAcceptsWCDrain  int64 `json:"wpq_accepts_wcdrain"`
	WPQStallNSCLWB     int64 `json:"wpq_stall_ns_clwb"`
	WPQStallNSEviction int64 `json:"wpq_stall_ns_eviction"`
	WPQStallNSWCDrain  int64 `json:"wpq_stall_ns_wcdrain"`
	NVMWriteBusyNS     int64 `json:"nvm_write_busy_ns"`
	NVMReadBusyNS      int64 `json:"nvm_read_busy_ns"`

	// CPU cache hierarchy (cachesim): hits per level plus the eviction
	// breakdown (L3 split clean/dirty; dirty L3 evictions are the
	// implicit writebacks that join the WPQ).
	CacheHitL1        int64 `json:"cache_hit_l1"`
	CacheHitL2        int64 `json:"cache_hit_l2"`
	CacheHitL3        int64 `json:"cache_hit_l3"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheEvictL1      int64 `json:"cache_evict_l1"`
	CacheEvictL2      int64 `json:"cache_evict_l2"`
	CacheEvictL3      int64 `json:"cache_evict_l3_clean"`
	CacheEvictL3Dirty int64 `json:"cache_evict_l3_dirty"`

	// Memory-Mode page cache (pagecache.Stats).
	PageHits         int64 `json:"page_hits"`
	PageMisses       int64 `json:"page_misses"`
	PageEvictions    int64 `json:"page_evictions"`
	PageWritebacks   int64 `json:"page_writebacks"`
	PagePrefetches   int64 `json:"page_prefetches"`
	PagePrefetchHits int64 `json:"page_prefetch_hits"`
	PageAsyncCleans  int64 `json:"page_async_cleans"`

	// Orec table contention.
	OrecCASFailures int64 `json:"orec_cas_failures"`

	// Virtual-time series (empty unless sampling was configured).
	Samples []Sample `json:"samples,omitempty"`
}

// FillRegistry copies the registry-owned counters and the time series
// into s and computes the amplification ratios from the device-traffic
// fields, which the caller must have filled first (NVMLoads/NVMStores
// come from memdev). Write amplification is media bytes written per
// byte stored; read amplification media bytes read per byte loaded.
func (s *Snapshot) FillRegistry(m *Registry) {
	if m == nil {
		return
	}
	s.Commits = m.Get(CtrCommits)
	s.Aborts = m.Get(CtrAborts)
	s.AbortLockConflict = m.Get(CtrAbortLockConflict)
	s.AbortValidation = m.Get(CtrAbortValidation)
	s.AbortCapacity = m.Get(CtrAbortCapacity)
	s.AbortExplicit = m.Get(CtrAbortExplicit)
	s.ReadOnlyTxns = m.Get(CtrReadOnlyTxns)
	s.LogEntries = m.Get(CtrLogEntries)
	s.LogBytes = m.Get(CtrLogBytes)
	s.MediaWriteXPLines = m.Get(CtrMediaWriteXPLines)
	s.MediaReadXPLines = m.Get(CtrMediaReadXPLines)
	s.XPBufWriteHits = m.Get(CtrXPBufWriteHits)
	s.XPBufReadHits = m.Get(CtrXPBufReadHits)
	s.MediaBulkWriteLines = m.Get(CtrMediaBulkWriteLines)
	s.MediaBulkReadLines = m.Get(CtrMediaBulkReadLines)
	s.Samples = m.Samples()
	if s.NVMStores > 0 {
		s.WriteAmp = float64(s.MediaWriteXPLines*XPLineBytes) / float64(s.NVMStores*WordBytes)
	}
	if s.NVMLoads > 0 {
		s.ReadAmp = float64(s.MediaReadXPLines*XPLineBytes) / float64(s.NVMLoads*WordBytes)
	}
}
