package metrics

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// testReport builds a small well-formed two-cell report.
func testReport() *Report {
	mk := func(cell string, threads int, commits int64) CellMetrics {
		c := CellMetrics{
			Figure:   "fig4a",
			Workload: "tatp",
			Cell:     cell,
			Threads:  threads,
		}
		c.Counters.Commits = commits
		c.Counters.Aborts = commits / 10
		c.Counters.NVMStores = commits * 20
		c.Counters.NVMLoads = commits * 50
		c.Counters.MediaWriteXPLines = commits * 8
		c.Counters.MediaReadXPLines = commits * 4
		c.Counters.XPBufWriteHits = commits * 12
		c.Counters.WPQAccepts = commits * 15
		c.Counters.WPQStallNS = commits * 40
		c.Counters.WPQMaxOccupancy = 48
		c.Counters.LogBytes = commits * 160
		c.Counters.WriteAmp = float64(c.Counters.MediaWriteXPLines*XPLineBytes) /
			float64(c.Counters.NVMStores*WordBytes)
		c.Counters.ReadAmp = float64(c.Counters.MediaReadXPLines*XPLineBytes) /
			float64(c.Counters.NVMLoads*WordBytes)
		c.Attribution = Attribution{WPQStallShare: 0.4, FenceWaitShare: 0.1, MediaWaitShare: 0.2}
		DeriveCell(&c)
		return c
	}
	return &Report{
		Schema: ReportSchema,
		Cells: []CellMetrics{
			mk("Optane_ADR_R", 8, 10_000),
			mk("Optane_eADR_U", 8, 25_000),
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	rep := testReport()
	if err := WriteReportFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 2 || got.Schema != ReportSchema {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Cells[0].Key() != "fig4a/tatp/Optane_ADR_R/t8" {
		t.Fatalf("cell key = %q", got.Cells[0].Key())
	}
}

// TestValidateReportJSON walks the validator through the corruption
// cases the CI job guards against.
func TestValidateReportJSON(t *testing.T) {
	good, err := json.Marshal(testReport())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReportJSON(good); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	corrupt := func(from, to string) []byte {
		s := strings.Replace(string(good), from, to, 1)
		if s == string(good) {
			t.Fatalf("corruption %q not applied", from)
		}
		return []byte(s)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"not json", []byte("]{")},
		{"wrong schema", corrupt(`"schema":1`, `"schema":99`)},
		{"missing schema", corrupt(`"schema":1,`, ``)},
		{"cells not array", []byte(`{"schema":1,"cells":{}}`)},
		{"missing figure", corrupt(`"figure":"fig4a"`, `"figure":""`)},
		{"bad threads", corrupt(`"threads":8`, `"threads":0`)},
		{"missing counter", corrupt(`"wpq_max_occupancy":48`, `"wpq_max_occupancy":"x"`)},
		{"negative share", corrupt(`"fence_wait_share":0.1`, `"fence_wait_share":-0.1`)},
		{"insane share", corrupt(`"fence_wait_share":0.1`, `"fence_wait_share":500`)},
	}
	for _, tc := range cases {
		if err := ValidateReportJSON(tc.data); err == nil {
			t.Errorf("%s: corruption accepted", tc.name)
		}
	}
}

// TestDiff checks threshold behavior: identical reports pass at
// threshold 0; an injected regression fails; a loose threshold lets a
// small drift through.
func TestDiff(t *testing.T) {
	base := testReport()
	same := testReport()
	for _, e := range Diff(base, same, 0) {
		if e.Exceeds {
			t.Fatalf("identical reports differ: %+v", e)
		}
	}

	// Inject a 50%% commit regression into cell 0.
	reg := testReport()
	reg.Cells[0].Counters.Commits /= 2
	var hit bool
	for _, e := range Diff(base, reg, 0.05) {
		if e.Cell == base.Cells[0].Key() && e.Metric == "commits" {
			if !e.Exceeds {
				t.Fatalf("50%% regression under 5%% threshold not flagged: %+v", e)
			}
			hit = true
		}
		if e.Cell == base.Cells[1].Key() && e.Exceeds {
			t.Fatalf("untouched cell flagged: %+v", e)
		}
	}
	if !hit {
		t.Fatal("commits entry missing from diff")
	}

	// The same delta passes under a 60% threshold.
	for _, e := range Diff(base, reg, 0.60) {
		if e.Exceeds {
			t.Fatalf("delta beyond loose threshold: %+v", e)
		}
	}
}

// TestDiffMissingCells checks that a cell present in only one report is
// itself a failure — a silently dropped sweep point must not pass CI.
func TestDiffMissingCells(t *testing.T) {
	base, cur := testReport(), testReport()
	cur.Cells = cur.Cells[:1]
	var missing int
	for _, e := range Diff(base, cur, 0) {
		if e.Exceeds {
			if !strings.Contains(e.Metric, "missing") {
				t.Fatalf("unexpected exceeding entry: %+v", e)
			}
			missing++
		}
	}
	if missing != 1 {
		t.Fatalf("missing-cell entries = %d, want 1", missing)
	}

	extra := testReport()
	extra.Cells = append(extra.Cells, extra.Cells[0])
	extra.Cells[2].Cell = "DRAM_eADR_U"
	var added int
	for _, e := range Diff(base, extra, 0) {
		if e.Exceeds && strings.Contains(e.Metric, "missing from baseline") {
			added++
		}
	}
	if added != 1 {
		t.Fatalf("new-cell entries = %d, want 1", added)
	}
}

func TestAttributionDominant(t *testing.T) {
	cases := []struct {
		a    Attribution
		want string
	}{
		{Attribution{FenceWaitShare: 0.5, WPQStallShare: 0.1}, "fence-wait"},
		{Attribution{FenceWaitShare: 0.1, WPQStallShare: 0.5}, "wpq-stall"},
		{Attribution{MediaWaitShare: 0.6, WPQStallShare: 0.5}, "media-wait"},
	}
	for _, tc := range cases {
		if got, _ := tc.a.Dominant(); got != tc.want {
			t.Errorf("Dominant(%+v) = %q, want %q", tc.a, got, tc.want)
		}
	}
}

func TestDeriveCellEdgeCases(t *testing.T) {
	var c CellMetrics
	DeriveCell(&c) // all-zero counters must not divide by zero
	if c.Derived.XPBufWriteHitPct != 0 || c.Derived.CommitsPerAbort != 0 {
		t.Fatalf("zero cell derived nonzero: %+v", c.Derived)
	}
	c.Counters.Commits = 100 // no aborts: commits/abort degenerates to commits
	DeriveCell(&c)
	if c.Derived.CommitsPerAbort != 100 {
		t.Fatalf("commits-per-abort with zero aborts = %v, want 100", c.Derived.CommitsPerAbort)
	}
}
