package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"goptm/internal/obs"
)

// ReportSchema stamps the metrics-report JSON artifact; bump on any
// incompatible shape change so ptmstat refuses to diff mismatched
// artifacts.
const ReportSchema = 1

// Report is the diffable metrics artifact of one sweep: one CellMetrics
// per (figure, workload, cell, threads) point, in sweep order.
type Report struct {
	Schema int           `json:"schema"`
	Cells  []CellMetrics `json:"cells"`
}

// CellMetrics is the counter state and latency attribution of one
// sweep cell.
type CellMetrics struct {
	Figure   string `json:"figure"`
	Workload string `json:"workload"`
	Cell     string `json:"cell"`
	Threads  int    `json:"threads"`

	Counters    Snapshot    `json:"counters"`
	Derived     Derived     `json:"derived"`
	Attribution Attribution `json:"attribution"`
}

// Key identifies the cell for diffing.
func (c *CellMetrics) Key() string {
	return fmt.Sprintf("%s/%s/%s/t%d", c.Figure, c.Workload, c.Cell, c.Threads)
}

// Derived are the headline ratios ptmstat guards: they collapse the
// raw counters into the quantities the paper's explanation rests on.
type Derived struct {
	WriteAmp         float64 `json:"write_amp"`
	ReadAmp          float64 `json:"read_amp"`
	WPQStallShare    float64 `json:"wpq_stall_share"`  // of txn time
	MediaWaitShare   float64 `json:"media_wait_share"` // of txn time
	XPBufWriteHitPct float64 `json:"xpbuf_write_hit_pct"`
	CommitsPerAbort  float64 `json:"commits_per_abort"`
}

// Attribution is the share of whole-transaction virtual time spent in
// each phase. Bus phases (media wait, WPQ stall, fence wait) overlap
// the protocol phases, so shares do not sum to 1 — and because every
// flush's stall window is accounted, a saturated WPQ can push the
// stall share above 1 (several outstanding flushes stalling inside one
// transaction window).
type Attribution struct {
	ValidateShare  float64 `json:"validate_share"`
	DrainShare     float64 `json:"drain_share"`
	CommitShare    float64 `json:"commit_share"`
	AbortShare     float64 `json:"abort_share"`
	FenceWaitShare float64 `json:"fence_wait_share"`
	WPQStallShare  float64 `json:"wpq_stall_share"`
	MediaWaitShare float64 `json:"media_wait_share"`
}

// AttributionFromBreakdown rolls an obs phase breakdown into shares of
// transaction time.
func AttributionFromBreakdown(b *obs.Breakdown) Attribution {
	return Attribution{
		ValidateShare:  b.Share(obs.PhaseValidate),
		DrainShare:     b.Share(obs.PhaseDrain),
		CommitShare:    b.Share(obs.PhaseCommit),
		AbortShare:     b.Share(obs.PhaseAbort),
		FenceWaitShare: b.Share(obs.PhaseFenceWait),
		WPQStallShare:  b.Share(obs.PhaseWPQStall),
		MediaWaitShare: b.Share(obs.PhaseMediaWait),
	}
}

// Dominant reports the largest bus-side share (fence wait, WPQ stall,
// media wait) — "what is commit latency waiting on" in one word.
func (a Attribution) Dominant() (name string, share float64) {
	name, share = "fence-wait", a.FenceWaitShare
	if a.WPQStallShare > share {
		name, share = "wpq-stall", a.WPQStallShare
	}
	if a.MediaWaitShare > share {
		name, share = "media-wait", a.MediaWaitShare
	}
	return name, share
}

// DeriveCell computes the Derived block from a cell's counters and
// attribution.
func DeriveCell(c *CellMetrics) {
	c.Derived.WriteAmp = c.Counters.WriteAmp
	c.Derived.ReadAmp = c.Counters.ReadAmp
	c.Derived.WPQStallShare = c.Attribution.WPQStallShare
	c.Derived.MediaWaitShare = c.Attribution.MediaWaitShare
	if probes := c.Counters.XPBufWriteHits + c.Counters.MediaWriteXPLines; probes > 0 {
		c.Derived.XPBufWriteHitPct = 100 * float64(c.Counters.XPBufWriteHits) / float64(probes)
	}
	if c.Counters.Aborts > 0 {
		c.Derived.CommitsPerAbort = float64(c.Counters.Commits) / float64(c.Counters.Aborts)
	} else {
		c.Derived.CommitsPerAbort = float64(c.Counters.Commits)
	}
}

// WriteReportFile writes the report as indented JSON (the -metricsjson
// artifact and the CI baseline format).
func WriteReportFile(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: marshal report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReportFile reads and schema-validates a report artifact.
func LoadReportFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := ValidateReportJSON(data); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// requiredCounterFields are the Snapshot fields every valid artifact
// must carry (a subset chosen for schema stability; extra fields are
// permitted so the schema can grow).
var requiredCounterFields = []string{
	"commits", "aborts", "nvm_stores", "nvm_loads",
	"media_write_xplines", "media_read_xplines",
	"write_amp", "read_amp",
	"wpq_accepts", "wpq_stall_ns", "wpq_max_occupancy",
}

// ValidateReportJSON checks that data is a structurally valid metrics
// report: correct schema stamp, a cells array whose entries carry the
// identifying fields, the required counters as numbers, and
// attribution shares inside [0, 1].
func ValidateReportJSON(data []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("metrics: report is not a JSON object: %w", err)
	}
	var schema int
	if raw, ok := top["schema"]; !ok {
		return fmt.Errorf("metrics: report missing \"schema\"")
	} else if err := json.Unmarshal(raw, &schema); err != nil || schema != ReportSchema {
		return fmt.Errorf("metrics: unsupported report schema (want %d)", ReportSchema)
	}
	raw, ok := top["cells"]
	if !ok {
		return fmt.Errorf("metrics: report missing \"cells\"")
	}
	var cells []map[string]json.RawMessage
	if err := json.Unmarshal(raw, &cells); err != nil {
		return fmt.Errorf("metrics: \"cells\" is not an array of objects: %w", err)
	}
	for i, cell := range cells {
		for _, f := range []string{"figure", "workload", "cell"} {
			var s string
			if raw, ok := cell[f]; !ok || json.Unmarshal(raw, &s) != nil || s == "" {
				return fmt.Errorf("metrics: cell %d: missing or invalid %q", i, f)
			}
		}
		var threads int
		if raw, ok := cell["threads"]; !ok || json.Unmarshal(raw, &threads) != nil || threads <= 0 {
			return fmt.Errorf("metrics: cell %d: missing or invalid \"threads\"", i)
		}
		var counters map[string]json.RawMessage
		if raw, ok := cell["counters"]; !ok || json.Unmarshal(raw, &counters) != nil {
			return fmt.Errorf("metrics: cell %d: missing or invalid \"counters\"", i)
		}
		for _, f := range requiredCounterFields {
			var v float64
			if raw, ok := counters[f]; !ok || json.Unmarshal(raw, &v) != nil {
				return fmt.Errorf("metrics: cell %d: counters missing numeric %q", i, f)
			}
		}
		var attr map[string]float64
		if raw, ok := cell["attribution"]; !ok || json.Unmarshal(raw, &attr) != nil {
			return fmt.Errorf("metrics: cell %d: missing or invalid \"attribution\"", i)
		}
		// Shares must be non-negative and sane. Overlapping bus phases
		// legitimately exceed 1 under WPQ saturation (every flush's
		// stall is accounted), so the upper bound is only a corruption
		// guard, not 1.
		for name, v := range attr {
			if v < 0 || v > 100 {
				return fmt.Errorf("metrics: cell %d: attribution share %q = %v outside [0,100]", i, name, v)
			}
		}
	}
	return nil
}

// DiffEntry is one metric delta between two reports' matching cells.
type DiffEntry struct {
	Cell   string
	Metric string
	Base   float64
	Cur    float64
	// Rel is the relative delta |cur-base| / max(|base|, 1).
	Rel float64
	// Exceeds marks the entry as beyond the diff threshold.
	Exceeds bool
}

// diffMetrics extracts the guarded quantities of one cell by name.
func diffMetrics(c *CellMetrics) map[string]float64 {
	return map[string]float64{
		"commits":             float64(c.Counters.Commits),
		"aborts":              float64(c.Counters.Aborts),
		"media_write_xplines": float64(c.Counters.MediaWriteXPLines),
		"media_read_xplines":  float64(c.Counters.MediaReadXPLines),
		"wpq_stall_ns":        float64(c.Counters.WPQStallNS),
		"log_bytes":           float64(c.Counters.LogBytes),
		"write_amp":           c.Derived.WriteAmp,
		"read_amp":            c.Derived.ReadAmp,
		"wpq_stall_share":     c.Derived.WPQStallShare,
	}
}

// Diff compares cur against base cell-by-cell (matched on figure,
// workload, cell, threads) and returns every guarded metric's delta,
// marking those whose relative change exceeds threshold. Cells present
// in only one report are reported as a single exceeding entry each, so
// a silently dropped cell fails CI too.
func Diff(base, cur *Report, threshold float64) []DiffEntry {
	baseBy := make(map[string]*CellMetrics, len(base.Cells))
	for i := range base.Cells {
		baseBy[base.Cells[i].Key()] = &base.Cells[i]
	}
	var out []DiffEntry
	seen := make(map[string]bool, len(cur.Cells))
	for i := range cur.Cells {
		c := &cur.Cells[i]
		seen[c.Key()] = true
		b, ok := baseBy[c.Key()]
		if !ok {
			out = append(out, DiffEntry{Cell: c.Key(), Metric: "(cell missing from baseline)", Exceeds: true})
			continue
		}
		bm, cm := diffMetrics(b), diffMetrics(c)
		names := make([]string, 0, len(cm))
		for name := range cm {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bv, cv := bm[name], cm[name]
			den := bv
			if den < 0 {
				den = -den
			}
			if den < 1 {
				den = 1
			}
			rel := (cv - bv) / den
			if rel < 0 {
				rel = -rel
			}
			out = append(out, DiffEntry{
				Cell: c.Key(), Metric: name, Base: bv, Cur: cv,
				Rel: rel, Exceeds: rel > threshold,
			})
		}
	}
	for key := range baseBy {
		if !seen[key] {
			out = append(out, DiffEntry{Cell: key, Metric: "(cell missing from current)", Exceeds: true})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
