package metrics

import "testing"

// TestNilRegistry pins the nil-safe discipline: every method must be
// callable on a nil *Registry (the disabled configuration).
func TestNilRegistry(t *testing.T) {
	var m *Registry
	m.Add(CtrCommits, 1)
	m.MediaWriteLine(3)
	m.MediaReadLine(3)
	m.MediaBulkWrite(8)
	m.MediaBulkRead(8)
	m.WPQAccept(10, 5)
	m.Tick(1000)
	m.ResetTxnCounters()
	if got := m.Get(CtrCommits); got != 0 {
		t.Fatalf("nil registry Get = %d, want 0", got)
	}
	if s := m.Samples(); s != nil {
		t.Fatalf("nil registry Samples = %v, want nil", s)
	}
	m.ExportTracks(nil)
}

func TestCounterNames(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		if c.String() == "" || c.String() == "counter?" {
			t.Fatalf("counter %d has no name", c)
		}
	}
	if Counter(NumCounters).String() != "counter?" {
		t.Fatalf("out-of-range counter should render counter?")
	}
}

// TestXPBufferCoalescing checks the media model's core property: lines
// within one open XPLine coalesce, lines beyond the 16-way capacity
// evict LRU-first.
func TestXPBufferCoalescing(t *testing.T) {
	m := New(Config{Serial: true})

	// Four lines of one XPLine: 1 media write + 3 XPBuffer hits.
	for line := uint64(0); line < LinesPerXP; line++ {
		m.MediaWriteLine(line)
	}
	if got := m.Get(CtrMediaWriteXPLines); got != 1 {
		t.Fatalf("media writes = %d, want 1", got)
	}
	if got := m.Get(CtrXPBufWriteHits); got != 3 {
		t.Fatalf("xpbuf hits = %d, want 3", got)
	}

	// Touch 16 more distinct XPLines: XPLine 0 is now LRU and evicted,
	// so revisiting line 0 misses again.
	for xp := uint64(1); xp <= XPBufferWays; xp++ {
		m.MediaWriteLine(xp * LinesPerXP)
	}
	before := m.Get(CtrMediaWriteXPLines)
	m.MediaWriteLine(0)
	if got := m.Get(CtrMediaWriteXPLines); got != before+1 {
		t.Fatalf("evicted XPLine did not cost a media write: %d -> %d", before, got)
	}
}

// TestXPBufferMoveToFront checks that a hit refreshes recency: the hit
// entry must survive a fill that evicts everything older.
func TestXPBufferMoveToFront(t *testing.T) {
	m := New(Config{Serial: true})
	for xp := uint64(0); xp < XPBufferWays; xp++ {
		m.MediaWriteLine(xp * LinesPerXP) // fill: 0 is LRU-most after this
	}
	m.MediaWriteLine(0) // hit XPLine 0 -> most recent
	// 15 new XPLines evict everything except the freshest entry (0).
	for xp := uint64(100); xp < 100+XPBufferWays-1; xp++ {
		m.MediaWriteLine(xp * LinesPerXP)
	}
	before := m.Get(CtrXPBufWriteHits)
	m.MediaWriteLine(0)
	if got := m.Get(CtrXPBufWriteHits); got != before+1 {
		t.Fatalf("refreshed XPLine was evicted; hits %d -> %d", before, got)
	}
}

// TestReadWriteBuffersIndependent checks reads and writes probe
// separate XPBuffers.
func TestReadWriteBuffersIndependent(t *testing.T) {
	m := New(Config{Serial: true})
	m.MediaWriteLine(0)
	m.MediaReadLine(0)
	if got := m.Get(CtrMediaReadXPLines); got != 1 {
		t.Fatalf("read after write coalesced across buffers: media reads = %d, want 1", got)
	}
}

func TestBulkRounding(t *testing.T) {
	m := New(Config{Serial: true})
	m.MediaBulkWrite(5) // 5 lines -> ceil(5/4) = 2 XPLines
	if got := m.Get(CtrMediaWriteXPLines); got != 2 {
		t.Fatalf("bulk write XPLines = %d, want 2", got)
	}
	if got := m.Get(CtrMediaBulkWriteLines); got != 5 {
		t.Fatalf("bulk write lines = %d, want 5", got)
	}
	m.MediaBulkRead(4)
	if got := m.Get(CtrMediaReadXPLines); got != 1 {
		t.Fatalf("bulk read XPLines = %d, want 1", got)
	}
}

// TestTickSeries checks interval boundaries: one sample per elapsed
// interval, stamped at the boundary, carrying cumulative counters.
func TestTickSeries(t *testing.T) {
	m := New(Config{SampleIntervalNS: 100, Serial: true})
	m.Add(CtrCommits, 1)
	m.Tick(50) // before the first boundary: no sample
	if got := len(m.Samples()); got != 0 {
		t.Fatalf("early tick sampled: %d samples", got)
	}
	m.Add(CtrCommits, 1)
	m.Tick(100) // exactly on the boundary: one sample
	m.Add(CtrCommits, 3)
	m.Tick(350) // crosses 200 and 300: two samples
	s := m.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %d, want 3", len(s))
	}
	wantVT := []int64{100, 200, 300}
	wantCommits := []int64{2, 5, 5}
	for i := range s {
		if s[i].VT != wantVT[i] {
			t.Errorf("sample %d VT = %d, want %d", i, s[i].VT, wantVT[i])
		}
		if s[i].Commits != wantCommits[i] {
			t.Errorf("sample %d commits = %d, want %d", i, s[i].Commits, wantCommits[i])
		}
	}
	// Tick never fires with no series configured.
	m2 := New(Config{Serial: true})
	m2.Tick(1 << 40)
	if got := len(m2.Samples()); got != 0 {
		t.Fatalf("series disabled but sampled %d", got)
	}
}

func TestWPQAcceptOccupancyGauge(t *testing.T) {
	m := New(Config{SampleIntervalNS: 10, Serial: true})
	m.WPQAccept(0, 7)
	m.WPQAccept(25, 63)
	m.Tick(10)
	s := m.Samples()
	if len(s) != 1 || s[0].WPQOccupancy != 63 {
		t.Fatalf("samples = %+v, want one sample with occupancy 63", s)
	}
	if got := m.Get(CtrWPQAccepts); got != 2 {
		t.Fatalf("accepts = %d, want 2", got)
	}
	if got := m.Get(CtrWPQStallEvents); got != 1 {
		t.Fatalf("stall events = %d, want 1 (zero-stall accepts must not count)", got)
	}
	if got := m.Get(CtrWPQStallNS); got != 25 {
		t.Fatalf("stall ns = %d, want 25", got)
	}
}

// TestResetTxnCounters pins the reset range: transaction outcomes and
// log volume reset, media/device counters stay cumulative.
func TestResetTxnCounters(t *testing.T) {
	m := New(Config{Serial: true})
	for c := Counter(0); c < NumCounters; c++ {
		m.Add(c, 7)
	}
	m.ResetTxnCounters()
	for c := CtrCommits; c <= CtrLogBytes; c++ {
		if got := m.Get(c); got != 0 {
			t.Errorf("%v = %d after reset, want 0", c, got)
		}
	}
	for c := CtrLogBytes + 1; c < NumCounters; c++ {
		if got := m.Get(c); got != 7 {
			t.Errorf("%v = %d after reset, want 7 (must stay cumulative)", c, got)
		}
	}
}

// TestConcurrentRegistry exercises the locked (non-serial) paths under
// the race detector.
func TestConcurrentRegistry(t *testing.T) {
	m := New(Config{SampleIntervalNS: 64})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				line := uint64(w*1000 + i)
				m.MediaWriteLine(line)
				m.MediaReadLine(line)
				m.WPQAccept(int64(i%3), i%64)
				m.Tick(int64(i) * 10)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := m.Get(CtrWPQAccepts); got != 4000 {
		t.Fatalf("accepts = %d, want 4000", got)
	}
	total := m.Get(CtrMediaWriteXPLines) + m.Get(CtrXPBufWriteHits)
	if total != 4000 {
		t.Fatalf("write probes = %d, want 4000", total)
	}
}

func TestFillRegistryAmplification(t *testing.T) {
	m := New(Config{Serial: true})
	// 64 stores (512 B requested) that land in 8 distinct XPLines
	// (2048 B media): write amp 4.0.
	for i := 0; i < 64; i++ {
		m.MediaWriteLine(uint64(i) * LinesPerXP / 2) // 2 lines per XPLine
	}
	var s Snapshot
	s.NVMStores = 64
	s.NVMLoads = 0
	s.FillRegistry(m)
	wantXP := m.Get(CtrMediaWriteXPLines)
	wantAmp := float64(wantXP*XPLineBytes) / float64(64*WordBytes)
	if s.WriteAmp != wantAmp {
		t.Fatalf("write amp = %v, want %v", s.WriteAmp, wantAmp)
	}
	if s.ReadAmp != 0 {
		t.Fatalf("read amp = %v with no loads, want 0", s.ReadAmp)
	}
}
