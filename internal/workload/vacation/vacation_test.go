package vacation

import (
	"sync"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func newTM(t testing.TB, threads int, w *Workload) *core.TM {
	t.Helper()
	tm, err := core.New(core.Config{
		Algo: core.OrecLazy, Medium: core.MediumNVM, Domain: durability.ADR,
		Threads: threads, HeapWords: w.HeapWords(), OrecSize: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestContentionDefaults(t *testing.T) {
	lo := New(Config{Contention: Low})
	hi := New(Config{Contention: High})
	if lo.cfg.Relations <= hi.cfg.Relations {
		t.Fatal("low contention must use larger relations")
	}
	if lo.cfg.Queries >= hi.cfg.Queries {
		t.Fatal("high contention must query more items")
	}
	if lo.cfg.QueryRange <= hi.cfg.QueryRange {
		t.Fatal("high contention must focus a smaller hot range")
	}
	if lo.Name() != "Vacation (low)" || hi.Name() != "Vacation (high)" {
		t.Fatalf("names: %q / %q", lo.Name(), hi.Name())
	}
}

func TestSetupPopulatesRelations(t *testing.T) {
	w := New(Config{Contention: Low, Relations: 128, Customers: 64})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	th.Atomic(func(tx *core.Tx) {
		for rel := 0; rel < numRelations; rel++ {
			for _, id := range []uint64{0, 63, 127} {
				recW, ok := w.tables[rel].Lookup(tx, id)
				if !ok {
					t.Fatalf("relation %d item %d missing", rel, id)
				}
				rec := memdev.Addr(recW)
				total := tx.Load(rec + resTotal)
				avail := tx.Load(rec + resAvail)
				if total == 0 || avail != total {
					t.Fatalf("item %d populated wrong: total=%d avail=%d", id, total, avail)
				}
			}
		}
		if _, ok := w.customers.Lookup(tx, 63); !ok {
			t.Fatal("customer 63 missing")
		}
	})
}

func TestReservationDecrementsAvailability(t *testing.T) {
	w := New(Config{Contention: High, Relations: 16, Customers: 4, Queries: 4, QueryRange: 100})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	var before uint64
	th.Atomic(func(tx *core.Tx) {
		before = 0
		for rel := 0; rel < numRelations; rel++ {
			for id := uint64(0); id < 16; id++ {
				recW, _ := w.tables[rel].Lookup(tx, id)
				before += tx.Load(memdev.Addr(recW) + resAvail)
			}
		}
	})
	w.makeReservation(th)
	var after uint64
	var resCount uint64
	th.Atomic(func(tx *core.Tx) {
		after = 0
		for rel := 0; rel < numRelations; rel++ {
			for id := uint64(0); id < 16; id++ {
				recW, _ := w.tables[rel].Lookup(tx, id)
				after += tx.Load(memdev.Addr(recW) + resAvail)
			}
		}
		resCount = 0
		for c := uint64(0); c < 4; c++ {
			custW, _ := w.customers.Lookup(tx, c)
			resCount += tx.Load(memdev.Addr(custW) + custCount)
		}
	})
	if before-after != resCount {
		t.Fatalf("availability dropped by %d but customers hold %d reservations", before-after, resCount)
	}
	if resCount == 0 {
		t.Fatal("reservation reserved nothing (expected up to one per relation)")
	}
}

func TestDeleteCustomerReleasesAll(t *testing.T) {
	w := New(Config{Contention: High, Relations: 16, Customers: 1, Queries: 4, QueryRange: 100})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	for i := 0; i < 2; i++ {
		w.makeReservation(th)
	}
	w.deleteCustomer(th)
	th.Atomic(func(tx *core.Tx) {
		custW, _ := w.customers.Lookup(tx, 0)
		if n := tx.Load(memdev.Addr(custW) + custCount); n != 0 {
			t.Fatalf("customer still holds %d reservations", n)
		}
		// Everything back to full availability.
		for rel := 0; rel < numRelations; rel++ {
			for id := uint64(0); id < 16; id++ {
				recW, _ := w.tables[rel].Lookup(tx, id)
				rec := memdev.Addr(recW)
				if tx.Load(rec+resAvail) != tx.Load(rec+resTotal) {
					t.Fatalf("item %d/%d not fully released", rel, id)
				}
			}
		}
	})
}

func TestConcurrentMixKeepsInvariant(t *testing.T) {
	w := New(Config{Contention: High, Relations: 64, Customers: 32})
	tm := newTM(t, 4, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	ths := make([]*core.Thread, 4)
	for i := range ths {
		ths[i] = tm.Thread(i)
	}
	var wg sync.WaitGroup
	for _, th := range ths {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			defer th.Detach()
			for i := 0; i < 250; i++ {
				w.Step(th)
			}
		}(th)
	}
	wg.Wait()
	check := tm.Thread(0)
	defer check.Detach()
	if !w.CheckInvariant(check) {
		t.Fatal("available > total after concurrent mix")
	}
}

func TestStepAdvancesInterTxnWork(t *testing.T) {
	// Vacation is the paper's workload with significant work between
	// transactions (mutes eADR gains); Step must charge it.
	w := New(Config{Contention: Low, Relations: 64, Customers: 16})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	t0 := th.Now()
	w.Step(th)
	if th.Now()-t0 < interTxnWork {
		t.Fatal("Step did not charge inter-transaction work")
	}
}

func TestUpdateTablesAddAndRetire(t *testing.T) {
	w := New(Config{Contention: High, Relations: 32, Customers: 8})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	// Drive many administrative transactions; some add items beyond
	// the initial range, some retire unreserved ones.
	for i := 0; i < 400; i++ {
		w.updateTables(th)
	}
	var beyond, missing int
	th.Atomic(func(tx *core.Tx) {
		beyond, missing = 0, 0
		for rel := 0; rel < numRelations; rel++ {
			for id := uint64(32); id < 64; id++ {
				if _, ok := w.tables[rel].Lookup(tx, id); ok {
					beyond++
				}
			}
			for id := uint64(0); id < 32; id++ {
				if _, ok := w.tables[rel].Lookup(tx, id); !ok {
					missing++
				}
			}
		}
	})
	if beyond == 0 {
		t.Fatal("no items were added beyond the initial range")
	}
	if missing == 0 {
		t.Fatal("no items were retired")
	}
	if !w.CheckInvariant(th) {
		t.Fatal("invariant broken by add/retire")
	}
}
