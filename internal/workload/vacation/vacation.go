// Package vacation implements the Vacation travel-reservation
// benchmark from STAMP, in the two contention configurations the
// paper takes from WHISPER (§III-A): low and high contention.
//
// The system models a travel agency: three relations (cars, flights,
// rooms) map item ids to {total, available, price} records, and a
// customer relation accumulates reservations. The transaction mix is
// STAMP's: MakeReservation (query several items, reserve the
// cheapest available of each kind), DeleteCustomer (release a
// customer's reservations), and UpdateTables (add/remove items).
// Contention is controlled by the queried fraction of the relations
// and the number of queries per transaction.
package vacation

import (
	"goptm/internal/core"
	"goptm/internal/memdev"
	"goptm/internal/pstruct/btree"
)

// Contention selects the paper's two configurations.
type Contention int

// Contention levels.
const (
	Low Contention = iota
	High
)

// String names the contention level as the paper's figures do.
func (c Contention) String() string {
	if c == Low {
		return "low"
	}
	return "high"
}

// Reservable record layout (words).
const (
	resTotal = 0
	resAvail = 1
	resPrice = 2
	resWords = 8
)

// Customer record layout: a small fixed reservation list.
const (
	custCount    = 0
	custResStart = 1
	custMaxRes   = 6
	custWords    = 8
)

// Relation ids.
const (
	relCar = iota
	relFlight
	relRoom
	numRelations
)

// Config parameterizes the benchmark.
type Config struct {
	Contention Contention
	Relations  int // items per relation; 0 selects by contention
	Customers  int // 0 selects Relations
	Queries    int // items examined per reservation; 0 selects by contention
	QueryRange int // fraction of relation queried, percent; 0 selects by contention
}

// Workload drives the reservation system.
type Workload struct {
	cfg       Config
	tables    [numRelations]btree.Tree
	customers btree.Tree
}

// New returns a Vacation workload in the given configuration.
func New(cfg Config) *Workload {
	if cfg.Relations == 0 {
		if cfg.Contention == High {
			cfg.Relations = 1024
		} else {
			cfg.Relations = 16384
		}
	}
	if cfg.Customers == 0 {
		cfg.Customers = cfg.Relations
	}
	if cfg.Queries == 0 {
		if cfg.Contention == High {
			cfg.Queries = 8 // STAMP -n4 doubled per relation sweep
		} else {
			cfg.Queries = 2
		}
	}
	if cfg.QueryRange == 0 {
		if cfg.Contention == High {
			cfg.QueryRange = 10 // hot 10% of the relations
		} else {
			cfg.QueryRange = 90
		}
	}
	return &Workload{cfg: cfg}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "Vacation (" + w.cfg.Contention.String() + ")" }

// HeapWords sizes the heap.
func (w *Workload) HeapWords() uint64 {
	rows := uint64(numRelations*w.cfg.Relations + w.cfg.Customers)
	return rows*48 + (1 << 20)
}

// Setup builds and populates the four relations.
func (w *Workload) Setup(tm *core.TM, th *core.Thread) {
	th.Atomic(func(tx *core.Tx) {
		for rel := 0; rel < numRelations; rel++ {
			w.tables[rel] = btree.Create(tx)
		}
		w.customers = btree.Create(tx)
	})
	r := th.Rand()
	for rel := 0; rel < numRelations; rel++ {
		rel := rel
		const batch = 8
		for id0 := 0; id0 < w.cfg.Relations; id0 += batch {
			lo, hi := id0, min(id0+batch, w.cfg.Relations)
			th.Atomic(func(tx *core.Tx) {
				for id := lo; id < hi; id++ {
					rec := tx.Alloc(resWords)
					total := uint64(100 + r.Intn(300))
					tx.Store(rec+resTotal, total)
					tx.Store(rec+resAvail, total)
					tx.Store(rec+resPrice, uint64(50+r.Intn(500)))
					w.tables[rel].Insert(tx, uint64(id), uint64(rec))
				}
			})
		}
	}
	const batch = 8
	for c0 := 0; c0 < w.cfg.Customers; c0 += batch {
		lo, hi := c0, min(c0+batch, w.cfg.Customers)
		th.Atomic(func(tx *core.Tx) {
			for c := lo; c < hi; c++ {
				rec := tx.Alloc(custWords)
				tx.Store(rec+custCount, 0)
				w.customers.Insert(tx, uint64(c), uint64(rec))
			}
		})
	}
}

// hotID draws an item id from the configured hot fraction of a
// relation.
func (w *Workload) hotID(th *core.Thread) uint64 {
	span := uint64(w.cfg.Relations) * uint64(w.cfg.QueryRange) / 100
	if span == 0 {
		span = 1
	}
	return th.Rand().Uint64n(span)
}

// interTxnWork is the non-transactional client logic between
// transactions (virtual ns). Vacation is the one workload in the
// paper with significant work outside transactions, which is why its
// eADR gains are muted (§III-C).
const interTxnWork = 2000

// Step runs one transaction of STAMP's mix: ~90% reservations (for
// high contention, STAMP's -u90), 5% delete-customer, 5% table
// updates.
func (w *Workload) Step(th *core.Thread) {
	th.Compute(interTxnWork)
	r := th.Rand()
	switch p := r.Intn(100); {
	case p < 90:
		w.makeReservation(th)
	case p < 95:
		w.deleteCustomer(th)
	default:
		w.updateTables(th)
	}
}

// makeReservation queries Queries items per relation, picks the
// cheapest available item of each relation, and reserves it for a
// random customer.
func (w *Workload) makeReservation(th *core.Thread) {
	r := th.Rand()
	cid := r.Uint64n(uint64(w.cfg.Customers))
	ids := make([][]uint64, numRelations)
	for rel := range ids {
		ids[rel] = make([]uint64, w.cfg.Queries)
		for q := range ids[rel] {
			ids[rel][q] = w.hotID(th)
		}
	}
	th.Atomic(func(tx *core.Tx) {
		custW, ok := w.customers.Lookup(tx, cid)
		if !ok {
			return
		}
		cust := memdev.Addr(custW)
		for rel := 0; rel < numRelations; rel++ {
			var best memdev.Addr
			bestPrice := ^uint64(0)
			for _, id := range ids[rel] {
				recW, ok := w.tables[rel].Lookup(tx, id)
				if !ok {
					continue
				}
				rec := memdev.Addr(recW)
				if tx.Load(rec+resAvail) == 0 {
					continue
				}
				if p := tx.Load(rec + resPrice); p < bestPrice {
					bestPrice = p
					best = rec
				}
			}
			if best == 0 {
				continue
			}
			n := tx.Load(cust + custCount)
			if n >= custMaxRes {
				continue
			}
			tx.Store(best+resAvail, tx.Load(best+resAvail)-1)
			tx.Store(cust+custResStart+memdev.Addr(n), uint64(best))
			tx.Store(cust+custCount, n+1)
		}
	})
}

// deleteCustomer releases all of a customer's reservations.
func (w *Workload) deleteCustomer(th *core.Thread) {
	cid := th.Rand().Uint64n(uint64(w.cfg.Customers))
	th.Atomic(func(tx *core.Tx) {
		custW, ok := w.customers.Lookup(tx, cid)
		if !ok {
			return
		}
		cust := memdev.Addr(custW)
		n := tx.Load(cust + custCount)
		for i := uint64(0); i < n; i++ {
			rec := memdev.Addr(tx.Load(cust + custResStart + memdev.Addr(i)))
			tx.Store(rec+resAvail, tx.Load(rec+resAvail)+1)
		}
		tx.Store(cust+custCount, 0)
	})
}

// updateTables is the STAMP administrative transaction: mostly it
// re-prices or resizes an item, but occasionally it adds a brand-new
// item to a relation or retires one with no outstanding reservations
// (exercising index insert/delete under concurrency, as STAMP does).
func (w *Workload) updateTables(th *core.Thread) {
	r := th.Rand()
	rel := r.Intn(numRelations)
	switch r.Intn(10) {
	case 0: // add an item beyond the initial id range
		id := uint64(w.cfg.Relations) + r.Uint64n(uint64(w.cfg.Relations))
		total := uint64(100 + r.Intn(300))
		price := uint64(50 + r.Intn(500))
		th.Atomic(func(tx *core.Tx) {
			if _, exists := w.tables[rel].Lookup(tx, id); exists {
				return
			}
			rec := tx.Alloc(resWords)
			tx.Store(rec+resTotal, total)
			tx.Store(rec+resAvail, total)
			tx.Store(rec+resPrice, price)
			w.tables[rel].Insert(tx, id, uint64(rec))
		})
	case 1: // retire an item if nobody holds a reservation on it
		id := w.hotID(th)
		th.Atomic(func(tx *core.Tx) {
			recW, ok := w.tables[rel].Lookup(tx, id)
			if !ok {
				return
			}
			rec := memdev.Addr(recW)
			if tx.Load(rec+resAvail) != tx.Load(rec+resTotal) {
				return // outstanding reservations point at this record
			}
			w.tables[rel].Delete(tx, id)
			tx.Free(rec)
		})
	default: // re-price / resize
		id := w.hotID(th)
		grow := r.Intn(2) == 0
		th.Atomic(func(tx *core.Tx) {
			recW, ok := w.tables[rel].Lookup(tx, id)
			if !ok {
				return
			}
			rec := memdev.Addr(recW)
			if grow {
				tx.Store(rec+resTotal, tx.Load(rec+resTotal)+10)
				tx.Store(rec+resAvail, tx.Load(rec+resAvail)+10)
			} else if tx.Load(rec+resAvail) >= 10 {
				tx.Store(rec+resTotal, tx.Load(rec+resTotal)-10)
				tx.Store(rec+resAvail, tx.Load(rec+resAvail)-10)
			}
		})
	}
}

// CheckInvariant verifies available <= total for every item.
func (w *Workload) CheckInvariant(th *core.Thread) bool {
	ok := true
	th.Atomic(func(tx *core.Tx) {
		ok = true
		for rel := 0; rel < numRelations; rel++ {
			for id := uint64(0); id < uint64(w.cfg.Relations); id++ {
				recW, found := w.tables[rel].Lookup(tx, id)
				if !found {
					continue
				}
				rec := memdev.Addr(recW)
				if tx.Load(rec+resAvail) > tx.Load(rec+resTotal) {
					ok = false
				}
			}
		}
	})
	return ok
}
