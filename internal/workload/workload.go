// Package workload defines the interface the benchmark harness uses
// to drive the paper's applications (TATP, B+Tree microbenchmarks,
// TPCC, Vacation, memcached-style KV) against the PTM.
package workload

import "goptm/internal/core"

// Workload is one benchmark application.
//
// Setup runs once on a setup thread to build and populate the data
// structures (its transactions are excluded from measurement). Step
// runs one operation of the workload's mix — typically exactly one
// transaction — on a worker thread; the harness calls it in a loop
// until the measurement interval ends.
type Workload interface {
	Name() string
	Setup(tm *core.TM, th *core.Thread)
	Step(th *core.Thread)
}

// HeapSizer is implemented by workloads that need a specific heap
// size; the harness consults it when building the TM config.
type HeapSizer interface {
	HeapWords() uint64
}
