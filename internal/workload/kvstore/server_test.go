package kvstore

import (
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
)

func serviceTM(t testing.TB, w *Workload, threads int) *core.TM {
	t.Helper()
	tm, err := core.New(core.Config{
		Algo: core.OrecLazy, Medium: core.MediumNVM, Domain: durability.EADR,
		Threads: threads, HeapWords: w.HeapWords(), OrecSize: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestServiceDefaults(t *testing.T) {
	s := NewService(New(Config{Items: 16}), ServiceConfig{})
	if s.cfg.Clients != 4 || s.cfg.QueueDepth != 256 || s.cfg.ThinkNS != 500 || s.cfg.PollNS != 200 {
		t.Fatalf("defaults: %+v", s.cfg)
	}
}

func TestQueueBounded(t *testing.T) {
	s := NewService(New(Config{Items: 16}), ServiceConfig{QueueDepth: 2, Clients: 1})
	if !s.enqueue(request{}) || !s.enqueue(request{}) {
		t.Fatal("enqueue below capacity failed")
	}
	if s.enqueue(request{}) {
		t.Fatal("enqueue above capacity succeeded")
	}
	if _, ok := s.dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	if !s.enqueue(request{}) {
		t.Fatal("enqueue after dequeue failed")
	}
}

func TestDequeueFIFO(t *testing.T) {
	s := NewService(New(Config{Items: 16}), ServiceConfig{QueueDepth: 8, Clients: 1})
	for k := uint64(0); k < 4; k++ {
		s.enqueue(request{key: k})
	}
	for k := uint64(0); k < 4; k++ {
		r, ok := s.dequeue()
		if !ok || r.key != k {
			t.Fatalf("dequeue %d = (%v, %v)", k, r.key, ok)
		}
	}
	if _, ok := s.dequeue(); ok {
		t.Fatal("dequeue from empty queue succeeded")
	}
}

func TestServeEndToEnd(t *testing.T) {
	w := New(Config{Items: 256})
	cfg := ServiceConfig{Clients: 2}
	tm := serviceTM(t, w, cfg.Clients+1)
	rps, svc := Serve(tm, w, cfg, 1_000_000)
	served, dropped, lat := svc.Results()
	if served == 0 {
		t.Fatal("server served nothing")
	}
	if rps <= 0 {
		t.Fatalf("rps = %f", rps)
	}
	if lat.Count() != served {
		t.Fatalf("latency samples %d != served %d", lat.Count(), served)
	}
	// End-to-end latency includes queueing: p50 must exceed a bare
	// memory op and stay below the full window.
	p50 := lat.Percentile(50)
	if p50 < 100 || p50 > 1_000_000 {
		t.Fatalf("p50 latency %d ns implausible", p50)
	}
	t.Logf("served=%d dropped=%d rps=%.0f lat=%s", served, dropped, rps, lat)
}

func TestServeMatchesStepThroughputRoughly(t *testing.T) {
	// With enough offered load, the client/server harness should
	// deliver the same order of magnitude as the self-driving Step
	// loop: the server thread is the bottleneck in both.
	w1 := New(Config{Items: 256})
	cfg := ServiceConfig{Clients: 4, ThinkNS: 300}
	tm1 := serviceTM(t, w1, cfg.Clients+1)
	rps, _ := Serve(tm1, w1, cfg, 1_000_000)

	w2 := New(Config{Items: 256})
	tm2 := serviceTM(t, w2, 1)
	setup := tm2.Thread(0)
	w2.Setup(tm2, setup)
	start := setup.Now()
	setup.Detach()
	th := tm2.Thread(0)
	for th.Now() < start+1_000_000 {
		w2.Step(th)
	}
	s := th.Stats()
	th.Detach()
	stepRPS := float64(s.Commits) / 1e-3 / 1e6 // commits per ms -> per s... compute directly
	stepRPS = float64(s.Commits) / (1_000_000.0 / 1e9)

	ratio := rps / stepRPS
	if ratio < 0.4 || ratio > 1.4 {
		t.Fatalf("client/server rps %.0f vs step rps %.0f (ratio %.2f) diverge too much", rps, stepRPS, ratio)
	}
}

func TestClientBackpressureCountsDrops(t *testing.T) {
	// A tiny queue with many fast clients and a slow (absent) server
	// must record drops rather than deadlock.
	w := New(Config{Items: 64})
	tm := serviceTM(t, w, 3)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	start := setup.Now()
	setup.Detach()
	svc := NewService(w, ServiceConfig{Clients: 2, QueueDepth: 4, ThinkNS: 100})
	ths := []*core.Thread{tm.Thread(1), tm.Thread(2)}
	done := make(chan struct{})
	for _, th := range ths {
		go func(th *core.Thread) {
			defer func() { done <- struct{}{} }()
			defer th.Detach()
			svc.RunClient(th, start+200_000)
		}(th)
	}
	// No server: keep a third thread alive so the barrier can advance.
	idle := tm.Thread(0)
	go func() {
		defer func() { done <- struct{}{} }()
		defer idle.Detach()
		idle.Compute(250_000)
	}()
	for i := 0; i < 3; i++ {
		<-done
	}
	_, dropped, _ := svc.Results()
	if dropped == 0 {
		t.Fatal("full queue recorded no drops")
	}
}
