package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"goptm/internal/core"
)

func newKVTM(t *testing.T) (*core.TM, KV) {
	t.Helper()
	tm := core.MustNew(core.Config{Threads: 1, HeapWords: 1 << 18})
	var kv KV
	th := tm.Thread(0)
	defer th.Detach()
	th.Atomic(func(tx *core.Tx) {
		kv = CreateKV(tx, 256)
	})
	return tm, kv
}

func TestKVSetGetDelete(t *testing.T) {
	tm, kv := newKVTM(t)
	th := tm.Thread(0)
	defer th.Detach()

	th.Atomic(func(tx *core.Tx) {
		if err := kv.Set(tx, []byte("alpha"), []byte("first value"), 7); err != nil {
			t.Fatal(err)
		}
		if err := kv.Set(tx, []byte("beta"), []byte(""), 0); err != nil {
			t.Fatal(err)
		}
	})
	th.Atomic(func(tx *core.Tx) {
		v, flags, ok := kv.Get(tx, []byte("alpha"))
		if !ok || !bytes.Equal(v, []byte("first value")) || flags != 7 {
			t.Fatalf("get alpha = %q, %d, %v", v, flags, ok)
		}
		v, _, ok = kv.Get(tx, []byte("beta"))
		if !ok || len(v) != 0 {
			t.Fatalf("get beta = %q, %v, want empty present", v, ok)
		}
		if _, _, ok := kv.Get(tx, []byte("gamma")); ok {
			t.Fatal("get gamma: phantom key")
		}
		if n := kv.Len(tx); n != 2 {
			t.Fatalf("len = %d, want 2", n)
		}
	})
	th.Atomic(func(tx *core.Tx) {
		if !kv.Delete(tx, []byte("alpha")) {
			t.Fatal("delete alpha: not found")
		}
		if kv.Delete(tx, []byte("alpha")) {
			t.Fatal("double delete succeeded")
		}
	})
	th.Atomic(func(tx *core.Tx) {
		if _, _, ok := kv.Get(tx, []byte("alpha")); ok {
			t.Fatal("alpha survived delete")
		}
		if n := kv.Len(tx); n != 1 {
			t.Fatalf("len = %d, want 1", n)
		}
	})
}

// TestKVOverwrite covers both overwrite paths: in place (fits the
// block's capacity) and reallocation (grown past it).
func TestKVOverwrite(t *testing.T) {
	tm, kv := newKVTM(t)
	th := tm.Thread(0)
	defer th.Detach()

	key := []byte("k")
	th.Atomic(func(tx *core.Tx) {
		if err := kv.Set(tx, key, []byte("12345678"), 1); err != nil {
			t.Fatal(err)
		}
	})
	th.Atomic(func(tx *core.Tx) {
		// Same word count: must overwrite in place.
		if err := kv.Set(tx, key, []byte("abc"), 2); err != nil {
			t.Fatal(err)
		}
	})
	th.Atomic(func(tx *core.Tx) {
		v, flags, ok := kv.Get(tx, key)
		if !ok || !bytes.Equal(v, []byte("abc")) || flags != 2 {
			t.Fatalf("after shrink: %q, %d, %v", v, flags, ok)
		}
		// Grow past capacity: must reallocate and still read back.
		long := bytes.Repeat([]byte("x"), 100)
		if err := kv.Set(tx, key, long, 3); err != nil {
			t.Fatal(err)
		}
		v, flags, ok = kv.Get(tx, key)
		if !ok || !bytes.Equal(v, long) || flags != 3 {
			t.Fatalf("after grow: %d bytes, %d, %v", len(v), flags, ok)
		}
	})
}

func TestKVIncr(t *testing.T) {
	tm, kv := newKVTM(t)
	th := tm.Thread(0)
	defer th.Detach()

	th.Atomic(func(tx *core.Tx) {
		if err := kv.Set(tx, []byte("n"), []byte("41"), 0); err != nil {
			t.Fatal(err)
		}
		if err := kv.Set(tx, []byte("s"), []byte("not a number"), 0); err != nil {
			t.Fatal(err)
		}
	})
	th.Atomic(func(tx *core.Tx) {
		nv, found, err := kv.Incr(tx, []byte("n"), 1)
		if err != nil || !found || nv != 42 {
			t.Fatalf("incr n = %d, %v, %v", nv, found, err)
		}
		// Grow across the capacity boundary: "99" -> "100" fits, but a
		// big delta forces more digits than the block holds.
		nv, found, err = kv.Incr(tx, []byte("n"), 99999999999999)
		if err != nil || !found || nv != 42+99999999999999 {
			t.Fatalf("big incr = %d, %v, %v", nv, found, err)
		}
		if _, found, _ := kv.Incr(tx, []byte("missing"), 1); found {
			t.Fatal("incr on missing key reported found")
		}
		if _, _, err := kv.Incr(tx, []byte("s"), 1); err == nil {
			t.Fatal("incr on non-numeric value succeeded")
		}
	})
	th.Atomic(func(tx *core.Tx) {
		v, _, ok := kv.Get(tx, []byte("n"))
		want := fmt.Sprintf("%d", 42+99999999999999)
		if !ok || string(v) != want {
			t.Fatalf("n = %q, want %q", v, want)
		}
	})
}

func TestKVKeyLimits(t *testing.T) {
	tm, kv := newKVTM(t)
	th := tm.Thread(0)
	defer th.Detach()

	th.Atomic(func(tx *core.Tx) {
		if err := kv.Set(tx, nil, []byte("v"), 0); err == nil {
			t.Fatal("empty key accepted")
		}
		long := bytes.Repeat([]byte("k"), 251)
		if err := kv.Set(tx, long, []byte("v"), 0); err == nil {
			t.Fatal("251-byte key accepted")
		}
		if err := kv.Set(tx, long[:250], []byte("v"), 0); err != nil {
			t.Fatalf("250-byte key rejected: %v", err)
		}
	})
}

// TestKVManyKeys drives enough keys through one table to exercise
// bucket chains and the in-place/realloc mix.
func TestKVManyKeys(t *testing.T) {
	tm, kv := newKVTM(t)
	th := tm.Thread(0)
	defer th.Detach()

	const n = 500
	for base := 0; base < n; base += 50 {
		th.Atomic(func(tx *core.Tx) {
			for i := base; i < base+50; i++ {
				key := fmt.Appendf(nil, "key-%d", i)
				val := fmt.Appendf(nil, "value-%d-%s", i, bytes.Repeat([]byte("p"), i%32))
				if err := kv.Set(tx, key, val, uint32(i)); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	th.Atomic(func(tx *core.Tx) {
		if got := kv.Len(tx); got != n {
			t.Fatalf("len = %d, want %d", got, n)
		}
		for i := 0; i < n; i += 17 {
			key := fmt.Appendf(nil, "key-%d", i)
			want := fmt.Appendf(nil, "value-%d-%s", i, bytes.Repeat([]byte("p"), i%32))
			v, flags, ok := kv.Get(tx, key)
			if !ok || !bytes.Equal(v, want) || flags != uint32(i) {
				t.Fatalf("key-%d = %q, %d, %v; want %q", i, v, flags, ok, want)
			}
		}
	})
}
