package kvstore

import (
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func newTM(t testing.TB, w *Workload) *core.TM {
	t.Helper()
	tm, err := core.New(core.Config{
		Algo: core.OrecLazy, Medium: core.MediumNVM, Domain: durability.ADR,
		Threads: 1, HeapWords: w.HeapWords(), OrecSize: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestGeometryMatchesPaper(t *testing.T) {
	// 128 B keys and 1 KB values (§III-A memaslap settings).
	if KeyWords*8 != 128 {
		t.Fatalf("key bytes = %d, want 128", KeyWords*8)
	}
	if ValueWords*8 != 1024 {
		t.Fatalf("value bytes = %d, want 1024", ValueWords*8)
	}
}

func TestHeapEstimateSufficient(t *testing.T) {
	// Regression test: the heap estimate must cover the allocator's
	// power-of-two size classes (a 145-word block occupies 256 words).
	for _, items := range []int{128, 1024, 4096} {
		w := New(Config{Items: items})
		tm := newTM(t, w)
		th := tm.Thread(0)
		w.Setup(tm, th) // panics on heap exhaustion if the estimate is short
		th.Detach()
	}
}

func TestSetupThenGetsHit(t *testing.T) {
	w := New(Config{Items: 256})
	tm := newTM(t, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	th := tm.Thread(0)
	defer th.Detach()
	th.Atomic(func(tx *core.Tx) {
		for _, key := range []uint64{0, 100, 255} {
			itemW, ok := w.Index().Get(tx, key)
			if !ok {
				t.Fatalf("key %d missing after setup", key)
			}
			item := memdev.Addr(itemW)
			if got := tx.Load(item + itemKeyOff); got != key {
				t.Fatalf("key word = %d, want %d", got, key)
			}
		}
	})
}

func TestSetOverwritesValue(t *testing.T) {
	w := New(Config{Items: 64})
	tm := newTM(t, w)
	th := tm.Thread(0)
	w.Setup(tm, th)
	w.set(th, 5)
	var v0, v127 uint64
	th.Atomic(func(tx *core.Tx) {
		itemW, _ := w.Index().Get(tx, 5)
		item := memdev.Addr(itemW)
		v0 = tx.Load(item + itemValOff)
		v127 = tx.Load(item + itemValOff + ValueWords - 1)
	})
	th.Detach()
	// set writes stamp+i into word i: the whole value is rewritten
	// consistently.
	if v127-v0 != ValueWords-1 {
		t.Fatalf("value not fully rewritten: words 0=%d 127=%d", v0, v127)
	}
}

func TestStepsCommit(t *testing.T) {
	w := New(Config{Items: 64})
	tm := newTM(t, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	before := tm.Commits()
	for i := 0; i < 50; i++ {
		w.Step(th)
	}
	if got := tm.Commits() - before; got != 50 {
		t.Fatalf("50 steps committed %d txns", got)
	}
}

func TestWorkingSetMonotone(t *testing.T) {
	if WorkingSetWords(100) >= WorkingSetWords(200) {
		t.Fatal("working set not monotone in items")
	}
	if w := New(Config{Items: 100}); w.Items() != 100 {
		t.Fatal("Items accessor wrong")
	}
}
