package kvstore

import (
	"fmt"

	"goptm/internal/core"
	"goptm/internal/memdev"
	"goptm/internal/pstruct/phash"
)

// This file adds the byte-string face of the store: the same
// phash-indexed persistent layout the Figure 8 workload sweeps, but
// keyed by arbitrary byte keys with variable-length values — what the
// ptmserve network service and its load simulator speak. Keys are
// indexed by their 64-bit hash; the full key is stored in the item
// block and verified on every lookup, so a hash collision degrades to
// an eviction of the previous occupant (astronomically unlikely at
// service scale) rather than a wrong answer.

// Item block layout, in words. Byte strings pack 8 bytes per word,
// little-endian, zero padded.
const (
	kvKeyLen  = 0 // key length in bytes
	kvValLen  = 1 // value length in bytes
	kvValCap  = 2 // allocated value capacity in words
	kvFlags   = 3 // memcached opaque flags
	kvHdr     = 4
	maxKeyLen = 250 // the memcached protocol limit
)

// KV is a persistent byte-string key/value table over the PTM heap.
// All methods must run inside a transaction; effects are
// failure-atomic and durable at commit like any other transactional
// write.
type KV struct {
	idx phash.Map
}

// CreateKV allocates a fresh table with the given bucket count
// (power of two) inside tx.
func CreateKV(tx *core.Tx, buckets int) KV {
	return KV{idx: phash.Create(tx, buckets)}
}

// OpenKV re-attaches to a table persisted in a heap root slot.
func OpenKV(table memdev.Addr) KV { return KV{idx: phash.Open(table)} }

// Table returns the index block address for persisting in a root slot.
func (kv KV) Table() memdev.Addr { return kv.idx.Table() }

// HashKey is FNV-1a over the key bytes: the 64-bit index key. It is
// exported so the serving layer can partition the keyspace with the
// same function the index uses (a shard owns every key it indexes).
func HashKey(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// wordsFor returns the words needed to pack n bytes.
func wordsFor(n int) uint64 { return uint64(n+7) / 8 }

// storeBytes packs b into consecutive words starting at a.
func storeBytes(tx *core.Tx, a memdev.Addr, b []byte) {
	for w := 0; w < len(b); w += 8 {
		var v uint64
		end := w + 8
		if end > len(b) {
			end = len(b)
		}
		for i := w; i < end; i++ {
			v |= uint64(b[i]) << (8 * uint(i-w))
		}
		tx.Store(a+memdev.Addr(w/8), v)
	}
}

// loadBytes unpacks n bytes from consecutive words starting at a,
// appending to dst.
func loadBytes(tx *core.Tx, a memdev.Addr, n int, dst []byte) []byte {
	for w := 0; w < n; w += 8 {
		v := tx.Load(a + memdev.Addr(w/8))
		end := w + 8
		if end > n {
			end = n
		}
		for i := w; i < end; i++ {
			dst = append(dst, byte(v>>(8*uint(i-w))))
		}
	}
	return dst
}

// keyMatches reports whether the block at item stores exactly key.
func keyMatches(tx *core.Tx, item memdev.Addr, key []byte) bool {
	if int(tx.Load(item+kvKeyLen)) != len(key) {
		return false
	}
	for w := 0; w < len(key); w += 8 {
		var v uint64
		end := w + 8
		if end > len(key) {
			end = len(key)
		}
		for i := w; i < end; i++ {
			v |= uint64(key[i]) << (8 * uint(i-w))
		}
		if tx.Load(item+kvHdr+memdev.Addr(w/8)) != v {
			return false
		}
	}
	return true
}

// lookup returns the item block for key, verifying the stored key.
func (kv KV) lookup(tx *core.Tx, key []byte) (memdev.Addr, bool) {
	w, ok := kv.idx.Get(tx, HashKey(key))
	if !ok {
		return 0, false
	}
	item := memdev.Addr(w)
	if !keyMatches(tx, item, key) {
		return 0, false
	}
	return item, true
}

// Get returns the value and flags stored under key. The returned slice
// is freshly allocated (transactional loads copy out of the heap).
func (kv KV) Get(tx *core.Tx, key []byte) (val []byte, flags uint32, ok bool) {
	item, ok := kv.lookup(tx, key)
	if !ok {
		return nil, 0, false
	}
	n := int(tx.Load(item + kvValLen))
	val = loadBytes(tx, item+kvHdr+memdev.Addr(wordsFor(len(key))), n, make([]byte, 0, n))
	return val, uint32(tx.Load(item + kvFlags)), true
}

// Set stores (key, val, flags), replacing any existing binding. The
// value is rewritten in place when it fits the block's capacity;
// otherwise a new block is allocated and the old one freed. Keys are
// limited to 250 bytes (the memcached protocol bound).
func (kv KV) Set(tx *core.Tx, key, val []byte, flags uint32) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("kvstore: key length %d out of range [1,%d]", len(key), maxKeyLen)
	}
	h := HashKey(key)
	kw := wordsFor(len(key))
	if w, found := kv.idx.Get(tx, h); found {
		item := memdev.Addr(w)
		if keyMatches(tx, item, key) && wordsFor(len(val)) <= tx.Load(item+kvValCap) {
			// In-place overwrite: value fits the allocated capacity.
			tx.Store(item+kvValLen, uint64(len(val)))
			tx.Store(item+kvFlags, uint64(flags))
			storeBytes(tx, item+kvHdr+memdev.Addr(kw), val)
			return nil
		}
		// Capacity exceeded — or a hash collision, which evicts the
		// previous occupant (the full stored key no longer matches, so
		// lookups of the old key will miss).
		tx.Free(item)
	}
	vcap := wordsFor(len(val))
	item := tx.Alloc(kvHdr + kw + vcap)
	tx.Store(item+kvKeyLen, uint64(len(key)))
	tx.Store(item+kvValLen, uint64(len(val)))
	tx.Store(item+kvValCap, vcap)
	tx.Store(item+kvFlags, uint64(flags))
	storeBytes(tx, item+kvHdr, key)
	storeBytes(tx, item+kvHdr+memdev.Addr(kw), val)
	kv.idx.Put(tx, h, uint64(item))
	return nil
}

// Delete removes key and reports whether it was present.
func (kv KV) Delete(tx *core.Tx, key []byte) bool {
	item, ok := kv.lookup(tx, key)
	if !ok {
		return false
	}
	kv.idx.Delete(tx, HashKey(key))
	tx.Free(item)
	return true
}

// Incr interprets the stored value as an ASCII decimal uint64, adds
// delta (wrapping, as memcached does), stores the new decimal back,
// and returns the new value. found reports whether the key exists;
// err is non-nil when the stored value is not a decimal number.
func (kv KV) Incr(tx *core.Tx, key []byte, delta uint64) (newVal uint64, found bool, err error) {
	item, ok := kv.lookup(tx, key)
	if !ok {
		return 0, false, nil
	}
	n := int(tx.Load(item + kvValLen))
	kw := wordsFor(len(key))
	old := loadBytes(tx, item+kvHdr+memdev.Addr(kw), n, make([]byte, 0, n))
	var cur uint64
	if len(old) == 0 || len(old) > 20 {
		return 0, true, fmt.Errorf("kvstore: value is not a number")
	}
	for _, c := range old {
		if c < '0' || c > '9' {
			return 0, true, fmt.Errorf("kvstore: value is not a number")
		}
		cur = cur*10 + uint64(c-'0')
	}
	cur += delta
	buf := fmt.Appendf(nil, "%d", cur)
	if wordsFor(len(buf)) <= tx.Load(item+kvValCap) {
		tx.Store(item+kvValLen, uint64(len(buf)))
		storeBytes(tx, item+kvHdr+memdev.Addr(kw), buf)
		return cur, true, nil
	}
	flags := uint32(tx.Load(item + kvFlags))
	if err := kv.Set(tx, key, buf, flags); err != nil {
		return 0, true, err
	}
	return cur, true, nil
}

// Len counts the stored keys (verification helper).
func (kv KV) Len(tx *core.Tx) int { return kv.idx.Len(tx) }
