package kvstore

import (
	"sync"

	"goptm/internal/core"
	"goptm/internal/stats"
)

// This file models the paper's actual Figure 8 setup: "a set of
// client threads, running on a separate NUMA socket, issue an equal
// mix of get and set commands" (memaslap driving memcached). Client
// threads generate requests into a bounded queue; the single server
// thread drains it, executing each request as a PTM transaction. The
// coupling runs in virtual time, so request latency (queueing +
// service) is measured in the same deterministic nanoseconds as
// throughput.

// request is one queued client command.
type request struct {
	key   uint64
	isSet bool
	enqVT int64
}

// ServiceConfig parameterizes the client/server harness.
type ServiceConfig struct {
	Clients    int   // request generators
	QueueDepth int   // bounded request queue; 0 selects 256
	ThinkNS    int64 // client think time between requests; 0 selects 500
	PollNS     int64 // server poll quantum when idle; 0 selects 200
}

// Service couples client generators with the serving thread.
type Service struct {
	w   *Workload
	cfg ServiceConfig

	mu    sync.Mutex
	queue []request

	servedMu sync.Mutex
	latency  stats.Histogram
	served   int64
	dropped  int64
}

// NewService wraps a populated Workload for client/server driving.
func NewService(w *Workload, cfg ServiceConfig) *Service {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.ThinkNS <= 0 {
		cfg.ThinkNS = 500
	}
	if cfg.PollNS <= 0 {
		cfg.PollNS = 200
	}
	return &Service{w: w, cfg: cfg}
}

// enqueue offers a request; it reports false when the queue is full
// (the client backs off, as memaslap does when the server falls
// behind).
func (s *Service) enqueue(r request) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) >= s.cfg.QueueDepth {
		return false
	}
	s.queue = append(s.queue, r)
	return true
}

// dequeue pops the oldest request.
func (s *Service) dequeue() (request, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return request{}, false
	}
	r := s.queue[0]
	s.queue = s.queue[1:]
	return r, true
}

// RunClient generates the 50/50 get/set mix on th until virtual time
// `until`. Clients run on their own simulated threads (the paper's
// second socket) and perform no transactions themselves.
func (s *Service) RunClient(th *core.Thread, until int64) {
	r := th.Rand()
	for th.Now() < until {
		req := request{
			key:   r.Uint64n(uint64(s.w.cfg.Items)),
			isSet: r.Intn(2) == 1,
			enqVT: th.Now(),
		}
		if !s.enqueue(req) {
			s.servedMu.Lock()
			s.dropped++
			s.servedMu.Unlock()
		}
		th.Compute(s.cfg.ThinkNS)
	}
}

// RunServer drains the queue on th until virtual time `until`,
// executing each request transactionally and recording its
// end-to-end latency.
func (s *Service) RunServer(th *core.Thread, until int64) {
	for th.Now() < until {
		req, ok := s.dequeue()
		if !ok {
			th.Compute(s.cfg.PollNS)
			continue
		}
		if req.isSet {
			s.w.set(th, req.key)
		} else {
			s.w.get(th, req.key)
		}
		s.servedMu.Lock()
		s.latency.Record(th.Now() - req.enqVT)
		s.served++
		s.servedMu.Unlock()
	}
}

// Results reports served requests, drops, and the end-to-end latency
// distribution.
func (s *Service) Results() (served, dropped int64, latency *stats.Histogram) {
	s.servedMu.Lock()
	defer s.servedMu.Unlock()
	return s.served, s.dropped, &s.latency
}

// Serve is the all-in-one driver: it populates the store, spawns the
// clients and the server on tm, runs for measureNS of virtual time,
// and returns requests per virtual second. tm must have been built
// with Threads = cfg.Clients + 1.
func Serve(tm *core.TM, w *Workload, cfg ServiceConfig, measureNS int64) (rps float64, svc *Service) {
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	start := setup.Now()
	setup.Detach()
	until := start + measureNS

	svc = NewService(w, cfg)
	threads := make([]*core.Thread, cfg.Clients+1)
	for i := range threads {
		threads[i] = tm.Thread(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer threads[0].Detach()
		svc.RunServer(threads[0], until)
	}()
	for c := 1; c <= cfg.Clients; c++ {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			defer th.Detach()
			svc.RunClient(th, until)
		}(threads[c])
	}
	wg.Wait()
	served, _, _ := svc.Results()
	return float64(served) / (float64(measureNS) / 1e9), svc
}
