// Package kvstore implements the memcached-style key/value workload
// of §IV-E: a persistent hash-indexed item store serving a 50/50
// get/set mix with 128 B keys and 1 KB values, driven with uniformly
// random keys (deliberately poor locality) by a single worker thread.
// The working-set sweep of Figure 8 varies the item count so the
// resident set crosses the L3 and then the DRAM page-cache capacity.
package kvstore

import (
	"goptm/internal/core"
	"goptm/internal/memdev"
	"goptm/internal/pstruct/phash"
)

// Item geometry, matching the paper's memaslap settings: 128 B keys
// (16 words) and 1 KB values (128 words).
const (
	KeyWords   = 16
	ValueWords = 128

	itemKeyOff = 0
	itemValOff = itemKeyOff + KeyWords
	itemWords  = KeyWords + ValueWords
)

// Config parameterizes the store.
type Config struct {
	Items   int // resident items; drives the working-set size
	Buckets int // 0 selects Items rounded to a power of two
}

// blockWords is the allocator size class an item block occupies
// (header + payload rounded to the next power of two).
const blockWords = 256

// WorkingSetWords reports the approximate working set in words for a
// given item count (items plus index nodes).
func WorkingSetWords(items int) uint64 {
	return uint64(items) * (itemWords + 8)
}

// Workload drives the store.
type Workload struct {
	cfg   Config
	index phash.Map
}

// New returns a kvstore workload holding items items.
func New(cfg Config) *Workload {
	if cfg.Items <= 0 {
		cfg.Items = 4096
	}
	if cfg.Buckets <= 0 {
		b := 1
		for b < cfg.Items {
			b <<= 1
		}
		cfg.Buckets = b
	}
	return &Workload{cfg: cfg}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "memcached" }

// HeapWords sizes the heap for all items plus index and headroom,
// accounting for the allocator's power-of-two size classes.
func (w *Workload) HeapWords() uint64 {
	return uint64(w.cfg.Items)*(blockWords+8) + uint64(2*w.cfg.Buckets) + (1 << 18)
}

// Setup populates every item so gets always hit (the paper's sweep
// measures memory behaviour, not miss handling).
func (w *Workload) Setup(tm *core.TM, th *core.Thread) {
	th.Atomic(func(tx *core.Tx) {
		w.index = phash.Create(tx, w.cfg.Buckets)
	})
	for it := 0; it < w.cfg.Items; it++ {
		key := uint64(it)
		th.Atomic(func(tx *core.Tx) {
			item := tx.Alloc(itemWords)
			for kw := 0; kw < KeyWords; kw++ {
				tx.Store(item+itemKeyOff+memdev.Addr(kw), key^uint64(kw))
			}
			for vw := 0; vw < ValueWords; vw += 8 {
				// Populate sparsely: one word per line establishes the
				// value's footprint without 128 setup log entries.
				tx.Store(item+itemValOff+memdev.Addr(vw), key+uint64(vw))
			}
			w.index.Put(tx, key, uint64(item))
		})
	}
	tm.SetRoot(th, 0, w.index.Table())
}

// Step serves one request: 50/50 get/set on a uniformly random key.
func (w *Workload) Step(th *core.Thread) {
	r := th.Rand()
	key := r.Uint64n(uint64(w.cfg.Items))
	if r.Intn(2) == 0 {
		w.get(th, key)
	} else {
		w.set(th, key)
	}
}

// get reads the full key (verification, as memcached must compare
// keys) and value.
func (w *Workload) get(th *core.Thread, key uint64) {
	th.Atomic(func(tx *core.Tx) {
		itemW, ok := w.index.Get(tx, key)
		if !ok {
			return
		}
		item := memdev.Addr(itemW)
		var sink uint64
		for kw := 0; kw < KeyWords; kw++ {
			sink ^= tx.Load(item + itemKeyOff + memdev.Addr(kw))
		}
		for vw := 0; vw < ValueWords; vw++ {
			sink ^= tx.Load(item + itemValOff + memdev.Addr(vw))
		}
		_ = sink
	})
}

// set overwrites the full value in place.
func (w *Workload) set(th *core.Thread, key uint64) {
	r := th.Rand()
	stamp := r.Uint64()
	th.Atomic(func(tx *core.Tx) {
		itemW, ok := w.index.Get(tx, key)
		if !ok {
			return
		}
		item := memdev.Addr(itemW)
		for vw := 0; vw < ValueWords; vw++ {
			tx.Store(item+itemValOff+memdev.Addr(vw), stamp+uint64(vw))
		}
	})
}

// Index exposes the item index for verification.
func (w *Workload) Index() phash.Map { return w.index }

// Items reports the configured item count.
func (w *Workload) Items() int { return w.cfg.Items }
