package btreebench

import (
	"sync"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
)

func newTM(t testing.TB, threads int, w *Workload) *core.TM {
	t.Helper()
	tm, err := core.New(core.Config{
		Algo: core.OrecLazy, Medium: core.MediumNVM, Domain: durability.ADR,
		Threads: threads, HeapWords: w.HeapWords(), OrecSize: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestNames(t *testing.T) {
	if New(Config{Mode: InsertOnly}).Name() != "B+Tree insert-only" {
		t.Fatal("insert-only name")
	}
	if New(Config{Mode: Mixed}).Name() != "B+Tree mixed" {
		t.Fatal("mixed name")
	}
}

func TestInsertOnlyUniqueKeys(t *testing.T) {
	// Concurrent insert-only steps must produce exactly one tree key
	// per step: the global sequence hands out unique scrambled keys.
	w := New(Config{Mode: InsertOnly})
	tm := newTM(t, 4, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	const per = 200
	ths := make([]*core.Thread, 4)
	for i := range ths {
		ths[i] = tm.Thread(i)
	}
	var wg sync.WaitGroup
	for _, th := range ths {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			defer th.Detach()
			for i := 0; i < per; i++ {
				w.Step(th)
			}
		}(th)
	}
	wg.Wait()
	check := tm.Thread(0)
	defer check.Detach()
	check.Atomic(func(tx *core.Tx) {
		if n := w.Tree().Count(tx); n != 4*per {
			t.Fatalf("tree holds %d keys, want %d (duplicate or lost insert)", n, 4*per)
		}
	})
}

func TestScrambleIsInjectiveSample(t *testing.T) {
	seen := make(map[uint64]bool, 100000)
	for i := uint64(1); i <= 100000; i++ {
		k := scramble(i)
		if seen[k] {
			t.Fatalf("scramble collision at %d", i)
		}
		seen[k] = true
	}
}

func TestMixedPrefills(t *testing.T) {
	w := New(Config{Mode: Mixed, KeyRange: 1 << 10, Prefill: 300})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	th.Atomic(func(tx *core.Tx) {
		n := w.Tree().Count(tx)
		// Prefill draws random keys; duplicates collapse, so expect
		// most-but-not-necessarily-all of 300.
		if n < 200 || n > 300 {
			t.Fatalf("prefill produced %d keys, want ~300", n)
		}
	})
}

func TestMixedStepsRun(t *testing.T) {
	w := New(Config{Mode: Mixed, KeyRange: 1 << 10, Prefill: 100})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	before := tm.Commits()
	for i := 0; i < 300; i++ {
		w.Step(th)
	}
	if tm.Commits()-before != 300 {
		t.Fatal("mixed steps did not commit one txn each")
	}
}

func TestDefaultsApplied(t *testing.T) {
	w := New(Config{Mode: Mixed})
	if w.cfg.KeyRange != 1<<18 || w.cfg.Prefill != 1<<17 {
		t.Fatalf("defaults: %+v", w.cfg)
	}
}
