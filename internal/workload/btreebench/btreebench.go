// Package btreebench implements the two B+Tree microbenchmarks from
// DudeTM that the paper uses (§III-A):
//
//   - insert-only: threads insert unique keys into an initially empty
//     tree (the paper performs 2M insertions; the harness scales the
//     count — see EXPERIMENTS.md).
//   - mixed: an equal mix of inserts, lookups, and removes over a
//     bounded key range (the paper uses 2^21), against a pre-populated
//     tree.
package btreebench

import (
	"sync/atomic"

	"goptm/internal/core"
	"goptm/internal/pstruct/btree"
)

// Mode selects the microbenchmark variant.
type Mode int

// The two variants.
const (
	InsertOnly Mode = iota
	Mixed
)

// Config parameterizes the benchmark.
type Config struct {
	Mode     Mode
	KeyRange uint64 // mixed: key range (0 selects 1<<18)
	Prefill  int    // mixed: initial keys (0 selects KeyRange/2)
}

// Workload drives a persistent B+Tree.
type Workload struct {
	cfg  Config
	tree btree.Tree
	// Insert-only: a global sequence hands every thread unique keys,
	// scrambled so inserts spread across the tree.
	seq atomic.Uint64
}

// New returns a B+Tree microbenchmark.
func New(cfg Config) *Workload {
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 1 << 18
	}
	if cfg.Prefill == 0 {
		cfg.Prefill = int(cfg.KeyRange / 2)
	}
	return &Workload{cfg: cfg}
}

// Name implements workload.Workload.
func (w *Workload) Name() string {
	if w.cfg.Mode == InsertOnly {
		return "B+Tree insert-only"
	}
	return "B+Tree mixed"
}

// HeapWords sizes the heap for the expected node count plus headroom
// for insert-only growth.
func (w *Workload) HeapWords() uint64 {
	if w.cfg.Mode == InsertOnly {
		return 1 << 22
	}
	// ~KeyRange/8 leaves of a 32-word class plus internals.
	return w.cfg.KeyRange*8 + (1 << 18)
}

// Setup creates (and for mixed mode, pre-populates) the tree.
func (w *Workload) Setup(tm *core.TM, th *core.Thread) {
	th.Atomic(func(tx *core.Tx) { w.tree = btree.Create(tx) })
	if w.cfg.Mode == Mixed {
		r := th.Rand()
		const batch = 16
		for done := 0; done < w.cfg.Prefill; done += batch {
			n := min(batch, w.cfg.Prefill-done)
			th.Atomic(func(tx *core.Tx) {
				for i := 0; i < n; i++ {
					k := r.Uint64n(w.cfg.KeyRange)
					w.tree.Insert(tx, k, k)
				}
			})
		}
	}
	tm.SetRoot(th, 0, w.tree.Holder())
}

// scramble spreads sequential ids across the key space so insert-only
// does not degenerate into rightmost-leaf contention.
func scramble(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// Step runs one operation.
func (w *Workload) Step(th *core.Thread) {
	if w.cfg.Mode == InsertOnly {
		k := scramble(w.seq.Add(1))
		th.Atomic(func(tx *core.Tx) { w.tree.Insert(tx, k, k) })
		return
	}
	r := th.Rand()
	k := r.Uint64n(w.cfg.KeyRange)
	switch r.Intn(3) {
	case 0:
		th.Atomic(func(tx *core.Tx) { w.tree.Insert(tx, k, k) })
	case 1:
		th.Atomic(func(tx *core.Tx) { w.tree.Lookup(tx, k) })
	default:
		th.Atomic(func(tx *core.Tx) { w.tree.Delete(tx, k) })
	}
}

// Tree exposes the tree for verification in tests.
func (w *Workload) Tree() btree.Tree { return w.tree }
