// Package tpcc implements the write-only TPC-C configuration the
// paper takes from DudeTM: a 50/50 mix of NewOrder and Payment
// transactions (no read-only queries), with the row indexes stored in
// either a persistent B+Tree or a persistent Hash Table — the two
// configurations of Figures 3 and 6 and of Tables I and II.
package tpcc

import (
	"goptm/internal/core"
	"goptm/internal/memdev"
	"goptm/internal/pstruct/btree"
	"goptm/internal/pstruct/phash"
)

// IndexKind selects the paper's two TPCC configurations.
type IndexKind int

// Index kinds.
const (
	BTreeIndex IndexKind = iota
	HashIndex
)

// String names the configuration as the paper's figures do.
func (k IndexKind) String() string {
	if k == BTreeIndex {
		return "B+Tree"
	}
	return "Hash Table"
}

// Index abstracts the two index structures.
type Index interface {
	Put(tx *core.Tx, key, val uint64) bool
	Get(tx *core.Tx, key uint64) (uint64, bool)
}

type btreeIndex struct{ t btree.Tree }

func (b btreeIndex) Put(tx *core.Tx, k, v uint64) bool        { return b.t.Insert(tx, k, v) }
func (b btreeIndex) Get(tx *core.Tx, k uint64) (uint64, bool) { return b.t.Lookup(tx, k) }

type hashIndex struct{ m phash.Map }

func (h hashIndex) Put(tx *core.Tx, k, v uint64) bool        { return h.m.Put(tx, k, v) }
func (h hashIndex) Get(tx *core.Tx, k uint64) (uint64, bool) { return h.m.Get(tx, k) }

// Record layouts (words).
const (
	whYTD   = 0
	whWords = 8

	diNextOID   = 0
	diYTD       = 1
	diNextDeliv = 2
	diWords     = 8

	cuBalance = 0
	cuYTDPay  = 1
	cuWords   = 8

	stQty    = 0
	stYTD    = 1
	stOrders = 2
	stWords  = 8

	orOID       = 0
	orCID       = 1
	orCnt       = 2
	orDelivered = 3
	orWords     = 8
)

// Config parameterizes the benchmark.
type Config struct {
	Kind          IndexKind
	Warehouses    int // 0 scales with the thread count (TPC-C style), min 4
	Districts     int // per warehouse; 0 selects 10
	CustomersPerD int // 0 selects 64
	Items         int // per warehouse; 0 selects 1024
	MaxOrderLines int // 0 selects 15
	// FullMix runs the four-transaction TPC-C mix (NewOrder, Payment,
	// Delivery, OrderStatus) instead of the paper's write-only 50/50
	// NewOrder/Payment configuration.
	FullMix bool
}

// Workload drives the TPCC mix.
type Workload struct {
	cfg        Config
	warehouses []memdev.Addr // record blocks
	districts  []memdev.Addr // w*Districts + d
	stock      Index
	customers  Index
	orders     Index
}

// New returns a TPCC workload. If cfg.Warehouses is zero it is fixed
// at Setup time to the TM's thread count (one home warehouse per
// terminal, as TPC-C sizes its runs), with a minimum of 4.
func New(cfg Config) *Workload {
	if cfg.Districts <= 0 {
		cfg.Districts = 10
	}
	if cfg.CustomersPerD <= 0 {
		cfg.CustomersPerD = 64
	}
	if cfg.Items <= 0 {
		cfg.Items = 1024
	}
	if cfg.MaxOrderLines <= 0 {
		cfg.MaxOrderLines = 15 // TPC-C order lines are 5..15
	}
	return &Workload{cfg: cfg}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "TPCC (" + w.cfg.Kind.String() + ")" }

// HeapWords sizes the heap: static rows plus room for order inserts.
// When Warehouses scales with threads it is unknown until Setup, so
// size for the 32-thread maximum.
func (w *Workload) HeapWords() uint64 {
	whs := w.cfg.Warehouses
	if whs <= 0 {
		whs = 32
	}
	static := uint64(whs) * uint64(16+w.cfg.Districts*16+
		w.cfg.Districts*w.cfg.CustomersPerD*24+w.cfg.Items*24)
	return static + (1 << 22) // order growth + index nodes
}

func (w *Workload) stockKey(wh, item int) uint64 {
	return uint64(wh)<<32 | uint64(item)
}

func (w *Workload) custKey(wh, d, c int) uint64 {
	return uint64(wh)<<40 | uint64(d)<<24 | uint64(c)
}

func (w *Workload) orderKey(wh, d int, oid uint64) uint64 {
	return uint64(wh)<<48 | uint64(d)<<40 | oid
}

func (w *Workload) newIndex(tx *core.Tx, sizeHint int) Index {
	if w.cfg.Kind == BTreeIndex {
		return btreeIndex{t: btree.Create(tx)}
	}
	b := 1
	for b < sizeHint {
		b <<= 1
	}
	return hashIndex{m: phash.Create(tx, b)}
}

// Setup creates and populates all tables and indexes.
func (w *Workload) Setup(tm *core.TM, th *core.Thread) {
	if w.cfg.Warehouses <= 0 {
		w.cfg.Warehouses = tm.Config().Threads
		if w.cfg.Warehouses < 4 {
			w.cfg.Warehouses = 4
		}
	}
	cfg := w.cfg
	th.Atomic(func(tx *core.Tx) {
		w.stock = w.newIndex(tx, cfg.Warehouses*cfg.Items)
		w.customers = w.newIndex(tx, cfg.Warehouses*cfg.Districts*cfg.CustomersPerD)
		w.orders = w.newIndex(tx, 1<<16)
	})
	w.warehouses = make([]memdev.Addr, cfg.Warehouses)
	w.districts = make([]memdev.Addr, cfg.Warehouses*cfg.Districts)
	for wh := 0; wh < cfg.Warehouses; wh++ {
		wh := wh
		th.Atomic(func(tx *core.Tx) {
			rec := tx.Alloc(whWords)
			tx.Store(rec+whYTD, 0)
			w.warehouses[wh] = rec
			for d := 0; d < cfg.Districts; d++ {
				dr := tx.Alloc(diWords)
				tx.Store(dr+diNextOID, 1)
				tx.Store(dr+diYTD, 0)
				tx.Store(dr+diNextDeliv, 1)
				w.districts[wh*cfg.Districts+d] = dr
			}
		})
		for d := 0; d < cfg.Districts; d++ {
			d := d
			const batch = 16
			for c0 := 0; c0 < cfg.CustomersPerD; c0 += batch {
				lo, hi := c0, min(c0+batch, cfg.CustomersPerD)
				th.Atomic(func(tx *core.Tx) {
					for c := lo; c < hi; c++ {
						rec := tx.Alloc(cuWords)
						tx.Store(rec+cuBalance, 0)
						tx.Store(rec+cuYTDPay, 0)
						w.customers.Put(tx, w.custKey(wh, d, c), uint64(rec))
					}
				})
			}
		}
		const batch = 16
		for i0 := 0; i0 < cfg.Items; i0 += batch {
			lo, hi := i0, min(i0+batch, cfg.Items)
			th.Atomic(func(tx *core.Tx) {
				for i := lo; i < hi; i++ {
					rec := tx.Alloc(stWords)
					tx.Store(rec+stQty, 100)
					tx.Store(rec+stYTD, 0)
					tx.Store(rec+stOrders, 0)
					w.stock.Put(tx, w.stockKey(wh, i), uint64(rec))
				}
			})
		}
	}
}

// Step runs one transaction of the write-only 50/50 mix. Per the
// TPC-C specification each terminal (thread) is bound to a home
// warehouse; a small fraction of transactions touch a remote one.
func (w *Workload) Step(th *core.Thread) {
	r := th.Rand()
	wh := th.TID() % w.cfg.Warehouses
	if r.Intn(100) < 10 {
		wh = r.Intn(w.cfg.Warehouses)
	}
	d := r.Intn(w.cfg.Districts)
	if w.cfg.FullMix {
		switch p := r.Intn(100); {
		case p < 44:
			w.newOrder(th, wh, d)
		case p < 88:
			w.payment(th, wh, d)
		case p < 93:
			w.delivery(th, wh)
		default:
			w.orderStatus(th, wh, d)
		}
		return
	}
	if r.Intn(2) == 0 {
		w.newOrder(th, wh, d)
	} else {
		w.payment(th, wh, d)
	}
}

// delivery processes the oldest undelivered order of each district of
// a warehouse (the TPC-C deferred-delivery batch).
func (w *Workload) delivery(th *core.Thread, wh int) {
	th.Atomic(func(tx *core.Tx) {
		for d := 0; d < w.cfg.Districts; d++ {
			dr := w.districts[wh*w.cfg.Districts+d]
			oid := tx.Load(dr + diNextDeliv)
			if oid >= tx.Load(dr+diNextOID) {
				continue // nothing undelivered in this district
			}
			orderW, ok := w.orders.Get(tx, w.orderKey(wh, d, oid))
			if ok {
				order := memdev.Addr(orderW)
				tx.Store(order+orDelivered, 1)
				cid := tx.Load(order + orCID)
				if custW, ok := w.customers.Get(tx, w.custKey(wh, d, int(cid))); ok {
					cust := memdev.Addr(custW)
					tx.Store(cust+cuBalance, tx.Load(cust+cuBalance)+10)
				}
			}
			tx.Store(dr+diNextDeliv, oid+1)
		}
	})
}

// orderStatus is TPC-C's read-only query: a customer's balance and
// the status of a recent order in their district.
func (w *Workload) orderStatus(th *core.Thread, wh, d int) {
	r := th.Rand()
	cid := r.Intn(w.cfg.CustomersPerD)
	th.Atomic(func(tx *core.Tx) {
		custW, ok := w.customers.Get(tx, w.custKey(wh, d, cid))
		if !ok {
			return
		}
		cust := memdev.Addr(custW)
		_ = tx.Load(cust + cuBalance)
		_ = tx.Load(cust + cuYTDPay)
		dr := w.districts[wh*w.cfg.Districts+d]
		next := tx.Load(dr + diNextOID)
		if next <= 1 {
			return
		}
		oid := 1 + r.Uint64n(next-1)
		if orderW, ok := w.orders.Get(tx, w.orderKey(wh, d, oid)); ok {
			order := memdev.Addr(orderW)
			_ = tx.Load(order + orCnt)
			_ = tx.Load(order + orDelivered)
		}
	})
}

// newOrder claims the district's next order id, updates stock for
// each order line, and inserts the order row.
func (w *Workload) newOrder(th *core.Thread, wh, d int) {
	r := th.Rand()
	nLines := 5 + r.Intn(w.cfg.MaxOrderLines-4)
	items := make([]int, nLines)
	for i := range items {
		items[i] = r.Intn(w.cfg.Items)
	}
	cid := r.Intn(w.cfg.CustomersPerD)
	dr := w.districts[wh*w.cfg.Districts+d]
	th.Atomic(func(tx *core.Tx) {
		oid := tx.Load(dr + diNextOID)
		tx.Store(dr+diNextOID, oid+1)
		for _, item := range items {
			recW, ok := w.stock.Get(tx, w.stockKey(wh, item))
			if !ok {
				continue
			}
			rec := memdev.Addr(recW)
			qty := tx.Load(rec + stQty)
			if qty < 10 {
				qty += 91
			}
			tx.Store(rec+stQty, qty-1)
			tx.Store(rec+stYTD, tx.Load(rec+stYTD)+1)
			tx.Store(rec+stOrders, tx.Load(rec+stOrders)+1)
		}
		order := tx.Alloc(orWords)
		tx.Store(order+orOID, oid)
		tx.Store(order+orCID, uint64(cid))
		tx.Store(order+orCnt, uint64(nLines))
		w.orders.Put(tx, w.orderKey(wh, d, oid), uint64(order))
	})
}

// payment applies a payment to warehouse, district, and customer.
func (w *Workload) payment(th *core.Thread, wh, d int) {
	r := th.Rand()
	cid := r.Intn(w.cfg.CustomersPerD)
	amt := uint64(1 + r.Intn(5000))
	wr := w.warehouses[wh]
	dr := w.districts[wh*w.cfg.Districts+d]
	th.Atomic(func(tx *core.Tx) {
		tx.Store(wr+whYTD, tx.Load(wr+whYTD)+amt)
		tx.Store(dr+diYTD, tx.Load(dr+diYTD)+amt)
		recW, ok := w.customers.Get(tx, w.custKey(wh, d, cid))
		if !ok {
			return
		}
		rec := memdev.Addr(recW)
		tx.Store(rec+cuBalance, tx.Load(rec+cuBalance)-amt)
		tx.Store(rec+cuYTDPay, tx.Load(rec+cuYTDPay)+amt)
	})
}

// Invariant checks for tests: warehouse YTD equals the sum of its
// districts' YTDs (payments update both atomically).
func (w *Workload) CheckYTDInvariant(th *core.Thread) bool {
	ok := true
	th.Atomic(func(tx *core.Tx) {
		ok = true
		for wh := 0; wh < w.cfg.Warehouses; wh++ {
			var dsum uint64
			for d := 0; d < w.cfg.Districts; d++ {
				dsum += tx.Load(w.districts[wh*w.cfg.Districts+d] + diYTD)
			}
			if dsum != tx.Load(w.warehouses[wh]+whYTD) {
				ok = false
			}
		}
	})
	return ok
}

// Orders exposes the order index for verification.
func (w *Workload) Orders() Index { return w.orders }

// Config returns the workload configuration (after defaulting).
func (w *Workload) Config() Config { return w.cfg }
