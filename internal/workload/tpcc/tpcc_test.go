package tpcc

import (
	"sync"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func newTM(t testing.TB, threads int, w *Workload) *core.TM {
	t.Helper()
	tm, err := core.New(core.Config{
		Algo: core.OrecLazy, Medium: core.MediumNVM, Domain: durability.ADR,
		Threads: threads, HeapWords: w.HeapWords(), OrecSize: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestDefaultsAndNames(t *testing.T) {
	w := New(Config{Kind: HashIndex})
	if w.Name() != "TPCC (Hash Table)" {
		t.Fatalf("name = %q", w.Name())
	}
	if New(Config{Kind: BTreeIndex}).Name() != "TPCC (B+Tree)" {
		t.Fatal("btree name wrong")
	}
	cfg := w.Config()
	if cfg.Districts != 10 || cfg.Items != 1024 || cfg.CustomersPerD != 64 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestWarehousesScaleWithThreads(t *testing.T) {
	w := New(Config{Kind: HashIndex})
	tm := newTM(t, 8, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	if got := w.Config().Warehouses; got != 8 {
		t.Fatalf("warehouses = %d, want 8 (thread count)", got)
	}

	w2 := New(Config{Kind: HashIndex})
	tm2 := newTM(t, 1, w2)
	th2 := tm2.Thread(0)
	defer th2.Detach()
	w2.Setup(tm2, th2)
	if got := w2.Config().Warehouses; got != 4 {
		t.Fatalf("warehouses = %d, want minimum 4", got)
	}
}

func TestKeysDisjoint(t *testing.T) {
	w := New(Config{Kind: HashIndex, Warehouses: 4})
	if w.stockKey(1, 5) == w.stockKey(2, 5) || w.stockKey(1, 5) == w.stockKey(1, 6) {
		t.Fatal("stock keys collide")
	}
	if w.custKey(1, 2, 3) == w.custKey(1, 3, 2) {
		t.Fatal("customer keys collide")
	}
	if w.orderKey(1, 2, 3) == w.orderKey(1, 3, 2) {
		t.Fatal("order keys collide")
	}
}

func runMix(t *testing.T, kind IndexKind) *Workload {
	t.Helper()
	w := New(Config{Kind: kind, Warehouses: 4, Items: 256, CustomersPerD: 16})
	tm := newTM(t, 2, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	ths := []*core.Thread{tm.Thread(0), tm.Thread(1)}
	var wg sync.WaitGroup
	for _, th := range ths {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			defer th.Detach()
			for i := 0; i < 400; i++ {
				w.Step(th)
			}
		}(th)
	}
	wg.Wait()
	check := tm.Thread(0)
	defer check.Detach()
	if !w.CheckYTDInvariant(check) {
		t.Fatalf("%v: warehouse YTD != sum of district YTDs", kind)
	}
	return w
}

func TestMixPreservesYTDInvariantHash(t *testing.T)  { runMix(t, HashIndex) }
func TestMixPreservesYTDInvariantBTree(t *testing.T) { runMix(t, BTreeIndex) }

func TestNewOrderInsertsOrders(t *testing.T) {
	w := New(Config{Kind: HashIndex, Warehouses: 4, Items: 128, CustomersPerD: 8})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	for i := 0; i < 50; i++ {
		w.newOrder(th, 0, 3)
	}
	// Orders 1..50 for (0,3) must be retrievable.
	th.Atomic(func(tx *core.Tx) {
		for oid := uint64(1); oid <= 50; oid++ {
			if _, ok := w.orders.Get(tx, w.orderKey(0, 3, oid)); !ok {
				t.Fatalf("order %d missing from index", oid)
			}
		}
	})
}

func TestPaymentMovesMoney(t *testing.T) {
	w := New(Config{Kind: HashIndex, Warehouses: 4, Items: 128, CustomersPerD: 8})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	for i := 0; i < 30; i++ {
		w.payment(th, 1, 2)
	}
	th.Atomic(func(tx *core.Tx) {
		ytd := tx.Load(w.warehouses[1] + whYTD)
		if ytd == 0 {
			t.Fatal("payments did not accumulate warehouse YTD")
		}
		dytd := tx.Load(w.districts[1*w.cfg.Districts+2] + diYTD)
		if dytd != ytd {
			t.Fatalf("district YTD %d != warehouse YTD %d for single-district payments", dytd, ytd)
		}
	})
}

func TestStockNeverNegative(t *testing.T) {
	// newOrder replenishes quantity below 10 (the TPC-C rule), so
	// quantities must stay in a sane band.
	w := New(Config{Kind: HashIndex, Warehouses: 4, Items: 16, CustomersPerD: 8})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	for i := 0; i < 500; i++ {
		w.newOrder(th, 0, 0)
	}
	th.Atomic(func(tx *core.Tx) {
		for item := 0; item < 16; item++ {
			recW, ok := w.stock.Get(tx, w.stockKey(0, item))
			if !ok {
				t.Fatalf("stock row %d missing", item)
			}
			qty := tx.Load(memdev.Addr(recW) + stQty)
			if qty > 200 {
				t.Fatalf("stock %d quantity %d out of band (underflow?)", item, qty)
			}
		}
	})
}

func TestDeliveryMarksOrders(t *testing.T) {
	w := New(Config{Kind: HashIndex, Warehouses: 4, Items: 64, CustomersPerD: 8, Districts: 2})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	for i := 0; i < 10; i++ {
		w.newOrder(th, 0, 0)
	}
	for i := 0; i < 3; i++ {
		w.delivery(th, 0)
	}
	th.Atomic(func(tx *core.Tx) {
		dr := w.districts[0]
		if got := tx.Load(dr + diNextDeliv); got != 4 {
			t.Fatalf("next delivery oid = %d, want 4 after 3 deliveries", got)
		}
		for oid := uint64(1); oid <= 3; oid++ {
			orderW, ok := w.orders.Get(tx, w.orderKey(0, 0, oid))
			if !ok {
				t.Fatalf("order %d missing", oid)
			}
			if tx.Load(memdev.Addr(orderW)+orDelivered) != 1 {
				t.Fatalf("order %d not marked delivered", oid)
			}
		}
		orderW, _ := w.orders.Get(tx, w.orderKey(0, 0, 4))
		if tx.Load(memdev.Addr(orderW)+orDelivered) != 0 {
			t.Fatal("order 4 delivered early")
		}
	})
}

func TestDeliveryNeverPassesNextOID(t *testing.T) {
	w := New(Config{Kind: HashIndex, Warehouses: 4, Items: 64, CustomersPerD: 8, Districts: 1})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	for i := 0; i < 5; i++ {
		w.delivery(th, 0) // nothing ordered yet: must be a no-op
	}
	th.Atomic(func(tx *core.Tx) {
		if got := tx.Load(w.districts[0] + diNextDeliv); got != 1 {
			t.Fatalf("delivery advanced past next order id: %d", got)
		}
	})
}

func TestOrderStatusIsReadOnly(t *testing.T) {
	w := New(Config{Kind: HashIndex, Warehouses: 4, Items: 64, CustomersPerD: 8})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	w.newOrder(th, 0, 0)
	ro0 := th.Stats().ReadOnlyTxns
	for i := 0; i < 20; i++ {
		w.orderStatus(th, 0, 0)
	}
	if got := th.Stats().ReadOnlyTxns - ro0; got != 20 {
		t.Fatalf("order-status produced %d read-only txns of 20", got)
	}
}

func TestFullMixRuns(t *testing.T) {
	w := New(Config{Kind: HashIndex, Warehouses: 4, Items: 64, CustomersPerD: 8, FullMix: true})
	tm := newTM(t, 2, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	ths := []*core.Thread{tm.Thread(0), tm.Thread(1)}
	var wg sync.WaitGroup
	for _, th := range ths {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			defer th.Detach()
			for i := 0; i < 300; i++ {
				w.Step(th)
			}
		}(th)
	}
	wg.Wait()
	check := tm.Thread(0)
	defer check.Detach()
	if !w.CheckYTDInvariant(check) {
		t.Fatal("full mix broke the YTD invariant")
	}
	if check.Stats().ReadOnlyTxns != 0 {
		// the check thread itself has none; global read-only txns
		// happened on workers — just ensure the mix committed
		_ = check
	}
	if tm.Commits() < 600 {
		t.Fatalf("commits = %d", tm.Commits())
	}
}
