package tatp

import (
	"sync"
	"testing"

	"goptm/internal/core"
	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func newTM(t testing.TB, threads int, w *Workload) *core.TM {
	t.Helper()
	tm, err := core.New(core.Config{
		Algo: core.OrecLazy, Medium: core.MediumNVM, Domain: durability.ADR,
		Threads: threads, HeapWords: w.HeapWords(), OrecSize: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestDefaults(t *testing.T) {
	w := New(Config{})
	if w.Subscribers() != 16384 {
		t.Fatalf("default subscribers = %d", w.Subscribers())
	}
	if w.Name() != "TATP" {
		t.Fatalf("name = %q", w.Name())
	}
	if w.HeapWords() == 0 {
		t.Fatal("zero heap estimate")
	}
}

func TestSetupPopulatesAllSubscribers(t *testing.T) {
	w := New(Config{Subscribers: 512})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	th.Atomic(func(tx *core.Tx) {
		if n := w.Index().Len(tx); n != 512 {
			t.Fatalf("index has %d subscribers, want 512", n)
		}
		for _, sid := range []uint64{0, 7, 255, 511} {
			if _, ok := w.Index().Get(tx, sid); !ok {
				t.Fatalf("subscriber %d missing", sid)
			}
		}
	})
}

func TestStepsCommitWrites(t *testing.T) {
	w := New(Config{Subscribers: 256})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	before := tm.Commits()
	for i := 0; i < 100; i++ {
		w.Step(th)
	}
	if got := tm.Commits() - before; got != 100 {
		t.Fatalf("steps committed %d txns, want 100", got)
	}
	// TATP is write-only: every transaction writes.
	if ro := th.Stats().ReadOnlyTxns; ro != 0 {
		t.Fatalf("%d read-only transactions in a write-only mix", ro)
	}
}

func TestSmallWriteSets(t *testing.T) {
	// The paper's premise for TATP: transactions perform a small,
	// constant number of writes, so undo's per-write fences are cheap.
	// Setup runs on a separate thread handle so its bulk transactions
	// don't pollute the steady-state high-water mark.
	w := New(Config{Subscribers: 256})
	tm := newTM(t, 1, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	th := tm.Thread(0)
	defer th.Detach()
	for i := 0; i < 200; i++ {
		w.Step(th)
	}
	if hi := th.Stats().MaxLogEntry; hi > 4 {
		t.Fatalf("TATP transaction wrote %d words, want <= 4", hi)
	}
}

func TestConcurrentSteps(t *testing.T) {
	w := New(Config{Subscribers: 512})
	tm := newTM(t, 4, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	ths := make([]*core.Thread, 4)
	for i := range ths {
		ths[i] = tm.Thread(i)
	}
	var wg sync.WaitGroup
	for _, th := range ths {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			defer th.Detach()
			for i := 0; i < 300; i++ {
				w.Step(th)
			}
		}(th)
	}
	wg.Wait()
	// The index structure must remain intact.
	check := tm.Thread(0)
	defer check.Detach()
	check.Atomic(func(tx *core.Tx) {
		if n := w.Index().Len(tx); n != 512 {
			t.Fatalf("index has %d subscribers after run, want 512", n)
		}
	})
}

func TestReadMixProducesReadOnlyTxns(t *testing.T) {
	w := New(Config{Subscribers: 256, ReadMixPct: 80})
	tm := newTM(t, 1, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	th := tm.Thread(0)
	defer th.Detach()
	for i := 0; i < 200; i++ {
		w.Step(th)
	}
	ro := th.Stats().ReadOnlyTxns
	if ro < 100 || ro > 195 {
		t.Fatalf("read-only txns = %d of 200 at 80%% read mix", ro)
	}
}

func TestFullMixRunsAllTransactions(t *testing.T) {
	w := New(Config{Subscribers: 512, FullMix: true})
	tm := newTM(t, 1, w)
	setup := tm.Thread(0)
	w.Setup(tm, setup)
	setup.Detach()
	th := tm.Thread(0)
	defer th.Detach()
	for i := 0; i < 600; i++ {
		w.Step(th)
	}
	s := th.Stats()
	// ~80% of the standard mix is read-only.
	if s.ReadOnlyTxns < 350 || s.ReadOnlyTxns > 560 {
		t.Fatalf("read-only txns = %d of 600 in the full mix", s.ReadOnlyTxns)
	}
	if tm.Commits() < 600 {
		t.Fatalf("commits = %d", tm.Commits())
	}
}

func TestCallForwardingInsertDelete(t *testing.T) {
	w := New(Config{Subscribers: 64})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	// Subscriber 1 has no preloaded entry (only multiples of 4 do).
	const sid = 1
	w.insertCallForwarding(th, sid)
	found := 0
	th.Atomic(func(tx *core.Tx) {
		found = 0
		for start := 0; start < 24; start += 8 {
			if _, ok := w.Forwarding().Get(tx, cfKey(sid, start)); ok {
				found++
			}
		}
	})
	if found != 1 {
		t.Fatalf("forwarding rows after insert = %d, want 1", found)
	}
	// Delete every start time; the one present row must go away and
	// its record must be freed.
	live := tm.Heap().LiveBlocks()
	for start := 0; start < 24; start += 8 {
		start := start
		th.Atomic(func(tx *core.Tx) {
			key := cfKey(sid, start)
			if recW, ok := w.Forwarding().Get(tx, key); ok {
				w.Forwarding().Delete(tx, key)
				tx.Free(memdev.Addr(recW))
			}
		})
	}
	th.Atomic(func(tx *core.Tx) {
		for start := 0; start < 24; start += 8 {
			if _, ok := w.Forwarding().Get(tx, cfKey(sid, start)); ok {
				t.Fatal("forwarding row survived delete")
			}
		}
	})
	if got := tm.Heap().LiveBlocks(); got >= live {
		t.Fatalf("live blocks %d not reduced from %d (record+node not freed)", got, live)
	}
}

func TestPreloadedForwardingSparse(t *testing.T) {
	w := New(Config{Subscribers: 64})
	tm := newTM(t, 1, w)
	th := tm.Thread(0)
	defer th.Detach()
	w.Setup(tm, th)
	th.Atomic(func(tx *core.Tx) {
		if n := w.Forwarding().Len(tx); n != 16 { // one per 4 subscribers
			t.Fatalf("preloaded forwarding rows = %d, want 16", n)
		}
	})
}
