// Package tatp implements the write-only TATP telecom benchmark used
// in the paper (taken there from DudeTM). TATP models a Home Location
// Register; the write-only configuration runs its two update
// transactions:
//
//	UpdateSubscriberData — update one subscriber's bit/hex fields and
//	                       one special-facility data field
//	UpdateLocation       — update a subscriber's VLR location
//
// Every transaction performs a small, constant number of writes,
// which is why TATP is the one workload where undo logging's per-write
// fences do not dominate (§III-B).
package tatp

import (
	"goptm/internal/core"
	"goptm/internal/memdev"
	"goptm/internal/pstruct/phash"
)

// Subscriber record layout (words).
const (
	recSubID   = 0
	recBits    = 1 // bit_x fields packed
	recHex     = 2 // hex_x fields packed
	recByte2   = 3 // byte2_x fields packed
	recVLR     = 4 // vlr_location
	recSFData  = 5 // special facility data_a..data_b packed
	recMSCLoc  = 6 // msc_location
	recPadding = 7
	recWords   = 8
)

// Config parameterizes the benchmark.
type Config struct {
	Subscribers int // number of subscriber rows; 0 selects 16384
	Buckets     int // hash buckets; 0 selects Subscribers rounded up
	// ReadMixPct adds TATP's read transactions (GetSubscriberData,
	// GetAccessData) at the given percentage of the mix. 0 keeps the
	// paper's write-only configuration.
	ReadMixPct int
	// FullMix runs the standard seven-transaction TATP blend
	// (80% reads, 16% location/subscriber updates, 4% call-forwarding
	// insert/delete) instead of the paper's write-only configuration.
	// Overrides ReadMixPct.
	FullMix bool
}

// Call-forwarding record layout (words).
const (
	cfEndTime = 0
	cfNumber  = 1
	cfWords   = 8
)

// Workload is the TATP driver. Create with New; safe for concurrent
// Step calls on distinct threads after Setup.
type Workload struct {
	cfg     Config
	index   phash.Map
	forward phash.Map // call-forwarding table: cfKey -> record
}

// cfKey composes a call-forwarding key from subscriber id and start
// time (TATP uses start times 0, 8, 16).
func cfKey(sid uint64, start int) uint64 {
	return sid<<2 | uint64(start/8)
}

// New returns a TATP workload.
func New(cfg Config) *Workload {
	if cfg.Subscribers <= 0 {
		cfg.Subscribers = 16384
	}
	if cfg.Buckets <= 0 {
		b := 1
		for b < cfg.Subscribers {
			b <<= 1
		}
		cfg.Buckets = b
	}
	return &Workload{cfg: cfg}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "TATP" }

// HeapWords sizes the heap: indexes plus one subscriber record and up
// to one call-forwarding record per subscriber, with headroom.
func (w *Workload) HeapWords() uint64 {
	return uint64(w.cfg.Subscribers)*40 + uint64(4*w.cfg.Buckets) + (1 << 16)
}

// Setup creates and populates the subscriber table.
func (w *Workload) Setup(tm *core.TM, th *core.Thread) {
	th.Atomic(func(tx *core.Tx) {
		w.index = phash.Create(tx, w.cfg.Buckets)
		w.forward = phash.Create(tx, w.cfg.Buckets)
	})
	// Populate in small batches: each batch transaction stays well
	// inside the log capacity while keeping setup fast.
	const batch = 16
	for s := 0; s < w.cfg.Subscribers; s += batch {
		lo, hi := s, min(s+batch, w.cfg.Subscribers)
		th.Atomic(func(tx *core.Tx) {
			for i := lo; i < hi; i++ {
				sid := uint64(i)
				rec := tx.Alloc(recWords)
				tx.Store(rec+recSubID, sid)
				tx.Store(rec+recBits, sid^0x5555)
				tx.Store(rec+recHex, sid^0xAAAA)
				tx.Store(rec+recByte2, 0)
				tx.Store(rec+recVLR, sid)
				tx.Store(rec+recSFData, 0)
				tx.Store(rec+recMSCLoc, 0)
				w.index.Put(tx, sid, uint64(rec))
			}
		})
	}
	tm.SetRoot(th, 0, w.index.Table())
	tm.SetRoot(th, 1, w.forward.Table())
	// Pre-populate a call-forwarding entry for ~25% of subscribers
	// (TATP loads an average of one row per subscriber across the
	// three start times; one per four keeps the table sparse).
	const cfBatch = 16
	for s0 := 0; s0 < w.cfg.Subscribers; s0 += 4 * cfBatch {
		lo, hi := s0, min(s0+4*cfBatch, w.cfg.Subscribers)
		th.Atomic(func(tx *core.Tx) {
			for sid := lo; sid < hi; sid += 4 {
				rec := tx.Alloc(cfWords)
				tx.Store(rec+cfEndTime, 24)
				tx.Store(rec+cfNumber, uint64(sid)^0xF0F0)
				w.forward.Put(tx, cfKey(uint64(sid), 0), uint64(rec))
			}
		})
	}
}

// Step runs one transaction: the paper's write-only 50/50 update mix,
// optionally diluted with ReadMixPct of read transactions.
func (w *Workload) Step(th *core.Thread) {
	r := th.Rand()
	sid := r.Uint64n(uint64(w.cfg.Subscribers))
	if w.cfg.FullMix {
		switch p := r.Intn(100); {
		case p < 35:
			w.getSubscriberData(th, sid)
		case p < 45:
			w.getNewDestination(th, sid)
		case p < 80:
			w.getAccessData(th, sid)
		case p < 82:
			w.updateSubscriberData(th, sid)
		case p < 96:
			w.updateLocation(th, sid)
		case p < 98:
			w.insertCallForwarding(th, sid)
		default:
			w.deleteCallForwarding(th, sid)
		}
		return
	}
	if w.cfg.ReadMixPct > 0 && r.Intn(100) < w.cfg.ReadMixPct {
		w.getSubscriberData(th, sid)
		return
	}
	if r.Intn(2) == 0 {
		w.updateSubscriberData(th, sid)
	} else {
		w.updateLocation(th, sid)
	}
}

// getNewDestination reads the forwarding destination for a call
// (TATP GET_NEW_DESTINATION; ~27% of lookups miss, as in the spec's
// sparse table).
func (w *Workload) getNewDestination(th *core.Thread, sid uint64) {
	start := th.Rand().Intn(3) * 8
	th.Atomic(func(tx *core.Tx) {
		recW, ok := w.forward.Get(tx, cfKey(sid, start))
		if !ok {
			return
		}
		rec := memdev.Addr(recW)
		_ = tx.Load(rec + cfEndTime)
		_ = tx.Load(rec + cfNumber)
	})
}

// getAccessData reads the subscriber's access-info fields (TATP
// GET_ACCESS_DATA).
func (w *Workload) getAccessData(th *core.Thread, sid uint64) {
	th.Atomic(func(tx *core.Tx) {
		recW, ok := w.index.Get(tx, sid)
		if !ok {
			return
		}
		rec := memdev.Addr(recW)
		_ = tx.Load(rec + recBits)
		_ = tx.Load(rec + recHex)
		_ = tx.Load(rec + recByte2)
	})
}

// insertCallForwarding adds a forwarding row for the subscriber
// (TATP INSERT_CALL_FORWARDING; fails silently if present, as the
// spec's conditional insert does).
func (w *Workload) insertCallForwarding(th *core.Thread, sid uint64) {
	r := th.Rand()
	start := r.Intn(3) * 8
	number := r.Uint64()
	th.Atomic(func(tx *core.Tx) {
		key := cfKey(sid, start)
		if _, exists := w.forward.Get(tx, key); exists {
			return
		}
		rec := tx.Alloc(cfWords)
		tx.Store(rec+cfEndTime, uint64(start+8))
		tx.Store(rec+cfNumber, number)
		w.forward.Put(tx, key, uint64(rec))
	})
}

// deleteCallForwarding removes a forwarding row (TATP
// DELETE_CALL_FORWARDING).
func (w *Workload) deleteCallForwarding(th *core.Thread, sid uint64) {
	start := th.Rand().Intn(3) * 8
	th.Atomic(func(tx *core.Tx) {
		key := cfKey(sid, start)
		recW, ok := w.forward.Get(tx, key)
		if !ok {
			return
		}
		w.forward.Delete(tx, key)
		tx.Free(memdev.Addr(recW))
	})
}

// Forwarding exposes the call-forwarding table for verification.
func (w *Workload) Forwarding() phash.Map { return w.forward }

// getSubscriberData is TATP's dominant read transaction: fetch the
// whole subscriber row.
func (w *Workload) getSubscriberData(th *core.Thread, sid uint64) {
	th.Atomic(func(tx *core.Tx) {
		recW, ok := w.index.Get(tx, sid)
		if !ok {
			return
		}
		rec := memdev.Addr(recW)
		var sink uint64
		for f := 0; f < recWords; f++ {
			sink ^= tx.Load(rec + memdev.Addr(f))
		}
		_ = sink
	})
}

// updateSubscriberData rewrites a subscriber's flag fields and one
// special-facility data word.
func (w *Workload) updateSubscriberData(th *core.Thread, sid uint64) {
	r := th.Rand()
	bits := r.Uint64()
	sf := r.Uint64()
	th.Atomic(func(tx *core.Tx) {
		recW, ok := w.index.Get(tx, sid)
		if !ok {
			return
		}
		rec := memdev.Addr(recW)
		tx.Store(rec+recBits, bits)
		tx.Store(rec+recSFData, sf)
	})
}

// updateLocation rewrites a subscriber's VLR location.
func (w *Workload) updateLocation(th *core.Thread, sid uint64) {
	r := th.Rand()
	loc := r.Uint64()
	th.Atomic(func(tx *core.Tx) {
		recW, ok := w.index.Get(tx, sid)
		if !ok {
			return
		}
		rec := memdev.Addr(recW)
		tx.Store(rec+recVLR, loc)
		tx.Store(rec+recMSCLoc, loc>>32)
	})
}

// Index exposes the subscriber index for verification in tests.
func (w *Workload) Index() phash.Map { return w.index }

// Subscribers reports the configured row count.
func (w *Workload) Subscribers() int { return w.cfg.Subscribers }
