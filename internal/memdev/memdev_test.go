package memdev

import (
	"sync"
	"testing"
	"testing/quick"

	"goptm/internal/durability"
)

func newDev(t testing.TB) *Device {
	t.Helper()
	d, err := New(Config{NVMWords: 1024, DRAMWords: 512})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{NVMWords: 0, DRAMWords: 8},
		{NVMWords: 8, DRAMWords: 0},
		{NVMWords: 9, DRAMWords: 8},  // not line-aligned
		{NVMWords: 16, DRAMWords: 3}, // not line-aligned
	}
	for _, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("New(%+v) accepted invalid config", c)
		}
	}
	if _, err := New(Config{NVMWords: 8, DRAMWords: 8}); err != nil {
		t.Errorf("minimal valid config rejected: %v", err)
	}
}

func TestRegions(t *testing.T) {
	d := newDev(t)
	if !d.IsNVM(0) || !d.IsNVM(1023) || d.IsNVM(1024) {
		t.Error("NVM range misclassified")
	}
	if !d.IsDRAM(DRAMBase) || !d.IsDRAM(DRAMBase+511) || d.IsDRAM(DRAMBase+512) {
		t.Error("DRAM range misclassified")
	}
	if d.IsDRAM(0) || d.IsNVM(DRAMBase) {
		t.Error("regions overlap")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	d := newDev(t)
	d.Store(5, 42)
	d.Store(DRAMBase+7, 99)
	if d.Load(5) != 42 {
		t.Error("NVM load after store")
	}
	if d.Load(DRAMBase+7) != 99 {
		t.Error("DRAM load after store")
	}
	if d.Load(6) != 0 {
		t.Error("untouched word not zero")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newDev(t)
	for _, a := range []Addr{1024, DRAMBase - 1, DRAMBase + 512} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("access to %#x did not panic", uint64(a))
				}
			}()
			d.Load(a)
		}()
	}
}

func TestStoreDirtiesLine(t *testing.T) {
	d := newDev(t)
	if d.LineState(0) != LineClean {
		t.Fatal("fresh line not clean")
	}
	d.Store(3, 1) // line 0
	if d.LineState(0) != LineDirtyCache {
		t.Fatal("store did not dirty line")
	}
	d.Store(DRAMBase, 1) // DRAM store must not touch NVM line states
	if d.LineState(0) != LineDirtyCache {
		t.Fatal("DRAM store changed NVM line state")
	}
}

func TestWPQAcceptTransitions(t *testing.T) {
	d := newDev(t)
	d.Store(8, 7) // line 1
	d.WPQAccept(1, 100)
	if d.LineState(1) != LineInWPQ {
		t.Fatal("flush did not move line to WPQ state")
	}
	if d.PendingLines() != 1 {
		t.Fatalf("pending = %d, want 1", d.PendingLines())
	}
	// A store after the flush re-dirties the line.
	d.Store(8, 9)
	if d.LineState(1) != LineDirtyCache {
		t.Fatal("store after flush did not re-dirty line")
	}
}

func TestCrashADRPersistsWPQOnly(t *testing.T) {
	d := newDev(t)
	d.Store(0, 11) // line 0: flushed
	d.WPQAccept(0, 1_000_000)
	d.Store(8, 22) // line 1: dirty only
	d.Crash(0, durability.ADR)
	if got := d.Load(0); got != 11 {
		t.Fatalf("flushed word lost under ADR: %d", got)
	}
	if got := d.Load(8); got != 0 {
		t.Fatalf("dirty unflushed word survived ADR crash: %d", got)
	}
}

func TestCrashEADRPersistsDirtyCache(t *testing.T) {
	d := newDev(t)
	d.Store(0, 11)
	d.Store(8, 22)
	d.Crash(0, durability.EADR)
	if d.Load(0) != 11 || d.Load(8) != 22 {
		t.Fatal("dirty lines lost under eADR")
	}
}

func TestCrashNoReservePersistsDrainedOnly(t *testing.T) {
	d := newDev(t)
	d.Store(0, 11)
	d.WPQAccept(0, 50) // drains at vt 50
	d.Store(8, 22)
	d.WPQAccept(1, 500) // drains at vt 500
	d.Crash(100, durability.NoReserve)
	if d.Load(0) != 11 {
		t.Fatal("drained line lost under NoReserve")
	}
	if d.Load(8) != 0 {
		t.Fatal("undrained WPQ line survived NoReserve crash")
	}
}

func TestCrashSnapshotSemantics(t *testing.T) {
	// The WPQ holds the value at flush time, not crash time: a store
	// after clwb must not be durable under ADR.
	d := newDev(t)
	d.Store(0, 1)
	d.WPQAccept(0, 10)
	d.Store(0, 2) // newer, never flushed
	d.Crash(100, durability.ADR)
	if got := d.Load(0); got != 1 {
		t.Fatalf("post-crash value = %d, want flush-time value 1", got)
	}
}

func TestCrashZeroesDRAMAndStates(t *testing.T) {
	d := newDev(t)
	d.Store(DRAMBase+3, 77)
	d.Store(0, 5)
	d.Crash(0, durability.ADR)
	if d.Load(DRAMBase+3) != 0 {
		t.Fatal("DRAM survived crash")
	}
	if d.LineState(0) != LineClean {
		t.Fatal("line states not reset after crash")
	}
	if d.PendingLines() != 0 {
		t.Fatal("pending set not cleared after crash")
	}
}

func TestQuiesceAppliesPending(t *testing.T) {
	d := newDev(t)
	d.Store(0, 123)
	d.WPQAccept(0, 1<<60) // drain far in the future
	d.Quiesce()
	d.Crash(0, durability.NoReserve) // strictest domain
	if d.Load(0) != 123 {
		t.Fatal("quiesced write lost")
	}
}

func TestMediaWriteLine(t *testing.T) {
	d := newDev(t)
	var p [WordsPerLine]uint64
	for i := range p {
		p[i] = uint64(i + 1)
	}
	d.Store(16, 999) // line 2 dirty, then superseded by writeback
	d.WPQAccept(2, 10)
	d.MediaWriteLine(2, p)
	if d.LineState(2) != LineClean {
		t.Fatal("writeback did not clean line")
	}
	if d.PendingLines() != 0 {
		t.Fatal("writeback did not supersede pending flush")
	}
	for i := range p {
		if d.Load(Addr(16+i)) != uint64(i+1) {
			t.Fatal("writeback not visible in volatile image")
		}
	}
	d.Crash(0, durability.NoReserve)
	if d.Load(16) != 1 {
		t.Fatal("media writeback lost on crash")
	}
}

func TestMediaLoad(t *testing.T) {
	d := newDev(t)
	d.Store(0, 42)
	if d.MediaLoad(0) != 0 {
		t.Fatal("unflushed store visible in media")
	}
	d.WPQAccept(0, 0)
	d.Quiesce()
	if d.MediaLoad(0) != 42 {
		t.Fatal("quiesced store not in media")
	}
}

func TestStatsCount(t *testing.T) {
	d := newDev(t)
	d.Store(0, 1)
	d.Store(8, 1)
	d.Store(DRAMBase, 1) // not counted
	d.WPQAccept(0, 0)
	k := d.Counters()
	if k.NVMStores != 2 || k.Flushes != 1 {
		t.Fatalf("counters = %+v, want 2 stores, 1 flush", k)
	}
}

func TestConcurrentStoresDistinctWords(t *testing.T) {
	d := MustNew(Config{NVMWords: 8192, DRAMWords: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1024; i++ {
				a := Addr(g*1024 + i)
				d.Store(a, uint64(g*1024+i))
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 8192; i++ {
		if d.Load(Addr(i)) != uint64(i) {
			t.Fatalf("word %d corrupted", i)
		}
	}
}

func TestCrashPrefixProperty(t *testing.T) {
	// Property: under ADR, after arbitrary store/flush sequences, every
	// word's media value is the value it had at its last flush (or zero
	// if never flushed).
	f := func(ops []uint16) bool {
		d := MustNew(Config{NVMWords: 64, DRAMWords: 8})
		lastFlushed := make(map[Addr]uint64)
		shadow := make(map[Addr]uint64)
		val := uint64(1)
		for _, op := range ops {
			a := Addr(op % 64)
			if op%3 == 0 {
				ln := LineOf(a)
				d.WPQAccept(ln, int64(op))
				base := Addr(ln << LineShift)
				for w := Addr(0); w < WordsPerLine; w++ {
					lastFlushed[base+w] = shadow[base+w]
				}
			} else {
				d.Store(a, val)
				shadow[a] = val
				val++
			}
		}
		d.Crash(1<<60, durability.ADR)
		for a := Addr(0); a < 64; a++ {
			if d.Load(a) != lastFlushed[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashEADRNoLossProperty(t *testing.T) {
	// Property: under eADR every executed store is durable at crash.
	f := func(ops []uint16) bool {
		d := MustNew(Config{NVMWords: 64, DRAMWords: 8})
		shadow := make(map[Addr]uint64)
		val := uint64(1)
		for _, op := range ops {
			a := Addr(op % 64)
			d.Store(a, val)
			shadow[a] = val
			val++
		}
		d.Crash(0, durability.EADR)
		for a, v := range shadow {
			if d.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew accepted invalid config")
		}
	}()
	MustNew(Config{NVMWords: 0, DRAMWords: 0})
}

func TestLineAddrRoundTrip(t *testing.T) {
	for _, a := range []Addr{0, 7, 8, 63, 64, 1000} {
		ln := LineOf(a)
		base := LineAddr(ln)
		if base > a || a-base >= WordsPerLine {
			t.Fatalf("LineAddr(LineOf(%d)) = %d", a, base)
		}
	}
}

func TestCounters(t *testing.T) {
	d := newDev(t)
	d.Store(0, 1)
	d.Store(8, 2)
	d.Load(0)
	d.Load(8)
	d.Load(16)
	d.Store(DRAMBase, 9) // DRAM traffic is not NVM traffic
	d.Load(DRAMBase)
	d.WPQAccept(0, 0)
	k := d.Counters()
	if k.NVMStores != 2 || k.NVMLoads != 3 || k.Flushes != 1 {
		t.Fatalf("counters = %+v, want stores 2, loads 3, flushes 1", k)
	}
}

func TestDrainAllAppliesPendingInOrder(t *testing.T) {
	d := newDev(t)
	// Three lines accepted with out-of-order drain times; the observer
	// must see them sorted by (drainVT, line) and media must hold the
	// accepted snapshots afterwards.
	d.Store(LineAddr(3), 33)
	d.WPQAccept(3, 900)
	d.Store(LineAddr(1), 11)
	d.WPQAccept(1, 500)
	d.Store(LineAddr(2), 22)
	d.WPQAccept(2, 500)
	var seen []uint64
	d.SetMediaObserver(func(ln uint64, payload [WordsPerLine]uint64) {
		seen = append(seen, ln)
	})
	n, maxVT := d.DrainAll()
	if n != 3 || maxVT != 900 {
		t.Fatalf("DrainAll = (%d, %d), want (3, 900)", n, maxVT)
	}
	want := []uint64{1, 2, 3} // vt 500 line 1, vt 500 line 2, vt 900 line 3
	for i, ln := range want {
		if seen[i] != ln {
			t.Fatalf("observer order %v, want %v", seen, want)
		}
	}
	for ln, v := range map[uint64]uint64{1: 11, 2: 22, 3: 33} {
		if got := d.MediaLoad(LineAddr(ln)); got != v {
			t.Fatalf("media line %d = %d, want %d", ln, got, v)
		}
	}
	if d.PendingLines() != 0 {
		t.Fatalf("pending not cleared: %d", d.PendingLines())
	}
	// Idempotent on an empty pending set.
	if n, _ := d.DrainAll(); n != 0 {
		t.Fatalf("second DrainAll applied %d entries", n)
	}
}

func TestMediaObserverSeesSupersedeCommit(t *testing.T) {
	d := newDev(t)
	d.Store(LineAddr(5), 1)
	d.WPQAccept(5, 100)
	d.WPQMarkOrdered([]uint64{5})
	var got []uint64
	d.SetMediaObserver(func(ln uint64, payload [WordsPerLine]uint64) {
		got = append(got, payload[0])
	})
	// Re-flushing an ordered line commits the fenced snapshot to media
	// immediately; the observer must see that write.
	d.Store(LineAddr(5), 2)
	d.WPQAccept(5, 200)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("observer saw %v, want the fenced payload [1]", got)
	}
	// And MediaWriteLine is observed too.
	var p [WordsPerLine]uint64
	p[0] = 7
	d.MediaWriteLine(6, p)
	if len(got) != 2 || got[1] != 7 {
		t.Fatalf("observer saw %v after MediaWriteLine, want [1 7]", got)
	}
}
