// Package memdev implements the simulated byte-addressable memory
// device: an NVM (Optane) region with separate volatile and media
// images, and a DRAM region with a volatile image only.
//
// The device is word-addressed (64-bit words, 8 words per 64 B cache
// line). The volatile image is what running programs observe; the
// media image is what survives a power failure. Each NVM line carries
// a persistence state:
//
//	Clean      — volatile and media agree (or line never written)
//	DirtyCache — stored to, but not yet flushed; lost under ADR
//	InWPQ      — flushed (clwb) or evicted into the write-pending
//	             queue; durable under ADR and stronger domains
//
// Flushing a line snapshots its volatile contents into a pending slot
// together with the virtual time at which the WPQ drain completes;
// Crash applies the domain's policy to pending and dirty lines to
// produce the post-failure media image.
//
// memdev carries no timing of its own; latency and bandwidth modeling
// live in the wpq and membus packages.
package memdev

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"goptm/internal/durability"
)

// Addr is a word address in the simulated physical address space.
// NVM occupies [0, NVMWords); DRAM occupies [DRAMBase, DRAMBase+DRAMWords).
type Addr uint64

// DRAMBase is the first word address of the DRAM region. The huge gap
// guarantees NVM and DRAM ranges can never be confused.
const DRAMBase Addr = 1 << 40

// WordsPerLine is the number of 64-bit words in a 64 B cache line.
const WordsPerLine = 8

// LineShift converts between word addresses and line numbers.
const LineShift = 3

// Line state values, stored per NVM cache line.
const (
	LineClean uint32 = iota
	LineDirtyCache
	LineInWPQ
)

// Config sizes a Device.
type Config struct {
	NVMWords  uint64 // words of NVM (Optane) memory
	DRAMWords uint64 // words of DRAM
	// Lockstep promises that the lockstep scheduler serializes every
	// access (one simulated thread executes at any instant), so the
	// per-word atomics and the pending-set mutex are elided on the
	// load/store/flush path. Leave false for concurrent-mode engines.
	Lockstep bool
}

// pendingWrite is a line snapshot accepted into the WPQ but possibly
// not yet drained to media.
type pendingWrite struct {
	payload [WordsPerLine]uint64
	drainVT int64  // virtual time at which the drain completes
	line    uint64 // owning NVM line (for iteration over the dense set)
	// ordered records that the issuing thread has executed an sfence
	// after the flush was accepted: on real hardware only then is the
	// line guaranteed to have left the core's store path and entered
	// the durability domain. Unordered entries are what the crash
	// checker's adversarial fault model is allowed to drop or tear.
	ordered bool
}

// Device is the simulated memory device. Word loads and stores are
// individually atomic; coordination above word granularity is the
// responsibility of the software running on the device (that is the
// whole point of the PTM under study).
type Device struct {
	nvmWords  uint64
	dramWords uint64
	serial    bool // lockstep: callers are externally serialized

	nvmVol   []uint64
	nvmMedia []uint64
	dramVol  []uint64

	lineState []uint32 // per NVM line, accessed atomically (concurrent mode)

	// The pending (WPQ) set is a flat per-line index into a dense
	// entry slice rather than a map: WPQAccept runs once per clwb,
	// putting map hashing at the top of sweep profiles. pendingIdx
	// holds slot+1 (0 = no pending entry) so the zero value of a fresh
	// device is already correct; freed slots are recycled through
	// pendingFree, and an entry is live iff pendingIdx[entry.line]
	// still points at it.
	mu          sync.Mutex
	pendingIdx  []int32        // per NVM line: slot+1 into pendingEnt, 0 = none
	pendingEnt  []pendingWrite // dense entries, including recycled dead slots
	pendingFree []int32        // dead slots available for reuse
	pendingLive int            // live entry count

	loads   int64 // NVM load count, for stats
	stores  int64 // NVM store count, for stats
	flushes int64 // WPQ accepts, for stats

	// mediaObs, when set, sees every line payload materialized onto NVM
	// media during normal operation (WPQ drains, supersede commits,
	// direct media writes). The serving layer journals these so a host
	// process kill cannot lose media state that only ever existed in
	// this process's address space.
	mediaObs func(line uint64, payload [WordsPerLine]uint64)
}

// New creates a device. Both regions must be non-empty and multiples
// of the line size.
func New(cfg Config) (*Device, error) {
	if cfg.NVMWords == 0 || cfg.NVMWords%WordsPerLine != 0 {
		return nil, fmt.Errorf("memdev: NVMWords %d must be a positive multiple of %d", cfg.NVMWords, WordsPerLine)
	}
	if cfg.DRAMWords == 0 || cfg.DRAMWords%WordsPerLine != 0 {
		return nil, fmt.Errorf("memdev: DRAMWords %d must be a positive multiple of %d", cfg.DRAMWords, WordsPerLine)
	}
	return &Device{
		nvmWords:   cfg.NVMWords,
		dramWords:  cfg.DRAMWords,
		serial:     cfg.Lockstep,
		nvmVol:     make([]uint64, cfg.NVMWords),
		nvmMedia:   make([]uint64, cfg.NVMWords),
		dramVol:    make([]uint64, cfg.DRAMWords),
		lineState:  make([]uint32, cfg.NVMWords/WordsPerLine),
		pendingIdx: make([]int32, cfg.NVMWords/WordsPerLine),
	}, nil
}

// MustNew is New but panics on error, for tests and examples.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// NVMWords reports the size of the NVM region in words.
func (d *Device) NVMWords() uint64 { return d.nvmWords }

// DRAMWords reports the size of the DRAM region in words.
func (d *Device) DRAMWords() uint64 { return d.dramWords }

// IsNVM reports whether a falls in the NVM region.
func (d *Device) IsNVM(a Addr) bool { return a < Addr(d.nvmWords) }

// IsDRAM reports whether a falls in the DRAM region.
func (d *Device) IsDRAM(a Addr) bool {
	return a >= DRAMBase && a < DRAMBase+Addr(d.dramWords)
}

// LineOf returns the NVM line number containing a. a must be NVM.
func LineOf(a Addr) uint64 { return uint64(a) >> LineShift }

// LineAddr returns the first word address of NVM line ln.
func LineAddr(ln uint64) Addr { return Addr(ln << LineShift) }

// checkAddr panics on out-of-range addresses: such an access is a bug
// in the software under test, not a recoverable condition.
func (d *Device) index(a Addr) (arr []uint64, i uint64) {
	switch {
	case a < Addr(d.nvmWords):
		return d.nvmVol, uint64(a)
	case a >= DRAMBase && a < DRAMBase+Addr(d.dramWords):
		return d.dramVol, uint64(a - DRAMBase)
	default:
		panic(fmt.Sprintf("memdev: address %#x out of range (nvm %d words, dram %d words)", uint64(a), d.nvmWords, d.dramWords))
	}
}

// pendingGet returns the live pending entry for line ln, or nil.
// Caller must hold d.mu in concurrent mode.
func (d *Device) pendingGet(ln uint64) *pendingWrite {
	if s := d.pendingIdx[ln]; s != 0 {
		return &d.pendingEnt[s-1]
	}
	return nil
}

// pendingPut returns the pending entry for ln, creating one (from the
// free list or by growing the dense slice) if none is live, and
// reports whether the entry already existed. Caller must hold d.mu in
// concurrent mode.
func (d *Device) pendingPut(ln uint64) (e *pendingWrite, existed bool) {
	if s := d.pendingIdx[ln]; s != 0 {
		return &d.pendingEnt[s-1], true
	}
	var slot int32
	if n := len(d.pendingFree); n > 0 {
		slot = d.pendingFree[n-1]
		d.pendingFree = d.pendingFree[:n-1]
	} else {
		d.pendingEnt = append(d.pendingEnt, pendingWrite{})
		slot = int32(len(d.pendingEnt) - 1)
	}
	d.pendingIdx[ln] = slot + 1
	d.pendingLive++
	e = &d.pendingEnt[slot]
	e.line = ln
	return e, false
}

// pendingDelete removes the pending entry for ln, if any. Caller must
// hold d.mu in concurrent mode.
func (d *Device) pendingDelete(ln uint64) {
	if s := d.pendingIdx[ln]; s != 0 {
		d.pendingIdx[ln] = 0
		d.pendingFree = append(d.pendingFree, s-1)
		d.pendingLive--
	}
}

// pendingLiveAt reports whether dense slot i holds a live entry (a
// recycled slot's stale line no longer points back at it).
func (d *Device) pendingLiveAt(i int) bool {
	return d.pendingIdx[d.pendingEnt[i].line] == int32(i+1)
}

// pendingClear empties the whole pending set. Caller must hold d.mu in
// concurrent mode.
func (d *Device) pendingClear() {
	for i := range d.pendingEnt {
		if d.pendingLiveAt(i) {
			d.pendingIdx[d.pendingEnt[i].line] = 0
		}
	}
	d.pendingEnt = d.pendingEnt[:0]
	d.pendingFree = d.pendingFree[:0]
	d.pendingLive = 0
}

// Load returns the current (volatile) value of the word at a. NVM
// loads are counted (the denominator of read amplification).
func (d *Device) Load(a Addr) uint64 {
	arr, i := d.index(a)
	if d.serial {
		if a < Addr(d.nvmWords) {
			d.loads++
		}
		return arr[i]
	}
	if a < Addr(d.nvmWords) {
		atomic.AddInt64(&d.loads, 1)
	}
	return atomic.LoadUint64(&arr[i])
}

// Store sets the volatile value of the word at a and, for NVM
// addresses, marks the containing line dirty.
func (d *Device) Store(a Addr, v uint64) {
	arr, i := d.index(a)
	if d.serial {
		arr[i] = v
		if a < Addr(d.nvmWords) {
			d.lineState[LineOf(a)] = LineDirtyCache
			d.stores++
		}
		return
	}
	atomic.StoreUint64(&arr[i], v)
	if a < Addr(d.nvmWords) {
		atomic.StoreUint32(&d.lineState[LineOf(a)], LineDirtyCache)
		atomic.AddInt64(&d.stores, 1)
	}
}

// LineState reports the persistence state of NVM line ln.
func (d *Device) LineState(ln uint64) uint32 {
	if d.serial {
		return d.lineState[ln]
	}
	return atomic.LoadUint32(&d.lineState[ln])
}

// WPQAccept snapshots the volatile contents of NVM line ln into the
// write-pending queue with the given drain completion time. It models
// both an explicit clwb and a dirty-line eviction reaching the memory
// controller. Accepting a clean line is a no-op snapshot (harmless,
// like a clwb of an unmodified line).
func (d *Device) WPQAccept(ln uint64, drainVT int64) {
	base := ln << LineShift
	if base >= d.nvmWords {
		panic(fmt.Sprintf("memdev: WPQAccept of line %d beyond NVM", ln))
	}
	if !d.serial {
		d.mu.Lock()
	}
	e, existed := d.pendingPut(ln)
	if existed && e.ordered {
		// The fence that ordered the old entry guaranteed its drain; a
		// later flush of the same line cannot revoke that. Commit it to
		// media now so adversarial outcomes for the superseding entry
		// (drop, tear) resolve against the fenced image rather than
		// resurrecting the pre-fence one.
		for w := uint64(0); w < WordsPerLine; w++ {
			d.nvmMedia[base+w] = e.payload[w]
		}
		if d.mediaObs != nil {
			d.mediaObs(ln, e.payload)
		}
	}
	if d.serial {
		copy(e.payload[:], d.nvmVol[base:base+WordsPerLine])
	} else {
		for w := uint64(0); w < WordsPerLine; w++ {
			e.payload[w] = atomic.LoadUint64(&d.nvmVol[base+w])
		}
	}
	e.drainVT = drainVT
	e.ordered = false
	if d.serial {
		d.lineState[ln] = LineInWPQ
		d.flushes++
		return
	}
	d.mu.Unlock()
	atomic.StoreUint32(&d.lineState[ln], LineInWPQ)
	atomic.AddInt64(&d.flushes, 1)
}

// WPQMarkOrdered records that the issuing thread has fenced the given
// lines: their currently pending snapshots are guaranteed to have
// entered the durability domain. Lines with no pending entry (already
// drained, or superseded) are skipped.
func (d *Device) WPQMarkOrdered(lines []uint64) {
	if !d.serial {
		d.mu.Lock()
		defer d.mu.Unlock()
	}
	for _, ln := range lines {
		if p := d.pendingGet(ln); p != nil {
			p.ordered = true
		}
	}
}

// PendingLines reports how many line flushes are sitting in the
// pending (WPQ) set.
func (d *Device) PendingLines() int {
	if !d.serial {
		d.mu.Lock()
		defer d.mu.Unlock()
	}
	return d.pendingLive
}

// Counters is the device's cumulative event counts: word loads and
// stores addressed to NVM (the denominators of read and write
// amplification) and WPQ accepts (clwb or eviction snapshots).
type Counters struct {
	NVMLoads  int64
	NVMStores int64
	Flushes   int64
}

// Counters reports the device's cumulative counters.
func (d *Device) Counters() Counters {
	if d.serial {
		return Counters{NVMLoads: d.loads, NVMStores: d.stores, Flushes: d.flushes}
	}
	return Counters{
		NVMLoads:  atomic.LoadInt64(&d.loads),
		NVMStores: atomic.LoadInt64(&d.stores),
		Flushes:   atomic.LoadInt64(&d.flushes),
	}
}

// Crash applies a power failure at virtual time vt under the given
// durability domain, producing the post-failure media image:
//
//   - Pending WPQ entries are applied to media if the domain preserves
//     the WPQ, or if their drain had already completed by vt.
//   - Dirty cached lines are applied (volatile -> media) if the domain
//     flushes caches on failure.
//
// After Crash the volatile images are zeroed (DRAM contents and
// non-persisted NVM lines are gone; NVM volatile is re-seeded from
// media, as if the file were mapped again after reboot) and all line
// states are Clean. Higher layers (the page cache) must write back any
// DRAM-cached NVM pages *before* calling Crash when the domain
// requires it.
func (d *Device) Crash(vt int64, dom durability.Domain) {
	d.CrashWith(vt, dom, nil)
}

// MediaWriteLine writes a full line of payload directly to NVM media
// and volatile, bypassing the WPQ. Used by the page cache when writing
// back a dirty DRAM frame (the writeback itself is durable once
// complete) and by recovery code.
func (d *Device) MediaWriteLine(ln uint64, payload [WordsPerLine]uint64) {
	base := ln << LineShift
	if base >= d.nvmWords {
		panic(fmt.Sprintf("memdev: MediaWriteLine of line %d beyond NVM", ln))
	}
	d.mu.Lock()
	d.pendingDelete(ln) // writeback supersedes any pending flush
	for w := uint64(0); w < WordsPerLine; w++ {
		d.nvmMedia[base+w] = payload[w]
		atomic.StoreUint64(&d.nvmVol[base+w], payload[w])
	}
	if d.mediaObs != nil {
		d.mediaObs(ln, payload)
	}
	d.mu.Unlock()
	atomic.StoreUint32(&d.lineState[ln], LineClean)
}

// MediaLoad reads the media image directly. Only meaningful after
// Crash (post-failure inspection) or for verification in tests.
func (d *Device) MediaLoad(a Addr) uint64 {
	if a >= Addr(d.nvmWords) {
		panic(fmt.Sprintf("memdev: MediaLoad of non-NVM address %#x", uint64(a)))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nvmMedia[a]
}

// Quiesce applies every pending flush to media unconditionally, as if
// the machine were shut down cleanly. Used at the end of healthy runs.
func (d *Device) Quiesce() {
	d.DrainAll()
}

// SetMediaObserver installs a callback invoked, with the device's
// internal serialization held, for every line payload that reaches NVM
// media during normal operation: WPQ drains (DrainAll/Quiesce),
// supersede commits of fenced entries, and direct media writes. It is
// NOT invoked by Crash/CrashWith (the post-failure image is inspected
// wholesale) or by Restore. Install before traffic starts; pass nil to
// detach.
func (d *Device) SetMediaObserver(fn func(line uint64, payload [WordsPerLine]uint64)) {
	if !d.serial {
		d.mu.Lock()
		defer d.mu.Unlock()
	}
	d.mediaObs = fn
}

// DrainAll forces every pending WPQ entry onto media immediately — the
// serving layer's durable-ack barrier. Entries are applied in
// (drainVT, line) order so an attached media observer sees a
// deterministic byte stream that respects drain completion order.
// Returns the number of entries applied and the maximum drain
// completion time among them; a caller modeling an honest wait should
// advance its virtual clock to that time before acknowledging.
func (d *Device) DrainAll() (applied int, maxDrainVT int64) {
	if !d.serial {
		d.mu.Lock()
		defer d.mu.Unlock()
	}
	if d.pendingLive == 0 {
		return 0, 0
	}
	live := make([]*pendingWrite, 0, d.pendingLive)
	for i := range d.pendingEnt {
		if d.pendingLiveAt(i) {
			live = append(live, &d.pendingEnt[i])
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].drainVT != live[j].drainVT {
			return live[i].drainVT < live[j].drainVT
		}
		return live[i].line < live[j].line
	})
	for _, p := range live {
		base := p.line << LineShift
		for w := uint64(0); w < WordsPerLine; w++ {
			d.nvmMedia[base+w] = p.payload[w]
		}
		if d.mediaObs != nil {
			d.mediaObs(p.line, p.payload)
		}
		if p.drainVT > maxDrainVT {
			maxDrainVT = p.drainVT
		}
	}
	d.pendingClear()
	return len(live), maxDrainVT
}
