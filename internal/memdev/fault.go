package memdev

import (
	"fmt"
	"sort"
	"sync/atomic"

	"goptm/internal/durability"
)

// This file is the crash checker's fault-injection surface: an
// adversarial refinement of Crash. The baseline Crash applies the
// durability domain's policy deterministically; real hardware is
// nondeterministic inside the window that policy leaves open —
//
//   - a dirty cache line may have been evicted into the WPQ at any
//     moment before the failure (so it survives an ADR crash even
//     though the program never flushed it);
//   - a flush that was issued but never ordered by an sfence may still
//     be sitting in the core when the power fails (so it is lost even
//     though the model's WPQ accepted it);
//   - an in-flight media write is atomic only at 8-byte granularity,
//     so a 64 B line can land torn: any subset of its words new, the
//     rest old (Marathe et al., "Persistent Memory Transactions").
//
// CrashWith lets the checker pick any point in that window; the
// PendingSnapshot/DirtyLineList introspection tells it which lines are
// up for grabs, and Snapshot/Restore let it replay many fault variants
// of one crash instant without re-running the simulation.

// FaultKind selects how a fault-eligible line resolves at crash time.
type FaultKind uint8

// The fault kinds. Apply forces the line's in-flight payload onto
// media even where the baseline policy would lose it (early eviction,
// a racing drain); Drop loses it even where the baseline would keep it
// (flush still in the core, line still in the cache); Tear lands a
// word-granular mix of old and new.
const (
	FaultApply FaultKind = iota
	FaultDrop
	FaultTear
)

// String names the kind for reports and repro files.
func (k FaultKind) String() string {
	switch k {
	case FaultApply:
		return "apply"
	case FaultDrop:
		return "drop"
	case FaultTear:
		return "tear"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// LineFault overrides the crash policy for one NVM line.
type LineFault struct {
	Line uint64    `json:"line"`
	Kind FaultKind `json:"kind"`
	// Mask is consulted by FaultTear only: bit w set means word w of
	// the line takes its new (in-flight) value, clear means it keeps
	// the old media value.
	Mask uint8 `json:"mask,omitempty"`
}

// PendingInfo describes one WPQ entry for fault enumeration.
type PendingInfo struct {
	Line    uint64
	DrainVT int64 // when the media write completes
	Ordered bool  // an sfence has guaranteed the entry (see pendingWrite)
}

// PendingSnapshot lists the WPQ entries, sorted by line so enumeration
// is deterministic.
func (d *Device) PendingSnapshot() []PendingInfo {
	d.mu.Lock()
	out := make([]PendingInfo, 0, d.pendingLive)
	for i := range d.pendingEnt {
		if !d.pendingLiveAt(i) {
			continue
		}
		p := &d.pendingEnt[i]
		out = append(out, PendingInfo{Line: p.line, DrainVT: p.drainVT, Ordered: p.ordered})
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// DirtyLineList lists the NVM lines in the DirtyCache state, in line
// order.
func (d *Device) DirtyLineList() []uint64 {
	var out []uint64
	for ln := range d.lineState {
		if atomic.LoadUint32(&d.lineState[ln]) == LineDirtyCache {
			out = append(out, uint64(ln))
		}
	}
	return out
}

// Image is a deep copy of a Device's full state, taken by Snapshot and
// reinstated by Restore. It lets a crash checker return to the exact
// pre-crash instant and apply a different fault plan without re-running
// the simulation.
type Image struct {
	nvmVol    []uint64
	nvmMedia  []uint64
	dramVol   []uint64
	lineState []uint32
	pending   []pendingWrite // live entries only
	stores    int64
	flushes   int64
}

// Snapshot captures the device state. The device must be quiescent
// (no concurrent accessors), which is the case at a simulated crash.
func (d *Device) Snapshot() *Image {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := &Image{
		nvmVol:    append([]uint64(nil), d.nvmVol...),
		nvmMedia:  append([]uint64(nil), d.nvmMedia...),
		dramVol:   append([]uint64(nil), d.dramVol...),
		lineState: append([]uint32(nil), d.lineState...),
		pending:   make([]pendingWrite, 0, d.pendingLive),
		stores:    d.stores,
		flushes:   d.flushes,
	}
	for i := range d.pendingEnt {
		if d.pendingLiveAt(i) {
			img.pending = append(img.pending, d.pendingEnt[i])
		}
	}
	return img
}

// Restore reinstates a previously captured Image. Like Snapshot it
// requires a quiescent device.
func (d *Device) Restore(img *Image) {
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(d.nvmVol, img.nvmVol)
	copy(d.nvmMedia, img.nvmMedia)
	copy(d.dramVol, img.dramVol)
	copy(d.lineState, img.lineState)
	d.pendingClear()
	for i := range img.pending {
		e, _ := d.pendingPut(img.pending[i].line)
		*e = img.pending[i]
	}
	d.stores = img.stores
	d.flushes = img.flushes
}

// CrashWith is Crash with an adversarial fault plan layered on top of
// the domain's baseline policy. A faulted line resolves by its
// LineFault instead of the policy; the in-flight payload is the line's
// volatile (dirty-cache) image if the line was stored to after its last
// flush, else its pending WPQ snapshot. CrashWith(vt, dom, nil) is
// exactly Crash(vt, dom).
func (d *Device) CrashWith(vt int64, dom durability.Domain, faults []LineFault) {
	byLine := make(map[uint64]LineFault, len(faults))
	for _, f := range faults {
		byLine[f.Line] = f
	}

	d.mu.Lock()
	// Ordered entries first: the fence that ordered them guaranteed
	// their drain, so they reach media before any fault resolves. A
	// drop or tear of a newer in-flight image of the same line (a dirty
	// overlay from a later store) then falls back to the fenced image,
	// never behind it.
	if dom.WPQPersists() {
		for i := range d.pendingEnt {
			if d.pendingLiveAt(i) && d.pendingEnt[i].ordered {
				d.writeMediaLocked(d.pendingEnt[i].line, d.pendingEnt[i].payload)
			}
		}
	}
	for i := range d.pendingEnt {
		if !d.pendingLiveAt(i) {
			continue
		}
		p := &d.pendingEnt[i]
		ln := p.line
		if f, ok := byLine[ln]; ok {
			// A line that was stored to after its last flush resolves
			// against the newer volatile image in the dirty pass below.
			if atomic.LoadUint32(&d.lineState[ln]) != LineDirtyCache {
				d.resolveLocked(ln, p.payload, f)
			}
			continue
		}
		if dom.WPQPersists() || p.drainVT <= vt {
			d.writeMediaLocked(ln, p.payload)
		}
	}
	d.pendingClear()

	for ln := range d.lineState {
		if atomic.LoadUint32(&d.lineState[ln]) != LineDirtyCache {
			continue
		}
		var vol [WordsPerLine]uint64
		base := uint64(ln) << LineShift
		for w := uint64(0); w < WordsPerLine; w++ {
			vol[w] = atomic.LoadUint64(&d.nvmVol[base+w])
		}
		if f, ok := byLine[uint64(ln)]; ok {
			d.resolveLocked(uint64(ln), vol, f)
		} else if dom.CachePersists() {
			d.writeMediaLocked(uint64(ln), vol)
		}
	}

	copy(d.nvmVol, d.nvmMedia)
	d.mu.Unlock()

	for i := range d.dramVol {
		atomic.StoreUint64(&d.dramVol[i], 0)
	}
	for i := range d.lineState {
		atomic.StoreUint32(&d.lineState[i], LineClean)
	}
}

// resolveLocked applies one LineFault given the line's in-flight
// payload. Caller holds d.mu.
func (d *Device) resolveLocked(ln uint64, payload [WordsPerLine]uint64, f LineFault) {
	switch f.Kind {
	case FaultApply:
		d.writeMediaLocked(ln, payload)
	case FaultDrop:
		// Nothing reaches media.
	case FaultTear:
		base := ln << LineShift
		for w := uint64(0); w < WordsPerLine; w++ {
			if f.Mask&(1<<w) != 0 {
				d.nvmMedia[base+w] = payload[w]
			}
		}
	}
}

// writeMediaLocked copies a full line payload onto media. Caller holds
// d.mu.
func (d *Device) writeMediaLocked(ln uint64, payload [WordsPerLine]uint64) {
	base := ln << LineShift
	for w := uint64(0); w < WordsPerLine; w++ {
		d.nvmMedia[base+w] = payload[w]
	}
}
