package core

import (
	"fmt"

	"goptm/internal/alloc"
	"goptm/internal/durability"
	"goptm/internal/membus"
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/orec"
)

// TM is the persistent transactional memory runtime.
type TM struct {
	cfg    Config
	bus    *membus.Bus
	orecs  *orec.Table
	heap   *alloc.Heap
	base   memdev.Addr // medium base: 0 (NVM) or memdev.DRAMBase
	stride uint64      // descriptor stride in words
	rec    *obs.Recorder

	// met is the counter registry — the single home of the
	// commit/abort/abort-reason counters. Always non-nil: when the
	// configuration supplies none, a private zero-config registry
	// provides the same atomic counters the TM previously kept ad hoc.
	met *metrics.Registry

	// crashHook, when non-nil, is invoked at named points of the
	// commit protocols so crash-recovery tests can cut execution at
	// every interesting instant. Production paths never set it.
	crashHook func(point string, th *Thread)
}

// SetCrashHook installs a protocol-point callback (testing only).
// Points, in protocol order:
//
//	lazy  : "lazy:pre-log-flush", "lazy:pre-marker", "lazy:post-marker",
//	        "lazy:mid-writeback", "lazy:post-writeback",
//	        "lazy:post-reclaim"
//	eager : "eager:pre-log", "eager:pre-marker", "eager:post-log",
//	        "eager:post-update" (per write); "eager:pre-clear",
//	        "eager:post-clear" (commit); "eager:post-rollback" (abort)
//	htm   : "htm:pre-publish", "htm:post-publish" (the publish loop
//	        between them models a hardware-atomic TSX commit and must
//	        not be cut)
//
// To simulate an instant power failure, the hook should panic with a
// PowerFailure value: Atomic propagates it without rolling anything
// back, leaving the persistent image exactly as the crash found it.
func (tm *TM) SetCrashHook(fn func(point string, th *Thread)) { tm.crashHook = fn }

// PowerFailure is the panic value crash-injection hooks use to stop
// the machine dead at a protocol point (see SetCrashHook).
type PowerFailure struct{ Point string }

func (tm *TM) hook(point string, th *Thread) {
	if tm.crashHook != nil {
		tm.crashHook(point, th)
	}
}

// mediumBase returns the base word address of the persistent medium.
func mediumBase(m Medium) memdev.Addr {
	if m == MediumDRAM {
		return memdev.DRAMBase
	}
	return 0
}

// BusConfig returns the memory-system configuration New would build
// for cfg: the device geometry derived from the thread count, log
// capacity, and heap size, plus the pass-through timing knobs. It is
// exported so a machine can be reconstructed around a restored media
// image (membus.New + memdev image restore + Reopen) — the path a
// persistent service takes across process restarts.
func BusConfig(cfg Config) membus.Config {
	cfg = cfg.withDefaults()
	meta := metaWords(cfg.Threads, cfg.MaxLogEntries)
	persist := meta + cfg.HeapWords

	scratch := cfg.ScratchDRAMWords
	if scratch == 0 {
		scratch = 1 << 16
	}
	var devCfg memdev.Config
	if cfg.Medium == MediumNVM {
		devCfg = memdev.Config{NVMWords: alignLine(persist), DRAMWords: alignLine(scratch)}
	} else {
		// DRAM-ramdisk configuration: persistent data in DRAM; a token
		// NVM region remains so the device is well formed.
		devCfg = memdev.Config{NVMWords: 64, DRAMWords: alignLine(persist + scratch)}
	}
	return membus.Config{
		Threads:    cfg.Threads,
		Domain:     cfg.Domain,
		Dev:        devCfg,
		Ctl:        cfg.Ctl,
		L3Lines:    cfg.L3Lines,
		PageFrames: cfg.PageFrames,
		WindowNS:   cfg.WindowNS,
		Lockstep:   cfg.Lockstep,
		Recorder:   cfg.Recorder,
		Metrics:    cfg.Metrics,
	}
}

// NewBus builds the simulated memory system New would attach to for
// cfg, including the PDRAM-Lite log-page routing that must be
// registered before any traffic. Pair it with Attach or Reopen to
// bring a TM up on a media image restored from elsewhere.
func NewBus(cfg Config) (*membus.Bus, error) {
	cfg = cfg.withDefaults()
	bus, err := membus.New(BusConfig(cfg))
	if err != nil {
		return nil, err
	}
	// Under PDRAM-Lite the per-thread log areas live in persistent
	// DRAM pages (the paper's design point: only redo logs are
	// cached). Register the routing before any traffic.
	if cfg.Domain == durability.PDRAMLite && cfg.Medium == MediumNVM {
		bus.RoutePages(mediumBase(cfg.Medium)+offDescs, uint64(cfg.Threads)*descStride(cfg.MaxLogEntries))
	}
	return bus, nil
}

// New builds the simulated machine, formats the TM's persistent
// metadata and heap, and returns the runtime.
func New(cfg Config) (*TM, error) {
	cfg = cfg.withDefaults()
	if cfg.Algo == AlgoHTM && cfg.Domain.RequiresFlush() {
		return nil, fmt.Errorf("core: HTM is incompatible with %v: a clwb inside a hardware transaction aborts it (use eADR or a PDRAM domain)", cfg.Domain)
	}
	meta := metaWords(cfg.Threads, cfg.MaxLogEntries)

	bus, err := NewBus(cfg)
	if err != nil {
		return nil, err
	}

	tm := &TM{
		cfg:    cfg,
		bus:    bus,
		orecs:  newOrecs(cfg),
		base:   mediumBase(cfg.Medium),
		stride: descStride(cfg.MaxLogEntries),
		rec:    cfg.Recorder,
		met:    ensureRegistry(cfg),
	}

	// Format persistent metadata with a temporary setup context.
	setup := bus.NewContext(0)
	setup.Store(tm.base+offTMMagic, tmMagic)
	setup.Store(tm.base+offThreads, uint64(cfg.Threads))
	setup.Store(tm.base+offMaxLog, uint64(cfg.MaxLogEntries))
	setup.Store(tm.base+offHeapSize, cfg.HeapWords)
	setup.CLWB(tm.base)
	for t := 0; t < cfg.Threads; t++ {
		d := tm.descBase(t)
		setup.Store(d+descStatusOff, packMarker(statusIdle, 0, 0))
		setup.CLWB(d)
	}
	setup.SFence()
	heap, err := alloc.Format(setup, tm.base+memdev.Addr(meta), cfg.HeapWords, rootSlots)
	if err != nil {
		setup.Detach()
		return nil, err
	}
	tm.heap = heap
	setup.Detach()
	return tm, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *TM {
	tm, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return tm
}

// newOrecs builds the orec table for cfg: lockstep configurations get
// the serial (atomic-free) table, relying on the floor handoff for
// ordering.
func newOrecs(cfg Config) *orec.Table {
	if cfg.Lockstep {
		return orec.NewSerial(cfg.OrecSize)
	}
	return orec.New(cfg.OrecSize)
}

// ensureRegistry returns the configured metrics registry, or a private
// zero-config one (counters only, no sampling) so the TM's outcome
// counters always have a home.
func ensureRegistry(cfg Config) *metrics.Registry {
	if cfg.Metrics != nil {
		return cfg.Metrics
	}
	return metrics.New(metrics.Config{Serial: cfg.Lockstep})
}

func alignLine(w uint64) uint64 {
	return (w + memdev.WordsPerLine - 1) &^ uint64(memdev.WordsPerLine-1)
}

// descBase returns thread t's descriptor base address.
func (tm *TM) descBase(t int) memdev.Addr {
	return tm.base + offDescs + memdev.Addr(uint64(t)*tm.stride)
}

// Bus exposes the memory system.
func (tm *TM) Bus() *membus.Bus { return tm.bus }

// Heap exposes the persistent allocator.
func (tm *TM) Heap() *alloc.Heap { return tm.heap }

// Orecs exposes the orec table (tests and recovery).
func (tm *TM) Orecs() *orec.Table { return tm.orecs }

// Config returns the runtime's configuration (after defaulting).
func (tm *TM) Config() Config { return tm.cfg }

// Recorder exposes the attached observability recorder (nil when
// observability is off).
func (tm *TM) Recorder() *obs.Recorder { return tm.rec }

// Metrics exposes the counter registry (always non-nil).
func (tm *TM) Metrics() *metrics.Registry { return tm.met }

// Commits reports the total committed transactions.
func (tm *TM) Commits() int64 { return tm.met.Get(metrics.CtrCommits) }

// Aborts reports the total aborted transaction attempts.
func (tm *TM) Aborts() int64 { return tm.met.Get(metrics.CtrAborts) }

// AbortsByReason reports the aborted attempts classified by cause.
func (tm *TM) AbortsByReason() [NumAbortReasons]int64 {
	var out [NumAbortReasons]int64
	for i := range out {
		out[i] = tm.met.Get(abortCounter(AbortReason(i)))
	}
	return out
}

// ResetStats zeroes the global transaction-outcome counters (used to
// exclude warmup from measurements). Device and media counters remain
// cumulative since construction, matching the component counters they
// are read alongside.
func (tm *TM) ResetStats() {
	tm.met.ResetTxnCounters()
}

// SetRoot durably publishes a root pointer (see alloc.Heap.SetRoot).
func (tm *TM) SetRoot(th *Thread, slot int, a memdev.Addr) {
	tm.heap.SetRoot(th.ctx, slot, a)
}

// Root reads a root pointer.
func (tm *TM) Root(th *Thread, slot int) memdev.Addr {
	return tm.heap.Root(th.ctx, slot)
}

// Crash simulates a power failure at virtual time vt: the durability
// domain's policy is applied and all volatile state (caches, page
// cache, orec table) is lost. Call Recover to bring the heap back to
// a consistent state before reuse.
func (tm *TM) Crash(vt int64) {
	tm.bus.Crash(vt)
	tm.orecs.Reset()
}

// CrashWith is Crash with an adversarial fault plan layered on the
// domain's policy (see memdev.CrashWith); the crash checker uses it to
// explore worst-case WPQ drains and torn lines.
func (tm *TM) CrashWith(vt int64, faults []memdev.LineFault) {
	tm.bus.CrashWith(vt, faults)
	tm.orecs.Reset()
}

// Attach re-opens a TM on an existing bus after a crash, validating
// the persistent superblock. It does not run recovery; call Recover.
func Attach(bus *membus.Bus, cfg Config) (*TM, error) {
	cfg = cfg.withDefaults()
	tm := &TM{
		cfg:    cfg,
		bus:    bus,
		orecs:  newOrecs(cfg),
		base:   mediumBase(cfg.Medium),
		stride: descStride(cfg.MaxLogEntries),
		rec:    cfg.Recorder,
		met:    ensureRegistry(cfg),
	}
	probe := bus.NewContext(0)
	defer probe.Detach()
	if got := probe.Load(tm.base + offTMMagic); got != tmMagic {
		return nil, fmt.Errorf("core: bad TM magic %#x", got)
	}
	if got := probe.Load(tm.base + offThreads); got != uint64(cfg.Threads) {
		return nil, fmt.Errorf("core: thread count mismatch: stored %d, config %d", got, cfg.Threads)
	}
	if got := probe.Load(tm.base + offMaxLog); got != uint64(cfg.MaxLogEntries) {
		return nil, fmt.Errorf("core: log size mismatch: stored %d, config %d", got, cfg.MaxLogEntries)
	}
	return tm, nil
}
