package core

import (
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

// crashPanic is the PowerFailure value used by the crash tests.
type crashPanic = PowerFailure

// runUntilCrash executes fn on a fresh thread and triggers a simulated
// power failure at the named protocol point. It returns the TM
// reopened after recovery.
func runUntilCrash(t *testing.T, tm *TM, point string, fn func(tx *Tx)) (*TM, RecoveryReport) {
	t.Helper()
	tm.SetCrashHook(func(p string, th *Thread) {
		if p == point {
			panic(crashPanic{Point: p})
		}
	})
	th := tm.Thread(0)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("crash hook %q never fired", point)
			}
			if _, ok := r.(crashPanic); !ok {
				panic(r)
			}
		}()
		th.Atomic(fn)
	}()
	vt := th.Now()
	th.Detach()
	tm.Crash(vt)
	tm2, rep, err := Reopen(tm.Bus(), tm.Config())
	if err != nil {
		t.Fatalf("reopen after crash at %q: %v", point, err)
	}
	return tm2, rep
}

// prepTM builds a TM with one allocated, rooted, committed block of
// cells all holding `initial`.
func prepTM(t *testing.T, algo Algo, dom durability.Domain, cells int, initial uint64) (*TM, memdev.Addr) {
	t.Helper()
	tm := smallTM(t, algo, dom, 1)
	th := tm.Thread(0)
	var base memdev.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(uint64(cells))
		for i := 0; i < cells; i++ {
			tx.Store(base+memdev.Addr(i), initial)
		}
	})
	tm.SetRoot(th, 0, base)
	th.Detach()
	return tm, base
}

func readCells(t *testing.T, tm *TM, base memdev.Addr, cells int) []uint64 {
	t.Helper()
	th := tm.Thread(0)
	defer th.Detach()
	out := make([]uint64, cells)
	th.Atomic(func(tx *Tx) {
		for i := range out {
			out[i] = tx.Load(base + memdev.Addr(i))
		}
	})
	return out
}

func assertAll(t *testing.T, got []uint64, want uint64, msg string) {
	t.Helper()
	for i, v := range got {
		if v != want {
			t.Fatalf("%s: cell %d = %d, want %d (all-or-nothing violated)", msg, i, v, want)
		}
	}
}

func TestCrashRedoBeforeMarkerDiscards(t *testing.T) {
	// Crash after the log is flushed but before the commit marker:
	// the transaction never committed; recovery must discard it.
	tm, base := prepTM(t, OrecLazy, durability.ADR, 8, 1)
	tm2, rep := runUntilCrash(t, tm, "lazy:pre-marker", func(tx *Tx) {
		for i := 0; i < 8; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	if rep.RedoReplayed != 0 {
		t.Fatalf("replayed %d transactions, want 0", rep.RedoReplayed)
	}
	assertAll(t, readCells(t, tm2, base, 8), 1, "pre-marker crash")
}

func TestCrashRedoAfterMarkerReplays(t *testing.T) {
	// Crash after the commit marker: the transaction is durably
	// committed even though no writeback happened; recovery replays.
	tm, base := prepTM(t, OrecLazy, durability.ADR, 8, 1)
	tm2, rep := runUntilCrash(t, tm, "lazy:post-marker", func(tx *Tx) {
		for i := 0; i < 8; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	if rep.RedoReplayed != 1 || rep.EntriesApplied != 8 {
		t.Fatalf("report = %+v, want 1 replay of 8 entries", rep)
	}
	assertAll(t, readCells(t, tm2, base, 8), 2, "post-marker crash")
}

func TestCrashRedoMidWritebackReplays(t *testing.T) {
	// Crash mid-writeback: some in-place lines durable, some not; the
	// redo log must make the result whole.
	tm, base := prepTM(t, OrecLazy, durability.ADR, 32, 1)
	tm2, rep := runUntilCrash(t, tm, "lazy:mid-writeback", func(tx *Tx) {
		for i := 0; i < 32; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	if rep.RedoReplayed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	assertAll(t, readCells(t, tm2, base, 32), 2, "mid-writeback crash")
}

func TestCrashRedoAfterWritebackIdempotent(t *testing.T) {
	// Crash after writeback but before log reclaim: marker still says
	// COMMITTED; recovery replays idempotently.
	tm, base := prepTM(t, OrecLazy, durability.ADR, 8, 1)
	tm2, rep := runUntilCrash(t, tm, "lazy:post-writeback", func(tx *Tx) {
		for i := 0; i < 8; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	if rep.RedoReplayed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	assertAll(t, readCells(t, tm2, base, 8), 2, "post-writeback crash")
}

func TestCrashUndoMidTxnRollsBack(t *testing.T) {
	// Crash mid-transaction with in-place writes already durable: the
	// undo log must restore the old values.
	tm, base := prepTM(t, OrecEager, durability.ADR, 8, 1)
	writesDone := 0
	tm.SetCrashHook(nil)
	tmRef := tm
	var crashAt = 5
	tm.SetCrashHook(func(p string, th *Thread) {
		if p == "eager:post-log" {
			writesDone++
			if writesDone == crashAt {
				panic(crashPanic{Point: p})
			}
		}
	})
	th := tmRef.Thread(0)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashPanic); !ok {
					panic(r)
				}
			}
		}()
		th.Atomic(func(tx *Tx) {
			for i := 0; i < 8; i++ {
				tx.Store(base+memdev.Addr(i), 2)
			}
		})
	}()
	vt := th.Now()
	th.Detach()
	tmRef.Crash(vt)
	tm2, rep, err := Reopen(tmRef.Bus(), tmRef.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoRolledBack != 1 {
		t.Fatalf("report = %+v, want 1 rollback", rep)
	}
	assertAll(t, readCells(t, tm2, base, 8), 1, "mid-undo crash")
}

func TestCrashUndoBeforeClearKeepsResult(t *testing.T) {
	// Crash right before the status clear: all data writes are
	// durable, the log still says ACTIVE, so recovery rolls back — the
	// transaction never reached its durable commit point, and
	// rollback restores a consistent pre-transaction state.
	tm, base := prepTM(t, OrecEager, durability.ADR, 8, 1)
	tm2, rep := runUntilCrash(t, tm, "eager:pre-clear", func(tx *Tx) {
		for i := 0; i < 8; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	if rep.UndoRolledBack != 1 {
		t.Fatalf("report = %+v, want rollback", rep)
	}
	assertAll(t, readCells(t, tm2, base, 8), 1, "pre-clear crash")
}

func TestCrashCleanIdleNothingToDo(t *testing.T) {
	for _, algo := range bothAlgos {
		tm, base := prepTM(t, algo, durability.ADR, 4, 9)
		th := tm.Thread(0)
		vt := th.Now()
		th.Detach()
		tm.Crash(vt)
		tm2, rep, err := Reopen(tm.Bus(), tm.Config())
		if err != nil {
			t.Fatal(err)
		}
		if rep.RedoReplayed != 0 || rep.UndoRolledBack != 0 {
			t.Fatalf("%v: clean crash recovered work: %+v", algo, rep)
		}
		assertAll(t, readCells(t, tm2, base, 4), 9, "clean crash")
	}
}

func TestCommittedWorkSurvivesCrashADR(t *testing.T) {
	// Durability (the D in ACID): everything committed before the
	// crash must be present afterwards, for both algorithms.
	for _, algo := range bothAlgos {
		tm, base := prepTM(t, algo, durability.ADR, 16, 0)
		th := tm.Thread(0)
		for round := uint64(1); round <= 5; round++ {
			th.Atomic(func(tx *Tx) {
				for i := 0; i < 16; i++ {
					tx.Store(base+memdev.Addr(i), round*100+uint64(i))
				}
			})
		}
		vt := th.Now()
		th.Detach()
		tm.Crash(vt)
		tm2, _, err := Reopen(tm.Bus(), tm.Config())
		if err != nil {
			t.Fatal(err)
		}
		got := readCells(t, tm2, base, 16)
		for i, v := range got {
			if want := uint64(500) + uint64(i); v != want {
				t.Fatalf("%v: cell %d = %d, want %d", algo, i, v, want)
			}
		}
	}
}

func TestMissingFlushesLoseDataUnderADR(t *testing.T) {
	// The defensive measures exist for a reason: an eADR-style
	// protocol (no clwb/sfence) run under an ADR power budget loses
	// committed data. We emulate the bug by running the eADR-elided
	// protocol and crashing with ADR semantics.
	tm, err := New(Config{
		Algo: OrecLazy, Medium: MediumNVM, Domain: durability.EADR,
		Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	var a memdev.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(8)
		tx.Store(a, 42)
	})
	tm.SetRoot(th, 0, a)
	vt := th.Now()
	th.Detach()
	// Crash as if only ADR reserve power existed.
	tm.Bus().Device().Crash(vt, durability.ADR)
	ctx := tm.Bus().NewContext(0)
	defer ctx.Detach()
	if got := ctx.Load(a); got == 42 {
		t.Fatal("unflushed committed data survived an ADR crash; the model lost the ADR/eADR distinction")
	}
}

func TestRecoverRejectsDRAMMedium(t *testing.T) {
	tm, err := New(Config{
		Algo: OrecLazy, Medium: MediumDRAM, Domain: durability.ADR,
		Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Recover(); err == nil {
		t.Fatal("recovery on a DRAM ramdisk succeeded")
	}
}

func TestAttachValidatesConfig(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.ADR, 2)
	cfg := tm.Config()
	cfg.Threads = 4 // mismatch
	if _, err := Attach(tm.Bus(), cfg); err == nil {
		t.Fatal("attach with mismatched thread count succeeded")
	}
	cfg = tm.Config()
	cfg.MaxLogEntries = 512
	if _, err := Attach(tm.Bus(), cfg); err == nil {
		t.Fatal("attach with mismatched log size succeeded")
	}
}

func TestCrashRecoveryEADRKeepsEverything(t *testing.T) {
	// Under eADR, even the unflushed protocol is durable: a crash
	// right before the marker... cannot be injected the same way since
	// eADR elides the protocol points' meaning, but committed work
	// must survive.
	for _, algo := range bothAlgos {
		tm, base := prepTM(t, algo, durability.EADR, 8, 3)
		th := tm.Thread(0)
		th.Atomic(func(tx *Tx) {
			for i := 0; i < 8; i++ {
				tx.Store(base+memdev.Addr(i), 4)
			}
		})
		vt := th.Now()
		th.Detach()
		tm.Crash(vt)
		tm2, _, err := Reopen(tm.Bus(), tm.Config())
		if err != nil {
			t.Fatal(err)
		}
		assertAll(t, readCells(t, tm2, base, 8), 4, "eADR crash")
	}
}

func TestCrashRecoveryPDRAMKeepsEverything(t *testing.T) {
	for _, algo := range bothAlgos {
		for _, dom := range []durability.Domain{durability.PDRAM, durability.PDRAMLite} {
			tm, base := prepTM(t, algo, dom, 8, 3)
			th := tm.Thread(0)
			th.Atomic(func(tx *Tx) {
				for i := 0; i < 8; i++ {
					tx.Store(base+memdev.Addr(i), 4)
				}
			})
			vt := th.Now()
			th.Detach()
			tm.Crash(vt)
			tm2, _, err := Reopen(tm.Bus(), tm.Config())
			if err != nil {
				t.Fatal(err)
			}
			assertAll(t, readCells(t, tm2, base, 8), 4, dom.String()+" crash")
		}
	}
}

func TestRecoverySweepsInFlightAllocations(t *testing.T) {
	// A transaction that allocates and crashes mid-flight leaks
	// blocks; recovery's GC must reclaim them.
	tm, base := prepTM(t, OrecLazy, durability.ADR, 4, 1)
	_, rep := runUntilCrash(t, tm, "lazy:pre-marker", func(tx *Tx) {
		tx.Alloc(32)
		tx.Alloc(32)
		tx.Store(base, 2)
	})
	if rep.BlocksSwept < 2 {
		t.Fatalf("swept %d blocks, want >= 2 (in-flight allocations)", rep.BlocksSwept)
	}
}
