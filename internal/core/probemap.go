package core

// probeMap is a small open-addressed hash table with epoch-based O(1)
// clearing, used for the per-attempt write-set index (wpos) and the
// locked-orec versions (lockVer). Both tables are probed on every
// transactional Load/Store and cleared on every attempt; the built-in
// map paid a hash-map allocation or a bucket walk (clear) per attempt
// plus heavier per-probe dispatch, which profiling showed near the top
// of the sweep hot path. A slot is live only when its epoch matches the
// table's current epoch, so reset is one increment.
type probeMap struct {
	keys  []uint64
	vals  []uint64
	epoch []uint32
	cur   uint32
	mask  uint64
	shift uint
	n     int
}

// newProbeMap returns a table with capacity for at least hint entries
// before growing. Capacity is a power of two kept at most half full.
func newProbeMap(hint int) *probeMap {
	size := 16
	for size < 4*hint {
		size *= 2
	}
	m := &probeMap{cur: 1}
	m.alloc(size)
	return m
}

func (m *probeMap) alloc(size int) {
	m.keys = make([]uint64, size)
	m.vals = make([]uint64, size)
	m.epoch = make([]uint32, size)
	m.mask = uint64(size - 1)
	shift := uint(64)
	for s := size; s > 1; s >>= 1 {
		shift--
	}
	m.shift = shift
}

// reset empties the table in O(1) by advancing the epoch.
func (m *probeMap) reset() {
	m.n = 0
	m.cur++
	if m.cur == 0 { // epoch wrapped: stale slots would look live again
		for i := range m.epoch {
			m.epoch[i] = 0
		}
		m.cur = 1
	}
}

// slot is the fibonacci-hash home slot for k.
func (m *probeMap) slot(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> m.shift
}

// get returns the value stored for k, or 0, false.
func (m *probeMap) get(k uint64) (uint64, bool) {
	for i := m.slot(k); ; i = (i + 1) & m.mask {
		if m.epoch[i] != m.cur {
			return 0, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

// put inserts or overwrites k -> v.
func (m *probeMap) put(k, v uint64) {
	for i := m.slot(k); ; i = (i + 1) & m.mask {
		if m.epoch[i] != m.cur {
			m.keys[i], m.vals[i], m.epoch[i] = k, v, m.cur
			m.n++
			if uint64(m.n)*2 > m.mask {
				m.grow()
			}
			return
		}
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
	}
}

// grow doubles capacity, rehashing the live entries.
func (m *probeMap) grow() {
	keys, vals, epoch, cur := m.keys, m.vals, m.epoch, m.cur
	m.alloc(2 * len(keys))
	m.n = 0
	m.cur = 1
	for i := range keys {
		if epoch[i] == cur {
			m.put(keys[i], vals[i])
		}
	}
}
