package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/simtime"
)

// tortureRound builds a bank, commits a random number of transfers,
// crashes at a random protocol point mid-transfer, recovers, and
// checks conservation. It returns the recovered TM for follow-on
// rounds.
func tortureRound(t *testing.T, algo Algo, dom durability.Domain, r *simtime.Rand) {
	t.Helper()
	const accounts = 32
	tm, err := New(Config{
		Algo: algo, Medium: MediumNVM, Domain: dom,
		Threads: 1, HeapWords: 1 << 15, MaxLogEntries: 128, OrecSize: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	var base memdev.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(accounts)
		for a := 0; a < accounts; a++ {
			tx.Store(base+memdev.Addr(a), 100)
		}
	})
	tm.SetRoot(th, 0, base)

	points := []string{"lazy:pre-marker", "lazy:post-marker", "lazy:mid-writeback", "lazy:post-writeback"}
	if algo == OrecEager {
		points = []string{"eager:post-log", "eager:pre-clear"}
	}
	point := points[r.Intn(len(points))]
	// For eager:post-log, fire after a random number of writes so the
	// crash lands anywhere inside the transaction.
	fireAfter := 1 + r.Intn(4)
	seen := 0
	tm.SetCrashHook(func(p string, _ *Thread) {
		if p != point {
			return
		}
		seen++
		if seen >= fireAfter {
			panic(crashPanic{Point: p})
		}
	})

	commits := r.Intn(10)
	transfer := func() {
		from := memdev.Addr(r.Intn(accounts))
		to := memdev.Addr(r.Intn(accounts))
		amt := uint64(r.Intn(30))
		th.Atomic(func(tx *Tx) {
			tx.Store(base+from, tx.Load(base+from)-amt)
			tx.Store(base+to, tx.Load(base+to)+amt)
		})
	}
	crashed := false
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if _, ok := rec.(crashPanic); !ok {
					panic(rec)
				}
				crashed = true
			}
		}()
		for i := 0; i <= commits; i++ {
			transfer()
		}
	}()
	_ = crashed // a round may finish without crashing; still verified

	vt := th.Now()
	th.Detach()
	tm.Crash(vt)
	tm2, _, err := Reopen(tm.Bus(), tm.Config())
	if err != nil {
		t.Fatalf("%v/%v crash@%s: reopen: %v", algo, dom, point, err)
	}
	th2 := tm2.Thread(0)
	defer th2.Detach()
	root := tm2.Root(th2, 0)
	var sum uint64
	th2.Atomic(func(tx *Tx) {
		sum = 0
		for a := 0; a < accounts; a++ {
			sum += tx.Load(root + memdev.Addr(a))
		}
	})
	if sum != accounts*100 {
		t.Fatalf("%v/%v crash@%s after %d commits: sum=%d, want %d",
			algo, dom, point, commits, sum, accounts*100)
	}
}

func TestCrashTortureRandomPoints(t *testing.T) {
	r := simtime.NewRand(0xC0FFEE)
	for _, algo := range bothAlgos {
		for _, dom := range []durability.Domain{durability.ADR, durability.EADR, durability.PDRAMLite} {
			for round := 0; round < 12; round++ {
				tortureRound(t, algo, dom, r)
			}
		}
	}
}

func TestDoubleCrashRecoveryIdempotent(t *testing.T) {
	// Crash mid-commit, recover, then crash again *immediately after
	// recovery* (before any new work) and recover once more: the
	// second recovery must find a consistent image and change nothing.
	tm, base := prepTM(t, OrecLazy, durability.ADR, 8, 1)
	tm2, rep1 := runUntilCrash(t, tm, "lazy:post-marker", func(tx *Tx) {
		for i := 0; i < 8; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	if rep1.RedoReplayed != 1 {
		t.Fatalf("first recovery: %+v", rep1)
	}
	// Second crash with no intervening work.
	tm2.Crash(1 << 62)
	tm3, rep2, err := Reopen(tm2.Bus(), tm2.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RedoReplayed != 0 || rep2.UndoRolledBack != 0 {
		t.Fatalf("second recovery redid work: %+v", rep2)
	}
	assertAll(t, readCells(t, tm3, base, 8), 2, "double crash")
}

func TestCrashDuringRecoveryReplay(t *testing.T) {
	// Even if the machine dies *during* recovery's redo replay, a
	// subsequent recovery must converge: replay is idempotent because
	// the commit marker is only cleared after the replayed lines are
	// durable.
	tm, base := prepTM(t, OrecLazy, durability.ADR, 16, 1)
	tm2, _ := runUntilCrash(t, tm, "lazy:post-marker", func(tx *Tx) {
		for i := 0; i < 16; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	// tm2 recovered fully. Simulate a crash-during-recovery instead by
	// reconstructing the pre-recovery state: write a fresh committed
	// log manually, replay half of it with raw flushed stores, then
	// crash and recover.
	ctx := tm2.Bus().NewContext(0)
	d := tm2.descBase(0)
	for i := 0; i < 16; i++ {
		ctx.Store(d+descEntries+memdev.Addr(2*i), uint64(base)+uint64(i))
		ctx.Store(d+descEntries+memdev.Addr(2*i)+1, 3)
		ctx.CLWB(d + descEntries + memdev.Addr(2*i))
	}
	ctx.SFence()
	h := logHashSeed
	for i := 0; i < 16; i++ {
		h = mix32(mix32(h, uint64(base)+uint64(i)), 3)
	}
	ctx.Store(d+descStatusOff, packMarker(statusRedoCommitted, 16, h))
	ctx.CLWB(d)
	ctx.SFence()
	// Partial replay: first 5 cells flushed, then the lights go out.
	for i := 0; i < 5; i++ {
		ctx.Store(base+memdev.Addr(i), 3)
		ctx.CLWB(base + memdev.Addr(i))
	}
	ctx.SFence()
	vt := ctx.Now()
	ctx.Detach()
	tm2.Crash(vt)

	tm3, rep, err := Reopen(tm2.Bus(), tm2.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoReplayed != 1 {
		t.Fatalf("recovery after crash-during-recovery: %+v", rep)
	}
	assertAll(t, readCells(t, tm3, base, 16), 3, "crash during recovery")
}

// TestMultiThreadCrashTorture injects a power failure while several
// workers are running concurrently: the hook raises a machine-wide
// stop flag (a real power failure halts every core at once), workers
// drain, and the recovered heap must satisfy conservation.
func TestMultiThreadCrashTorture(t *testing.T) {
	const (
		workers  = 4
		accounts = 32
	)
	r := simtime.NewRand(0xDEADBEEF)
	for round := 0; round < 8; round++ {
		for _, algo := range bothAlgos {
			tm, err := New(Config{
				Algo: algo, Medium: MediumNVM, Domain: durability.ADR,
				Threads: workers, HeapWords: 1 << 16, MaxLogEntries: 128, OrecSize: 1 << 12,
			})
			if err != nil {
				t.Fatal(err)
			}
			setup := tm.Thread(0)
			var base memdev.Addr
			setup.Atomic(func(tx *Tx) {
				base = tx.Alloc(accounts)
				for a := 0; a < accounts; a++ {
					tx.Store(base+memdev.Addr(a), 100)
				}
			})
			tm.SetRoot(setup, 0, base)
			setup.Detach()

			points := []string{"lazy:pre-marker", "lazy:post-marker", "lazy:mid-writeback"}
			if algo == OrecEager {
				points = []string{"eager:post-log", "eager:pre-clear"}
			}
			point := points[r.Intn(len(points))]
			crashAfter := 5 + r.Intn(40) // fire on the Nth protocol-point visit
			var visits, stop atomic.Int64
			tm.SetCrashHook(func(p string, _ *Thread) {
				if p != point || stop.Load() != 0 {
					return
				}
				if visits.Add(1) == int64(crashAfter) {
					stop.Store(1)
					panic(PowerFailure{Point: p})
				}
			})

			ths := make([]*Thread, workers)
			for i := range ths {
				ths[i] = tm.Thread(i)
			}
			var wg sync.WaitGroup
			for _, th := range ths {
				wg.Add(1)
				go func(th *Thread) {
					defer wg.Done()
					defer th.Detach()
					defer func() {
						if rec := recover(); rec != nil {
							if _, ok := rec.(PowerFailure); !ok {
								panic(rec)
							}
						}
					}()
					rr := simtime.NewRand(uint64(th.TID()) + 77)
					for i := 0; i < 100 && stop.Load() == 0; i++ {
						from := memdev.Addr(rr.Intn(accounts))
						to := memdev.Addr(rr.Intn(accounts))
						amt := uint64(rr.Intn(20))
						th.Atomic(func(tx *Tx) {
							// A power failure halts every core at once:
							// once the flag is up, no thread may keep
							// executing (a dead thread's orec locks are
							// never released, so survivors would retry
							// forever).
							if stop.Load() != 0 {
								panic(PowerFailure{Point: "halt"})
							}
							tx.Store(base+from, tx.Load(base+from)-amt)
							tx.Store(base+to, tx.Load(base+to)+amt)
						})
					}
				}(th)
			}
			wg.Wait()

			probe := tm.Thread(0)
			vt := probe.Now()
			probe.Detach()
			tm.Crash(vt)
			tm2, _, err := Reopen(tm.Bus(), tm.Config())
			if err != nil {
				t.Fatalf("%v round %d: reopen: %v", algo, round, err)
			}
			th2 := tm2.Thread(0)
			var sum uint64
			th2.Atomic(func(tx *Tx) {
				sum = 0
				for a := 0; a < accounts; a++ {
					sum += tx.Load(base + memdev.Addr(a))
				}
			})
			th2.Detach()
			if sum != accounts*100 {
				t.Fatalf("%v round %d crash@%s: sum=%d, want %d",
					algo, round, point, sum, accounts*100)
			}
		}
	}
}
