package core

import (
	"fmt"
	"strings"

	"goptm/internal/cachesim"
	"goptm/internal/pagecache"
)

// MachineStats is a cross-layer snapshot of the simulated machine,
// for debugging and for the CLI tools' verbose output. All counters
// are cumulative since construction.
type MachineStats struct {
	Commits int64
	Aborts  int64
	// AbortReasons classifies Aborts by cause, indexed by AbortReason
	// (lock conflict, validation failure, HTM capacity, explicit).
	AbortReasons [NumAbortReasons]int64

	NVMStores  int64 // stores to NVM addresses
	WPQAccepts int64 // line flushes accepted by the controller
	WPQStallNS int64 // cumulative accept delay from a full queue

	NVMWriteBusyNS int64 // media write-port occupancy
	NVMReadBusyNS  int64 // media read-port occupancy

	CacheHits [5]int64 // by level: index 1..3 = L1..L3, 4 = miss

	PageCache pagecache.Stats // zero when the domain has no directory
}

// MachineStats gathers the snapshot.
func (tm *TM) MachineStats() MachineStats {
	var ms MachineStats
	ms.Commits = tm.Commits()
	ms.Aborts = tm.Aborts()
	ms.AbortReasons = tm.AbortsByReason()
	dev := tm.bus.Device().Counters()
	ms.NVMStores = dev.NVMStores
	ms.WPQAccepts = dev.Flushes
	ms.WPQStallNS = tm.bus.Controller().Counters().StallNS
	ms.NVMWriteBusyNS, ms.NVMReadBusyNS = tm.bus.Controller().Utilization()
	ms.CacheHits = tm.bus.Cache().HitCounts()
	if pc := tm.bus.PageCache(); pc != nil {
		ms.PageCache = pc.Stats()
	}
	return ms
}

// HitRate reports the fraction of cache accesses served at or above
// the L3 (i.e. not by memory).
func (ms MachineStats) HitRate() float64 {
	var total int64
	for _, c := range ms.CacheHits {
		total += c
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(ms.CacheHits[cachesim.Miss])/float64(total)
}

// String renders a compact multi-line report.
func (ms MachineStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "txns: %d commits, %d aborts\n", ms.Commits, ms.Aborts)
	if ms.Aborts > 0 {
		fmt.Fprintf(&b, "aborts by reason:")
		for r := AbortReason(0); r < NumAbortReasons; r++ {
			if r > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " %d %v", ms.AbortReasons[r], r)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "nvm:  %d stores, %d flushes accepted, %.2f ms accept-stall\n",
		ms.NVMStores, ms.WPQAccepts, float64(ms.WPQStallNS)/1e6)
	fmt.Fprintf(&b, "media busy: write %.2f ms, read %.2f ms\n",
		float64(ms.NVMWriteBusyNS)/1e6, float64(ms.NVMReadBusyNS)/1e6)
	fmt.Fprintf(&b, "cache: L1 %d, L2 %d, L3 %d, miss %d (%.1f%% hit)\n",
		ms.CacheHits[cachesim.HitL1], ms.CacheHits[cachesim.HitL2],
		ms.CacheHits[cachesim.HitL3], ms.CacheHits[cachesim.Miss], 100*ms.HitRate())
	if ms.PageCache.Hits+ms.PageCache.Misses > 0 {
		fmt.Fprintf(&b, "page cache: %d hits, %d misses, %d writebacks, %d prefetches (%d used), %d async cleans\n",
			ms.PageCache.Hits, ms.PageCache.Misses, ms.PageCache.Writebacks,
			ms.PageCache.Prefetches, ms.PageCache.PrefetchHit, ms.PageCache.AsyncCleans)
	}
	return b.String()
}
