package core

import (
	"strings"
	"sync"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func TestMachineStatsSnapshot(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.ADR, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var a memdev.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(16)
		for i := 0; i < 8; i++ {
			tx.Store(a+memdev.Addr(i), uint64(i))
		}
	})
	ms := tm.MachineStats()
	if ms.Commits != 1 {
		t.Fatalf("commits = %d", ms.Commits)
	}
	if ms.NVMStores == 0 || ms.WPQAccepts == 0 {
		t.Fatalf("no NVM traffic recorded: %+v", ms)
	}
	if ms.HitRate() <= 0 || ms.HitRate() > 1 {
		t.Fatalf("hit rate = %f", ms.HitRate())
	}
	s := ms.String()
	for _, want := range []string{"commits", "flushes accepted", "cache:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	// No page cache under ADR: the report must omit that section.
	if strings.Contains(s, "page cache:") {
		t.Fatal("ADR report mentions a page cache")
	}
}

func TestMachineStatsPDRAMSection(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.PDRAM, 1)
	th := tm.Thread(0)
	defer th.Detach()
	th.Atomic(func(tx *Tx) {
		a := tx.Alloc(8)
		tx.Store(a, 1)
	})
	ms := tm.MachineStats()
	if ms.PageCache.Hits+ms.PageCache.Misses == 0 {
		t.Fatal("PDRAM run recorded no page-cache traffic")
	}
	if !strings.Contains(ms.String(), "page cache:") {
		t.Fatal("PDRAM report missing page-cache section")
	}
}

func TestMachineStatsEmptyHitRate(t *testing.T) {
	var ms MachineStats
	if ms.HitRate() != 0 {
		t.Fatal("empty stats hit rate not zero")
	}
}

func TestAbortReasonExplicit(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.ADR, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var a memdev.Addr
	th.Atomic(func(tx *Tx) { a = tx.Alloc(8) })
	first := true
	th.Atomic(func(tx *Tx) {
		tx.Store(a, 7)
		if first {
			first = false
			tx.Abort()
		}
	})
	st := th.Stats()
	if st.Aborts != 1 || st.AbortReasons[AbortExplicit] != 1 {
		t.Fatalf("thread stats: aborts=%d reasons=%v", st.Aborts, st.AbortReasons)
	}
	ms := tm.MachineStats()
	if ms.AbortReasons[AbortExplicit] != 1 {
		t.Fatalf("machine stats reasons = %v", ms.AbortReasons)
	}
	s := ms.String()
	for _, want := range []string{"aborts by reason:", "explicit", "lock-conflict"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAbortReasonCapacityHTM(t *testing.T) {
	tm := htmTM(t, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var a memdev.Addr
	th.Atomic(func(tx *Tx) { a = tx.AllocZeroed(HTMCapacity + 8) })
	th.Atomic(func(tx *Tx) {
		for i := 0; i <= HTMCapacity; i++ {
			tx.Store(a+memdev.Addr(i), 1)
		}
	})
	st := th.Stats()
	if st.AbortReasons[AbortCapacity] != 1 {
		t.Fatalf("capacity aborts = %v", st.AbortReasons)
	}
	if st.HTMFallbacks != 1 {
		t.Fatalf("fallbacks = %d", st.HTMFallbacks)
	}
	if tm.MachineStats().AbortReasons[AbortCapacity] != 1 {
		t.Fatalf("machine capacity aborts = %v", tm.MachineStats().AbortReasons)
	}
}

// TestAbortReasonsSumUnderContention hammers one word from two threads
// and checks the invariant that classified aborts account for every
// abort, on each thread and machine-wide.
func TestAbortReasonsSumUnderContention(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 2)
		setup := tm.Thread(0)
		var a memdev.Addr
		setup.Atomic(func(tx *Tx) { a = tx.Alloc(8) })

		var wg sync.WaitGroup
		threads := []*Thread{setup, tm.Thread(1)}
		for _, th := range threads {
			wg.Add(1)
			go func(th *Thread) {
				defer wg.Done()
				defer th.Detach()
				for i := 0; i < 400; i++ {
					th.Atomic(func(tx *Tx) {
						tx.Store(a, tx.Load(a)+1)
					})
				}
			}(th)
		}
		wg.Wait()

		var machineSum int64
		for _, c := range tm.MachineStats().AbortReasons {
			machineSum += c
		}
		if machineSum != tm.Aborts() {
			t.Fatalf("%v: classified %d of %d aborts", algo, machineSum, tm.Aborts())
		}
		for i, th := range threads {
			st := th.Stats()
			var sum int64
			for _, c := range st.AbortReasons {
				sum += c
			}
			if sum != st.Aborts {
				t.Fatalf("%v thread %d: classified %d of %d aborts", algo, i, sum, st.Aborts)
			}
		}
	}
}
