package core

import (
	"strings"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func TestMachineStatsSnapshot(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.ADR, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var a memdev.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(16)
		for i := 0; i < 8; i++ {
			tx.Store(a+memdev.Addr(i), uint64(i))
		}
	})
	ms := tm.MachineStats()
	if ms.Commits != 1 {
		t.Fatalf("commits = %d", ms.Commits)
	}
	if ms.NVMStores == 0 || ms.WPQAccepts == 0 {
		t.Fatalf("no NVM traffic recorded: %+v", ms)
	}
	if ms.HitRate() <= 0 || ms.HitRate() > 1 {
		t.Fatalf("hit rate = %f", ms.HitRate())
	}
	s := ms.String()
	for _, want := range []string{"commits", "flushes accepted", "cache:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	// No page cache under ADR: the report must omit that section.
	if strings.Contains(s, "page cache:") {
		t.Fatal("ADR report mentions a page cache")
	}
}

func TestMachineStatsPDRAMSection(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.PDRAM, 1)
	th := tm.Thread(0)
	defer th.Detach()
	th.Atomic(func(tx *Tx) {
		a := tx.Alloc(8)
		tx.Store(a, 1)
	})
	ms := tm.MachineStats()
	if ms.PageCache.Hits+ms.PageCache.Misses == 0 {
		t.Fatal("PDRAM run recorded no page-cache traffic")
	}
	if !strings.Contains(ms.String(), "page cache:") {
		t.Fatal("PDRAM report missing page-cache section")
	}
}

func TestMachineStatsEmptyHitRate(t *testing.T) {
	var ms MachineStats
	if ms.HitRate() != 0 {
		t.Fatal("empty stats hit rate not zero")
	}
}
