package core

import (
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
)

// This file implements AlgoHTM: a TSX-style hardware-transactional
// mode, the paper's §V future-work question ("while Intel TSX is
// incompatible with PTM in ADR, it might work with eADR and PDRAM").
//
// The model captures what makes HTM attractive there:
//
//   - No persistent log at all. Under eADR (and the PDRAM domains)
//     every retired store is durable, and an HTM commit publishes all
//     of a transaction's stores atomically — so durability comes for
//     free at the commit instant, with zero clwb/sfence/log traffic.
//   - No software instrumentation. Conflict detection rides the cache
//     coherence protocol; the simulation models it with un-charged
//     orec checks (the orec table stands in for the coherence
//     directory).
//   - Bounded capacity. Real TSX aborts when the write set overflows
//     the L1; transactions beyond HTMCapacity lines abort to the
//     software fallback (orec-lazy), as do transactions that keep
//     conflicting.
//
// Under ADR the mode is rejected at construction: a clwb inside a TSX
// transaction aborts it (§II-B), so an ADR-correct HTM PTM cannot
// exist — exactly the paper's observation.

// HTMCapacity is the maximum HTM write set in log entries (modeling
// L1-resident speculative state).
const HTMCapacity = 512

// HTMRetries is how many HTM attempts run before falling back to the
// software path.
const HTMRetries = 4

// htmCommitCost is the fixed virtual-ns cost of a TSX commit.
const htmCommitCost = 25

// htmCapacity is the panic value for capacity aborts; unlike conflict
// aborts, retrying in HTM cannot help, so Atomic falls back at once.
type htmCapacity struct{}

// loadHTM reads with coherence-based conflict detection: any
// concurrently-locked or newer line kills the transaction. There is
// no timestamp extension — hardware transactions abort on conflict.
func (tx *Tx) loadHTM(a memdev.Addr) uint64 {
	th := tx.th
	if i, ok := th.wpos.get(uint64(a)); ok {
		return th.wlog[i].val
	}
	t := th.tm.orecs
	idx := t.Index(a)
	v1 := t.Load(idx)
	if lockedWord(v1) {
		abortWith(AbortLockConflict)
	}
	val := th.ctx.Load(a)
	v2 := t.Load(idx)
	if v1 != v2 || versionOf(v1) > tx.rv {
		abortWith(AbortValidation)
	}
	th.rset = append(th.rset, readRec{idx: idx, ver: versionOf(v1)})
	return val
}

// storeHTM buffers the write in speculative (volatile, L1-resident)
// state; nothing persistent is written until commit.
func (tx *Tx) storeHTM(a memdev.Addr, v uint64) {
	th := tx.th
	if i, ok := th.wpos.get(uint64(a)); ok {
		th.wlog[i].val = v
		return
	}
	i := len(th.wlog)
	if i >= HTMCapacity || i >= th.tm.cfg.MaxLogEntries {
		panic(htmCapacity{})
	}
	th.wlog = append(th.wlog, redoEntry{addr: a, val: v})
	th.wpos.put(uint64(a), uint64(i))
	th.ctx.Compute(2) // the store itself retires into the L1
}

// commitHTM atomically publishes the speculative state. Under eADR
// the stores are durable as they land — the commit instant is the
// durability point, with no log, marker, flush, or fence.
func (th *Thread) commitHTM(tx *Tx) {
	if len(th.wlog) == 0 {
		th.stats.ReadOnlyTxns++
		th.tm.met.Add(metrics.CtrReadOnlyTxns, 1)
		return
	}
	t := th.tm.orecs
	validateStart := th.ctx.Now()
	for _, e := range th.wlog {
		idx := t.Index(e.addr)
		if _, locked := th.lockVer.get(uint64(idx)); locked {
			continue
		}
		v := t.Load(idx)
		if lockedWord(v) || versionOf(v) > tx.rv {
			th.abortCommit(AbortLockConflict)
		}
		if !t.TryLock(idx, th.owner, versionOf(v)) {
			th.abortCommit(AbortLockConflict)
		}
		th.locks = append(th.locks, lockRec{idx: idx, oldVer: versionOf(v)})
		th.lockVer.put(uint64(idx), versionOf(v))
	}
	if !th.validateReadSet() {
		th.abortCommit(AbortValidation)
	}
	th.rec.Span(obs.PhaseValidate, validateStart, th.ctx.Now())
	commitStart := th.ctx.Now()
	wv := t.IncClock()
	// The publish loop below is the model of a TSX commit, which real
	// hardware performs atomically: either every speculative line is
	// published (and, under eADR, durable) or none is. A crash checker
	// therefore must not cut execution inside the loop — the hooks
	// bracket it instead.
	th.tm.hook("htm:pre-publish", th)
	for _, e := range th.wlog {
		th.ctx.Store(e.addr, e.val)
	}
	th.tm.hook("htm:post-publish", th)
	th.ctx.Compute(htmCommitCost)
	th.releaseLocks(wv)
	th.rec.Span(obs.PhaseCommit, commitStart, th.ctx.Now())
	th.noteLogHighWater(len(th.wlog))
}
