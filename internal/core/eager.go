package core

import (
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
)

// This file implements "orec-eager": the undo-logging PTM with
// encounter-time locking, the best-performing undo algorithm in the
// paper's PACT'19 runtime.
//
// Persistence protocol (ADR; stronger domains elide flush/fence):
//
//	write     : 1. acquire the orec (CAS, abort on conflict)
//	            2. append (addr, old value) to the undo log; store the
//	               packed marker (status=ACTIVE | count | checksum);
//	               flush entry and descriptor lines; FENCE
//	                                              <- one fence PER WRITE
//	            3. store the new value in place; flush the data line
//	commit    : fence (data flushes ordered), validate reads,
//	            store status=IDLE, flush, fence, release orecs at the
//	            incremented clock
//	abort     : roll the undo log backwards with in-place restores
//	            (flushed), clear status, release orecs at their old
//	            versions
//
// The per-write fence is the O(W) cost that §III-B blames for undo's
// inferiority on every workload except tiny-write-set TATP.

// loadEager reads in place; the thread's own locked locations are
// directly readable because eager writes in place.
func (tx *Tx) loadEager(a memdev.Addr) uint64 {
	th := tx.th
	t := th.tm.orecs
	idx := t.Index(a)
	for {
		v1 := t.Load(idx)
		th.ctx.MetaOp()
		if lockedWord(v1) {
			if versionOf(v1) == th.owner {
				return th.ctx.Load(a) // own lock: in-place value is ours
			}
			abortWith(AbortLockConflict)
		}
		val := th.ctx.Load(a)
		v2 := t.Load(idx)
		if v1 != v2 {
			abortWith(AbortValidation)
		}
		if versionOf(v1) <= tx.rv {
			th.rset = append(th.rset, readRec{idx: idx, ver: versionOf(v1)})
			return val
		}
		// See loadLazy: retry the read after a successful extension,
		// or a racing commit could slip a stale value past validation.
		if !tx.extend() {
			abortWith(AbortValidation)
		}
	}
}

// storeEager locks, logs the old value (durably, fenced), then
// updates in place.
func (tx *Tx) storeEager(a memdev.Addr, v uint64) {
	th := tx.th
	t := th.tm.orecs
	idx := t.Index(a)
	th.ctx.MetaOp() // undo-log duplicate filter probe (as in the reference runtime)
	cur := t.Load(idx)
	th.ctx.MetaOp()
	if lockedWord(cur) {
		if versionOf(cur) != th.owner {
			abortWith(AbortLockConflict)
		}
	} else {
		if versionOf(cur) > tx.rv {
			if !tx.extend() {
				abortWith(AbortValidation)
			}
		}
		if !t.TryLock(idx, th.owner, versionOf(cur)) {
			abortWith(AbortLockConflict)
		}
		th.ctx.MetaOp()
		th.locks = append(th.locks, lockRec{idx: idx, oldVer: versionOf(cur)})
		th.lockVer.put(uint64(idx), versionOf(cur))
	}

	i := len(th.undo)
	if i >= th.tm.cfg.MaxLogEntries {
		panic(ErrLogOverflow{Entries: i + 1})
	}
	old := th.ctx.Load(a)
	th.undo = append(th.undo, undoRec{addr: a, old: old})

	// Durable undo record, ordered before the in-place update. The
	// marker checksum grows incrementally with each record; recovery
	// uses it to reject a log tail that never became durable.
	logStart := th.ctx.Now()
	th.tm.hook("eager:pre-log", th)
	ea := th.entryAddr(i)
	th.ctx.Store(ea, uint64(a))
	th.ctx.Store(ea+1, old)
	th.ctx.CLWB(ea)
	th.logHash = mix32(mix32(th.logHash, uint64(a)), old)
	th.tm.hook("eager:pre-marker", th)
	th.ctx.Store(th.desc+descStatusOff, packMarker(statusUndoActive, i+1, th.logHash))
	th.ctx.CLWB(th.desc)
	th.rec.Span(obs.PhaseDrain, logStart, th.ctx.Now())
	th.fence("eager:Fw") // the O(W) fence
	th.tm.hook("eager:post-log", th)

	// In-place speculative update.
	updateStart := th.ctx.Now()
	th.ctx.Store(a, v)
	th.ctx.CLWB(a)
	th.rec.Span(obs.PhaseDrain, updateStart, th.ctx.Now())
	th.tm.hook("eager:post-update", th)
}

// commitEager finishes an undo transaction.
func (th *Thread) commitEager(tx *Tx) {
	if len(th.undo) == 0 {
		th.stats.ReadOnlyTxns++
		th.tm.met.Add(metrics.CtrReadOnlyTxns, 1)
		return
	}
	// All in-place data flushes must be durable before the log is
	// discarded.
	th.fence("eager:Fc1")

	validateStart := th.ctx.Now()
	if !th.validateReadSet() {
		th.abortCommit(AbortValidation)
	}
	th.rec.Span(obs.PhaseValidate, validateStart, th.ctx.Now())
	th.tm.hook("eager:pre-clear", th)

	commitStart := th.ctx.Now()
	th.ctx.Store(th.desc+descStatusOff, packMarker(statusIdle, 0, 0))
	th.ctx.CLWB(th.desc)
	th.rec.Span(obs.PhaseCommit, commitStart, th.ctx.Now())
	th.fence("eager:Fc2")
	th.tm.hook("eager:post-clear", th)

	wv := th.tm.orecs.IncClock()
	th.ctx.MetaOp()
	publishStart := th.ctx.Now()
	th.releaseLocks(wv)
	th.rec.Span(obs.PhaseCommit, publishStart, th.ctx.Now())
	th.noteLogHighWater(len(th.undo))
}

// rollbackEager restores the in-place writes of a doomed attempt in
// reverse order, durably, then clears the log and releases the locks.
func (th *Thread) rollbackEager() {
	for i := len(th.undo) - 1; i >= 0; i-- {
		r := th.undo[i]
		th.ctx.Store(r.addr, r.old)
		th.ctx.CLWB(r.addr)
	}
	th.fence("eager:Fr1")
	if len(th.undo) > 0 {
		th.ctx.Store(th.desc+descStatusOff, packMarker(statusIdle, 0, 0))
		th.ctx.CLWB(th.desc)
		th.fence("eager:Fr2")
		th.tm.hook("eager:post-rollback", th)
	}
	th.releaseLocksRestoring()
}
