package core

import (
	"sync"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func smallTM(t testing.TB, algo Algo, dom durability.Domain, threads int) *TM {
	t.Helper()
	tm, err := New(Config{
		Algo:          algo,
		Medium:        MediumNVM,
		Domain:        dom,
		Threads:       threads,
		HeapWords:     1 << 16,
		MaxLogEntries: 256,
		OrecSize:      1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

var bothAlgos = []Algo{OrecLazy, OrecEager}

func TestSingleTxReadWrite(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		var a memdev.Addr
		th.Atomic(func(tx *Tx) {
			a = tx.Alloc(8)
			tx.Store(a, 41)
			if got := tx.Load(a); got != 41 {
				t.Errorf("%v: read-own-write = %d", algo, got)
			}
			tx.Store(a, 42)
		})
		th.Atomic(func(tx *Tx) {
			if got := tx.Load(a); got != 42 {
				t.Errorf("%v: committed value = %d, want 42", algo, got)
			}
		})
		if tm.Commits() != 2 {
			t.Errorf("%v: commits = %d, want 2", algo, tm.Commits())
		}
		th.Detach()
	}
}

func TestReadOnlyTxn(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		th.Atomic(func(tx *Tx) {}) // empty
		if th.Stats().ReadOnlyTxns != 1 {
			t.Errorf("%v: read-only txns = %d", algo, th.Stats().ReadOnlyTxns)
		}
		th.Detach()
	}
}

func TestUserAbortRollsBack(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		var a memdev.Addr
		th.Atomic(func(tx *Tx) {
			a = tx.Alloc(8)
			tx.Store(a, 7)
		})
		first := true
		th.Atomic(func(tx *Tx) {
			if first {
				first = false
				tx.Store(a, 999)
				tx.Abort()
			}
			// Retry: must observe the pre-abort value.
			if got := tx.Load(a); got != 7 {
				t.Errorf("%v: value after abort = %d, want 7", algo, got)
			}
		})
		if tm.Aborts() != 1 {
			t.Errorf("%v: aborts = %d, want 1", algo, tm.Aborts())
		}
		th.Detach()
	}
}

func TestAbortFreesAllocations(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		live0 := tm.Heap().LiveBlocks()
		first := true
		th.Atomic(func(tx *Tx) {
			if first {
				first = false
				tx.Alloc(8)
				tx.Alloc(8)
				tx.Abort()
			}
		})
		if got := tm.Heap().LiveBlocks(); got != live0 {
			t.Errorf("%v: live blocks %d after aborted allocs, want %d", algo, got, live0)
		}
		th.Detach()
	}
}

func TestFreeDeferredToCommit(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		var a memdev.Addr
		th.Atomic(func(tx *Tx) { a = tx.Alloc(8) })
		live := tm.Heap().LiveBlocks()
		first := true
		th.Atomic(func(tx *Tx) {
			if first {
				first = false
				tx.Free(a)
				tx.Abort() // free must NOT take effect
			}
		})
		if tm.Heap().LiveBlocks() != live {
			t.Errorf("%v: aborted free took effect", algo)
		}
		th.Atomic(func(tx *Tx) { tx.Free(a) })
		if tm.Heap().LiveBlocks() != live-1 {
			t.Errorf("%v: committed free did not take effect", algo)
		}
		th.Detach()
	}
}

func TestWriteAfterWriteSameAddr(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		var a memdev.Addr
		th.Atomic(func(tx *Tx) {
			a = tx.Alloc(8)
			for i := uint64(0); i < 10; i++ {
				tx.Store(a, i)
				if tx.Load(a) != i {
					t.Errorf("%v: WAW read-own-write broken at %d", algo, i)
				}
			}
		})
		th.Atomic(func(tx *Tx) {
			if tx.Load(a) != 9 {
				t.Errorf("%v: final value %d, want 9", algo, tx.Load(a))
			}
		})
		th.Detach()
	}
}

func TestLogOverflowPanics(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%v: overflow did not panic", algo)
					return
				}
				if _, ok := r.(ErrLogOverflow); !ok {
					t.Errorf("%v: panic value %T, want ErrLogOverflow", algo, r)
				}
			}()
			th.Atomic(func(tx *Tx) {
				a := tx.Alloc(1024)
				for i := 0; i < 1000; i++ {
					tx.Store(a+memdev.Addr(i), 1)
				}
			})
		}()
		th.Detach()
	}
}

func TestConcurrentCounterAtomicity(t *testing.T) {
	const threads = 4
	const perThread = 200
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, threads)
		// Set up one shared counter.
		setup := tm.Thread(0)
		var ctr memdev.Addr
		setup.Atomic(func(tx *Tx) {
			ctr = tx.Alloc(8)
			tx.Store(ctr, 0)
		})
		setup.Detach()

		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				th := tm.Thread(tid)
				defer th.Detach()
				for i := 0; i < perThread; i++ {
					th.Atomic(func(tx *Tx) {
						tx.Store(ctr, tx.Load(ctr)+1)
					})
				}
			}(tid)
		}
		wg.Wait()

		check := tm.Thread(0)
		check.Atomic(func(tx *Tx) {
			if got := tx.Load(ctr); got != threads*perThread {
				t.Errorf("%v: counter = %d, want %d", algo, got, threads*perThread)
			}
		})
		check.Detach()
		if tm.Commits() < threads*perThread {
			t.Errorf("%v: commits = %d", algo, tm.Commits())
		}
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	const threads = 4
	const accounts = 16
	const perThread = 150
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, threads)
		setup := tm.Thread(0)
		var base memdev.Addr
		setup.Atomic(func(tx *Tx) {
			base = tx.Alloc(accounts)
			for i := 0; i < accounts; i++ {
				tx.Store(base+memdev.Addr(i), 1000)
			}
		})
		setup.Detach()

		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				th := tm.Thread(tid)
				defer th.Detach()
				for i := 0; i < perThread; i++ {
					from := memdev.Addr(th.Rand().Intn(accounts))
					to := memdev.Addr(th.Rand().Intn(accounts))
					amt := uint64(th.Rand().Intn(50))
					th.Atomic(func(tx *Tx) {
						f := tx.Load(base + from)
						tx.Store(base+from, f-amt)
						tt := tx.Load(base + to)
						tx.Store(base+to, tt+amt)
					})
				}
			}(tid)
		}
		wg.Wait()

		check := tm.Thread(0)
		check.Atomic(func(tx *Tx) {
			var sum uint64
			for i := 0; i < accounts; i++ {
				sum += tx.Load(base + memdev.Addr(i))
			}
			if sum != accounts*1000 {
				t.Errorf("%v: total = %d, want %d (atomicity violated)", algo, sum, accounts*1000)
			}
		})
		check.Detach()
	}
}

func TestIsolationNoDirtyReads(t *testing.T) {
	// Two cells must always be observed equal: writers set both to the
	// same new value; readers verify.
	const threads = 4
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, threads)
		setup := tm.Thread(0)
		var a memdev.Addr
		setup.Atomic(func(tx *Tx) {
			a = tx.Alloc(16)
			tx.Store(a, 0)
			tx.Store(a+8, 0) // separate cache line? same block; use +8 words
		})
		setup.Detach()

		var wg sync.WaitGroup
		errs := make(chan string, threads)
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				th := tm.Thread(tid)
				defer th.Detach()
				for i := 0; i < 150; i++ {
					if tid%2 == 0 {
						th.Atomic(func(tx *Tx) {
							v := tx.Load(a) + 1
							tx.Store(a, v)
							tx.Store(a+8, v)
						})
					} else {
						th.Atomic(func(tx *Tx) {
							x := tx.Load(a)
							y := tx.Load(a + 8)
							if x != y {
								errs <- "observed torn update"
							}
						})
					}
				}
			}(tid)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Errorf("%v: %s", algo, e)
		}
	}
}

func TestStatsHighWater(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.ADR, 1)
	th := tm.Thread(0)
	th.Atomic(func(tx *Tx) {
		a := tx.Alloc(64)
		for i := 0; i < 20; i++ {
			tx.Store(a+memdev.Addr(i), 1)
		}
	})
	s := th.Stats()
	if s.MaxLogEntry != 20 {
		t.Errorf("MaxLogEntry = %d, want 20", s.MaxLogEntry)
	}
	if s.MaxLogLines != 5 { // 40 words / 8 per line
		t.Errorf("MaxLogLines = %d, want 5", s.MaxLogLines)
	}
	th.Detach()
}

func TestEADRElidesFlushes(t *testing.T) {
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.EADR, 1)
		th := tm.Thread(0)
		th.Atomic(func(tx *Tx) {
			a := tx.Alloc(8)
			tx.Store(a, 1)
		})
		if s := th.Ctx().Stats(); s.Flushes != 0 || s.Fences != 0 {
			t.Errorf("%v under eADR issued %d flushes %d fences", algo, s.Flushes, s.Fences)
		}
		th.Detach()
	}
}

func TestADRIssuesFlushesAndFences(t *testing.T) {
	counts := map[Algo]struct{ flushes, fences int64 }{}
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		th.Atomic(func(tx *Tx) {
			a := tx.Alloc(32)
			for i := 0; i < 16; i++ {
				tx.Store(a+memdev.Addr(i), 1)
			}
		})
		s := th.Ctx().Stats()
		if s.Flushes == 0 || s.Fences == 0 {
			t.Errorf("%v under ADR issued no flushes/fences", algo)
		}
		counts[algo] = struct{ flushes, fences int64 }{s.Flushes, s.Fences}
		th.Detach()
	}
	// The paper's O(W) vs O(1) distinction: undo fences scale with
	// writes, redo fences do not.
	if counts[OrecEager].fences <= counts[OrecLazy].fences {
		t.Errorf("undo fences (%d) not greater than redo fences (%d)",
			counts[OrecEager].fences, counts[OrecLazy].fences)
	}
}

func TestNoFenceElidesOnlyFences(t *testing.T) {
	tm, err := New(Config{
		Algo: OrecEager, Medium: MediumNVM, Domain: durability.ADR,
		Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
		NoFence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	th.Atomic(func(tx *Tx) {
		a := tx.Alloc(8)
		tx.Store(a, 1)
	})
	s := th.Ctx().Stats()
	if s.Fences != 0 {
		t.Errorf("NoFence issued %d fences", s.Fences)
	}
	if s.Flushes == 0 {
		t.Error("NoFence should keep clwb instructions")
	}
	th.Detach()
}

func TestBatchedFlushEquivalentResult(t *testing.T) {
	for _, batched := range []bool{false, true} {
		tm, err := New(Config{
			Algo: OrecLazy, Medium: MediumNVM, Domain: durability.ADR,
			Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
			BatchedFlush: batched,
		})
		if err != nil {
			t.Fatal(err)
		}
		th := tm.Thread(0)
		var a memdev.Addr
		th.Atomic(func(tx *Tx) {
			a = tx.Alloc(16)
			for i := 0; i < 8; i++ {
				tx.Store(a+memdev.Addr(i), uint64(i)*3)
			}
		})
		th.Atomic(func(tx *Tx) {
			for i := 0; i < 8; i++ {
				if tx.Load(a+memdev.Addr(i)) != uint64(i)*3 {
					t.Errorf("batched=%v: wrong value at %d", batched, i)
				}
			}
		})
		th.Detach()
	}
}

func TestMediumDRAM(t *testing.T) {
	tm, err := New(Config{
		Algo: OrecLazy, Medium: MediumDRAM, Domain: durability.ADR,
		Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	var a memdev.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(8)
		tx.Store(a, 5)
	})
	if a < memdev.DRAMBase {
		t.Errorf("DRAM-medium heap allocated NVM address %#x", uint64(a))
	}
	th.Atomic(func(tx *Tx) {
		if tx.Load(a) != 5 {
			t.Error("DRAM medium lost value")
		}
	})
	th.Detach()
}

func TestThreadTIDValidation(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.ADR, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range tid accepted")
		}
	}()
	tm.Thread(2)
}
