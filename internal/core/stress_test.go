package core

import (
	"sync"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func TestStressTransfers(t *testing.T) {
	for _, algo := range []Algo{OrecLazy, OrecEager} {
		for trial := 0; trial < 3; trial++ {
			tm := smallTM(t, algo, durability.ADR, 5)
			setup := tm.Thread(0)
			var base memdev.Addr
			setup.Atomic(func(tx *Tx) {
				base = tx.Alloc(128)
				for i := 0; i < 128; i++ {
					tx.Store(base+memdev.Addr(i), 1000)
				}
			})
			setup.Detach()
			ths := make([]*Thread, 5)
			for i := range ths {
				ths[i] = tm.Thread(i)
			}
			var wg sync.WaitGroup
			for tid := 0; tid < 4; tid++ {
				wg.Add(1)
				go func(th *Thread) {
					defer wg.Done()
					defer th.Detach()
					r := th.Rand()
					for i := 0; i < 2000; i++ {
						from := memdev.Addr(r.Intn(128))
						to := memdev.Addr(r.Intn(128))
						amt := uint64(r.Intn(50))
						th.Atomic(func(tx *Tx) {
							tx.Store(base+from, tx.Load(base+from)-amt)
							tx.Store(base+to, tx.Load(base+to)+amt)
						})
					}
				}(ths[tid])
			}
			wg.Add(1)
			go func(th *Thread) {
				defer wg.Done()
				defer th.Detach()
				for i := 0; i < 100; i++ {
					th.Atomic(func(tx *Tx) {
						var s uint64
						for a := 0; a < 128; a++ {
							s += tx.Load(base + memdev.Addr(a))
						}
					})
					th.Compute(10000)
				}
			}(ths[4])
			wg.Wait()
			check := tm.Thread(0)
			var sum uint64
			check.Atomic(func(tx *Tx) {
				sum = 0
				for a := 0; a < 128; a++ {
					sum += tx.Load(base + memdev.Addr(a))
				}
			})
			check.Detach()
			if sum != 128000 {
				t.Fatalf("%v trial %d: sum=%d want 128000 (drift %+d)", algo, trial, sum, int64(sum)-128000)
			}
		}
	}
}
