package core

import (
	"fmt"

	"goptm/internal/membus"
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/simtime"
	"goptm/internal/stats"
)

// AbortReason classifies why a transaction attempt aborted.
type AbortReason uint8

// Abort reasons, in MachineStats order.
const (
	// AbortLockConflict: a needed orec was locked by another thread
	// (encounter-time or commit-time acquisition failure).
	AbortLockConflict AbortReason = iota
	// AbortValidation: a read was invalidated by a concurrent commit
	// (torn orec read, failed snapshot extension, or commit-time
	// read-set validation failure).
	AbortValidation
	// AbortCapacity: an HTM attempt overflowed the speculative write
	// set and must fall back to the software path.
	AbortCapacity
	// AbortExplicit: the transaction body called Tx.Abort.
	AbortExplicit
	// NumAbortReasons sizes per-reason counter arrays.
	NumAbortReasons
)

// String names the reason as MachineStats renders it.
func (r AbortReason) String() string {
	switch r {
	case AbortLockConflict:
		return "lock-conflict"
	case AbortValidation:
		return "validation"
	case AbortCapacity:
		return "htm-capacity"
	case AbortExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("AbortReason(%d)", int(r))
	}
}

// abortEventNames are the preallocated trace-marker names, so the
// abort record path never formats a string.
var abortEventNames = [NumAbortReasons]string{
	"abort:lock-conflict", "abort:validation", "abort:htm-capacity", "abort:explicit",
}

// abortSignal is the panic value used to unwind an aborted attempt.
type abortSignal struct{ reason AbortReason }

// abortWith unwinds the current attempt with the given reason.
func abortWith(r AbortReason) {
	panic(abortSignal{reason: r})
}

// ErrLogOverflow reports a transaction exceeding MaxLogEntries; it is
// delivered as a panic because it is a configuration error, not a
// recoverable condition.
type ErrLogOverflow struct{ Entries int }

// Error implements the error interface.
func (e ErrLogOverflow) Error() string {
	return fmt.Sprintf("core: transaction log overflow (%d entries)", e.Entries)
}

// lockRec remembers an acquired orec and the version to restore on
// abort.
type lockRec struct {
	idx    int
	oldVer uint64
}

// readRec remembers an orec read and the exact version observed, so
// validation can detect any intervening commit (version equality, as
// in TinySTM — a <=rv check alone is unsound once the timestamp is
// extended mid-transaction).
type readRec struct {
	idx int
	ver uint64
}

// redoEntry is the volatile mirror of one redo-log record.
type redoEntry struct {
	addr memdev.Addr
	val  uint64
}

// undoRec is the volatile mirror of one undo-log record.
type undoRec struct {
	addr memdev.Addr
	old  uint64
}

// ThreadStats aggregates a thread's transaction outcomes.
type ThreadStats struct {
	Commits      int64
	Aborts       int64
	AbortReasons [NumAbortReasons]int64 // aborts classified by cause
	MaxLogEntry  int                    // high-water mark of log entries in one txn
	MaxLogLines  int                    // high-water mark of distinct log lines (§IV-B)
	ReadOnlyTxns int64
	HTMFallbacks int64 // transactions that fell back to the software path
}

// Thread is one worker's handle onto the TM. All methods must be
// called from the goroutine that owns the thread.
type Thread struct {
	tm    *TM
	ctx   *membus.Context
	tid   int
	owner uint64
	desc  memdev.Addr
	rng   *simtime.Rand

	// Per-attempt state, reused across attempts to avoid allocation.
	rset    []readRec
	lockVer *probeMap // orec idx -> pre-lock version, for validation
	wpos    *probeMap // addr -> redo-log entry index
	wlog    []redoEntry
	flushed int // redo-log entries already flushed (incremental mode)
	locks   []lockRec
	undo    []undoRec
	allocs  []memdev.Addr
	frees   []memdev.Addr
	wbLines []uint64 // writeback line-dedup scratch (commitLazy)

	logHash     uint32 // running marker checksum over the undo log
	mode        Algo   // algorithm of the current attempt (HTM may fall back)
	capacityHit bool   // the HTM attempt overflowed; fall back immediately
	stats       ThreadStats
	latency     stats.Histogram     // committed-transaction latency (virtual ns)
	rec         *obs.ThreadRecorder // nil when observability is off
}

// Thread creates the worker handle for tid. Each tid must be claimed
// exactly once and driven by a single goroutine.
func (tm *TM) Thread(tid int) *Thread {
	if tid < 0 || tid >= tm.cfg.Threads {
		panic(fmt.Sprintf("core: tid %d out of range", tid))
	}
	return &Thread{
		tm:      tm,
		ctx:     tm.bus.NewContext(tid),
		tid:     tid,
		owner:   uint64(tid) + 1,
		desc:    tm.descBase(tid),
		rng:     simtime.NewRand(uint64(tid)*0x9E3779B9 + 1),
		wpos:    newProbeMap(64),
		lockVer: newProbeMap(16),
		rec:     tm.rec.Thread(tid),
	}
}

// Ctx exposes the thread's memory context (examples, workload setup).
func (th *Thread) Ctx() *membus.Context { return th.ctx }

// TID reports the thread id.
func (th *Thread) TID() int { return th.tid }

// Now reports the thread's virtual time.
func (th *Thread) Now() int64 { return th.ctx.Now() }

// Rand exposes the thread's deterministic RNG for workload drivers.
func (th *Thread) Rand() *simtime.Rand { return th.rng }

// Stats returns the thread's counters.
func (th *Thread) Stats() ThreadStats { return th.stats }

// Latency returns the thread's committed-transaction latency
// histogram (total Atomic duration in virtual ns, including retries).
func (th *Thread) Latency() *stats.Histogram { return &th.latency }

// Detach releases the thread from the virtual-time barrier.
func (th *Thread) Detach() { th.ctx.Detach() }

// Compute advances the thread's clock by ns of non-transactional work.
func (th *Thread) Compute(ns int64) { th.ctx.Compute(ns) }

// entryAddr returns the persistent address of log entry i's first
// word (addr word; the value word follows).
func (th *Thread) entryAddr(i int) memdev.Addr {
	return th.desc + descEntries + memdev.Addr(2*i)
}

// fence issues an sfence unless the NoFence ablation elides every
// fence, or the MutateDropFence mutation elides this named site.
// Sites: "lazy:F1" (log before marker), "lazy:F2" (marker before
// writeback), "lazy:F3" (writeback before log reclaim), "eager:Fw"
// (undo record before in-place update), "eager:Fc1" (in-place data
// before log discard), "eager:Fc2" (idle marker durable),
// "eager:Fr1"/"eager:Fr2" (rollback restores / idle marker).
func (th *Thread) fence(site string) {
	if th.tm.cfg.NoFence || th.tm.cfg.MutateDropFence == site {
		return
	}
	th.ctx.SFence()
}

// Tx is one transaction attempt. It is only valid inside the Atomic
// body it was passed to.
type Tx struct {
	th   *Thread
	rv   uint64 // read version (TL2 snapshot timestamp)
	mode Algo   // algorithm executing this attempt
}

// Abort abandons the current attempt; Atomic will retry it.
func (tx *Tx) Abort() {
	abortWith(AbortExplicit)
}

// Atomic runs fn as a transaction, retrying on conflict until it
// commits. fn may run multiple times and must not have side effects
// outside the transaction (other than via tx). Under AlgoHTM, a
// capacity abort or HTMRetries conflict aborts fall the transaction
// back to the software path (orec-lazy), as a real TSX deployment
// must.
func (th *Thread) Atomic(fn func(tx *Tx)) {
	start := th.ctx.Now()
	fellBack := false
	for attempt := 0; ; attempt++ {
		mode := th.tm.cfg.Algo
		if mode == AlgoHTM && (attempt >= HTMRetries || th.capacityHit) {
			if !fellBack {
				fellBack = true
				th.stats.HTMFallbacks++
			}
			mode = OrecLazy
		}
		attemptStart := th.ctx.Now()
		if th.runAttempt(fn, mode) {
			th.stats.Commits++
			th.tm.met.Add(metrics.CtrCommits, 1)
			th.capacityHit = false
			now := th.ctx.Now()
			th.tm.met.Tick(now)
			th.latency.Record(now - start)
			th.rec.Span(obs.PhaseTxn, start, now)
			if th.rec.Tracing() && th.stats.Commits&(counterSampleEvery-1) == 0 {
				th.sampleCounters(now)
			}
			return
		}
		th.stats.Aborts++
		th.tm.met.Add(metrics.CtrAborts, 1)
		// The whole doomed attempt — body execution plus rollback — is
		// wasted virtual time, attributed to the abort phase.
		th.rec.Span(obs.PhaseAbort, attemptStart, th.ctx.Now())
		th.backoff(attempt)
	}
}

// counterSampleEvery is the committed-transaction stride at which a
// tracing thread samples the machine's counter tracks (power of two).
const counterSampleEvery = 32

// sampleCounters emits one sample per counter track at virtual time
// now. Tracing-only path: it takes the shared controller and cache
// locks, which the disabled and breakdown-only configurations must
// never pay for.
func (th *Thread) sampleCounters(now int64) {
	bus := th.tm.bus
	ctl := bus.Controller()
	th.rec.Count(obs.TrackWPQOccupancy, now, float64(ctl.OccupancyAt(now)))
	wb, rb := ctl.Utilization()
	th.rec.Count(obs.TrackMediaWriteBusy, now, float64(wb)/1e6)
	th.rec.Count(obs.TrackMediaReadBusy, now, float64(rb)/1e6)
	th.rec.Count(obs.TrackCacheHitRate, now, 100*bus.Cache().HitRate())
	if pc := bus.PageCache(); pc != nil {
		resident, dirty := pc.Resident()
		th.rec.Count(obs.TrackPageResidency, now, float64(resident))
		th.rec.Count(obs.TrackPageDirty, now, float64(dirty))
	}
}

// abortCounter maps an abort reason to its registry counter. The
// per-reason counters are contiguous and in AbortReason order.
func abortCounter(r AbortReason) metrics.Counter {
	return metrics.CtrAbortLockConflict + metrics.Counter(r)
}

// noteAbort classifies an aborted attempt on the thread, the TM, and
// the trace.
func (th *Thread) noteAbort(r AbortReason) {
	th.stats.AbortReasons[r]++
	th.tm.met.Add(abortCounter(r), 1)
	th.rec.Instant(th.ctx.Now(), abortEventNames[r])
}

// runAttempt executes one attempt in the given mode, converting abort
// panics into a false return after rolling the attempt back.
func (th *Thread) runAttempt(fn func(tx *Tx), mode Algo) (ok bool) {
	beginStart := th.ctx.Now()
	th.beginAttempt()
	th.mode = mode
	defer func() {
		if r := recover(); r != nil {
			switch sig := r.(type) {
			case abortSignal:
				th.noteAbort(sig.reason)
				th.onAbort()
				ok = false
				return
			case htmCapacity:
				th.capacityHit = true
				th.noteAbort(AbortCapacity)
				th.onAbort()
				ok = false
				return
			case PowerFailure:
				// Simulated power failure (crash injection): the
				// machine stops dead — nothing is rolled back, the
				// persistent image stays exactly as the crash found
				// it. Propagate to the test harness.
				panic(r)
			default:
				// A foreign panic (a bug in the transaction body)
				// must not leak held orec locks or speculative
				// in-place state: roll back, then propagate.
				th.onAbort()
				panic(r)
			}
		}
	}()
	tx := Tx{th: th, rv: th.tm.orecs.ReadClock(), mode: mode}
	if mode != AlgoHTM {
		th.ctx.MetaOp() // clock read
	}
	th.rec.Span(obs.PhaseBegin, beginStart, th.ctx.Now())
	fn(&tx)
	th.commit(&tx)
	return true
}

// beginAttempt resets the per-attempt buffers.
func (th *Thread) beginAttempt() {
	th.rset = th.rset[:0]
	th.wlog = th.wlog[:0]
	th.flushed = 0
	th.logHash = logHashSeed
	th.lockVer.reset()
	th.locks = th.locks[:0]
	th.undo = th.undo[:0]
	th.allocs = th.allocs[:0]
	th.frees = th.frees[:0]
	th.wpos.reset()
}

// onAbort rolls back whatever the attempt changed.
func (th *Thread) onAbort() {
	if th.mode == OrecEager {
		th.rollbackEager()
	} else {
		th.releaseLocksRestoring()
	}
	// Blocks allocated by the doomed attempt are returned; the blocks
	// it wanted to free stay live.
	for _, a := range th.allocs {
		th.tm.heap.Free(th.ctx, a)
	}
}

// releaseLocksRestoring unlocks every held orec to its pre-lock
// version (abort path).
func (th *Thread) releaseLocksRestoring() {
	for _, l := range th.locks {
		th.tm.orecs.Release(l.idx, l.oldVer)
		th.ctx.MetaOp()
	}
}

// releaseLocks unlocks every held orec, publishing version wv (commit
// path).
func (th *Thread) releaseLocks(wv uint64) {
	for _, l := range th.locks {
		th.tm.orecs.Release(l.idx, wv)
		th.ctx.MetaOp()
	}
}

// backoff applies the configured contention-management policy in
// virtual time after an aborted attempt.
func (th *Thread) backoff(attempt int) {
	switch th.tm.cfg.Backoff {
	case BackoffNone:
		return
	case BackoffLinear:
		th.ctx.Compute(int64(th.rng.Uint64n(128)) + 32)
		return
	default: // BackoffExponential
		if attempt > 8 {
			attempt = 8
		}
		window := int64(64) << attempt
		th.ctx.Compute(int64(th.rng.Uint64n(uint64(window))) + 32)
	}
}

// Load performs a transactional read of the word at a.
func (tx *Tx) Load(a memdev.Addr) uint64 {
	switch tx.mode {
	case OrecEager:
		return tx.loadEager(a)
	case AlgoHTM:
		return tx.loadHTM(a)
	default:
		return tx.loadLazy(a)
	}
}

// Store performs a transactional write of the word at a.
func (tx *Tx) Store(a memdev.Addr, v uint64) {
	switch tx.mode {
	case OrecEager:
		tx.storeEager(a, v)
	case AlgoHTM:
		tx.storeHTM(a, v)
	default:
		tx.storeLazy(a, v)
	}
}

// Alloc allocates words payload words from the persistent heap. The
// allocation is undone if the transaction aborts.
func (tx *Tx) Alloc(words uint64) memdev.Addr {
	a := tx.th.tm.heap.Alloc(tx.th.ctx, words)
	tx.th.allocs = append(tx.th.allocs, a)
	return a
}

// AllocZeroed is Alloc plus zero-initialization of the payload. The
// zeroing bypasses the transaction log: the block is private to this
// transaction until a committed pointer publishes it, and aborts
// return the whole block to the allocator. The zero lines are flushed
// so they are durable before the commit fence orders the publishing
// write. Use it for blocks whose words are read before being
// individually written (e.g. hash bucket arrays).
func (tx *Tx) AllocZeroed(words uint64) memdev.Addr {
	th := tx.th
	a := tx.Alloc(words)
	for w := uint64(0); w < words; w++ {
		th.ctx.Store(a+memdev.Addr(w), 0)
	}
	for w := uint64(0); w < words; w += memdev.WordsPerLine {
		th.ctx.CLWB(a + memdev.Addr(w))
	}
	return a
}

// Free schedules the block at payload address a for release; the free
// takes effect only if the transaction commits.
func (tx *Tx) Free(a memdev.Addr) {
	tx.th.frees = append(tx.th.frees, a)
}

// commit dispatches to the algorithm's commit protocol; it panics
// abortSignal on validation failure.
func (th *Thread) commit(tx *Tx) {
	switch tx.mode {
	case OrecEager:
		th.commitEager(tx)
	case AlgoHTM:
		th.commitHTM(tx)
	default:
		th.commitLazy(tx)
	}
	// The attempt is now durable: apply deferred frees.
	for _, a := range th.frees {
		th.tm.heap.Free(th.ctx, a)
	}
}

// validateReadSet checks that every orec in the read set still holds
// exactly the version observed at read time. Locations the thread has
// since locked validate against the saved pre-lock version: if anyone
// committed in between, the read is stale and the transaction must
// abort.
func (th *Thread) validateReadSet() bool {
	t := th.tm.orecs
	for _, rr := range th.rset {
		cur := t.Load(rr.idx)
		if lockedWord(cur) {
			if versionOf(cur) != th.owner {
				return false
			}
			if lv, _ := th.lockVer.get(uint64(rr.idx)); lv != rr.ver {
				return false
			}
		} else if versionOf(cur) != rr.ver {
			return false
		}
	}
	th.ctx.MetaOp() // validation pass charged as one metadata sweep
	return true
}

// extend attempts timestamp extension (TinySTM style): if every prior
// read is still at its observed version, the snapshot can move to the
// current clock. Returns whether the extension succeeded.
func (tx *Tx) extend() bool {
	start := tx.th.ctx.Now()
	newRv := tx.th.tm.orecs.ReadClock()
	tx.th.ctx.MetaOp()
	ok := tx.th.validateReadSet()
	tx.th.rec.Span(obs.PhaseValidate, start, tx.th.ctx.Now())
	if !ok {
		return false
	}
	tx.rv = newRv
	return true
}

// noteLogHighWater records log-footprint stats (§IV-B) and feeds the
// log-volume counters (each entry is two words: addr + value).
func (th *Thread) noteLogHighWater(entries int) {
	if entries > th.stats.MaxLogEntry {
		th.stats.MaxLogEntry = entries
	}
	lines := (2*entries + memdev.WordsPerLine - 1) / memdev.WordsPerLine
	if lines > th.stats.MaxLogLines {
		th.stats.MaxLogLines = lines
	}
	th.tm.met.Add(metrics.CtrLogEntries, int64(entries))
	th.tm.met.Add(metrics.CtrLogBytes, int64(entries)*2*metrics.WordBytes)
}

// Small wrappers around the orec word helpers keep call sites terse.
func lockedWord(v uint64) bool  { return v&1 == 1 }
func versionOf(v uint64) uint64 { return v >> 1 }
