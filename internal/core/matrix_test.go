package core

import (
	"fmt"
	"sync"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

// TestConfigurationMatrix runs a brief contended transfer workload on
// every legal (algorithm, durability domain, medium) combination, and
// for NVM-backed configurations crashes and recovers, verifying the
// conservation invariant end to end. This is the repository's
// integration smoke test: if a new feature breaks any corner of the
// configuration space, it fails here by name.
func TestConfigurationMatrix(t *testing.T) {
	const (
		threads  = 3
		accounts = 24
		perTh    = 60
	)
	for _, algo := range []Algo{OrecLazy, OrecEager, AlgoHTM} {
		for _, dom := range durability.All() {
			for _, medium := range []Medium{MediumNVM, MediumDRAM} {
				legal := !(algo == AlgoHTM && dom.RequiresFlush())
				name := fmt.Sprintf("%v/%v/%v", algo, dom, medium)
				t.Run(name, func(t *testing.T) {
					tm, err := New(Config{
						Algo: algo, Medium: medium, Domain: dom,
						Threads: threads, HeapWords: 1 << 15,
						MaxLogEntries: 128, OrecSize: 1 << 10,
					})
					if !legal {
						if err == nil {
							t.Fatal("illegal configuration accepted")
						}
						return
					}
					if err != nil {
						t.Fatal(err)
					}

					setup := tm.Thread(0)
					var base memdev.Addr
					setup.Atomic(func(tx *Tx) {
						base = tx.Alloc(accounts)
						for a := 0; a < accounts; a++ {
							tx.Store(base+memdev.Addr(a), 50)
						}
					})
					tm.SetRoot(setup, 0, base)
					setup.Detach()

					ths := make([]*Thread, threads)
					for i := range ths {
						ths[i] = tm.Thread(i)
					}
					var wg sync.WaitGroup
					for _, th := range ths {
						wg.Add(1)
						go func(th *Thread) {
							defer wg.Done()
							defer th.Detach()
							r := th.Rand()
							for i := 0; i < perTh; i++ {
								from := memdev.Addr(r.Intn(accounts))
								to := memdev.Addr(r.Intn(accounts))
								amt := uint64(r.Intn(10))
								th.Atomic(func(tx *Tx) {
									tx.Store(base+from, tx.Load(base+from)-amt)
									tx.Store(base+to, tx.Load(base+to)+amt)
								})
							}
						}(th)
					}
					wg.Wait()

					sum := func(tm *TM) uint64 {
						th := tm.Thread(0)
						defer th.Detach()
						var s uint64
						th.Atomic(func(tx *Tx) {
							s = 0
							for a := 0; a < accounts; a++ {
								s += tx.Load(base + memdev.Addr(a))
							}
						})
						return s
					}
					if got := sum(tm); got != accounts*50 {
						t.Fatalf("pre-crash total = %d, want %d", got, accounts*50)
					}

					if medium != MediumNVM {
						return // DRAM medium is the non-persistent baseline
					}
					// Power failure, then recovery: the total must
					// survive every domain's policy. NoReserve is the
					// exception the paper deprecates — nothing is
					// durable until the media drains, so only an
					// orderly shutdown (Quiesce) is safe; see
					// TestNoReserveUnsafeForADRProtocols.
					probe := tm.Thread(0)
					vt := probe.Now()
					probe.Detach()
					if dom == durability.NoReserve {
						tm.Bus().Quiesce()
					}
					tm.Crash(vt)
					tm2, _, err := Reopen(tm.Bus(), tm.Config())
					if err != nil {
						t.Fatalf("reopen: %v", err)
					}
					if got := sum(tm2); got != accounts*50 {
						t.Fatalf("post-recovery total = %d, want %d", got, accounts*50)
					}
				})
			}
		}
	}
}

// TestNoReserveUnsafeForADRProtocols documents why the paper calls the
// No-Power-Reserve domain deprecated (§II-B): media drains complete
// out of order across ports, so a protocol that is correct under ADR
// (where WPQ acceptance is the durability point) can persist its
// log-reclaim marker before the data it guards. An abrupt crash under
// NoReserve is therefore allowed to violate atomicity — the simulator
// reproduces the hazard rather than hiding it.
func TestNoReserveUnsafeForADRProtocols(t *testing.T) {
	const accounts = 24
	violated := false
	for seed := uint64(0); seed < 20 && !violated; seed++ {
		tm, err := New(Config{
			Algo: OrecEager, Medium: MediumNVM, Domain: durability.NoReserve,
			Threads: 3, HeapWords: 1 << 15, MaxLogEntries: 128, OrecSize: 1 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		setup := tm.Thread(0)
		var base memdev.Addr
		setup.Atomic(func(tx *Tx) {
			base = tx.Alloc(accounts)
			for a := 0; a < accounts; a++ {
				tx.Store(base+memdev.Addr(a), 50)
			}
		})
		tm.SetRoot(setup, 0, base)
		setup.Detach()
		ths := make([]*Thread, 3)
		for i := range ths {
			ths[i] = tm.Thread(i)
		}
		var wg sync.WaitGroup
		for _, th := range ths {
			wg.Add(1)
			go func(th *Thread) {
				defer wg.Done()
				defer th.Detach()
				r := th.Rand()
				for i := 0; i < 40; i++ {
					from := memdev.Addr(r.Intn(accounts))
					to := memdev.Addr(r.Intn(accounts))
					th.Atomic(func(tx *Tx) {
						tx.Store(base+from, tx.Load(base+from)-3)
						tx.Store(base+to, tx.Load(base+to)+3)
					})
				}
			}(th)
		}
		wg.Wait()
		// Crash immediately — in-flight drains die.
		probe := tm.Thread(0)
		vt := probe.Now()
		probe.Detach()
		tm.Crash(vt)
		tm2, _, err := Reopen(tm.Bus(), tm.Config())
		if err != nil {
			t.Fatal(err)
		}
		th2 := tm2.Thread(0)
		var sum uint64
		th2.Atomic(func(tx *Tx) {
			sum = 0
			for a := 0; a < accounts; a++ {
				sum += tx.Load(base + memdev.Addr(a))
			}
		})
		th2.Detach()
		if sum != accounts*50 {
			violated = true
		}
	}
	if !violated {
		t.Skip("no atomicity violation observed in 20 abrupt NoReserve crashes (hazard is probabilistic)")
	}
}
